//! RTL embedding (the paper's Example 3): make one RTL module execute two
//! *different* DFGs, preserving both schedules, at a fraction of the
//! side-by-side area.
//!
//! ```text
//! cargo run --release --example rtl_embedding
//! ```

use hsyn::rtl::{embed, module_area, papers::figure3_modules};

fn main() {
    let (h, rtl1, rtl2, lib) = figure3_modules();

    println!("RTL1 implements (a+b)*(c+d) - a*c  — 2 adders, 2 multipliers, 1 subtractor");
    println!("RTL2 implements ((a+b)*c + d)*a    — 2 adders, 2 multipliers\n");

    let merged = embed(&h, &rtl1, &rtl2, &lib, "NewRTL").expect("compatible modules");
    let a1 = module_area(&h, &rtl1, &lib).total();
    let a2 = module_area(&h, &rtl2, &lib).total();
    let an = module_area(&h, &merged.module, &lib).total();

    println!("area(RTL1)          = {a1:8.2}");
    println!("area(RTL2)          = {a2:8.2}");
    println!("area(RTL1 + RTL2)   = {:8.2}   (side by side)", a1 + a2);
    println!("area(NewRTL)        = {an:8.2}   (merged)");
    println!(
        "\nThe merged module costs {:.1}% of side-by-side hardware while still\nexecuting either behavior with its original, unaltered schedule.",
        100.0 * an / (a1 + a2)
    );

    println!("\nShared functional units:");
    for (i, fu) in merged.module.fus().iter().enumerate() {
        let from_a = merged.maps.fu_a.iter().any(|f| f.index() == i);
        let from_b = merged.maps.fu_b.iter().any(|f| f.index() == i);
        let tag = match (from_a, from_b) {
            (true, true) => "shared by RTL1 and RTL2",
            (true, false) => "RTL1 only",
            (false, true) => "RTL2 only",
            (false, false) => "unused",
        };
        println!("  F{i} ({}) — {tag}", fu.name);
    }
    println!(
        "\nBoth behaviors retained: {}",
        merged
            .module
            .behaviors()
            .iter()
            .map(|b| h.dfg(b.dfg).name().to_owned())
            .collect::<Vec<_>>()
            .join(", ")
    );
}
