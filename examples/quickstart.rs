//! Quickstart: synthesize the classic `Paulin` differential-equation
//! benchmark for low power under a throughput constraint, then inspect the
//! resulting RTL.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use hsyn::core::{synthesize, Objective, SynthesisConfig};
use hsyn::dfg::benchmarks;
use hsyn::lib::papers::table1_library;
use hsyn::rtl::{netlist_text, ModuleLibrary};

fn main() {
    // 1. A behavioral description: the Paulin/HAL differential-equation
    //    solver (6 multiplications, 2 additions, 2 subtractions, 1 compare).
    let bench = benchmarks::paulin();

    // 2. A module library: the paper's Table 1 units (fast/slow adders and
    //    multipliers, chained-adder macros) and default cost models.
    let mut mlib = ModuleLibrary::from_simple(table1_library());
    mlib.equiv = bench.equiv.clone();

    // 3. Synthesize for power at a laxity factor of 2.2: the sampling
    //    period is 2.2x the fastest achievable, and the engine spends that
    //    slack on slower/lower-energy modules and a reduced supply voltage.
    let mut config = SynthesisConfig::new(Objective::Power);
    config.laxity_factor = 2.2;
    let report = synthesize(&bench.hierarchy, &mlib, &config).expect("paulin synthesizes");

    println!("== Power-optimized Paulin ==");
    println!("minimum sampling period : {:.0} ns", report.min_period_ns);
    println!("synthesized for period  : {:.0} ns", report.period_ns);
    println!("chosen supply voltage   : {} V", report.design.op.vdd);
    println!(
        "chosen clock            : {:.1} ns ({} cycle budget)",
        report.design.op.physical_clk_ns(&mlib.simple),
        report.design.op.sampling_cycles
    );
    println!(
        "area                    : {:.1}",
        report.evaluation.area.total()
    );
    println!(
        "power                   : {:.4}",
        report.evaluation.power.power
    );
    println!(
        "moves committed         : A={} B={} C={} D={} over {} passes",
        report.stats.applied_a,
        report.stats.applied_b,
        report.stats.applied_c,
        report.stats.applied_d,
        report.stats.passes
    );

    // 4. The synthesized RTL: datapath netlist and FSM controller.
    println!("\n== Datapath ==\n");
    println!(
        "{}",
        netlist_text(
            &report.design.hierarchy,
            &report.design.top.built,
            &mlib.simple
        )
    );
    let fsm = hsyn::rtl::generate_fsm(&report.design.hierarchy, &report.design.top.built);
    println!("== Controller ({} states) ==\n", fsm.state_count());
    println!("{fsm}");
}
