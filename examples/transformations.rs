//! Behavioral transformations before synthesis: constant folding, common-
//! subexpression elimination, dead-code elimination, and tree-height
//! reduction reshape the DFG so the synthesizer starts from a better graph
//! (the ref [4] direction of low-power behavioral synthesis).
//!
//! ```text
//! cargo run --release --example transformations
//! ```

use hsyn::core::{synthesize, Objective, SynthesisConfig};
use hsyn::dfg::{text, transform, Hierarchy};
use hsyn::lib::papers::table1_library;
use hsyn::rtl::ModuleLibrary;

const SOURCE: &str = "
# A polynomial evaluator written carelessly: repeated subexpressions,
# constant work, an unused diagnostic, and a long addition chain.
dfg poly {
  input x
  input y
  const c2 = 2
  const c3 = 3
  const c6 = 6
  cc = mult c2 c3          # constant: folds to 6
  xx1 = mult x x
  xx2 = mult x x           # duplicate of xx1
  t1 = mult xx1 c6
  t2 = mult xx2 cc         # becomes a duplicate of t1 after folding + CSE
  dbg = mult t1 y          # dead: never reaches an output
  a1 = add t1 x
  a2 = add a1 y
  a3 = add a2 t2
  a4 = add a3 x
  a5 = add a4 y
  output p = a5
}
top poly
";

fn main() {
    let parsed = text::parse(SOURCE).expect("well-formed");
    let g = parsed.hierarchy.dfg(parsed.hierarchy.top());

    println!(
        "before: {} operations, critical path {} op-levels",
        g.schedulable_count(),
        depth(g)
    );
    let (optimized, stats) = transform::optimize(g, 16);
    println!(
        "after : {} operations, critical path {} op-levels",
        optimized.schedulable_count(),
        depth(&optimized)
    );
    println!(
        "  folded {} constants, merged {} duplicates, removed {} dead ops, rebalanced {} chains\n",
        stats.folded, stats.cse_merged, stats.dead_removed, stats.rebalanced
    );

    let mut before_h = Hierarchy::new();
    let id = before_h.add_dfg(g.clone());
    before_h.set_top(id);
    let mut after_h = Hierarchy::new();
    let id = after_h.add_dfg(optimized);
    after_h.set_top(id);

    let mlib = ModuleLibrary::from_simple(table1_library());
    let mut config = SynthesisConfig::new(Objective::Area);
    config.laxity_factor = 1.5;
    for (label, h) in [("original", &before_h), ("transformed", &after_h)] {
        match synthesize(h, &mlib, &config) {
            Ok(r) => println!(
                "{label:<12} -> area {:>7.1}, power {:>7.4}, min period {:>5.0} ns, {:.2}s",
                r.evaluation.area.total(),
                r.evaluation.power.power,
                r.min_period_ns,
                r.elapsed_s
            ),
            Err(e) => println!("{label:<12} -> failed: {e}"),
        }
    }
    println!("\nThe transformed graph synthesizes at least as small and, with the");
    println!("rebalanced adder chain, reaches a shorter minimum sampling period.");
}

fn depth(g: &hsyn::dfg::Dfg) -> u64 {
    hsyn::dfg::analysis::critical_path(g, |n| u64::from(g.node(n).kind().is_schedulable()))
        .expect("acyclic")
}
