//! Design-space exploration for a 4th-order IIR filter: sweep throughput
//! slack (laxity) and objective, and print the resulting area/power
//! frontier — the workflow the paper's introduction motivates for
//! signal-processing ASICs.
//!
//! ```text
//! cargo run --release --example filter_design_space
//! ```

use hsyn::core::{explore, pareto_front, Objective, SynthesisConfig};
use hsyn::dfg::benchmarks;
use hsyn::lib::papers::table1_library;
use hsyn::rtl::ModuleLibrary;

fn main() {
    let bench = benchmarks::iir();
    let mut mlib = ModuleLibrary::from_simple(table1_library());
    mlib.equiv = bench.equiv.clone();

    println!("4th-order IIR (two biquad sections), hierarchical synthesis\n");
    let mut base = SynthesisConfig::new(Objective::Area);
    base.max_passes = 6;
    let sweep = explore(&bench.hierarchy, &mlib, &base, &[1.2, 1.7, 2.2, 2.7, 3.2]);
    let points = sweep.points;
    for s in &sweep.skipped {
        println!(
            "skipped L.F. {} ({:?}-optimized): {}",
            s.laxity, s.objective, s.error
        );
    }
    println!(
        "{:<8}{:<10}{:>10}{:>12}{:>8}{:>10}",
        "L.F.", "objective", "area", "power", "Vdd", "time (s)"
    );
    for p in &points {
        println!(
            "{:<8.1}{:<10}{:>10.0}{:>12.4}{:>8.1}{:>10.2}",
            p.laxity,
            match p.objective {
                Objective::Area => "area",
                Objective::Power => "power",
            },
            p.area(),
            p.power(),
            p.report.design.op.vdd,
            p.report.elapsed_s
        );
    }

    println!("\nPareto front (non-dominated on area x power):");
    for p in pareto_front(&points) {
        println!(
            "  area {:>7.0}  power {:>8.4}   (L.F. {}, {:?}-optimized, {} V)",
            p.area(),
            p.power(),
            p.laxity,
            p.objective,
            p.report.design.op.vdd
        );
    }
    println!("\nReading the frontier: at tight laxity the tool must stay fast (high Vdd,");
    println!("parallel units); as slack grows, power mode trades it for slow low-energy");
    println!("multipliers and reduced supply voltage, while area mode folds units together.");
}
