//! Bring your own behavior: write a hierarchical DFG in the textual
//! format, declare building-block equivalences, and synthesize it — the
//! downstream-user workflow (`H-SYN` "reads in a textual description of the
//! hierarchical DFG").
//!
//! ```text
//! cargo run --release --example custom_behavior
//! ```

use hsyn::core::{synthesize, Objective, SynthesisConfig};
use hsyn::dfg::text;
use hsyn::lib::Library;
use hsyn::rtl::ModuleLibrary;

/// A correlator: two dot-products of a sliding window against fixed taps,
/// combined through a max — with tree and chain dot-product variants
/// declared equivalent so move A can substitute them.
const SOURCE: &str = "
dfg dot4_tree {
  input a0
  input a1
  input a2
  input a3
  input b0
  input b1
  input b2
  input b3
  m0 = mult a0 b0
  m1 = mult a1 b1
  m2 = mult a2 b2
  m3 = mult a3 b3
  s0 = add m0 m1
  s1 = add m2 m3
  output d = s2
  s2 = add s0 s1
}

dfg dot4_chain {
  input a0
  input a1
  input a2
  input a3
  input b0
  input b1
  input b2
  input b3
  m0 = mult a0 b0
  m1 = mult a1 b1
  m2 = mult a2 b2
  m3 = mult a3 b3
  s1 = add m0 m1
  s2 = add s1 m2
  output d = s3
  s3 = add s2 m3
}

dfg correlator {
  input x0
  input x1
  input x2
  input x3
  const t0 = 11
  const t1 = -7
  const t2 = 5
  const t3 = -3
  const u0 = 2
  const u1 = 9
  const u2 = -4
  const u3 = 6
  c0 = call dot4_tree x0 x1 x2 x3 t0 t1 t2 t3
  c1 = call dot4_tree x0 x1 x2 x3 u0 u1 u2 u3
  output peak = m
  m = max c0 c1
}

top correlator
equiv dot4_tree dot4_chain
";

fn main() {
    let parsed = text::parse(SOURCE).expect("the source above is well-formed");
    parsed.hierarchy.validate().expect("structurally valid");

    // The realistic default library: fast/slow adders and multipliers,
    // multi-function ALUs (max/min/compare), a pipelined multiplier.
    let mut mlib = ModuleLibrary::from_simple(Library::realistic());
    mlib.equiv = parsed.equiv.clone();

    for objective in [Objective::Area, Objective::Power] {
        let mut config = SynthesisConfig::new(objective);
        config.laxity_factor = 2.5;
        let report = synthesize(&parsed.hierarchy, &mlib, &config).expect("synthesizable");
        println!(
            "{:?}-optimized correlator: area {:.0}, power {:.4}, Vdd {} V, {} FUs, {:.2}s",
            objective,
            report.evaluation.area.total(),
            report.evaluation.power.power,
            report.design.op.vdd,
            report.design.top.built.total_fu_count(),
            report.elapsed_s
        );
    }
}
