//! `hsyn` — command-line driver: read a textual hierarchical DFG, run
//! H-SYN synthesis, and report the resulting architecture.
//!
//! ```text
//! hsyn <behavior.dfg> [options]
//!
//! options:
//!   --objective area|power   what to optimize            (default: power)
//!   --laxity <f>             sampling period / minimum   (default: 2.2)
//!   --period <ns>            explicit sampling period (overrides --laxity)
//!   --library table1|realistic                           (default: realistic)
//!   --flat                   flattened synthesis (the baseline)
//!   --paranoid               verify cross-layer invariants after every
//!                            accepted move (observation-only when legal)
//!   --no-incremental         recompute every cost from scratch instead of
//!                            using the per-module evaluation cache
//!   --shadow-eval            run the full evaluation alongside every cached
//!                            one and panic on the first bit-level divergence
//!   --no-transactional       clone the design per candidate instead of
//!                            speculating in place with an undo journal
//!   --cosim-check            co-simulate every optimized configuration
//!                            against the behavioral reference and skip
//!                            configurations whose outputs diverge
//!   --netlist                print the structural netlist
//!   --fsm                    print the FSM controller
//!   --verilog <file>         write structural Verilog
//!   --dot <file>             write the hierarchy as Graphviz DOT
//!   --power-report           print the per-module power attribution
//!   --seed <n>               trace RNG seed
//!   --parallel <n>           worker threads for the (Vdd, clock) sweep
//!                            (default: one per core; results identical
//!                            for every setting)
//!   --intra-jobs <n>         worker threads for the candidate scan inside
//!                            each configuration; 0 = one per core
//!                            (default: 1; results identical for every
//!                            setting, transactional mode only)
//!   --result-json            print only the canonical deterministic report
//!                            (what the serve differential suite compares)
//!
//! hsyn lint [<behavior.dfg> | --benchmark NAME | --all-benchmarks] [options]
//!
//! options:
//!   --synthesize             also synthesize and lint the resulting design
//!   --objective area|power|both   objective(s) for --synthesize (default: both)
//!   --library table1|realistic                           (default: realistic)
//!   --laxity <f>             laxity factor for --synthesize (default: 2.2)
//!   --allow <CODE>           suppress a rule (repeatable, e.g. --allow SCH005)
//!   --deny-warnings          exit nonzero on warnings too, not just errors
//!   --json                   machine-readable diagnostics
//!
//! hsyn analyze [<behavior.dfg> | --benchmark NAME | --all-benchmarks] [options]
//!
//! options:
//!   --objective area|power|both   objective(s) to analyze (default: both)
//!   --library table1|realistic                           (default: realistic)
//!   --laxity <f>             laxity factor (default: 2.2)
//!   --json                   machine-readable report (deterministic:
//!                            wall-clock excluded, floats as bit patterns)
//!
//! Synthesizes each target, proves per-port width certificates by abstract
//! interpretation, verifies them by certified re-execution against the
//! behavioral reference, and reports baseline vs width-sized area/power.
//! Any certificate violation or output mismatch exits nonzero.
//!
//! hsyn cosim [<behavior.dfg> | --benchmark NAME | --all-benchmarks] [options]
//!
//! options:
//!   --objective area|power|both   objective(s) to check (default: both)
//!   --library table1|realistic                           (default: realistic)
//!   --laxity <f>             laxity factor (default: 2.2)
//!   --flat                   co-simulate the flattened baseline
//!   --iters <n>              trace length in iterations (default: 32)
//!   --seed <n>               trace / fuzz RNG seed
//!   --fuzz <n>               run N coverage-guided random-DFG cases instead
//!                            of a fixed behavior
//!   --json <file>            write a divergence reproducer as JSON
//!
//! hsyn serve [options]
//!
//! options:
//!   --port <n>               listen port on 127.0.0.1 (default: 0 = free port)
//!   --cache-dir <dir>        persistent job/area cache (default: in-memory)
//!   --jobs <n>               concurrent synthesis workers (default: 2)
//!   --queue-cap <n>          bounded job-queue capacity (default: 64)
//!
//! hsyn submit --connect HOST:PORT [<behavior.dfg> | --benchmark NAME] [options]
//!
//! options:
//!   --objective/--laxity/--period/--library/--flat/--seed/--lns-iters/
//!   --intra-jobs             as for synthesis, forwarded in the job spec
//!   --deadline-ms <n>        abort the job after N ms (structured error)
//!   --tag <t>                label for targeted --cancel T
//!   --no-cache               bypass the daemon's response cache
//!   --verilog                also return structural Verilog
//!   --result-json            print only the canonical report
//!   --ping | --stats | --cancel TAG | --shutdown
//!                            daemon actions instead of a job
//!
//! Exit status: 0 clean (warnings allowed), 1 error diagnostics, failed
//! runs, or co-simulation divergences, 2 usage errors.
//! ```

use hsyn::core::{analyze, synthesize, Objective, SynthesisConfig};
use hsyn::dfg::{benchmarks, reference_outputs, text, EquivClasses, Hierarchy};
use hsyn::lib::{papers::table1_library, Library};
use hsyn::lint::{
    diagnostics_to_json, error_count, lint_hierarchy_with, verify_design_with, DesignView,
    Diagnostic, LintConfig,
};
use hsyn::rtl::{cosimulate, generate_fsm, netlist_text, verilog_text, ModuleLibrary};
use hsyn::util::Json;
use std::process::ExitCode;

fn usage() -> ExitCode {
    eprintln!(
        "usage: hsyn [<behavior.dfg> | --benchmark NAME] [--objective area|power]\n\
         \x20           [--laxity F] [--period NS]\n\
         \x20           [--library table1|realistic] [--flat] [--paranoid] [--netlist]\n\
         \x20           [--no-incremental] [--shadow-eval] [--no-transactional]\n\
         \x20           [--cosim-check] [--fsm] [--verilog FILE]\n\
         \x20           [--dot FILE] [--power-report] [--seed N] [--parallel N]\n\
         \x20           [--intra-jobs N] [--lns-iters N]\n\
         \x20      hsyn lint [<behavior.dfg> | --benchmark NAME | --all-benchmarks]\n\
         \x20           [--synthesize] [--objective area|power|both] [--laxity F]\n\
         \x20           [--library table1|realistic] [--allow CODE] [--json]\n\
         \x20           [--deny-warnings]\n\
         \x20      hsyn analyze [<behavior.dfg> | --benchmark NAME | --all-benchmarks]\n\
         \x20           [--objective area|power|both] [--laxity F]\n\
         \x20           [--library table1|realistic] [--json]\n\
         \x20      hsyn cosim [<behavior.dfg> | --benchmark NAME | --all-benchmarks]\n\
         \x20           [--objective area|power|both] [--laxity F] [--flat]\n\
         \x20           [--library table1|realistic] [--iters N] [--seed N]\n\
         \x20           [--fuzz N] [--json FILE]\n\
         \x20      hsyn serve [--port N] [--cache-dir DIR] [--jobs N]\n\
         \x20           [--queue-cap N]\n\
         \x20      hsyn submit --connect HOST:PORT\n\
         \x20           [<behavior.dfg> | --benchmark NAME] [--objective area|power]\n\
         \x20           [--laxity F] [--period NS] [--library table1|realistic]\n\
         \x20           [--flat] [--seed N] [--lns-iters N] [--intra-jobs N]\n\
         \x20           [--deadline-ms N] [--tag TAG] [--no-cache] [--verilog]\n\
         \x20           [--result-json] | --ping | --stats | --cancel TAG |\n\
         \x20           --shutdown"
    );
    ExitCode::from(2)
}

/// Render an approximate byte count with a binary unit suffix.
fn format_bytes(bytes: u64) -> String {
    if bytes >= 1 << 20 {
        format!("{:.1} MiB", bytes as f64 / (1 << 20) as f64)
    } else if bytes >= 1 << 10 {
        format!("{:.1} KiB", bytes as f64 / (1 << 10) as f64)
    } else {
        format!("{bytes} B")
    }
}

/// Parse a library name shared by both subcommands.
fn library_by_name(name: &str) -> Option<Library> {
    match name {
        "table1" => Some(table1_library()),
        "realistic" => Some(Library::realistic()),
        _ => {
            eprintln!("unknown library `{name}`; available libraries: table1, realistic");
            None
        }
    }
}

/// Every registered benchmark name on one line, for `--benchmark` error help.
fn benchmark_names() -> String {
    benchmarks::all()
        .iter()
        .map(|b| b.name)
        .collect::<Vec<_>>()
        .join(", ")
}

fn main() -> ExitCode {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("lint") => lint_main(args.split_off(1)),
        Some("analyze") => analyze_main(args.split_off(1)),
        Some("cosim") => cosim_main(args.split_off(1)),
        Some("serve") => serve_main(args.split_off(1)),
        Some("submit") => submit_main(args.split_off(1)),
        // A bare first word that is neither a flag nor a readable behavior
        // file is almost certainly a mistyped subcommand; say so instead of
        // failing later with a confusing "cannot read" error.
        Some(word) if !word.starts_with('-') && !std::path::Path::new(word).exists() => {
            eprintln!(
                "unknown subcommand `{word}` (and no such file); \
                 subcommands: serve, submit, lint, analyze, cosim"
            );
            ExitCode::from(2)
        }
        _ => synth_main(args),
    }
}

/// A behavior to lint or co-simulate: its display name, hierarchy, and
/// equivalences.
struct BehaviorTarget {
    name: String,
    hierarchy: Hierarchy,
    equiv: EquivClasses,
}

/// Resolve the `<behavior.dfg> | --benchmark NAME | --all-benchmarks`
/// selection shared by `lint` and `cosim` into concrete targets. Exactly
/// one source must be given.
fn collect_targets(
    input: Option<String>,
    bench_name: Option<String>,
    all_benchmarks: bool,
) -> Result<Vec<BehaviorTarget>, ExitCode> {
    let sources = input.is_some() as u8 + bench_name.is_some() as u8 + all_benchmarks as u8;
    if sources != 1 {
        eprintln!("choose exactly one of <behavior.dfg>, --benchmark, --all-benchmarks");
        return Err(usage());
    }
    let mut targets = Vec::new();
    if let Some(path) = input {
        let source = match std::fs::read_to_string(&path) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("cannot read {path}: {e}");
                return Err(ExitCode::FAILURE);
            }
        };
        match text::parse(&source) {
            Ok(p) => targets.push(BehaviorTarget {
                name: path,
                hierarchy: p.hierarchy,
                equiv: p.equiv,
            }),
            Err(e) => {
                eprintln!("{path}: {e}");
                return Err(ExitCode::FAILURE);
            }
        }
    } else if let Some(name) = bench_name {
        match benchmarks::by_name(&name) {
            Some(b) => targets.push(BehaviorTarget {
                name: b.name.to_owned(),
                hierarchy: b.hierarchy,
                equiv: b.equiv,
            }),
            None => {
                eprintln!(
                    "unknown benchmark `{name}`; available benchmarks: {}",
                    benchmark_names()
                );
                return Err(ExitCode::FAILURE);
            }
        }
    } else {
        for b in benchmarks::all() {
            targets.push(BehaviorTarget {
                name: b.name.to_owned(),
                hierarchy: b.hierarchy,
                equiv: b.equiv,
            });
        }
    }
    Ok(targets)
}

/// The `hsyn lint` subcommand: verify cross-layer IR invariants of a
/// textual DFG or a built-in benchmark, optionally synthesizing first and
/// linting the resulting design at its operating point.
fn lint_main(args: Vec<String>) -> ExitCode {
    let mut input: Option<String> = None;
    let mut bench_name: Option<String> = None;
    let mut all_benchmarks = false;
    let mut do_synthesize = false;
    let mut objectives = vec![Objective::Area, Objective::Power];
    let mut library = "realistic".to_owned();
    let mut laxity = 2.2f64;
    let mut json = false;
    let mut deny_warnings = false;
    let mut lint_cfg = LintConfig::new();

    let mut it = args.into_iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--benchmark" => match it.next() {
                Some(v) => bench_name = Some(v),
                None => return usage(),
            },
            "--all-benchmarks" => all_benchmarks = true,
            "--synthesize" => do_synthesize = true,
            "--objective" => match it.next().as_deref() {
                Some("area") => objectives = vec![Objective::Area],
                Some("power") => objectives = vec![Objective::Power],
                Some("both") => objectives = vec![Objective::Area, Objective::Power],
                _ => return usage(),
            },
            "--library" => match it.next() {
                Some(v) => library = v,
                None => return usage(),
            },
            "--laxity" => match it.next().and_then(|v| v.parse::<f64>().ok()) {
                Some(v) if v > 0.0 && v.is_finite() => laxity = v,
                _ => {
                    eprintln!("--laxity expects a positive number");
                    return usage();
                }
            },
            "--allow" => match it.next() {
                Some(code) => {
                    if !lint_cfg.allow_str(&code) {
                        eprintln!("unknown rule code `{code}`");
                        return usage();
                    }
                }
                None => return usage(),
            },
            "--json" => json = true,
            "--deny-warnings" => deny_warnings = true,
            "--help" | "-h" => return usage(),
            other if input.is_none() && !other.starts_with('-') => {
                input = Some(other.to_owned());
            }
            other => {
                eprintln!("unknown argument `{other}`");
                return usage();
            }
        }
    }

    let targets = match collect_targets(input, bench_name, all_benchmarks) {
        Ok(t) => t,
        Err(code) => return code,
    };

    let Some(simple) = library_by_name(&library) else {
        return ExitCode::FAILURE;
    };

    let mut failed = false;
    let mut results: Vec<(String, Vec<Diagnostic>)> = Vec::new();
    for target in &targets {
        // The behavioral input itself.
        let diags = lint_hierarchy_with(&target.hierarchy, &lint_cfg);
        failed |= error_count(&diags) > 0 || (deny_warnings && !diags.is_empty());
        results.push((target.name.clone(), diags));

        if !do_synthesize {
            continue;
        }
        for &objective in &objectives {
            let label = format!(
                "{}[{}]",
                target.name,
                match objective {
                    Objective::Area => "area",
                    Objective::Power => "power",
                }
            );
            let mut mlib = ModuleLibrary::from_simple(simple.clone());
            mlib.equiv = target.equiv.clone();
            let mut config = SynthesisConfig::new(objective);
            config.laxity_factor = laxity;
            let report = match synthesize(&target.hierarchy, &mlib, &config) {
                Ok(r) => r,
                Err(e) => {
                    eprintln!("{label}: synthesis failed: {e}");
                    failed = true;
                    continue;
                }
            };
            let design = &report.design;
            let diags = verify_design_with(
                &DesignView {
                    hierarchy: &design.hierarchy,
                    module: &design.top.built,
                    lib: &mlib.simple,
                    vdd: design.op.vdd,
                    clk_ns: design.op.clk_ref_ns,
                    sampling_period: design.top.core.deadline,
                },
                &lint_cfg,
            );
            failed |= error_count(&diags) > 0 || (deny_warnings && !diags.is_empty());
            results.push((label, diags));
        }
    }

    if json {
        let arr: Vec<Json> = results
            .iter()
            .map(|(name, diags)| {
                Json::Obj(vec![
                    ("target".to_owned(), Json::Str(name.clone())),
                    ("errors".to_owned(), Json::Num(error_count(diags) as f64)),
                    ("diagnostics".to_owned(), diagnostics_to_json(diags)),
                ])
            })
            .collect();
        println!("{}", Json::Arr(arr).to_string_pretty());
    } else {
        for (name, diags) in &results {
            if diags.is_empty() {
                println!("{name}: clean");
            } else {
                println!(
                    "{name}: {} diagnostics ({} errors)",
                    diags.len(),
                    error_count(diags)
                );
                for d in diags {
                    println!("  {d}");
                }
            }
        }
        // Per-rule tally across every target, in stable code order.
        let mut by_code: std::collections::BTreeMap<&str, usize> =
            std::collections::BTreeMap::new();
        for (_, diags) in &results {
            for d in diags {
                *by_code.entry(d.code.as_str()).or_insert(0) += 1;
            }
        }
        if by_code.is_empty() {
            println!("rules fired: none");
        } else {
            let tally: Vec<String> = by_code
                .iter()
                .map(|(code, n)| format!("{code}x{n}"))
                .collect();
            println!("rules fired: {}", tally.join(" "));
        }
    }
    if failed {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

/// The `hsyn analyze` subcommand: synthesize each target, prove per-port
/// width certificates by abstract interpretation, verify them by certified
/// re-execution against the behavioral reference, and report baseline vs
/// width-sized area and power.
fn analyze_main(args: Vec<String>) -> ExitCode {
    let mut input: Option<String> = None;
    let mut bench_name: Option<String> = None;
    let mut all_benchmarks = false;
    let mut objectives = vec![Objective::Area, Objective::Power];
    let mut library = "realistic".to_owned();
    let mut laxity = 2.2f64;
    let mut json = false;

    let mut it = args.into_iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--benchmark" => match it.next() {
                Some(v) => bench_name = Some(v),
                None => return usage(),
            },
            "--all-benchmarks" => all_benchmarks = true,
            "--objective" => match it.next().as_deref() {
                Some("area") => objectives = vec![Objective::Area],
                Some("power") => objectives = vec![Objective::Power],
                Some("both") => objectives = vec![Objective::Area, Objective::Power],
                _ => return usage(),
            },
            "--library" => match it.next() {
                Some(v) => library = v,
                None => return usage(),
            },
            "--laxity" => match it.next().and_then(|v| v.parse::<f64>().ok()) {
                Some(v) if v > 0.0 && v.is_finite() => laxity = v,
                _ => {
                    eprintln!("--laxity expects a positive number");
                    return usage();
                }
            },
            "--json" => json = true,
            "--help" | "-h" => return usage(),
            other if input.is_none() && !other.starts_with('-') => {
                input = Some(other.to_owned());
            }
            other => {
                eprintln!("unknown argument `{other}`");
                return usage();
            }
        }
    }

    let targets = match collect_targets(input, bench_name, all_benchmarks) {
        Ok(t) => t,
        Err(code) => return code,
    };
    let Some(simple) = library_by_name(&library) else {
        return ExitCode::FAILURE;
    };

    let mut failed = false;
    let mut json_out: Vec<Json> = Vec::new();
    for target in &targets {
        let mut mlib = ModuleLibrary::from_simple(simple.clone());
        mlib.equiv = target.equiv.clone();
        let mut config = SynthesisConfig::new(Objective::Area);
        config.laxity_factor = laxity;
        let report = match analyze(&target.hierarchy, &mlib, &config, &objectives) {
            Ok(r) => r,
            Err(e) => {
                eprintln!("{}: {e}", target.name);
                failed = true;
                continue;
            }
        };
        if json {
            json_out.push(Json::Obj(vec![
                ("target".to_owned(), Json::Str(target.name.clone())),
                ("report".to_owned(), report.result_json_value()),
            ]));
            continue;
        }
        println!("{} (width {}):", target.name, report.width);
        for o in &report.objectives {
            let base_area = o.baseline.area.total();
            let sized_area = o.sized_area.total();
            let base_power = o.baseline.power.power;
            let sized_power = o.sized_power.power;
            let pct = |base: f64, sized: f64| {
                if base > 0.0 {
                    100.0 * (base - sized) / base
                } else {
                    0.0
                }
            };
            println!(
                "  {:>5}: area {base_area:.0} -> {sized_area:.0} (-{:.1}%), power {base_power:.4} -> {sized_power:.4} (-{:.1}%)",
                match o.objective {
                    Objective::Area => "area",
                    Objective::Power => "power",
                },
                pct(base_area, sized_area),
                pct(base_power, sized_power),
            );
            println!(
                "         certified {}/{} ports narrowed, {} resources below nominal, {} iterations verified",
                o.narrowed_ports, o.total_ports, o.narrowed_resources, o.verified_iterations
            );
            println!(
                "         fixpoint {:.3} ms over {} dfgs ({} summary runs, {} memo hits)",
                o.stats.fixpoint_s * 1e3,
                o.stats.dfgs_analyzed,
                o.stats.summary_runs,
                o.stats.memo_hits
            );
        }
    }
    if json {
        println!("{}", Json::Arr(json_out).to_string_pretty());
    }
    if failed {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

/// The `hsyn cosim` subcommand: synthesize a behavior (or a fleet of random
/// ones with `--fuzz`) and step the resulting FSM + datapath cycle by cycle,
/// requiring the outputs to match the flattened behavioral reference byte
/// for byte.
fn cosim_main(args: Vec<String>) -> ExitCode {
    let mut input: Option<String> = None;
    let mut bench_name: Option<String> = None;
    let mut all_benchmarks = false;
    let mut objectives = vec![Objective::Area, Objective::Power];
    let mut library = "realistic".to_owned();
    let mut laxity = 2.2f64;
    let mut flat = false;
    let mut iters = 32usize;
    let mut seed = 0xDAC_1998u64;
    let mut fuzz_cases: Option<u64> = None;
    let mut json_out: Option<String> = None;

    let mut it = args.into_iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--benchmark" => match it.next() {
                Some(v) => bench_name = Some(v),
                None => return usage(),
            },
            "--all-benchmarks" => all_benchmarks = true,
            "--objective" => match it.next().as_deref() {
                Some("area") => objectives = vec![Objective::Area],
                Some("power") => objectives = vec![Objective::Power],
                Some("both") => objectives = vec![Objective::Area, Objective::Power],
                _ => return usage(),
            },
            "--library" => match it.next() {
                Some(v) => library = v,
                None => return usage(),
            },
            "--laxity" => match it.next().and_then(|v| v.parse::<f64>().ok()) {
                Some(v) if v > 0.0 && v.is_finite() => laxity = v,
                _ => {
                    eprintln!("--laxity expects a positive number");
                    return usage();
                }
            },
            "--flat" => flat = true,
            "--iters" => match it.next().and_then(|v| v.parse::<usize>().ok()) {
                Some(v) if v >= 1 => iters = v,
                _ => {
                    eprintln!("--iters expects a positive iteration count");
                    return usage();
                }
            },
            "--seed" => match it.next().and_then(|v| v.parse().ok()) {
                Some(v) => seed = v,
                None => return usage(),
            },
            "--fuzz" => match it.next().and_then(|v| v.parse::<u64>().ok()) {
                Some(v) if v >= 1 => fuzz_cases = Some(v),
                _ => {
                    eprintln!("--fuzz expects a positive case count");
                    return usage();
                }
            },
            "--json" => match it.next() {
                Some(v) => json_out = Some(v),
                None => return usage(),
            },
            "--help" | "-h" => return usage(),
            other if input.is_none() && !other.starts_with('-') => {
                input = Some(other.to_owned());
            }
            other => {
                eprintln!("unknown argument `{other}`");
                return usage();
            }
        }
    }

    // Fuzz mode: coverage-guided random DFGs instead of a fixed behavior.
    if let Some(cases) = fuzz_cases {
        if input.is_some() || bench_name.is_some() || all_benchmarks {
            eprintln!("--fuzz takes no behavior argument");
            return usage();
        }
        let report = hsyn::core::fuzz_cosim(cases, seed);
        println!(
            "fuzz                : {} cases, {} executed, {} synthesis-infeasible",
            report.cases, report.executed, report.synth_failures
        );
        println!(
            "coverage            : {} distinct structural features",
            report.coverage.distinct()
        );
        let Some(div) = report.divergence else {
            println!("result              : clean");
            return ExitCode::SUCCESS;
        };
        eprintln!(
            "DIVERGENCE at case {} (seed {}, {}): {}",
            div.case,
            div.case_seed,
            match div.objective {
                Objective::Area => "area",
                Objective::Power => "power",
            },
            div.detail
        );
        let repro = div.to_json().to_string_pretty();
        if let Some(path) = json_out {
            if let Err(e) = std::fs::write(&path, &repro) {
                eprintln!("cannot write {path}: {e}");
            } else {
                eprintln!("reproducer written  : {path}");
            }
        } else {
            eprintln!("{repro}");
        }
        return ExitCode::FAILURE;
    }

    let targets = match collect_targets(input, bench_name, all_benchmarks) {
        Ok(t) => t,
        Err(code) => return code,
    };
    let Some(simple) = library_by_name(&library) else {
        return ExitCode::FAILURE;
    };

    let mut failed = false;
    for target in &targets {
        if let Err(e) = target.hierarchy.validate() {
            eprintln!("{}: {e}", target.name);
            failed = true;
            continue;
        }
        let flat_ref = target.hierarchy.flatten();
        for &objective in &objectives {
            let label = format!(
                "{}[{}{}]",
                target.name,
                match objective {
                    Objective::Area => "area",
                    Objective::Power => "power",
                },
                if flat { ",flat" } else { "" }
            );
            let mut mlib = ModuleLibrary::from_simple(simple.clone());
            mlib.equiv = target.equiv.clone();
            let mut config = SynthesisConfig::new(objective);
            config.laxity_factor = laxity;
            config.hierarchical = !flat;
            config.seed = seed;
            let report = match synthesize(&target.hierarchy, &mlib, &config) {
                Ok(r) => r,
                Err(e) => {
                    eprintln!("{label}: synthesis failed: {e}");
                    failed = true;
                    continue;
                }
            };
            let design = &report.design;
            let traces =
                hsyn::power::dsp_default(flat_ref.input_count(), iters, config.width, seed);
            let want = reference_outputs(&flat_ref, &traces.samples, traces.width);
            match cosimulate(
                &design.hierarchy,
                &design.top.built,
                &traces.samples,
                traces.width,
            ) {
                Ok(run) if run.outputs == want => {
                    println!(
                        "{label}: ok ({} iterations, {} cycles, {} FU fires, \
                         {} register writes, {} sub calls)",
                        run.stats.iterations,
                        run.stats.cycles,
                        run.stats.fu_fires,
                        run.stats.reg_writes,
                        run.stats.sub_calls
                    );
                }
                Ok(_) => {
                    eprintln!("{label}: DIVERGED: outputs differ from the behavioral reference");
                    failed = true;
                }
                Err(d) => {
                    eprintln!("{label}: DIVERGED: {d}");
                    failed = true;
                }
            }
        }
    }
    if failed {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

fn synth_main(args: Vec<String>) -> ExitCode {
    let mut input: Option<String> = None;
    let mut bench_name: Option<String> = None;
    let mut objective = Objective::Power;
    let mut laxity = 2.2f64;
    let mut period: Option<f64> = None;
    let mut library = "realistic".to_owned();
    let mut flat = false;
    let mut show_netlist = false;
    let mut show_fsm = false;
    let mut verilog_out: Option<String> = None;
    let mut dot_out: Option<String> = None;
    let mut power_report = false;
    let mut seed: Option<u64> = None;
    let mut parallel: Option<usize> = None;
    let mut intra_jobs: Option<usize> = None;
    let mut paranoid = false;
    let mut incremental = true;
    let mut shadow_eval = false;
    let mut transactional = true;
    let mut cosim_check = false;
    let mut lns_iters = 0usize;
    let mut result_json_only = false;

    let mut it = args.into_iter();
    while let Some(arg) = it.next() {
        let mut take = |name: &str| -> Option<String> {
            match it.next() {
                Some(v) => Some(v),
                None => {
                    eprintln!("{name} expects a value");
                    None
                }
            }
        };
        match arg.as_str() {
            "--objective" => match take("--objective").as_deref() {
                Some("area") => objective = Objective::Area,
                Some("power") => objective = Objective::Power,
                _ => return usage(),
            },
            "--laxity" => match take("--laxity").and_then(|v| v.parse::<f64>().ok()) {
                Some(v) if v > 0.0 && v.is_finite() => laxity = v,
                _ => {
                    eprintln!("--laxity expects a positive number");
                    return usage();
                }
            },
            "--period" => match take("--period").and_then(|v| v.parse::<f64>().ok()) {
                Some(v) if v > 0.0 && v.is_finite() => period = Some(v),
                _ => {
                    eprintln!("--period expects a positive number of nanoseconds");
                    return usage();
                }
            },
            "--library" => match take("--library") {
                Some(v) => library = v,
                None => return usage(),
            },
            "--flat" => flat = true,
            "--paranoid" => paranoid = true,
            "--no-incremental" => incremental = false,
            "--shadow-eval" => shadow_eval = true,
            "--no-transactional" => transactional = false,
            "--cosim-check" => cosim_check = true,
            "--netlist" => show_netlist = true,
            "--fsm" => show_fsm = true,
            "--verilog" => match take("--verilog") {
                Some(v) => verilog_out = Some(v),
                None => return usage(),
            },
            "--dot" => match take("--dot") {
                Some(v) => dot_out = Some(v),
                None => return usage(),
            },
            "--power-report" => power_report = true,
            "--seed" => match take("--seed").and_then(|v| v.parse().ok()) {
                Some(v) => seed = Some(v),
                None => return usage(),
            },
            "--parallel" => match take("--parallel").and_then(|v| v.parse::<usize>().ok()) {
                Some(v) if v >= 1 => parallel = Some(v),
                _ => {
                    eprintln!("--parallel expects a thread count of at least 1");
                    return usage();
                }
            },
            "--intra-jobs" => match take("--intra-jobs").and_then(|v| v.parse::<usize>().ok()) {
                // 0 is meaningful here: one worker per available core.
                Some(v) => intra_jobs = Some(v),
                None => {
                    eprintln!("--intra-jobs expects a thread count (0 = one per core)");
                    return usage();
                }
            },
            "--lns-iters" => match take("--lns-iters").and_then(|v| v.parse::<usize>().ok()) {
                Some(v) => lns_iters = v,
                None => {
                    eprintln!("--lns-iters expects an iteration count");
                    return usage();
                }
            },
            "--benchmark" => match take("--benchmark") {
                Some(v) => bench_name = Some(v),
                None => return usage(),
            },
            "--result-json" => result_json_only = true,
            "--help" | "-h" => return usage(),
            other if input.is_none() && !other.starts_with('-') => {
                input = Some(other.to_owned());
            }
            other => {
                eprintln!("unknown argument `{other}`");
                return usage();
            }
        }
    }
    // Reject flag combinations that contradict each other rather than
    // silently privileging one of them.
    if shadow_eval && !incremental {
        eprintln!(
            "--shadow-eval conflicts with --no-incremental: shadow evaluation \
             exists to cross-check the incremental cache, which --no-incremental \
             disables"
        );
        return ExitCode::from(2);
    }
    if !transactional && intra_jobs.is_some_and(|n| n != 1) {
        eprintln!(
            "--no-transactional conflicts with --intra-jobs {}: the intra-config \
             candidate scan requires transactional move application",
            intra_jobs.unwrap_or(0)
        );
        return ExitCode::from(2);
    }
    let (path, hierarchy, equiv) = match (input, bench_name) {
        (Some(_), Some(_)) => {
            eprintln!("choose one of <behavior.dfg> or --benchmark");
            return usage();
        }
        (None, None) => return usage(),
        (Some(path), None) => {
            let source = match std::fs::read_to_string(&path) {
                Ok(s) => s,
                Err(e) => {
                    eprintln!("cannot read {path}: {e}");
                    return ExitCode::FAILURE;
                }
            };
            let parsed = match text::parse(&source) {
                Ok(p) => p,
                Err(e) => {
                    eprintln!("{path}: {e}");
                    return ExitCode::FAILURE;
                }
            };
            if let Err(e) = parsed.hierarchy.validate() {
                eprintln!("{path}: {e}");
                return ExitCode::FAILURE;
            }
            (path, parsed.hierarchy, parsed.equiv)
        }
        (None, Some(name)) => match benchmarks::by_name(&name) {
            Some(b) => (b.name.to_owned(), b.hierarchy, b.equiv),
            None => {
                eprintln!(
                    "unknown benchmark `{name}`; available benchmarks: {}",
                    benchmark_names()
                );
                return ExitCode::FAILURE;
            }
        },
    };

    let Some(simple) = library_by_name(&library) else {
        return ExitCode::FAILURE;
    };
    let mut mlib = ModuleLibrary::from_simple(simple);
    mlib.equiv = equiv;

    let mut config = SynthesisConfig::new(objective);
    config.laxity_factor = laxity;
    config.sampling_period_ns = period;
    config.hierarchical = !flat;
    if let Some(s) = seed {
        config.seed = s;
    }
    if parallel.is_some() {
        config.parallelism = parallel;
    }
    if let Some(n) = intra_jobs {
        config.intra_parallelism = n;
    }
    config.paranoid = paranoid;
    config.incremental = incremental;
    config.shadow_eval = shadow_eval;
    config.transactional = transactional;
    config.cosim_check = cosim_check;
    config.lns_iters = lns_iters;

    let report = match synthesize(&hierarchy, &mlib, &config) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("synthesis failed: {e}");
            return ExitCode::FAILURE;
        }
    };

    if result_json_only {
        // The canonical deterministic report, nothing else: this is what
        // the serve differential suite byte-compares against daemon runs.
        println!("{}", report.result_json());
        return ExitCode::SUCCESS;
    }

    let design = &report.design;
    println!("behavior            : {}", path);
    println!(
        "mode                : {} / {}",
        if flat { "flattened" } else { "hierarchical" },
        match objective {
            Objective::Area => "area-optimized",
            Objective::Power => "power-optimized",
        }
    );
    println!("min sampling period : {:.1} ns", report.min_period_ns);
    println!("sampling period     : {:.1} ns", report.period_ns);
    println!("supply voltage      : {} V", design.op.vdd);
    println!(
        "clock               : {:.2} ns ({} cycles per sample)",
        design.op.physical_clk_ns(&mlib.simple),
        design.op.sampling_cycles
    );
    println!(
        "area                : {:.1}",
        report.evaluation.area.total()
    );
    println!("power               : {:.4}", report.evaluation.power.power);
    println!(
        "hardware            : {} functional units, {} registers",
        design.top.built.total_fu_count(),
        design.top.built.total_reg_count()
    );
    println!(
        "engine              : {} moves (A={} B={} C={} D={}), {} passes, {:.2}s",
        report.stats.applied_a
            + report.stats.applied_b
            + report.stats.applied_c
            + report.stats.applied_d,
        report.stats.applied_a,
        report.stats.applied_b,
        report.stats.applied_c,
        report.stats.applied_d,
        report.stats.passes,
        report.elapsed_s
    );
    println!(
        "configurations      : {} optimized, {} infeasible",
        report.per_config.len(),
        report.skipped_configs.len()
    );
    if paranoid {
        println!(
            "verifier            : clean, {:.3}s across {} configurations",
            report.per_config.iter().map(|c| c.verify_s).sum::<f64>(),
            report.per_config.len()
        );
    }
    if cosim_check {
        let flagged = report
            .skipped_configs
            .iter()
            .filter(|s| s.rule.as_deref() == Some("COSIM"))
            .count();
        println!(
            "cosim check         : {} configurations clean, {} diverged",
            report.per_config.len(),
            flagged
        );
    }
    if incremental || shadow_eval {
        let incr_s: f64 = report.per_config.iter().map(|c| c.eval_incr_s).sum();
        let full_s: f64 = report.per_config.iter().map(|c| c.eval_full_s).sum();
        let mut line = format!(
            "eval cache          : {} hits, {} misses, {incr_s:.3}s evaluating",
            report.stats.eval_cache_hits, report.stats.eval_cache_misses
        );
        if shadow_eval {
            line.push_str(&format!(" ({full_s:.3}s shadowed full, identical)"));
        }
        println!("{line}");
    }
    if transactional {
        let apply_s: f64 = report.per_config.iter().map(|c| c.apply_s).sum();
        println!(
            "move engine         : {} rolled back, {} undo-journal peak, {apply_s:.3}s applying",
            report.stats.moves_rolled_back,
            format_bytes(report.stats.undo_bytes_peak),
        );
    }
    if lns_iters > 0 {
        let lns_s: f64 = report.per_config.iter().map(|c| c.lns_s).sum();
        println!(
            "lns                 : {} ruins, {} accepted, {lns_s:.3}s refining",
            report.stats.lns_ruins, report.stats.lns_accepts
        );
    }
    if let Some(scaled) = &report.vdd_scaled {
        println!(
            "voltage-scaled      : {} V, power {:.4}",
            scaled.design.op.vdd, scaled.evaluation.power.power
        );
    }

    if show_netlist {
        println!("\n== netlist ==\n");
        println!(
            "{}",
            netlist_text(&design.hierarchy, &design.top.built, &mlib.simple)
        );
    }
    if show_fsm {
        let fsm = generate_fsm(&design.hierarchy, &design.top.built);
        println!("\n== controller ({} states) ==\n", fsm.state_count());
        println!("{fsm}");
    }
    if power_report {
        let traces = hsyn::power::dsp_default(
            design.hierarchy.dfg(design.top.core.dfg).input_count(),
            config.report_trace_len,
            config.width,
            config.seed ^ 0x5eed,
        );
        println!("\n== power attribution ==\n");
        print!(
            "{}",
            hsyn::power::report_text(
                &design.hierarchy,
                &design.top.built,
                &mlib.simple,
                &traces,
                &report.evaluation.power,
            )
        );
    }
    if let Some(dpath) = dot_out {
        let dot = hsyn::dfg::dot::hierarchy_to_dot(&design.hierarchy);
        if let Err(e) = std::fs::write(&dpath, dot) {
            eprintln!("cannot write {dpath}: {e}");
            return ExitCode::FAILURE;
        }
        println!("dot written         : {dpath}");
    }
    if let Some(vpath) = verilog_out {
        let v = verilog_text(&design.hierarchy, &design.top.built, &mlib.simple, 16);
        if let Err(e) = std::fs::write(&vpath, v) {
            eprintln!("cannot write {vpath}: {e}");
            return ExitCode::FAILURE;
        }
        println!("verilog written     : {vpath}");
    }
    ExitCode::SUCCESS
}

/// `hsyn serve`: run the synthesis daemon until a client sends `shutdown`.
fn serve_main(args: Vec<String>) -> ExitCode {
    use hsyn::serve::{ServeOptions, Server};

    let mut opts = ServeOptions {
        banner: true,
        ..ServeOptions::default()
    };
    let mut it = args.into_iter();
    while let Some(arg) = it.next() {
        let mut take = |name: &str| -> Option<String> {
            match it.next() {
                Some(v) => Some(v),
                None => {
                    eprintln!("{name} expects a value");
                    None
                }
            }
        };
        match arg.as_str() {
            "--port" => match take("--port").and_then(|v| v.parse::<u16>().ok()) {
                Some(p) => opts.addr = format!("127.0.0.1:{p}"),
                None => {
                    eprintln!("--port expects a port number");
                    return usage();
                }
            },
            "--cache-dir" => match take("--cache-dir") {
                Some(d) => opts.cache_dir = Some(std::path::PathBuf::from(d)),
                None => return usage(),
            },
            "--jobs" => match take("--jobs").and_then(|v| v.parse::<usize>().ok()) {
                Some(n) if n >= 1 => opts.workers = n,
                _ => {
                    eprintln!("--jobs expects a worker count of at least 1");
                    return usage();
                }
            },
            "--queue-cap" => match take("--queue-cap").and_then(|v| v.parse::<usize>().ok()) {
                Some(n) if n >= 1 => opts.queue_cap = n,
                _ => {
                    eprintln!("--queue-cap expects a capacity of at least 1");
                    return usage();
                }
            },
            "--help" | "-h" => return usage(),
            other => {
                eprintln!("unknown argument `{other}`");
                return usage();
            }
        }
    }
    let server = match Server::bind(opts) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("cannot start daemon: {e}");
            return ExitCode::FAILURE;
        }
    };
    match server.run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("daemon failed: {e}");
            ExitCode::FAILURE
        }
    }
}

/// `hsyn submit`: one synchronous client interaction with a running daemon.
fn submit_main(args: Vec<String>) -> ExitCode {
    use hsyn::serve::{Client, JobSource, JobSpec};

    let mut connect: Option<String> = None;
    let mut input: Option<String> = None;
    let mut bench_name: Option<String> = None;
    let mut objective = Objective::Power;
    let mut laxity: Option<f64> = None;
    let mut period: Option<f64> = None;
    let mut library: Option<String> = None;
    let mut flat = false;
    let mut seed: Option<u64> = None;
    let mut lns_iters: Option<usize> = None;
    let mut intra_jobs: Option<usize> = None;
    let mut deadline_ms: Option<u64> = None;
    let mut tag: Option<String> = None;
    let mut no_cache = false;
    let mut want_verilog = false;
    let mut result_json_only = false;
    let mut do_ping = false;
    let mut do_stats = false;
    let mut do_shutdown = false;
    let mut cancel_tag: Option<String> = None;

    let mut it = args.into_iter();
    while let Some(arg) = it.next() {
        let mut take = |name: &str| -> Option<String> {
            match it.next() {
                Some(v) => Some(v),
                None => {
                    eprintln!("{name} expects a value");
                    None
                }
            }
        };
        match arg.as_str() {
            "--connect" => match take("--connect") {
                Some(v) => connect = Some(v),
                None => return usage(),
            },
            "--benchmark" => match take("--benchmark") {
                Some(v) => bench_name = Some(v),
                None => return usage(),
            },
            "--objective" => match take("--objective").as_deref() {
                Some("area") => objective = Objective::Area,
                Some("power") => objective = Objective::Power,
                _ => return usage(),
            },
            "--laxity" => match take("--laxity").and_then(|v| v.parse::<f64>().ok()) {
                Some(v) if v > 0.0 && v.is_finite() => laxity = Some(v),
                _ => {
                    eprintln!("--laxity expects a positive number");
                    return usage();
                }
            },
            "--period" => match take("--period").and_then(|v| v.parse::<f64>().ok()) {
                Some(v) if v > 0.0 && v.is_finite() => period = Some(v),
                _ => {
                    eprintln!("--period expects a positive number of nanoseconds");
                    return usage();
                }
            },
            "--library" => match take("--library") {
                Some(v) => library = Some(v),
                None => return usage(),
            },
            "--flat" => flat = true,
            "--seed" => match take("--seed").and_then(|v| v.parse().ok()) {
                Some(v) => seed = Some(v),
                None => return usage(),
            },
            "--lns-iters" => match take("--lns-iters").and_then(|v| v.parse().ok()) {
                Some(v) => lns_iters = Some(v),
                None => return usage(),
            },
            "--intra-jobs" => match take("--intra-jobs").and_then(|v| v.parse().ok()) {
                Some(v) => intra_jobs = Some(v),
                None => return usage(),
            },
            "--deadline-ms" => match take("--deadline-ms").and_then(|v| v.parse().ok()) {
                Some(v) => deadline_ms = Some(v),
                None => return usage(),
            },
            "--tag" => match take("--tag") {
                Some(v) => tag = Some(v),
                None => return usage(),
            },
            "--no-cache" => no_cache = true,
            "--verilog" => want_verilog = true,
            "--result-json" => result_json_only = true,
            "--ping" => do_ping = true,
            "--stats" => do_stats = true,
            "--shutdown" => do_shutdown = true,
            "--cancel" => match take("--cancel") {
                Some(v) => cancel_tag = Some(v),
                None => return usage(),
            },
            "--help" | "-h" => return usage(),
            other if input.is_none() && !other.starts_with('-') => {
                input = Some(other.to_owned());
            }
            other => {
                eprintln!("unknown argument `{other}`");
                return usage();
            }
        }
    }

    let Some(addr) = connect else {
        eprintln!("submit needs --connect HOST:PORT");
        return usage();
    };
    let mut client = match Client::connect(&addr) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("cannot connect to {addr}: {e}");
            return ExitCode::FAILURE;
        }
    };

    // Action requests are exclusive of a job submission.
    if do_ping {
        return match client.ping() {
            Ok(()) => {
                println!("pong");
                ExitCode::SUCCESS
            }
            Err(e) => {
                eprintln!("{e}");
                ExitCode::FAILURE
            }
        };
    }
    if do_stats {
        return match client.stats() {
            Ok(v) => {
                println!("{}", v.to_string_pretty());
                ExitCode::SUCCESS
            }
            Err(e) => {
                eprintln!("{e}");
                ExitCode::FAILURE
            }
        };
    }
    if let Some(t) = cancel_tag {
        return match client.cancel(&t) {
            Ok(n) => {
                println!("cancelled {n} job(s) tagged `{t}`");
                ExitCode::SUCCESS
            }
            Err(e) => {
                eprintln!("{e}");
                ExitCode::FAILURE
            }
        };
    }
    if do_shutdown {
        return match client.shutdown() {
            Ok(n) => {
                println!("daemon drained and stopped after {n} job(s)");
                ExitCode::SUCCESS
            }
            Err(e) => {
                eprintln!("{e}");
                ExitCode::FAILURE
            }
        };
    }

    let source = match (input, bench_name) {
        (Some(_), Some(_)) => {
            eprintln!("choose one of <behavior.dfg> or --benchmark");
            return usage();
        }
        (None, None) => {
            eprintln!("submit needs a job (<behavior.dfg> or --benchmark) or an action flag");
            return usage();
        }
        (Some(path), None) => match std::fs::read_to_string(&path) {
            Ok(s) => JobSource::Text(s),
            Err(e) => {
                eprintln!("cannot read {path}: {e}");
                return ExitCode::FAILURE;
            }
        },
        (None, Some(name)) => JobSource::Bench(name),
    };
    let mut job = JobSpec::new(source);
    job.objective = objective;
    if let Some(v) = laxity {
        job.laxity = v;
    }
    job.period_ns = period;
    if let Some(l) = library {
        job.library = l;
    }
    job.flat = flat;
    job.seed = seed;
    if let Some(v) = lns_iters {
        job.lns_iters = v;
    }
    if let Some(v) = intra_jobs {
        job.intra_jobs = v;
    }
    job.deadline_ms = deadline_ms;
    job.tag = tag;
    job.no_cache = no_cache;
    job.want_verilog = want_verilog;

    match client.submit(&job) {
        Ok(result) => {
            if result_json_only {
                println!("{}", result.result_json);
            } else {
                println!(
                    "served {} in {:.1} ms ({:.1} ms queued), {} warm area hits",
                    if result.cached { "from cache" } else { "fresh" },
                    result.wall_ms,
                    result.queue_ms,
                    result.warm_area_hits
                );
                println!("{}", result.result_json);
                if let Some(v) = &result.verilog {
                    println!("\n== verilog ==\n\n{v}");
                }
            }
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("{e}");
            ExitCode::FAILURE
        }
    }
}
