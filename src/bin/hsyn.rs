//! `hsyn` — command-line driver: read a textual hierarchical DFG, run
//! H-SYN synthesis, and report the resulting architecture.
//!
//! ```text
//! hsyn <behavior.dfg> [options]
//!
//! options:
//!   --objective area|power   what to optimize            (default: power)
//!   --laxity <f>             sampling period / minimum   (default: 2.2)
//!   --period <ns>            explicit sampling period (overrides --laxity)
//!   --library table1|realistic                           (default: realistic)
//!   --flat                   flattened synthesis (the baseline)
//!   --netlist                print the structural netlist
//!   --fsm                    print the FSM controller
//!   --verilog <file>         write structural Verilog
//!   --dot <file>             write the hierarchy as Graphviz DOT
//!   --power-report           print the per-module power attribution
//!   --seed <n>               trace RNG seed
//!   --parallel <n>           worker threads for the (Vdd, clock) sweep
//!                            (default: one per core; results identical
//!                            for every setting)
//! ```

use hsyn::core::{synthesize, Objective, SynthesisConfig};
use hsyn::dfg::text;
use hsyn::lib::{papers::table1_library, Library};
use hsyn::rtl::{generate_fsm, netlist_text, verilog_text, ModuleLibrary};
use std::process::ExitCode;

fn usage() -> ExitCode {
    eprintln!(
        "usage: hsyn <behavior.dfg> [--objective area|power] [--laxity F] [--period NS]\n\
         \x20           [--library table1|realistic] [--flat] [--netlist] [--fsm]\n\
         \x20           [--verilog FILE] [--dot FILE] [--power-report] [--seed N]\n\
         \x20           [--parallel N]"
    );
    ExitCode::from(2)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut input: Option<String> = None;
    let mut objective = Objective::Power;
    let mut laxity = 2.2f64;
    let mut period: Option<f64> = None;
    let mut library = "realistic".to_owned();
    let mut flat = false;
    let mut show_netlist = false;
    let mut show_fsm = false;
    let mut verilog_out: Option<String> = None;
    let mut dot_out: Option<String> = None;
    let mut power_report = false;
    let mut seed: Option<u64> = None;
    let mut parallel: Option<usize> = None;

    let mut it = args.into_iter();
    while let Some(arg) = it.next() {
        let mut take = |name: &str| -> Option<String> {
            match it.next() {
                Some(v) => Some(v),
                None => {
                    eprintln!("{name} expects a value");
                    None
                }
            }
        };
        match arg.as_str() {
            "--objective" => match take("--objective").as_deref() {
                Some("area") => objective = Objective::Area,
                Some("power") => objective = Objective::Power,
                _ => return usage(),
            },
            "--laxity" => match take("--laxity").and_then(|v| v.parse().ok()) {
                Some(v) => laxity = v,
                None => return usage(),
            },
            "--period" => match take("--period").and_then(|v| v.parse().ok()) {
                Some(v) => period = Some(v),
                None => return usage(),
            },
            "--library" => match take("--library") {
                Some(v) => library = v,
                None => return usage(),
            },
            "--flat" => flat = true,
            "--netlist" => show_netlist = true,
            "--fsm" => show_fsm = true,
            "--verilog" => match take("--verilog") {
                Some(v) => verilog_out = Some(v),
                None => return usage(),
            },
            "--dot" => match take("--dot") {
                Some(v) => dot_out = Some(v),
                None => return usage(),
            },
            "--power-report" => power_report = true,
            "--seed" => match take("--seed").and_then(|v| v.parse().ok()) {
                Some(v) => seed = Some(v),
                None => return usage(),
            },
            "--parallel" => match take("--parallel").and_then(|v| v.parse().ok()) {
                Some(v) => parallel = Some(v),
                None => return usage(),
            },
            "--help" | "-h" => return usage(),
            other if input.is_none() && !other.starts_with('-') => {
                input = Some(other.to_owned());
            }
            other => {
                eprintln!("unknown argument `{other}`");
                return usage();
            }
        }
    }
    let Some(path) = input else { return usage() };

    let source = match std::fs::read_to_string(&path) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("cannot read {path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let parsed = match text::parse(&source) {
        Ok(p) => p,
        Err(e) => {
            eprintln!("{path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    if let Err(e) = parsed.hierarchy.validate() {
        eprintln!("{path}: {e}");
        return ExitCode::FAILURE;
    }

    let simple: Library = match library.as_str() {
        "table1" => table1_library(),
        "realistic" => Library::realistic(),
        other => {
            eprintln!("unknown library `{other}` (use table1 or realistic)");
            return ExitCode::FAILURE;
        }
    };
    let mut mlib = ModuleLibrary::from_simple(simple);
    mlib.equiv = parsed.equiv.clone();

    let mut config = SynthesisConfig::new(objective);
    config.laxity_factor = laxity;
    config.sampling_period_ns = period;
    config.hierarchical = !flat;
    if let Some(s) = seed {
        config.seed = s;
    }
    if parallel.is_some() {
        config.parallelism = parallel;
    }

    let report = match synthesize(&parsed.hierarchy, &mlib, &config) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("synthesis failed: {e}");
            return ExitCode::FAILURE;
        }
    };

    let design = &report.design;
    println!("behavior            : {}", path);
    println!(
        "mode                : {} / {}",
        if flat { "flattened" } else { "hierarchical" },
        match objective {
            Objective::Area => "area-optimized",
            Objective::Power => "power-optimized",
        }
    );
    println!("min sampling period : {:.1} ns", report.min_period_ns);
    println!("sampling period     : {:.1} ns", report.period_ns);
    println!("supply voltage      : {} V", design.op.vdd);
    println!(
        "clock               : {:.2} ns ({} cycles per sample)",
        design.op.physical_clk_ns(&mlib.simple),
        design.op.sampling_cycles
    );
    println!(
        "area                : {:.1}",
        report.evaluation.area.total()
    );
    println!("power               : {:.4}", report.evaluation.power.power);
    println!(
        "hardware            : {} functional units, {} registers",
        design.top.built.total_fu_count(),
        design.top.built.total_reg_count()
    );
    println!(
        "engine              : {} moves (A={} B={} C={} D={}), {} passes, {:.2}s",
        report.stats.applied_a
            + report.stats.applied_b
            + report.stats.applied_c
            + report.stats.applied_d,
        report.stats.applied_a,
        report.stats.applied_b,
        report.stats.applied_c,
        report.stats.applied_d,
        report.stats.passes,
        report.elapsed_s
    );
    println!(
        "configurations      : {} optimized, {} infeasible",
        report.per_config.len(),
        report.skipped_configs.len()
    );
    if let Some(scaled) = &report.vdd_scaled {
        println!(
            "voltage-scaled      : {} V, power {:.4}",
            scaled.design.op.vdd, scaled.evaluation.power.power
        );
    }

    if show_netlist {
        println!("\n== netlist ==\n");
        println!(
            "{}",
            netlist_text(&design.hierarchy, &design.top.built, &mlib.simple)
        );
    }
    if show_fsm {
        let fsm = generate_fsm(&design.hierarchy, &design.top.built);
        println!("\n== controller ({} states) ==\n", fsm.state_count());
        println!("{fsm}");
    }
    if power_report {
        let traces = hsyn::power::dsp_default(
            design.hierarchy.dfg(design.top.core.dfg).input_count(),
            config.report_trace_len,
            config.width,
            config.seed ^ 0x5eed,
        );
        println!("\n== power attribution ==\n");
        print!(
            "{}",
            hsyn::power::report_text(
                &design.hierarchy,
                &design.top.built,
                &mlib.simple,
                &traces,
                &report.evaluation.power,
            )
        );
    }
    if let Some(dpath) = dot_out {
        let dot = hsyn::dfg::dot::hierarchy_to_dot(&design.hierarchy);
        if let Err(e) = std::fs::write(&dpath, dot) {
            eprintln!("cannot write {dpath}: {e}");
            return ExitCode::FAILURE;
        }
        println!("dot written         : {dpath}");
    }
    if let Some(vpath) = verilog_out {
        let v = verilog_text(&design.hierarchy, &design.top.built, &mlib.simple, 16);
        if let Err(e) = std::fs::write(&vpath, v) {
            eprintln!("cannot write {vpath}: {e}");
            return ExitCode::FAILURE;
        }
        println!("verilog written     : {vpath}");
    }
    ExitCode::SUCCESS
}
