//! # hsyn — hierarchical high-level synthesis for power and area
//!
//! A Rust reproduction of *“Synthesis of Power-Optimized and Area-Optimized
//! Circuits from Hierarchical Behavioral Descriptions”* (Lakshminarayana &
//! Jha, DAC 1998). This facade crate re-exports the whole workspace:
//!
//! * [`dfg`] — hierarchical data-flow graph IR, textual format, benchmarks;
//! * [`dataflow`] — abstract-interpretation dataflow analysis and width
//!   certificates (drives lint's dataflow rules and width-aware sizing);
//! * [`lib`] — module libraries, technology (Vdd/clock) models;
//! * [`sched`] — scheduling, profiles/environments, slack analysis;
//! * [`rtl`] — RTL circuit IR, FSM controllers, RTL embedding;
//! * [`power`] — trace-driven switched-capacitance power estimation;
//! * [`lint`] — cross-layer IR verifier: structured diagnostics over DFGs,
//!   schedules, bindings, and operating points (drives the engine's
//!   paranoid mode and the `hsyn lint` subcommand);
//! * [`core`] — the iterative-improvement synthesis engine (moves A–D,
//!   Vdd/clock selection, flattened baseline);
//! * [`serve`] — synthesis-as-a-service: the `hsyn serve` daemon, its
//!   length-prefixed wire protocol, the persistent cross-job cache, and
//!   the synchronous client behind `hsyn submit`;
//! * [`util`] — zero-dependency helpers (JSON, thread pool, framing).
//!
//! ## Quickstart
//!
//! ```
//! use hsyn::prelude::*;
//!
//! let bench = hsyn::dfg::benchmarks::paulin();
//! let library = hsyn::lib::Library::realistic();
//! // See `examples/quickstart.rs` for a full synthesis run.
//! assert_eq!(bench.name, "paulin");
//! assert!(library.fu_count() > 0);
//! ```

pub use hsyn_core as core;
pub use hsyn_dataflow as dataflow;
pub use hsyn_dfg as dfg;
pub use hsyn_lib as lib;
pub use hsyn_lint as lint;
pub use hsyn_power as power;
pub use hsyn_rtl as rtl;
pub use hsyn_sched as sched;
pub use hsyn_serve as serve;
pub use hsyn_util as util;

/// Commonly used items, for glob import in examples and tests.
pub mod prelude {
    pub use hsyn_core::{synthesize, DesignPoint, Objective, SynthesisConfig, SynthesisReport};
    pub use hsyn_dfg::{Dfg, DfgId, EquivClasses, Hierarchy, NodeId, Operation, VarRef};
    pub use hsyn_lib::{Library, Technology};
    pub use hsyn_lint::{verify_design, DesignView, Diagnostic, LintConfig, RuleCode};
}
