//! API-level flows a downstream user exercises: textual input to RTL,
//! pipelined units, the realistic library, and ablation-style engine
//! configuration.

use hsyn::core::{synthesize, Objective, SynthesisConfig};
use hsyn::dfg::text;
use hsyn::lib::Library;
use hsyn::rtl::ModuleLibrary;

fn quick(objective: Objective) -> SynthesisConfig {
    let mut c = SynthesisConfig::new(objective);
    c.max_passes = 3;
    c.candidate_limit = 3;
    c.eval_trace_len = 16;
    c.report_trace_len = 48;
    c.max_clock_candidates = 2;
    c
}

#[test]
fn textual_input_synthesizes() {
    let src = "
dfg ma {
  input x
  input c0
  input c1
  m = mult c0 x
  output y = s
  s = add m a
  a = mult c1 s@1
}
top ma
";
    let parsed = text::parse(src).expect("parses");
    parsed.hierarchy.validate().expect("valid");
    let mut mlib = ModuleLibrary::from_simple(Library::realistic());
    mlib.equiv = parsed.equiv.clone();
    let mut config = quick(Objective::Power);
    config.laxity_factor = 2.0;
    let report = synthesize(&parsed.hierarchy, &mlib, &config).expect("synthesizes");
    assert!(report.evaluation.power.power > 0.0);
}

#[test]
fn realistic_library_with_pipelined_multiplier() {
    // A multiply-heavy graph where a pipelined multiplier (II = 1) shines:
    // four independent multiplies through one unit need only 4 issue slots.
    let src = "
dfg quadmul {
  input a
  input b
  input c
  input d
  m0 = mult a b
  m1 = mult b c
  m2 = mult c d
  m3 = mult d a
  s0 = add m0 m1
  s1 = add m2 m3
  output y = s2
  s2 = add s0 s1
}
top quadmul
";
    let parsed = text::parse(src).expect("parses");
    let lib = Library::realistic();
    assert!(
        lib.fus().any(|(_, f)| f.is_pipelined()),
        "realistic library has a pipelined unit"
    );
    let mlib = ModuleLibrary::from_simple(lib);
    let mut config = quick(Objective::Area);
    config.laxity_factor = 3.0;
    let report = synthesize(&parsed.hierarchy, &mlib, &config).expect("synthesizes");
    // At laxity 3 the area engine should fold the four multipliers into
    // fewer instances.
    assert!(
        report.design.top.built.fus().len() < 7,
        "sharing expected, got {} FUs",
        report.design.top.built.fus().len()
    );
}

#[test]
fn multi_function_alu_absorbs_mixed_ops() {
    // add/sub/min/max traffic can share a single ALU when slack permits.
    let src = "
dfg mixed {
  input a
  input b
  s = add a b
  d = sub a b
  lo = min s d
  hi = max s d
  output y = r
  r = sub hi lo
}
top mixed
";
    let parsed = text::parse(src).expect("parses");
    let mlib = ModuleLibrary::from_simple(Library::realistic());
    let mut config = quick(Objective::Area);
    config.laxity_factor = 3.2;
    let report = synthesize(&parsed.hierarchy, &mlib, &config).expect("synthesizes");
    let built = &report.design.top.built;
    assert!(
        built.fus().len() <= 4,
        "five ALU-class ops should share units: got {}",
        built.fus().len()
    );
    // Some unit carries more than one operation class.
    let fsm = hsyn::rtl::generate_fsm(&report.design.hierarchy, built);
    let mut multi = false;
    for i in 0..built.fus().len() {
        let mut ops = std::collections::HashSet::new();
        for w in &fsm.programs[0].words {
            if let Some(op) = w.fu_ops[i] {
                ops.insert(op);
            }
        }
        multi |= ops.len() >= 2;
    }
    assert!(multi, "at least one multi-function unit expected");
}

#[test]
fn resynthesis_can_be_disabled() {
    let bench = hsyn::dfg::benchmarks::test1();
    let (b2, mlib) = hsyn::rtl::papers::test1_complex_library();
    let _ = bench;
    let mut with_b = quick(Objective::Power);
    with_b.laxity_factor = 3.2;
    let mut without_b = with_b.clone();
    without_b.resynth_depth = 0;
    let r1 = synthesize(&b2.hierarchy, &mlib, &with_b).expect("with move B");
    let r0 = synthesize(&b2.hierarchy, &mlib, &without_b).expect("without move B");
    assert_eq!(r0.stats.applied_b, 0, "depth 0 disables move B");
    // Both still produce valid designs.
    assert!(r0.evaluation.power.power > 0.0);
    assert!(r1.evaluation.power.power > 0.0);
}

#[test]
fn verilog_export_is_structurally_complete() {
    let bench = hsyn::dfg::benchmarks::iir();
    let mut mlib = ModuleLibrary::from_simple(hsyn::lib::papers::table1_library());
    mlib.equiv = bench.equiv.clone();
    let mut config = quick(Objective::Area);
    config.laxity_factor = 2.2;
    let report = synthesize(&bench.hierarchy, &mlib, &config).expect("synthesizes");
    let v = hsyn::rtl::verilog_text(
        &report.design.hierarchy,
        &report.design.top.built,
        &mlib.simple,
        16,
    );
    // One Verilog module per RTL module in the tree, plus controller logic.
    assert!(v.matches("module ").count() > report.design.top.built.subs().len());
    assert!(v.contains("endmodule"));
    assert!(v.contains("always @(posedge clk)"));
    assert!(v.contains("assign done"));
    // Every primary input/output of the top DFG appears as a port.
    let g = bench.hierarchy.dfg(bench.hierarchy.top());
    for i in 0..g.input_count() {
        assert!(v.contains(&format!("in{i}")), "missing input port in{i}");
    }
    for o in 0..g.output_count() {
        assert!(v.contains(&format!("out{o}")), "missing output port out{o}");
    }
    // Balanced module/endmodule pairs.
    assert_eq!(v.matches("module ").count(), v.matches("endmodule").count());
}

#[test]
fn transformations_shrink_before_synthesis() {
    // CSE + folding reduce op count, which shrinks the synthesized design.
    let src = "
dfg redundant {
  input x
  input y
  const k1 = 3
  const k2 = 4
  kk = mult k1 k2
  s1 = add x y
  s2 = add x y
  p1 = mult s1 kk
  p2 = mult s2 kk
  output o = q
  q = add p1 p2
}
top redundant
";
    let parsed = text::parse(src).expect("parses");
    let g = parsed.hierarchy.dfg(parsed.hierarchy.top());
    let (optimized, stats) = hsyn::dfg::transform::optimize(g, 16);
    assert!(stats.folded >= 1);
    assert!(stats.cse_merged >= 2, "s1/s2 and p1/p2 merge: {stats:?}");
    let mut h2 = hsyn::dfg::Hierarchy::new();
    let id = h2.add_dfg(optimized);
    h2.set_top(id);
    h2.validate().expect("valid after transforms");
    let mlib = ModuleLibrary::from_simple(hsyn::lib::papers::table1_library());
    let mut config = quick(Objective::Area);
    config.laxity_factor = 2.0;
    let before = synthesize(&parsed.hierarchy, &mlib, &config).expect("original");
    let after = synthesize(&h2, &mlib, &config).expect("optimized");
    // The engine can merge the redundancy itself, so the areas end up
    // close — but the transformed input must never be worse, and it gets
    // there with less work.
    assert!(
        after.evaluation.area.total() <= before.evaluation.area.total() * 1.02,
        "transformed input should not synthesize larger: {} vs {}",
        after.evaluation.area.total(),
        before.evaluation.area.total()
    );
    assert!(
        h2.dfg(h2.top()).schedulable_count() < g.schedulable_count(),
        "transforms removed operations"
    );
    assert!(after.stats.evaluated <= before.stats.evaluated);
}

#[test]
fn move_families_can_be_disabled() {
    let bench = hsyn::dfg::benchmarks::paulin();
    let mlib = ModuleLibrary::from_simple(hsyn::lib::papers::table1_library());
    let mut config = quick(Objective::Area);
    config.laxity_factor = 3.2;
    config.moves = hsyn::core::MoveFamilies {
        a: false,
        b: false,
        c: false,
        d: false,
    };
    let report = synthesize(&bench.hierarchy, &mlib, &config).expect("synthesizes");
    // With every family off, the engine can only keep the initial solution.
    let applied = report.stats.applied_a
        + report.stats.applied_b
        + report.stats.applied_c
        + report.stats.applied_d;
    assert_eq!(applied, 0);
    // And C-only gets sharing done.
    config.moves = hsyn::core::MoveFamilies {
        a: false,
        b: false,
        c: true,
        d: false,
    };
    let c_only = synthesize(&bench.hierarchy, &mlib, &config).expect("synthesizes");
    assert!(c_only.stats.applied_c > 0);
    assert_eq!(c_only.stats.applied_a, 0);
    assert!(c_only.evaluation.area.total() < report.evaluation.area.total());
}

#[test]
fn explicit_sampling_period_overrides_laxity() {
    let bench = hsyn::dfg::benchmarks::paulin();
    let mlib = ModuleLibrary::from_simple(hsyn::lib::papers::table1_library());
    let mut config = quick(Objective::Area);
    config.sampling_period_ns = Some(500.0);
    let report = synthesize(&bench.hierarchy, &mlib, &config).expect("synthesizes");
    assert_eq!(report.period_ns, 500.0);
}
