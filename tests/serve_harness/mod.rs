//! Shared harness for the `hsyn serve` test suites: spawn an in-process
//! daemon, build reduced-budget jobs, and compute the single-shot
//! reference `result_json` a daemon answer must match byte for byte.
#![allow(dead_code)]

use std::net::SocketAddr;
use std::path::PathBuf;
use std::thread::JoinHandle;

use hsyn::serve::{Budget, JobSource, JobSpec, ServeOptions, Server};

/// Spawn a daemon on a free port; returns its address and the `run()`
/// thread (joined after `Client::shutdown`).
pub fn start_server(opts: ServeOptions) -> (SocketAddr, JoinHandle<()>) {
    let server = Server::bind(opts).expect("daemon binds");
    let addr = server.local_addr().expect("daemon has an address");
    let handle = std::thread::spawn(move || server.run().expect("daemon runs"));
    (addr, handle)
}

/// A fresh per-test cache directory under the target temp dir.
pub fn temp_cache(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("hsyn-serve-test-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// The reduced search budget every serve test uses (same scale as the
/// other integration suites, so one job runs in well under a second).
pub fn tiny_budget() -> Budget {
    Budget {
        max_passes: Some(3),
        candidate_limit: Some(3),
        eval_trace_len: Some(16),
        report_trace_len: Some(32),
        max_clock_candidates: Some(2),
        resynth_depth: Some(1),
    }
}

/// A reduced-budget job for a built-in benchmark.
pub fn tiny_job(bench: &str) -> JobSpec {
    let mut job = JobSpec::new(JobSource::Bench(bench.to_owned()));
    job.budget = Some(tiny_budget());
    job
}

/// The single-shot reference: synthesize `job` in-process with no daemon,
/// no cancellation token, and no shared area store, and return its
/// `result_json`. The determinism contract says every daemon answer for
/// the same job — cold, warm, concurrent, or after a restart — must equal
/// these bytes exactly.
pub fn reference_result_json(job: &JobSpec) -> String {
    let (hierarchy, equiv) = match &job.source {
        JobSource::Bench(name) => {
            let b = hsyn::dfg::benchmarks::by_name(name).expect("known benchmark");
            (b.hierarchy, b.equiv)
        }
        JobSource::Text(src) => {
            let p = hsyn::dfg::text::parse(src).expect("valid DFG text");
            p.hierarchy.validate().expect("valid hierarchy");
            (p.hierarchy, p.equiv)
        }
    };
    let simple = match job.library.as_str() {
        "table1" => hsyn::lib::papers::table1_library(),
        "realistic" => hsyn::lib::Library::realistic(),
        other => panic!("unknown library {other}"),
    };
    let mut mlib = hsyn::rtl::ModuleLibrary::from_simple(simple);
    mlib.equiv = equiv;
    let config = job.to_config(None, None);
    hsyn::core::synthesize(&hierarchy, &mlib, &config)
        .expect("reference synthesis succeeds")
        .result_json()
}
