//! The memory benchmark tier end to end: matmul / fir_block / conv2d
//! synthesize at both objectives with memories priced into area and energy,
//! survive the paranoid + cosim gates, produce byte-identical reports
//! across runs and worker counts, and demonstrably reschedule when the
//! bank constraint changes. Headline numbers are pinned in
//! `tests/golden/*.json` exactly like the paper suite
//! (`UPDATE_GOLDEN=1 cargo test --test memory_tier` regenerates).

use hsyn::core::{
    initial_solution, synthesize, DesignPoint, Objective, OperatingPoint, SynthesisConfig,
    SynthesisReport,
};
use hsyn::dfg::benchmarks::{self, Benchmark};
use hsyn::lib::papers::table1_library;
use hsyn::rtl::ModuleLibrary;
use hsyn_util::Json;
use std::path::PathBuf;

fn config(objective: Objective) -> SynthesisConfig {
    let mut c = SynthesisConfig::new(objective);
    c.laxity_factor = 2.2;
    c.max_passes = 2;
    c.candidate_limit = 2;
    c.eval_trace_len = 8;
    c.report_trace_len = 16;
    c.max_clock_candidates = 2;
    c.resynth_depth = 1;
    c
}

fn run(bench: &Benchmark, config: &SynthesisConfig) -> SynthesisReport {
    let mut mlib = ModuleLibrary::from_simple(table1_library());
    mlib.equiv = bench.equiv.clone();
    synthesize(&bench.hierarchy, &mlib, config)
        .unwrap_or_else(|e| panic!("{}: synthesis failed: {e}", bench.name))
}

fn golden_path(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/golden")
        .join(format!("{name}.json"))
}

/// Compare `got` against the pinned golden file, or rewrite it under
/// `UPDATE_GOLDEN=1`; drift is collected, not asserted, so one run reports
/// every divergence.
fn check_golden(name: &str, got: &str, drift: &mut Vec<String>) {
    let path = golden_path(name);
    if std::env::var("UPDATE_GOLDEN").is_ok_and(|v| v == "1") {
        std::fs::create_dir_all(path.parent().expect("golden dir")).unwrap();
        std::fs::write(&path, got).unwrap();
        return;
    }
    let want = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "{}: missing golden file (run UPDATE_GOLDEN=1 to create): {e}",
            path.display()
        )
    });
    if got != want {
        drift.push(format!(
            "{name}:\n  expected {}  actual   {}",
            want.replace('\n', "\n  "),
            got.replace('\n', "\n  ")
        ));
    }
}

/// The pinned surface of one report: the paper-suite headline numbers plus
/// the memory slices of both cost models, each float carried readable and
/// bit-exact.
fn snapshot(report: &SynthesisReport) -> String {
    fn float(obj: &mut Vec<(String, Json)>, name: &str, v: f64) {
        obj.push((name.to_owned(), Json::Num(v)));
        obj.push((
            format!("{name}_bits"),
            Json::Str(format!("{:016x}", v.to_bits())),
        ));
    }
    let mut obj = Vec::new();
    float(&mut obj, "area", report.evaluation.area.total());
    float(&mut obj, "area_mem", report.evaluation.area.mem);
    float(&mut obj, "power", report.evaluation.power.power);
    float(
        &mut obj,
        "energy_mem",
        report.evaluation.power.energy_breakdown.mem,
    );
    float(&mut obj, "vdd", report.design.op.vdd);
    float(&mut obj, "clk_ns", report.design.op.clk_ref_ns);
    let mut text = Json::Obj(obj).to_string_pretty();
    text.push('\n');
    text
}

/// Every memory benchmark synthesizes at both objectives with the paranoid
/// cross-layer invariants and the cosim gate on, memories show up in both
/// cost models, and the headline numbers match the pinned goldens.
#[test]
fn memory_suite_synthesizes_and_matches_goldens() {
    let mut drift = Vec::new();
    for bench in benchmarks::memory_suite() {
        for objective in [Objective::Area, Objective::Power] {
            let mut c = config(objective);
            c.paranoid = true;
            c.cosim_check = true;
            let report = run(&bench, &c);
            assert!(
                report.evaluation.area.mem > 0.0,
                "{}: owned banks must be priced into area",
                bench.name
            );
            if matches!(objective, Objective::Power) {
                assert!(
                    report.evaluation.power.energy_breakdown.mem > 0.0,
                    "{}: loads/stores must be priced into energy",
                    bench.name
                );
            }
            let obj = match objective {
                Objective::Area => "area",
                Objective::Power => "power",
            };
            check_golden(
                &format!("{}_{obj}", bench.name),
                &snapshot(&report),
                &mut drift,
            );
        }
    }
    assert!(
        drift.is_empty(),
        "memory-tier golden snapshots drifted (UPDATE_GOLDEN=1 regenerates \
         them if the change is deliberate):\n{}",
        drift.join("\n")
    );
}

/// Reports are a pure function of the configuration: byte-identical across
/// repeated runs and across intra-config worker counts 1 / 2 / 4.
#[test]
fn memory_suite_reports_are_deterministic_across_worker_counts() {
    for bench in benchmarks::memory_suite() {
        for objective in [Objective::Area, Objective::Power] {
            let mut c = config(objective);
            c.parallelism = Some(1);
            c.intra_parallelism = 1;
            let base = run(&bench, &c).result_json();
            assert_eq!(
                base,
                run(&bench, &c).result_json(),
                "{} ({objective:?}): diverged across repeated runs",
                bench.name
            );
            for workers in [2usize, 4] {
                c.intra_parallelism = workers;
                assert_eq!(
                    base,
                    run(&bench, &c).result_json(),
                    "{} ({objective:?}): diverged at {workers} intra workers",
                    bench.name
                );
            }
        }
    }
}

/// Bank-conflict scheduling is live. Independent constant-address loads on
/// a single-ported memory serialize one per cycle when every word shares
/// one bank, and issue in parallel once the words spread across banks —
/// writes stay serialized by the hazard ordering regardless, so loads are
/// where banking shows up. Both makespans are pinned in a golden file so a
/// silent constraint regression (e.g. the serial edges dropping out) fails
/// loudly.
/// y = Σ t[i] for i in 0..4 over a single-ported 4-word table: the loads
/// are data-independent, so banking is the only thing deciding whether
/// they issue together or one per cycle.
fn table_sum_with_banks(banks: u32) -> hsyn::dfg::Hierarchy {
    use hsyn::dfg::{Dfg, Hierarchy, MemObject, Operation};
    let mut g = Dfg::new("table_sum");
    let t = g.add_mem(MemObject::owned("t", 4, 16).with_banks(banks));
    let seed = g.add_input("seed");
    let w0 = g.add_const("w0", 0);
    let st = g.add_store(t, "st", w0, seed);
    let _ = st;
    let loads: Vec<_> = (0..4)
        .map(|i| {
            let a = g.add_const(format!("a{i}"), i);
            g.add_load(t, format!("l{i}"), a)
        })
        .collect();
    let s0 = g.add_op(Operation::Add, "s0", &[loads[0], loads[1]]);
    let s1 = g.add_op(Operation::Add, "s1", &[loads[2], loads[3]]);
    let y = g.add_op(Operation::Add, "y", &[s0, s1]);
    g.add_output("y_out", y);
    let mut h = Hierarchy::new();
    let id = h.add_dfg(g);
    h.set_top(id);
    h
}

#[test]
fn bank_constraint_demonstrably_changes_the_schedule() {
    let design_with_banks = table_sum_with_banks;
    let mlib = ModuleLibrary::from_simple(table1_library());
    let op = OperatingPoint::derive(&mlib.simple, mlib.simple.technology.vref(), 10.0, 100_000.0);
    let makespan = |banks: u32| -> u32 {
        let h = design_with_banks(banks);
        let top = initial_solution(&h, &mlib, &op).expect("table_sum builds");
        let dp = DesignPoint {
            hierarchy: h,
            op,
            top,
        };
        dp.top.built.behaviors()[0].schedule.makespan()
    };
    let serialized = makespan(1);
    let unconstrained = makespan(4); // one bank per word
    assert!(
        serialized > unconstrained,
        "bank constraint must lengthen the schedule: 1 bank → {serialized} \
         cycles vs 4 banks → {unconstrained}"
    );
    let got = format!(
        "{}\n",
        Json::Obj(vec![
            ("makespan_1_bank".to_owned(), Json::Num(serialized.into())),
            (
                "makespan_4_banks".to_owned(),
                Json::Num(unconstrained.into())
            ),
        ])
        .to_string_pretty()
    );
    let mut drift = Vec::new();
    check_golden("bank_conflict", &got, &mut drift);
    assert!(
        drift.is_empty(),
        "bank-conflict schedule golden drifted:\n{}",
        drift.join("\n")
    );
}

/// MEM003 fires on a genuinely overcommitted schedule. Build table_sum at
/// 4 banks (loads issue in parallel), then shrink the memory to one bank
/// *without* rescheduling — exactly the stale-schedule hazard the move
/// engine's sole-executor check on `RebankMem` exists to prevent — and the
/// design verifier must flag the port overcommit as an error.
#[test]
fn stale_bank_constraint_is_caught_by_mem003() {
    use hsyn::lint::{verify_design, DesignView, RuleCode, Severity};
    let mlib = ModuleLibrary::from_simple(table1_library());
    let op = OperatingPoint::derive(&mlib.simple, mlib.simple.technology.vref(), 10.0, 100_000.0);
    let mut h = table_sum_with_banks(4);
    let top = initial_solution(&h, &mlib, &op).expect("table_sum builds");
    let tid = h.top();
    let mems: Vec<_> = h.dfg(tid).mems().map(|(id, _)| id).collect();
    for m in mems {
        h.dfg_mut(tid).set_mem_banks(m, 1);
    }
    let dp = DesignPoint {
        hierarchy: h,
        op,
        top,
    };
    let diags = verify_design(&DesignView {
        hierarchy: &dp.hierarchy,
        module: &dp.top.built,
        lib: &mlib.simple,
        vdd: dp.op.vdd,
        clk_ns: dp.op.clk_ref_ns,
        sampling_period: dp.top.core.deadline,
    });
    assert!(
        diags
            .iter()
            .any(|d| d.code == RuleCode::Mem003 && d.severity == Severity::Error),
        "stale single-bank schedule must trip MEM003: {diags:?}"
    );
}
