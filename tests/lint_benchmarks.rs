//! Every built-in benchmark must lint error-clean: the behavioral
//! hierarchy itself, and the synthesized design at both objectives (the
//! same check `hsyn lint --all-benchmarks --synthesize` runs in CI).
//! Dataflow rules (`DFA0xx`) may warn — the expected warning set per
//! benchmark is pinned below — but never error.

use hsyn::core::{synthesize, Objective, SynthesisConfig};
use hsyn::dfg::benchmarks;
use hsyn::lib::papers::table1_library;
use hsyn::lint::{error_count, lint_hierarchy, verify_design, DesignView, RuleCode, Severity};
use hsyn::rtl::ModuleLibrary;

#[test]
fn all_benchmarks_lint_clean_at_both_objectives() {
    for bench in benchmarks::all() {
        let diags = lint_hierarchy(&bench.hierarchy);
        assert_eq!(
            error_count(&diags),
            0,
            "{}: behavior has errors: {diags:?}",
            bench.name
        );
        assert!(
            diags
                .iter()
                .all(|d| d.severity == Severity::Warning && d.code.as_str().starts_with("DFA")),
            "{}: non-dataflow warnings: {diags:?}",
            bench.name
        );
        // hier_paulin deliberately leaves one callee output (port 3, the
        // carry-style "c" output) unconsumed at all three call sites; every
        // other benchmark is warning-free too.
        if bench.name == "hier_paulin" {
            assert_eq!(diags.len(), 3, "{}: {diags:?}", bench.name);
            assert!(diags.iter().all(|d| d.code == RuleCode::Dfa002));
        } else {
            assert!(
                diags.is_empty(),
                "{}: behavior dirty: {diags:?}",
                bench.name
            );
        }

        for objective in [Objective::Area, Objective::Power] {
            let mut mlib = ModuleLibrary::from_simple(table1_library());
            mlib.equiv = bench.equiv.clone();
            // Small budgets: the point is linting every accepted design
            // shape, not search quality (CI also runs the full-budget
            // `hsyn lint --all-benchmarks --synthesize` in release mode).
            let mut config = SynthesisConfig::new(objective);
            config.laxity_factor = 2.2;
            config.max_passes = 2;
            config.candidate_limit = 2;
            config.eval_trace_len = 8;
            config.report_trace_len = 16;
            config.max_clock_candidates = 2;
            config.resynth_depth = 1;
            config.paranoid = true;
            let report = synthesize(&bench.hierarchy, &mlib, &config)
                .unwrap_or_else(|e| panic!("{} ({objective:?}): {e}", bench.name));
            let design = &report.design;
            let diags = verify_design(&DesignView {
                hierarchy: &design.hierarchy,
                module: &design.top.built,
                lib: &mlib.simple,
                vdd: design.op.vdd,
                clk_ns: design.op.clk_ref_ns,
                sampling_period: design.top.core.deadline,
            });
            assert!(
                diags.is_empty(),
                "{} ({objective:?}): synthesized design dirty: {diags:?}",
                bench.name
            );
        }
    }
}
