//! Differential harness for the incremental-evaluation cache: synthesis
//! with the cache on and off must be the **same search with the same
//! result**, compared byte-for-byte through the canonical
//! [`SynthesisReport::result_json`] rendering (every float as its exact bit
//! pattern, structural fingerprints standing in for the designs).
//!
//! The quick tier runs every built-in benchmark × {Area, Power} on one
//! seed; release builds (and `HSYN_EQUIV_SEEDS=n`) widen to three seeds per
//! cell, which is the matrix the CI release job enforces.

use hsyn::core::{synthesize, Objective, SynthesisConfig};
use hsyn::dfg::benchmarks;
use hsyn::lib::papers::table1_library;
use hsyn::rtl::ModuleLibrary;
use hsyn_util::Json;

fn tiny(objective: Objective, seed: u64) -> SynthesisConfig {
    let mut c = SynthesisConfig::new(objective);
    c.laxity_factor = 2.2;
    c.max_passes = 2;
    c.candidate_limit = 2;
    c.eval_trace_len = 8;
    c.report_trace_len = 16;
    c.max_clock_candidates = 2;
    c.resynth_depth = 1;
    c.seed = seed;
    c
}

#[test]
fn cached_and_uncached_synthesis_are_byte_identical() {
    let seeds: &[u64] = &[0xDAC_1998, 1, 42];
    let seed_count: usize = std::env::var("HSYN_EQUIV_SEEDS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(if cfg!(debug_assertions) { 1 } else { 3 })
        .min(seeds.len());
    for bench in benchmarks::all() {
        for objective in [Objective::Area, Objective::Power] {
            for &seed in &seeds[..seed_count] {
                let mut mlib = ModuleLibrary::from_simple(table1_library());
                mlib.equiv = bench.equiv.clone();

                let mut on = tiny(objective, seed);
                on.incremental = true;
                let mut off = on.clone();
                off.incremental = false;

                let r_on = synthesize(&bench.hierarchy, &mlib, &on)
                    .unwrap_or_else(|e| panic!("{} cached: {e}", bench.name));
                let r_off = synthesize(&bench.hierarchy, &mlib, &off)
                    .unwrap_or_else(|e| panic!("{} uncached: {e}", bench.name));

                let j_on = r_on.result_json();
                let j_off = r_off.result_json();
                // The rendering must be well-formed JSON (the codec is the
                // comparison surface, so it has to parse on both sides).
                Json::parse(&j_on).expect("cached result_json parses");
                Json::parse(&j_off).expect("uncached result_json parses");
                assert_eq!(
                    j_on, j_off,
                    "{} {objective:?} seed {seed:#x}: cached and uncached \
                     synthesis diverged",
                    bench.name
                );
                // The cached run actually went through the cache.
                assert!(
                    r_on.stats.eval_cache_misses > 0,
                    "{}: cached run recorded no cache traffic",
                    bench.name
                );
                assert_eq!(
                    (r_off.stats.eval_cache_hits, r_off.stats.eval_cache_misses),
                    (0, 0),
                    "{}: uncached run must not touch the cache",
                    bench.name
                );
            }
        }
    }
}

#[test]
fn shadow_mode_is_observation_only() {
    // Shadow evaluation runs both paths and panics on divergence; on a
    // legal run it must not change the search either.
    let bench = benchmarks::test1();
    let mut mlib = ModuleLibrary::from_simple(table1_library());
    mlib.equiv = bench.equiv.clone();
    let plain = tiny(Objective::Power, 7);
    let mut shadow = plain.clone();
    shadow.shadow_eval = true;
    let r_plain = synthesize(&bench.hierarchy, &mlib, &plain).unwrap();
    let r_shadow = synthesize(&bench.hierarchy, &mlib, &shadow).unwrap();
    assert_eq!(r_plain.result_json(), r_shadow.result_json());
    // Shadow mode accounts both halves of the double evaluation.
    assert!(r_shadow
        .per_config
        .iter()
        .all(|c| c.eval_full_s > 0.0 && c.eval_incr_s > 0.0));
}
