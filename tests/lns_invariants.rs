//! Property tests for the large-neighborhood-search layer
//! (`hsyn::core::lns`): on random behaviors, every ruin→recreate→rollback
//! cycle must restore the design fingerprint bit-exactly, ruin planning
//! must be a pure function of the generator state, and full synthesis with
//! LNS refinement enabled must never end worse than the same synthesis
//! without it — with the paranoid verifier confirming every committed
//! iteration lint-clean along the way. Cases come from fixed seeds so
//! failures reproduce exactly; set `HSYN_TEST_ITERS` to widen the sweep.

mod common;

use common::{arb_behavior, test_iters};
use hsyn::core::{
    apply_in_place, initial_solution, plan_ruin, ruin_region, selection_candidates,
    sharing_candidates, splitting_candidates, synthesize, DesignPoint, Move, Objective,
    OperatingPoint, RuinKind, SynthesisConfig, UndoLog,
};
use hsyn::dfg::{benchmarks, Hierarchy};
use hsyn::lib::papers::table1_library;
use hsyn::lint::{verify_design, DesignView};
use hsyn::rtl::{module_fingerprint, ModuleLibrary};
use hsyn_util::Rng;

/// A buildable design point for a random leaf behavior, plus its library.
fn random_design(rng: &mut Rng) -> (DesignPoint, ModuleLibrary) {
    let g = arb_behavior(rng);
    let mut h = Hierarchy::new();
    let id = h.add_dfg(g);
    h.set_top(id);
    assert!(h.validate().is_ok());
    let mlib = ModuleLibrary::from_simple(table1_library());
    let op = OperatingPoint::derive(&mlib.simple, mlib.simple.technology.vref(), 10.0, 10_000.0);
    let top = initial_solution(&h, &mlib, &op).expect("relaxed deadline always builds");
    (
        DesignPoint {
            hierarchy: h,
            op,
            top,
        },
        mlib,
    )
}

/// A shuffled pool of candidate moves standing in for the recreate phase:
/// the invariant under test is the journal's, so any applied sequence after
/// the ruin works.
fn recreate_moves(dp: &DesignPoint, mlib: &ModuleLibrary, rng: &mut Rng) -> Vec<Move> {
    let mut cands = Vec::new();
    for objective in [Objective::Area, Objective::Power] {
        cands.extend(selection_candidates(dp, mlib, objective, false));
        cands.extend(sharing_candidates(dp, mlib, objective));
        cands.extend(splitting_candidates(dp, mlib, objective));
    }
    let mut moves: Vec<Move> = cands.into_iter().map(|(_, mv)| mv).collect();
    for i in (1..moves.len()).rev() {
        moves.swap(i, rng.range_usize(0, i));
    }
    moves
}

/// Every ruin→recreate→rollback cycle restores the pre-ruin fingerprint
/// bit-exactly, whatever region was destroyed and whatever was rebuilt on
/// top of it.
#[test]
fn ruin_recreate_rollback_is_fingerprint_identical() {
    let mut rng = Rng::seed_from_u64(0x1A45_0001);
    for case in 0..test_iters(10) {
        let (mut dp, mlib) = random_design(&mut rng);
        for cycle in 0..4 {
            let before = module_fingerprint(&dp.hierarchy, &dp.top.built);
            let mut log = UndoLog::new();
            let kind = plan_ruin(&dp, &mut rng);
            let ruined = ruin_region(&mut dp, &mlib, &kind, &mut log, 16);
            assert!(
                ruined == 0 || !log.is_empty(),
                "case {case} cycle {cycle}: ruin edits must be journaled"
            );
            // Recreate: apply whatever candidate moves still validate.
            let mut applied = 0usize;
            for mv in recreate_moves(&dp, &mlib, &mut rng) {
                if applied >= 6 {
                    break;
                }
                if apply_in_place(&mut dp, &mv, &mlib, &mut |_, _, _| None, &mut log).is_ok() {
                    applied += 1;
                }
            }
            log.rollback_all(&mut dp);
            assert!(log.is_empty(), "case {case} cycle {cycle}: journal drained");
            assert_eq!(
                before,
                module_fingerprint(&dp.hierarchy, &dp.top.built),
                "case {case} cycle {cycle} ({kind:?}, {ruined} ruin edits, \
                 {applied} recreate edits): rollback must restore the design"
            );
        }
    }
}

/// Ruining to fixpoint (no edit cap) then ruining again is a no-op: the
/// region is at its destroyed pole, so the planner finds nothing left.
#[test]
fn ruin_to_fixpoint_is_idempotent() {
    let mut rng = Rng::seed_from_u64(0x1A45_0002);
    for case in 0..test_iters(10) {
        let (mut dp, mlib) = random_design(&mut rng);
        let kind = plan_ruin(&dp, &mut rng);
        let mut log = UndoLog::new();
        let first = ruin_region(&mut dp, &mlib, &kind, &mut log, usize::MAX);
        let fp = module_fingerprint(&dp.hierarchy, &dp.top.built);
        let again = ruin_region(&mut dp, &mlib, &kind, &mut log, usize::MAX);
        assert_eq!(
            (again, fp),
            (0, module_fingerprint(&dp.hierarchy, &dp.top.built)),
            "case {case}: second ruin of {kind:?} after {first} edits must be a no-op"
        );
        log.rollback_all(&mut dp);
    }
}

/// Ruin planning is a pure function of the design and the generator state:
/// the same seed always picks the same region.
#[test]
fn plan_ruin_is_deterministic_given_the_seed() {
    let mut rng = Rng::seed_from_u64(0x1A45_0003);
    for _ in 0..test_iters(10) {
        let (dp, _) = random_design(&mut rng);
        let seed = rng.next_u64();
        let picks = |s: u64| -> Vec<RuinKind> {
            let mut r = Rng::seed_from_u64(s);
            (0..8).map(|_| plan_ruin(&dp, &mut r)).collect()
        };
        assert_eq!(picks(seed), picks(seed));
    }
}

/// Full synthesis with LNS refinement on random behaviors: the paranoid
/// verifier confirms every committed iteration lint-clean (a violation
/// aborts the configuration, which `skipped_configs` would record), the
/// final cost never exceeds the LNS-off result at the same seed, and the
/// winning design lints clean.
#[test]
fn lns_synthesis_is_never_worse_and_lints_clean() {
    let mut rng = Rng::seed_from_u64(0x1A45_0004);
    for case in 0..test_iters(6) {
        let g = arb_behavior(&mut rng);
        let objective = if rng.next_bool(0.5) {
            Objective::Area
        } else {
            Objective::Power
        };
        let mut h = Hierarchy::new();
        let id = h.add_dfg(g);
        h.set_top(id);
        assert!(h.validate().is_ok());
        let mlib = ModuleLibrary::from_simple(table1_library());

        let mut config = SynthesisConfig::new(objective);
        config.laxity_factor = 2.2;
        config.max_passes = 2;
        config.candidate_limit = 2;
        config.eval_trace_len = 8;
        config.report_trace_len = 16;
        config.max_clock_candidates = 2;
        config.resynth_depth = 0;
        config.paranoid = true;

        let off = synthesize(&h, &mlib, &config)
            .unwrap_or_else(|e| panic!("case {case}: LNS-off synthesis failed: {e}"));
        config.lns_iters = 6;
        let on = synthesize(&h, &mlib, &config)
            .unwrap_or_else(|e| panic!("case {case}: LNS-on synthesis failed: {e}"));

        for s in &on.skipped_configs {
            assert!(
                s.rule.is_none(),
                "case {case}: verifier rejected a committed LNS iteration \
                 ({}, {} ns): {}",
                s.vdd,
                s.clk_ns,
                s.reason
            );
        }
        assert!(
            on.evaluation.cost <= off.evaluation.cost,
            "case {case} ({objective:?}): LNS ended worse ({} vs {})",
            on.evaluation.cost,
            off.evaluation.cost
        );
        let design = &on.design;
        let diags = verify_design(&DesignView {
            hierarchy: &design.hierarchy,
            module: &design.top.built,
            lib: &mlib.simple,
            vdd: design.op.vdd,
            clk_ns: design.op.clk_ref_ns,
            sampling_period: design.top.core.deadline,
        });
        assert!(
            diags.is_empty(),
            "case {case}: LNS final design dirty: {diags:?}"
        );
    }
}

/// The same guarantee on real paper-suite hierarchies (children, complex
/// modules): never worse than LNS-off, and ruins actually fire.
#[test]
fn lns_is_never_worse_on_paper_benchmarks() {
    for bench in [benchmarks::paulin(), benchmarks::iir()] {
        for objective in [Objective::Area, Objective::Power] {
            let mut mlib = ModuleLibrary::from_simple(table1_library());
            mlib.equiv = bench.equiv.clone();
            let mut config = SynthesisConfig::new(objective);
            config.laxity_factor = 2.2;
            config.max_passes = 3;
            config.candidate_limit = 3;
            config.eval_trace_len = 16;
            config.report_trace_len = 32;
            config.max_clock_candidates = 2;
            config.resynth_depth = 1;
            let off = synthesize(&bench.hierarchy, &mlib, &config).unwrap();
            config.lns_iters = 8;
            let on = synthesize(&bench.hierarchy, &mlib, &config).unwrap();
            assert!(
                on.stats.lns_ruins > 0,
                "{} ({objective:?}): no ruin ever fired",
                bench.name
            );
            assert!(
                on.evaluation.cost <= off.evaluation.cost,
                "{} ({objective:?}): LNS ended worse ({} vs {})",
                bench.name,
                on.evaluation.cost,
                off.evaluation.cost
            );
        }
    }
}
