//! Golden snapshot tests: the headline numbers of every paper-suite
//! benchmark at both objectives — final area, power, supply voltage and
//! clock period — are pinned in `tests/golden/*.json`, with every float
//! carried both human-readable and as its exact bit pattern. A perf PR
//! (incremental evaluation, parallelism, …) must not shift any of them; a
//! deliberate modeling change regenerates the files with
//! `UPDATE_GOLDEN=1 cargo test --test golden_snapshots`.

use hsyn::core::{synthesize, Objective, SynthesisConfig, SynthesisReport};
use hsyn::dfg::benchmarks;
use hsyn::lib::papers::table1_library;
use hsyn::rtl::ModuleLibrary;
use hsyn_util::Json;
use std::path::PathBuf;

fn golden_config(objective: Objective) -> SynthesisConfig {
    let mut c = SynthesisConfig::new(objective);
    c.laxity_factor = 2.2;
    c.max_passes = 2;
    c.candidate_limit = 2;
    c.eval_trace_len = 8;
    c.report_trace_len = 16;
    c.max_clock_candidates = 2;
    c.resynth_depth = 1;
    c
}

/// The pinned surface: each float twice, readable and bit-exact. The
/// comparison is byte-level on the rendered JSON, so the `_bits` fields
/// make even sub-ulp drift fail loudly while the plain fields keep the
/// diff reviewable.
fn snapshot(report: &SynthesisReport) -> String {
    fn float(obj: &mut Vec<(String, Json)>, name: &str, v: f64) {
        obj.push((name.to_owned(), Json::Num(v)));
        obj.push((
            format!("{name}_bits"),
            Json::Str(format!("{:016x}", v.to_bits())),
        ));
    }
    let mut obj = Vec::new();
    float(&mut obj, "area", report.evaluation.area.total());
    float(&mut obj, "power", report.evaluation.power.power);
    float(&mut obj, "vdd", report.design.op.vdd);
    float(&mut obj, "clk_ns", report.design.op.clk_ref_ns);
    let mut text = Json::Obj(obj).to_string_pretty();
    text.push('\n');
    text
}

fn golden_path(name: &str, objective: Objective, suffix: &str) -> PathBuf {
    let obj = match objective {
        Objective::Area => "area",
        Objective::Power => "power",
    };
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/golden")
        .join(format!("{name}_{obj}{suffix}.json"))
}

#[test]
fn paper_suite_matches_golden_snapshots() {
    let update = std::env::var("UPDATE_GOLDEN").is_ok_and(|v| v == "1");
    let mut drift = Vec::new();
    for bench in benchmarks::paper_suite() {
        for objective in [Objective::Area, Objective::Power] {
            let mut mlib = ModuleLibrary::from_simple(table1_library());
            mlib.equiv = bench.equiv.clone();
            let report = synthesize(&bench.hierarchy, &mlib, &golden_config(objective))
                .unwrap_or_else(|e| panic!("{} {objective:?}: {e}", bench.name));
            let got = snapshot(&report);
            let path = golden_path(bench.name, objective, "");
            if update {
                std::fs::create_dir_all(path.parent().expect("golden dir")).unwrap();
                std::fs::write(&path, &got).unwrap();
                continue;
            }
            let want = std::fs::read_to_string(&path).unwrap_or_else(|e| {
                panic!(
                    "{}: missing golden file (run UPDATE_GOLDEN=1 to create): {e}",
                    path.display()
                )
            });
            if got != want {
                drift.push(format!(
                    "{} {objective:?}:\n  expected {}  actual   {}",
                    bench.name,
                    want.replace('\n', "\n  "),
                    got.replace('\n', "\n  ")
                ));
            }
        }
    }
    assert!(
        drift.is_empty(),
        "golden snapshots drifted (UPDATE_GOLDEN=1 regenerates them if the \
         change is deliberate):\n{}",
        drift.join("\n")
    );
}

/// The same pinned surface with LNS refinement on (`*_lns.json` files),
/// plus the parity-or-better guard: for every benchmark × objective, the
/// LNS run's final cost must never exceed the LNS-off run's — refinement
/// starts from the converged design and only commits strict improvements,
/// so any regression here is an engine bug, not a tuning matter.
#[test]
fn paper_suite_matches_lns_golden_snapshots() {
    let update = std::env::var("UPDATE_GOLDEN").is_ok_and(|v| v == "1");
    let mut drift = Vec::new();
    for bench in benchmarks::paper_suite() {
        for objective in [Objective::Area, Objective::Power] {
            let mut mlib = ModuleLibrary::from_simple(table1_library());
            mlib.equiv = bench.equiv.clone();
            let plain = synthesize(&bench.hierarchy, &mlib, &golden_config(objective))
                .unwrap_or_else(|e| panic!("{} {objective:?}: {e}", bench.name));
            let mut config = golden_config(objective);
            config.lns_iters = 4;
            let report = synthesize(&bench.hierarchy, &mlib, &config)
                .unwrap_or_else(|e| panic!("{} {objective:?} (lns): {e}", bench.name));
            assert!(
                report.evaluation.cost <= plain.evaluation.cost,
                "{} {objective:?}: LNS ended worse than LNS-off ({} vs {})",
                bench.name,
                report.evaluation.cost,
                plain.evaluation.cost
            );
            let got = snapshot(&report);
            let path = golden_path(bench.name, objective, "_lns");
            if update {
                std::fs::create_dir_all(path.parent().expect("golden dir")).unwrap();
                std::fs::write(&path, &got).unwrap();
                continue;
            }
            let want = std::fs::read_to_string(&path).unwrap_or_else(|e| {
                panic!(
                    "{}: missing golden file (run UPDATE_GOLDEN=1 to create): {e}",
                    path.display()
                )
            });
            if got != want {
                drift.push(format!(
                    "{} {objective:?} (lns):\n  expected {}  actual   {}",
                    bench.name,
                    want.replace('\n', "\n  "),
                    got.replace('\n', "\n  ")
                ));
            }
        }
    }
    assert!(
        drift.is_empty(),
        "LNS golden snapshots drifted (UPDATE_GOLDEN=1 regenerates them if \
         the change is deliberate):\n{}",
        drift.join("\n")
    );
}
