//! Fixed-seed coverage-guided fuzz smoke run of the co-simulation oracle.
//!
//! Generates random hierarchical behaviors, synthesizes each under both
//! objectives, and steps the resulting FSM + datapath against the flattened
//! behavioral reference. A divergence is shrunk and written to
//! `target/cosim_reproducer.json` (which CI uploads as an artifact) before
//! the test panics.
//!
//! Case count: `HSYN_TEST_ITERS` (CI sets 200), default 12 for fast local
//! runs.

mod common;

use hsyn::core::fuzz_cosim;

#[test]
fn fixed_seed_fuzz_run_is_clean() {
    let cases = common::test_iters(12);
    let report = fuzz_cosim(cases, 0xD1FF_5EED);
    if let Some(div) = &report.divergence {
        let path = std::path::Path::new("target").join("cosim_reproducer.json");
        let _ = std::fs::create_dir_all("target");
        std::fs::write(&path, div.to_json().to_string_pretty())
            .expect("write divergence reproducer");
        panic!(
            "co-simulation fuzz diverged at case {} (seed {}), reproducer at {}: {}",
            div.case,
            div.case_seed,
            path.display(),
            div.detail
        );
    }
    assert_eq!(report.cases, cases);
    assert!(report.executed > 0, "no fuzz case executed");
    assert!(
        report.coverage.distinct() > 3,
        "coverage map barely filled: {:?}",
        report.coverage.iter().collect::<Vec<_>>()
    );
}
