//! Golden snapshots of the structural Verilog emitter: the full emitted
//! text for two benchmarks (one leaf-heavy, one hierarchical) at both
//! objectives is pinned under `tests/golden/verilog_*.v`. Any change to the
//! emitter, the binder, or the scheduler that shifts a single character
//! fails loudly; a deliberate change regenerates the files with
//! `UPDATE_GOLDEN=1 cargo test --test golden_verilog`.

use hsyn::core::{synthesize, Objective, SynthesisConfig};
use hsyn::dfg::benchmarks;
use hsyn::lib::papers::table1_library;
use hsyn::rtl::{verilog_text, ModuleLibrary};
use std::path::PathBuf;

const BENCHES: [&str; 2] = ["paulin", "hier_paulin"];

fn golden_config(objective: Objective) -> SynthesisConfig {
    let mut c = SynthesisConfig::new(objective);
    c.laxity_factor = 2.2;
    c.max_passes = 2;
    c.candidate_limit = 2;
    c.eval_trace_len = 8;
    c.report_trace_len = 16;
    c.max_clock_candidates = 2;
    c.resynth_depth = 1;
    c
}

fn golden_path(name: &str, objective: Objective) -> PathBuf {
    let obj = match objective {
        Objective::Area => "area",
        Objective::Power => "power",
    };
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/golden")
        .join(format!("verilog_{name}_{obj}.v"))
}

#[test]
fn emitted_verilog_matches_golden_snapshots() {
    let update = std::env::var("UPDATE_GOLDEN").is_ok_and(|v| v == "1");
    let mut drift = Vec::new();
    for name in BENCHES {
        let bench = benchmarks::by_name(name).expect("built-in benchmark");
        for objective in [Objective::Area, Objective::Power] {
            let mut mlib = ModuleLibrary::from_simple(table1_library());
            mlib.equiv = bench.equiv.clone();
            let report = synthesize(&bench.hierarchy, &mlib, &golden_config(objective))
                .unwrap_or_else(|e| panic!("{name} {objective:?}: {e}"));
            let design = &report.design;
            let got = verilog_text(&design.hierarchy, &design.top.built, &mlib.simple, 16);
            let path = golden_path(name, objective);
            if update {
                std::fs::create_dir_all(path.parent().expect("golden dir")).unwrap();
                std::fs::write(&path, &got).unwrap();
                continue;
            }
            let want = std::fs::read_to_string(&path).unwrap_or_else(|e| {
                panic!(
                    "{}: missing golden file (run UPDATE_GOLDEN=1 to create): {e}",
                    path.display()
                )
            });
            if got != want {
                // The full files are too long to splice into the message;
                // point at the first differing line instead.
                let diff_line = got
                    .lines()
                    .zip(want.lines())
                    .position(|(g, w)| g != w)
                    .map_or_else(
                        || format!("lengths differ: {} vs {} bytes", got.len(), want.len()),
                        |i| format!("first difference at line {}", i + 1),
                    );
                drift.push(format!("{name} {objective:?}: {diff_line}"));
            }
        }
    }
    assert!(
        drift.is_empty(),
        "emitted Verilog drifted from tests/golden/verilog_*.v \
         (UPDATE_GOLDEN=1 regenerates them if the change is deliberate):\n{}",
        drift.join("\n")
    );
}
