//! Cross-crate end-to-end invariants: every benchmark synthesizes in all
//! four modes (flat/hier × area/power) and the results respect the ordering
//! relations the paper's evaluation rests on.

use hsyn::core::{synthesize, Objective, SynthesisConfig};
use hsyn::dfg::benchmarks;
use hsyn::lib::papers::table1_library;
use hsyn::rtl::ModuleLibrary;

fn quick(objective: Objective, hierarchical: bool, lf: f64) -> SynthesisConfig {
    let mut c = SynthesisConfig::new(objective);
    c.laxity_factor = lf;
    c.hierarchical = hierarchical;
    c.max_passes = 3;
    c.candidate_limit = 3;
    c.eval_trace_len = 16;
    c.report_trace_len = 48;
    c.max_clock_candidates = 2;
    c.resynth_depth = 1;
    c
}

#[test]
fn every_benchmark_synthesizes_hierarchically() {
    for bench in benchmarks::all() {
        let mut mlib = ModuleLibrary::from_simple(table1_library());
        mlib.equiv = bench.equiv.clone();
        let report = synthesize(&bench.hierarchy, &mlib, &quick(Objective::Area, true, 2.2))
            .unwrap_or_else(|e| panic!("{}: {e}", bench.name));
        assert!(
            report.evaluation.area.total() > 0.0,
            "{} produced a zero-area design",
            bench.name
        );
        assert!(report.evaluation.power.power > 0.0, "{}", bench.name);
        assert!(report.period_ns >= report.min_period_ns, "{}", bench.name);
    }
}

#[test]
fn every_benchmark_synthesizes_flattened() {
    for bench in benchmarks::paper_suite() {
        let mut mlib = ModuleLibrary::from_simple(table1_library());
        mlib.equiv = bench.equiv.clone();
        let report = synthesize(&bench.hierarchy, &mlib, &quick(Objective::Area, false, 2.2))
            .unwrap_or_else(|e| panic!("{}: {e}", bench.name));
        assert!(
            report.design.top.built.subs().is_empty(),
            "{}: flattened designs have no submodules",
            bench.name
        );
    }
}

#[test]
fn power_mode_never_loses_to_area_mode_on_power() {
    // On each benchmark, the P-optimized design must consume no more power
    // than the A-optimized design evaluated at 5 V (it could always copy it).
    for bench in [benchmarks::iir(), benchmarks::lat(), benchmarks::test1()] {
        let mut mlib = ModuleLibrary::from_simple(table1_library());
        mlib.equiv = bench.equiv.clone();
        let ra = synthesize(&bench.hierarchy, &mlib, &quick(Objective::Area, true, 2.2)).unwrap();
        let rp = synthesize(&bench.hierarchy, &mlib, &quick(Objective::Power, true, 2.2)).unwrap();
        assert!(
            rp.evaluation.power.power <= ra.evaluation.power.power * 1.05,
            "{}: P-opt {} should not exceed A-opt {}",
            bench.name,
            rp.evaluation.power.power,
            ra.evaluation.power.power
        );
    }
}

#[test]
fn area_mode_never_loses_to_power_mode_on_area() {
    for bench in [benchmarks::iir(), benchmarks::test1()] {
        let mut mlib = ModuleLibrary::from_simple(table1_library());
        mlib.equiv = bench.equiv.clone();
        let ra = synthesize(&bench.hierarchy, &mlib, &quick(Objective::Area, true, 2.2)).unwrap();
        let rp = synthesize(&bench.hierarchy, &mlib, &quick(Objective::Power, true, 2.2)).unwrap();
        assert!(
            ra.evaluation.area.total() <= rp.evaluation.area.total() * 1.05,
            "{}: A-opt {} should not exceed P-opt {}",
            bench.name,
            ra.evaluation.area.total(),
            rp.evaluation.area.total()
        );
    }
}

#[test]
fn hierarchical_search_is_cheaper_than_flat() {
    // The paper's Table 4 synthesis-time claim, measured by engine workload
    // (candidate evaluations) rather than flaky wall-clock: the coarse
    // module-level moves of hierarchical synthesis need far less search
    // than flattened synthesis of the same behavior.
    let bench = benchmarks::dct();
    let mut mlib = ModuleLibrary::from_simple(table1_library());
    mlib.equiv = bench.equiv.clone();
    let rh = synthesize(&bench.hierarchy, &mlib, &quick(Objective::Area, true, 2.2)).unwrap();
    let rf = synthesize(&bench.hierarchy, &mlib, &quick(Objective::Area, false, 2.2)).unwrap();
    assert!(
        rh.stats.evaluated < rf.stats.evaluated,
        "hier evaluated {} should be below flat {}",
        rh.stats.evaluated,
        rf.stats.evaluated
    );
    // And the results stay comparable: hierarchical area within 1.6x.
    assert!(rh.evaluation.area.total() < rf.evaluation.area.total() * 1.6);
}

#[test]
fn stateful_modules_never_shared_across_contexts() {
    // wdf5 has five hierarchical nodes of one *stateful* callee: after any
    // amount of optimization, each must still own a distinct instance.
    let bench = benchmarks::wdf5();
    let mut mlib = ModuleLibrary::from_simple(table1_library());
    mlib.equiv = bench.equiv.clone();
    let report = synthesize(&bench.hierarchy, &mlib, &quick(Objective::Area, true, 3.2)).unwrap();
    let b = &report.design.top.built.behaviors()[0];
    let mut by_sub = std::collections::HashMap::new();
    for (&node, &sub) in &b.binding.hier_to_sub {
        let _ = node;
        *by_sub.entry(sub).or_insert(0) += 1;
    }
    for (sub, count) in by_sub {
        assert_eq!(count, 1, "stateful section shared on instance {sub:?}");
    }
}

#[test]
fn deeper_hierarchy_fft4_synthesizes() {
    let bench = benchmarks::fft4();
    assert_eq!(bench.hierarchy.depth(bench.hierarchy.top()), 3);
    let mut mlib = ModuleLibrary::from_simple(table1_library());
    mlib.equiv = bench.equiv.clone();
    let report = synthesize(&bench.hierarchy, &mlib, &quick(Objective::Area, true, 2.5)).unwrap();
    // The three-level hierarchy survives into the RTL: the top has
    // submodules which themselves have submodules.
    let top = &report.design.top.built;
    assert!(!top.subs().is_empty());
    assert!(
        top.subs().iter().any(|s| !s.subs().is_empty()),
        "stage modules should contain butterfly modules"
    );
}

#[test]
fn fsm_and_netlist_export_work_on_synthesized_designs() {
    let bench = benchmarks::lat();
    let mut mlib = ModuleLibrary::from_simple(table1_library());
    mlib.equiv = bench.equiv.clone();
    let report = synthesize(&bench.hierarchy, &mlib, &quick(Objective::Area, true, 2.2)).unwrap();
    let design = &report.design;
    let fsm = hsyn::rtl::generate_fsm(&design.hierarchy, &design.top.built);
    assert!(fsm.state_count() >= 2);
    let text = hsyn::rtl::netlist_text(&design.hierarchy, &design.top.built, &mlib.simple);
    assert!(text.contains("module"));
    assert!(text.contains("behavior"));
}
