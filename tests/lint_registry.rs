//! The lint rule registry is part of the public contract: every code in
//! [`RuleCode::ALL`] must be documented in DESIGN.md's rule-registry table,
//! so adding a rule without a doc entry fails here. Also pins the JSON
//! export shape `hsyn lint --json` emits.

use hsyn::lint::{diagnostics_to_json, Diagnostic, Location, RuleCode, Severity};
use std::collections::BTreeSet;

const DESIGN_MD: &str = include_str!("../DESIGN.md");

#[test]
fn every_rule_code_is_documented_in_design_md() {
    for code in RuleCode::ALL {
        assert!(
            DESIGN_MD.contains(code.as_str()),
            "rule {} has no entry in DESIGN.md's rule registry — document what it \
             guards before shipping it",
            code.as_str()
        );
    }
}

#[test]
fn rule_codes_are_unique_and_stable() {
    let mut seen = BTreeSet::new();
    for code in RuleCode::ALL {
        assert!(
            seen.insert(code.as_str()),
            "duplicate code {}",
            code.as_str()
        );
        assert_eq!(RuleCode::parse(code.as_str()), Some(code));
        assert!(!code.summary().is_empty());
        // Codes are FAMILY###: a 3-letter family, then 3 digits.
        let (family, digits) = code.as_str().split_at(3);
        assert!(family.chars().all(|c| c.is_ascii_uppercase()));
        assert_eq!(digits.len(), 3);
        assert!(digits.chars().all(|c| c.is_ascii_digit()));
    }
    assert_eq!(seen.len(), RuleCode::ALL.len());
}

#[test]
fn json_export_shape_is_stable() {
    let diags = vec![
        Diagnostic {
            code: RuleCode::Dfa002,
            severity: Severity::Warning,
            location: Location {
                module: None,
                dfg: Some(hsyn::dfg::DfgId::from_index(1)),
                node: Some(hsyn::dfg::NodeId::from_index(5)),
                cycle: None,
                instance: None,
            },
            message: "output port 3 of n5 is dead".into(),
        },
        Diagnostic {
            code: RuleCode::Sch002,
            severity: Severity::Error,
            location: Location::default(),
            message: "value consumed before ready".into(),
        },
    ];
    let json = diagnostics_to_json(&diags).to_string_pretty();
    // Stable field order, one object per diagnostic.
    for field in [
        "\"code\"",
        "\"severity\"",
        "\"message\"",
        "\"module\"",
        "\"dfg\"",
        "\"node\"",
        "\"cycle\"",
        "\"instance\"",
    ] {
        assert!(json.contains(field), "missing {field} in {json}");
    }
    assert!(json.contains("\"DFA002\""));
    assert!(json.contains("\"warning\""));
    assert!(json.contains("\"SCH002\""));
    assert!(json.contains("\"error\""));
    let code_pos = json.find("\"code\"").unwrap();
    let sev_pos = json.find("\"severity\"").unwrap();
    assert!(code_pos < sev_pos, "field order changed");
}
