//! Cache-poisoning tests: corrupt or truncate the on-disk caches between
//! daemon runs; the daemon must detect the damage, discard the poisoned
//! files, count the discards, and still answer with byte-identical reports
//! via the cold path — a poisoned cache can cost time, never correctness.

#[path = "serve_harness/mod.rs"]
mod harness;

use std::fs;

use harness::{reference_result_json, start_server, temp_cache, tiny_job};
use hsyn::serve::{Client, ServeOptions};
use hsyn::util::Json;

#[test]
fn poisoned_caches_are_discarded_and_recomputed_identically() {
    let cache = temp_cache("poison");
    let opts = ServeOptions {
        cache_dir: Some(cache.clone()),
        ..ServeOptions::default()
    };
    let job = tiny_job("paulin");
    let expected = reference_result_json(&job);

    // Seed both cache layers with an honest run.
    let (addr, handle) = start_server(opts.clone());
    let mut client = Client::connect(&addr.to_string()).expect("connect");
    let first = client.submit(&job).expect("seed submit");
    assert_eq!(first.result_json, expected);
    client.shutdown().expect("shutdown");
    handle.join().expect("daemon thread");

    // Poison layer 1: truncate the job-cache entry to half its length.
    let jobs_dir = cache.join("jobs");
    let job_files: Vec<_> = fs::read_dir(&jobs_dir)
        .expect("jobs dir exists")
        .map(|e| e.expect("dir entry").path())
        .collect();
    assert_eq!(job_files.len(), 1, "exactly one cached job expected");
    let bytes = fs::read(&job_files[0]).expect("read cache entry");
    fs::write(&job_files[0], &bytes[..bytes.len() / 2]).expect("truncate");

    // Poison layer 2: overwrite the area store with garbage.
    let area = cache.join("area.json");
    assert!(area.exists(), "area store must have been persisted");
    fs::write(&area, b"{\"version\": 1, \"check\": \"liar\"").expect("poison area");

    // Restart: both corruptions must be detected and discarded, and the
    // job must recompute cold to the exact same bytes.
    let (addr, handle) = start_server(opts.clone());
    let mut client = Client::connect(&addr.to_string()).expect("reconnect");
    let stats = client.stats().expect("stats");
    assert!(
        stats
            .get("cache_discards")
            .and_then(Json::as_f64)
            .unwrap_or(0.0)
            >= 1.0,
        "poisoned area store must be counted at startup: {stats:?}"
    );
    let replay = client.submit(&job).expect("post-poison submit");
    assert!(
        !replay.cached,
        "a truncated job-cache entry must not be served as a hit"
    );
    assert_eq!(
        replay.result_json, expected,
        "cold recompute after poisoning diverged from the reference bytes"
    );
    let stats = client.stats().expect("stats after recompute");
    assert!(
        stats
            .get("cache_discards")
            .and_then(Json::as_f64)
            .unwrap_or(0.0)
            >= 2.0,
        "both poisoned layers must be counted: {stats:?}"
    );
    client.shutdown().expect("shutdown");
    handle.join().expect("daemon thread");

    // The poisoned files were deleted and rewritten by the recompute: a
    // third daemon answers from a healthy cache again.
    let (addr, handle) = start_server(opts);
    let mut client = Client::connect(&addr.to_string()).expect("third connect");
    let healed = client.submit(&job).expect("healed submit");
    assert!(healed.cached, "recompute must have rewritten the job cache");
    assert_eq!(healed.result_json, expected);
    client.shutdown().expect("shutdown");
    handle.join().expect("daemon thread");
    let _ = fs::remove_dir_all(&cache);
}

#[test]
fn version_skewed_job_entry_is_rejected_not_trusted() {
    let cache = temp_cache("skew");
    let opts = ServeOptions {
        cache_dir: Some(cache.clone()),
        ..ServeOptions::default()
    };
    let job = tiny_job("paulin");
    let expected = reference_result_json(&job);

    let (addr, handle) = start_server(opts.clone());
    let mut client = Client::connect(&addr.to_string()).expect("connect");
    client.submit(&job).expect("seed submit");
    client.shutdown().expect("shutdown");
    handle.join().expect("daemon thread");

    // Rewrite the entry claiming a future format version; its checksum
    // still matches, so only the version gate can reject it.
    let entry = fs::read_dir(cache.join("jobs"))
        .expect("jobs dir")
        .next()
        .expect("one entry")
        .expect("dir entry")
        .path();
    let text = fs::read_to_string(&entry).expect("read entry");
    fs::write(
        &entry,
        text.replacen("\"version\": 1", "\"version\": 999", 1),
    )
    .expect("skew version");

    let (addr, handle) = start_server(opts);
    let mut client = Client::connect(&addr.to_string()).expect("reconnect");
    let replay = client.submit(&job).expect("submit");
    assert!(!replay.cached, "a version-skewed entry must not be trusted");
    assert_eq!(replay.result_json, expected);
    client.shutdown().expect("shutdown");
    handle.join().expect("daemon thread");
    let _ = fs::remove_dir_all(&cache);
}
