//! Seeded property test for shadow evaluation: random behaviors are
//! synthesized with [`SynthesisConfig::shadow_eval`] armed, so **every**
//! search evaluation runs both the incremental and the full path and panics
//! on the first bit-level divergence, naming the offending move and the
//! module path it dirtied. A completed run *is* the assertion. Cases come
//! from a fixed seed so failures reproduce exactly; set `HSYN_TEST_ITERS`
//! to widen the sweep locally.

mod common;

use common::{arb_behavior, test_iters};
use hsyn::core::{synthesize, Objective, SynthesisConfig};
use hsyn::dfg::Hierarchy;
use hsyn::lib::papers::table1_library;
use hsyn::rtl::ModuleLibrary;
use hsyn_util::Rng;

#[test]
fn shadow_synthesis_of_random_behaviors_never_diverges() {
    let cases = test_iters(8);
    let mut rng = Rng::seed_from_u64(0x5AD0E);
    for case in 0..cases {
        let g = arb_behavior(&mut rng);
        let laxity_pct = rng.range_i64(120, 319) as u32;
        let objective_area = rng.next_bool(0.5);
        let mut h = Hierarchy::new();
        let id = h.add_dfg(g.clone());
        h.set_top(id);
        assert!(h.validate().is_ok());

        let mlib = ModuleLibrary::from_simple(table1_library());
        let mut config = SynthesisConfig::new(if objective_area {
            Objective::Area
        } else {
            Objective::Power
        });
        config.laxity_factor = f64::from(laxity_pct) / 100.0;
        config.max_passes = 2;
        config.candidate_limit = 2;
        config.eval_trace_len = 8;
        config.report_trace_len = 16;
        config.max_clock_candidates = 2;
        config.resynth_depth = 0;
        config.shadow_eval = true;

        // Any cache/full divergence panics inside the engine with the
        // offending move and dirty module path; reaching here means every
        // evaluation of this case was bit-identical on both paths.
        let report = synthesize(&h, &mlib, &config)
            .unwrap_or_else(|e| panic!("case {case}: shadow synthesis failed: {e}"));
        // The cached path really ran (shadow without cache traffic would
        // be vacuous).
        assert!(
            report.stats.eval_cache_misses > 0,
            "case {case}: shadow run recorded no cache traffic"
        );
    }
}
