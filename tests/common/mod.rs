//! Shared helpers for the end-to-end test suite: the random-behavior
//! generator and its reference evaluator, used by the semantics property
//! test and the paranoid-mode property test.
#![allow(dead_code)]

use hsyn::dfg::{Dfg, NodeId, NodeKind, Operation, VarRef};
use hsyn::power::TraceSet;
use hsyn_util::Rng;

/// Datapath bit width used by every property test.
pub const W: u32 = 16;

/// A random leaf DFG over add/sub/mult with occasional feedback edges.
pub fn arb_behavior(rng: &mut Rng) -> Dfg {
    let n_in = rng.range_usize(2, 4);
    let n_ops = rng.range_usize(3, 14);
    let seed = rng.next_u64();
    let feedback = rng.next_bool(0.5);
    let mut g = Dfg::new("rand");
    let mut vars: Vec<VarRef> = (0..n_in).map(|i| g.add_input(format!("i{i}"))).collect();
    let mut state = seed | 1;
    let mut next = move || {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        (state >> 33) as usize
    };
    let ops = [Operation::Add, Operation::Sub, Operation::Mult];
    let mut pending_feedback: Option<NodeId> = None;
    for k in 0..n_ops {
        let op = ops[next() % 3];
        if feedback && k == 0 {
            // One accumulator-style feedback node.
            let a = vars[next() % vars.len()];
            let n = g.add_op_detached(Operation::Add, format!("fb{k}"));
            g.connect(a, n, 0, 0);
            pending_feedback = Some(n);
            vars.push(VarRef::new(n, 0));
            continue;
        }
        let a = vars[next() % vars.len()];
        let b = vars[next() % vars.len()];
        vars.push(g.add_op(op, format!("n{k}"), &[a, b]));
    }
    if let Some(n) = pending_feedback {
        // Close the loop through a delay from a later value.
        let src = *vars.last().expect("non-empty");
        g.connect(src, n, 1, 1);
    }
    g.add_output("y", *vars.last().unwrap());
    g
}

/// Reference evaluation of the behavior with delay state.
pub fn reference(g: &Dfg, traces: &TraceSet) -> Vec<i64> {
    let order = hsyn::dfg::analysis::topo_order(g).unwrap();
    let mut hist: std::collections::HashMap<(NodeId, u32), i64> = Default::default();
    let mut outs = Vec::new();
    for n in 0..traces.len() {
        let mut vals: std::collections::HashMap<NodeId, i64> = Default::default();
        let read = |vals: &std::collections::HashMap<NodeId, i64>,
                    hist: &std::collections::HashMap<(NodeId, u32), i64>,
                    e: &hsyn::dfg::Edge| {
            if e.delay > 0 {
                hist.get(&(e.from.node, e.delay)).copied().unwrap_or(0)
            } else {
                vals.get(&e.from.node).copied().unwrap_or(0)
            }
        };
        for &nid in &order {
            let v = match g.node(nid).kind() {
                NodeKind::Input { index } => traces.samples[*index][n],
                NodeKind::Const { value } => {
                    let shift = 64 - W;
                    (*value << shift) >> shift
                }
                NodeKind::Op(op) => {
                    let args: Vec<i64> = (0..op.arity() as u16)
                        .map(|p| read(&vals, &hist, g.driver(nid, p).unwrap()))
                        .collect();
                    op.eval(&args, W)
                }
                NodeKind::Output { .. } => {
                    let v = read(&vals, &hist, g.driver(nid, 0).unwrap());
                    outs.push(v);
                    v
                }
                NodeKind::Hier { .. } => unreachable!("leaf"),
            };
            vals.insert(nid, v);
        }
        // Shift one-deep history (generator only creates delay-1 edges).
        for (_, e) in g.edges() {
            if e.delay == 1 {
                if let Some(&v) = vals.get(&e.from.node) {
                    hist.insert((e.from.node, 1), v);
                }
            }
        }
    }
    outs
}
