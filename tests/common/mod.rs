//! Shared helpers for the end-to-end test suite: the random-behavior
//! generator and its reference evaluator, used by the semantics property
//! test and the paranoid-mode property test.
#![allow(dead_code)]

use hsyn::dfg::{Dfg, NodeId, Operation, VarRef};
use hsyn::power::TraceSet;
use hsyn_util::Rng;

/// Datapath bit width used by every property test.
pub const W: u32 = 16;

/// Iteration count for a property test: `HSYN_TEST_ITERS` if set, else the
/// legacy `HSYN_PROP_CASES`, else `default` — so CI can run deep sweeps
/// while local runs stay fast and old pipelines keep working.
pub fn test_iters(default: u64) -> u64 {
    ["HSYN_TEST_ITERS", "HSYN_PROP_CASES"]
        .iter()
        .find_map(|k| std::env::var(k).ok()?.parse().ok())
        .unwrap_or(default)
}

/// A random leaf DFG over add/sub/mult with occasional feedback edges.
pub fn arb_behavior(rng: &mut Rng) -> Dfg {
    let n_in = rng.range_usize(2, 4);
    let n_ops = rng.range_usize(3, 14);
    let seed = rng.next_u64();
    let feedback = rng.next_bool(0.5);
    let mut g = Dfg::new("rand");
    let mut vars: Vec<VarRef> = (0..n_in).map(|i| g.add_input(format!("i{i}"))).collect();
    let mut state = seed | 1;
    let mut next = move || {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        (state >> 33) as usize
    };
    let ops = [Operation::Add, Operation::Sub, Operation::Mult];
    let mut pending_feedback: Option<NodeId> = None;
    for k in 0..n_ops {
        let op = ops[next() % 3];
        if feedback && k == 0 {
            // One accumulator-style feedback node.
            let a = vars[next() % vars.len()];
            let n = g.add_op_detached(Operation::Add, format!("fb{k}"));
            g.connect(a, n, 0, 0);
            pending_feedback = Some(n);
            vars.push(VarRef::new(n, 0));
            continue;
        }
        let a = vars[next() % vars.len()];
        let b = vars[next() % vars.len()];
        vars.push(g.add_op(op, format!("n{k}"), &[a, b]));
    }
    if let Some(n) = pending_feedback {
        // Close the loop through a delay from a later value.
        let src = *vars.last().expect("non-empty");
        g.connect(src, n, 1, 1);
    }
    g.add_output("y", *vars.last().unwrap());
    g
}

/// Reference evaluation of the behavior with delay state: the shared
/// [`hsyn::dfg::reference_outputs`] oracle, specialized to the generator's
/// single-output graphs.
pub fn reference(g: &Dfg, traces: &TraceSet) -> Vec<i64> {
    let mut outs = hsyn::dfg::reference_outputs(g, &traces.samples, W);
    assert_eq!(outs.len(), 1, "arb_behavior emits a single output");
    outs.remove(0)
}
