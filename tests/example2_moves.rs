//! Integration test reproducing the paper's **Example 2** mechanics on the
//! `test1` benchmark: slack-derived constraint windows let move *A* swap a
//! complex module for an equivalent lower-power one, and move *B*
//! resynthesis replaces `mult1` units with `mult2` when the environment
//! relaxes.

use hsyn::core::{
    apply, initial_solution, selection_candidates, DesignPoint, Move, Objective, OperatingPoint,
};
use hsyn::lib::papers::TABLE1_CLOCK_NS;
use hsyn::rtl::papers::test1_complex_library;
use hsyn::sched::Profile;

/// With a relaxed sampling period, the candidate set must contain a
/// move-A swap of `RTL1` (dot3, initially the fast `C1`) to the equivalent
/// low-power `C2` (the `dot3_chain` DFG), and applying it must (a) rewrite
/// the hierarchical node's DFG and (b) keep the design schedulable.
#[test]
fn move_a_swaps_c1_for_equivalent_c2() {
    let (bench, mlib) = test1_complex_library();
    let h = &bench.hierarchy;
    // Sampling period 24 cycles: plenty of slack over the ~9-cycle minimum.
    let op = OperatingPoint::derive(&mlib.simple, 5.0, TABLE1_CLOCK_NS, 240.0);
    let top = initial_solution(h, &mlib, &op).expect("test1 initial solution");
    let dp = DesignPoint {
        hierarchy: h.clone(),
        op,
        top,
    };

    let dot3_tree = h.dfg_by_name("dot3_tree").unwrap();
    let dot3_chain = h.dfg_by_name("dot3_chain").unwrap();

    let cands = selection_candidates(&dp, &mlib, Objective::Power, false);
    let swap = cands
        .iter()
        .map(|(_, mv)| mv)
        .find(|mv| {
            matches!(mv, Move::SwapChild { dfg, lib_idx, .. }
                if *dfg == dot3_chain && mlib.complex[*lib_idx].module.name() == "C2")
        })
        .expect("a C1 -> C2 swap candidate must exist (equivalence class)");

    let new = apply(&dp, swap, &mlib, &mut |_, _, _| None).expect("swap is schedulable");
    // The hierarchical node now invokes the chain DFG, not the tree.
    let top_dfg = new.top.core.dfg;
    let g = new.hierarchy.dfg(top_dfg);
    let rewritten = g.nodes().any(
        |(_, n)| matches!(n.kind(), hsyn::dfg::NodeKind::Hier { callee } if *callee == dot3_chain),
    );
    assert!(rewritten, "move A rewrote the node's DFG to the equivalent");
    assert!(!g.nodes().any(
        |(_, n)| matches!(n.kind(), hsyn::dfg::NodeKind::Hier { callee } if *callee == dot3_tree)
    ));
}

/// Example 2's core arithmetic: the relaxed window `{0,0,0,0,9,9}` admits
/// the `mult2`-based implementation of the prodsum block, while the
/// original environment does not.
#[test]
fn relaxed_window_admits_mult2_resynthesis() {
    let (bench, mlib) = test1_complex_library();
    let h = &bench.hierarchy;
    let prodsum = h.dfg_by_name("prodsum").unwrap();

    // Build the mult2-based variant of the prodsum module — the
    // implementation move-B resynthesis proposes under a relaxed window
    // ("replacement of modules M5 and M4, currently of type mult1, by
    // mult2, which would significantly reduce power consumption").
    let lib = &mlib.simple;
    let spec = hsyn::rtl::ModuleSpec::dedicated(
        h,
        prodsum,
        "prodsum_mult2",
        |_, op| match op {
            hsyn::dfg::Operation::Mult => lib.fu_by_name("mult2").unwrap(),
            _ => lib.fu_by_name("add1").unwrap(),
        },
        |_, _| unreachable!("leaf"),
    );
    let ctx = hsyn::rtl::BuildCtx::new(lib, TABLE1_CLOCK_NS, 5.0, Some(9));
    let slow = hsyn::rtl::build(h, &spec, &ctx).expect("fits the 9-cycle window");
    // The fast library module C3 (mult1-based) has profile latency 4.
    let c3 = &mlib.complex[2].module;
    assert_eq!(c3.profile_for(prodsum).unwrap().latency(), 4);
    // A mult2-based implementation takes longer but fits the relaxed window.
    let relaxed = hsyn::sched::Environment {
        input_arrivals: vec![0, 0, 0, 0],
        output_consumptions: vec![9, 9],
    };
    let tight = hsyn::sched::Environment {
        input_arrivals: vec![0, 0, 0, 0],
        output_consumptions: vec![4, 3],
    };
    let slow_profile: &Profile = slow.profile_for(prodsum).expect("behavior");
    assert!(
        slow_profile.latency() > 4,
        "mult2 implementation is slower: {slow_profile}"
    );
    assert!(relaxed.admits(slow_profile), "relaxed window admits mult2");
    assert!(
        !tight.admits(slow_profile),
        "original environment rejects it"
    );
}
