//! The co-simulation oracle against the whole benchmark suite: every
//! built-in benchmark, synthesized under both objectives and in both
//! hierarchical and flattened modes, must produce outputs **byte-identical**
//! to the flattened-DFG reference evaluator when its FSM is stepped against
//! the bound datapath cycle by cycle.
//!
//! This is the top of the differential-testing pyramid: the same designs
//! are already shadow-evaluated (cache vs full), golden-snapshotted, and
//! lint-verified — here the *control path itself* is executed.

mod common;

use common::W;
use hsyn::core::{synthesize, Objective, SynthesisConfig};
use hsyn::dfg::{benchmarks, reference_outputs};
use hsyn::lib::papers::table1_library;
use hsyn::power::dsp_default;
use hsyn::rtl::{cosimulate, ModuleLibrary};

/// Trace length for every benchmark run.
const ITERS: usize = 10;

fn small_config(objective: Objective, hierarchical: bool) -> SynthesisConfig {
    // Small budgets: the point is co-simulating every accepted design
    // shape, not search quality.
    let mut c = SynthesisConfig::new(objective);
    c.laxity_factor = 2.2;
    c.hierarchical = hierarchical;
    c.max_passes = 2;
    c.candidate_limit = 2;
    c.eval_trace_len = 8;
    c.report_trace_len = 16;
    c.max_clock_candidates = 2;
    c.resynth_depth = 0;
    c
}

#[test]
fn all_benchmarks_cosimulate_bit_exactly() {
    for bench in benchmarks::all() {
        let flat = bench.hierarchy.flatten();
        let traces = dsp_default(flat.input_count(), ITERS, W, 0xC051_3ED5);
        let want = reference_outputs(&flat, &traces.samples, W);
        for objective in [Objective::Area, Objective::Power] {
            for hierarchical in [true, false] {
                let label = format!(
                    "{} ({objective:?}, {})",
                    bench.name,
                    if hierarchical { "hier" } else { "flat" }
                );
                let mut mlib = ModuleLibrary::from_simple(table1_library());
                mlib.equiv = bench.equiv.clone();
                let config = small_config(objective, hierarchical);
                let report = synthesize(&bench.hierarchy, &mlib, &config)
                    .unwrap_or_else(|e| panic!("{label}: synthesis failed: {e}"));
                let design = &report.design;
                let run = cosimulate(&design.hierarchy, &design.top.built, &traces.samples, W)
                    .unwrap_or_else(|d| panic!("{label}: {d}"));
                assert_eq!(run.outputs, want, "{label}: outputs diverged");
                assert_eq!(run.stats.iterations as usize, ITERS, "{label}");
                assert!(run.stats.fu_fires > 0, "{label}: no FU ever fired");
            }
        }
    }
}

#[test]
fn cosim_check_is_observation_only_on_legal_runs() {
    let bench = benchmarks::by_name("hier_paulin").expect("built-in benchmark");
    let mut mlib = ModuleLibrary::from_simple(table1_library());
    mlib.equiv = bench.equiv.clone();
    let mut config = small_config(Objective::Power, true);
    let plain = synthesize(&bench.hierarchy, &mlib, &config).unwrap();
    config.cosim_check = true;
    let checked = synthesize(&bench.hierarchy, &mlib, &config).unwrap();
    // Same search, same result: the gate observes, never steers.
    assert_eq!(plain.stats, checked.stats);
    assert_eq!(
        plain.evaluation.area.total(),
        checked.evaluation.area.total()
    );
    assert_eq!(plain.evaluation.power.power, checked.evaluation.power.power);
    assert_eq!(plain.per_config.len(), checked.per_config.len());
    // No configuration was skipped by the COSIM rule.
    assert!(checked
        .skipped_configs
        .iter()
        .all(|s| s.rule.as_deref() != Some("COSIM")));
}
