//! Seeded property test for paranoid mode: for random behaviors, synthesis
//! with the cross-layer verifier armed must succeed with **zero** verifier
//! rejections — every design the engine accepts satisfies every lint
//! invariant — and the final design must lint clean. Cases are generated
//! from a fixed seed, so failures reproduce exactly; set `HSYN_TEST_ITERS`
//! to widen the sweep locally.

mod common;

use common::{arb_behavior, test_iters};
use hsyn::core::{synthesize, Objective, SynthesisConfig};
use hsyn::dfg::Hierarchy;
use hsyn::lib::papers::table1_library;
use hsyn::lint::{verify_design, DesignView};
use hsyn::rtl::ModuleLibrary;
use hsyn_util::Rng;

#[test]
fn paranoid_synthesis_of_random_behaviors_is_violation_free() {
    let cases = test_iters(12);
    let mut rng = Rng::seed_from_u64(0xE2E02);
    for case in 0..cases {
        let g = arb_behavior(&mut rng);
        let laxity_pct = rng.range_i64(120, 319) as u32;
        let objective_area = rng.next_bool(0.5);
        let mut h = Hierarchy::new();
        let id = h.add_dfg(g.clone());
        h.set_top(id);
        assert!(h.validate().is_ok());

        let mlib = ModuleLibrary::from_simple(table1_library());
        let mut config = SynthesisConfig::new(if objective_area {
            Objective::Area
        } else {
            Objective::Power
        });
        config.laxity_factor = f64::from(laxity_pct) / 100.0;
        config.max_passes = 2;
        config.candidate_limit = 2;
        config.eval_trace_len = 8;
        config.report_trace_len = 16;
        config.max_clock_candidates = 2;
        config.resynth_depth = 0;
        config.paranoid = true;

        let report = synthesize(&h, &mlib, &config)
            .unwrap_or_else(|e| panic!("case {case}: paranoid synthesis failed: {e}"));
        // No configuration may have been dropped by the verifier.
        for s in &report.skipped_configs {
            assert!(
                s.rule.is_none(),
                "case {case}: verifier rejected ({}, {} ns): {}",
                s.vdd,
                s.clk_ns,
                s.reason
            );
        }
        // Verifier wall-clock was recorded for every optimized config.
        assert!(report.per_config.iter().all(|c| c.verify_s > 0.0));
        // The winning design lints clean at its operating point.
        let design = &report.design;
        let diags = verify_design(&DesignView {
            hierarchy: &design.hierarchy,
            module: &design.top.built,
            lib: &mlib.simple,
            vdd: design.op.vdd,
            clk_ns: design.op.clk_ref_ns,
            sampling_period: design.top.core.deadline,
        });
        assert!(
            diags.is_empty(),
            "case {case}: final design dirty: {diags:?}"
        );
    }
}
