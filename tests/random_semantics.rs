//! Randomized end-to-end check: for *random* behaviors, synthesis at a
//! random laxity must produce RTL that computes exactly the behavioral
//! semantics — the strongest cross-crate invariant in the suite (schedule,
//! binding, chaining, register sharing, and module moves all sit between
//! the DFG and the simulated outputs). Cases are generated from a fixed
//! seed, so failures reproduce exactly; set `HSYN_PROP_CASES` to widen the
//! sweep locally.

use hsyn::core::{synthesize, Objective, SynthesisConfig};
use hsyn::dfg::{Dfg, Hierarchy, NodeId, NodeKind, Operation, VarRef};
use hsyn::lib::papers::table1_library;
use hsyn::power::{dsp_default, simulate, TraceSet};
use hsyn::rtl::ModuleLibrary;
use hsyn_util::Rng;

const W: u32 = 16;

/// A random leaf DFG over add/sub/mult with occasional feedback edges.
fn arb_behavior(rng: &mut Rng) -> Dfg {
    let n_in = rng.range_usize(2, 4);
    let n_ops = rng.range_usize(3, 14);
    let seed = rng.next_u64();
    let feedback = rng.next_bool(0.5);
    let mut g = Dfg::new("rand");
    let mut vars: Vec<VarRef> = (0..n_in).map(|i| g.add_input(format!("i{i}"))).collect();
    let mut state = seed | 1;
    let mut next = move || {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        (state >> 33) as usize
    };
    let ops = [Operation::Add, Operation::Sub, Operation::Mult];
    let mut pending_feedback: Option<NodeId> = None;
    for k in 0..n_ops {
        let op = ops[next() % 3];
        if feedback && k == 0 {
            // One accumulator-style feedback node.
            let a = vars[next() % vars.len()];
            let n = g.add_op_detached(Operation::Add, format!("fb{k}"));
            g.connect(a, n, 0, 0);
            pending_feedback = Some(n);
            vars.push(VarRef::new(n, 0));
            continue;
        }
        let a = vars[next() % vars.len()];
        let b = vars[next() % vars.len()];
        vars.push(g.add_op(op, format!("n{k}"), &[a, b]));
    }
    if let Some(n) = pending_feedback {
        // Close the loop through a delay from a later value.
        let src = *vars.last().expect("non-empty");
        g.connect(src, n, 1, 1);
    }
    g.add_output("y", *vars.last().unwrap());
    g
}

/// Reference evaluation of the behavior with delay state.
fn reference(g: &Dfg, traces: &TraceSet) -> Vec<i64> {
    let order = hsyn::dfg::analysis::topo_order(g).unwrap();
    let mut hist: std::collections::HashMap<(NodeId, u32), i64> = Default::default();
    let mut outs = Vec::new();
    for n in 0..traces.len() {
        let mut vals: std::collections::HashMap<NodeId, i64> = Default::default();
        let read = |vals: &std::collections::HashMap<NodeId, i64>,
                    hist: &std::collections::HashMap<(NodeId, u32), i64>,
                    e: &hsyn::dfg::Edge| {
            if e.delay > 0 {
                hist.get(&(e.from.node, e.delay)).copied().unwrap_or(0)
            } else {
                vals.get(&e.from.node).copied().unwrap_or(0)
            }
        };
        for &nid in &order {
            let v = match g.node(nid).kind() {
                NodeKind::Input { index } => traces.samples[*index][n],
                NodeKind::Const { value } => {
                    let shift = 64 - W;
                    (*value << shift) >> shift
                }
                NodeKind::Op(op) => {
                    let args: Vec<i64> = (0..op.arity() as u16)
                        .map(|p| read(&vals, &hist, g.driver(nid, p).unwrap()))
                        .collect();
                    op.eval(&args, W)
                }
                NodeKind::Output { .. } => {
                    let v = read(&vals, &hist, g.driver(nid, 0).unwrap());
                    outs.push(v);
                    v
                }
                NodeKind::Hier { .. } => unreachable!("leaf"),
            };
            vals.insert(nid, v);
        }
        // Shift one-deep history (generator only creates delay-1 edges).
        for (_, e) in g.edges() {
            if e.delay == 1 {
                if let Some(&v) = vals.get(&e.from.node) {
                    hist.insert((e.from.node, 1), v);
                }
            }
        }
    }
    outs
}

#[test]
fn random_behaviors_synthesize_bit_exactly() {
    let cases: u64 = std::env::var("HSYN_PROP_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(24);
    let mut rng = Rng::seed_from_u64(0xE2E01);
    for _ in 0..cases {
        let g = arb_behavior(&mut rng);
        let laxity_pct = rng.range_i64(120, 319) as u32;
        let objective_area = rng.next_bool(0.5);
        let mut h = Hierarchy::new();
        let id = h.add_dfg(g.clone());
        h.set_top(id);
        assert!(h.validate().is_ok());

        let mlib = ModuleLibrary::from_simple(table1_library());
        let mut config = SynthesisConfig::new(if objective_area {
            Objective::Area
        } else {
            Objective::Power
        });
        config.laxity_factor = f64::from(laxity_pct) / 100.0;
        config.max_passes = 2;
        config.candidate_limit = 2;
        config.eval_trace_len = 8;
        config.report_trace_len = 16;
        config.max_clock_candidates = 2;
        config.resynth_depth = 0;

        let report = synthesize(&h, &mlib, &config).expect("random behavior synthesizes");
        let traces = dsp_default(g.input_count(), 24, W, 1234);
        let expected = reference(&g, &traces);
        let (_, got) = simulate(&report.design.hierarchy, &report.design.top.built, &traces);
        assert_eq!(
            &got[0], &expected,
            "synthesized RTL diverges from the behavior"
        );
    }
}
