//! Randomized end-to-end check: for *random* behaviors, synthesis at a
//! random laxity must produce RTL that computes exactly the behavioral
//! semantics — the strongest cross-crate invariant in the suite (schedule,
//! binding, chaining, register sharing, and module moves all sit between
//! the DFG and the simulated outputs). Cases are generated from a fixed
//! seed, so failures reproduce exactly; set `HSYN_TEST_ITERS` to widen the
//! sweep locally.

mod common;

use common::{arb_behavior, reference, test_iters, W};
use hsyn::core::{synthesize, Objective, SynthesisConfig};
use hsyn::dfg::Hierarchy;
use hsyn::lib::papers::table1_library;
use hsyn::power::{dsp_default, simulate};
use hsyn::rtl::ModuleLibrary;
use hsyn_util::Rng;

#[test]
fn random_behaviors_synthesize_bit_exactly() {
    let cases = test_iters(24);
    let mut rng = Rng::seed_from_u64(0xE2E01);
    for _ in 0..cases {
        let g = arb_behavior(&mut rng);
        let laxity_pct = rng.range_i64(120, 319) as u32;
        let objective_area = rng.next_bool(0.5);
        let mut h = Hierarchy::new();
        let id = h.add_dfg(g.clone());
        h.set_top(id);
        assert!(h.validate().is_ok());

        let mlib = ModuleLibrary::from_simple(table1_library());
        let mut config = SynthesisConfig::new(if objective_area {
            Objective::Area
        } else {
            Objective::Power
        });
        config.laxity_factor = f64::from(laxity_pct) / 100.0;
        config.max_passes = 2;
        config.candidate_limit = 2;
        config.eval_trace_len = 8;
        config.report_trace_len = 16;
        config.max_clock_candidates = 2;
        config.resynth_depth = 0;

        let report = synthesize(&h, &mlib, &config).expect("random behavior synthesizes");
        let traces = dsp_default(g.input_count(), 24, W, 1234);
        let expected = reference(&g, &traces);
        let (_, got) = simulate(&report.design.hierarchy, &report.design.top.built, &traces);
        assert_eq!(
            &got[0], &expected,
            "synthesized RTL diverges from the behavior"
        );
    }
}
