//! The `hsyn` CLI fails helpfully: unknown `--benchmark` / `--library`
//! names exit nonzero and list every available name so the user can
//! correct the invocation without consulting the source.

use std::process::Command;

fn run(args: &[&str]) -> (bool, String) {
    let out = Command::new(env!("CARGO_BIN_EXE_hsyn"))
        .args(args)
        .output()
        .expect("hsyn binary runs");
    (
        out.status.success(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
    )
}

#[test]
fn unknown_benchmark_lists_available_names() {
    for args in [
        &["--benchmark", "nope"][..],
        &["cosim", "--benchmark", "nope"][..],
        &["lint", "--benchmark", "nope"][..],
    ] {
        let (ok, stderr) = run(args);
        assert!(!ok, "{args:?} must fail");
        assert!(
            stderr.contains("unknown benchmark `nope`"),
            "{args:?}: {stderr}"
        );
        for name in ["paulin", "fft4", "matmul", "fir_block", "conv2d"] {
            assert!(
                stderr.contains(name),
                "{args:?}: error must list `{name}`: {stderr}"
            );
        }
    }
}

#[test]
fn unknown_library_lists_available_names() {
    let (ok, stderr) = run(&["--benchmark", "paulin", "--library", "nope"]);
    assert!(!ok);
    assert!(
        stderr.contains("unknown library `nope`")
            && stderr.contains("table1")
            && stderr.contains("realistic"),
        "{stderr}"
    );
}
