//! The `hsyn` CLI fails helpfully: unknown `--benchmark` / `--library`
//! names exit nonzero and list every available name so the user can
//! correct the invocation without consulting the source.

use std::process::Command;

fn run(args: &[&str]) -> (bool, String) {
    let out = Command::new(env!("CARGO_BIN_EXE_hsyn"))
        .args(args)
        .output()
        .expect("hsyn binary runs");
    (
        out.status.success(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
    )
}

#[test]
fn unknown_benchmark_lists_available_names() {
    for args in [
        &["--benchmark", "nope"][..],
        &["cosim", "--benchmark", "nope"][..],
        &["lint", "--benchmark", "nope"][..],
    ] {
        let (ok, stderr) = run(args);
        assert!(!ok, "{args:?} must fail");
        assert!(
            stderr.contains("unknown benchmark `nope`"),
            "{args:?}: {stderr}"
        );
        for name in ["paulin", "fft4", "matmul", "fir_block", "conv2d"] {
            assert!(
                stderr.contains(name),
                "{args:?}: error must list `{name}`: {stderr}"
            );
        }
    }
}

#[test]
fn unknown_library_lists_available_names() {
    let (ok, stderr) = run(&["--benchmark", "paulin", "--library", "nope"]);
    assert!(!ok);
    assert!(
        stderr.contains("unknown library `nope`")
            && stderr.contains("table1")
            && stderr.contains("realistic"),
        "{stderr}"
    );
}

#[test]
fn unknown_subcommand_lists_subcommands() {
    let (ok, stderr) = run(&["serv"]);
    assert!(!ok, "a mistyped subcommand must fail");
    assert!(
        stderr.contains("unknown subcommand `serv`"),
        "stderr must name the bad word: {stderr}"
    );
    for sub in ["serve", "submit", "lint", "analyze", "cosim"] {
        assert!(stderr.contains(sub), "error must list `{sub}`: {stderr}");
    }
}

#[test]
fn conflicting_flags_are_rejected_with_an_explanation() {
    // Shadow evaluation cross-checks the incremental cache; disabling the
    // cache while demanding the cross-check is a contradiction.
    let (ok, stderr) = run(&["--benchmark", "paulin", "--shadow-eval", "--no-incremental"]);
    assert!(!ok, "--shadow-eval --no-incremental must fail");
    assert!(
        stderr.contains("--shadow-eval") && stderr.contains("--no-incremental"),
        "the error must name both flags: {stderr}"
    );

    // The parallel intra-config scan requires transactional application.
    let (ok, stderr) = run(&[
        "--benchmark",
        "paulin",
        "--no-transactional",
        "--intra-jobs",
        "2",
    ]);
    assert!(!ok, "--no-transactional --intra-jobs 2 must fail");
    assert!(
        stderr.contains("--no-transactional") && stderr.contains("--intra-jobs"),
        "the error must name both flags: {stderr}"
    );

    // --intra-jobs 1 is the serial default and conflicts with nothing.
    let (ok, stderr) = run(&[
        "--benchmark",
        "nope",
        "--no-transactional",
        "--intra-jobs",
        "1",
    ]);
    assert!(!ok, "fails on the bad benchmark, not the flags");
    assert!(
        stderr.contains("unknown benchmark"),
        "flag check must not fire for the serial default: {stderr}"
    );
}

#[test]
fn submit_requires_a_daemon_address() {
    let (ok, stderr) = run(&["submit", "--benchmark", "paulin"]);
    assert!(!ok);
    assert!(
        stderr.contains("--connect"),
        "submit without --connect must say what is missing: {stderr}"
    );
}
