//! The serve-vs-CLI differential suite — the daemon's correctness
//! contract, enforced byte for byte:
//!
//! * a job's `result_json` from the daemon equals a single-shot in-process
//!   (and CLI `--result-json`) run of the same spec;
//! * cold, warm (content-addressed job-cache hit), cache-bypassing
//!   (`no_cache`, which still sees the warm area store), and
//!   after-daemon-restart answers are all byte-identical;
//! * 1, 2, and 4 concurrent clients interleaving distinct jobs never
//!   cross-talk — every response matches its own job's reference bytes;
//! * the telemetry proves the cross-job cache actually worked (job-cache
//!   hits and warm area hits both nonzero on repeats).

#[path = "serve_harness/mod.rs"]
mod harness;

use std::process::Command;

use harness::{reference_result_json, start_server, temp_cache, tiny_job};
use hsyn::serve::{Client, JobSpec, ServeOptions};
use hsyn::util::Json;

fn stat(v: &Json, key: &str) -> f64 {
    v.get(key).and_then(Json::as_f64).unwrap_or(f64::NAN)
}

#[test]
fn cold_warm_nocache_and_restart_are_byte_identical() {
    let cache = temp_cache("diff");
    let opts = ServeOptions {
        cache_dir: Some(cache.clone()),
        ..ServeOptions::default()
    };
    let (addr, handle) = start_server(opts.clone());
    let job = tiny_job("paulin");
    let expected = reference_result_json(&job);

    let mut client = Client::connect(&addr.to_string()).expect("connect");
    let cold = client.submit(&job).expect("cold submit");
    assert!(!cold.cached, "first submission cannot be a cache hit");
    assert_eq!(cold.result_json, expected, "cold daemon run != reference");

    let warm = client.submit(&job).expect("warm submit");
    assert!(warm.cached, "repeat submission must hit the job cache");
    assert_eq!(warm.result_json, expected, "cached bytes != reference");

    // no_cache forces a recompute that still sees the warm area store:
    // the store must be byte-inert while demonstrably used.
    let mut bypass_job = job.clone();
    bypass_job.no_cache = true;
    let bypass = client.submit(&bypass_job).expect("no_cache submit");
    assert!(!bypass.cached);
    assert_eq!(bypass.result_json, expected, "warm-area recompute diverged");
    assert!(
        bypass.warm_area_hits > 0,
        "recompute after a prior job must reuse persisted area entries"
    );

    let stats = client.stats().expect("stats");
    assert!(stat(&stats, "job_cache_hits") >= 1.0, "{stats:?}");
    assert!(stat(&stats, "warm_area_hits") >= 1.0, "{stats:?}");
    client.shutdown().expect("shutdown");
    handle.join().expect("daemon thread");

    // Restart on the same cache directory: the persisted job cache must
    // answer without synthesizing, and a forced recompute must be warm.
    let (addr, handle) = start_server(opts);
    let mut client = Client::connect(&addr.to_string()).expect("reconnect");
    let replay = client.submit(&job).expect("post-restart submit");
    assert!(replay.cached, "restart must preserve the job cache");
    assert_eq!(replay.result_json, expected, "post-restart bytes diverged");
    let recompute = client.submit(&bypass_job).expect("post-restart recompute");
    assert!(!recompute.cached);
    assert_eq!(recompute.result_json, expected);
    assert!(
        recompute.warm_area_hits > 0,
        "area store must survive a daemon restart"
    );
    client.shutdown().expect("shutdown");
    handle.join().expect("daemon thread");
    let _ = std::fs::remove_dir_all(&cache);
}

#[test]
fn daemon_matches_cli_result_json_bytes() {
    // A *default* job (no budget overrides) against a *default* CLI run:
    // JobSpec::new mirrors synth_main flag for flag, and this is the test
    // that keeps them from drifting.
    let (addr, handle) = start_server(ServeOptions::default());
    let job = JobSpec::new(hsyn::serve::JobSource::Bench("paulin".to_owned()));
    let mut client = Client::connect(&addr.to_string()).expect("connect");
    let served = client.submit(&job).expect("submit");
    client.shutdown().expect("shutdown");
    handle.join().expect("daemon thread");

    let out = Command::new(env!("CARGO_BIN_EXE_hsyn"))
        .args(["--benchmark", "paulin", "--result-json"])
        .output()
        .expect("CLI runs");
    assert!(out.status.success(), "CLI failed: {out:?}");
    let cli = String::from_utf8(out.stdout).expect("CLI output is UTF-8");
    assert_eq!(
        cli.trim_end(),
        served.result_json,
        "daemon and CLI disagree on paulin's result_json bytes"
    );
}

#[test]
fn concurrent_clients_never_cross_talk() {
    // Distinct jobs (different seeds) in flight at once, from 1, 2, and 4
    // clients: every response must match its own job's reference bytes.
    let jobs: Vec<JobSpec> = [11u64, 22, 33, 44]
        .iter()
        .map(|&s| {
            let mut j = tiny_job("paulin");
            j.seed = Some(s);
            j.no_cache = true; // force real synthesis every time
            j
        })
        .collect();
    let expected: Vec<String> = jobs.iter().map(reference_result_json).collect();

    for clients in [1usize, 2, 4] {
        let (addr, handle) = start_server(ServeOptions {
            workers: 4,
            ..ServeOptions::default()
        });
        let mut threads = Vec::new();
        for c in 0..clients {
            let addr = addr.to_string();
            let jobs = jobs.clone();
            let expected = expected.clone();
            threads.push(std::thread::spawn(move || {
                let mut client = Client::connect(&addr).expect("connect");
                // Each client walks the suite in a different order.
                for i in 0..jobs.len() {
                    let k = (i + c) % jobs.len();
                    let got = client.submit(&jobs[k]).expect("submit");
                    assert_eq!(
                        got.result_json, expected[k],
                        "client {c} job {k} got another job's (or wrong) bytes \
                         under {clients} concurrent clients"
                    );
                }
            }));
        }
        for t in threads {
            t.join().expect("client thread");
        }
        let mut client = Client::connect(&addr.to_string()).expect("connect");
        client.shutdown().expect("shutdown");
        handle.join().expect("daemon thread");
    }
}
