//! Concurrency stress: several client threads hammer one daemon with the
//! full benchmark suite under mixed deadlines and cancellations. Every
//! job that completes must return its own reference bytes (no cross-talk
//! between concurrent jobs); every job that aborts must abort with a
//! structured `deadline` or `cancelled` error, never a partial report.

#[path = "serve_harness/mod.rs"]
mod harness;

use std::collections::HashMap;

use harness::{reference_result_json, start_server, tiny_job};
use hsyn::serve::{Client, ClientError, JobSpec, ServeOptions};
use hsyn::util::Json;

#[test]
fn stressed_daemon_serves_every_benchmark_byte_identically() {
    // Reduced budget, two distinct seeds per benchmark so concurrent jobs
    // are genuinely different work. The default subset keeps a debug-mode
    // `cargo test` fast; `HSYN_SERVE_FULL=1` (the CI serve job, release
    // mode) stresses the entire registry.
    let benches: Vec<String> = if std::env::var("HSYN_SERVE_FULL").is_ok() {
        hsyn::dfg::benchmarks::all()
            .iter()
            .map(|b| b.name.to_owned())
            .collect()
    } else {
        ["paulin", "wdf5", "conv2d", "lat", "fir_block"]
            .iter()
            .map(|s| (*s).to_owned())
            .collect()
    };
    assert!(benches.len() >= 4, "registry unexpectedly small");
    let mut jobs: Vec<JobSpec> = Vec::new();
    for bench in &benches {
        for seed in [1u64, 2] {
            let mut j = tiny_job(bench);
            j.seed = Some(seed);
            j.tag = Some(format!("stress-{bench}-{seed}"));
            jobs.push(j);
        }
    }
    let expected: HashMap<String, String> = jobs
        .iter()
        .map(|j| (j.cache_key(), reference_result_json(j)))
        .collect();

    let (addr, handle) = start_server(ServeOptions {
        workers: 4,
        queue_cap: 256,
        ..ServeOptions::default()
    });

    let n_clients = 4usize;
    let mut threads = Vec::new();
    for c in 0..n_clients {
        let addr = addr.to_string();
        let jobs = jobs.clone();
        let expected = expected.clone();
        threads.push(std::thread::spawn(move || {
            let mut client = Client::connect(&addr).expect("connect");
            let mut completed = 0usize;
            for i in 0..jobs.len() {
                // Each client walks the suite in a different rotation, and
                // every fourth job of client 3 carries an already-expired
                // deadline — those must abort cleanly, mid-stream, without
                // disturbing anything else.
                let k = (i + c * 3) % jobs.len();
                let mut job = jobs[k].clone();
                let doomed = c == 3 && i % 4 == 0;
                if doomed {
                    job.deadline_ms = Some(0);
                }
                match client.submit(&job) {
                    Ok(result) => {
                        assert!(!doomed, "a 0 ms deadline cannot produce a report");
                        assert_eq!(
                            result.result_json,
                            expected[&job.cache_key()],
                            "client {c} iteration {i}: wrong bytes for job {k}"
                        );
                        completed += 1;
                    }
                    Err(ClientError::Server { kind, .. }) => {
                        assert!(
                            doomed && kind == "deadline",
                            "client {c} iteration {i}: unexpected server error \
                             kind `{kind}` (doomed={doomed})"
                        );
                    }
                    Err(e) => panic!("client {c} iteration {i}: transport error {e}"),
                }
            }
            completed
        }));
    }
    let total: usize = threads
        .into_iter()
        .map(|t| t.join().expect("client thread"))
        .sum();
    assert!(total > 0, "at least the undoomed jobs must complete");

    let mut client = Client::connect(&addr.to_string()).expect("connect");
    let stats = client.stats().expect("stats");
    let served = stats
        .get("jobs_served")
        .and_then(Json::as_f64)
        .unwrap_or(0.0);
    let deadline = stats
        .get("jobs_deadline")
        .and_then(Json::as_f64)
        .unwrap_or(0.0);
    assert_eq!(served as usize, total, "served count disagrees: {stats:?}");
    assert!(deadline >= 1.0, "doomed jobs must be counted: {stats:?}");
    client.shutdown().expect("shutdown");
    handle.join().expect("daemon thread");
}

#[test]
fn tagged_cancellation_aborts_cleanly_or_completes_identically() {
    // A cancel racing a running job has exactly two legal outcomes: a
    // structured `cancelled` error, or the full untouched report. Submit
    // from one connection, cancel from another, and accept either — what
    // is *never* legal is a partial or mutated report.
    let (addr, handle) = start_server(ServeOptions {
        workers: 2,
        ..ServeOptions::default()
    });
    let mut job = tiny_job("paulin");
    job.tag = Some("race-me".to_owned());
    job.no_cache = true;
    let expected = reference_result_json(&job);

    for attempt in 0..4 {
        let submitter = {
            let addr = addr.to_string();
            let job = job.clone();
            std::thread::spawn(move || {
                let mut client = Client::connect(&addr).expect("connect");
                client.submit(&job)
            })
        };
        // Stagger the cancel differently each attempt to vary the race.
        std::thread::sleep(std::time::Duration::from_millis(attempt * 30));
        let mut killer = Client::connect(&addr.to_string()).expect("connect");
        killer.cancel("race-me").expect("cancel request");
        match submitter.join().expect("submitter thread") {
            Ok(result) => assert_eq!(
                result.result_json, expected,
                "attempt {attempt}: a cancel that lost the race must leave \
                 the report byte-identical"
            ),
            Err(ClientError::Server { kind, .. }) => assert_eq!(
                kind, "cancelled",
                "attempt {attempt}: aborts must carry the `cancelled` kind"
            ),
            Err(e) => panic!("attempt {attempt}: transport error {e}"),
        }
    }
    let mut client = Client::connect(&addr.to_string()).expect("connect");
    client.shutdown().expect("shutdown");
    handle.join().expect("daemon thread");
}
