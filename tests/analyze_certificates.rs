//! Width-certificate gate over the benchmark suite: for every built-in
//! benchmark and both objectives, the abstract interpreter's per-port
//! certificate must survive certified re-execution (every value truncated
//! to its certified width) byte-for-byte against the flattened behavioral
//! reference, the width-sized cost models must never exceed the baseline,
//! and the analysis must be deterministic.

use hsyn::core::{analyze, AnalyzeReport, Objective, SynthesisConfig};
use hsyn::dataflow::{analyze_hierarchy, certified_outputs, WidthCertificate};
use hsyn::dfg::{benchmarks, reference_outputs};
use hsyn::lib::papers::table1_library;
use hsyn::power::dsp_default;
use hsyn::rtl::ModuleLibrary;

const W: u32 = 16;

fn quick_config() -> SynthesisConfig {
    let mut config = SynthesisConfig::new(Objective::Area);
    config.laxity_factor = 2.2;
    config.max_passes = 1;
    config.candidate_limit = 2;
    config.eval_trace_len = 8;
    config.report_trace_len = 24;
    config.max_clock_candidates = 2;
    config
}

fn run_analyze(name: &str) -> AnalyzeReport {
    let bench = benchmarks::all()
        .into_iter()
        .find(|b| b.name == name)
        .unwrap_or_else(|| panic!("unknown benchmark {name}"));
    let mut mlib = ModuleLibrary::from_simple(table1_library());
    mlib.equiv = bench.equiv.clone();
    analyze(
        &bench.hierarchy,
        &mlib,
        &quick_config(),
        &[Objective::Area, Objective::Power],
    )
    .unwrap_or_else(|e| panic!("{name}: {e}"))
}

/// Every benchmark's bare hierarchy: certified execution at the proven
/// widths reproduces the behavioral reference exactly on random traces.
#[test]
fn certificates_are_sound_on_every_benchmark() {
    for bench in benchmarks::all() {
        let h = &bench.hierarchy;
        let analysis = analyze_hierarchy(h, W).unwrap();
        let inputs = dsp_default(h.dfg(h.top()).input_count(), 64, W, 0xC0FFEE);
        let got = certified_outputs(h, analysis.certificate(), &inputs.samples, W)
            .unwrap_or_else(|v| panic!("{}: certificate violated: {v}", bench.name));
        let want = reference_outputs(&h.flatten(), &inputs.samples, W);
        assert_eq!(got, want, "{}: certified outputs diverge", bench.name);
    }
}

/// A certificate with every width at nominal is a no-op: certified
/// execution equals reference execution on the un-truncated design.
#[test]
fn uniform_certificate_is_bit_exact() {
    for bench in benchmarks::all() {
        let h = &bench.hierarchy;
        let cert = WidthCertificate::uniform(h, W);
        let inputs = dsp_default(h.dfg(h.top()).input_count(), 32, W, 7);
        let got = certified_outputs(h, &cert, &inputs.samples, W).unwrap();
        let want = reference_outputs(&h.flatten(), &inputs.samples, W);
        assert_eq!(got, want, "{}", bench.name);
    }
}

/// The acceptance criterion: width-certified sizing strictly reduces
/// reported area and power on the narrow-coefficient benchmarks, for both
/// objectives, while the oracle gate holds.
#[test]
fn sized_costs_improve_on_dct_and_iir() {
    for name in ["dct", "iir"] {
        let report = run_analyze(name);
        assert_eq!(report.objectives.len(), 2);
        for o in &report.objectives {
            assert_eq!(
                o.verified_iterations, 24,
                "{name} ({:?}): gate did not cover the report traces",
                o.objective
            );
            assert!(
                o.sized_area.total() < o.baseline.area.total(),
                "{name} ({:?}): sized area {} !< baseline {}",
                o.objective,
                o.sized_area.total(),
                o.baseline.area.total()
            );
            assert!(
                o.sized_power.power < o.baseline.power.power,
                "{name} ({:?}): sized power {} !< baseline {}",
                o.objective,
                o.sized_power.power,
                o.baseline.power.power
            );
            assert!(o.narrowed_ports > 0);
            assert!(o.narrowed_resources > 0);
        }
    }
}

/// Sizing is sound everywhere: on every benchmark the sized figures are
/// parity or better, never an inflation.
#[test]
fn sized_costs_never_exceed_baseline_anywhere() {
    for bench in benchmarks::all() {
        let report = run_analyze(bench.name);
        for o in &report.objectives {
            assert!(
                o.sized_area.total() <= o.baseline.area.total() + 1e-9,
                "{} ({:?})",
                bench.name,
                o.objective
            );
            assert!(
                o.sized_power.power <= o.baseline.power.power + 1e-12,
                "{} ({:?})",
                bench.name,
                o.objective
            );
        }
    }
}

/// Same design in, byte-identical `result_json` out.
#[test]
fn analyze_report_json_is_deterministic() {
    let a = run_analyze("fir8").result_json();
    let b = run_analyze("fir8").result_json();
    assert_eq!(a, b);
}
