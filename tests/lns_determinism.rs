//! LNS determinism: ruin-and-recreate refinement is a pure function of the
//! design and [`SynthesisConfig::seed`] — no wall-clock, no thread
//! scheduling, no iteration-order dependence. For every paper-suite
//! benchmark at both objectives, synthesis with `lns_iters` on must
//! produce byte-identical [`SynthesisReport::result_json`]:
//!
//! * across repeated runs of the same configuration, and
//! * across `intra_parallelism` at 1, 2, and 4 workers — the parallel
//!   candidate scan inside the recreate loop replays sequentially, so the
//!   worker count can only change wall-clock, never the result.
//!
//! The canonical JSON pins the LNS counters (`lns_ruins`, `lns_accepts`)
//! alongside every per-config cost, so a single diverging ruin or accept
//! anywhere in the sweep fails the comparison.
//!
//! The quick default covers two benchmarks; set `HSYN_LNS_ALL=1` (the CI
//! `lns` job does) to sweep the full paper suite.

use hsyn::core::{synthesize, Objective, SynthesisConfig, SynthesisReport};
use hsyn::dfg::benchmarks::{self, Benchmark};
use hsyn::lib::papers::table1_library;
use hsyn::rtl::ModuleLibrary;

fn config(objective: Objective, intra: usize) -> SynthesisConfig {
    let mut c = SynthesisConfig::new(objective);
    c.laxity_factor = 2.2;
    c.max_passes = 3;
    c.candidate_limit = 3;
    c.eval_trace_len = 16;
    c.report_trace_len = 32;
    c.max_clock_candidates = 2;
    c.resynth_depth = 1;
    c.lns_iters = 6;
    // Hold the outer sweep serial so only the intra-config knob varies.
    c.parallelism = Some(1);
    c.intra_parallelism = intra;
    c
}

fn run(bench: &Benchmark, objective: Objective, intra: usize) -> SynthesisReport {
    let mut mlib = ModuleLibrary::from_simple(table1_library());
    mlib.equiv = bench.equiv.clone();
    synthesize(&bench.hierarchy, &mlib, &config(objective, intra))
        .unwrap_or_else(|e| panic!("{} ({objective:?}): synthesis failed: {e}", bench.name))
}

/// Benchmarks under test: a small always-on set, widened to the full
/// paper suite when `HSYN_LNS_ALL` is set.
fn suite() -> Vec<Benchmark> {
    if std::env::var_os("HSYN_LNS_ALL").is_some() {
        benchmarks::paper_suite()
    } else {
        vec![benchmarks::paulin(), benchmarks::iir()]
    }
}

#[test]
fn lns_result_json_is_identical_across_runs_and_worker_counts() {
    for bench in suite() {
        for objective in [Objective::Area, Objective::Power] {
            let baseline = run(&bench, objective, 1);
            assert!(
                baseline.stats.lns_ruins > 0,
                "{} ({objective:?}): the determinism check must exercise LNS",
                bench.name
            );
            let base_json = baseline.result_json();
            // Repeated run, same configuration: byte-identical.
            assert_eq!(
                base_json,
                run(&bench, objective, 1).result_json(),
                "{} ({objective:?}): result_json diverged across repeated runs",
                bench.name
            );
            // Same seed across intra-config worker counts: byte-identical.
            for workers in [2usize, 4] {
                assert_eq!(
                    base_json,
                    run(&bench, objective, workers).result_json(),
                    "{} ({objective:?}): result_json diverged at {workers} intra workers",
                    bench.name
                );
            }
        }
    }
}
