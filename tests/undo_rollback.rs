//! Property tests for the transactional move engine: random move sequences
//! speculated in place on random behaviors must roll back bit-exactly
//! (the structural fingerprint of the whole design returns to its value at
//! every journal mark), and full synthesis with the transactional engine
//! must be byte-identical — through the canonical
//! [`SynthesisReport::result_json`] rendering — to the clone-per-candidate
//! path it replaces. Cases come from a fixed seed so failures reproduce
//! exactly; set `HSYN_TEST_ITERS` to widen the sweep locally.

mod common;

use common::{arb_behavior, test_iters};
use hsyn::core::{
    apply_in_place, initial_solution, selection_candidates, sharing_candidates,
    splitting_candidates, synthesize, DesignPoint, Move, Objective, OperatingPoint,
    SynthesisConfig, UndoLog,
};
use hsyn::dfg::Hierarchy;
use hsyn::lib::papers::table1_library;
use hsyn::rtl::{module_fingerprint, ModuleLibrary};
use hsyn_util::{Json, Rng};

/// A buildable design point for a random leaf behavior, plus its library.
fn random_design(rng: &mut Rng) -> (DesignPoint, ModuleLibrary) {
    let g = arb_behavior(rng);
    let mut h = Hierarchy::new();
    let id = h.add_dfg(g);
    h.set_top(id);
    assert!(h.validate().is_ok());
    let mlib = ModuleLibrary::from_simple(table1_library());
    let op = OperatingPoint::derive(&mlib.simple, mlib.simple.technology.vref(), 10.0, 10_000.0);
    let top = initial_solution(&h, &mlib, &op).expect("relaxed deadline always builds");
    (
        DesignPoint {
            hierarchy: h,
            op,
            top,
        },
        mlib,
    )
}

/// Every candidate move the generators produce for `dp`, in a shuffled
/// order so sequences differ between cases.
fn shuffled_moves(dp: &DesignPoint, mlib: &ModuleLibrary, rng: &mut Rng) -> Vec<Move> {
    let mut cands = Vec::new();
    for objective in [Objective::Area, Objective::Power] {
        cands.extend(selection_candidates(dp, mlib, objective, false));
        cands.extend(sharing_candidates(dp, mlib, objective));
        cands.extend(splitting_candidates(dp, mlib, objective));
    }
    let mut moves: Vec<Move> = cands.into_iter().map(|(_, mv)| mv).collect();
    // Fisher–Yates with the case RNG.
    for i in (1..moves.len()).rev() {
        moves.swap(i, rng.range_usize(0, i));
    }
    moves
}

/// Speculate a random move sequence inside one journal, snapshotting the
/// design fingerprint at every mark, then force a rollback to a random
/// prefix and finally to the baseline: each unwind must restore the
/// fingerprint recorded at that mark bit-exactly.
#[test]
fn random_move_sequences_roll_back_bit_exactly() {
    let mut rng = Rng::seed_from_u64(0x0DD0_11FE);
    for case in 0..test_iters(12) {
        let (mut dp, mlib) = random_design(&mut rng);
        let moves = shuffled_moves(&dp, &mlib, &mut rng);

        // (journal mark, fingerprint) before each applied move; index 0 is
        // the untouched baseline.
        let mut log = UndoLog::new();
        let mut snaps = vec![(log.mark(), module_fingerprint(&dp.hierarchy, &dp.top.built))];
        let mut applied = 0usize;
        for mv in &moves {
            let mark = log.mark();
            // Moves invalidated by earlier edits of the sequence are fine:
            // a failed apply must leave no trace in design or journal.
            match apply_in_place(&mut dp, mv, &mlib, &mut |_, _, _| None, &mut log) {
                Ok(_) => {
                    applied += 1;
                    snaps.push((log.mark(), module_fingerprint(&dp.hierarchy, &dp.top.built)));
                }
                Err(_) => assert_eq!(
                    (log.mark(), module_fingerprint(&dp.hierarchy, &dp.top.built)),
                    (mark, snaps.last().unwrap().1),
                    "case {case}: rejected {mv} must leave design and journal untouched"
                ),
            }
            if applied >= 12 {
                break;
            }
        }
        assert!(
            applied >= 2,
            "case {case}: sequence too short to exercise rollback ({applied} applies)"
        );

        // Unwind to a random intermediate prefix, then all the way down.
        let keep = rng.range_usize(0, snaps.len() - 1);
        for &idx in &[keep, 0] {
            let (mark, fp) = snaps[idx];
            log.rollback_to(&mut dp, mark);
            assert_eq!(
                module_fingerprint(&dp.hierarchy, &dp.top.built),
                fp,
                "case {case}: rollback to mark {idx}/{} diverged",
                snaps.len() - 1
            );
        }
        assert!(
            log.is_empty(),
            "case {case}: baseline rollback must drain the journal"
        );
        assert!(
            log.bytes_peak() > 0,
            "case {case}: journal never accounted its records"
        );
    }
}

/// Full synthesis with the transactional engine is the same search with the
/// same result as the clone-per-candidate path, compared byte-for-byte.
#[test]
fn transactional_and_cloning_synthesis_are_byte_identical() {
    let mut rng = Rng::seed_from_u64(0x0BEA_70FF);
    for case in 0..test_iters(6) {
        let g = arb_behavior(&mut rng);
        let laxity_pct = rng.range_i64(120, 319) as u32;
        let objective_area = rng.next_bool(0.5);
        let mut h = Hierarchy::new();
        let id = h.add_dfg(g);
        h.set_top(id);
        assert!(h.validate().is_ok());
        let mlib = ModuleLibrary::from_simple(table1_library());

        let mut tx = SynthesisConfig::new(if objective_area {
            Objective::Area
        } else {
            Objective::Power
        });
        tx.laxity_factor = f64::from(laxity_pct) / 100.0;
        tx.max_passes = 2;
        tx.candidate_limit = 2;
        tx.eval_trace_len = 8;
        tx.report_trace_len = 16;
        tx.max_clock_candidates = 2;
        tx.resynth_depth = 0;
        tx.transactional = true;
        let mut clone = tx.clone();
        clone.transactional = false;

        let r_tx = synthesize(&h, &mlib, &tx)
            .unwrap_or_else(|e| panic!("case {case}: transactional synthesis failed: {e}"));
        let r_clone = synthesize(&h, &mlib, &clone)
            .unwrap_or_else(|e| panic!("case {case}: cloning synthesis failed: {e}"));

        let j_tx = r_tx.result_json();
        let j_clone = r_clone.result_json();
        Json::parse(&j_tx).expect("transactional result_json parses");
        assert_eq!(
            j_tx, j_clone,
            "case {case}: transactional and cloning synthesis diverged"
        );
        // The transactional run really speculated in place…
        assert!(
            r_tx.stats.moves_rolled_back > 0,
            "case {case}: transactional run journaled no rollbacks"
        );
        assert!(
            r_tx.stats.undo_bytes_peak > 0,
            "case {case}: transactional run accounted no journal bytes"
        );
        // …and the clone path never touches the journal.
        assert_eq!(
            (
                r_clone.stats.moves_rolled_back,
                r_clone.stats.undo_bytes_peak
            ),
            (0, 0),
            "case {case}: cloning run must not journal"
        );
    }
}
