//! Semantic preservation across the flow: the synthesized, scheduled, bound
//! RTL (hierarchical or flattened) computes exactly what the behavioral
//! description says, including stateful filters — verified by bit-true
//! simulation against an independent reference evaluator.

use hsyn::core::{synthesize, Objective, SynthesisConfig};
use hsyn::dfg::benchmarks::{self, Benchmark};
use hsyn::dfg::reference_outputs;
use hsyn::lib::papers::table1_library;
use hsyn::power::{dsp_default, simulate};
use hsyn::rtl::ModuleLibrary;

const W: u32 = 16;

fn check_semantics(bench: &Benchmark, hierarchical: bool) {
    let mut mlib = ModuleLibrary::from_simple(table1_library());
    mlib.equiv = bench.equiv.clone();
    let mut config = SynthesisConfig::new(Objective::Area);
    config.laxity_factor = 2.2;
    config.hierarchical = hierarchical;
    config.max_passes = 3;
    config.candidate_limit = 3;
    config.eval_trace_len = 16;
    config.max_clock_candidates = 2;
    let report = synthesize(&bench.hierarchy, &mlib, &config)
        .unwrap_or_else(|e| panic!("{}: {e}", bench.name));

    let flat = bench.hierarchy.flatten();
    let traces = dsp_default(flat.input_count(), 40, W, 99);
    let expected = reference_outputs(&flat, &traces.samples, W);
    let (_, got) = simulate(&report.design.hierarchy, &report.design.top.built, &traces);
    assert_eq!(got.len(), expected.len(), "{}", bench.name);
    for (o, (g, e)) in got.iter().zip(&expected).enumerate() {
        assert_eq!(
            g,
            e,
            "{} output {o} ({})",
            bench.name,
            if hierarchical { "hier" } else { "flat" }
        );
    }
}

#[test]
fn synthesized_lat_matches_reference() {
    check_semantics(&benchmarks::lat(), true);
    check_semantics(&benchmarks::lat(), false);
}

#[test]
fn synthesized_iir_matches_reference() {
    check_semantics(&benchmarks::iir(), true);
    check_semantics(&benchmarks::iir(), false);
}

#[test]
fn synthesized_paulin_matches_reference() {
    check_semantics(&benchmarks::paulin(), true);
}

#[test]
fn synthesized_hier_paulin_matches_reference() {
    check_semantics(&benchmarks::hier_paulin(), true);
}

#[test]
fn synthesized_avenhaus_matches_reference() {
    check_semantics(&benchmarks::avenhaus_cascade(), true);
}

#[test]
fn synthesized_fir8_matches_reference() {
    // Delayed edges feeding a hierarchical node (the tapped delay line).
    check_semantics(&benchmarks::fir8(), true);
    check_semantics(&benchmarks::fir8(), false);
}

#[test]
fn synthesized_wdf5_matches_reference() {
    // Five stateful allpass sections: the engine must never fold two of
    // them onto one module instance.
    check_semantics(&benchmarks::wdf5(), true);
}
