//! Semantic preservation across the flow: the synthesized, scheduled, bound
//! RTL (hierarchical or flattened) computes exactly what the behavioral
//! description says, including stateful filters — verified by bit-true
//! simulation against an independent reference evaluator.

use hsyn::core::{synthesize, Objective, SynthesisConfig};
use hsyn::dfg::benchmarks::{self, Benchmark};
use hsyn::dfg::{Dfg, NodeId, NodeKind};
use hsyn::lib::papers::table1_library;
use hsyn::power::{dsp_default, simulate, TraceSet};
use hsyn::rtl::ModuleLibrary;
use std::collections::HashMap;

const W: u32 = 16;

/// Reference evaluator: iterate the *flattened* DFG directly, with delay
/// state, independent of any RTL structure.
fn reference_outputs(flat: &Dfg, traces: &TraceSet) -> Vec<Vec<i64>> {
    let order = hsyn::dfg::analysis::topo_order(flat).expect("acyclic");
    let mut hist: HashMap<(NodeId, u16, u32), i64> = HashMap::new();
    let mut outs = vec![Vec::new(); flat.output_count()];
    for n in 0..traces.len() {
        let mut vals: HashMap<NodeId, i64> = HashMap::new();
        let read = |vals: &HashMap<NodeId, i64>,
                    hist: &HashMap<(NodeId, u16, u32), i64>,
                    e: &hsyn::dfg::Edge| {
            if e.delay > 0 {
                hist.get(&(e.from.node, e.from.port, e.delay))
                    .copied()
                    .unwrap_or(0)
            } else {
                vals.get(&e.from.node).copied().unwrap_or(0)
            }
        };
        for &nid in &order {
            let v = match flat.node(nid).kind() {
                NodeKind::Input { index } => traces.samples[*index][n],
                NodeKind::Const { value } => {
                    // Same truncation as the datapath.
                    let shift = 64 - W;
                    (*value << shift) >> shift
                }
                NodeKind::Op(op) => {
                    let args: Vec<i64> = (0..op.arity() as u16)
                        .map(|p| read(&vals, &hist, flat.driver(nid, p).unwrap()))
                        .collect();
                    op.eval(&args, W)
                }
                NodeKind::Output { index } => {
                    let v = read(&vals, &hist, flat.driver(nid, 0).unwrap());
                    outs[*index].push(v);
                    v
                }
                NodeKind::Hier { .. } => unreachable!("flattened"),
            };
            vals.insert(nid, v);
        }
        // Shift history.
        let max_delay = flat.edges().map(|(_, e)| e.delay).max().unwrap_or(0);
        for k in (2..=max_delay).rev() {
            let prev: Vec<((NodeId, u16, u32), i64)> = hist
                .iter()
                .filter(|((_, _, d), _)| *d == k - 1)
                .map(|(&(a, b, _), &v)| ((a, b, k), v))
                .collect();
            for (key, v) in prev {
                hist.insert(key, v);
            }
        }
        for (_, e) in flat.edges() {
            if e.delay > 0 {
                if let Some(&v) = vals.get(&e.from.node) {
                    hist.insert((e.from.node, e.from.port, 1), v);
                }
            }
        }
    }
    outs
}

fn check_semantics(bench: &Benchmark, hierarchical: bool) {
    let mut mlib = ModuleLibrary::from_simple(table1_library());
    mlib.equiv = bench.equiv.clone();
    let mut config = SynthesisConfig::new(Objective::Area);
    config.laxity_factor = 2.2;
    config.hierarchical = hierarchical;
    config.max_passes = 3;
    config.candidate_limit = 3;
    config.eval_trace_len = 16;
    config.max_clock_candidates = 2;
    let report = synthesize(&bench.hierarchy, &mlib, &config)
        .unwrap_or_else(|e| panic!("{}: {e}", bench.name));

    let flat = bench.hierarchy.flatten();
    let traces = dsp_default(flat.input_count(), 40, W, 99);
    let expected = reference_outputs(&flat, &traces);
    let (_, got) = simulate(&report.design.hierarchy, &report.design.top.built, &traces);
    assert_eq!(got.len(), expected.len(), "{}", bench.name);
    for (o, (g, e)) in got.iter().zip(&expected).enumerate() {
        assert_eq!(
            g,
            e,
            "{} output {o} ({})",
            bench.name,
            if hierarchical { "hier" } else { "flat" }
        );
    }
}

#[test]
fn synthesized_lat_matches_reference() {
    check_semantics(&benchmarks::lat(), true);
    check_semantics(&benchmarks::lat(), false);
}

#[test]
fn synthesized_iir_matches_reference() {
    check_semantics(&benchmarks::iir(), true);
    check_semantics(&benchmarks::iir(), false);
}

#[test]
fn synthesized_paulin_matches_reference() {
    check_semantics(&benchmarks::paulin(), true);
}

#[test]
fn synthesized_hier_paulin_matches_reference() {
    check_semantics(&benchmarks::hier_paulin(), true);
}

#[test]
fn synthesized_avenhaus_matches_reference() {
    check_semantics(&benchmarks::avenhaus_cascade(), true);
}

#[test]
fn synthesized_fir8_matches_reference() {
    // Delayed edges feeding a hierarchical node (the tapped delay line).
    check_semantics(&benchmarks::fir8(), true);
    check_semantics(&benchmarks::fir8(), false);
}

#[test]
fn synthesized_wdf5_matches_reference() {
    // Five stateful allpass sections: the engine must never fold two of
    // them onto one module instance.
    check_semantics(&benchmarks::wdf5(), true);
}
