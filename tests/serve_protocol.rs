//! Adversarial wire-protocol tests: truncated frames, oversized length
//! prefixes, garbage bytes, mid-frame disconnects, and malformed JSON must
//! produce structured errors (or a clean connection drop) — never a panic
//! and never a wedged accept loop. After every hostility the daemon keeps
//! serving new connections.

#[path = "serve_harness/mod.rs"]
mod harness;

use std::io::Write;
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

use harness::start_server;
use hsyn::serve::{Client, ServeOptions};
use hsyn::util::{read_frame, write_frame, Json, MAX_FRAME};

fn raw(addr: &SocketAddr) -> TcpStream {
    let s = TcpStream::connect(addr).expect("connect");
    s.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
    s
}

/// Read one frame and parse it as JSON.
fn response(s: &mut TcpStream) -> Json {
    let payload = read_frame(s, MAX_FRAME).expect("server responds with a frame");
    Json::parse(std::str::from_utf8(&payload).expect("UTF-8")).expect("JSON")
}

fn kind_of(v: &Json) -> (&str, &str) {
    (
        v.get("type").and_then(Json::as_str).unwrap_or(""),
        v.get("kind").and_then(Json::as_str).unwrap_or(""),
    )
}

/// The daemon is still alive and serving fresh connections.
fn assert_alive(addr: &SocketAddr) {
    let mut client = Client::connect(&addr.to_string()).expect("daemon still accepts");
    client.ping().expect("daemon still answers");
}

#[test]
fn hostile_frames_get_structured_errors_and_never_kill_the_daemon() {
    let (addr, handle) = start_server(ServeOptions::default());

    // 1. Oversized length prefix (u32::MAX): structured bad_frame error.
    {
        let mut s = raw(&addr);
        s.write_all(&u32::MAX.to_be_bytes()).unwrap();
        s.flush().unwrap();
        let v = response(&mut s);
        assert_eq!(kind_of(&v), ("error", "bad_frame"), "{v:?}");
    }
    assert_alive(&addr);

    // 2. Garbage bytes: an absurd length the server refuses up front.
    {
        let mut s = raw(&addr);
        s.write_all(&[0xDE, 0xAD, 0xBE, 0xEF, 0x42, 0x42]).unwrap();
        s.flush().unwrap();
        let v = response(&mut s);
        assert_eq!(kind_of(&v), ("error", "bad_frame"), "{v:?}");
    }
    assert_alive(&addr);

    // 3. Truncated header: two bytes then disconnect. Nothing to answer —
    // the daemon just drops the connection without wedging.
    {
        let mut s = raw(&addr);
        s.write_all(&[0x00, 0x00]).unwrap();
        s.flush().unwrap();
        drop(s);
    }
    assert_alive(&addr);

    // 4. Mid-frame disconnect: honest header, half the payload, hang up.
    {
        let mut s = raw(&addr);
        s.write_all(&100u32.to_be_bytes()).unwrap();
        s.write_all(&[0x7B; 37]).unwrap();
        s.flush().unwrap();
        drop(s);
    }
    assert_alive(&addr);

    // 5. A well-framed payload that is not UTF-8: structured error, and
    // the *same connection* keeps working afterwards.
    {
        let mut s = raw(&addr);
        write_frame(&mut s, &[0xFF, 0xFE, 0x00, 0x80]).unwrap();
        let v = response(&mut s);
        assert_eq!(kind_of(&v), ("error", "bad_json"), "{v:?}");
        write_frame(&mut s, br#"{"type": "ping", "seq": 1}"#).unwrap();
        let v = response(&mut s);
        assert_eq!(v.get("type").and_then(Json::as_str), Some("pong"), "{v:?}");
    }

    // 6. Well-framed garbage JSON and malformed requests: each gets its
    // own structured error on a connection that stays usable.
    {
        let mut s = raw(&addr);
        for (payload, want_kind) in [
            (&br#"{"type": "#[..], "bad_json"),
            (&br#"{"seq": 7}"#[..], "bad_request"),
            (&br#"{"type": "warp", "seq": 8}"#[..], "bad_request"),
            (&br#"{"type": "submit", "seq": 9}"#[..], "bad_request"),
            (&br#"{"type": "cancel", "seq": 10}"#[..], "bad_request"),
            (
                &br#"{"type": "submit", "seq": 11, "job": {"bench": "paulin", "warp_factor": 9}}"#
                    [..],
                "bad_request",
            ),
            (
                &br#"{"type": "submit", "job": {"bench": "paulin"}}"#[..],
                "bad_request", // submit without a seq
            ),
        ] {
            write_frame(&mut s, payload).unwrap();
            let v = response(&mut s);
            assert_eq!(
                kind_of(&v),
                ("error", want_kind),
                "payload {:?} -> {v:?}",
                String::from_utf8_lossy(payload)
            );
        }
        write_frame(&mut s, br#"{"type": "ping", "seq": 12}"#).unwrap();
        let v = response(&mut s);
        assert_eq!(v.get("type").and_then(Json::as_str), Some("pong"), "{v:?}");
    }

    // The daemon counted the hostility and is still fully operational.
    let mut client = Client::connect(&addr.to_string()).expect("connect");
    let stats = client.stats().expect("stats");
    let errors = stats
        .get("protocol_errors")
        .and_then(Json::as_f64)
        .unwrap_or(0.0);
    assert!(errors >= 9.0, "expected >= 9 protocol errors, got {errors}");
    client.shutdown().expect("shutdown");
    handle.join().expect("daemon thread");
}

#[test]
fn submit_rejections_name_the_offending_field() {
    // Hostile-but-parseable job specs: the error message must carry enough
    // context to fix the request without reading the server source.
    let (addr, handle) = start_server(ServeOptions::default());
    let mut s = raw(&addr);
    for (job, needle) in [
        (r#"{"bench": "nope"}"#, "unknown benchmark"),
        (
            r#"{"bench": "paulin", "library": "nope"}"#,
            "unknown library",
        ),
        (r#"{"bench": "paulin", "laxity": -1.0}"#, "laxity"),
        (r#"{"bench": "paulin", "text": "dfg f {}"}"#, "exactly one"),
        (r#"{}"#, "bench"),
        (r#"{"bench": "paulin", "objective": "speed"}"#, "objective"),
    ] {
        let req = format!(r#"{{"type": "submit", "seq": 1, "job": {job}}}"#);
        write_frame(&mut s, req.as_bytes()).unwrap();
        let v = response(&mut s);
        let (ty, kind) = kind_of(&v);
        let msg = v.get("message").and_then(Json::as_str).unwrap_or("");
        assert_eq!((ty, kind), ("error", "bad_request"), "{job} -> {v:?}");
        assert!(
            msg.contains(needle),
            "job {job}: message {msg:?} should mention {needle:?}"
        );
    }
    drop(s);
    let mut client = Client::connect(&addr.to_string()).expect("connect");
    client.shutdown().expect("shutdown");
    handle.join().expect("daemon thread");
}
