//! Human-readable power reports: per-module energy breakdowns over the RTL
//! tree — where the switched capacitance actually goes.

use crate::estimate::{EnergyBreakdown, PowerReport};
use crate::sim::{simulate, ModuleActivity};
use crate::traces::TraceSet;
use hsyn_dfg::Hierarchy;
use hsyn_lib::Library;
use hsyn_rtl::RtlModule;
use std::fmt::Write as _;

/// Energy attributed to one module instance (own resources only, not
/// submodules), plus its instance path.
#[derive(Clone, Debug)]
pub struct ModuleEnergy {
    /// Instance path from the top (`top/sub0/...`).
    pub path: String,
    /// Per-iteration energy of this module's own resources at the reference
    /// voltage.
    pub breakdown: EnergyBreakdown,
}

/// Per-module energy attribution for `module` on `traces` (reference
/// voltage, averaged per iteration).
pub fn per_module_energy(
    h: &Hierarchy,
    module: &RtlModule,
    lib: &Library,
    traces: &TraceSet,
) -> Vec<ModuleEnergy> {
    let (act, _) = simulate(h, module, traces);
    let mut out = Vec::new();
    walk(
        h,
        module,
        lib,
        &act,
        traces.width,
        traces.len() as f64,
        "top",
        &mut out,
    );
    out
}

#[allow(clippy::too_many_arguments)]
fn walk(
    h: &Hierarchy,
    module: &RtlModule,
    lib: &Library,
    act: &ModuleActivity,
    width: u32,
    iterations: f64,
    path: &str,
    out: &mut Vec<ModuleEnergy>,
) {
    let mut own = crate::estimate::module_own_energy(h, module, lib, act, width);
    own.fu /= iterations;
    own.reg /= iterations;
    own.mux /= iterations;
    own.wire /= iterations;
    own.controller /= iterations;
    out.push(ModuleEnergy {
        path: path.to_owned(),
        breakdown: own,
    });
    for (i, (sub, sub_act)) in module.subs().iter().zip(&act.subs).enumerate() {
        let sub_path = format!("{path}/{}#{i}", sub.name());
        walk(h, sub, lib, sub_act, width, iterations, &sub_path, out);
    }
}

/// Render a power report: the operating point, the class totals, and the
/// per-module attribution sorted by energy.
pub fn report_text(
    h: &Hierarchy,
    module: &RtlModule,
    lib: &Library,
    traces: &TraceSet,
    report: &PowerReport,
) -> String {
    let mut s = String::new();
    let b = &report.energy_breakdown;
    let _ = writeln!(
        s,
        "power {:.4} at {} V  (energy/iteration {:.1})",
        report.power, report.vdd, report.energy_per_iteration
    );
    let _ = writeln!(
        s,
        "  by class: fu {:.1}  reg {:.1}  mux {:.1}  wire {:.1}  ctrl {:.1}  clock {:.1}",
        b.fu, b.reg, b.mux, b.wire, b.controller, b.clock
    );
    let mut modules = per_module_energy(h, module, lib, traces);
    modules.sort_by(|a, b| b.breakdown.total().total_cmp(&a.breakdown.total()));
    let _ = writeln!(s, "  by module (reference voltage, own resources):");
    for m in modules.iter().take(12) {
        let _ = writeln!(
            s,
            "    {:<40} {:>9.1}  (fu {:.1}, reg {:.1}, ctrl {:.1})",
            m.path,
            m.breakdown.total(),
            m.breakdown.fu,
            m.breakdown.reg,
            m.breakdown.controller
        );
    }
    if modules.len() > 12 {
        let _ = writeln!(s, "    ... {} more modules", modules.len() - 12);
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::estimate::estimate;
    use crate::traces::dsp_default;
    use hsyn_lib::papers::{table1_library, TABLE1_CLOCK_NS};
    use hsyn_rtl::{build, BuildCtx, ModuleSpec};

    #[test]
    fn per_module_attribution_sums_to_the_total() {
        let bench = hsyn_dfg::benchmarks::iir();
        let lib = table1_library();
        let h = &bench.hierarchy;
        // Build hierarchically: biquad children + top.
        let df2 = h.dfg_by_name("biquad_df2").unwrap();
        let ctx = BuildCtx::new(&lib, TABLE1_CLOCK_NS, 5.0, None);
        let child_spec = ModuleSpec::dedicated(
            h,
            df2,
            "biquad",
            |_, op| lib.fastest_for(op).unwrap(),
            |_, _| unreachable!(),
        );
        let child = build(h, &child_spec, &ctx).unwrap();
        let top_dfg = h.top();
        let g = h.dfg(top_dfg);
        let hier_nodes: Vec<_> = g
            .nodes()
            .filter(|(_, n)| matches!(n.kind(), hsyn_dfg::NodeKind::Hier { .. }))
            .map(|(id, _)| id)
            .collect();
        let spec = ModuleSpec {
            name: "iir_top".into(),
            dfg: top_dfg,
            fu_groups: vec![],
            subs: hier_nodes
                .iter()
                .map(|&n| hsyn_rtl::SubSpec {
                    module: child.clone(),
                    nodes: vec![n],
                })
                .collect(),
            reg_policy: hsyn_rtl::RegPolicy::Dedicated,
        };
        let top = build(h, &spec, &ctx).unwrap();
        let traces = dsp_default(1, 48, 16, 9);
        let report = estimate(h, &top, &lib, &traces, 5.0, TABLE1_CLOCK_NS, 40);
        let modules = per_module_energy(h, &top, &lib, &traces);
        assert_eq!(modules.len(), 3, "top + two biquad instances");
        let sum: f64 = modules.iter().map(|m| m.breakdown.total()).sum();
        let total_no_clock = report.energy_breakdown.total() - report.energy_breakdown.clock;
        assert!(
            (sum - total_no_clock).abs() < 1e-6 * total_no_clock.max(1.0),
            "per-module sum {sum} vs class total {total_no_clock}"
        );
        let text = report_text(h, &top, &lib, &traces, &report);
        assert!(text.contains("by module"));
        assert!(text.contains("top/"));
    }
}
