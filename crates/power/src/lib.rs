//! Trace-driven switched-capacitance power estimation for scheduled, bound
//! RTL designs — the H-SYN reproduction's substitute for the paper's
//! IRSIM switch-level flow (see DESIGN.md for the substitution argument).
//!
//! * [`traces`] generates typical input stimuli (correlated random walks by
//!   default — DSP inputs are time-correlated, which is what makes resource
//!   sharing between unrelated operations expensive in power);
//! * [`simulate`] runs the bound RTL bit-true on the traces, collecting
//!   per-instance operand and register-write streams;
//! * [`estimate`] converts activity into energy/power with the library's
//!   capacitance models and `(Vdd/Vref)²` scaling.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

mod estimate;
mod report;
mod sim;
pub mod traces;

pub use estimate::{estimate, estimate_cached, estimate_sized, EnergyBreakdown, PowerReport};
pub use report::{per_module_energy, report_text, ModuleEnergy};
pub use sim::{simulate, simulate_cached, FuEvent, ModuleActivity, SimCache};
pub use traces::{dsp_default, generate, stream_activity, TraceKind, TraceSet};

/// Truncate `value` to a `width`-bit two's-complement value (sign-extended
/// into `i64`) — the datapath quantization applied to constants and
/// arithmetic results.
pub(crate) fn truncate(value: i64, width: u32) -> i64 {
    let shift = 64 - width;
    (value << shift) >> shift
}

/// Hamming distance between two samples under a width mask — the single-pair
/// popcount shared by the estimator's activity model. (Streams of deltas are
/// batched into u64 words where summation is integer-exact — see
/// [`stream_activity`] — but the estimator weights each pair by a
/// data-dependent float, so pairs stay individual there.)
#[inline]
pub(crate) fn hamming(a: i64, b: i64, mask: u64) -> u32 {
    (((a ^ b) as u64) & mask).count_ones()
}

#[cfg(test)]
mod tests {
    use super::*;
    use hsyn_dfg::{Dfg, Hierarchy, NodeId, Operation, VarRef};
    use hsyn_lib::papers::{table1_library, TABLE1_CLOCK_NS};
    use hsyn_lib::Library;
    use hsyn_rtl::{build, BuildCtx, FuGroup, ModuleSpec, RegPolicy, SubSpec};

    const W: u32 = 16;

    fn dedicated(h: &Hierarchy, dfg: hsyn_dfg::DfgId, lib: &Library, name: &str) -> ModuleSpec {
        ModuleSpec::dedicated(
            h,
            dfg,
            name,
            |_, op| lib.fastest_for(op).unwrap(),
            |_, _| unreachable!(),
        )
    }

    /// y = a*b + c*d
    fn sop() -> (Hierarchy, hsyn_dfg::DfgId, NodeId, NodeId) {
        let mut h = Hierarchy::new();
        let mut g = Dfg::new("sop");
        let a = g.add_input("a");
        let b = g.add_input("b");
        let c = g.add_input("c");
        let d = g.add_input("d");
        let m1 = g.add_op(Operation::Mult, "m1", &[a, b]);
        let m2 = g.add_op(Operation::Mult, "m2", &[c, d]);
        let s = g.add_op(Operation::Add, "s", &[m1, m2]);
        g.add_output("y", s);
        let id = h.add_dfg(g);
        h.set_top(id);
        h.validate().unwrap();
        (h, id, m1.node, m2.node)
    }

    #[test]
    #[allow(clippy::needless_range_loop)]
    fn simulation_matches_reference_semantics() {
        let (h, dfg, ..) = sop();
        let lib = table1_library();
        let ctx = BuildCtx::new(&lib, TABLE1_CLOCK_NS, 5.0, Some(12));
        let m = build(&h, &dedicated(&h, dfg, &lib, "m"), &ctx).unwrap();
        let traces = dsp_default(4, 32, W, 1);
        let (_, outs) = simulate(&h, &m, &traces);
        for n in 0..32 {
            let a = traces.samples[0][n];
            let b = traces.samples[1][n];
            let c = traces.samples[2][n];
            let d = traces.samples[3][n];
            let expect = Operation::Add.eval(
                &[
                    Operation::Mult.eval(&[a, b], W),
                    Operation::Mult.eval(&[c, d], W),
                ],
                W,
            );
            assert_eq!(outs[0][n], expect, "iteration {n}");
        }
    }

    #[test]
    #[allow(clippy::needless_range_loop)]
    fn hierarchical_simulation_matches_flattened_semantics() {
        // top = H(x, y) + x, where H(a, b) = a*b.
        let mut h = Hierarchy::new();
        let mut sub = Dfg::new("sub");
        let a = sub.add_input("a");
        let b = sub.add_input("b");
        let m = sub.add_op(Operation::Mult, "m", &[a, b]);
        sub.add_output("o", m);
        let sub_id = h.add_dfg(sub);
        let mut top = Dfg::new("top");
        let x = top.add_input("x");
        let y = top.add_input("y");
        let call = top.add_hier(sub_id, "H", &[x, y]);
        let s = top.add_op(Operation::Add, "s", &[top.hier_out(call, 0), x]);
        top.add_output("z", s);
        let top_id = h.add_dfg(top);
        h.set_top(top_id);
        h.validate().unwrap();

        let lib = table1_library();
        let ctx = BuildCtx::new(&lib, TABLE1_CLOCK_NS, 5.0, Some(12));
        let child = build(&h, &dedicated(&h, sub_id, &lib, "H_impl"), &ctx).unwrap();
        let spec = ModuleSpec {
            name: "top_impl".into(),
            dfg: top_id,
            fu_groups: vec![FuGroup {
                fu_type: lib.fu_by_name("add1").unwrap(),
                ops: vec![s.node],
            }],
            subs: vec![SubSpec {
                module: child,
                nodes: vec![call],
            }],
            reg_policy: RegPolicy::Dedicated,
        };
        let parent = build(&h, &spec, &ctx).unwrap();
        let traces = dsp_default(2, 24, W, 5);
        let (act, outs) = simulate(&h, &parent, &traces);
        for n in 0..24 {
            let x = traces.samples[0][n];
            let y = traces.samples[1][n];
            let expect = Operation::Add.eval(&[Operation::Mult.eval(&[x, y], W), x], W);
            assert_eq!(outs[0][n], expect);
        }
        // The submodule's multiplier saw one event per iteration.
        assert_eq!(act.subs[0].fu_events[0].len(), 24);
    }

    #[test]
    fn feedback_state_is_simulated() {
        // acc[n] = x[n] + acc[n-1]
        let mut h = Hierarchy::new();
        let mut g = Dfg::new("acc");
        let x = g.add_input("x");
        let n = g.add_op_detached(Operation::Add, "acc");
        g.connect(x, n, 0, 0);
        g.connect(VarRef::new(n, 0), n, 1, 1);
        g.add_output("y", VarRef::new(n, 0));
        let id = h.add_dfg(g);
        h.set_top(id);
        h.validate().unwrap();
        let lib = table1_library();
        let ctx = BuildCtx::new(&lib, TABLE1_CLOCK_NS, 5.0, Some(4));
        let m = build(&h, &dedicated(&h, id, &lib, "acc"), &ctx).unwrap();
        let traces = TraceSet {
            samples: vec![vec![1, 2, 3, 4, 5]],
            width: W,
        };
        let (_, outs) = simulate(&h, &m, &traces);
        assert_eq!(outs[0], vec![1, 3, 6, 10, 15]);
    }

    #[test]
    fn two_sample_delay_is_simulated() {
        // y[n] = x[n-2]
        let mut h = Hierarchy::new();
        let mut g = Dfg::new("d2");
        let x = g.add_input("x");
        let idn = g.add_op(Operation::Add, "id", &[x, x]); // 2x as a stand-in op
        let _ = idn;
        let mut g2 = Dfg::new("d2");
        let x2 = g2.add_input("x");
        let zero = g2.add_const("zero", 0);
        let pass = g2.add_op(Operation::Add, "pass", &[x2, zero]);
        g2.add_output_delayed("y", pass, 2);
        let id = h.add_dfg(g2);
        h.set_top(id);
        h.validate().unwrap();
        let lib = table1_library();
        let ctx = BuildCtx::new(&lib, TABLE1_CLOCK_NS, 5.0, Some(4));
        let m = build(&h, &dedicated(&h, id, &lib, "d2"), &ctx).unwrap();
        let traces = TraceSet {
            samples: vec![vec![7, 8, 9, 10]],
            width: W,
        };
        let (_, outs) = simulate(&h, &m, &traces);
        assert_eq!(outs[0], vec![0, 0, 7, 8]);
    }

    #[test]
    fn sharing_uncorrelated_ops_raises_fu_activity() {
        // Two multiplies on independent random walks: shared multiplier sees
        // an interleaved (uncorrelated) stream with higher Hamming activity
        // than either dedicated stream — ref.&nbsp;9's resource-sharing effect.
        let (h, dfg, m1, m2) = sop();
        let lib = table1_library();
        let ctx = BuildCtx::new(&lib, TABLE1_CLOCK_NS, 5.0, Some(20));
        let ded = build(&h, &dedicated(&h, dfg, &lib, "ded"), &ctx).unwrap();
        let mult1 = lib.fu_by_name("mult1").unwrap();
        let add1 = lib.fu_by_name("add1").unwrap();
        let g = h.dfg(dfg);
        let adds: Vec<NodeId> = g
            .nodes()
            .filter(|(_, n)| matches!(n.kind(), hsyn_dfg::NodeKind::Op(Operation::Add)))
            .map(|(id, _)| id)
            .collect();
        let shared_spec = ModuleSpec {
            name: "shared".into(),
            dfg,
            fu_groups: vec![
                FuGroup {
                    fu_type: mult1,
                    ops: vec![m1, m2],
                },
                FuGroup {
                    fu_type: add1,
                    ops: adds,
                },
            ],
            subs: vec![],
            reg_policy: RegPolicy::Dedicated,
        };
        let shared = build(&h, &shared_spec, &ctx).unwrap();
        let traces = dsp_default(4, 256, W, 11);
        let p_ded = estimate(&h, &ded, &lib, &traces, 5.0, TABLE1_CLOCK_NS, 20);
        let p_shared = estimate(&h, &shared, &lib, &traces, 5.0, TABLE1_CLOCK_NS, 20);
        assert!(
            p_shared.energy_breakdown.fu > p_ded.energy_breakdown.fu * 1.05,
            "shared FU energy {} should exceed dedicated {}",
            p_shared.energy_breakdown.fu,
            p_ded.energy_breakdown.fu
        );
    }

    #[test]
    fn voltage_scaling_reduces_power_quadratically() {
        let (h, dfg, ..) = sop();
        let lib = table1_library();
        let ctx = BuildCtx::new(&lib, TABLE1_CLOCK_NS, 5.0, Some(20));
        let m = build(&h, &dedicated(&h, dfg, &lib, "m"), &ctx).unwrap();
        let traces = dsp_default(4, 64, W, 3);
        let p5 = estimate(&h, &m, &lib, &traces, 5.0, TABLE1_CLOCK_NS, 20);
        let p33 = estimate(&h, &m, &lib, &traces, 3.3, TABLE1_CLOCK_NS, 20);
        let ratio = p33.energy_per_iteration / p5.energy_per_iteration;
        assert!((ratio - (3.3f64 / 5.0).powi(2)).abs() < 1e-9);
    }

    #[test]
    fn mult2_module_consumes_less_fu_energy_than_mult1() {
        // "to perform the same sequence of operations, mult2 consumes much
        // less power than mult1."
        let (h, dfg, ..) = sop();
        let lib = table1_library();
        let ctx = BuildCtx::new(&lib, TABLE1_CLOCK_NS, 5.0, Some(20));
        let fast = build(
            &h,
            &ModuleSpec::dedicated(
                &h,
                dfg,
                "fast",
                |_, op| match op {
                    Operation::Mult => lib.fu_by_name("mult1").unwrap(),
                    _ => lib.fu_by_name("add1").unwrap(),
                },
                |_, _| unreachable!(),
            ),
            &ctx,
        )
        .unwrap();
        let slow = build(
            &h,
            &ModuleSpec::dedicated(
                &h,
                dfg,
                "slow",
                |_, op| match op {
                    Operation::Mult => lib.fu_by_name("mult2").unwrap(),
                    _ => lib.fu_by_name("add1").unwrap(),
                },
                |_, _| unreachable!(),
            ),
            &ctx,
        )
        .unwrap();
        let traces = dsp_default(4, 128, W, 9);
        let pf = estimate(&h, &fast, &lib, &traces, 5.0, TABLE1_CLOCK_NS, 20);
        let ps = estimate(&h, &slow, &lib, &traces, 5.0, TABLE1_CLOCK_NS, 20);
        assert!(ps.energy_breakdown.fu < pf.energy_breakdown.fu / 2.0);
        assert!(ps.power < pf.power);
    }

    #[test]
    fn longer_sampling_period_lowers_power() {
        let (h, dfg, ..) = sop();
        let lib = table1_library();
        let ctx = BuildCtx::new(&lib, TABLE1_CLOCK_NS, 5.0, Some(40));
        let m = build(&h, &dedicated(&h, dfg, &lib, "m"), &ctx).unwrap();
        let traces = dsp_default(4, 64, W, 3);
        let p20 = estimate(&h, &m, &lib, &traces, 5.0, TABLE1_CLOCK_NS, 20);
        let p40 = estimate(&h, &m, &lib, &traces, 5.0, TABLE1_CLOCK_NS, 40);
        // Data-dependent energy is period-independent; only the standing
        // clock-network cost grows with the period.
        let data20 = p20.energy_per_iteration - p20.energy_breakdown.clock;
        let data40 = p40.energy_per_iteration - p40.energy_breakdown.clock;
        assert!((data20 - data40).abs() < 1e-12);
        assert!(p40.energy_breakdown.clock > p20.energy_breakdown.clock);
        // Stretching the deadline still lowers average power.
        assert!(p40.power < p20.power);
    }

    #[test]
    fn glitch_depth_penalizes_chained_designs() {
        // y = ((a+b)+c)+d with 3 ns adders chains fully in one cycle;
        // breaking the chain (15 ns adders, registered between) removes the
        // glitch multiplier. Compare per-op FU energy for the same adder
        // energy rating.
        let mut h = Hierarchy::new();
        let mut g = Dfg::new("chain4");
        let a = g.add_input("a");
        let b = g.add_input("b");
        let c = g.add_input("c");
        let d = g.add_input("d");
        let s1 = g.add_op(Operation::Add, "s1", &[a, b]);
        let s2 = g.add_op(Operation::Add, "s2", &[s1, c]);
        let s3 = g.add_op(Operation::Add, "s3", &[s2, d]);
        g.add_output("y", s3);
        let dfg = h.add_dfg(g);
        h.set_top(dfg);
        h.validate().unwrap();

        let mut chained_lib = hsyn_lib::Library::empty();
        chained_lib.add_fu(hsyn_lib::FuType::new(
            "addc",
            [Operation::Add],
            10.0,
            2.0,
            2.0,
        ));
        let mut reg_lib = hsyn_lib::Library::empty();
        reg_lib.add_fu(hsyn_lib::FuType::new(
            "addr",
            [Operation::Add],
            10.0,
            8.0,
            2.0,
        ));

        let traces = dsp_default(4, 64, W, 5);
        let run = |lib: &hsyn_lib::Library| {
            let ctx = BuildCtx::new(lib, TABLE1_CLOCK_NS, 5.0, Some(12));
            let spec = ModuleSpec::dedicated(
                &h,
                dfg,
                "m",
                |_, op| lib.fastest_for(op).unwrap(),
                |_, _| unreachable!(),
            );
            let m = build(&h, &spec, &ctx).unwrap();
            estimate(&h, &m, lib, &traces, 5.0, TABLE1_CLOCK_NS, 12)
        };
        let chained = run(&chained_lib);
        let registered = run(&reg_lib);
        assert!(
            chained.energy_breakdown.fu > registered.energy_breakdown.fu * 1.2,
            "glitch depth should penalize the fully chained form: {} vs {}",
            chained.energy_breakdown.fu,
            registered.energy_breakdown.fu
        );
    }

    #[test]
    fn clock_energy_scales_with_register_count() {
        let (h, dfg, ..) = sop();
        let lib = table1_library();
        let ctx = BuildCtx::new(&lib, TABLE1_CLOCK_NS, 5.0, Some(20));
        let mut spec = dedicated(&h, dfg, &lib, "m");
        let ded = build(&h, &spec, &ctx).unwrap();
        spec.reg_policy = hsyn_rtl::RegPolicy::Packed;
        let packed = build(&h, &spec, &ctx).unwrap();
        assert!(packed.regs().len() < ded.regs().len());
        let traces = dsp_default(4, 32, W, 3);
        let p_ded = estimate(&h, &ded, &lib, &traces, 5.0, TABLE1_CLOCK_NS, 20);
        let p_packed = estimate(&h, &packed, &lib, &traces, 5.0, TABLE1_CLOCK_NS, 20);
        assert!(p_packed.energy_breakdown.clock < p_ded.energy_breakdown.clock);
        let ratio = p_ded.energy_breakdown.clock / ded.regs().len() as f64;
        let ratio2 = p_packed.energy_breakdown.clock / packed.regs().len() as f64;
        assert!(
            (ratio - ratio2).abs() < 1e-9,
            "clock energy is linear in registers"
        );
    }

    #[test]
    fn estimate_is_deterministic() {
        let (h, dfg, ..) = sop();
        let lib = table1_library();
        let ctx = BuildCtx::new(&lib, TABLE1_CLOCK_NS, 5.0, Some(20));
        let m = build(&h, &dedicated(&h, dfg, &lib, "m"), &ctx).unwrap();
        let traces = dsp_default(4, 64, W, 3);
        let p1 = estimate(&h, &m, &lib, &traces, 5.0, TABLE1_CLOCK_NS, 20);
        let p2 = estimate(&h, &m, &lib, &traces, 5.0, TABLE1_CLOCK_NS, 20);
        assert_eq!(p1, p2);
    }

    /// top = H(x, y) + H(y, x), with two instances of the same child module
    /// — the shape the replay cache is built for.
    fn two_child_fixture() -> (Hierarchy, hsyn_rtl::RtlModule, Library) {
        let mut h = Hierarchy::new();
        let mut sub = Dfg::new("sub");
        let a = sub.add_input("a");
        let b = sub.add_input("b");
        let m = sub.add_op(Operation::Mult, "m", &[a, b]);
        sub.add_output("o", m);
        let sub_id = h.add_dfg(sub);
        let mut top = Dfg::new("top");
        let x = top.add_input("x");
        let y = top.add_input("y");
        let c1 = top.add_hier(sub_id, "H1", &[x, y]);
        let c2 = top.add_hier(sub_id, "H2", &[y, x]);
        let s = top.add_op(
            Operation::Add,
            "s",
            &[top.hier_out(c1, 0), top.hier_out(c2, 0)],
        );
        top.add_output("z", s);
        let top_id = h.add_dfg(top);
        h.set_top(top_id);
        h.validate().unwrap();

        let lib = table1_library();
        let ctx = BuildCtx::new(&lib, TABLE1_CLOCK_NS, 5.0, Some(12));
        let child = build(&h, &dedicated(&h, sub_id, &lib, "H_impl"), &ctx).unwrap();
        let spec = ModuleSpec {
            name: "top_impl".into(),
            dfg: top_id,
            fu_groups: vec![FuGroup {
                fu_type: lib.fu_by_name("add1").unwrap(),
                ops: vec![s.node],
            }],
            subs: vec![
                SubSpec {
                    module: child.clone(),
                    nodes: vec![c1],
                },
                SubSpec {
                    module: child,
                    nodes: vec![c2],
                },
            ],
            reg_policy: RegPolicy::Dedicated,
        };
        let parent = build(&h, &spec, &ctx).unwrap();
        (h, parent, lib)
    }

    #[test]
    fn cached_simulation_is_bit_exact_with_full() {
        let (h, parent, lib) = two_child_fixture();
        let fp = hsyn_rtl::fingerprint_tree(&h, &parent);
        let traces = dsp_default(2, 24, W, 5);
        let full = estimate(&h, &parent, &lib, &traces, 5.0, TABLE1_CLOCK_NS, 20);
        let mut cache = SimCache::new();
        // Cold: everything simulates live, recordings are stored.
        let cold = estimate_cached(
            &h,
            &parent,
            &lib,
            &traces,
            5.0,
            TABLE1_CLOCK_NS,
            20,
            &fp,
            &mut cache,
        );
        assert_eq!(full, cold);
        assert_eq!(cache.hits, 0);
        assert_eq!(cache.misses, 2);
        // Warm: both children replay; floats stay bit-identical.
        let warm = estimate_cached(
            &h,
            &parent,
            &lib,
            &traces,
            5.0,
            TABLE1_CLOCK_NS,
            20,
            &fp,
            &mut cache,
        );
        assert_eq!(full, warm);
        assert_eq!(cache.hits, 2);
        let (full_act, full_outs) = simulate(&h, &parent, &traces);
        let (warm_act, warm_outs) = simulate_cached(&h, &parent, &traces, &fp, &mut cache);
        assert_eq!(full_act, warm_act);
        assert_eq!(full_outs, warm_outs);
    }

    #[test]
    fn sized_estimate_with_uniform_widths_is_bit_exact() {
        let (h, parent, lib) = two_child_fixture();
        let traces = dsp_default(2, 24, W, 5);
        let base = estimate(&h, &parent, &lib, &traces, 5.0, TABLE1_CLOCK_NS, 20);
        let widths = hsyn_rtl::ModuleWidths::uniform(&parent, W);
        let sized = estimate_sized(
            &h,
            &parent,
            &lib,
            &traces,
            5.0,
            TABLE1_CLOCK_NS,
            20,
            &widths,
        );
        assert_eq!(base, sized);
    }

    #[test]
    fn certified_widths_reduce_power_with_narrow_coefficients() {
        // top = H(x, 40) + x, H(a, b) = a*b: the constant coefficient makes
        // the child's `b` input provably 7 bits wide, narrowing its holding
        // register and operand bus; sized power must drop strictly.
        let mut h = Hierarchy::new();
        let mut sub = Dfg::new("sub");
        let a = sub.add_input("a");
        let b = sub.add_input("b");
        let m = sub.add_op(Operation::Mult, "m", &[a, b]);
        sub.add_output("o", m);
        let sub_id = h.add_dfg(sub);
        let mut top = Dfg::new("top");
        let x = top.add_input("x");
        let k = top.add_const("k", 40);
        let call = top.add_hier(sub_id, "H", &[x, k]);
        let s = top.add_op(Operation::Add, "s", &[top.hier_out(call, 0), x]);
        top.add_output("z", s);
        let top_id = h.add_dfg(top);
        h.set_top(top_id);
        h.validate().unwrap();

        let lib = table1_library();
        let ctx = BuildCtx::new(&lib, TABLE1_CLOCK_NS, 5.0, Some(12));
        let child = build(&h, &dedicated(&h, sub_id, &lib, "H_impl"), &ctx).unwrap();
        let spec = ModuleSpec {
            name: "top_impl".into(),
            dfg: top_id,
            fu_groups: vec![FuGroup {
                fu_type: lib.fu_by_name("add1").unwrap(),
                ops: vec![s.node],
            }],
            subs: vec![SubSpec {
                module: child,
                nodes: vec![call],
            }],
            reg_policy: RegPolicy::Dedicated,
        };
        let parent = build(&h, &spec, &ctx).unwrap();
        let cert = hsyn_dataflow::analyze_hierarchy(&h, W)
            .unwrap()
            .into_certificate();
        let widths = hsyn_rtl::derive_widths(&h, &parent, &cert);
        let traces = dsp_default(1, 64, W, 5);
        let base = estimate(&h, &parent, &lib, &traces, 5.0, TABLE1_CLOCK_NS, 20);
        let sized = estimate_sized(
            &h,
            &parent,
            &lib,
            &traces,
            5.0,
            TABLE1_CLOCK_NS,
            20,
            &widths,
        );
        assert!(
            sized.power < base.power,
            "sized {} vs base {}",
            sized.power,
            base.power
        );
    }

    #[test]
    fn cached_simulation_survives_divergence_and_truncation() {
        let (h, parent, lib) = two_child_fixture();
        let fp = hsyn_rtl::fingerprint_tree(&h, &parent);
        let t1 = dsp_default(2, 24, W, 5);
        let t2 = dsp_default(2, 24, W, 6); // different data: replay diverges
        let t3 = TraceSet {
            samples: t1.samples.iter().map(|s| s[..10].to_vec()).collect(),
            width: W,
        }; // prefix of t1: replay ends mid-recording
        let mut cache = SimCache::new();
        for traces in [&t1, &t2, &t3, &t1, &t3] {
            let full = estimate(&h, &parent, &lib, traces, 5.0, TABLE1_CLOCK_NS, 20);
            let cached = estimate_cached(
                &h,
                &parent,
                &lib,
                traces,
                5.0,
                TABLE1_CLOCK_NS,
                20,
                &fp,
                &mut cache,
            );
            assert_eq!(full, cached, "trace set of {} samples", traces.len());
        }
    }
}
