//! Bit-true simulation of a scheduled, bound RTL design on input traces,
//! collecting the per-resource event streams the switched-capacitance power
//! model consumes.
//!
//! This substitutes for the paper's IRSIM switch-level simulation of the
//! extracted layout (see DESIGN.md): the estimation *principle* is the same
//! — simulate the circuit on typical inputs and record the capacitance
//! switched — but at the RTL rather than transistor level. Crucially, the
//! simulation is **binding-aware**: each functional-unit *instance* sees the
//! interleaved operand stream of exactly the operations bound to it, so
//! sharing a unit between uncorrelated operations visibly raises its
//! switching activity (the effect behind the paper's observation that
//! power optimization often avoids resource sharing).
//!
//! Two things make repeated simulation cheap inside the improvement loop:
//!
//! * **per-behavior preparation** — the topological order, storage
//!   analysis, glitch-depth map, per-FU event order, delay-history shift
//!   list, flat value-slot layout, and per-port operand sources depend only
//!   on the behavior, not on the data, so they are computed once per run
//!   instead of once per trace iteration; the inner loop then runs on a
//!   flat `Vec<i64>` value arena with no hash lookups;
//! * **submodule replay** ([`SimCache`]) — a top-level submodule whose
//!   structural fingerprint and per-call input stream match a recording
//!   from an earlier run returns its recorded outputs and activity without
//!   simulating. Both are exact: the activity streams are pure integers,
//!   fully determined by the module structure and the call stream.

use crate::traces::TraceSet;
use hsyn_dfg::{Hierarchy, MemScope, NodeId, NodeKind, Operation, VarRef};
use hsyn_rtl::{storage_analysis, FpTree, RtlModule};
use std::collections::HashMap;

/// One execution of an operation on a functional-unit instance.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct FuEvent {
    /// The operation performed.
    pub op: Operation,
    /// First operand value.
    pub a: i64,
    /// Second operand value (0 for unary operations).
    pub b: i64,
    /// Chained combinational depth of this operation: 0 when all operands
    /// come from registers, `1 + max(pred depth)` when fed combinationally
    /// in the same cycle. Drives the glitch multiplier in the estimator.
    pub depth: u32,
}

/// Event streams collected for one RTL module instance (and recursively for
/// its submodule instances).
#[derive(Clone, Debug, Default, PartialEq)]
pub struct ModuleActivity {
    /// Per functional-unit instance: executions in schedule order across
    /// all iterations.
    pub fu_events: Vec<Vec<FuEvent>>,
    /// Per register instance: written values in write order.
    pub reg_writes: Vec<Vec<i64>>,
    /// Total controller-active cycles across all iterations.
    pub busy_cycles: u64,
    /// Number of behavior executions.
    pub runs: u64,
    /// Per behavior, per memory of that behavior's DFG: `(loads, stores)`
    /// issued across all iterations. Accesses to an external (parent-shared)
    /// memory count here, at the accessing module — the accessor pays the
    /// port energy; the owner pays the bank's standing cost.
    pub mem_accesses: Vec<Vec<(u64, u64)>>,
    /// Activity of submodule instances.
    pub subs: Vec<ModuleActivity>,
}

impl ModuleActivity {
    fn for_module(m: &RtlModule) -> Self {
        ModuleActivity {
            fu_events: vec![Vec::new(); m.fus().len()],
            reg_writes: vec![Vec::new(); m.regs().len()],
            busy_cycles: 0,
            runs: 0,
            // Inner vectors are sized on first execution of each behavior
            // (the word counts live on the DFG, not the RTL module).
            mem_accesses: vec![Vec::new(); m.behaviors().len()],
            subs: m.subs().iter().map(ModuleActivity::for_module).collect(),
        }
    }
}

/// Per-instance inter-iteration state (values crossing iteration boundaries
/// through delayed edges), per behavior.
#[derive(Clone, Debug, Default)]
struct ModuleState {
    /// `history[behavior][(var, k)]` = value of `var` from `k` iterations
    /// ago (k >= 1).
    history: Vec<HashMap<(VarRef, u32), i64>>,
    /// Arena slot of each *owned* memory, per behavior, allocated on first
    /// execution. Memory contents are state, like delay lines: they persist
    /// across iterations.
    mem_slots: Vec<Option<Vec<Option<usize>>>>,
    subs: Vec<ModuleState>,
}

impl ModuleState {
    fn for_module(m: &RtlModule) -> Self {
        ModuleState {
            history: vec![HashMap::new(); m.behaviors().len()],
            mem_slots: vec![None; m.behaviors().len()],
            subs: m.subs().iter().map(ModuleState::for_module).collect(),
        }
    }
}

/// Flat storage for every memory in the design. Owned memories allocate a
/// slot on first use; a callee's external memory aliases the slot the parent
/// passed through the call's `mem_binds`, so parent and child observe one
/// shared bank — the same aliasing discipline as the RTL cosimulator.
#[derive(Default)]
struct MemArena {
    slots: Vec<Vec<i64>>,
}

impl MemArena {
    fn alloc(&mut self, words: usize) -> usize {
        self.slots.push(vec![0; words]);
        self.slots.len() - 1
    }
}

/// Where the value feeding a `(node, in-port)` pair comes from, resolved
/// once per behavior instead of through a driver lookup plus a hash-map
/// probe on every trace iteration.
#[derive(Clone, Copy, Debug)]
enum Src {
    /// Same-iteration value at a flat slot index (see [`Prep::val_start`]).
    Val(u32),
    /// Delayed value: `var` from `delay` iterations ago, read from the
    /// inter-iteration history.
    Hist(VarRef, u32),
}

/// Iteration-invariant preparation for one behavior: everything the inner
/// loop needs that does not depend on the data.
struct Prep {
    /// Topological evaluation order.
    order: Vec<NodeId>,
    /// Chained combinational depth per node (indexed by node id).
    depth: Vec<u32>,
    /// Per FU instance: `(op, node)` in event (schedule) order. The order is
    /// total — two operations sharing a unit are serialized onto distinct
    /// start ticks — so it equals the per-iteration sort it replaces.
    fu_ops: Vec<Vec<(Operation, NodeId)>>,
    /// Register writes in commit order, grouped by `(lifetime birth,
    /// register)`: `(register index, value slots sharing that key)`. Groups
    /// are almost always singletons; a multi-variable group's write order
    /// is value-dependent (ascending — the per-iteration
    /// `sort_unstable` this prep hoists keyed on `(birth, reg, value)`),
    /// so ties are resolved per iteration in [`run_behavior`].
    reg_writes: Vec<(usize, Vec<u32>)>,
    /// Variables feeding delayed edges: `(var, maximum delay, value slot)`,
    /// sorted by var.
    max_delay: Vec<(VarRef, u32, u32)>,
    /// Flat value-slot layout: node `i`'s out-port `p` lives at slot
    /// `val_start[i] + p`; `val_start[n]` is the total slot count. This is
    /// the arena that replaces the per-iteration `(node, port) → value`
    /// hash map.
    val_start: Vec<u32>,
    /// Operand sources per `(node, in-port)`: node `i`'s in-port `p` reads
    /// `srcs[src_start[i] + p]`.
    src_start: Vec<u32>,
    srcs: Vec<Src>,
}

impl Prep {
    fn build(h: &Hierarchy, module: &RtlModule, bi: usize) -> Self {
        let b = &module.behaviors()[bi];
        let g = h.dfg(b.dfg);
        // Memory-aware order: program-order pairs (store-before-load on one
        // memory) are evaluation constraints just like data edges.
        let order = hsyn_dfg::mem_topo_order(g).expect("bound dfg is acyclic");
        let st = storage_analysis(g, &b.schedule);
        let n = g.node_count();

        // Flat value-slot layout: one i64 slot per (node, out-port), laid
        // out contiguously per node. Arity comes from the node kind, raised
        // defensively by any edge referencing a higher port.
        let mut slots_per: Vec<u32> = (0..n)
            .map(|i| match g.node(NodeId::from_index(i)).kind() {
                NodeKind::Input { .. } | NodeKind::Const { .. } | NodeKind::Op(_) => 1,
                NodeKind::Load { .. } | NodeKind::Store { .. } => 1,
                NodeKind::Hier { callee } => h.out_arity(*callee) as u32,
                NodeKind::Output { .. } => 0,
            })
            .collect();
        for (_, e) in g.edges() {
            let i = e.from.node.index();
            slots_per[i] = slots_per[i].max(u32::from(e.from.port) + 1);
        }
        let mut val_start = vec![0u32; n + 1];
        for i in 0..n {
            val_start[i + 1] = val_start[i] + slots_per[i];
        }
        let slot_of = |v: VarRef| val_start[v.node.index()] + u32::from(v.port);

        // Per-(node, in-port) operand sources, resolved through the driver
        // table once instead of on every trace iteration.
        let mut src_start = vec![0u32; n + 1];
        let mut srcs: Vec<Src> = Vec::new();
        for i in 0..n {
            let nid = NodeId::from_index(i);
            let ports = match g.node(nid).kind() {
                NodeKind::Op(op) => op.arity(),
                NodeKind::Hier { callee } => h.in_arity(*callee),
                NodeKind::Output { .. } => 1,
                NodeKind::Load { .. } => 1,
                NodeKind::Store { .. } => 2,
                NodeKind::Input { .. } | NodeKind::Const { .. } => 0,
            };
            for p in 0..ports as u16 {
                let e = g.driver(nid, p).expect("validated dfg");
                srcs.push(if e.delay > 0 {
                    Src::Hist(e.from, e.delay)
                } else {
                    Src::Val(slot_of(e.from))
                });
            }
            src_start[i + 1] = srcs.len() as u32;
        }

        // Chained combinational depth per node (for glitch modeling).
        let mut depth = vec![0u32; g.node_count()];
        for &nid in &order {
            if !matches!(g.node(nid).kind(), NodeKind::Op(_)) {
                continue;
            }
            let mut d = 0u32;
            for (eid, e) in g.in_edges(nid) {
                if st.chained_edges[eid.index()] {
                    d = d.max(depth[e.from.node.index()] + 1);
                }
            }
            depth[nid.index()] = d;
        }

        // Per-FU event order: ops sorted by start tick. Distinct ticks per
        // unit (sharing serializes), so the order is independent of the
        // hash-map iteration below.
        let mut keyed: Vec<Vec<(u32, f64, Operation, NodeId)>> =
            vec![Vec::new(); module.fus().len()];
        for (&node, &fu) in &b.binding.op_to_fu {
            if let NodeKind::Op(op) = g.node(node).kind() {
                let t = b.schedule.time(node);
                keyed[fu.index()].push((t.start.cycle, t.start.ns, *op, node));
            }
        }
        let fu_ops = keyed
            .into_iter()
            .map(|mut v| {
                // Node id as the final tiebreak keeps the order total even
                // if a schedule ever produced same-tick ops on one unit.
                v.sort_by(|x, y| {
                    (x.0, x.1, x.3)
                        .partial_cmp(&(y.0, y.1, y.3))
                        .expect("finite")
                });
                v.into_iter().map(|(_, _, op, n)| (op, n)).collect()
            })
            .collect();

        // Register writes ordered by (lifetime birth, register). The pair
        // is *usually* unique, but the binder does allow same-birth
        // variables in one register; those ties were historically broken by
        // the written value (the `sort_unstable` key ended `(birth, reg,
        // value)`), which only an iteration can decide — so group them here
        // and sort the group's values in `run_behavior`.
        let mut births: Vec<(u32, usize, VarRef)> = st
            .stored_vars
            .iter()
            .filter_map(|v| {
                b.binding
                    .var_to_reg
                    .get(v)
                    .map(|r| (st.lifetimes[v].0, r.index(), *v))
            })
            .collect();
        births.sort_unstable_by_key(|&(birth, reg, _)| (birth, reg));
        let mut reg_writes: Vec<(usize, Vec<u32>)> = Vec::with_capacity(births.len());
        let mut last_key = None;
        for (birth, reg, v) in births {
            if last_key == Some((birth, reg)) {
                reg_writes
                    .last_mut()
                    .expect("key repeats")
                    .1
                    .push(slot_of(v));
            } else {
                last_key = Some((birth, reg));
                reg_writes.push((reg, vec![slot_of(v)]));
            }
        }

        let mut delays: HashMap<VarRef, u32> = HashMap::new();
        for (_, e) in g.edges() {
            if e.delay > 0 {
                let d = delays.entry(e.from).or_insert(0);
                *d = (*d).max(e.delay);
            }
        }
        let mut max_delay: Vec<(VarRef, u32, u32)> = delays
            .into_iter()
            .map(|(v, d)| (v, d, slot_of(v)))
            .collect();
        max_delay.sort_unstable_by_key(|&(v, _, _)| v);

        Prep {
            order,
            depth,
            fu_ops,
            reg_writes,
            max_delay,
            val_start,
            src_start,
            srcs,
        }
    }

    /// Flat value slot of `(node, out-port)`.
    #[inline]
    fn slot(&self, node: NodeId, port: u16) -> usize {
        self.val_start[node.index()] as usize + port as usize
    }

    /// Operand source of `(node, in-port)`.
    #[inline]
    fn src(&self, node: NodeId, port: u16) -> Src {
        self.srcs[self.src_start[node.index()] as usize + port as usize]
    }
}

/// Lazily-built [`Prep`]s mirroring the module tree.
struct PrepTree {
    behaviors: Vec<Option<Prep>>,
    subs: Vec<PrepTree>,
}

impl PrepTree {
    fn for_module(m: &RtlModule) -> Self {
        PrepTree {
            behaviors: vec![],
            subs: m.subs().iter().map(PrepTree::for_module).collect(),
        }
    }

    fn get(&mut self, h: &Hierarchy, module: &RtlModule, bi: usize) -> &Prep {
        if self.behaviors.is_empty() {
            self.behaviors = module.behaviors().iter().map(|_| None).collect();
        }
        if self.behaviors[bi].is_none() {
            self.behaviors[bi] = Some(Prep::build(h, module, bi));
        }
        self.behaviors[bi].as_ref().expect("just built")
    }
}

/// Simulate `module` executing its first behavior once per trace iteration,
/// returning the collected activity and the output streams.
///
/// # Panics
///
/// Panics if the trace input count does not match the behavior's DFG.
pub fn simulate(
    h: &Hierarchy,
    module: &RtlModule,
    traces: &TraceSet,
) -> (ModuleActivity, Vec<Vec<i64>>) {
    simulate_impl(h, module, traces, None)
}

/// [`simulate`] with top-level submodule replay through `cache`. `fp` must
/// be the fingerprint tree of `module`. Bit-exact with [`simulate`]: the
/// returned activity and outputs are identical, integer for integer.
pub fn simulate_cached(
    h: &Hierarchy,
    module: &RtlModule,
    traces: &TraceSet,
    fp: &FpTree,
    cache: &mut SimCache,
) -> (ModuleActivity, Vec<Vec<i64>>) {
    simulate_impl(h, module, traces, Some((fp, cache)))
}

fn simulate_impl(
    h: &Hierarchy,
    module: &RtlModule,
    traces: &TraceSet,
    cached: Option<(&FpTree, &mut SimCache)>,
) -> (ModuleActivity, Vec<Vec<i64>>) {
    let behavior = 0usize;
    let g = h.dfg(module.behaviors()[behavior].dfg);
    assert_eq!(
        traces.input_count(),
        g.input_count(),
        "trace width must match the top DFG's inputs"
    );
    let mut act = ModuleActivity::for_module(module);
    let mut state = ModuleState::for_module(module);
    let mut prep = PrepTree::for_module(module);
    let mut arena = MemArena::default();

    // Arm one replay driver per top-level submodule instance. A submodule
    // that touches memory anywhere in its subtree is never replayed: its
    // outputs depend on bank contents (possibly shared with the parent),
    // which the `(behavior, inputs)` call key cannot capture.
    let mut drivers: Vec<SubDriver> = Vec::new();
    let mut cache = None;
    if let Some((fp, c)) = cached {
        debug_assert_eq!(fp.subs.len(), module.subs().len(), "FpTree shape mismatch");
        if c.map.len() > SimCache::CAP {
            c.map.clear();
        }
        drivers = fp
            .subs
            .iter()
            .enumerate()
            .map(|(i, sfp)| {
                if subtree_has_mem(h, &module.subs()[i]) {
                    return SubDriver::Bypass;
                }
                match c.map.remove(&(i, sfp.fp)) {
                    Some(rec) => SubDriver::Replaying { rec, pos: 0 },
                    None => SubDriver::Live { calls: Vec::new() },
                }
            })
            .collect();
        cache = Some((fp, c));
    }

    let n_out = g.output_count();
    let mut outputs: Vec<Vec<i64>> = vec![Vec::with_capacity(traces.len()); n_out];
    let mut inputs = vec![0i64; g.input_count()];
    for n in 0..traces.len() {
        for (i, s) in traces.samples.iter().enumerate() {
            inputs[i] = s[n];
        }
        let out = run_behavior(
            h,
            module,
            behavior,
            &inputs,
            traces.width,
            &mut state,
            &mut act,
            &mut prep,
            &mut drivers,
            &mut arena,
            &[],
        );
        for (o, v) in outputs.iter_mut().zip(&out) {
            o.push(*v);
        }
    }

    // Settle the drivers: install replayed activity, refresh recordings.
    if let Some((fp, c)) = cache {
        for (i, driver) in drivers.into_iter().enumerate() {
            let key = (i, fp.subs[i].fp);
            match driver {
                SubDriver::Replaying { rec, pos } if pos == rec.calls.len() => {
                    c.hits += 1;
                    act.subs[i] = rec.act.clone();
                    c.map.insert(key, rec);
                }
                SubDriver::Replaying { rec, pos } => {
                    // The run ended mid-recording: fewer calls than recorded.
                    // The recorded activity covers too much, so replay the
                    // prefix live to rebuild the true (shorter) activity.
                    c.misses += 1;
                    let sub = &module.subs()[i];
                    let mut sub_state = ModuleState::for_module(sub);
                    let mut live_drivers = Vec::new();
                    for call in &rec.calls[..pos] {
                        run_behavior(
                            h,
                            sub,
                            call.bi,
                            &call.inputs,
                            traces.width,
                            &mut sub_state,
                            &mut act.subs[i],
                            &mut prep.subs[i],
                            &mut live_drivers,
                            &mut arena,
                            &[],
                        );
                    }
                    let calls = rec.calls[..pos].to_vec();
                    c.map.insert(
                        key,
                        SubRecording {
                            calls,
                            act: act.subs[i].clone(),
                            energy: None,
                        },
                    );
                }
                SubDriver::Live { calls } => {
                    c.misses += 1;
                    c.map.insert(
                        key,
                        SubRecording {
                            calls,
                            act: act.subs[i].clone(),
                            energy: None,
                        },
                    );
                }
                // Memory-touching subtree: always simulated live, never
                // recorded (a recording keyed on inputs would replay stale
                // bank contents).
                SubDriver::Bypass => {
                    c.misses += 1;
                }
            }
        }
    }
    (act, outputs)
}

/// Whether any behavior in `m`'s subtree declares a memory (owned or
/// imported). Such subtrees carry hidden state and are excluded from replay.
fn subtree_has_mem(h: &Hierarchy, m: &RtlModule) -> bool {
    m.behaviors().iter().any(|b| h.dfg(b.dfg).mem_count() > 0)
        || m.subs().iter().any(|s| subtree_has_mem(h, s))
}

/// One invocation of a submodule behavior, as seen from its parent.
#[derive(Clone, Debug, PartialEq)]
struct CallRecord {
    /// Behavior index executed.
    bi: usize,
    /// Input values.
    inputs: Vec<i64>,
    /// Output values produced.
    outputs: Vec<i64>,
}

/// A completed run of one top-level submodule: the call stream it served
/// and the activity it accumulated.
#[derive(Clone, Debug)]
struct SubRecording {
    calls: Vec<CallRecord>,
    act: ModuleActivity,
    /// Raw subtree energy computed from `act` by the estimator, memoized on
    /// first use (see [`estimate_cached`](crate::estimate_cached)).
    energy: Option<crate::EnergyBreakdown>,
}

/// Per-run replay state of one top-level submodule instance.
enum SubDriver {
    /// Serving calls from a recording; diverges to live on mismatch.
    Replaying { rec: SubRecording, pos: usize },
    /// Simulating live, accumulating a fresh recording.
    Live { calls: Vec<CallRecord> },
    /// Simulating live without recording: the subtree touches memory, so a
    /// call's outputs are not a function of its inputs alone.
    Bypass,
}

/// Memoized submodule simulations, keyed by `(instance index, structural
/// fingerprint)` of the design's top-level submodules.
///
/// The key includes the instance index because structurally identical
/// siblings (think eight parallel dot-product children) see different data;
/// each position keeps its own recording. A replay is *exact*: outputs and
/// activity are integers fully determined by the module structure (the
/// fingerprint) and the per-call inputs, both of which must match.
#[derive(Debug, Default)]
pub struct SimCache {
    map: HashMap<(usize, u64), SubRecording>,
    /// Submodule runs served entirely from recordings.
    pub hits: u64,
    /// Submodule runs simulated live (including divergent replays).
    pub misses: u64,
}

impl SimCache {
    /// Entry cap: the map is cleared when it grows past this (recordings
    /// from stale candidate designs would otherwise accumulate).
    const CAP: usize = 1024;

    /// An empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of recordings held.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether the cache holds no recordings.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Memoized raw subtree energy for top-level sub `index` with
    /// fingerprint `fp`, if recorded.
    pub(crate) fn energy(&self, index: usize, fp: u64) -> Option<crate::EnergyBreakdown> {
        self.map.get(&(index, fp)).and_then(|r| r.energy)
    }

    /// Record the raw subtree energy for `(index, fp)`.
    pub(crate) fn set_energy(&mut self, index: usize, fp: u64, e: crate::EnergyBreakdown) {
        if let Some(r) = self.map.get_mut(&(index, fp)) {
            r.energy = Some(e);
        }
    }
}

impl SubDriver {
    /// Serve one call, replaying when the recording matches and falling
    /// back to live simulation (after rebuilding state from the recorded
    /// prefix) when it diverges.
    #[allow(clippy::too_many_arguments)]
    fn call(
        &mut self,
        h: &Hierarchy,
        sub: &RtlModule,
        bi: usize,
        inputs: &[i64],
        width: u32,
        state: &mut ModuleState,
        act: &mut ModuleActivity,
        prep: &mut PrepTree,
        arena: &mut MemArena,
    ) -> Vec<i64> {
        if let SubDriver::Replaying { rec, pos } = self {
            let matches = rec
                .calls
                .get(*pos)
                .is_some_and(|c| c.bi == bi && c.inputs == inputs);
            if matches {
                let out = rec.calls[*pos].outputs.clone();
                *pos += 1;
                return out;
            }
            // Divergence: rebuild live state by re-running the recorded
            // prefix (state and activity were untouched while replaying),
            // then continue live from here.
            let mut live_drivers = Vec::new();
            for call in &rec.calls[..*pos] {
                run_behavior(
                    h,
                    sub,
                    call.bi,
                    &call.inputs,
                    width,
                    state,
                    act,
                    prep,
                    &mut live_drivers,
                    arena,
                    &[],
                );
            }
            let calls = rec.calls[..*pos].to_vec();
            *self = SubDriver::Live { calls };
        }
        let SubDriver::Live { calls } = self else {
            unreachable!("replaying arm returns or converts to live; bypass never calls");
        };
        let mut live_drivers = Vec::new();
        let out = run_behavior(
            h,
            sub,
            bi,
            inputs,
            width,
            state,
            act,
            prep,
            &mut live_drivers,
            arena,
            &[],
        );
        calls.push(CallRecord {
            bi,
            inputs: inputs.to_vec(),
            outputs: out.clone(),
        });
        out
    }
}

/// Execute one iteration of `module.behaviors()[bi]` on `inputs`.
/// `drivers` is non-empty only for the design's top module when replay is
/// armed; submodule recursion always runs live.
#[allow(clippy::too_many_arguments)]
fn run_behavior(
    h: &Hierarchy,
    module: &RtlModule,
    bi: usize,
    inputs: &[i64],
    width: u32,
    state: &mut ModuleState,
    act: &mut ModuleActivity,
    prep_tree: &mut PrepTree,
    drivers: &mut [SubDriver],
    arena: &mut MemArena,
    ext_slots: &[usize],
) -> Vec<i64> {
    let b = &module.behaviors()[bi];
    let g = h.dfg(b.dfg);
    // Resolve each memory of this behavior to its arena slot: owned
    // memories allocate (once — contents persist across iterations),
    // external ones alias the slots the caller passed, in declaration
    // order (the hierarchy checker validated arity and shape).
    let mem_map: Vec<usize> = {
        let slots = state.mem_slots[bi].get_or_insert_with(|| vec![None; g.mem_count()]);
        let mut ext = ext_slots.iter().copied();
        g.mems()
            .map(|(i, m)| match m.scope {
                MemScope::Owned => {
                    *slots[i.index()].get_or_insert_with(|| arena.alloc(m.words.max(1) as usize))
                }
                MemScope::External => match ext.next() {
                    Some(slot) => slot,
                    // Standalone evaluation (a child resynthesized in
                    // isolation sees no caller): an unbound import behaves
                    // as a private zero-initialized bank, matching the
                    // flattened reference evaluator.
                    None => *slots[i.index()]
                        .get_or_insert_with(|| arena.alloc(m.words.max(1) as usize)),
                },
            })
            .collect()
    };
    if act.mem_accesses.len() != module.behaviors().len() {
        act.mem_accesses
            .resize(module.behaviors().len(), Vec::new());
    }
    if act.mem_accesses[bi].len() != g.mem_count() {
        act.mem_accesses[bi] = vec![(0, 0); g.mem_count()];
    }
    // Split the borrow: the prep for this behavior vs. the sub-prep trees
    // needed by recursion.
    prep_tree.get(h, module, bi);
    let (behaviors, sub_preps) = (&mut prep_tree.behaviors, &mut prep_tree.subs);
    let prep = behaviors[bi].as_ref().expect("prepared above");
    // Flat value arena for this iteration: slot layout from the prep. Slots
    // default to 0, matching the old hash map's `unwrap_or(0)` for values
    // never produced (feedback before the first iteration).
    let mut values: Vec<i64> = vec![0; prep.val_start[g.node_count()] as usize];

    // Read a precomputed operand source — through history for delays.
    fn read_src(state_hist: &HashMap<(VarRef, u32), i64>, values: &[i64], s: Src) -> i64 {
        match s {
            Src::Val(slot) => values[slot as usize],
            Src::Hist(var, d) => state_hist.get(&(var, d)).copied().unwrap_or(0),
        }
    }

    for &nid in &prep.order {
        match g.node(nid).kind() {
            NodeKind::Input { index } => {
                values[prep.slot(nid, 0)] = inputs.get(*index).copied().unwrap_or(0);
            }
            NodeKind::Const { value } => {
                values[prep.slot(nid, 0)] = crate::truncate(*value, width);
            }
            NodeKind::Op(op) => {
                let ar = op.arity();
                let mut args = [0i64; 2];
                for (p, a) in args.iter_mut().enumerate().take(ar) {
                    *a = read_src(&state.history[bi], &values, prep.src(nid, p as u16));
                }
                values[prep.slot(nid, 0)] = op.eval(&args[..ar], width);
            }
            NodeKind::Hier { callee } => {
                let sub_id = b.binding.hier_to_sub[&nid];
                let sub = &module.subs()[sub_id.index()];
                let sub_bi = sub
                    .behaviors()
                    .iter()
                    .position(|sb| sb.dfg == *callee)
                    .expect("submodule implements the callee");
                let arity = h.in_arity(*callee);
                let mut sub_inputs = Vec::with_capacity(arity);
                for p in 0..arity as u16 {
                    sub_inputs.push(read_src(&state.history[bi], &values, prep.src(nid, p)));
                }
                let si = sub_id.index();
                // Shared banks flow to the callee as arena slots, resolved
                // through this call's positional memory binds.
                let sub_ext: Vec<usize> = g
                    .node(nid)
                    .mem_binds()
                    .iter()
                    .map(|m| mem_map[m.index()])
                    .collect();
                let out = match drivers.get_mut(si) {
                    Some(SubDriver::Bypass) | None => run_behavior(
                        h,
                        sub,
                        sub_bi,
                        &sub_inputs,
                        width,
                        &mut state.subs[si],
                        &mut act.subs[si],
                        &mut sub_preps[si],
                        &mut Vec::new(),
                        arena,
                        &sub_ext,
                    ),
                    Some(driver) => driver.call(
                        h,
                        sub,
                        sub_bi,
                        &sub_inputs,
                        width,
                        &mut state.subs[si],
                        &mut act.subs[si],
                        &mut sub_preps[si],
                        arena,
                    ),
                };
                let base = prep.slot(nid, 0);
                for (p, v) in out.into_iter().enumerate() {
                    values[base + p] = v;
                }
            }
            NodeKind::Load { mem } => {
                let addr = read_src(&state.history[bi], &values, prep.src(nid, 0));
                let bank = &arena.slots[mem_map[mem.index()]];
                let v = bank[addr.rem_euclid(bank.len() as i64) as usize];
                values[prep.slot(nid, 0)] = crate::truncate(v, width);
                act.mem_accesses[bi][mem.index()].0 += 1;
            }
            NodeKind::Store { mem } => {
                let addr = read_src(&state.history[bi], &values, prep.src(nid, 0));
                let data = read_src(&state.history[bi], &values, prep.src(nid, 1));
                let stored = crate::truncate(data, g.mem(*mem).elem_width.min(width));
                let bank = &mut arena.slots[mem_map[mem.index()]];
                let words = bank.len() as i64;
                bank[addr.rem_euclid(words) as usize] = stored;
                values[prep.slot(nid, 0)] = stored;
                act.mem_accesses[bi][mem.index()].1 += 1;
            }
            NodeKind::Output { .. } => {}
        }
    }

    // Record FU events in schedule order per instance.
    for (fu, ops) in prep.fu_ops.iter().enumerate() {
        for &(op, node) in ops {
            let a = read_src(&state.history[bi], &values, prep.src(node, 0));
            let bv = if op.arity() > 1 {
                read_src(&state.history[bi], &values, prep.src(node, 1))
            } else {
                0
            };
            act.fu_events[fu].push(FuEvent {
                op,
                a,
                b: bv,
                depth: prep.depth[node.index()],
            });
        }
    }

    // Register writes, ordered by lifetime birth; same-(birth, register)
    // groups commit in ascending value order (see `Prep::reg_writes`).
    for (reg, slots) in &prep.reg_writes {
        match slots.as_slice() {
            [s] => act.reg_writes[*reg].push(values[*s as usize]),
            tied => {
                let mut vals: Vec<i64> = tied.iter().map(|&s| values[s as usize]).collect();
                vals.sort_unstable();
                act.reg_writes[*reg].extend(vals);
            }
        }
    }

    act.busy_cycles += u64::from(b.schedule.makespan());
    act.runs += 1;

    // Collect outputs (before the history shift: a delayed output edge
    // delivers the value from `delay` iterations before this one).
    let outputs: Vec<i64> = g
        .outputs()
        .iter()
        .map(|&o| read_src(&state.history[bi], &values, prep.src(o, 0)))
        .collect();

    // Update delay history *after* the iteration: shift k-levels.
    let hist = &mut state.history[bi];
    for &(var, maxd, slot) in &prep.max_delay {
        for k in (2..=maxd).rev() {
            if let Some(&prev) = hist.get(&(var, k - 1)) {
                hist.insert((var, k), prev);
            }
        }
        hist.insert((var, 1), values[slot as usize]);
    }

    outputs
}
