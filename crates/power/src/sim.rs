//! Bit-true simulation of a scheduled, bound RTL design on input traces,
//! collecting the per-resource event streams the switched-capacitance power
//! model consumes.
//!
//! This substitutes for the paper's IRSIM switch-level simulation of the
//! extracted layout (see DESIGN.md): the estimation *principle* is the same
//! — simulate the circuit on typical inputs and record the capacitance
//! switched — but at the RTL rather than transistor level. Crucially, the
//! simulation is **binding-aware**: each functional-unit *instance* sees the
//! interleaved operand stream of exactly the operations bound to it, so
//! sharing a unit between uncorrelated operations visibly raises its
//! switching activity (the effect behind the paper's observation that
//! power optimization often avoids resource sharing).

use crate::traces::TraceSet;
use hsyn_dfg::{Hierarchy, NodeId, NodeKind, Operation, VarRef};
use hsyn_rtl::{storage_analysis, RtlModule};
use std::collections::HashMap;

/// One execution of an operation on a functional-unit instance.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct FuEvent {
    /// The operation performed.
    pub op: Operation,
    /// First operand value.
    pub a: i64,
    /// Second operand value (0 for unary operations).
    pub b: i64,
    /// Chained combinational depth of this operation: 0 when all operands
    /// come from registers, `1 + max(pred depth)` when fed combinationally
    /// in the same cycle. Drives the glitch multiplier in the estimator.
    pub depth: u32,
}

/// Event streams collected for one RTL module instance (and recursively for
/// its submodule instances).
#[derive(Clone, Debug, Default)]
pub struct ModuleActivity {
    /// Per functional-unit instance: executions in schedule order across
    /// all iterations.
    pub fu_events: Vec<Vec<FuEvent>>,
    /// Per register instance: written values in write order.
    pub reg_writes: Vec<Vec<i64>>,
    /// Total controller-active cycles across all iterations.
    pub busy_cycles: u64,
    /// Number of behavior executions.
    pub runs: u64,
    /// Activity of submodule instances.
    pub subs: Vec<ModuleActivity>,
}

impl ModuleActivity {
    fn for_module(m: &RtlModule) -> Self {
        ModuleActivity {
            fu_events: vec![Vec::new(); m.fus().len()],
            reg_writes: vec![Vec::new(); m.regs().len()],
            busy_cycles: 0,
            runs: 0,
            subs: m.subs().iter().map(ModuleActivity::for_module).collect(),
        }
    }
}

/// Per-instance inter-iteration state (values crossing iteration boundaries
/// through delayed edges), per behavior.
#[derive(Clone, Debug, Default)]
struct ModuleState {
    /// `history[behavior][(var, k)]` = value of `var` from `k` iterations
    /// ago (k >= 1).
    history: Vec<HashMap<(VarRef, u32), i64>>,
    subs: Vec<ModuleState>,
}

impl ModuleState {
    fn for_module(m: &RtlModule) -> Self {
        ModuleState {
            history: vec![HashMap::new(); m.behaviors().len()],
            subs: m.subs().iter().map(ModuleState::for_module).collect(),
        }
    }
}

/// Simulate `module` executing its first behavior once per trace iteration,
/// returning the collected activity and the output streams.
///
/// # Panics
///
/// Panics if the trace input count does not match the behavior's DFG.
pub fn simulate(
    h: &Hierarchy,
    module: &RtlModule,
    traces: &TraceSet,
) -> (ModuleActivity, Vec<Vec<i64>>) {
    let behavior = 0usize;
    let g = h.dfg(module.behaviors()[behavior].dfg);
    assert_eq!(
        traces.input_count(),
        g.input_count(),
        "trace width must match the top DFG's inputs"
    );
    let mut act = ModuleActivity::for_module(module);
    let mut state = ModuleState::for_module(module);
    let n_out = g.output_count();
    let mut outputs: Vec<Vec<i64>> = vec![Vec::with_capacity(traces.len()); n_out];
    let mut inputs = vec![0i64; g.input_count()];
    for n in 0..traces.len() {
        for (i, s) in traces.samples.iter().enumerate() {
            inputs[i] = s[n];
        }
        let out = run_behavior(
            h,
            module,
            behavior,
            &inputs,
            traces.width,
            &mut state,
            &mut act,
        );
        for (o, v) in outputs.iter_mut().zip(&out) {
            o.push(*v);
        }
    }
    (act, outputs)
}

/// Execute one iteration of `module.behaviors()[bi]` on `inputs`.
fn run_behavior(
    h: &Hierarchy,
    module: &RtlModule,
    bi: usize,
    inputs: &[i64],
    width: u32,
    state: &mut ModuleState,
    act: &mut ModuleActivity,
) -> Vec<i64> {
    let b = &module.behaviors()[bi];
    let g = h.dfg(b.dfg);
    let order = hsyn_dfg::analysis::topo_order(g).expect("bound dfg is acyclic");
    // values[(node, port)] for this iteration.
    let mut values: HashMap<(NodeId, u16), i64> = HashMap::new();

    // Resolve the value feeding (node, port) — through history for delays.
    fn resolve(
        state_hist: &HashMap<(VarRef, u32), i64>,
        values: &HashMap<(NodeId, u16), i64>,
        g: &hsyn_dfg::Dfg,
        node: NodeId,
        port: u16,
    ) -> i64 {
        let e = g.driver(node, port).expect("validated dfg");
        if e.delay > 0 {
            state_hist.get(&(e.from, e.delay)).copied().unwrap_or(0)
        } else {
            values
                .get(&(e.from.node, e.from.port))
                .copied()
                .unwrap_or(0)
        }
    }

    for &nid in &order {
        match g.node(nid).kind() {
            NodeKind::Input { index } => {
                values.insert((nid, 0), inputs.get(*index).copied().unwrap_or(0));
            }
            NodeKind::Const { value } => {
                values.insert((nid, 0), crate::truncate(*value, width));
            }
            NodeKind::Op(op) => {
                let mut args = Vec::with_capacity(op.arity());
                for p in 0..op.arity() as u16 {
                    args.push(resolve(&state.history[bi], &values, g, nid, p));
                }
                values.insert((nid, 0), op.eval(&args, width));
            }
            NodeKind::Hier { callee } => {
                let sub_id = b.binding.hier_to_sub[&nid];
                let sub = &module.subs()[sub_id.index()];
                let sub_bi = sub
                    .behaviors()
                    .iter()
                    .position(|sb| sb.dfg == *callee)
                    .expect("submodule implements the callee");
                let arity = h.in_arity(*callee);
                let mut sub_inputs = Vec::with_capacity(arity);
                for p in 0..arity as u16 {
                    sub_inputs.push(resolve(&state.history[bi], &values, g, nid, p));
                }
                let out = run_behavior(
                    h,
                    sub,
                    sub_bi,
                    &sub_inputs,
                    width,
                    &mut state.subs[sub_id.index()],
                    &mut act.subs[sub_id.index()],
                );
                for (p, v) in out.into_iter().enumerate() {
                    values.insert((nid, p as u16), v);
                }
            }
            NodeKind::Output { .. } => {}
        }
    }

    // Chained combinational depth per node (for glitch modeling).
    let st = storage_analysis(g, &b.schedule);
    let mut depth: HashMap<NodeId, u32> = HashMap::new();
    for &nid in &order {
        if !matches!(g.node(nid).kind(), NodeKind::Op(_)) {
            continue;
        }
        let mut d = 0u32;
        for (eid, e) in g.in_edges(nid) {
            if st.chained_edges[eid.index()] {
                d = d.max(depth.get(&e.from.node).copied().unwrap_or(0) + 1);
            }
        }
        depth.insert(nid, d);
    }

    // Record FU events in schedule order per instance.
    let mut per_fu: Vec<Vec<(u32, f64, FuEvent)>> = vec![Vec::new(); module.fus().len()];
    for (&node, &fu) in &b.binding.op_to_fu {
        if let NodeKind::Op(op) = g.node(node).kind() {
            let t = b.schedule.time(node);
            let a = resolve(&state.history[bi], &values, g, node, 0);
            let bv = if op.arity() > 1 {
                resolve(&state.history[bi], &values, g, node, 1)
            } else {
                0
            };
            per_fu[fu.index()].push((
                t.start.cycle,
                t.start.ns,
                FuEvent {
                    op: *op,
                    a,
                    b: bv,
                    depth: depth.get(&node).copied().unwrap_or(0),
                },
            ));
        }
    }
    for (fu, mut evs) in per_fu.into_iter().enumerate() {
        evs.sort_by(|x, y| (x.0, x.1).partial_cmp(&(y.0, y.1)).expect("finite"));
        act.fu_events[fu].extend(evs.into_iter().map(|(_, _, e)| e));
    }

    // Register writes, ordered by lifetime birth.
    let mut writes: Vec<(u32, usize, i64)> = Vec::new();
    for v in &st.stored_vars {
        if let Some(reg) = b.binding.var_to_reg.get(v) {
            let (birth, _, _) = st.lifetimes[v];
            let value = values.get(&(v.node, v.port)).copied().unwrap_or(0);
            writes.push((birth, reg.index(), value));
        }
    }
    writes.sort_unstable();
    for (_, reg, value) in writes {
        act.reg_writes[reg].push(value);
    }

    act.busy_cycles += u64::from(b.schedule.makespan());
    act.runs += 1;

    // Collect outputs (before the history shift: a delayed output edge
    // delivers the value from `delay` iterations before this one).
    let outputs: Vec<i64> = g
        .outputs()
        .iter()
        .map(|&o| {
            let e = g.driver(o, 0).expect("validated dfg");
            if e.delay > 0 {
                state.history[bi]
                    .get(&(e.from, e.delay))
                    .copied()
                    .unwrap_or(0)
            } else {
                values
                    .get(&(e.from.node, e.from.port))
                    .copied()
                    .unwrap_or(0)
            }
        })
        .collect();

    // Update delay history *after* the iteration: shift k-levels.
    let hist = &mut state.history[bi];
    let mut max_delay: HashMap<VarRef, u32> = HashMap::new();
    for (_, e) in g.edges() {
        if e.delay > 0 {
            let d = max_delay.entry(e.from).or_insert(0);
            *d = (*d).max(e.delay);
        }
    }
    for (var, maxd) in max_delay {
        for k in (2..=maxd).rev() {
            if let Some(&prev) = hist.get(&(var, k - 1)) {
                hist.insert((var, k), prev);
            }
        }
        let current = values.get(&(var.node, var.port)).copied().unwrap_or(0);
        hist.insert((var, 1), current);
    }

    outputs
}
