//! Input trace generation — the paper's "typical input traces to aid power
//! estimation". DSP inputs are time-correlated, which is what makes
//! resource sharing between unrelated operations *cost* switching energy;
//! the default generator therefore produces band-limited random walks, with
//! white noise and sine composites available for contrast.

use hsyn_util::Rng;

/// What kind of stimulus to generate.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum TraceKind {
    /// Independent uniform samples over the full range (white noise).
    WhiteUniform,
    /// A clipped random walk with the given maximum step — strongly
    /// time-correlated, the "typical" DSP input.
    RandomWalk {
        /// Maximum absolute step between consecutive samples.
        step: i64,
    },
    /// A two-tone sine composite, quantized.
    Sine {
        /// Period of the fundamental, in samples.
        period: f64,
    },
}

/// A set of input traces: one stream of `width`-bit samples per primary
/// input.
#[derive(Clone, Debug)]
pub struct TraceSet {
    /// `samples[i][n]` = value of input `i` at iteration `n`.
    pub samples: Vec<Vec<i64>>,
    /// Datapath bit width.
    pub width: u32,
}

impl TraceSet {
    /// Wrap externally produced streams (one per primary input) into a
    /// trace set — the entry point for co-simulation harnesses and fuzzers
    /// that synthesize their own stimuli instead of using [`generate`].
    ///
    /// # Panics
    ///
    /// Panics if `width` is not in `1..=32` or the streams have unequal
    /// lengths.
    pub fn new(samples: Vec<Vec<i64>>, width: u32) -> Self {
        assert!((1..=32).contains(&width), "width must be in 1..=32");
        let len = samples.first().map_or(0, Vec::len);
        assert!(
            samples.iter().all(|s| s.len() == len),
            "input streams must have equal lengths"
        );
        TraceSet { samples, width }
    }

    /// Number of iterations the traces cover.
    pub fn len(&self) -> usize {
        self.samples.first().map_or(0, Vec::len)
    }

    /// Whether the trace set is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Number of inputs covered.
    pub fn input_count(&self) -> usize {
        self.samples.len()
    }
}

/// Generate `n_samples` samples for `n_inputs` inputs at `width` bits,
/// deterministically from `seed`.
///
/// # Panics
///
/// Panics if `width` is not in `1..=32`.
pub fn generate(
    kind: TraceKind,
    n_inputs: usize,
    n_samples: usize,
    width: u32,
    seed: u64,
) -> TraceSet {
    assert!((1..=32).contains(&width), "width must be in 1..=32");
    let mut rng = Rng::seed_from_u64(seed);
    let max = (1i64 << (width - 1)) - 1;
    let min = -(1i64 << (width - 1));
    let samples = (0..n_inputs)
        .map(|_| match kind {
            TraceKind::WhiteUniform => (0..n_samples).map(|_| rng.range_i64(min, max)).collect(),
            TraceKind::RandomWalk { step } => {
                let mut v: i64 = rng.range_i64(min / 2, max / 2);
                (0..n_samples)
                    .map(|_| {
                        v = (v + rng.range_i64(-step, step)).clamp(min, max);
                        v
                    })
                    .collect()
            }
            TraceKind::Sine { period } => {
                let phase: f64 = rng.range_f64(0.0, std::f64::consts::TAU);
                let amp = max as f64 * 0.45;
                (0..n_samples)
                    .map(|n| {
                        let t = n as f64;
                        let x = amp
                            * ((std::f64::consts::TAU * t / period + phase).sin()
                                + 0.3 * (std::f64::consts::TAU * t * 3.1 / period).sin());
                        (x.round() as i64).clamp(min, max)
                    })
                    .collect()
            }
        })
        .collect();
    TraceSet { samples, width }
}

/// The default "typical DSP" stimulus: a correlated random walk stepping by
/// at most 1/16 of full scale.
pub fn dsp_default(n_inputs: usize, n_samples: usize, width: u32, seed: u64) -> TraceSet {
    let step = ((1i64 << (width - 1)) / 16).max(1);
    generate(
        TraceKind::RandomWalk { step },
        n_inputs,
        n_samples,
        width,
        seed,
    )
}

/// Average bit-level switching activity of a stream: mean Hamming distance
/// between consecutive samples divided by `width` (0 = constant, ~0.5 =
/// white noise).
pub fn stream_activity(stream: &[i64], width: u32) -> f64 {
    if stream.len() < 2 {
        return 0.0;
    }
    let mask = if width == 64 {
        u64::MAX
    } else {
        (1u64 << width) - 1
    };
    // Bit-pack ⌊64/width⌋ masked XOR deltas per u64 word and popcount once
    // per word instead of once per sample pair. Exact: popcount sums are
    // integers, and packing partitions the same bit set.
    let per_word = (64 / width).max(1);
    let mut total: u64 = 0;
    let mut word: u64 = 0;
    let mut filled: u32 = 0;
    for w in stream.windows(2) {
        word |= (((w[0] ^ w[1]) as u64) & mask) << (filled * width);
        filled += 1;
        if filled == per_word {
            total += u64::from(word.count_ones());
            word = 0;
            filled = 0;
        }
    }
    total += u64::from(word.count_ones());
    total as f64 / (width as f64 * (stream.len() - 1) as f64)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_from_seed() {
        let a = dsp_default(3, 64, 16, 42);
        let b = dsp_default(3, 64, 16, 42);
        assert_eq!(a.samples, b.samples);
        let c = dsp_default(3, 64, 16, 43);
        assert_ne!(a.samples, c.samples);
    }

    #[test]
    fn shapes_and_ranges() {
        for kind in [
            TraceKind::WhiteUniform,
            TraceKind::RandomWalk { step: 100 },
            TraceKind::Sine { period: 16.0 },
        ] {
            let t = generate(kind, 4, 50, 12, 7);
            assert_eq!(t.input_count(), 4);
            assert_eq!(t.len(), 50);
            let max = (1i64 << 11) - 1;
            for s in &t.samples {
                assert!(s.iter().all(|&v| v >= -(max + 1) && v <= max), "{kind:?}");
            }
        }
    }

    #[test]
    fn random_walk_is_more_correlated_than_white() {
        let walk = generate(TraceKind::RandomWalk { step: 64 }, 1, 512, 16, 1);
        let white = generate(TraceKind::WhiteUniform, 1, 512, 16, 1);
        let aw = stream_activity(&walk.samples[0], 16);
        let an = stream_activity(&white.samples[0], 16);
        assert!(
            aw < an * 0.8,
            "walk activity {aw} should be well below white {an}"
        );
        // White noise toggles about half the bits.
        assert!((an - 0.5).abs() < 0.05);
    }

    #[test]
    fn activity_of_constant_stream_is_zero() {
        assert_eq!(stream_activity(&[5, 5, 5, 5], 16), 0.0);
        assert_eq!(stream_activity(&[7], 16), 0.0);
    }

    #[test]
    #[should_panic(expected = "width must be")]
    fn rejects_zero_width() {
        generate(TraceKind::WhiteUniform, 1, 4, 0, 0);
    }
}
