//! Switched-capacitance power estimation over simulated activity.
//!
//! Energy per iteration is accumulated per resource class:
//!
//! * **functional units** — per instance, the Hamming activity of its
//!   operand stream (consecutive executions, across iterations) times the
//!   unit's effective capacitance;
//! * **registers** — Hamming activity of consecutive written values;
//! * **multiplexers / wiring** — steering energy proportional to delivered
//!   operand activity on sinks with more than one source;
//! * **controller** — active cycles × control bits;
//!
//! all scaled by `(Vdd / Vref)²`. Power is energy per iteration divided by
//! the sampling period. Units are arbitrary but consistent — the paper
//! reports only normalized power, which is what the experiment harness
//! computes.

use crate::sim::{simulate, simulate_cached, ModuleActivity, SimCache};
use crate::traces::TraceSet;
use hsyn_dfg::Hierarchy;
use hsyn_lib::Library;
use hsyn_rtl::{connectivity, control_bit_count, fu_scale, FpTree, ModuleWidths, RtlModule, Sink};

/// Energy per iteration, split by resource class (reference voltage).
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct EnergyBreakdown {
    /// Functional units.
    pub fu: f64,
    /// Registers.
    pub reg: f64,
    /// Multiplexers.
    pub mux: f64,
    /// Wiring.
    pub wire: f64,
    /// FSM controller.
    pub controller: f64,
    /// Memories: per-access read/write energy plus per-bank leakage.
    pub mem: f64,
    /// Clock network (per-register standing cost, whole design).
    pub clock: f64,
    /// Submodules (their totals).
    pub subs: f64,
}

impl EnergyBreakdown {
    /// Total energy per iteration.
    pub fn total(&self) -> f64 {
        self.fu
            + self.reg
            + self.mux
            + self.wire
            + self.controller
            + self.mem
            + self.clock
            + self.subs
    }

    fn add_scaled(&mut self, other: &EnergyBreakdown) {
        self.subs += other.total();
    }
}

/// A complete power estimate for a design at an operating point.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct PowerReport {
    /// Energy per iteration at the reference voltage.
    pub energy_breakdown: EnergyBreakdown,
    /// Energy per iteration at the operating voltage.
    pub energy_per_iteration: f64,
    /// Average power: energy / (sampling period × clock), in library
    /// energy-units per nanosecond.
    pub power: f64,
    /// The operating voltage used.
    pub vdd: f64,
}

/// Estimate the power of `module` on `traces` at the given operating point.
///
/// `sampling_period_cycles` is the iteration interval (the throughput
/// constraint); `clk_ns` the clock period at the operating voltage.
///
/// # Panics
///
/// Panics if traces are empty or their input count mismatches the design.
pub fn estimate(
    h: &Hierarchy,
    module: &RtlModule,
    lib: &Library,
    traces: &TraceSet,
    vdd: f64,
    clk_ns: f64,
    sampling_period_cycles: u32,
) -> PowerReport {
    assert!(
        !traces.is_empty(),
        "power estimation needs at least one sample"
    );
    let (act, _) = simulate(h, module, traces);
    let breakdown = module_energy(h, module, lib, &act, traces.width);
    finish_estimate(
        module,
        lib,
        breakdown,
        traces.len() as f64,
        vdd,
        clk_ns,
        sampling_period_cycles,
    )
}

/// [`estimate`] with submodule replay and per-subtree energy memoization
/// through `cache`. `fp` must be the fingerprint tree of `module`.
///
/// Bit-exact with [`estimate`]: the simulated activity is identical (see
/// [`simulate_cached`]), and a memoized subtree energy is only reused when
/// the recording it was computed from is the one that produced this run's
/// activity, so every float matches the full recomputation.
///
/// # Panics
///
/// Panics if traces are empty or their input count mismatches the design.
#[allow(clippy::too_many_arguments)]
pub fn estimate_cached(
    h: &Hierarchy,
    module: &RtlModule,
    lib: &Library,
    traces: &TraceSet,
    vdd: f64,
    clk_ns: f64,
    sampling_period_cycles: u32,
    fp: &FpTree,
    cache: &mut SimCache,
) -> PowerReport {
    assert!(
        !traces.is_empty(),
        "power estimation needs at least one sample"
    );
    let (act, _) = simulate_cached(h, module, traces, fp, cache);
    let mut breakdown = module_own_energy(h, module, lib, &act, traces.width);
    for (i, (sub, sub_act)) in module.subs().iter().zip(&act.subs).enumerate() {
        let sub_fp = fp.subs[i].fp;
        let sub_e = match cache.energy(i, sub_fp) {
            Some(e) => e,
            None => {
                let e = module_energy(h, sub, lib, sub_act, traces.width);
                cache.set_energy(i, sub_fp, e);
                e
            }
        };
        breakdown.add_scaled(&sub_e);
    }
    finish_estimate(
        module,
        lib,
        breakdown,
        traces.len() as f64,
        vdd,
        clk_ns,
        sampling_period_cycles,
    )
}

/// Shared tail of [`estimate`] / [`estimate_cached`]: normalization, clock
/// network, voltage scaling.
fn finish_estimate(
    module: &RtlModule,
    lib: &Library,
    breakdown: EnergyBreakdown,
    iterations: f64,
    vdd: f64,
    clk_ns: f64,
    sampling_period_cycles: u32,
) -> PowerReport {
    finish_estimate_with(
        lib,
        breakdown,
        iterations,
        vdd,
        clk_ns,
        sampling_period_cycles,
        module.total_reg_count() as f64,
    )
}

/// [`finish_estimate`] with an explicit effective register count — the
/// width-sized path passes `Σ (reg width / nominal)` so the clock network
/// scales with the bits actually clocked.
fn finish_estimate_with(
    lib: &Library,
    mut breakdown: EnergyBreakdown,
    iterations: f64,
    vdd: f64,
    clk_ns: f64,
    sampling_period_cycles: u32,
    effective_regs: f64,
) -> PowerReport {
    // Normalize raw totals to per-iteration averages once, at the top.
    breakdown.fu /= iterations;
    breakdown.reg /= iterations;
    breakdown.mux /= iterations;
    breakdown.wire /= iterations;
    breakdown.controller /= iterations;
    breakdown.mem /= iterations;
    breakdown.subs /= iterations;
    let period_ns = f64::from(sampling_period_cycles) * clk_ns;
    // Clock network: every register's clock pin toggles every cycle of the
    // sampling period, busy or not.
    breakdown.clock = effective_regs * period_ns * lib.register.clock_energy_per_ns;
    let energy_factor = lib.technology.energy_factor(vdd);
    let energy = breakdown.total() * energy_factor;
    PowerReport {
        energy_breakdown: breakdown,
        energy_per_iteration: energy,
        power: energy / period_ns,
        vdd,
    }
}

/// [`estimate`] with every resource priced at its certified width: Hamming
/// activity is masked to the width of the carrying resource (sign-extension
/// bits above a proven width cannot toggle in sized hardware), FU effective
/// capacitance scales with [`fu_scale`], the wire-length footprint uses
/// sized areas, and the clock network scales with `Σ (reg width / nominal)`.
///
/// Bit-exact with [`estimate`] when `widths` is [`ModuleWidths::uniform`].
///
/// # Panics
///
/// Panics if traces are empty or their input count mismatches the design.
#[allow(clippy::too_many_arguments)]
pub fn estimate_sized(
    h: &Hierarchy,
    module: &RtlModule,
    lib: &Library,
    traces: &TraceSet,
    vdd: f64,
    clk_ns: f64,
    sampling_period_cycles: u32,
    widths: &ModuleWidths,
) -> PowerReport {
    assert!(
        !traces.is_empty(),
        "power estimation needs at least one sample"
    );
    let (act, _) = simulate(h, module, traces);
    let breakdown = module_energy_sized(h, module, lib, &act, traces.width, widths);
    finish_estimate_with(
        lib,
        breakdown,
        traces.len() as f64,
        vdd,
        clk_ns,
        sampling_period_cycles,
        widths.reg_width_factor_total(),
    )
}

/// Raw (un-normalized) energy of one module instance across the whole
/// simulation, at the reference voltage, recursing over submodules.
fn module_energy(
    h: &Hierarchy,
    module: &RtlModule,
    lib: &Library,
    act: &ModuleActivity,
    width: u32,
) -> EnergyBreakdown {
    let mut e = module_own_energy(h, module, lib, act, width);
    for (sub, sub_act) in module.subs().iter().zip(&act.subs) {
        let sub_e = module_energy(h, sub, lib, sub_act, width);
        e.add_scaled(&sub_e);
    }
    e
}

/// Raw energy of one module's *own* resources (no submodules) across the
/// whole simulation — the attribution unit of the per-module report.
pub(crate) fn module_own_energy(
    h: &Hierarchy,
    module: &RtlModule,
    lib: &Library,
    act: &ModuleActivity,
    width: u32,
) -> EnergyBreakdown {
    let mut e = EnergyBreakdown::default();
    let conn = connectivity(h, module);
    // Average wire length grows with the module's footprint (≈ √area): a
    // sprawling datapath pays more capacitance per toggle. Uses the
    // FU+register area as the footprint proxy.
    let footprint: f64 = module
        .fus()
        .iter()
        .map(|f| lib.fu(f.fu_type).area())
        .sum::<f64>()
        + module.regs().len() as f64 * lib.register.area;
    let wire_length = (footprint / 100.0).sqrt().max(1.0);
    let w = f64::from(width);
    let mask = if width == 64 {
        u64::MAX
    } else {
        (1u64 << width) - 1
    };
    let ham = |a: i64, b: i64| -> f64 { f64::from(crate::hamming(a, b, mask)) / w };

    // Functional units: operand-transition activity × effective capacitance.
    for (i, fu) in module.fus().iter().enumerate() {
        let t = lib.fu(fu.fu_type);
        let mux_a = conn.source_count(Sink::FuPort(hsyn_rtl::FuInstId::from_index(i), 0)) > 1;
        let mux_b = conn.source_count(Sink::FuPort(hsyn_rtl::FuInstId::from_index(i), 1)) > 1;
        let events = &act.fu_events[i];
        let mut fu_energy = 0.0;
        let mut mux_energy = 0.0;
        let mut wire_energy = 0.0;
        for pair in events.windows(2) {
            let da = ham(pair[0].a, pair[1].a);
            let db = ham(pair[0].b, pair[1].b);
            // Spurious transitions multiply through chained combinational
            // stages: registered operands (depth 0) see clean activity.
            let glitch = (1.0 + lib.glitch_factor).powi(pair[1].depth.min(8) as i32);
            let activity = (da + db) / 2.0 * glitch;
            fu_energy += activity * t.energy();
            if mux_a {
                mux_energy += da * lib.mux.energy_per_access;
            }
            if mux_b {
                mux_energy += db * lib.mux.energy_per_access;
            }
            wire_energy += (da + db) * glitch * lib.wire.energy_per_toggle * wire_length;
        }
        e.fu += fu_energy;
        e.mux += mux_energy;
        e.wire += wire_energy;
    }

    // Registers: write-transition activity.
    for writes in &act.reg_writes {
        let mut reg_energy = 0.0;
        for pair in writes.windows(2) {
            reg_energy += ham(pair[0], pair[1]) * lib.register.energy_write;
        }
        e.reg += reg_energy;
        e.wire += reg_energy / lib.register.energy_write.max(1e-12)
            * lib.wire.energy_per_toggle
            * 0.5
            * wire_length;
    }

    // Controller: active cycles × control bits.
    let bits = control_bit_count(h, module, &conn) as f64;
    e.controller += act.busy_cycles as f64 * bits * lib.controller.energy_per_bit_cycle;

    // Memories: per-access dynamic energy plus standing bank leakage.
    e.mem += mem_energy(h, module, lib, act, width);
    e
}

/// Memory energy of one module instance: each access pays a read or write
/// cost scaled by the element width actually stored, and every *owned* bank
/// pays leakage for each controller-active cycle (an imported external
/// memory is the parent's hardware — the accessor pays only the access).
///
/// Width-independent of datapath sizing: the array stores `elem_width` bits
/// regardless of certified operand widths, so the sized estimator charges
/// the same figure (keeping it bit-exact at uniform widths by construction).
fn mem_energy(
    h: &Hierarchy,
    module: &RtlModule,
    lib: &Library,
    act: &ModuleActivity,
    width: u32,
) -> f64 {
    let mut e = 0.0;
    for (bi, b) in module.behaviors().iter().enumerate() {
        let g = h.dfg(b.dfg);
        if g.mem_count() == 0 {
            continue;
        }
        let empty: &[(u64, u64)] = &[];
        let counts = act.mem_accesses.get(bi).map_or(empty, |v| v.as_slice());
        for (i, m) in g.mems() {
            let (loads, stores) = counts.get(i.index()).copied().unwrap_or((0, 0));
            let bits = f64::from(m.elem_width.min(width).max(1));
            e += loads as f64 * lib.memory.energy_read_per_bit * bits
                + stores as f64 * lib.memory.energy_write_per_bit * bits;
            if matches!(m.scope, hsyn_dfg::MemScope::Owned) {
                e += f64::from(m.banks.max(1))
                    * act.busy_cycles as f64
                    * lib.memory.leakage_per_bank_cycle;
            }
        }
    }
    e
}

/// Width-aware recursion over [`module_own_energy_sized`].
fn module_energy_sized(
    h: &Hierarchy,
    module: &RtlModule,
    lib: &Library,
    act: &ModuleActivity,
    width: u32,
    widths: &ModuleWidths,
) -> EnergyBreakdown {
    let mut e = module_own_energy_sized(h, module, lib, act, width, widths);
    for ((sub, sub_act), sub_w) in module.subs().iter().zip(&act.subs).zip(&widths.subs) {
        let sub_e = module_energy_sized(h, sub, lib, sub_act, width, sub_w);
        e.add_scaled(&sub_e);
    }
    e
}

/// Mask for the low `w` bits.
fn width_mask(w: u32) -> u64 {
    if w >= 64 {
        u64::MAX
    } else {
        (1u64 << w) - 1
    }
}

/// [`module_own_energy`] with activity masked to certified widths and FU
/// capacitance scaled by [`fu_scale`]. Same event walk, same summation
/// order — with uniform widths every mask is the nominal mask and every
/// scale factor exactly `1.0`, so the result is bit-identical.
fn module_own_energy_sized(
    h: &Hierarchy,
    module: &RtlModule,
    lib: &Library,
    act: &ModuleActivity,
    width: u32,
    widths: &ModuleWidths,
) -> EnergyBreakdown {
    let mut e = EnergyBreakdown::default();
    let conn = connectivity(h, module);
    // Footprint at sized areas: a narrowed datapath is also physically
    // smaller, shortening the average net.
    let footprint: f64 = module
        .fus()
        .iter()
        .enumerate()
        .map(|(i, f)| {
            let t = lib.fu(f.fu_type);
            t.area() * fu_scale(t, widths.fu_width(i), widths.nominal)
        })
        .sum::<f64>()
        + (0..module.regs().len())
            .map(|i| f64::from(widths.reg_width(i)) / f64::from(widths.nominal))
            .sum::<f64>()
            * lib.register.area;
    let wire_length = (footprint / 100.0).sqrt().max(1.0);
    let w = f64::from(width);
    // Activity is normalized by the *nominal* width throughout: a w-bit
    // value on a narrowed bus toggles at most w of the nominal W wires.
    let ham = |a: i64, b: i64, bus: u32| -> f64 {
        f64::from(crate::hamming(a, b, width_mask(bus.min(width)))) / w
    };

    // Functional units: operand-transition activity × effective capacitance.
    for (i, fu) in module.fus().iter().enumerate() {
        let t = lib.fu(fu.fu_type);
        let id = hsyn_rtl::FuInstId::from_index(i);
        let mux_a = conn.source_count(Sink::FuPort(id, 0)) > 1;
        let mux_b = conn.source_count(Sink::FuPort(id, 1)) > 1;
        let wa = widths.sink_width(Sink::FuPort(id, 0));
        let wb = widths.sink_width(Sink::FuPort(id, 1));
        let cap = fu_scale(t, widths.fu_width(i), widths.nominal);
        let events = &act.fu_events[i];
        let mut fu_energy = 0.0;
        let mut mux_energy = 0.0;
        let mut wire_energy = 0.0;
        for pair in events.windows(2) {
            let da = ham(pair[0].a, pair[1].a, wa);
            let db = ham(pair[0].b, pair[1].b, wb);
            let glitch = (1.0 + lib.glitch_factor).powi(pair[1].depth.min(8) as i32);
            let activity = (da + db) / 2.0 * glitch;
            fu_energy += activity * t.energy() * cap;
            if mux_a {
                mux_energy += da * lib.mux.energy_per_access;
            }
            if mux_b {
                mux_energy += db * lib.mux.energy_per_access;
            }
            wire_energy += (da + db) * glitch * lib.wire.energy_per_toggle * wire_length;
        }
        e.fu += fu_energy;
        e.mux += mux_energy;
        e.wire += wire_energy;
    }

    // Registers: write-transition activity at the register's width.
    for (i, writes) in act.reg_writes.iter().enumerate() {
        let wr = widths.reg_width(i);
        let mut reg_energy = 0.0;
        for pair in writes.windows(2) {
            reg_energy += ham(pair[0], pair[1], wr) * lib.register.energy_write;
        }
        e.reg += reg_energy;
        e.wire += reg_energy / lib.register.energy_write.max(1e-12)
            * lib.wire.energy_per_toggle
            * 0.5
            * wire_length;
    }

    // Controller: active cycles × control bits (width-independent).
    let bits = control_bit_count(h, module, &conn) as f64;
    e.controller += act.busy_cycles as f64 * bits * lib.controller.energy_per_bit_cycle;

    // Memories: same figure as the unsized walk (see [`mem_energy`]).
    e.mem += mem_energy(h, module, lib, act, width);
    e
}
