//! Composable abstract domains over `width`-bit two's-complement values.
//!
//! Concrete values are `i64`s that are sign-extended images of a `width`-bit
//! datapath word, exactly as [`hsyn_dfg::Operation::eval`] produces them. An
//! [`AbstractValue`] is the reduced product of two lattices:
//!
//! * [`Interval`] — a signed value range `[lo, hi]`;
//! * [`KnownBits`] — per-bit knowledge over the low `width` bits.
//!
//! Constants are the singleton elements of either domain (the reduction in
//! [`AbstractValue::normalize`] keeps the two in sync), and every transfer
//! function mirrors the wrapping semantics of `Operation::eval`: whenever an
//! exact result could leave the representable range the interval widens to
//! ⊤ instead of wrapping — so the concretization always *over*-approximates
//! the machine arithmetic and never claims a bit pattern the datapath could
//! not produce.

use hsyn_dfg::Operation;

/// Sign-extend `value`'s low `width` bits, exactly as the datapath does.
/// Local mirror of the (crate-private) truncation in `hsyn-dfg`.
#[inline]
pub fn sign_extend(value: i64, width: u32) -> i64 {
    debug_assert!((1..=63).contains(&width));
    (value << (64 - width)) >> (64 - width)
}

/// Smallest representable value at `width` bits.
#[inline]
pub fn min_value(width: u32) -> i64 {
    -(1i64 << (width - 1))
}

/// Largest representable value at `width` bits.
#[inline]
pub fn max_value(width: u32) -> i64 {
    (1i64 << (width - 1)) - 1
}

/// The mask selecting the low `width` bits of a word.
#[inline]
pub fn width_mask(width: u32) -> u64 {
    if width >= 64 {
        u64::MAX
    } else {
        (1u64 << width) - 1
    }
}

/// Minimum signed width (including the sign bit) that represents `v`
/// exactly: `sign_extend(v, bits_needed(v)) == v`.
#[inline]
pub fn bits_needed(v: i64) -> u32 {
    if v >= 0 {
        // Need v < 2^(w-1): magnitude bits plus a sign bit.
        64 - v.leading_zeros() + 1
    } else {
        // Need v >= -2^(w-1).
        65 - v.leading_ones()
    }
    .max(1)
}

/// A signed value range `[lo, hi]` (inclusive both ends).
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub struct Interval {
    /// Lower bound, inclusive.
    pub lo: i64,
    /// Upper bound, inclusive.
    pub hi: i64,
}

impl Interval {
    /// The full representable range at `width` bits (⊤).
    pub fn full(width: u32) -> Self {
        Interval {
            lo: min_value(width),
            hi: max_value(width),
        }
    }

    /// The singleton range `{v}`.
    pub fn constant(v: i64) -> Self {
        Interval { lo: v, hi: v }
    }

    /// Smallest range containing both operands (lattice join).
    pub fn join(self, other: Interval) -> Interval {
        Interval {
            lo: self.lo.min(other.lo),
            hi: self.hi.max(other.hi),
        }
    }

    /// The single value of a singleton range, if any.
    pub fn as_constant(self) -> Option<i64> {
        (self.lo == self.hi).then_some(self.lo)
    }

    /// Whether `self` is contained in `other`.
    pub fn within(self, other: Interval) -> bool {
        other.lo <= self.lo && self.hi <= other.hi
    }

    /// Minimum signed width representing every value in the range.
    pub fn width_bits(self) -> u32 {
        bits_needed(self.lo).max(bits_needed(self.hi))
    }
}

/// Per-bit knowledge over the low `width` bits of a word: bit `i` is known
/// to be 0 when `zeros` has bit `i` set, known to be 1 when `ones` does.
/// The two masks are disjoint; bits set in neither are unknown.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub struct KnownBits {
    /// Bits known to be zero.
    pub zeros: u64,
    /// Bits known to be one.
    pub ones: u64,
}

impl KnownBits {
    /// Nothing known (⊤).
    pub fn unknown() -> Self {
        KnownBits { zeros: 0, ones: 0 }
    }

    /// All `width` bits known, equal to the low bits of `v`.
    pub fn constant(v: i64, width: u32) -> Self {
        let m = width_mask(width);
        let bits = (v as u64) & m;
        KnownBits {
            zeros: !bits & m,
            ones: bits,
        }
    }

    /// Keep only the knowledge both operands agree on (lattice join).
    pub fn join(self, other: KnownBits) -> KnownBits {
        KnownBits {
            zeros: self.zeros & other.zeros,
            ones: self.ones & other.ones,
        }
    }

    /// The mask of known bits.
    pub fn known(self) -> u64 {
        self.zeros | self.ones
    }

    /// If every one of the low `width` bits is known, the sign-extended
    /// concrete value.
    pub fn as_constant(self, width: u32) -> Option<i64> {
        let m = width_mask(width);
        (self.known() & m == m).then(|| sign_extend(self.ones as i64, width))
    }

    /// Number of low bits (from bit 0 up) that are contiguously known.
    pub fn trailing_known(self) -> u32 {
        (!self.known()).trailing_zeros().min(64)
    }
}

/// The reduced product of [`Interval`] and [`KnownBits`].
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub struct AbstractValue {
    /// Range component.
    pub range: Interval,
    /// Bit-level component.
    pub bits: KnownBits,
}

impl AbstractValue {
    /// ⊤ at `width` bits: full range, no bits known.
    pub fn top(width: u32) -> Self {
        AbstractValue {
            range: Interval::full(width),
            bits: KnownBits::unknown(),
        }
    }

    /// The abstraction of the single concrete value `v` (must already be
    /// sign-extended to `width` bits).
    pub fn constant(v: i64, width: u32) -> Self {
        debug_assert_eq!(v, sign_extend(v, width));
        AbstractValue {
            range: Interval::constant(v),
            bits: KnownBits::constant(v, width),
        }
    }

    /// Lattice join of both components.
    pub fn join(self, other: AbstractValue) -> AbstractValue {
        AbstractValue {
            range: self.range.join(other.range),
            bits: self.bits.join(other.bits),
        }
    }

    /// The concrete value, if this abstraction is a singleton.
    pub fn as_constant(self, width: u32) -> Option<i64> {
        self.range.as_constant().or(self.bits.as_constant(width))
    }

    /// Whether every value of `self` is also a value of `other`
    /// (component-wise partial order; used for monotonicity assertions).
    pub fn within(self, other: AbstractValue) -> bool {
        self.range.within(other.range)
            && (other.bits.zeros & !self.bits.zeros) == 0
            && (other.bits.ones & !self.bits.ones) == 0
    }

    /// The reduction step of the product domain: clamp the range to the
    /// representable window, and let each component sharpen the other when
    /// one of them has collapsed to a constant.
    pub fn normalize(mut self, width: u32) -> AbstractValue {
        let full = Interval::full(width);
        self.range.lo = self.range.lo.max(full.lo);
        self.range.hi = self.range.hi.min(full.hi).max(self.range.lo);
        if let Some(v) = self.range.as_constant() {
            self.bits = KnownBits::constant(v, width);
        } else if let Some(v) = self.bits.as_constant(width) {
            self.range = Interval::constant(v);
        }
        self
    }

    /// Minimum signed storage width proving every value of this abstraction
    /// round-trips through `sign_extend(·, w)`, clamped to `1..=width`.
    pub fn width_bits(self, width: u32) -> u32 {
        self.range.width_bits().clamp(1, width)
    }
}

/// Interval transfer of one operation; returns ⊤'s range whenever the exact
/// result could leave the representable window (the datapath would wrap).
fn interval_transfer(op: Operation, a: Interval, b: Interval, width: u32) -> Interval {
    let full = Interval::full(width);
    let exact = |lo: i128, hi: i128| -> Interval {
        debug_assert!(lo <= hi);
        if lo >= i128::from(full.lo) && hi <= i128::from(full.hi) {
            Interval {
                lo: lo as i64,
                hi: hi as i64,
            }
        } else {
            full
        }
    };
    match op {
        Operation::Add => exact(
            i128::from(a.lo) + i128::from(b.lo),
            i128::from(a.hi) + i128::from(b.hi),
        ),
        Operation::Sub => exact(
            i128::from(a.lo) - i128::from(b.hi),
            i128::from(a.hi) - i128::from(b.lo),
        ),
        Operation::Mult => {
            let corners = [
                i128::from(a.lo) * i128::from(b.lo),
                i128::from(a.lo) * i128::from(b.hi),
                i128::from(a.hi) * i128::from(b.lo),
                i128::from(a.hi) * i128::from(b.hi),
            ];
            exact(
                *corners.iter().min().expect("nonempty"),
                *corners.iter().max().expect("nonempty"),
            )
        }
        Operation::Lt => {
            if a.hi < b.lo {
                Interval::constant(1)
            } else if a.lo >= b.hi {
                Interval::constant(0)
            } else {
                Interval { lo: 0, hi: 1 }
            }
        }
        Operation::Shl => match b.as_constant() {
            Some(k) => {
                let k = k.rem_euclid(i64::from(width)) as u32;
                exact(i128::from(a.lo) << k, i128::from(a.hi) << k)
            }
            None => full,
        },
        Operation::Shr => match b.as_constant() {
            Some(k) => {
                let k = k.rem_euclid(i64::from(width)) as u32;
                Interval {
                    lo: a.lo >> k,
                    hi: a.hi >> k,
                }
            }
            // For any amount k, x >> k lies between x and its sign
            // saturation (0 for x ≥ 0, −1 for x < 0).
            None => Interval {
                lo: a.lo.min(if a.lo < 0 { a.lo } else { 0 }),
                hi: a.hi.max(if a.hi >= 0 { a.hi } else { -1 }),
            },
        },
        Operation::Neg => {
            if a.lo == min_value(width) {
                full
            } else {
                Interval {
                    lo: -a.hi,
                    hi: -a.lo,
                }
            }
        }
        Operation::Max => Interval {
            lo: a.lo.max(b.lo),
            hi: a.hi.max(b.hi),
        },
        Operation::Min => Interval {
            lo: a.lo.min(b.lo),
            hi: a.hi.min(b.hi),
        },
    }
}

/// Ripple-carry known-bits addition: propagate bit knowledge from the LSB
/// until the carry becomes unknown. `carry` is the known incoming carry
/// (used as 1 for subtraction's `a + !b + 1` form).
fn known_add(a: KnownBits, b: KnownBits, carry_in: u64, width: u32) -> KnownBits {
    let m = width_mask(width);
    let mut zeros = 0u64;
    let mut ones = 0u64;
    // Carry state: Some(0|1) while known, None once unknown.
    let mut carry = Some(carry_in & 1);
    for i in 0..width.min(64) {
        let bit = 1u64 << i;
        let (ka, va) = (a.known() & bit != 0, a.ones & bit != 0);
        let (kb, vb) = (b.known() & bit != 0, b.ones & bit != 0);
        match (ka, kb, carry) {
            (true, true, Some(c)) => {
                let sum = u64::from(va) + u64::from(vb) + c;
                if sum & 1 == 1 {
                    ones |= bit;
                } else {
                    zeros |= bit;
                }
                carry = Some(sum >> 1);
            }
            _ => {
                // An unknown operand bit (or carry) makes this result bit
                // and every carry above it unknown; stop conservatively.
                break;
            }
        }
    }
    KnownBits {
        zeros: zeros & m,
        ones: ones & m,
    }
}

/// Bitwise complement of the low `width` bits.
fn known_not(a: KnownBits, width: u32) -> KnownBits {
    let m = width_mask(width);
    KnownBits {
        zeros: a.ones & m,
        ones: a.zeros & m,
    }
}

/// Known-bits transfer of one operation over the low `width` bits.
fn known_transfer(op: Operation, a: KnownBits, b: KnownBits, width: u32) -> KnownBits {
    let m = width_mask(width);
    match op {
        Operation::Add => known_add(a, b, 0, width),
        Operation::Sub => known_add(a, known_not(b, width), 1, width),
        Operation::Neg => known_add(KnownBits::constant(0, width), known_not(a, width), 1, width),
        Operation::Mult => {
            // The low k bits of a product depend only on the low k bits of
            // both factors.
            let k = a.trailing_known().min(b.trailing_known()).min(width);
            let mut bits = if k == 0 {
                KnownBits::unknown()
            } else {
                let prod = (a.ones & m).wrapping_mul(b.ones & m);
                let km = width_mask(k);
                KnownBits {
                    zeros: !prod & km,
                    ones: prod & km,
                }
            };
            // Trailing zeros add under multiplication, even when the other
            // factor is entirely unknown (x * 64 has 6 low zero bits).
            let tz = (a.zeros.trailing_ones() + b.zeros.trailing_ones()).min(width);
            bits.zeros |= width_mask(tz) & m;
            bits
        }
        Operation::Lt => KnownBits {
            // The result is 0 or 1: every bit above bit 0 is known zero.
            zeros: m & !1,
            ones: 0,
        },
        Operation::Shl => match b.as_constant(width) {
            Some(k) => {
                let k = k.rem_euclid(i64::from(width)) as u32;
                KnownBits {
                    zeros: ((a.zeros << k) | width_mask(k)) & m,
                    ones: (a.ones << k) & m,
                }
            }
            None => KnownBits::unknown(),
        },
        Operation::Shr => match b.as_constant(width) {
            Some(k) => {
                let k = k.rem_euclid(i64::from(width)) as u32;
                // Arithmetic shift within the width-bit word: bits shifted
                // in at the top replicate the (width-1)-th bit when known.
                let sign = 1u64 << (width - 1);
                let high = m & !(m >> k);
                let mut zeros = (a.zeros & m) >> k;
                let mut ones = (a.ones & m) >> k;
                if a.zeros & sign != 0 {
                    zeros |= high;
                } else if a.ones & sign != 0 {
                    ones |= high;
                }
                KnownBits { zeros, ones }
            }
            None => KnownBits::unknown(),
        },
        Operation::Max | Operation::Min => a.join(b),
    }
}

/// The transfer function of `op` on abstract operands (the composable-domain
/// product of the interval and known-bits transfers, then the reduction).
///
/// # Panics
///
/// Panics if `args.len()` does not match the operation's arity.
pub fn transfer(op: Operation, args: &[AbstractValue], width: u32) -> AbstractValue {
    assert_eq!(args.len(), op.arity(), "transfer arity mismatch for {op:?}");
    let a = args[0];
    let b = if op.arity() > 1 { args[1] } else { a };
    AbstractValue {
        range: interval_transfer(op, a.range, b.range, width),
        bits: known_transfer(op, a.bits, b.bits, width),
    }
    .normalize(width)
}

#[cfg(test)]
mod tests {
    use super::*;

    const W: u32 = 16;

    fn av(lo: i64, hi: i64) -> AbstractValue {
        AbstractValue {
            range: Interval { lo, hi },
            bits: KnownBits::unknown(),
        }
        .normalize(W)
    }

    /// Exhaustively check the transfer against the concrete evaluator on a
    /// grid of values drawn from both operand abstractions.
    fn check_sound(op: Operation, a: AbstractValue, b: AbstractValue) {
        let samples = |i: Interval| -> Vec<i64> {
            let mut v = vec![i.lo, i.hi, 0, 1, -1, (i.lo + i.hi) / 2];
            v.retain(|x| i.lo <= *x && *x <= i.hi);
            v
        };
        for &x in &samples(a.range) {
            for &y in &samples(b.range) {
                let args: Vec<i64> = if op.arity() == 1 { vec![x] } else { vec![x, y] };
                let out = op.eval(&args, W);
                let t = transfer(op, &if op.arity() == 1 { vec![a] } else { vec![a, b] }, W);
                assert!(
                    t.range.lo <= out && out <= t.range.hi,
                    "{op:?}({x},{y}) = {out} outside {t:?}"
                );
                let known = t.bits.known();
                assert_eq!(
                    (out as u64) & known,
                    t.bits.ones & known,
                    "{op:?}({x},{y}) = {out} contradicts known bits {t:?}"
                );
            }
        }
    }

    #[test]
    fn transfers_are_sound_on_corner_grids() {
        let cases = [
            (av(-5, 9), av(3, 3)),
            (av(0, 200), av(-200, -1)),
            (av(-32768, 32767), av(-30, 40)),
            (av(100, 30000), av(2, 4)),
            (av(-8, 7), av(0, 1)),
        ];
        for op in Operation::ALL {
            for (a, b) in cases {
                check_sound(op, a, b);
            }
        }
    }

    #[test]
    fn add_of_constants_is_constant() {
        let t = transfer(
            Operation::Add,
            &[AbstractValue::constant(3, W), AbstractValue::constant(4, W)],
            W,
        );
        assert_eq!(t.as_constant(W), Some(7));
    }

    #[test]
    fn wrapping_add_goes_to_top_range() {
        let t = transfer(Operation::Add, &[av(30000, 32767), av(10000, 10000)], W);
        assert_eq!(t.range, Interval::full(W));
    }

    #[test]
    fn mult_keeps_known_trailing_zeros() {
        // x * 64: interval wraps (top) but the low 6 bits are known zero.
        let x = AbstractValue::top(W);
        let k = AbstractValue::constant(64, W);
        let t = transfer(Operation::Mult, &[x, k], W);
        assert_eq!(t.range, Interval::full(W));
        assert_eq!(t.bits.zeros & 0x3f, 0x3f);
    }

    #[test]
    fn lt_is_one_bit() {
        let t = transfer(Operation::Lt, &[av(-100, 100), av(-100, 100)], W);
        assert_eq!(t.range, Interval { lo: 0, hi: 1 });
        // Decided comparisons collapse to constants.
        let t = transfer(Operation::Lt, &[av(-100, -50), av(0, 10)], W);
        assert_eq!(t.as_constant(W), Some(1));
    }

    #[test]
    fn neg_of_min_value_wraps_to_top() {
        let t = transfer(Operation::Neg, &[av(min_value(W), -1)], W);
        assert_eq!(t.range, Interval::full(W));
        let t = transfer(Operation::Neg, &[av(-5, 9)], W);
        assert_eq!(t.range, Interval { lo: -9, hi: 5 });
    }

    #[test]
    fn shift_by_constant_is_precise() {
        let t = transfer(
            Operation::Shr,
            &[av(-4096, 8191), AbstractValue::constant(12, W)],
            W,
        );
        assert_eq!(t.range, Interval { lo: -1, hi: 1 });
        let t = transfer(
            Operation::Shl,
            &[av(-8, 7), AbstractValue::constant(2, W)],
            W,
        );
        assert_eq!(t.range, Interval { lo: -32, hi: 28 });
        assert_eq!(t.bits.zeros & 0b11, 0b11);
    }

    #[test]
    fn width_bits_matches_sign_extension() {
        for v in [-32768i64, -129, -128, -1, 0, 1, 127, 128, 32767] {
            let w = bits_needed(v);
            assert_eq!(sign_extend(v, w), v, "value {v} at width {w}");
            if w > 1 {
                assert_ne!(sign_extend(v, w - 1), v, "width {w} not minimal for {v}");
            }
        }
    }

    #[test]
    fn join_and_within_agree() {
        let a = av(-5, 9);
        let b = av(3, 20);
        let j = a.join(b).normalize(W);
        assert!(a.within(j) && b.within(j));
        assert_eq!(j.range, Interval { lo: -5, hi: 20 });
    }
}
