//! Worklist fixpoint solver over one DFG's CSR adjacency arena.
//!
//! Three intra-graph analyses share the same engine shape — seed every node,
//! re-evaluate, and re-queue consumers (or producers, for the backward
//! liveness pass) whenever a fact grows:
//!
//! * [`fixpoint_values`] — forward abstract interpretation of
//!   [`AbstractValue`] facts, one per output port. Feedback (delayed) edges
//!   make the dataflow graph cyclic, so facts are joined monotonically and
//!   a per-node widening counter jumps oscillating nodes to ⊤ after a few
//!   updates, bounding the iteration count.
//! * [`output_deps`] — which primary inputs each primary output transitively
//!   depends on (through any delay), as bitmasks. This is the per-module
//!   summary the liveness pass needs to see *through* hierarchical calls.
//! * [`liveness`] — backward observability: an output port is live iff its
//!   value can reach one of the graph's outputs, where a hierarchical
//!   node demands exactly the inputs its *live* callee outputs depend on.
//!
//! Delayed edges read the producer's value from an earlier iteration, which
//! starts as 0 before the history fills ([`hsyn_dfg::reference_outputs`]);
//! the value read over a delayed edge is therefore the join of the constant
//! 0 with the producer's fact.

use crate::domain::{sign_extend, transfer, AbstractValue};
use hsyn_dfg::{Dfg, DfgId, Hierarchy, NodeId, NodeKind};
use std::collections::VecDeque;

/// Updates a node fact may receive before it is widened to ⊤. Transfers are
/// monotone and facts only grow, so this bounds total solver work at
/// `O(nodes × WIDEN_LIMIT)` re-evaluations.
const WIDEN_LIMIT: u32 = 4;

/// Number of abstract output ports a node carries in the fact tables.
/// Output nodes store the value they observe at a synthetic port 0, exactly
/// like the reference evaluator records them in its value map.
pub(crate) fn out_ports(h: &Hierarchy, node: &hsyn_dfg::Node) -> usize {
    match node.kind() {
        NodeKind::Hier { callee } => h.out_arity(*callee),
        _ => 1,
    }
}

/// Forward fixpoint over `g`: per-node, per-port abstract values under the
/// given primary-input facts. `oracle` resolves hierarchical calls (callee
/// id + abstract arguments → abstract outputs) and is re-invoked whenever a
/// call site's arguments grow.
pub(crate) fn fixpoint_values(
    h: &Hierarchy,
    g: &Dfg,
    width: u32,
    inputs: &[AbstractValue],
    oracle: &mut dyn FnMut(DfgId, &[AbstractValue]) -> Vec<AbstractValue>,
) -> Vec<Vec<Option<AbstractValue>>> {
    let n = g.node_count();
    let mut facts: Vec<Vec<Option<AbstractValue>>> = g
        .nodes()
        .map(|(_, node)| vec![None; out_ports(h, node)])
        .collect();
    let mut counters = vec![0u32; n];
    let mut queued = vec![true; n];
    let mut worklist: VecDeque<NodeId> = g.node_ids().collect();
    let adj = g.adj();

    // The value delivered over `edge`, or `None` when a zero-delay operand
    // has no fact yet (the consumer is retried once the producer lands).
    let read = |facts: &[Vec<Option<AbstractValue>>], eid: hsyn_dfg::EdgeId| {
        let e = g.edge(eid);
        let produced = facts[e.from.node.index()]
            .get(usize::from(e.from.port))
            .copied()
            .flatten();
        if e.delay > 0 {
            // History starts at 0 before it fills.
            let zero = AbstractValue::constant(0, width);
            Some(produced.map_or(zero, |p| p.join(zero).normalize(width)))
        } else {
            produced
        }
    };
    let operand = |facts: &[Vec<Option<AbstractValue>>], node: NodeId, port: u16| {
        match adj.driver_edge(node, port) {
            Some(eid) => read(facts, eid),
            // Undriven port (only possible pre-validation): stay sound.
            None => Some(AbstractValue::top(width)),
        }
    };

    while let Some(nid) = worklist.pop_front() {
        queued[nid.index()] = false;
        let new: Option<Vec<AbstractValue>> = match g.node(nid).kind() {
            NodeKind::Input { index } => Some(vec![inputs
                .get(*index)
                .copied()
                .unwrap_or_else(|| AbstractValue::top(width))]),
            NodeKind::Const { value } => Some(vec![AbstractValue::constant(
                sign_extend(*value, width),
                width,
            )]),
            NodeKind::Op(op) => (0..op.arity() as u16)
                .map(|p| operand(&facts, nid, p))
                .collect::<Option<Vec<_>>>()
                .map(|args| vec![transfer(*op, &args, width)]),
            NodeKind::Hier { callee } => (0..h.in_arity(*callee) as u16)
                .map(|p| operand(&facts, nid, p))
                .collect::<Option<Vec<_>>>()
                .map(|args| {
                    let mut outs = oracle(*callee, &args);
                    outs.resize(h.out_arity(*callee), AbstractValue::top(width));
                    outs
                }),
            // Stored values are truncated to the element width, and memory
            // starts at 0, so a load can produce at most an elem-width-wide
            // value regardless of what was stored where.
            NodeKind::Load { mem } => {
                let w = g.mem(*mem).elem_width.min(width).max(1);
                Some(vec![AbstractValue::top(w).normalize(width)])
            }
            // A store's fact is the value it writes (the datapath truncates
            // it to the element width on the way in).
            NodeKind::Store { mem } => {
                let w = g.mem(*mem).elem_width.min(width).max(1);
                let fit = AbstractValue::top(w).normalize(width);
                operand(&facts, nid, 1).map(|v| vec![if v.within(fit) { v } else { fit }])
            }
            NodeKind::Output { .. } => operand(&facts, nid, 0).map(|v| vec![v]),
        };
        let Some(new) = new else {
            continue; // a zero-delay operand is pending; retried later
        };
        let mut changed = false;
        for (port, value) in new.into_iter().enumerate() {
            let slot = &mut facts[nid.index()][port];
            let joined = match *slot {
                None => value.normalize(width),
                Some(old) => old.join(value).normalize(width),
            };
            if *slot != Some(joined) {
                let widened = if counters[nid.index()] >= WIDEN_LIMIT {
                    AbstractValue::top(width)
                } else {
                    joined
                };
                *slot = Some(widened);
                changed = true;
            }
        }
        if changed {
            counters[nid.index()] += 1;
            for &eid in adj.out_edge_indices(nid) {
                let to = g.edge(hsyn_dfg::EdgeId::from_index(eid as usize)).to;
                if !queued[to.index()] {
                    queued[to.index()] = true;
                    worklist.push_back(to);
                }
            }
        }
    }
    facts
}

/// For every primary output of `g`, the bitmask of primary inputs it
/// transitively depends on — through operations, delays (state feeding
/// later iterations counts), and hierarchical calls (resolved via `deps`,
/// the same summary for each callee, indexed by `DfgId::index`).
///
/// Inputs beyond index 63 saturate to "depends on everything" (`u64::MAX`),
/// which is sound: liveness only ever uses these masks to *clear* demand.
pub(crate) fn output_deps(h: &Hierarchy, g: &Dfg, deps: &[Vec<u64>]) -> Vec<u64> {
    let n = g.node_count();
    let mut mask: Vec<Vec<u64>> = g
        .nodes()
        .map(|(_, node)| vec![0u64; out_ports(h, node)])
        .collect();
    let mut queued = vec![true; n];
    let mut worklist: VecDeque<NodeId> = g.node_ids().collect();
    let adj = g.adj();

    let read = |mask: &[Vec<u64>], node: NodeId, port: u16| -> u64 {
        match adj.driver_edge(node, port) {
            Some(eid) => {
                let e = g.edge(eid);
                mask[e.from.node.index()]
                    .get(usize::from(e.from.port))
                    .copied()
                    .unwrap_or(0)
            }
            None => 0,
        }
    };

    while let Some(nid) = worklist.pop_front() {
        queued[nid.index()] = false;
        let new: Vec<u64> = match g.node(nid).kind() {
            NodeKind::Input { index } => {
                vec![if *index < 64 { 1u64 << index } else { u64::MAX }]
            }
            NodeKind::Const { .. } => vec![0],
            NodeKind::Op(op) => {
                vec![(0..op.arity() as u16).fold(0, |m, p| m | read(&mask, nid, p))]
            }
            NodeKind::Hier { callee } => {
                let args: Vec<u64> = (0..h.in_arity(*callee) as u16)
                    .map(|p| read(&mask, nid, p))
                    .collect();
                deps[callee.index()]
                    .iter()
                    .map(|&out_mask| {
                        let mut m = 0;
                        for (i, &a) in args.iter().enumerate() {
                            let bit = if i < 64 { 1u64 << i } else { u64::MAX };
                            if out_mask & bit != 0 {
                                m |= a;
                            }
                        }
                        m
                    })
                    .collect()
            }
            // A loaded value can carry anything any store (in any iteration,
            // possibly a shared-bank caller) put there: saturate. Liveness
            // only uses these masks to clear demand, so ⊤ is sound.
            NodeKind::Load { .. } => vec![u64::MAX],
            NodeKind::Store { .. } => vec![read(&mask, nid, 0) | read(&mask, nid, 1)],
            NodeKind::Output { .. } => vec![read(&mask, nid, 0)],
        };
        let mut changed = false;
        for (port, m) in new.into_iter().enumerate() {
            let slot = &mut mask[nid.index()][port];
            if *slot | m != *slot {
                *slot |= m;
                changed = true;
            }
        }
        if changed {
            for &eid in adj.out_edge_indices(nid) {
                let to = g.edge(hsyn_dfg::EdgeId::from_index(eid as usize)).to;
                if !queued[to.index()] {
                    queued[to.index()] = true;
                    worklist.push_back(to);
                }
            }
        }
    }
    g.outputs()
        .iter()
        .map(|&o| mask[o.index()].first().copied().unwrap_or(0))
        .collect()
}

/// Backward observability over `g`: `live[node][port]` is true iff that
/// variable can influence one of the graph's own outputs, possibly through
/// delays and hierarchical calls (`deps` as in [`output_deps`]).
pub(crate) fn liveness(h: &Hierarchy, g: &Dfg, deps: &[Vec<u64>]) -> Vec<Vec<bool>> {
    let n = g.node_count();
    let mut live: Vec<Vec<bool>> = g
        .nodes()
        .map(|(_, node)| vec![false; out_ports(h, node)])
        .collect();
    let adj = g.adj();
    let mut queued = vec![false; n];
    let mut worklist: VecDeque<NodeId> = VecDeque::new();
    for nid in g.node_ids() {
        // Stores and memory-bound calls are observable side effects: they
        // demand their operands whether or not any data edge leads to an
        // output, exactly like dead-code elimination roots them.
        let node = g.node(nid);
        let effectful = matches!(
            node.kind(),
            NodeKind::Output { .. } | NodeKind::Store { .. }
        ) || (matches!(node.kind(), NodeKind::Hier { .. })
            && !node.mem_binds().is_empty());
        if effectful {
            queued[nid.index()] = true;
            worklist.push_back(nid);
        }
    }

    while let Some(nid) = worklist.pop_front() {
        queued[nid.index()] = false;
        // Which of this node's input ports are demanded, given its own
        // out-port liveness?
        let demanded: Vec<u16> = match g.node(nid).kind() {
            NodeKind::Output { .. } => vec![0],
            NodeKind::Op(op) => {
                if live[nid.index()][0] {
                    (0..op.arity() as u16).collect()
                } else {
                    vec![]
                }
            }
            // A memory-bound call's internal accesses may consume any
            // argument (addresses, data), so every input stays demanded.
            NodeKind::Hier { callee } if !g.node(nid).mem_binds().is_empty() => {
                (0..h.in_arity(*callee) as u16).collect()
            }
            NodeKind::Hier { callee } => {
                let callee_deps = &deps[callee.index()];
                (0..h.in_arity(*callee) as u16)
                    .filter(|&p| {
                        let bit = if usize::from(p) < 64 {
                            1u64 << p
                        } else {
                            u64::MAX
                        };
                        live[nid.index()]
                            .iter()
                            .enumerate()
                            .any(|(o, &l)| l && callee_deps.get(o).copied().unwrap_or(0) & bit != 0)
                    })
                    .collect()
            }
            // A store always demands its address and data; a load's address
            // is demanded only while its value is observable.
            NodeKind::Store { .. } => vec![0, 1],
            NodeKind::Load { .. } => {
                if live[nid.index()][0] {
                    vec![0]
                } else {
                    vec![]
                }
            }
            NodeKind::Input { .. } | NodeKind::Const { .. } => vec![],
        };
        for p in demanded {
            if let Some(eid) = adj.driver_edge(nid, p) {
                let from = g.edge(eid).from;
                let slot = &mut live[from.node.index()][usize::from(from.port)];
                if !*slot {
                    *slot = true;
                    if !queued[from.node.index()] {
                        queued[from.node.index()] = true;
                        worklist.push_back(from.node);
                    }
                }
            }
        }
    }
    live
}

/// Per-node, per-port analysis results for one DFG: the joined-context
/// abstract values and the local observability bits.
#[derive(Clone, Debug)]
pub struct DfgFacts {
    pub(crate) width: u32,
    pub(crate) values: Vec<Vec<Option<AbstractValue>>>,
    pub(crate) live: Vec<Vec<bool>>,
}

impl DfgFacts {
    /// The abstract value of output port `port` of `node`, if the solver
    /// reached it (ports of unreachable nodes stay unconstrained).
    pub fn value(&self, node: NodeId, port: u16) -> Option<AbstractValue> {
        self.values
            .get(node.index())
            .and_then(|ports| ports.get(usize::from(port)))
            .copied()
            .flatten()
    }

    /// Whether `(node, port)` can influence one of the graph's outputs.
    pub fn live(&self, node: NodeId, port: u16) -> bool {
        self.live
            .get(node.index())
            .and_then(|ports| ports.get(usize::from(port)))
            .copied()
            .unwrap_or(true)
    }

    /// Number of abstract output ports tracked for `node`.
    pub fn port_count(&self, node: NodeId) -> usize {
        self.values.get(node.index()).map_or(0, Vec::len)
    }

    /// The nominal datapath width the analysis ran at.
    pub fn width(&self) -> u32 {
        self.width
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hsyn_dfg::{Operation, VarRef};

    fn top_inputs(n: usize, width: u32) -> Vec<AbstractValue> {
        vec![AbstractValue::top(width); n]
    }

    #[test]
    fn straightline_constants_fold() {
        let mut g = Dfg::new("k");
        let a = g.add_const("a", 3);
        let b = g.add_const("b", 4);
        let s = g.add_op(Operation::Add, "s", &[a, b]);
        let m = g.add_op(Operation::Mult, "m", &[s, s]);
        g.add_output("y", m);
        let mut h = Hierarchy::new();
        let id = h.add_dfg(g);
        h.set_top(id);
        let g = h.dfg(id);
        let facts = fixpoint_values(&h, g, 16, &[], &mut |_, _| unreachable!());
        assert_eq!(facts[s.node.index()][0].unwrap().as_constant(16), Some(7));
        assert_eq!(facts[m.node.index()][0].unwrap().as_constant(16), Some(49));
    }

    #[test]
    fn feedback_accumulator_widens_and_terminates() {
        // y[n] = x[n] + y[n-1]: the canonical widening case.
        let mut g = Dfg::new("acc");
        let x = g.add_input("x");
        let acc = g.add_op_detached(Operation::Add, "acc");
        g.connect(x, acc, 0, 0);
        g.connect(VarRef::new(acc, 0), acc, 1, 1);
        g.add_output("y", VarRef::new(acc, 0));
        let mut h = Hierarchy::new();
        let id = h.add_dfg(g);
        h.set_top(id);
        let g = h.dfg(id);
        let facts = fixpoint_values(&h, g, 16, &top_inputs(1, 16), &mut |_, _| unreachable!());
        let f = facts[acc.index()][0].unwrap();
        // Must be sound (anything can accumulate) — full range.
        assert_eq!(f.range, crate::domain::Interval::full(16));
    }

    #[test]
    fn narrow_input_context_narrows_results() {
        let mut g = Dfg::new("sum");
        let a = g.add_input("a");
        let b = g.add_input("b");
        let s = g.add_op(Operation::Add, "s", &[a, b]);
        g.add_output("y", s);
        let mut h = Hierarchy::new();
        let id = h.add_dfg(g);
        h.set_top(id);
        let g = h.dfg(id);
        let narrow = AbstractValue {
            range: crate::domain::Interval { lo: -8, hi: 7 },
            bits: crate::domain::KnownBits::unknown(),
        };
        let facts = fixpoint_values(&h, g, 16, &[narrow, narrow], &mut |_, _| unreachable!());
        let f = facts[s.node.index()][0].unwrap();
        assert_eq!(f.range, crate::domain::Interval { lo: -16, hi: 14 });
        assert_eq!(f.width_bits(16), 5);
    }

    #[test]
    fn liveness_sees_through_delays_and_flags_dead_ports() {
        // d = a + b feeds the output only through a delay; u = a * b feeds
        // nothing.
        let mut g = Dfg::new("dead");
        let a = g.add_input("a");
        let b = g.add_input("b");
        let d = g.add_op(Operation::Add, "d", &[a, b]);
        let u = g.add_op(Operation::Mult, "u", &[a, b]);
        g.add_output_delayed("y", d, 2);
        let mut h = Hierarchy::new();
        let id = h.add_dfg(g);
        h.set_top(id);
        let g = h.dfg(id);
        let deps: Vec<Vec<u64>> = vec![vec![]];
        let live = liveness(&h, g, &deps);
        assert!(live[d.node.index()][0], "delayed path is live");
        assert!(!live[u.node.index()][0], "unconsumed op is dead");
    }

    #[test]
    fn output_deps_track_inputs_through_state() {
        // y depends on x (through feedback) but not on the unused input z.
        let mut g = Dfg::new("acc2");
        let x = g.add_input("x");
        let _z = g.add_input("z");
        let acc = g.add_op_detached(Operation::Add, "acc");
        g.connect(x, acc, 0, 0);
        g.connect(VarRef::new(acc, 0), acc, 1, 1);
        g.add_output("y", VarRef::new(acc, 0));
        let mut h = Hierarchy::new();
        let id = h.add_dfg(g);
        h.set_top(id);
        let g = h.dfg(id);
        let deps = output_deps(&h, g, &[]);
        assert_eq!(deps, vec![0b01]);
    }
}
