//! Hierarchical interprocedural analysis.
//!
//! The hierarchy's callgraph is a DAG (validated), so the analysis makes a
//! single caller-first pass: every reachable DFG is solved once under the
//! *join* of the abstract argument tuples flowing into it from every
//! reachable call site. Caller-first order guarantees all of a module's
//! contexts have been accumulated before the module itself is solved, and
//! transfer monotonicity makes the joined-context facts a sound
//! over-approximation of every individual call site — which is exactly
//! what a *shared* module instance (one piece of hardware serving all
//! sites) needs.
//!
//! Call sites are resolved during solving through memoized *summary*
//! queries: callee outputs under an exact abstract argument tuple, keyed by
//! the callee's structural fingerprint so repeated (or renamed) submodules
//! analyze once per distinct context. Summary runs are pure — they do not
//! accumulate contexts — so only the official joined runs decide the
//! certificate.
//!
//! DFGs not reachable from the top (equivalence alternatives kept in the
//! hierarchy for move *A*) are analyzed with unconstrained inputs and do
//! not pollute reachable modules' contexts: their call sites never execute
//! in this design.

use crate::certificate::WidthCertificate;
use crate::domain::AbstractValue;
use crate::fingerprint::fingerprints;
use crate::solver::{fixpoint_values, liveness, output_deps, DfgFacts};
use hsyn_dfg::{DfgId, Hierarchy, HierarchyError, NodeKind};
use std::collections::BTreeMap;
use std::time::Instant;

/// Counters and timing for one [`analyze_hierarchy`] run. Everything except
/// `fixpoint_s` is deterministic for a given hierarchy and width.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct AnalysisStats {
    /// Wall-clock seconds spent in the whole analysis (fingerprints,
    /// fixpoints, liveness, certificate extraction).
    pub fixpoint_s: f64,
    /// Number of official (joined-context) DFG solves — one per DFG.
    pub dfgs_analyzed: u64,
    /// Number of summary fixpoint runs actually executed (memo misses).
    pub summary_runs: u64,
    /// Number of summary queries answered from the memo table.
    pub memo_hits: u64,
}

/// The result of analyzing a whole hierarchy: per-DFG facts under joined
/// call-site contexts, the width certificate extracted from them, and run
/// statistics.
#[derive(Clone, Debug)]
pub struct HierAnalysis {
    width: u32,
    per_dfg: Vec<DfgFacts>,
    certificate: WidthCertificate,
    /// Run counters and timing.
    pub stats: AnalysisStats,
}

impl HierAnalysis {
    /// The nominal datapath width the analysis ran at.
    pub fn width(&self) -> u32 {
        self.width
    }

    /// Joined-context facts for `dfg`.
    pub fn facts(&self, dfg: DfgId) -> &DfgFacts {
        &self.per_dfg[dfg.index()]
    }

    /// The extracted width certificate.
    pub fn certificate(&self) -> &WidthCertificate {
        &self.certificate
    }

    /// Consume the analysis, keeping only the certificate.
    pub fn into_certificate(self) -> WidthCertificate {
        self.certificate
    }
}

/// Exact memo key for one abstract value: interval bounds + known bits.
type AvKey = (i64, i64, u64, u64);

fn av_key(v: &AbstractValue) -> AvKey {
    (v.range.lo, v.range.hi, v.bits.zeros, v.bits.ones)
}

struct Memo {
    map: BTreeMap<(u64, Vec<AvKey>), Vec<AbstractValue>>,
    hits: u64,
    runs: u64,
}

/// Callee outputs under the exact abstract argument tuple `args`, memoized
/// by (structural fingerprint, args).
fn summary_out(
    h: &Hierarchy,
    width: u32,
    callee: DfgId,
    args: &[AbstractValue],
    memo: &mut Memo,
    fps: &[u64],
) -> Vec<AbstractValue> {
    let key = (fps[callee.index()], args.iter().map(av_key).collect());
    if let Some(outs) = memo.map.get(&key) {
        memo.hits += 1;
        return outs.clone();
    }
    memo.runs += 1;
    let g = h.dfg(callee);
    let values = fixpoint_values(h, g, width, args, &mut |c2, a2| {
        summary_out(h, width, c2, a2, memo, fps)
    });
    let outs: Vec<AbstractValue> = g
        .outputs()
        .iter()
        .map(|&o| {
            values[o.index()]
                .first()
                .copied()
                .flatten()
                .unwrap_or_else(|| AbstractValue::top(width))
        })
        .collect();
    memo.map.insert(key, outs.clone());
    outs
}

/// Callee-first topological order of all DFGs (callees before callers);
/// requires the validated acyclic callgraph.
fn callee_first(h: &Hierarchy) -> Vec<DfgId> {
    let n = h.dfg_count();
    let mut done = vec![false; n];
    let mut order = Vec::with_capacity(n);
    for root in 0..n {
        if done[root] {
            continue;
        }
        let mut stack = vec![(DfgId::from_index(root), false)];
        while let Some((d, expanded)) = stack.pop() {
            if done[d.index()] && !expanded {
                continue;
            }
            if expanded {
                if !done[d.index()] {
                    done[d.index()] = true;
                    order.push(d);
                }
                continue;
            }
            stack.push((d, true));
            for (_, node) in h.dfg(d).nodes() {
                if let NodeKind::Hier { callee } = node.kind() {
                    if !done[callee.index()] {
                        stack.push((*callee, false));
                    }
                }
            }
        }
    }
    order
}

/// The set of DFGs reachable from the top through hierarchical calls.
fn reachable_from_top(h: &Hierarchy) -> Vec<bool> {
    let mut seen = vec![false; h.dfg_count()];
    let mut stack = vec![h.top()];
    while let Some(d) = stack.pop() {
        if seen[d.index()] {
            continue;
        }
        seen[d.index()] = true;
        for (_, node) in h.dfg(d).nodes() {
            if let NodeKind::Hier { callee } = node.kind() {
                stack.push(*callee);
            }
        }
    }
    seen
}

/// Analyze `h` at datapath `width`: value/known-bits/constant facts per
/// node port under joined call-site contexts, port-level liveness, and a
/// width certificate.
///
/// # Errors
///
/// Returns the hierarchy's own validation error if `h` is malformed — the
/// solver relies on the structural invariants `validate` establishes
/// (every input port driven exactly once, zero-delay acyclicity, acyclic
/// callgraph).
///
/// # Panics
///
/// Panics if `width` is not in `1..=32` (the range the reference semantics
/// are defined over).
pub fn analyze_hierarchy(h: &Hierarchy, width: u32) -> Result<HierAnalysis, HierarchyError> {
    assert!((1..=32).contains(&width), "width must be in 1..=32");
    h.validate()?;
    let t0 = Instant::now();
    let n = h.dfg_count();
    let fps = fingerprints(h);
    let order = callee_first(h);
    let reachable = reachable_from_top(h);

    // Input-dependency summaries, bottom-up (callees first).
    let mut deps: Vec<Vec<u64>> = vec![Vec::new(); n];
    for &d in &order {
        deps[d.index()] = output_deps(h, h.dfg(d), &deps);
    }

    // Joined call-site contexts, accumulated caller-first.
    let mut ctx: Vec<Option<Vec<AbstractValue>>> = vec![None; n];
    let top = h.top();
    ctx[top.index()] = Some(vec![AbstractValue::top(width); h.in_arity(top)]);

    let mut memo = Memo {
        map: BTreeMap::new(),
        hits: 0,
        runs: 0,
    };
    let mut per_dfg: Vec<Option<DfgFacts>> = vec![None; n];
    for &d in order.iter().rev() {
        let g = h.dfg(d);
        let inputs = if reachable[d.index()] {
            ctx[d.index()]
                .take()
                .unwrap_or_else(|| vec![AbstractValue::top(width); h.in_arity(d)])
        } else {
            vec![AbstractValue::top(width); h.in_arity(d)]
        };
        let accumulate = reachable[d.index()];
        let values = {
            let ctx = &mut ctx;
            let memo = &mut memo;
            fixpoint_values(h, g, width, &inputs, &mut |callee, args| {
                if accumulate {
                    let slot = &mut ctx[callee.index()];
                    let joined = match slot.take() {
                        None => args.to_vec(),
                        Some(prev) => prev
                            .iter()
                            .zip(args)
                            .map(|(p, a)| p.join(*a).normalize(width))
                            .collect(),
                    };
                    *slot = Some(joined);
                }
                summary_out(h, width, callee, args, memo, &fps)
            })
        };
        let live = liveness(h, g, &deps);
        per_dfg[d.index()] = Some(DfgFacts {
            width,
            values,
            live,
        });
    }
    let per_dfg: Vec<DfgFacts> = per_dfg.into_iter().map(|f| f.expect("analyzed")).collect();

    // Extract the certificate: width_bits of each port's fact, nominal for
    // ports the solver never reached.
    let widths: Vec<Vec<Vec<u8>>> = h
        .dfgs()
        .map(|(d, g)| {
            let facts = &per_dfg[d.index()];
            g.node_ids()
                .map(|nid| {
                    (0..facts.port_count(nid))
                        .map(|p| {
                            facts
                                .value(nid, p as u16)
                                .map_or(width as u8, |v| v.width_bits(width) as u8)
                        })
                        .collect()
                })
                .collect()
        })
        .collect();
    let certificate = WidthCertificate::from_widths(width, widths);

    let stats = AnalysisStats {
        fixpoint_s: t0.elapsed().as_secs_f64(),
        dfgs_analyzed: n as u64,
        summary_runs: memo.runs,
        memo_hits: memo.hits,
    };
    Ok(HierAnalysis {
        width,
        per_dfg,
        certificate,
        stats,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::certificate::certified_outputs;
    use hsyn_dfg::{Dfg, Operation};

    /// top: y = scale(x) + scale(k) with k a narrow constant; scale doubles.
    fn shared_callee() -> (Hierarchy, DfgId, DfgId) {
        let mut h = Hierarchy::new();
        let mut sub = Dfg::new("scale");
        let a = sub.add_input("a");
        let two = sub.add_const("two", 2);
        let m = sub.add_op(Operation::Mult, "m", &[a, two]);
        sub.add_output("y", m);
        let sub_id = h.add_dfg(sub);
        let mut top = Dfg::new("top");
        let x = top.add_input("x");
        let k = top.add_const("k", 5);
        let c1 = top.add_hier(sub_id, "c1", &[x]);
        let c2 = top.add_hier(sub_id, "c2", &[k]);
        let s = top.add_op(
            Operation::Add,
            "s",
            &[top.hier_out(c1, 0), top.hier_out(c2, 0)],
        );
        top.add_output("y", s);
        let t = h.add_dfg(top);
        h.set_top(t);
        (h, sub_id, t)
    }

    #[test]
    fn joined_context_covers_every_call_site() {
        let (h, sub_id, top_id) = shared_callee();
        let an = analyze_hierarchy(&h, 16).unwrap();
        // The shared callee sees the join of {top of x} and {constant 5}:
        // its input fact must be full width (x is unconstrained).
        let g = h.dfg(sub_id);
        let input = g.inputs()[0];
        let f = an.facts(sub_id).value(input, 0).unwrap();
        assert_eq!(f.width_bits(16), 16);
        // But the per-site summary still folds the constant call site: the
        // c2 output in top is exactly 10.
        let tg = h.dfg(top_id);
        let c2 = tg
            .node_ids()
            .find(|&nn| tg.node(nn).name() == "c2")
            .unwrap();
        let out = an.facts(top_id).value(c2, 0).unwrap();
        assert_eq!(out.as_constant(16), Some(10));
    }

    #[test]
    fn memoization_collapses_repeated_contexts() {
        let (h, _, _) = shared_callee();
        let an = analyze_hierarchy(&h, 16).unwrap();
        // Call sites: c1 (top args) and c2 (constant args) plus the two
        // official runs — distinct contexts run once each; repeats hit.
        assert!(an.stats.summary_runs >= 1);
        assert_eq!(an.stats.dfgs_analyzed, 2);
    }

    #[test]
    fn certificate_is_dynamically_sound_on_random_streams() {
        let (h, _, _) = shared_callee();
        let an = analyze_hierarchy(&h, 12).unwrap();
        let cert = an.certificate();
        let mut rng = hsyn_util::Rng::seed_from_u64(7);
        let stream: Vec<i64> = (0..64)
            .map(|_| rng.range_i64(-(1 << 11), (1 << 11) - 1))
            .collect();
        let outs = certified_outputs(&h, cert, std::slice::from_ref(&stream), 12)
            .expect("certified widths hold dynamically");
        let want = hsyn_dfg::reference_outputs(&h.flatten(), &[stream], 12);
        assert_eq!(outs, want);
    }

    #[test]
    fn memory_benchmarks_analyze_and_certify() {
        // The certified hierarchical evaluator must agree with the flattened
        // reference on every memory-tier benchmark (shared banks included),
        // and the extracted widths must hold dynamically.
        for b in hsyn_dfg::benchmarks::memory_suite() {
            let an = analyze_hierarchy(&b.hierarchy, 16).unwrap();
            let cert = an.certificate();
            let mut rng = hsyn_util::Rng::seed_from_u64(11);
            let n_in = b.hierarchy.in_arity(b.hierarchy.top());
            let streams: Vec<Vec<i64>> = (0..n_in)
                .map(|_| (0..16).map(|_| rng.range_i64(-100, 100)).collect())
                .collect();
            let got = certified_outputs(&b.hierarchy, cert, &streams, 16)
                .unwrap_or_else(|e| panic!("{}: {e}", b.name));
            let want = hsyn_dfg::reference_outputs(&b.hierarchy.flatten(), &streams, 16);
            assert_eq!(got, want, "{} diverges from the reference", b.name);
        }
    }

    #[test]
    fn load_width_is_bounded_by_element_width() {
        // An 8-bit-wide memory bounds what a load can produce even when the
        // stored data is full-width.
        let mut h = Hierarchy::new();
        let mut g = Dfg::new("m8");
        let m = g.add_mem(hsyn_dfg::MemObject::owned("buf", 4, 8));
        let x = g.add_input("x");
        let a = g.add_input("a");
        g.add_store(m, "st", a, x);
        let l = g.add_load(m, "l", a);
        g.add_output("y", l);
        let id = h.add_dfg(g);
        h.set_top(id);
        let an = analyze_hierarchy(&h, 16).unwrap();
        let g = h.dfg(id);
        let ld = g.node_ids().find(|&n| g.node(n).name() == "l").unwrap();
        assert!(an.facts(id).value(ld, 0).unwrap().width_bits(16) <= 8);
        assert_eq!(an.certificate().port_width(id, ld, 0), 8);
    }

    #[test]
    fn store_operands_stay_live() {
        // The store's address chain feeds no output, yet it must not be
        // reported dead: the write is an observable side effect.
        let mut h = Hierarchy::new();
        let mut g = Dfg::new("st");
        let m = g.add_mem(hsyn_dfg::MemObject::owned("buf", 4, 16));
        let x = g.add_input("x");
        let a0 = g.add_const("a0", 1);
        let addr = g.add_op(Operation::Add, "addr", &[a0, a0]);
        g.add_store(m, "stn", addr, x);
        let l = g.add_load(m, "l", a0);
        g.add_output("y", l);
        let id = h.add_dfg(g);
        h.set_top(id);
        let an = analyze_hierarchy(&h, 16).unwrap();
        let g = h.dfg(id);
        let addr_node = g.node_ids().find(|&n| g.node(n).name() == "addr").unwrap();
        assert!(
            an.facts(id).live(addr_node, 0),
            "store address chain is live"
        );
    }

    #[test]
    fn analysis_is_deterministic() {
        let (h, _, _) = shared_callee();
        let a1 = analyze_hierarchy(&h, 16).unwrap();
        let a2 = analyze_hierarchy(&h, 16).unwrap();
        assert_eq!(a1.certificate(), a2.certificate());
        assert_eq!(a1.stats.summary_runs, a2.stats.summary_runs);
        assert_eq!(a1.stats.memo_hits, a2.stats.memo_hits);
    }

    #[test]
    fn unreachable_alternatives_do_not_pollute_contexts() {
        // An unreachable variant calls `scale` with top inputs; the
        // reachable top calls it only with the constant 3. The certificate
        // for the c2 call site must still fold.
        let mut h = Hierarchy::new();
        let mut sub = Dfg::new("scale");
        let a = sub.add_input("a");
        let two = sub.add_const("two", 2);
        let m = sub.add_op(Operation::Mult, "m", &[a, two]);
        sub.add_output("y", m);
        let sub_id = h.add_dfg(sub);
        // Unreachable caller with an unconstrained argument.
        let mut alt = Dfg::new("alt");
        let w = alt.add_input("w");
        let c = alt.add_hier(sub_id, "c", &[w]);
        alt.add_output("y", alt.hier_out(c, 0));
        let _alt_id = h.add_dfg(alt);
        let mut top = Dfg::new("top");
        let k = top.add_const("k", 3);
        let c2 = top.add_hier(sub_id, "c2", &[k]);
        top.add_output("y", top.hier_out(c2, 0));
        let t = h.add_dfg(top);
        h.set_top(t);
        let an = analyze_hierarchy(&h, 16).unwrap();
        // Joined context of the reachable design is {3} only: the callee's
        // internal multiply fact folds to 6.
        let g = h.dfg(sub_id);
        let mul = g.node_ids().find(|&nn| g.node(nn).name() == "m").unwrap();
        assert_eq!(
            an.facts(sub_id).value(mul, 0).unwrap().as_constant(16),
            Some(6)
        );
    }
}
