//! Structural fingerprints used as summary-memoization keys.
//!
//! Two DFGs receive the same fingerprint iff they have the same node kinds,
//! the same edge structure (endpoints, ports, delays), the same input/output
//! lists, and structurally identical callees — names are deliberately
//! excluded, so renamed copies of a module share one analysis summary. The
//! hash is a local FNV-1a over a canonical serialization with hierarchical
//! callees replaced by their own (recursively computed) fingerprints; it is
//! independent of `DfgId` numbering and therefore stable across hierarchies
//! that merely index their modules differently.

use hsyn_dfg::{Dfg, DfgId, Hierarchy, MemScope, NodeKind};

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

#[derive(Clone, Copy)]
struct Fnv(u64);

impl Fnv {
    fn new() -> Self {
        Fnv(FNV_OFFSET)
    }
    fn byte(&mut self, b: u8) {
        self.0 ^= u64::from(b);
        self.0 = self.0.wrapping_mul(FNV_PRIME);
    }
    fn u64(&mut self, v: u64) {
        for b in v.to_le_bytes() {
            self.byte(b);
        }
    }
    fn i64(&mut self, v: i64) {
        self.u64(v as u64);
    }
}

fn dfg_hash(g: &Dfg, callee_fp: impl Fn(DfgId) -> u64) -> u64 {
    let mut h = Fnv::new();
    h.u64(g.node_count() as u64);
    for (_, node) in g.nodes() {
        match node.kind() {
            NodeKind::Input { index } => {
                h.byte(1);
                h.u64(*index as u64);
            }
            NodeKind::Output { index } => {
                h.byte(2);
                h.u64(*index as u64);
            }
            NodeKind::Const { value } => {
                h.byte(3);
                h.i64(*value);
            }
            NodeKind::Op(op) => {
                h.byte(4);
                h.u64(*op as u64);
            }
            NodeKind::Hier { callee } => {
                h.byte(5);
                h.u64(callee_fp(*callee));
                // Memory bindings change which banks a call touches.
                h.u64(node.mem_binds().len() as u64);
                for b in node.mem_binds() {
                    h.u64(b.index() as u64);
                }
            }
            NodeKind::Load { mem } => {
                h.byte(6);
                h.u64(mem.index() as u64);
            }
            NodeKind::Store { mem } => {
                h.byte(7);
                h.u64(mem.index() as u64);
            }
        }
    }
    // Memory shapes feed the load/store transfer functions (element width
    // bounds loaded values), so they are part of the structural identity.
    h.u64(g.mem_count() as u64);
    for (_, m) in g.mems() {
        h.u64(u64::from(m.words));
        h.u64(u64::from(m.elem_width));
        h.u64(u64::from(m.ports));
        h.u64(u64::from(m.banks));
        h.byte(match m.scope {
            MemScope::Owned => 0,
            MemScope::External => 1,
        });
    }
    h.u64(g.edge_count() as u64);
    for (_, e) in g.edges() {
        h.u64(e.from.node.index() as u64);
        h.u64(u64::from(e.from.port));
        h.u64(e.to.index() as u64);
        h.u64(u64::from(e.to_port));
        h.u64(u64::from(e.delay));
    }
    h.u64(g.inputs().len() as u64);
    for &n in g.inputs() {
        h.u64(n.index() as u64);
    }
    h.u64(g.outputs().len() as u64);
    for &n in g.outputs() {
        h.u64(n.index() as u64);
    }
    h.0
}

/// Structural fingerprint of every DFG in `h`, indexed by `DfgId::index`.
/// Requires an acyclic callgraph (guaranteed after `Hierarchy::validate`).
pub fn fingerprints(h: &Hierarchy) -> Vec<u64> {
    let n = h.dfg_count();
    let mut fps: Vec<Option<u64>> = vec![None; n];
    // Iterative callee-first DFS; the callgraph is a DAG post-validation.
    for root in 0..n {
        if fps[root].is_some() {
            continue;
        }
        let mut stack = vec![(DfgId::from_index(root), false)];
        while let Some((d, expanded)) = stack.pop() {
            if fps[d.index()].is_some() {
                continue;
            }
            let g = h.dfg(d);
            if expanded {
                let fp = dfg_hash(g, |c| fps[c.index()].expect("callee hashed first"));
                fps[d.index()] = Some(fp);
            } else {
                stack.push((d, true));
                for (_, node) in g.nodes() {
                    if let NodeKind::Hier { callee } = node.kind() {
                        if fps[callee.index()].is_none() {
                            stack.push((*callee, false));
                        }
                    }
                }
            }
        }
    }
    fps.into_iter().map(|f| f.expect("all hashed")).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use hsyn_dfg::Operation;

    fn mac(name: &str, opname: &str) -> Dfg {
        let mut g = Dfg::new(name);
        let a = g.add_input("a");
        let b = g.add_input("b");
        let m = g.add_op(Operation::Mult, opname, &[a, b]);
        g.add_output("y", m);
        g
    }

    #[test]
    fn renamed_copies_share_a_fingerprint() {
        let mut h = Hierarchy::new();
        let d1 = h.add_dfg(mac("m1", "p"));
        let d2 = h.add_dfg(mac("m2", "q"));
        let mut top = Dfg::new("top");
        let a = top.add_input("a");
        let b = top.add_input("b");
        let c1 = top.add_hier(d1, "c1", &[a, b]);
        let c2 = top.add_hier(d2, "c2", &[a, b]);
        let s = top.add_op(
            Operation::Add,
            "s",
            &[top.hier_out(c1, 0), top.hier_out(c2, 0)],
        );
        top.add_output("y", s);
        let t = h.add_dfg(top);
        h.set_top(t);
        let fps = fingerprints(&h);
        assert_eq!(fps[d1.index()], fps[d2.index()]);
        assert_ne!(fps[d1.index()], fps[t.index()]);
    }

    #[test]
    fn structural_change_changes_fingerprint() {
        let mut h1 = Hierarchy::new();
        let a1 = h1.add_dfg(mac("m", "p"));
        h1.set_top(a1);
        let mut h2 = Hierarchy::new();
        let mut g = mac("m", "p");
        // Same shape but a different operation.
        let mut g2 = Dfg::new("m");
        let a = g2.add_input("a");
        let b = g2.add_input("b");
        let m = g2.add_op(Operation::Add, "p", &[a, b]);
        g2.add_output("y", m);
        std::mem::swap(&mut g, &mut g2);
        let a2 = h2.add_dfg(g);
        h2.set_top(a2);
        assert_ne!(fingerprints(&h1)[a1.index()], fingerprints(&h2)[a2.index()]);
    }
}
