//! Abstract-interpretation dataflow analysis for the H-SYN reproduction.
//!
//! This crate is the static-analysis substrate under the synthesis flow: a
//! worklist fixpoint solver running over each DFG's CSR adjacency arena
//! with a reduced product of composable abstract domains —
//!
//! * **interval / value range** ([`Interval`]): signed bounds at the
//!   datapath width, with wrap-aware transfers (any possible overflow
//!   widens to the full representable range);
//! * **known bits** ([`KnownBits`]): bit-level must-be-zero / must-be-one
//!   facts, giving constants, sign information and trailing-zero counts
//!   the interval domain cannot see;
//! * **constant propagation**: the bottom of both domains — a singleton
//!   interval or fully-known bits folds to a constant;
//! * **dead value / liveness**: backward port-level observability through
//!   delays and hierarchical calls.
//!
//! The interprocedural layer ([`analyze_hierarchy`]) walks the validated
//! hierarchy caller-first, joining the abstract argument tuples of every
//! reachable call site into one context per module (sound for shared
//! hardware instances), while memoized per-context *summaries* — keyed by
//! structural fingerprint, so repeated submodules analyze once — resolve
//! call sites exactly during solving.
//!
//! Its headline product is the [`WidthCertificate`]: a proven-sufficient
//! bit width for every variable in the hierarchy, which RTL sizing uses to
//! shrink functional units, registers and interconnect, and which
//! [`certified_outputs`] checks dynamically against the reference
//! semantics (bit-exact with [`hsyn_dfg::reference_outputs`] on the
//! flattened graph).
//!
//! # Example
//!
//! ```
//! use hsyn_dfg::{Dfg, Hierarchy, Operation};
//! use hsyn_dataflow::analyze_hierarchy;
//!
//! let mut g = Dfg::new("small");
//! let x = g.add_input("x");
//! let k = g.add_const("k", 3);          // narrow coefficient
//! let s = g.add_op(Operation::Add, "s", &[x, k]);
//! g.add_output("y", s);
//! let mut h = Hierarchy::new();
//! let top = h.add_dfg(g);
//! h.set_top(top);
//!
//! let analysis = analyze_hierarchy(&h, 16).unwrap();
//! let cert = analysis.certificate();
//! // The constant folds to a 3-bit value; the sum stays near full width.
//! assert!(cert.narrowed_ports() >= 1);
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

mod certificate;
mod domain;
mod fingerprint;
mod interproc;
mod solver;

pub use certificate::{certified_outputs, CertificateViolation, WidthCertificate};
pub use domain::{bits_needed, sign_extend, transfer, AbstractValue, Interval, KnownBits};
pub use fingerprint::fingerprints;
pub use interproc::{analyze_hierarchy, AnalysisStats, HierAnalysis};
pub use solver::DfgFacts;
