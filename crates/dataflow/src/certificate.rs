//! Per-node width certificates and the certified hierarchical evaluator.
//!
//! A [`WidthCertificate`] records, for every output port of every node in a
//! hierarchy, a bit width the analysis has *proven* sufficient: every value
//! that port can carry at runtime fits the width as a two's-complement
//! number. Downstream sizing (FUs, registers, muxes, wires) consumes these
//! widths; [`certified_outputs`] is the oracle that checks the claim
//! dynamically, evaluating the hierarchy cycle-accurately with the exact
//! semantics of [`hsyn_dfg::reference_outputs`] on the flattened graph
//! while asserting that every produced value fits its certified width.

use crate::domain::sign_extend;
use hsyn_dfg::mem_topo_order;
use hsyn_dfg::{DfgId, Hierarchy, NodeId, NodeKind, VarRef};
use hsyn_util::Json;
use std::collections::BTreeMap;
use std::fmt;

/// Proven-sufficient bit widths for every `(dfg, node, port)` variable of a
/// hierarchy. Widths are in `1..=nominal`; ports the analysis could not
/// narrow carry the nominal width.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct WidthCertificate {
    width: u32,
    /// `per_dfg[dfg][node][port]` — certified width of that output port.
    per_dfg: Vec<Vec<Vec<u8>>>,
}

impl WidthCertificate {
    pub(crate) fn from_widths(width: u32, per_dfg: Vec<Vec<Vec<u8>>>) -> Self {
        WidthCertificate { width, per_dfg }
    }

    /// A certificate that claims nothing: every port at the nominal width.
    /// Sizing with it reproduces the unsized cost model bit for bit.
    pub fn uniform(h: &Hierarchy, width: u32) -> Self {
        let per_dfg = h
            .dfgs()
            .map(|(_, g)| {
                g.nodes()
                    .map(|(_, node)| {
                        let ports = match node.kind() {
                            NodeKind::Hier { callee } => h.out_arity(*callee),
                            _ => 1,
                        };
                        vec![width as u8; ports]
                    })
                    .collect()
            })
            .collect();
        WidthCertificate { width, per_dfg }
    }

    /// The nominal datapath width the certificate was computed at.
    pub fn nominal_width(&self) -> u32 {
        self.width
    }

    /// Certified width of output `port` of `node` in `dfg`; the nominal
    /// width for any port the certificate has no entry for.
    pub fn port_width(&self, dfg: DfgId, node: NodeId, port: u16) -> u32 {
        self.per_dfg
            .get(dfg.index())
            .and_then(|nodes| nodes.get(node.index()))
            .and_then(|ports| ports.get(usize::from(port)))
            .map_or(self.width, |&w| u32::from(w))
    }

    /// Certified width of the variable `var` of `dfg`.
    pub fn var_width(&self, dfg: DfgId, var: VarRef) -> u32 {
        self.port_width(dfg, var.node, var.port)
    }

    /// Number of ports certified strictly below the nominal width.
    pub fn narrowed_ports(&self) -> usize {
        self.per_dfg
            .iter()
            .flatten()
            .flatten()
            .filter(|&&w| u32::from(w) < self.width)
            .count()
    }

    /// Total number of certified ports.
    pub fn total_ports(&self) -> usize {
        self.per_dfg.iter().flatten().map(Vec::len).sum()
    }

    /// Deterministic JSON rendering: nominal width, port totals, and per-DFG
    /// width tables (node name and per-port widths, all nodes in id order).
    pub fn to_json(&self, h: &Hierarchy) -> Json {
        let dfgs = h
            .dfgs()
            .map(|(d, g)| {
                let nodes = g
                    .nodes()
                    .map(|(nid, node)| {
                        let widths = self
                            .per_dfg
                            .get(d.index())
                            .and_then(|ns| ns.get(nid.index()))
                            .map(|ports| {
                                ports
                                    .iter()
                                    .map(|&w| Json::Num(f64::from(w)))
                                    .collect::<Vec<_>>()
                            })
                            .unwrap_or_default();
                        Json::Obj(vec![
                            ("node".into(), Json::Num(nid.index() as f64)),
                            ("name".into(), Json::Str(node.name().into())),
                            ("widths".into(), Json::Arr(widths)),
                        ])
                    })
                    .collect::<Vec<_>>();
                Json::Obj(vec![
                    ("dfg".into(), Json::Num(d.index() as f64)),
                    ("name".into(), Json::Str(g.name().into())),
                    ("nodes".into(), Json::Arr(nodes)),
                ])
            })
            .collect::<Vec<_>>();
        Json::Obj(vec![
            ("width".into(), Json::Num(f64::from(self.width))),
            ("total_ports".into(), Json::Num(self.total_ports() as f64)),
            (
                "narrowed_ports".into(),
                Json::Num(self.narrowed_ports() as f64),
            ),
            ("dfgs".into(), Json::Arr(dfgs)),
        ])
    }
}

/// A dynamic counterexample to a [`WidthCertificate`]: a concrete evaluation
/// produced a value that does not fit its certified width.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CertificateViolation {
    /// DFG the violating node belongs to.
    pub dfg: DfgId,
    /// The violating node.
    pub node: NodeId,
    /// The violating output port.
    pub port: u16,
    /// Sample index at which the violation occurred.
    pub iteration: usize,
    /// The concrete value that did not fit.
    pub value: i64,
    /// The certified width it was supposed to fit.
    pub certified_width: u32,
}

impl fmt::Display for CertificateViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "value {} at {}/{}.{} (iteration {}) does not fit certified width {}",
            self.value, self.dfg, self.node, self.port, self.iteration, self.certified_width
        )
    }
}

impl std::error::Error for CertificateViolation {}

/// One live module instance: local delay history, child instances (one per
/// hierarchical node), and this instance's view of the memory pool. Mirrors
/// the flattened evaluator's per-variable history — each instance keeps its
/// own, so delays compose across call boundaries exactly as
/// [`Hierarchy::flatten`] accumulates them. Owned memories allocate a fresh
/// pool slot per instance; external memories alias the slot the parent
/// bound at the call site, which is what keeps parent and callee accesses
/// to a shared bank observing one state.
struct Instance {
    dfg: DfgId,
    hist: BTreeMap<(NodeId, u16, u32), i64>,
    children: BTreeMap<NodeId, Instance>,
    /// `mem_map[MemId::index]` — pool slot backing that local memory.
    mem_map: Vec<usize>,
}

impl Instance {
    /// `ext[i]` is the pool slot serving this DFG's i-th external memory.
    fn build(h: &Hierarchy, dfg: DfgId, ext: &[usize], pool: &mut Vec<Vec<i64>>) -> Instance {
        let g = h.dfg(dfg);
        let mut ext_pos = 0;
        let mut mem_map = Vec::with_capacity(g.mem_count());
        for (_, m) in g.mems() {
            let slot = match m.scope {
                hsyn_dfg::MemScope::Owned => {
                    pool.push(vec![0i64; m.words.max(1) as usize]);
                    pool.len() - 1
                }
                hsyn_dfg::MemScope::External => {
                    let s = ext[ext_pos];
                    ext_pos += 1;
                    s
                }
            };
            mem_map.push(slot);
        }
        let children = g
            .nodes()
            .filter_map(|(nid, node)| match node.kind() {
                NodeKind::Hier { callee } => {
                    let child_ext: Vec<usize> = node
                        .mem_binds()
                        .iter()
                        .map(|b| mem_map[b.index()])
                        .collect();
                    Some((nid, Instance::build(h, *callee, &child_ext, pool)))
                }
                _ => None,
            })
            .collect();
        Instance {
            dfg,
            hist: BTreeMap::new(),
            children,
            mem_map,
        }
    }
}

/// Static per-DFG evaluation plan shared by all instances of the module.
struct Plan {
    order: Vec<NodeId>,
    max_delay: u32,
}

/// Evaluate the hierarchy cycle-accurately on `inputs` (one stream per
/// top-level primary input, equal lengths) at datapath `width`, checking
/// every produced value against `cert`.
///
/// Semantics match [`hsyn_dfg::reference_outputs`] on the flattened graph
/// bit for bit: constants truncate to `width`, delayed edges read values
/// from earlier iterations (0 before the history fills), outputs are
/// collected before the history shift of their iteration.
///
/// # Errors
///
/// Returns the first [`CertificateViolation`] encountered (deterministic:
/// evaluation order is topological, ports ascending).
///
/// # Panics
///
/// Panics if the hierarchy fails validation, input streams are malformed,
/// or `width` is not in `1..=32`.
pub fn certified_outputs(
    h: &Hierarchy,
    cert: &WidthCertificate,
    inputs: &[Vec<i64>],
    width: u32,
) -> Result<Vec<Vec<i64>>, CertificateViolation> {
    assert!((1..=32).contains(&width), "width must be in 1..=32");
    h.validate().expect("well-formed hierarchy");
    let top = h.top();
    assert_eq!(
        inputs.len(),
        h.in_arity(top),
        "input stream count must match the top DFG"
    );
    let len = inputs.first().map_or(0, Vec::len);
    assert!(
        inputs.iter().all(|s| s.len() == len),
        "input streams must have equal lengths"
    );

    let plans: Vec<Plan> = h
        .dfgs()
        .map(|(_, g)| Plan {
            order: mem_topo_order(g).expect("acyclic zero-delay subgraph"),
            max_delay: g.edges().map(|(_, e)| e.delay).max().unwrap_or(0),
        })
        .collect();
    // One flat array per live memory; state persists across iterations.
    let mut pool: Vec<Vec<i64>> = Vec::new();
    let mut root = Instance::build(h, top, &[], &mut pool);
    let mut outs = vec![Vec::with_capacity(len); h.out_arity(top)];
    for n in 0..len {
        let sample: Vec<i64> = inputs.iter().map(|s| s[n]).collect();
        let produced = eval_instance(h, cert, &plans, &mut root, &mut pool, &sample, width, n)?;
        for (o, v) in produced.into_iter().enumerate() {
            outs[o].push(v);
        }
    }
    Ok(outs)
}

/// Run one iteration of `inst`, returning the module's output values.
#[allow(clippy::too_many_arguments)]
fn eval_instance(
    h: &Hierarchy,
    cert: &WidthCertificate,
    plans: &[Plan],
    inst: &mut Instance,
    pool: &mut Vec<Vec<i64>>,
    inputs: &[i64],
    width: u32,
    iteration: usize,
) -> Result<Vec<i64>, CertificateViolation> {
    let dfg = inst.dfg;
    let g = h.dfg(dfg);
    let plan = &plans[dfg.index()];
    let adj = g.adj();
    // vals[node][port]; single-port nodes use index 0.
    let mut vals: Vec<Vec<Option<i64>>> = g
        .nodes()
        .map(|(_, node)| {
            let ports = match node.kind() {
                NodeKind::Hier { callee } => h.out_arity(*callee),
                _ => 1,
            };
            vec![None; ports]
        })
        .collect();
    let mut outs = vec![0i64; g.outputs().len()];

    for &nid in &plan.order {
        let read =
            |vals: &[Vec<Option<i64>>], hist: &BTreeMap<(NodeId, u16, u32), i64>, port: u16| {
                let e = g.edge(adj.driver_edge(nid, port).expect("driven port"));
                if e.delay > 0 {
                    hist.get(&(e.from.node, e.from.port, e.delay))
                        .copied()
                        .unwrap_or(0)
                } else {
                    vals[e.from.node.index()][usize::from(e.from.port)].unwrap_or(0)
                }
            };
        let produced: Vec<i64> = match g.node(nid).kind() {
            NodeKind::Input { index } => vec![inputs[*index]],
            NodeKind::Const { value } => vec![sign_extend(*value, width)],
            NodeKind::Op(op) => {
                let args: Vec<i64> = (0..op.arity() as u16)
                    .map(|p| read(&vals, &inst.hist, p))
                    .collect();
                vec![op.eval(&args, width)]
            }
            NodeKind::Hier { callee } => {
                let args: Vec<i64> = (0..h.in_arity(*callee) as u16)
                    .map(|p| read(&vals, &inst.hist, p))
                    .collect();
                let child = inst.children.get_mut(&nid).expect("child instance");
                eval_instance(h, cert, plans, child, pool, &args, width, iteration)?
            }
            NodeKind::Output { index } => {
                let v = read(&vals, &inst.hist, 0);
                outs[*index] = v;
                vec![v]
            }
            // Same memory semantics as `reference_outputs` on the flattened
            // graph: addresses wrap modulo the word count, stored values
            // truncate to the element width.
            NodeKind::Load { mem } => {
                let addr = read(&vals, &inst.hist, 0);
                let bank = &pool[inst.mem_map[mem.index()]];
                let v = bank[addr.rem_euclid(bank.len() as i64) as usize];
                vec![sign_extend(v, width)]
            }
            NodeKind::Store { mem } => {
                let addr = read(&vals, &inst.hist, 0);
                let data = read(&vals, &inst.hist, 1);
                let m = g.mem(*mem);
                let stored = sign_extend(data, m.elem_width.min(width));
                let bank = &mut pool[inst.mem_map[mem.index()]];
                let w = addr.rem_euclid(bank.len() as i64) as usize;
                bank[w] = stored;
                vec![stored]
            }
        };
        for (port, &v) in produced.iter().enumerate() {
            let w = cert.port_width(dfg, nid, port as u16);
            if sign_extend(v, w) != v {
                return Err(CertificateViolation {
                    dfg,
                    node: nid,
                    port: port as u16,
                    iteration,
                    value: v,
                    certified_width: w,
                });
            }
            vals[nid.index()][port] = Some(v);
        }
    }

    // Shift history one iteration down, deepest level first — the same
    // convention as the flattened reference evaluator.
    for k in (2..=plan.max_delay).rev() {
        let prev: Vec<((NodeId, u16, u32), i64)> = inst
            .hist
            .iter()
            .filter(|((_, _, d), _)| *d == k - 1)
            .map(|(&(a, b, _), &v)| ((a, b, k), v))
            .collect();
        for (key, v) in prev {
            inst.hist.insert(key, v);
        }
    }
    for (_, e) in g.edges() {
        if e.delay > 0 {
            if let Some(v) = vals[e.from.node.index()][usize::from(e.from.port)] {
                inst.hist.insert((e.from.node, e.from.port, 1), v);
            }
        }
    }
    Ok(outs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use hsyn_dfg::{reference_outputs, Dfg, Operation};

    fn acc_hierarchy() -> Hierarchy {
        // sub: accumulator y[n] = x[n] + y[n-1]; top: y = acc(a * b)
        let mut h = Hierarchy::new();
        let mut sub = Dfg::new("acc");
        let x = sub.add_input("x");
        let a = sub.add_op_detached(Operation::Add, "a");
        sub.connect(x, a, 0, 0);
        sub.connect(VarRef::new(a, 0), a, 1, 1);
        sub.add_output("y", VarRef::new(a, 0));
        let sub_id = h.add_dfg(sub);
        let mut top = Dfg::new("top");
        let p = top.add_input("p");
        let q = top.add_input("q");
        let m = top.add_op(Operation::Mult, "m", &[p, q]);
        let call = top.add_hier(sub_id, "H", &[m]);
        top.add_output("y", top.hier_out(call, 0));
        let t = h.add_dfg(top);
        h.set_top(t);
        h
    }

    #[test]
    fn uniform_certificate_matches_reference() {
        let h = acc_hierarchy();
        let cert = WidthCertificate::uniform(&h, 16);
        let inputs = vec![vec![1, 2, 3, -4], vec![5, 6, -7, 8]];
        let got = certified_outputs(&h, &cert, &inputs, 16).expect("uniform never violates");
        let want = reference_outputs(&h.flatten(), &inputs, 16);
        assert_eq!(got, want);
    }

    #[test]
    fn violation_is_reported_at_the_narrow_port() {
        let h = acc_hierarchy();
        let mut cert = WidthCertificate::uniform(&h, 16);
        // Claim the multiplier output fits 3 bits; 5*5 = 25 does not.
        let top = h.top();
        let g = h.dfg(top);
        let m = g
            .node_ids()
            .find(|&n| g.node(n).name() == "m")
            .expect("mult node");
        cert.per_dfg[top.index()][m.index()][0] = 3;
        let err = certified_outputs(&h, &cert, &[vec![5], vec![5]], 16)
            .expect_err("25 does not fit 3 bits");
        assert_eq!(err.node, m);
        assert_eq!(err.value, 25);
        assert_eq!(err.certified_width, 3);
    }

    #[test]
    fn delays_compose_across_the_call_boundary() {
        // top feeds the callee through a 1-delay edge; callee delays its
        // output by 1 more. Flattened semantics must match exactly.
        let mut h = Hierarchy::new();
        let mut sub = Dfg::new("z1");
        let x = sub.add_input("x");
        sub.add_output_delayed("y", x, 1);
        let sub_id = h.add_dfg(sub);
        let mut top = Dfg::new("top");
        let a = top.add_input("a");
        let call = top.add_hier(sub_id, "H", &[]);
        // connect with delay 1 (add_hier with no operands, wire manually)
        top.connect(a, call, 0, 1);
        top.add_output("y", top.hier_out(call, 0));
        let t = h.add_dfg(top);
        h.set_top(t);
        let cert = WidthCertificate::uniform(&h, 16);
        let inputs = vec![vec![7, 8, 9, 10, 11]];
        let got = certified_outputs(&h, &cert, &inputs, 16).unwrap();
        let want = reference_outputs(&h.flatten(), &inputs, 16);
        assert_eq!(got, want);
        assert_eq!(got, vec![vec![0, 0, 7, 8, 9]]);
    }
}
