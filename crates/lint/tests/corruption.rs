//! Deliberately corrupt schedules, bindings, and netlists and assert the
//! exact rule code fires. Legal designs must stay diagnostic-free — the
//! paranoid mode of the synthesis engine depends on that.

use hsyn_dfg::{Dfg, DfgId, Hierarchy, NodeId, Operation, VarRef};
use hsyn_lib::papers::{table1_library, TABLE1_CLOCK_NS};
use hsyn_lib::Library;
use hsyn_lint::{
    error_count, lint_hierarchy, verify_design, verify_design_with, DesignView, LintConfig,
    RuleCode, Severity,
};
use hsyn_rtl::{build, BuildCtx, ModuleSpec, RtlModule};

fn lib() -> Library {
    table1_library()
}

fn ctx(lib: &Library) -> BuildCtx<'_> {
    BuildCtx::new(lib, TABLE1_CLOCK_NS, lib.technology.vref(), Some(100))
}

fn view<'a>(h: &'a Hierarchy, module: &'a RtlModule, lib: &'a Library) -> DesignView<'a> {
    DesignView {
        hierarchy: h,
        module,
        lib,
        vdd: lib.technology.vref(),
        clk_ns: TABLE1_CLOCK_NS,
        sampling_period: Some(100),
    }
}

fn dedicated_build(h: &Hierarchy, dfg: DfgId, lib: &Library, name: &str) -> RtlModule {
    let spec = ModuleSpec::dedicated(
        h,
        dfg,
        name,
        |_, op| lib.fastest_for(op).expect("op implementable"),
        |_, _| unreachable!("leaf graph"),
    );
    build(h, &spec, &ctx(lib)).expect("legal spec builds")
}

fn codes(diags: &[hsyn_lint::Diagnostic]) -> Vec<RuleCode> {
    diags.iter().map(|d| d.code).collect()
}

/// y = (a*b) + (c*d): two parallel multipliers feeding an adder.
fn sop() -> (Hierarchy, DfgId, NodeId, NodeId, NodeId) {
    let mut g = Dfg::new("sop");
    let a = g.add_input("a");
    let b = g.add_input("b");
    let c = g.add_input("c");
    let d = g.add_input("d");
    let m1 = g.add_op(Operation::Mult, "m1", &[a, b]);
    let m2 = g.add_op(Operation::Mult, "m2", &[c, d]);
    let s = g.add_op(Operation::Add, "s", &[m1, m2]);
    g.add_output("y", s);
    let (m1, m2, s) = (m1.node, m2.node, s.node);
    let mut h = Hierarchy::new();
    let id = h.add_dfg(g);
    h.set_top(id);
    (h, id, m1, m2, s)
}

/// Two independent adds, scheduled concurrently on dedicated units.
fn parallel_adds() -> (Hierarchy, DfgId, NodeId, NodeId) {
    let mut g = Dfg::new("par");
    let a = g.add_input("a");
    let b = g.add_input("b");
    let c = g.add_input("c");
    let d = g.add_input("d");
    let s1 = g.add_op(Operation::Add, "s1", &[a, b]);
    let s2 = g.add_op(Operation::Add, "s2", &[c, d]);
    g.add_output("y1", s1);
    g.add_output("y2", s2);
    let (s1, s2) = (s1.node, s2.node);
    let mut h = Hierarchy::new();
    let id = h.add_dfg(g);
    h.set_top(id);
    (h, id, s1, s2)
}

#[test]
fn legal_design_is_diagnostic_free() {
    let lib = lib();
    let (h, id, ..) = sop();
    let module = dedicated_build(&h, id, &lib, "sop");
    let diags = verify_design(&view(&h, &module, &lib));
    assert!(diags.is_empty(), "clean design flagged: {diags:?}");
}

// --- DFG family ------------------------------------------------------------

#[test]
fn dfg001_dangling_edge() {
    let mut g = Dfg::new("bad");
    let a = g.add_input("a");
    let n = g.add_op_detached(Operation::Neg, "n");
    g.connect(a, n, 0, 0);
    // An edge whose source node does not exist.
    g.connect(VarRef::new(NodeId::from_index(99), 0), n, 0, 0);
    g.add_output("y", VarRef::new(n, 0));
    let mut h = Hierarchy::new();
    let id = h.add_dfg(g);
    h.set_top(id);
    let diags = lint_hierarchy(&h);
    assert!(codes(&diags).contains(&RuleCode::Dfg001), "{diags:?}");
}

#[test]
fn dfg002_undriven_port() {
    let mut g = Dfg::new("bad");
    let a = g.add_input("a");
    let n = g.add_op_detached(Operation::Add, "n");
    g.connect(a, n, 0, 0); // port 1 undriven
    g.add_output("y", VarRef::new(n, 0));
    let mut h = Hierarchy::new();
    let id = h.add_dfg(g);
    h.set_top(id);
    let diags = lint_hierarchy(&h);
    assert_eq!(codes(&diags), vec![RuleCode::Dfg002], "{diags:?}");
}

#[test]
fn dfg003_bad_source_port() {
    let mut g = Dfg::new("bad");
    let a = g.add_input("a");
    let n = g.add_op_detached(Operation::Neg, "n");
    g.connect(VarRef::new(a.node, 7), n, 0, 0); // inputs have one output port
    g.add_output("y", VarRef::new(n, 0));
    let mut h = Hierarchy::new();
    let id = h.add_dfg(g);
    h.set_top(id);
    let diags = lint_hierarchy(&h);
    assert!(codes(&diags).contains(&RuleCode::Dfg003), "{diags:?}");
}

#[test]
fn dfg004_combinational_cycle() {
    let mut g = Dfg::new("loop");
    let a = g.add_input("a");
    let n1 = g.add_op_detached(Operation::Add, "n1");
    let n2 = g.add_op_detached(Operation::Add, "n2");
    g.connect(a, n1, 0, 0);
    g.connect(VarRef::new(n2, 0), n1, 1, 0);
    g.connect(VarRef::new(n1, 0), n2, 0, 0);
    g.connect(a, n2, 1, 0);
    g.add_output("y", VarRef::new(n2, 0));
    let mut h = Hierarchy::new();
    let id = h.add_dfg(g);
    h.set_top(id);
    let diags = lint_hierarchy(&h);
    assert_eq!(codes(&diags), vec![RuleCode::Dfg004], "{diags:?}");
}

#[test]
fn dfg005_missing_top_and_collecting_all() {
    let h = Hierarchy::new();
    let diags = lint_hierarchy(&h);
    assert_eq!(codes(&diags), vec![RuleCode::Dfg005], "{diags:?}");
    assert_eq!(error_count(&diags), 1);
}

// --- SCH family ------------------------------------------------------------

/// Build against a relaxed twin graph (the data dependency is an
/// inter-iteration edge there), then point the behavior at the strict twin:
/// the schedule now violates the strict graph's precedence.
#[test]
fn sch002_data_precedence_violation() {
    let make = |delay: u32| {
        let mut g = Dfg::new(if delay == 0 { "strict" } else { "relaxed" });
        let a = g.add_input("a");
        let b = g.add_input("b");
        let m = g.add_op(Operation::Mult, "m", &[a, b]);
        let s = g.add_op_detached(Operation::Add, "s");
        g.connect(m, s, 0, delay);
        g.connect(a, s, 1, 0);
        g.add_output("y", VarRef::new(s, 0));
        g
    };
    let mut h = Hierarchy::new();
    let strict = h.add_dfg(make(0));
    let relaxed = h.add_dfg(make(1));
    h.set_top(strict);

    let lib = lib();
    let module = dedicated_build(&h, relaxed, &lib, "twin");
    // Retarget the behavior at the strict twin without rescheduling.
    let mut behavior = module.behaviors()[0].clone();
    behavior.dfg = strict;
    let tampered = RtlModule::new(
        "twin",
        module.fus().to_vec(),
        module.regs().to_vec(),
        vec![],
        vec![behavior],
    );
    let diags = verify_design(&view(&h, &tampered, &lib));
    assert!(codes(&diags).contains(&RuleCode::Sch002), "{diags:?}");
}

#[test]
fn sch003_serialization_violation() {
    let lib = lib();
    let (h, id, s1, s2) = parallel_adds();
    let module = dedicated_build(&h, id, &lib, "par");
    // Claim s1 and s2 were serialized on one resource; they overlap.
    let mut behavior = module.behaviors()[0].clone();
    behavior.serial.push((s1, s2));
    let tampered = RtlModule::new(
        "par",
        module.fus().to_vec(),
        module.regs().to_vec(),
        vec![],
        vec![behavior],
    );
    let diags = verify_design(&view(&h, &tampered, &lib));
    assert_eq!(codes(&diags), vec![RuleCode::Sch003], "{diags:?}");
}

#[test]
fn sch004_sampling_deadline_exceeded() {
    let lib = lib();
    let (h, id, ..) = sop();
    let module = dedicated_build(&h, id, &lib, "sop");
    let mut v = view(&h, &module, &lib);
    v.sampling_period = Some(1); // the multiplies alone need 3 cycles
    let diags = verify_design(&v);
    assert_eq!(codes(&diags), vec![RuleCode::Sch004], "{diags:?}");
}

#[test]
fn sch005_chaining_overflow() {
    let lib = lib();
    let (h, id, ..) = parallel_adds();
    let module = dedicated_build(&h, id, &lib, "par");
    // Lint against a shorter clock than the design was scheduled for: the
    // 3 ns adders no longer fit the 2 ns usable window.
    let mut v = view(&h, &module, &lib);
    v.clk_ns = lib.register.overhead_ns + 2.0;
    let diags = verify_design(&v);
    assert!(codes(&diags).contains(&RuleCode::Sch005), "{diags:?}");
    assert!(codes(&diags).iter().all(|&c| c == RuleCode::Sch005));
}

#[test]
fn sch001_schedule_graph_mismatch() {
    let lib = lib();
    let (h0, id0, ..) = sop();
    let module = dedicated_build(&h0, id0, &lib, "sop");
    // A hierarchy whose g0 has a different node count.
    let mut g = Dfg::new("other");
    let a = g.add_input("a");
    g.add_output("y", a);
    let mut h = Hierarchy::new();
    let id = h.add_dfg(g);
    h.set_top(id);
    let diags = verify_design(&view(&h, &module, &lib));
    assert!(codes(&diags).contains(&RuleCode::Sch001), "{diags:?}");
}

// --- RTL family ------------------------------------------------------------

#[test]
fn rtl001_missing_binding() {
    let lib = lib();
    let (h, id, m1, ..) = sop();
    let module = dedicated_build(&h, id, &lib, "sop");
    let mut behavior = module.behaviors()[0].clone();
    behavior.binding.op_to_fu.remove(&m1);
    let tampered = RtlModule::new(
        "sop",
        module.fus().to_vec(),
        module.regs().to_vec(),
        vec![],
        vec![behavior],
    );
    let diags = verify_design(&view(&h, &tampered, &lib));
    assert!(codes(&diags).contains(&RuleCode::Rtl001), "{diags:?}");
}

#[test]
fn rtl002_fu_double_booked() {
    let lib = lib();
    let (h, id, s1, s2) = parallel_adds();
    let module = dedicated_build(&h, id, &lib, "par");
    // Rebind the second add onto the first add's unit: both run in cycle 0.
    let mut behavior = module.behaviors()[0].clone();
    let fu_of_s1 = behavior.binding.op_to_fu[&s1];
    behavior.binding.op_to_fu.insert(s2, fu_of_s1);
    let tampered = RtlModule::new(
        "par",
        module.fus().to_vec(),
        module.regs().to_vec(),
        vec![],
        vec![behavior],
    );
    let diags = verify_design(&view(&h, &tampered, &lib));
    assert_eq!(codes(&diags), vec![RuleCode::Rtl002], "{diags:?}");
}

#[test]
fn rtl003_submodule_double_booked() {
    let lib = lib();
    // Callee: y = a + b.
    let mut h = Hierarchy::new();
    let mut callee = Dfg::new("leaf");
    let a = callee.add_input("a");
    let b = callee.add_input("b");
    let s = callee.add_op(Operation::Add, "s", &[a, b]);
    callee.add_output("y", s);
    let callee_id = h.add_dfg(callee);
    // Parent: two concurrent instantiations.
    let mut top = Dfg::new("top");
    let x = top.add_input("x");
    let y = top.add_input("y");
    let z = top.add_input("z");
    let w = top.add_input("w");
    let f1 = top.add_hier(callee_id, "f1", &[x, y]);
    let f2 = top.add_hier(callee_id, "f2", &[z, w]);
    let o1 = top.hier_out(f1, 0);
    let o2 = top.hier_out(f2, 0);
    top.add_output("o1", o1);
    top.add_output("o2", o2);
    let top_id = h.add_dfg(top);
    h.set_top(top_id);
    h.validate().expect("well-formed");

    let sub_module = dedicated_build(&h, callee_id, &lib, "leaf");
    let spec = ModuleSpec::dedicated(
        &h,
        top_id,
        "top",
        |_, op| lib.fastest_for(op).expect("implementable"),
        |_, _| sub_module.clone(),
    );
    let module = build(&h, &spec, &ctx(&lib)).expect("legal spec builds");
    let v = view(&h, &module, &lib);
    assert!(verify_design(&v).is_empty(), "clean hierarchical design");

    // Claim both hierarchical nodes run on submodule 0 concurrently.
    let mut behavior = module.behaviors()[0].clone();
    let sub_of_f1 = behavior.binding.hier_to_sub[&f1];
    behavior.binding.hier_to_sub.insert(f2, sub_of_f1);
    let tampered = RtlModule::new(
        "top",
        module.fus().to_vec(),
        module.regs().to_vec(),
        module.subs().to_vec(),
        vec![behavior],
    );
    let diags = verify_design(&view(&h, &tampered, &lib));
    assert_eq!(codes(&diags), vec![RuleCode::Rtl003], "{diags:?}");
}

#[test]
fn rtl004_undriven_mux_input() {
    let lib = lib();
    let (h, id, ..) = sop();
    let module = dedicated_build(&h, id, &lib, "sop");
    let mut behavior = module.behaviors()[0].clone();
    let victim = *behavior
        .binding
        .var_to_reg
        .keys()
        .min()
        .expect("sop stores values");
    behavior.binding.var_to_reg.remove(&victim);
    let tampered = RtlModule::new(
        "sop",
        module.fus().to_vec(),
        module.regs().to_vec(),
        vec![],
        vec![behavior],
    );
    let diags = verify_design(&view(&h, &tampered, &lib));
    assert_eq!(codes(&diags), vec![RuleCode::Rtl004], "{diags:?}");
}

#[test]
fn rtl005_incompatible_fu() {
    let lib = lib();
    let (h, id, m1, _, s) = sop();
    let module = dedicated_build(&h, id, &lib, "sop");
    // Swap the multiplier's and adder's instances.
    let mut behavior = module.behaviors()[0].clone();
    let fu_m = behavior.binding.op_to_fu[&m1];
    let fu_s = behavior.binding.op_to_fu[&s];
    behavior.binding.op_to_fu.insert(m1, fu_s);
    behavior.binding.op_to_fu.insert(s, fu_m);
    let tampered = RtlModule::new(
        "sop",
        module.fus().to_vec(),
        module.regs().to_vec(),
        vec![],
        vec![behavior],
    );
    let diags = verify_design(&view(&h, &tampered, &lib));
    assert!(codes(&diags).contains(&RuleCode::Rtl005), "{diags:?}");
}

#[test]
fn rtl007_register_lifetime_overlap() {
    let lib = lib();
    let (h, id, ..) = sop();
    let module = dedicated_build(&h, id, &lib, "sop");
    // Cram every stored value into register 0: the two concurrent
    // multiplier results collide.
    let mut behavior = module.behaviors()[0].clone();
    let r0 = hsyn_rtl::RegId::from_index(0);
    for r in behavior.binding.var_to_reg.values_mut() {
        *r = r0;
    }
    let tampered = RtlModule::new(
        "sop",
        module.fus().to_vec(),
        module.regs().to_vec(),
        vec![],
        vec![behavior],
    );
    let diags = verify_design(&view(&h, &tampered, &lib));
    assert!(codes(&diags).contains(&RuleCode::Rtl007), "{diags:?}");
    assert!(codes(&diags).iter().all(|&c| c == RuleCode::Rtl007));
}

// --- PWR family ------------------------------------------------------------

#[test]
fn pwr001_vdd_out_of_range() {
    let lib = lib();
    let (h, id, ..) = sop();
    let module = dedicated_build(&h, id, &lib, "sop");
    let mut v = view(&h, &module, &lib);
    v.vdd = 0.5; // below the 0.8 V threshold
    let diags = verify_design(&v);
    assert_eq!(codes(&diags), vec![RuleCode::Pwr001], "{diags:?}");
    assert_eq!(diags[0].severity, Severity::Error);

    v.vdd = lib.technology.vref() + 2.0; // above characterization
    let diags = verify_design(&v);
    assert_eq!(codes(&diags), vec![RuleCode::Pwr001], "{diags:?}");
    assert_eq!(diags[0].severity, Severity::Warning);
    assert_eq!(error_count(&diags), 0);
}

#[test]
fn pwr002_clock_below_overhead() {
    let lib = lib();
    let (h, id, ..) = sop();
    let module = dedicated_build(&h, id, &lib, "sop");
    let mut v = view(&h, &module, &lib);
    v.clk_ns = lib.register.overhead_ns * 0.5;
    let diags = verify_design(&v);
    assert!(codes(&diags).contains(&RuleCode::Pwr002), "{diags:?}");
}

// --- Suppression -----------------------------------------------------------

#[test]
fn suppressed_rules_do_not_fire() {
    let lib = lib();
    let (h, id, s1, s2) = parallel_adds();
    let module = dedicated_build(&h, id, &lib, "par");
    let mut behavior = module.behaviors()[0].clone();
    behavior.serial.push((s1, s2));
    let tampered = RtlModule::new(
        "par",
        module.fus().to_vec(),
        module.regs().to_vec(),
        vec![],
        vec![behavior],
    );
    let v = view(&h, &tampered, &lib);
    assert!(!verify_design(&v).is_empty());
    let cfg = LintConfig::new().allow(RuleCode::Sch003);
    assert!(verify_design_with(&v, &cfg).is_empty());
}
