//! The rule implementations behind [`verify_design`] and
//! [`lint_hierarchy`].
//!
//! Every check is read-only and re-derives the invariant it guards from
//! scratch (e.g. register lifetimes come from a fresh
//! [`storage_analysis`], not from anything the builder cached), so a stale
//! or hand-tampered IR cannot satisfy a rule by construction.

use crate::{Diagnostic, LintConfig, Location, RuleCode, Severity};
use hsyn_dfg::{Dfg, Hierarchy, HierarchyError, NodeId, NodeKind};
use hsyn_lib::Library;
use hsyn_rtl::{storage_analysis, Behavior, RtlModule};
use std::collections::BTreeMap;

/// Everything the verifier needs to see of a synthesized design: the
/// behavioral hierarchy, the built RTL module tree, the library the design
/// was built against, and its operating point.
///
/// Schedules are expressed in reference-voltage time throughout the
/// synthesis engine, so `clk_ns` must be the *reference* clock period (the
/// engine's `clk_ref_ns`), not the voltage-stretched physical period;
/// `vdd` is the operating supply voltage the `PWR0xx` rules validate.
#[derive(Clone, Copy, Debug)]
pub struct DesignView<'a> {
    /// The behavioral hierarchy the module tree implements.
    pub hierarchy: &'a Hierarchy,
    /// The top RTL module.
    pub module: &'a RtlModule,
    /// The simple-module library the design was built against.
    pub lib: &'a Library,
    /// Operating supply voltage, V.
    pub vdd: f64,
    /// Clock period at the reference voltage, ns.
    pub clk_ns: f64,
    /// Sampling-period deadline in cycles for the top module's behaviors
    /// (`None` disables the `SCH004` deadline check; nested modules are
    /// always checked against their parent's schedule instead).
    pub sampling_period: Option<u32>,
}

/// Diagnostic accumulator honoring the suppression config.
struct Sink<'a> {
    cfg: &'a LintConfig,
    diags: Vec<Diagnostic>,
}

impl Sink<'_> {
    fn emit(&mut self, code: RuleCode, severity: Severity, location: Location, message: String) {
        if self.cfg.enabled(code) {
            self.diags.push(Diagnostic {
                code,
                severity,
                location,
                message,
            });
        }
    }
}

/// Verify a full design with every rule enabled.
///
/// Returns all diagnostics, deterministically ordered (power rules, then
/// hierarchy rules, then per-module rules walking the module tree
/// depth-first). A legal design yields an empty vector.
pub fn verify_design(view: &DesignView<'_>) -> Vec<Diagnostic> {
    verify_design_with(view, &LintConfig::default())
}

/// Verify a full design under a suppression config.
pub fn verify_design_with(view: &DesignView<'_>, cfg: &LintConfig) -> Vec<Diagnostic> {
    let mut sink = Sink {
        cfg,
        diags: Vec::new(),
    };
    check_power(view, &mut sink);
    for e in view.hierarchy.check_all() {
        emit_hierarchy_error(&e, &mut sink);
    }
    check_module(
        view,
        view.module,
        view.module.name(),
        view.sampling_period,
        &mut sink,
    );
    sink.diags
}

/// Lint a bare behavioral description (the `DFG0xx` family only).
pub fn lint_hierarchy(h: &Hierarchy) -> Vec<Diagnostic> {
    lint_hierarchy_with(h, &LintConfig::default())
}

/// Lint a bare behavioral description under a suppression config.
pub fn lint_hierarchy_with(h: &Hierarchy, cfg: &LintConfig) -> Vec<Diagnostic> {
    let mut sink = Sink {
        cfg,
        diags: Vec::new(),
    };
    for e in h.check_all() {
        emit_hierarchy_error(&e, &mut sink);
    }
    sink.diags
}

/// Map a structural [`HierarchyError`] onto the stable `DFG0xx` codes.
fn emit_hierarchy_error(e: &HierarchyError, sink: &mut Sink<'_>) {
    let (code, dfg, node) = match e {
        HierarchyError::DanglingEdge { dfg, .. } => (RuleCode::Dfg001, Some(*dfg), None),
        HierarchyError::BadPortDrive { dfg, node, .. } => {
            (RuleCode::Dfg002, Some(*dfg), Some(*node))
        }
        HierarchyError::BadSourcePort { dfg, node, .. } => {
            (RuleCode::Dfg003, Some(*dfg), Some(*node))
        }
        HierarchyError::CombinationalCycle { dfg } => (RuleCode::Dfg004, Some(*dfg), None),
        HierarchyError::NoTop => (RuleCode::Dfg005, None, None),
        HierarchyError::DanglingCallee { dfg, node } => (RuleCode::Dfg005, Some(*dfg), Some(*node)),
        HierarchyError::RecursiveHierarchy { dfg } => (RuleCode::Dfg005, Some(*dfg), None),
    };
    sink.emit(
        code,
        Severity::Error,
        Location {
            dfg,
            node,
            ..Location::default()
        },
        e.to_string(),
    );
}

/// `PWR001`/`PWR002`: the operating point must lie inside the range the
/// technology's delay and energy models are calibrated for.
fn check_power(view: &DesignView<'_>, sink: &mut Sink<'_>) {
    let tech = &view.lib.technology;
    if view.vdd <= tech.vt() {
        sink.emit(
            RuleCode::Pwr001,
            Severity::Error,
            Location::default(),
            format!(
                "supply voltage {} V is at or below the threshold voltage {} V: the delay model is undefined there",
                view.vdd,
                tech.vt()
            ),
        );
    } else if view.vdd > tech.vref() + 1e-9 {
        sink.emit(
            RuleCode::Pwr001,
            Severity::Warning,
            Location::default(),
            format!(
                "supply voltage {} V exceeds the characterization voltage {} V: energies are extrapolated",
                view.vdd,
                tech.vref()
            ),
        );
    }
    let overhead = view.lib.register.overhead_ns;
    if view.clk_ns <= overhead {
        sink.emit(
            RuleCode::Pwr002,
            Severity::Error,
            Location::default(),
            format!(
                "clock period {} ns does not exceed the register overhead {} ns: no usable compute time per cycle",
                view.clk_ns, overhead
            ),
        );
    }
}

/// Check one module's behaviors, then recurse into its submodules. The
/// sampling deadline only applies at the level it was given for (the top).
fn check_module(
    view: &DesignView<'_>,
    module: &RtlModule,
    path: &str,
    sampling: Option<u32>,
    sink: &mut Sink<'_>,
) {
    for behavior in module.behaviors() {
        check_behavior(view, module, path, behavior, sampling, sink);
    }
    for sub in module.subs() {
        let sub_path = format!("{path}/{}", sub.name());
        check_module(view, sub, &sub_path, None, sink);
    }
}

fn check_behavior(
    view: &DesignView<'_>,
    module: &RtlModule,
    path: &str,
    b: &Behavior,
    sampling: Option<u32>,
    sink: &mut Sink<'_>,
) {
    let at = |node: Option<NodeId>, cycle: Option<u32>, instance: Option<String>| Location {
        module: Some(path.to_owned()),
        dfg: Some(b.dfg),
        node,
        cycle,
        instance,
    };

    if b.dfg.index() >= view.hierarchy.dfg_count() {
        sink.emit(
            RuleCode::Rtl001,
            Severity::Error,
            Location {
                module: Some(path.to_owned()),
                ..Location::default()
            },
            format!(
                "behavior references {} which is not in the hierarchy",
                b.dfg
            ),
        );
        return;
    }
    let g = view.hierarchy.dfg(b.dfg);
    let n = g.node_count();

    // Binding completeness (`RTL001`) and FU compatibility (`RTL005`) need
    // no schedule, so they run even when the schedule is unusable.
    check_binding(view, module, g, b, &at, sink);

    // `SCH001`: everything downstream indexes the schedule by node id, so a
    // schedule covering the wrong node count invalidates all of it.
    if b.schedule.times().len() != n {
        sink.emit(
            RuleCode::Sch001,
            Severity::Error,
            at(None, None, None),
            format!(
                "schedule covers {} nodes but the graph has {n}",
                b.schedule.times().len()
            ),
        );
        return;
    }
    // Guard against edges/serialization naming out-of-range nodes before
    // touching the schedule with them (`DFG001` owns the edge case).
    if g.edges()
        .any(|(_, e)| e.to.index() >= n || e.from.node.index() >= n)
    {
        return;
    }

    let usable = view.clk_ns - view.lib.register.overhead_ns;

    // `SCH005`: chained combinational paths must fit the usable period.
    if usable > 0.0 {
        for (nid, _) in g.nodes() {
            let t = b.schedule.time(nid);
            let worst = t.result.ns.max(t.start.ns);
            if worst > usable + 1e-6 {
                sink.emit(
                    RuleCode::Sch005,
                    Severity::Error,
                    at(Some(nid), Some(t.result.cycle), None),
                    format!(
                        "chained path through {nid} accumulates {worst:.3} ns, over the usable {usable:.3} ns",
                    ),
                );
            }
        }
    }

    // `SCH002`: every zero-delay data edge must be satisfied — the value
    // ready no later than its consumer starts (profiled consumers latch
    // each input at `start + profile offset`).
    for (_, e) in g.edges() {
        if e.delay != 0 {
            continue;
        }
        match g.node(e.to).kind() {
            NodeKind::Op(_) | NodeKind::Output { .. } => {
                let avail = b.schedule.result_tick_of_port(e.from.node, e.from.port);
                let start = b.schedule.time(e.to).start;
                if avail > start {
                    sink.emit(
                        RuleCode::Sch002,
                        Severity::Error,
                        at(Some(e.to), Some(start.cycle), None),
                        format!(
                            "{} consumes {} at {start}, before it is ready at {avail}",
                            e.to, e.from
                        ),
                    );
                }
            }
            NodeKind::Hier { callee } => {
                // The submodule latches input `port` at start + offset.
                let profile = b
                    .binding
                    .hier_to_sub
                    .get(&e.to)
                    .filter(|s| s.index() < module.subs().len())
                    .and_then(|s| module.subs()[s.index()].profile_for(*callee));
                let Some(profile) = profile else {
                    continue; // RTL001 already reported the broken binding
                };
                let offset = profile.inputs.get(e.to_port as usize).copied().unwrap_or(0);
                let need = b.schedule.time(e.to).start.cycle + offset;
                let avail = b.schedule.result_cycle_of_port(e.from.node, e.from.port);
                if avail > need {
                    sink.emit(
                        RuleCode::Sch002,
                        Severity::Error,
                        at(Some(e.to), Some(need), None),
                        format!(
                            "{} needs {} by cycle {need} (start + profile offset {offset}) but it is ready in cycle {avail}",
                            e.to, e.from
                        ),
                    );
                }
            }
            _ => {}
        }
    }

    // `SCH003`: a serialization edge `(a, b)` means `b` must not start
    // before `a` releases the shared resource.
    for &(a, bnode) in &b.serial {
        if a.index() >= n || bnode.index() >= n {
            sink.emit(
                RuleCode::Sch001,
                Severity::Error,
                at(None, None, None),
                format!("serialization edge ({a}, {bnode}) names a node outside the graph"),
            );
            continue;
        }
        let release = b.schedule.time(a).occupied.1;
        let start = b.schedule.time(bnode).start.cycle;
        if start < release {
            sink.emit(
                RuleCode::Sch003,
                Severity::Error,
                at(Some(bnode), Some(start), None),
                format!(
                    "{bnode} starts in cycle {start}, before serialized predecessor {a} releases its resource at cycle {release}",
                ),
            );
        }
    }

    // `SCH004`: the top-level behavior must complete within the sampling
    // period.
    if let Some(p) = sampling {
        let makespan = b.schedule.makespan();
        if makespan > p {
            sink.emit(
                RuleCode::Sch004,
                Severity::Error,
                at(None, Some(makespan), None),
                format!(
                    "activity runs to cycle {makespan}, past the sampling period of {p} cycles"
                ),
            );
        }
    }

    // `RTL002`/`RTL003`: two users of one hardware instance must occupy
    // disjoint cycle ranges.
    check_resource_conflicts(module, g, b, &at, sink);

    // `RTL004`/`RTL007`: storage. Re-derive lifetimes from the schedule and
    // check the register binding against them.
    let sa = storage_analysis(g, &b.schedule);
    for &v in &sa.stored_vars {
        match b.binding.var_to_reg.get(&v) {
            None => {
                let (birth, _, _) = sa.lifetimes[&v];
                sink.emit(
                    RuleCode::Rtl004,
                    Severity::Error,
                    at(Some(v.node), Some(birth), None),
                    format!(
                        "value {v} must be stored but has no register: its consumers' mux inputs are undriven",
                    ),
                );
            }
            Some(r) if r.index() >= module.regs().len() => {
                sink.emit(
                    RuleCode::Rtl004,
                    Severity::Error,
                    at(Some(v.node), None, None),
                    format!("value {v} is bound to nonexistent register {r}"),
                );
            }
            Some(_) => {}
        }
    }
    let mut by_reg: BTreeMap<usize, Vec<hsyn_dfg::VarRef>> = BTreeMap::new();
    for (&v, &r) in &b.binding.var_to_reg {
        if r.index() < module.regs().len() && sa.lifetimes.contains_key(&v) {
            by_reg.entry(r.index()).or_default().push(v);
        }
    }
    for (reg, mut vars) in by_reg {
        vars.sort();
        for i in 0..vars.len() {
            for j in (i + 1)..vars.len() {
                if sa.conflicts(vars[i], vars[j]) {
                    let name = module.regs()[reg].name.clone();
                    sink.emit(
                        RuleCode::Rtl007,
                        Severity::Error,
                        at(Some(vars[i].node), None, Some(name)),
                        format!(
                            "values {} and {} share a register but their lifetimes overlap",
                            vars[i], vars[j]
                        ),
                    );
                }
            }
        }
    }
}

/// `RTL001`/`RTL005`: every schedulable node needs exactly the hardware its
/// binding claims, and that hardware must be able to execute it.
fn check_binding(
    view: &DesignView<'_>,
    module: &RtlModule,
    g: &Dfg,
    b: &Behavior,
    at: &dyn Fn(Option<NodeId>, Option<u32>, Option<String>) -> Location,
    sink: &mut Sink<'_>,
) {
    for (nid, node) in g.nodes() {
        match node.kind() {
            NodeKind::Op(op) => match b.binding.op_to_fu.get(&nid) {
                None => sink.emit(
                    RuleCode::Rtl001,
                    Severity::Error,
                    at(Some(nid), None, None),
                    format!("operation {nid} ({op}) has no functional-unit binding"),
                ),
                Some(fu) if fu.index() >= module.fus().len() => sink.emit(
                    RuleCode::Rtl001,
                    Severity::Error,
                    at(Some(nid), None, None),
                    format!("operation {nid} is bound to nonexistent functional unit {fu}"),
                ),
                Some(fu) => {
                    let inst = &module.fus()[fu.index()];
                    if inst.fu_type.index() >= view.lib.fu_count() {
                        sink.emit(
                            RuleCode::Rtl005,
                            Severity::Error,
                            at(Some(nid), None, Some(inst.name.clone())),
                            format!(
                                "functional unit {} has a type outside the library",
                                inst.name
                            ),
                        );
                    } else if !view.lib.fu(inst.fu_type).supports(*op) {
                        sink.emit(
                            RuleCode::Rtl005,
                            Severity::Error,
                            at(Some(nid), None, Some(inst.name.clone())),
                            format!(
                                "operation {nid} ({op}) is bound to {} ({}), which cannot execute it",
                                inst.name,
                                view.lib.fu(inst.fu_type).name()
                            ),
                        );
                    }
                }
            },
            NodeKind::Hier { callee } => match b.binding.hier_to_sub.get(&nid) {
                None => sink.emit(
                    RuleCode::Rtl001,
                    Severity::Error,
                    at(Some(nid), None, None),
                    format!("hierarchical node {nid} has no submodule binding"),
                ),
                Some(s) if s.index() >= module.subs().len() => sink.emit(
                    RuleCode::Rtl001,
                    Severity::Error,
                    at(Some(nid), None, None),
                    format!("hierarchical node {nid} is bound to nonexistent submodule {s}"),
                ),
                Some(s) => {
                    let sub = &module.subs()[s.index()];
                    if sub.behavior_for(*callee).is_none() {
                        sink.emit(
                            RuleCode::Rtl001,
                            Severity::Error,
                            at(Some(nid), None, Some(sub.name().to_owned())),
                            format!(
                                "submodule {} has no behavior for the callee of {nid}",
                                sub.name()
                            ),
                        );
                    }
                }
            },
            _ => {}
        }
    }
}

/// `RTL002`/`RTL003`: occupied-interval overlap between two users of one
/// hardware instance.
fn check_resource_conflicts(
    module: &RtlModule,
    g: &Dfg,
    b: &Behavior,
    at: &dyn Fn(Option<NodeId>, Option<u32>, Option<String>) -> Location,
    sink: &mut Sink<'_>,
) {
    let overlap = |x: (u32, u32), y: (u32, u32)| x.0.max(y.0) < x.1.min(y.1);

    let mut by_fu: BTreeMap<usize, Vec<NodeId>> = BTreeMap::new();
    for (&nid, &fu) in &b.binding.op_to_fu {
        if fu.index() < module.fus().len() && nid.index() < g.node_count() {
            by_fu.entry(fu.index()).or_default().push(nid);
        }
    }
    for (fu, mut nodes) in by_fu {
        nodes.sort();
        for i in 0..nodes.len() {
            for j in (i + 1)..nodes.len() {
                let ta = b.schedule.time(nodes[i]).occupied;
                let tb = b.schedule.time(nodes[j]).occupied;
                if overlap(ta, tb) {
                    let name = module.fus()[fu].name.clone();
                    sink.emit(
                        RuleCode::Rtl002,
                        Severity::Error,
                        at(Some(nodes[j]), Some(ta.0.max(tb.0)), Some(name.clone())),
                        format!(
                            "functional unit {name} executes {} (cycles {}..{}) and {} (cycles {}..{}) concurrently",
                            nodes[i], ta.0, ta.1, nodes[j], tb.0, tb.1
                        ),
                    );
                }
            }
        }
    }

    let mut by_sub: BTreeMap<usize, Vec<NodeId>> = BTreeMap::new();
    for (&nid, &s) in &b.binding.hier_to_sub {
        if s.index() < module.subs().len() && nid.index() < g.node_count() {
            by_sub.entry(s.index()).or_default().push(nid);
        }
    }
    for (si, mut nodes) in by_sub {
        nodes.sort();
        for i in 0..nodes.len() {
            for j in (i + 1)..nodes.len() {
                let ta = b.schedule.time(nodes[i]).occupied;
                let tb = b.schedule.time(nodes[j]).occupied;
                if overlap(ta, tb) {
                    let name = module.subs()[si].name().to_owned();
                    sink.emit(
                        RuleCode::Rtl003,
                        Severity::Error,
                        at(Some(nodes[j]), Some(ta.0.max(tb.0)), Some(name.clone())),
                        format!(
                            "submodule {name} executes {} (cycles {}..{}) and {} (cycles {}..{}) concurrently",
                            nodes[i], ta.0, ta.1, nodes[j], tb.0, tb.1
                        ),
                    );
                }
            }
        }
    }
}
