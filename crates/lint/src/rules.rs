//! The rule implementations behind [`verify_design`] and
//! [`lint_hierarchy`].
//!
//! Every check is read-only and re-derives the invariant it guards from
//! scratch (e.g. register lifetimes come from a fresh
//! [`storage_analysis`], not from anything the builder cached), so a stale
//! or hand-tampered IR cannot satisfy a rule by construction.

use crate::{Diagnostic, LintConfig, Location, RuleCode, Severity};
use hsyn_dataflow::{analyze_hierarchy, AbstractValue};
use hsyn_dfg::{Dfg, DfgId, Hierarchy, HierarchyError, MemScope, NodeId, NodeKind, Operation};
use hsyn_lib::Library;
use hsyn_rtl::{storage_analysis, Behavior, RtlModule};
use std::collections::BTreeMap;

/// Everything the verifier needs to see of a synthesized design: the
/// behavioral hierarchy, the built RTL module tree, the library the design
/// was built against, and its operating point.
///
/// Schedules are expressed in reference-voltage time throughout the
/// synthesis engine, so `clk_ns` must be the *reference* clock period (the
/// engine's `clk_ref_ns`), not the voltage-stretched physical period;
/// `vdd` is the operating supply voltage the `PWR0xx` rules validate.
#[derive(Clone, Copy, Debug)]
pub struct DesignView<'a> {
    /// The behavioral hierarchy the module tree implements.
    pub hierarchy: &'a Hierarchy,
    /// The top RTL module.
    pub module: &'a RtlModule,
    /// The simple-module library the design was built against.
    pub lib: &'a Library,
    /// Operating supply voltage, V.
    pub vdd: f64,
    /// Clock period at the reference voltage, ns.
    pub clk_ns: f64,
    /// Sampling-period deadline in cycles for the top module's behaviors
    /// (`None` disables the `SCH004` deadline check; nested modules are
    /// always checked against their parent's schedule instead).
    pub sampling_period: Option<u32>,
}

/// Diagnostic accumulator honoring the suppression config.
struct Sink<'a> {
    cfg: &'a LintConfig,
    diags: Vec<Diagnostic>,
}

impl Sink<'_> {
    fn emit(&mut self, code: RuleCode, severity: Severity, location: Location, message: String) {
        if self.cfg.enabled(code) {
            self.diags.push(Diagnostic {
                code,
                severity,
                location,
                message,
            });
        }
    }
}

/// Verify a full design with every rule enabled.
///
/// Returns all diagnostics, deterministically ordered (power rules, then
/// hierarchy rules, then per-module rules walking the module tree
/// depth-first). A legal design yields an empty vector.
pub fn verify_design(view: &DesignView<'_>) -> Vec<Diagnostic> {
    verify_design_with(view, &LintConfig::default())
}

/// Verify a full design under a suppression config.
pub fn verify_design_with(view: &DesignView<'_>, cfg: &LintConfig) -> Vec<Diagnostic> {
    let mut sink = Sink {
        cfg,
        diags: Vec::new(),
    };
    check_power(view, &mut sink);
    let hier_errors = view.hierarchy.check_all();
    for e in &hier_errors {
        emit_hierarchy_error(e, &mut sink);
    }
    // Memory-usage rules assume validated memory structure (binds resolve,
    // references are in range), so they run only on a clean hierarchy.
    if hier_errors.is_empty() {
        check_memory(view.hierarchy, &mut sink);
    }
    check_module(
        view,
        view.module,
        view.module.name(),
        view.sampling_period,
        &mut sink,
    );
    sink.diags
}

/// Lint a bare behavioral description (the `DFG0xx` family only).
pub fn lint_hierarchy(h: &Hierarchy) -> Vec<Diagnostic> {
    lint_hierarchy_with(h, &LintConfig::default())
}

/// Lint a bare behavioral description under a suppression config.
pub fn lint_hierarchy_with(h: &Hierarchy, cfg: &LintConfig) -> Vec<Diagnostic> {
    let mut sink = Sink {
        cfg,
        diags: Vec::new(),
    };
    for e in h.check_all() {
        emit_hierarchy_error(&e, &mut sink);
    }
    let clean = sink.diags.is_empty() && h.check_all().is_empty();
    // Memory-usage rules assume validated memory structure.
    if clean {
        check_memory(h, &mut sink);
    }
    // Dataflow rules need a structurally valid hierarchy (the abstract
    // interpreter assumes one) and are skipped entirely when every DFA rule
    // is suppressed, so a plain structural lint pays nothing for them.
    let dfa = [
        RuleCode::Dfa001,
        RuleCode::Dfa002,
        RuleCode::Dfa003,
        RuleCode::Dfa004,
    ];
    if clean && dfa.iter().any(|&c| cfg.enabled(c)) {
        check_dataflow(h, &mut sink);
    }
    sink.diags
}

/// Datapath width the `DFA0xx` rules analyze at. Facts proven at this width
/// hold at any width ≥ it for the constant/dead/decided rules; `DFA004`'s
/// "fits in half the datapath" claim is specific to this width and says so
/// in its message.
pub const DATAFLOW_LINT_WIDTH: u32 = 16;

/// The `DFA0xx` family: run the abstract interpreter over the hierarchy and
/// report facts a designer would want to act on. All findings are
/// [`Severity::Warning`] — the design is legal, just wasteful.
fn check_dataflow(h: &Hierarchy, sink: &mut Sink<'_>) {
    let Ok(analysis) = analyze_hierarchy(h, DATAFLOW_LINT_WIDTH) else {
        return; // structural rules already reported why
    };
    let w = DATAFLOW_LINT_WIDTH;
    let at = |dfg: DfgId, node: NodeId| Location {
        dfg: Some(dfg),
        node: Some(node),
        ..Location::default()
    };
    for (dfg_id, g) in h.dfgs() {
        let facts = analysis.facts(dfg_id);
        let adj = g.adj();
        // A zero-delay operand whose producer fact is a singleton interval
        // is a compile-time constant. Delayed operands join with the reset
        // value, so they are conservatively treated as unknown here.
        let const_operand = |node: NodeId, port: u16| -> Option<i64> {
            let e = g.edge(adj.driver_edge(node, port)?);
            if e.delay != 0 {
                return None;
            }
            let v = facts.value(e.from.node, e.from.port)?;
            (v.range.lo == v.range.hi).then_some(v.range.lo)
        };
        let operand_range = |node: NodeId, port: u16| -> Option<AbstractValue> {
            let e = g.edge(adj.driver_edge(node, port)?);
            if e.delay != 0 {
                return None;
            }
            facts.value(e.from.node, e.from.port)
        };
        for (nid, node) in g.nodes() {
            // `DFA002`: output ports nothing downstream of a design output
            // ever reads. Inputs are interface contracts and outputs have no
            // out-ports, so only Op/Const/Hier nodes are eligible.
            if matches!(
                node.kind(),
                NodeKind::Op(_) | NodeKind::Const { .. } | NodeKind::Hier { .. }
            ) {
                for p in 0..facts.port_count(nid) as u16 {
                    if !facts.live(nid, p) {
                        sink.emit(
                            RuleCode::Dfa002,
                            Severity::Warning,
                            at(dfg_id, nid),
                            format!(
                                "output port {p} of {nid} is dead: no design output depends on it"
                            ),
                        );
                    }
                }
            }
            let NodeKind::Op(op) = node.kind() else {
                continue;
            };
            let op = *op;
            let arity = op.arity() as u16;
            let consts: Vec<Option<i64>> = (0..arity).map(|p| const_operand(nid, p)).collect();
            let all_const = !consts.is_empty() && consts.iter().all(Option::is_some);

            // `DFA001`: every operand is a known constant, so the whole
            // operation folds at compile time.
            if all_const {
                let folded = op.eval(&consts.iter().map(|c| c.unwrap()).collect::<Vec<_>>(), w);
                sink.emit(
                    RuleCode::Dfa001,
                    Severity::Warning,
                    at(dfg_id, nid),
                    format!(
                        "{nid} ({op}) has only constant operands and always computes {folded}: fold it to a constant"
                    ),
                );
                continue; // the remaining rules would restate the same fact
            }

            // `DFA003`: a comparison or select whose operand ranges cannot
            // overlap always takes the same arm.
            if matches!(op, Operation::Lt | Operation::Max | Operation::Min) {
                if let (Some(a), Some(b)) = (operand_range(nid, 0), operand_range(nid, 1)) {
                    let decided = if a.range.hi < b.range.lo {
                        Some("the left operand is always smaller")
                    } else if b.range.hi < a.range.lo {
                        Some("the right operand is always smaller")
                    } else {
                        None
                    };
                    if let Some(why) = decided {
                        sink.emit(
                            RuleCode::Dfa003,
                            Severity::Warning,
                            at(dfg_id, nid),
                            format!(
                                "{nid} ({op}) is statically decided: operand ranges [{}, {}] and [{}, {}] are disjoint, {why}",
                                a.range.lo, a.range.hi, b.range.lo, b.range.hi
                            ),
                        );
                    }
                }
            }

            // `DFA004`: arithmetic whose result provably fits in half the
            // datapath — a candidate for a narrower functional unit.
            if matches!(
                op,
                Operation::Add | Operation::Sub | Operation::Mult | Operation::Shl | Operation::Neg
            ) {
                if let Some(v) = facts.value(nid, 0) {
                    let need = v.width_bits(w);
                    if need <= w / 2 {
                        sink.emit(
                            RuleCode::Dfa004,
                            Severity::Warning,
                            at(dfg_id, nid),
                            format!(
                                "{nid} ({op}) provably fits in {need} of {w} bits: overflow is impossible at half width"
                            ),
                        );
                    }
                }
            }
        }
    }
}

/// Map a structural [`HierarchyError`] onto the stable `DFG0xx` codes.
fn emit_hierarchy_error(e: &HierarchyError, sink: &mut Sink<'_>) {
    let (code, dfg, node) = match e {
        HierarchyError::DanglingEdge { dfg, .. } => (RuleCode::Dfg001, Some(*dfg), None),
        HierarchyError::BadPortDrive { dfg, node, .. } => {
            (RuleCode::Dfg002, Some(*dfg), Some(*node))
        }
        HierarchyError::BadSourcePort { dfg, node, .. } => {
            (RuleCode::Dfg003, Some(*dfg), Some(*node))
        }
        HierarchyError::CombinationalCycle { dfg } => (RuleCode::Dfg004, Some(*dfg), None),
        HierarchyError::NoTop => (RuleCode::Dfg005, None, None),
        HierarchyError::DanglingCallee { dfg, node } => (RuleCode::Dfg005, Some(*dfg), Some(*node)),
        HierarchyError::RecursiveHierarchy { dfg } => (RuleCode::Dfg005, Some(*dfg), None),
        HierarchyError::DanglingMem { dfg, node } => (RuleCode::Dfg006, Some(*dfg), Some(*node)),
        HierarchyError::BadMemBind { dfg, node, .. } => (RuleCode::Dfg006, Some(*dfg), Some(*node)),
        HierarchyError::IncompatibleMemBind { dfg, node, .. } => {
            (RuleCode::Dfg006, Some(*dfg), Some(*node))
        }
        HierarchyError::UnboundExternalMem { dfg } => (RuleCode::Dfg006, Some(*dfg), None),
        HierarchyError::MemoryOrderCycle { dfg } => (RuleCode::Dfg006, Some(*dfg), None),
    };
    sink.emit(
        code,
        Severity::Error,
        Location {
            dfg,
            node,
            ..Location::default()
        },
        e.to_string(),
    );
}

/// `MEM001`/`MEM002`: memory-usage facts over a structurally valid
/// hierarchy.
///
/// `MEM001` flags an access whose constant address lies outside
/// `[0, words)` — legal (evaluation wraps modulo the word count) but almost
/// always an indexing bug. `MEM002` flags an owned memory that is written
/// but never read *anywhere*: loads through every callee the bank is shared
/// with (transitively, via call-interface binds) count as reads.
fn check_memory(h: &Hierarchy, sink: &mut Sink<'_>) {
    // MEM001: constant addresses against the word range, per access node.
    for (did, g) in h.dfgs() {
        for (nid, node) in g.nodes() {
            let mem = match node.kind() {
                NodeKind::Load { mem } | NodeKind::Store { mem } => *mem,
                _ => continue,
            };
            // `hsyn_dfg::const_address` pre-wraps modulo the word count
            // (what evaluation and banking want); the lint needs the raw
            // literal to see that the author wrote an out-of-range index.
            let Some(e) = g.driver(nid, 0) else { continue };
            let NodeKind::Const { value: addr } = *g.node(e.from.node).kind() else {
                continue;
            };
            if e.delay != 0 {
                continue;
            }
            let m = g.mem(mem);
            let words = i64::from(m.words.max(1));
            if addr < 0 || addr >= words {
                sink.emit(
                    RuleCode::Mem001,
                    Severity::Warning,
                    Location {
                        dfg: Some(did),
                        node: Some(nid),
                        instance: Some(m.name.clone()),
                        ..Location::default()
                    },
                    format!(
                        "{nid} addresses word {addr} of `{}` which has {words} words: evaluation wraps to {}",
                        m.name,
                        addr.rem_euclid(words)
                    ),
                );
            }
        }
    }

    // MEM002: aggregate load/store counts per memory, resolving callee
    // accesses to external memories onto the parent banks they bind to.
    let mut memo: Vec<Option<Vec<(u64, u64)>>> = vec![None; h.dfg_count()];
    for (did, g) in h.dfgs() {
        let usage = mem_usage(h, did, &mut memo).to_vec();
        for ((mid, m), (loads, stores)) in g.mems().zip(usage) {
            if matches!(m.scope, MemScope::Owned) && stores > 0 && loads == 0 {
                sink.emit(
                    RuleCode::Mem002,
                    Severity::Warning,
                    Location {
                        dfg: Some(did),
                        instance: Some(m.name.clone()),
                        ..Location::default()
                    },
                    format!(
                        "memory `{}` ({mid}) receives {stores} store(s) but is never loaded, here or through any shared-bank callee",
                    m.name
                    ),
                );
            }
        }
    }
}

/// `(loads, stores)` reaching each memory of `did`, including accesses made
/// by callees through shared-bank binds (resolved transitively — the
/// hierarchy is acyclic, which the caller verified).
fn mem_usage<'a>(
    h: &Hierarchy,
    did: DfgId,
    memo: &'a mut Vec<Option<Vec<(u64, u64)>>>,
) -> &'a [(u64, u64)] {
    if memo[did.index()].is_none() {
        let g = h.dfg(did);
        let mut counts = vec![(0u64, 0u64); g.mem_count()];
        for (_, node) in g.nodes() {
            match node.kind() {
                NodeKind::Load { mem } => counts[mem.index()].0 += 1,
                NodeKind::Store { mem } => counts[mem.index()].1 += 1,
                _ => {}
            }
        }
        for (_, node) in g.nodes() {
            if let NodeKind::Hier { callee } = node.kind() {
                let sub = mem_usage(h, *callee, memo).to_vec();
                let binds = node.mem_binds();
                let mut ext = 0usize;
                for ((_, m), (loads, stores)) in h.dfg(*callee).mems().zip(sub) {
                    if matches!(m.scope, MemScope::External) {
                        if let Some(b) = binds.get(ext) {
                            counts[b.index()].0 += loads;
                            counts[b.index()].1 += stores;
                        }
                        ext += 1;
                    }
                }
            }
        }
        memo[did.index()] = Some(counts);
    }
    memo[did.index()].as_ref().expect("just computed")
}

/// `PWR001`/`PWR002`: the operating point must lie inside the range the
/// technology's delay and energy models are calibrated for.
fn check_power(view: &DesignView<'_>, sink: &mut Sink<'_>) {
    let tech = &view.lib.technology;
    if view.vdd <= tech.vt() {
        sink.emit(
            RuleCode::Pwr001,
            Severity::Error,
            Location::default(),
            format!(
                "supply voltage {} V is at or below the threshold voltage {} V: the delay model is undefined there",
                view.vdd,
                tech.vt()
            ),
        );
    } else if view.vdd > tech.vref() + 1e-9 {
        sink.emit(
            RuleCode::Pwr001,
            Severity::Warning,
            Location::default(),
            format!(
                "supply voltage {} V exceeds the characterization voltage {} V: energies are extrapolated",
                view.vdd,
                tech.vref()
            ),
        );
    }
    let overhead = view.lib.register.overhead_ns;
    if view.clk_ns <= overhead {
        sink.emit(
            RuleCode::Pwr002,
            Severity::Error,
            Location::default(),
            format!(
                "clock period {} ns does not exceed the register overhead {} ns: no usable compute time per cycle",
                view.clk_ns, overhead
            ),
        );
    }
}

/// Check one module's behaviors, then recurse into its submodules. The
/// sampling deadline only applies at the level it was given for (the top).
fn check_module(
    view: &DesignView<'_>,
    module: &RtlModule,
    path: &str,
    sampling: Option<u32>,
    sink: &mut Sink<'_>,
) {
    for behavior in module.behaviors() {
        check_behavior(view, module, path, behavior, sampling, sink);
    }
    for sub in module.subs() {
        let sub_path = format!("{path}/{}", sub.name());
        check_module(view, sub, &sub_path, None, sink);
    }
}

fn check_behavior(
    view: &DesignView<'_>,
    module: &RtlModule,
    path: &str,
    b: &Behavior,
    sampling: Option<u32>,
    sink: &mut Sink<'_>,
) {
    let at = |node: Option<NodeId>, cycle: Option<u32>, instance: Option<String>| Location {
        module: Some(path.to_owned()),
        dfg: Some(b.dfg),
        node,
        cycle,
        instance,
    };

    if b.dfg.index() >= view.hierarchy.dfg_count() {
        sink.emit(
            RuleCode::Rtl001,
            Severity::Error,
            Location {
                module: Some(path.to_owned()),
                ..Location::default()
            },
            format!(
                "behavior references {} which is not in the hierarchy",
                b.dfg
            ),
        );
        return;
    }
    let g = view.hierarchy.dfg(b.dfg);
    let n = g.node_count();

    // Binding completeness (`RTL001`) and FU compatibility (`RTL005`) need
    // no schedule, so they run even when the schedule is unusable.
    check_binding(view, module, g, b, &at, sink);

    // `SCH001`: everything downstream indexes the schedule by node id, so a
    // schedule covering the wrong node count invalidates all of it.
    if b.schedule.times().len() != n {
        sink.emit(
            RuleCode::Sch001,
            Severity::Error,
            at(None, None, None),
            format!(
                "schedule covers {} nodes but the graph has {n}",
                b.schedule.times().len()
            ),
        );
        return;
    }
    // Guard against edges/serialization naming out-of-range nodes before
    // touching the schedule with them (`DFG001` owns the edge case).
    if g.edges()
        .any(|(_, e)| e.to.index() >= n || e.from.node.index() >= n)
    {
        return;
    }

    let usable = view.clk_ns - view.lib.register.overhead_ns;

    // `SCH005`: chained combinational paths must fit the usable period.
    if usable > 0.0 {
        for (nid, _) in g.nodes() {
            let t = b.schedule.time(nid);
            let worst = t.result.ns.max(t.start.ns);
            if worst > usable + 1e-6 {
                sink.emit(
                    RuleCode::Sch005,
                    Severity::Error,
                    at(Some(nid), Some(t.result.cycle), None),
                    format!(
                        "chained path through {nid} accumulates {worst:.3} ns, over the usable {usable:.3} ns",
                    ),
                );
            }
        }
    }

    // `SCH002`: every zero-delay data edge must be satisfied — the value
    // ready no later than its consumer starts (profiled consumers latch
    // each input at `start + profile offset`).
    for (_, e) in g.edges() {
        if e.delay != 0 {
            continue;
        }
        match g.node(e.to).kind() {
            NodeKind::Op(_) | NodeKind::Output { .. } => {
                let avail = b.schedule.result_tick_of_port(e.from.node, e.from.port);
                let start = b.schedule.time(e.to).start;
                if avail > start {
                    sink.emit(
                        RuleCode::Sch002,
                        Severity::Error,
                        at(Some(e.to), Some(start.cycle), None),
                        format!(
                            "{} consumes {} at {start}, before it is ready at {avail}",
                            e.to, e.from
                        ),
                    );
                }
            }
            NodeKind::Hier { callee } => {
                // The submodule latches input `port` at start + offset.
                let profile = b
                    .binding
                    .hier_to_sub
                    .get(&e.to)
                    .filter(|s| s.index() < module.subs().len())
                    .and_then(|s| module.subs()[s.index()].profile_for(*callee));
                let Some(profile) = profile else {
                    continue; // RTL001 already reported the broken binding
                };
                let offset = profile.inputs.get(e.to_port as usize).copied().unwrap_or(0);
                let need = b.schedule.time(e.to).start.cycle + offset;
                let avail = b.schedule.result_cycle_of_port(e.from.node, e.from.port);
                if avail > need {
                    sink.emit(
                        RuleCode::Sch002,
                        Severity::Error,
                        at(Some(e.to), Some(need), None),
                        format!(
                            "{} needs {} by cycle {need} (start + profile offset {offset}) but it is ready in cycle {avail}",
                            e.to, e.from
                        ),
                    );
                }
            }
            _ => {}
        }
    }

    // `SCH003`: a serialization edge `(a, b)` means `b` must not start
    // before `a` releases the shared resource.
    for &(a, bnode) in &b.serial {
        if a.index() >= n || bnode.index() >= n {
            sink.emit(
                RuleCode::Sch001,
                Severity::Error,
                at(None, None, None),
                format!("serialization edge ({a}, {bnode}) names a node outside the graph"),
            );
            continue;
        }
        let release = b.schedule.time(a).occupied.1;
        let start = b.schedule.time(bnode).start.cycle;
        if start < release {
            sink.emit(
                RuleCode::Sch003,
                Severity::Error,
                at(Some(bnode), Some(start), None),
                format!(
                    "{bnode} starts in cycle {start}, before serialized predecessor {a} releases its resource at cycle {release}",
                ),
            );
        }
    }

    // `SCH004`: the top-level behavior must complete within the sampling
    // period.
    if let Some(p) = sampling {
        let makespan = b.schedule.makespan();
        if makespan > p {
            sink.emit(
                RuleCode::Sch004,
                Severity::Error,
                at(None, Some(makespan), None),
                format!(
                    "activity runs to cycle {makespan}, past the sampling period of {p} cycles"
                ),
            );
        }
    }

    // `MEM003`: per cycle, a memory bank serves at most its port count.
    // Mirrors the scheduler's pessimism: an access whose address is not a
    // compile-time constant may hit any bank, so it counts against all of
    // them — exactly the discipline `mem_serial_edges` enforces, so a
    // schedule that respects its serialization never trips this.
    {
        let mut per_slot: BTreeMap<(usize, u32, u32), Vec<NodeId>> = BTreeMap::new();
        for (nid, node) in g.nodes() {
            let mem = match node.kind() {
                NodeKind::Load { mem } | NodeKind::Store { mem } => *mem,
                _ => continue,
            };
            let cycle = b.schedule.time(nid).occupied.0;
            let m = g.mem(mem);
            match hsyn_dfg::const_address(g, nid) {
                Some(addr) => per_slot
                    .entry((mem.index(), hsyn_dfg::bank_of(m, addr), cycle))
                    .or_default()
                    .push(nid),
                None => {
                    for bank in 0..m.banks.max(1) {
                        per_slot
                            .entry((mem.index(), bank, cycle))
                            .or_default()
                            .push(nid);
                    }
                }
            }
        }
        for ((mi, bank, cycle), nodes) in per_slot {
            let (_, m) = g.mems().nth(mi).expect("keyed from g.mems()");
            let ports = m.ports.max(1);
            if nodes.len() > ports as usize {
                sink.emit(
                    RuleCode::Mem003,
                    Severity::Error,
                    at(Some(nodes[0]), Some(cycle), Some(m.name.clone())),
                    format!(
                        "cycle {cycle} issues {} accesses that may hit bank {bank} of `{}`, which has {ports} port(s)",
                        nodes.len(),
                        m.name
                    ),
                );
            }
        }
    }

    // `RTL002`/`RTL003`: two users of one hardware instance must occupy
    // disjoint cycle ranges.
    check_resource_conflicts(module, g, b, &at, sink);

    // `RTL004`/`RTL007`: storage. Re-derive lifetimes from the schedule and
    // check the register binding against them.
    let sa = storage_analysis(g, &b.schedule);
    for &v in &sa.stored_vars {
        match b.binding.var_to_reg.get(&v) {
            None => {
                let (birth, _, _) = sa.lifetimes[&v];
                sink.emit(
                    RuleCode::Rtl004,
                    Severity::Error,
                    at(Some(v.node), Some(birth), None),
                    format!(
                        "value {v} must be stored but has no register: its consumers' mux inputs are undriven",
                    ),
                );
            }
            Some(r) if r.index() >= module.regs().len() => {
                sink.emit(
                    RuleCode::Rtl004,
                    Severity::Error,
                    at(Some(v.node), None, None),
                    format!("value {v} is bound to nonexistent register {r}"),
                );
            }
            Some(_) => {}
        }
    }
    let mut by_reg: BTreeMap<usize, Vec<hsyn_dfg::VarRef>> = BTreeMap::new();
    for (&v, &r) in &b.binding.var_to_reg {
        if r.index() < module.regs().len() && sa.lifetimes.contains_key(&v) {
            by_reg.entry(r.index()).or_default().push(v);
        }
    }
    for (reg, mut vars) in by_reg {
        vars.sort();
        for i in 0..vars.len() {
            for j in (i + 1)..vars.len() {
                if sa.conflicts(vars[i], vars[j]) {
                    let name = module.regs()[reg].name.clone();
                    sink.emit(
                        RuleCode::Rtl007,
                        Severity::Error,
                        at(Some(vars[i].node), None, Some(name)),
                        format!(
                            "values {} and {} share a register but their lifetimes overlap",
                            vars[i], vars[j]
                        ),
                    );
                }
            }
        }
    }
}

/// `RTL001`/`RTL005`: every schedulable node needs exactly the hardware its
/// binding claims, and that hardware must be able to execute it.
fn check_binding(
    view: &DesignView<'_>,
    module: &RtlModule,
    g: &Dfg,
    b: &Behavior,
    at: &dyn Fn(Option<NodeId>, Option<u32>, Option<String>) -> Location,
    sink: &mut Sink<'_>,
) {
    for (nid, node) in g.nodes() {
        match node.kind() {
            NodeKind::Op(op) => match b.binding.op_to_fu.get(&nid) {
                None => sink.emit(
                    RuleCode::Rtl001,
                    Severity::Error,
                    at(Some(nid), None, None),
                    format!("operation {nid} ({op}) has no functional-unit binding"),
                ),
                Some(fu) if fu.index() >= module.fus().len() => sink.emit(
                    RuleCode::Rtl001,
                    Severity::Error,
                    at(Some(nid), None, None),
                    format!("operation {nid} is bound to nonexistent functional unit {fu}"),
                ),
                Some(fu) => {
                    let inst = &module.fus()[fu.index()];
                    if inst.fu_type.index() >= view.lib.fu_count() {
                        sink.emit(
                            RuleCode::Rtl005,
                            Severity::Error,
                            at(Some(nid), None, Some(inst.name.clone())),
                            format!(
                                "functional unit {} has a type outside the library",
                                inst.name
                            ),
                        );
                    } else if !view.lib.fu(inst.fu_type).supports(*op) {
                        sink.emit(
                            RuleCode::Rtl005,
                            Severity::Error,
                            at(Some(nid), None, Some(inst.name.clone())),
                            format!(
                                "operation {nid} ({op}) is bound to {} ({}), which cannot execute it",
                                inst.name,
                                view.lib.fu(inst.fu_type).name()
                            ),
                        );
                    }
                }
            },
            NodeKind::Hier { callee } => match b.binding.hier_to_sub.get(&nid) {
                None => sink.emit(
                    RuleCode::Rtl001,
                    Severity::Error,
                    at(Some(nid), None, None),
                    format!("hierarchical node {nid} has no submodule binding"),
                ),
                Some(s) if s.index() >= module.subs().len() => sink.emit(
                    RuleCode::Rtl001,
                    Severity::Error,
                    at(Some(nid), None, None),
                    format!("hierarchical node {nid} is bound to nonexistent submodule {s}"),
                ),
                Some(s) => {
                    let sub = &module.subs()[s.index()];
                    if sub.behavior_for(*callee).is_none() {
                        sink.emit(
                            RuleCode::Rtl001,
                            Severity::Error,
                            at(Some(nid), None, Some(sub.name().to_owned())),
                            format!(
                                "submodule {} has no behavior for the callee of {nid}",
                                sub.name()
                            ),
                        );
                    }
                }
            },
            _ => {}
        }
    }
}

/// `RTL002`/`RTL003`: occupied-interval overlap between two users of one
/// hardware instance.
fn check_resource_conflicts(
    module: &RtlModule,
    g: &Dfg,
    b: &Behavior,
    at: &dyn Fn(Option<NodeId>, Option<u32>, Option<String>) -> Location,
    sink: &mut Sink<'_>,
) {
    let overlap = |x: (u32, u32), y: (u32, u32)| x.0.max(y.0) < x.1.min(y.1);

    let mut by_fu: BTreeMap<usize, Vec<NodeId>> = BTreeMap::new();
    for (&nid, &fu) in &b.binding.op_to_fu {
        if fu.index() < module.fus().len() && nid.index() < g.node_count() {
            by_fu.entry(fu.index()).or_default().push(nid);
        }
    }
    for (fu, mut nodes) in by_fu {
        nodes.sort();
        for i in 0..nodes.len() {
            for j in (i + 1)..nodes.len() {
                let ta = b.schedule.time(nodes[i]).occupied;
                let tb = b.schedule.time(nodes[j]).occupied;
                if overlap(ta, tb) {
                    let name = module.fus()[fu].name.clone();
                    sink.emit(
                        RuleCode::Rtl002,
                        Severity::Error,
                        at(Some(nodes[j]), Some(ta.0.max(tb.0)), Some(name.clone())),
                        format!(
                            "functional unit {name} executes {} (cycles {}..{}) and {} (cycles {}..{}) concurrently",
                            nodes[i], ta.0, ta.1, nodes[j], tb.0, tb.1
                        ),
                    );
                }
            }
        }
    }

    let mut by_sub: BTreeMap<usize, Vec<NodeId>> = BTreeMap::new();
    for (&nid, &s) in &b.binding.hier_to_sub {
        if s.index() < module.subs().len() && nid.index() < g.node_count() {
            by_sub.entry(s.index()).or_default().push(nid);
        }
    }
    for (si, mut nodes) in by_sub {
        nodes.sort();
        for i in 0..nodes.len() {
            for j in (i + 1)..nodes.len() {
                let ta = b.schedule.time(nodes[i]).occupied;
                let tb = b.schedule.time(nodes[j]).occupied;
                if overlap(ta, tb) {
                    let name = module.subs()[si].name().to_owned();
                    sink.emit(
                        RuleCode::Rtl003,
                        Severity::Error,
                        at(Some(nodes[j]), Some(ta.0.max(tb.0)), Some(name.clone())),
                        format!(
                            "submodule {name} executes {} (cycles {}..{}) and {} (cycles {}..{}) concurrently",
                            nodes[i], ta.0, ta.1, nodes[j], tb.0, tb.1
                        ),
                    );
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::error_count;

    fn single(mut g: Dfg) -> Hierarchy {
        let mut h = Hierarchy::new();
        let _ = &mut g;
        let id = h.add_dfg(g);
        h.set_top(id);
        h.validate().unwrap();
        h
    }

    #[test]
    fn dfa001_flags_all_constant_operations() {
        let mut g = Dfg::new("k");
        let a = g.add_const("a", 2);
        let b = g.add_const("b", 3);
        let m = g.add_op(hsyn_dfg::Operation::Mult, "m", &[a, b]);
        g.add_output("y", m);
        let diags = lint_hierarchy(&single(g));
        assert_eq!(error_count(&diags), 0);
        assert!(
            diags
                .iter()
                .any(|d| d.code == RuleCode::Dfa001 && d.message.contains("always computes 6")),
            "{diags:?}"
        );
        // Suppressible like any other rule.
        let cfg = LintConfig::new().allow(RuleCode::Dfa001);
        let mut g2 = Dfg::new("k");
        let a = g2.add_const("a", 2);
        let b = g2.add_const("b", 3);
        let m = g2.add_op(hsyn_dfg::Operation::Mult, "m", &[a, b]);
        g2.add_output("y", m);
        let diags = lint_hierarchy_with(&single(g2), &cfg);
        assert!(diags.iter().all(|d| d.code != RuleCode::Dfa001));
    }

    #[test]
    fn mem001_flags_out_of_range_constant_addresses() {
        let mut g = Dfg::new("k");
        let m = g.add_mem(hsyn_dfg::MemObject::owned("t", 4, 16));
        let x = g.add_input("x");
        let w0 = g.add_const("w0", 0);
        g.add_store(m, "st", w0, x);
        let a = g.add_const("a", 9);
        let l = g.add_load(m, "l", a);
        g.add_output("y", l);
        let diags = lint_hierarchy(&single(g));
        assert_eq!(error_count(&diags), 0);
        let hits: Vec<_> = diags
            .iter()
            .filter(|d| d.code == RuleCode::Mem001)
            .collect();
        assert_eq!(hits.len(), 1, "{diags:?}");
        assert!(hits[0].message.contains("wraps to 1"), "{diags:?}");
        assert_eq!(hits[0].location.instance.as_deref(), Some("t"));
    }

    #[test]
    fn mem002_flags_memory_stored_but_never_loaded() {
        let mut g = Dfg::new("k");
        let m = g.add_mem(hsyn_dfg::MemObject::owned("t", 4, 16));
        let x = g.add_input("x");
        let w = g.add_const("w", 1);
        g.add_store(m, "st", w, x);
        g.add_output("y", x);
        let diags = lint_hierarchy(&single(g));
        assert!(
            diags
                .iter()
                .any(|d| d.code == RuleCode::Mem002 && d.message.contains("`t`")),
            "{diags:?}"
        );
    }

    /// A parent-side store consumed only through a shared-bank callee's
    /// loads is not dead: MEM002 must look through `mem_binds`.
    #[test]
    fn mem002_sees_loads_through_shared_bank_callees() {
        let mut h = Hierarchy::new();
        let mut c = Dfg::new("c");
        let cm = c.add_mem(hsyn_dfg::MemObject::external("xm", 4, 16));
        let a = c.add_input("a");
        let l = c.add_load(cm, "l", a);
        c.add_output("y", l);
        let callee = h.add_dfg(c);
        let mut g = Dfg::new("top");
        let m = g.add_mem(hsyn_dfg::MemObject::owned("t", 4, 16));
        let x = g.add_input("x");
        let w = g.add_const("w", 1);
        g.add_store(m, "st", w, x);
        let call = g.add_hier_with_mems(callee, "call", &[x], &[m]);
        let out = g.hier_out(call, 0);
        g.add_output("y", out);
        let id = h.add_dfg(g);
        h.set_top(id);
        h.validate().unwrap();
        let diags = lint_hierarchy(&h);
        assert!(
            diags.iter().all(|d| d.code != RuleCode::Mem002),
            "{diags:?}"
        );
    }

    #[test]
    fn dfa002_flags_dead_outputs() {
        let mut g = Dfg::new("k");
        let x = g.add_input("x");
        let dead = g.add_op(hsyn_dfg::Operation::Add, "dead", &[x, x]);
        let s = g.add_op(hsyn_dfg::Operation::Sub, "s", &[x, x]);
        g.add_output("y", s);
        let diags = lint_hierarchy(&single(g));
        let hits: Vec<_> = diags
            .iter()
            .filter(|d| d.code == RuleCode::Dfa002)
            .collect();
        assert_eq!(hits.len(), 1, "{diags:?}");
        assert_eq!(hits[0].location.node, Some(dead.node));
        assert_eq!(hits[0].severity, Severity::Warning);
    }

    #[test]
    fn dfa003_flags_decided_comparison() {
        // Lt(Min(x, 3), 100): the left range tops out at 3, so the compare
        // always yields 1.
        let mut g = Dfg::new("k");
        let x = g.add_input("x");
        let c3 = g.add_const("c3", 3);
        let c100 = g.add_const("c100", 100);
        let m = g.add_op(hsyn_dfg::Operation::Min, "m", &[x, c3]);
        let lt = g.add_op(hsyn_dfg::Operation::Lt, "lt", &[m, c100]);
        g.add_output("y", lt);
        let diags = lint_hierarchy(&single(g));
        let hits: Vec<_> = diags
            .iter()
            .filter(|d| d.code == RuleCode::Dfa003)
            .collect();
        assert_eq!(hits.len(), 1, "{diags:?}");
        assert_eq!(hits[0].location.node, Some(lt.node));
    }

    #[test]
    fn dfa004_flags_provably_narrow_arithmetic() {
        // Add(Max(Min(x, 10), 0), 5) lands in [5, 15]: 5 of 16 bits.
        let mut g = Dfg::new("k");
        let x = g.add_input("x");
        let c10 = g.add_const("c10", 10);
        let c0 = g.add_const("c0", 0);
        let c5 = g.add_const("c5", 5);
        let lo = g.add_op(hsyn_dfg::Operation::Min, "lo", &[x, c10]);
        let hi = g.add_op(hsyn_dfg::Operation::Max, "hi", &[lo, c0]);
        let s = g.add_op(hsyn_dfg::Operation::Add, "s", &[hi, c5]);
        g.add_output("y", s);
        let diags = lint_hierarchy(&single(g));
        let hits: Vec<_> = diags
            .iter()
            .filter(|d| d.code == RuleCode::Dfa004)
            .collect();
        assert_eq!(hits.len(), 1, "{diags:?}");
        assert_eq!(hits[0].location.node, Some(s.node));
    }

    #[test]
    fn dataflow_rules_skip_broken_hierarchies() {
        // No top: the structural DFG005 fires alone and the abstract
        // interpreter never runs.
        let mut h = Hierarchy::new();
        let mut g = Dfg::new("k");
        let a = g.add_const("a", 2);
        let b = g.add_const("b", 3);
        let m = g.add_op(hsyn_dfg::Operation::Mult, "m", &[a, b]);
        g.add_output("y", m);
        h.add_dfg(g);
        let diags = lint_hierarchy(&h);
        assert!(diags.iter().any(|d| d.code == RuleCode::Dfg005));
        assert!(diags.iter().all(|d| d.code != RuleCode::Dfa001));
    }
}
