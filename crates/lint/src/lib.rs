//! Cross-layer IR verifier for the H-SYN reproduction.
//!
//! The synthesis engine rewrites three coupled IRs — hierarchical DFGs,
//! schedules, and RTL implementations — and a buggy move that produces an
//! infeasible schedule or a mis-wired netlist would otherwise be silently
//! costed. This crate re-checks the invariants each layer relies on and
//! reports violations as structured [`Diagnostic`]s with stable rule codes:
//!
//! | family   | guards |
//! |----------|--------|
//! | `DFG0xx` | graph/hierarchy structure ([`hsyn_dfg::Hierarchy::check_all`]) |
//! | `SCH0xx` | schedule legality: precedence, serialization, deadlines, chaining |
//! | `RTL0xx` | binding completeness, resource conflicts, register lifetimes |
//! | `PWR0xx` | operating-point sanity for the calibrated power/delay models |
//! | `DFA0xx` | dataflow facts: constant-foldable ops, dead outputs, decided selects, over-wide arithmetic ([`hsyn_dataflow::analyze_hierarchy`]) |
//!
//! Entry points: [`verify_design`] checks a synthesized design (a
//! [`DesignView`] pairing an RTL module tree with its hierarchy, library,
//! and operating point); [`lint_hierarchy`] checks a bare behavioral
//! description. Rules are individually suppressible via [`LintConfig`].
//!
//! The verifier is *observation-only*: it never mutates anything and a
//! legal design produces zero diagnostics, which is what the synthesis
//! engine's paranoid mode (`SynthesisConfig::paranoid` in `hsyn-core`)
//! asserts after every accepted move.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

mod rules;

pub use rules::{
    lint_hierarchy, lint_hierarchy_with, verify_design, verify_design_with, DesignView,
    DATAFLOW_LINT_WIDTH,
};

use hsyn_util::Json;
use std::collections::BTreeSet;
use std::fmt;

/// How bad a diagnostic is.
#[derive(Copy, Clone, PartialEq, Eq, PartialOrd, Ord, Debug)]
pub enum Severity {
    /// Suspicious but not structurally illegal (e.g. operating outside the
    /// calibrated model range on the safe side).
    Warning,
    /// A broken invariant: the design is not a legal implementation.
    Error,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Severity::Warning => write!(f, "warning"),
            Severity::Error => write!(f, "error"),
        }
    }
}

/// Stable rule codes. Codes never change meaning; retired codes are not
/// reused (which is why the sequence may have gaps).
#[derive(Copy, Clone, PartialEq, Eq, PartialOrd, Ord, Debug)]
#[allow(missing_docs)] // the per-variant story lives in `summary()`
pub enum RuleCode {
    Dfg001,
    Dfg002,
    Dfg003,
    Dfg004,
    Dfg005,
    Dfg006,
    Mem001,
    Mem002,
    Mem003,
    Sch001,
    Sch002,
    Sch003,
    Sch004,
    Sch005,
    Rtl001,
    Rtl002,
    Rtl003,
    Rtl004,
    Rtl005,
    Rtl007,
    Pwr001,
    Pwr002,
    Dfa001,
    Dfa002,
    Dfa003,
    Dfa004,
}

impl RuleCode {
    /// Every rule, in code order.
    pub const ALL: [RuleCode; 26] = [
        RuleCode::Dfg001,
        RuleCode::Dfg002,
        RuleCode::Dfg003,
        RuleCode::Dfg004,
        RuleCode::Dfg005,
        RuleCode::Dfg006,
        RuleCode::Mem001,
        RuleCode::Mem002,
        RuleCode::Mem003,
        RuleCode::Sch001,
        RuleCode::Sch002,
        RuleCode::Sch003,
        RuleCode::Sch004,
        RuleCode::Sch005,
        RuleCode::Rtl001,
        RuleCode::Rtl002,
        RuleCode::Rtl003,
        RuleCode::Rtl004,
        RuleCode::Rtl005,
        RuleCode::Rtl007,
        RuleCode::Pwr001,
        RuleCode::Pwr002,
        RuleCode::Dfa001,
        RuleCode::Dfa002,
        RuleCode::Dfa003,
        RuleCode::Dfa004,
    ];

    /// The stable textual code (`"SCH003"`, ...).
    pub fn as_str(self) -> &'static str {
        match self {
            RuleCode::Dfg001 => "DFG001",
            RuleCode::Dfg002 => "DFG002",
            RuleCode::Dfg003 => "DFG003",
            RuleCode::Dfg004 => "DFG004",
            RuleCode::Dfg005 => "DFG005",
            RuleCode::Dfg006 => "DFG006",
            RuleCode::Mem001 => "MEM001",
            RuleCode::Mem002 => "MEM002",
            RuleCode::Mem003 => "MEM003",
            RuleCode::Sch001 => "SCH001",
            RuleCode::Sch002 => "SCH002",
            RuleCode::Sch003 => "SCH003",
            RuleCode::Sch004 => "SCH004",
            RuleCode::Sch005 => "SCH005",
            RuleCode::Rtl001 => "RTL001",
            RuleCode::Rtl002 => "RTL002",
            RuleCode::Rtl003 => "RTL003",
            RuleCode::Rtl004 => "RTL004",
            RuleCode::Rtl005 => "RTL005",
            RuleCode::Rtl007 => "RTL007",
            RuleCode::Pwr001 => "PWR001",
            RuleCode::Pwr002 => "PWR002",
            RuleCode::Dfa001 => "DFA001",
            RuleCode::Dfa002 => "DFA002",
            RuleCode::Dfa003 => "DFA003",
            RuleCode::Dfa004 => "DFA004",
        }
    }

    /// One-line description of what the rule guards.
    pub fn summary(self) -> &'static str {
        match self {
            RuleCode::Dfg001 => "edge references a node outside its graph",
            RuleCode::Dfg002 => "input port undriven or driven more than once",
            RuleCode::Dfg003 => "edge reads a nonexistent output port",
            RuleCode::Dfg004 => "combinational (zero-delay) cycle",
            RuleCode::Dfg005 => "hierarchy malformed: no top, dangling or recursive callee",
            RuleCode::Dfg006 => "memory structure malformed: dangling, misbound, or cyclic",
            RuleCode::Mem001 => "constant address provably outside the memory's word range",
            RuleCode::Mem002 => "memory is stored to but never loaded from",
            RuleCode::Mem003 => "cycle issues more accesses to a memory than its ports allow",
            RuleCode::Sch001 => "schedule does not cover the behavior's graph",
            RuleCode::Sch002 => "data precedence violated: value consumed before it is ready",
            RuleCode::Sch003 => "serialization edge violated: shared resource not released",
            RuleCode::Sch004 => "schedule exceeds the sampling-period deadline",
            RuleCode::Sch005 => "chained path exceeds the usable clock period",
            RuleCode::Rtl001 => "binding incomplete: op/hier node lacks a hardware instance",
            RuleCode::Rtl002 => "functional unit assigned two ops in overlapping cycles",
            RuleCode::Rtl003 => "submodule executes two hierarchical nodes at once",
            RuleCode::Rtl004 => "stored value has no register: datapath mux input undriven",
            RuleCode::Rtl005 => "op bound to a functional unit that cannot execute it",
            RuleCode::Rtl007 => "register holds two live values at once",
            RuleCode::Pwr001 => "supply voltage outside the calibrated technology range",
            RuleCode::Pwr002 => "clock period does not exceed the register overhead",
            RuleCode::Dfa001 => "operation has only constant operands: constant-foldable",
            RuleCode::Dfa002 => "node output is provably dead: no design output observes it",
            RuleCode::Dfa003 => "comparison or select statically decided by disjoint ranges",
            RuleCode::Dfa004 => {
                "arithmetic result provably fits in at most half the datapath width"
            }
        }
    }

    /// Parse a textual code (case-insensitive).
    pub fn parse(s: &str) -> Option<RuleCode> {
        let up = s.to_ascii_uppercase();
        RuleCode::ALL.iter().copied().find(|c| c.as_str() == up)
    }
}

impl fmt::Display for RuleCode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Where a diagnostic points: any subset of module path, graph, node,
/// control step, and hardware instance.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Location {
    /// RTL module path from the design top (`"paulin/f1_mod"`).
    pub module: Option<String>,
    /// The DFG involved.
    pub dfg: Option<hsyn_dfg::DfgId>,
    /// The node involved.
    pub node: Option<hsyn_dfg::NodeId>,
    /// The control step (cycle) involved.
    pub cycle: Option<u32>,
    /// The hardware instance involved (FU, register, or submodule name).
    pub instance: Option<String>,
}

impl fmt::Display for Location {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut sep = "";
        if let Some(m) = &self.module {
            write!(f, "module {m}")?;
            sep = " ";
        }
        if let Some(d) = self.dfg {
            write!(f, "{sep}{d}")?;
            sep = " ";
        }
        if let Some(n) = self.node {
            write!(f, "{sep}{n}")?;
            sep = " ";
        }
        if let Some(c) = self.cycle {
            write!(f, "{sep}c{c}")?;
            sep = " ";
        }
        if let Some(i) = &self.instance {
            write!(f, "{sep}{i}")?;
            sep = " ";
        }
        if sep.is_empty() {
            write!(f, "design")?;
        }
        Ok(())
    }
}

/// One verifier finding.
#[derive(Clone, Debug, PartialEq)]
pub struct Diagnostic {
    /// The rule that fired.
    pub code: RuleCode,
    /// How bad it is.
    pub severity: Severity,
    /// Where it points.
    pub location: Location,
    /// Human-readable description.
    pub message: String,
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}[{}] {} (at {})",
            self.severity, self.code, self.message, self.location
        )
    }
}

/// Which rules run: all by default, individual codes suppressible.
#[derive(Clone, Debug, Default)]
pub struct LintConfig {
    suppressed: BTreeSet<RuleCode>,
}

impl LintConfig {
    /// A config with every rule enabled.
    pub fn new() -> Self {
        LintConfig::default()
    }

    /// Suppress a rule (builder style).
    pub fn allow(mut self, code: RuleCode) -> Self {
        self.suppressed.insert(code);
        self
    }

    /// Suppress a rule by its textual code; `false` if the code is unknown.
    pub fn allow_str(&mut self, code: &str) -> bool {
        match RuleCode::parse(code) {
            Some(c) => {
                self.suppressed.insert(c);
                true
            }
            None => false,
        }
    }

    /// Whether a rule should run.
    pub fn enabled(&self, code: RuleCode) -> bool {
        !self.suppressed.contains(&code)
    }
}

/// Number of [`Severity::Error`] diagnostics (the CLI's exit-code basis).
pub fn error_count(diags: &[Diagnostic]) -> usize {
    diags
        .iter()
        .filter(|d| d.severity == Severity::Error)
        .count()
}

/// Render diagnostics as a JSON array (stable field order, suitable for
/// `hsyn lint --json`).
pub fn diagnostics_to_json(diags: &[Diagnostic]) -> Json {
    let opt_str = |s: &Option<String>| match s {
        Some(v) => Json::Str(v.clone()),
        None => Json::Null,
    };
    Json::Arr(
        diags
            .iter()
            .map(|d| {
                Json::Obj(vec![
                    ("code".to_owned(), Json::Str(d.code.as_str().to_owned())),
                    ("severity".to_owned(), Json::Str(d.severity.to_string())),
                    ("message".to_owned(), Json::Str(d.message.clone())),
                    ("module".to_owned(), opt_str(&d.location.module)),
                    (
                        "dfg".to_owned(),
                        match d.location.dfg {
                            Some(g) => Json::Num(g.index() as f64),
                            None => Json::Null,
                        },
                    ),
                    (
                        "node".to_owned(),
                        match d.location.node {
                            Some(n) => Json::Num(n.index() as f64),
                            None => Json::Null,
                        },
                    ),
                    (
                        "cycle".to_owned(),
                        match d.location.cycle {
                            Some(c) => Json::Num(f64::from(c)),
                            None => Json::Null,
                        },
                    ),
                    ("instance".to_owned(), opt_str(&d.location.instance)),
                ])
            })
            .collect(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rule_codes_round_trip() {
        for code in RuleCode::ALL {
            assert_eq!(RuleCode::parse(code.as_str()), Some(code));
            assert_eq!(RuleCode::parse(&code.as_str().to_lowercase()), Some(code));
            assert!(!code.summary().is_empty());
        }
        assert_eq!(RuleCode::parse("XYZ999"), None);
    }

    #[test]
    fn config_suppression() {
        let mut cfg = LintConfig::new().allow(RuleCode::Sch005);
        assert!(!cfg.enabled(RuleCode::Sch005));
        assert!(cfg.enabled(RuleCode::Sch002));
        assert!(cfg.allow_str("rtl002"));
        assert!(!cfg.enabled(RuleCode::Rtl002));
        assert!(!cfg.allow_str("nope"));
    }

    #[test]
    fn diagnostic_display_and_json() {
        let d = Diagnostic {
            code: RuleCode::Sch003,
            severity: Severity::Error,
            location: Location {
                module: Some("top".into()),
                dfg: None,
                node: Some(hsyn_dfg::NodeId::from_index(3)),
                cycle: Some(2),
                instance: Some("F1".into()),
            },
            message: "shared resource not released".into(),
        };
        let text = d.to_string();
        assert!(text.contains("error[SCH003]"), "{text}");
        assert!(text.contains("module top"), "{text}");
        let json = diagnostics_to_json(&[d]).to_string_pretty();
        assert!(json.contains("\"SCH003\""), "{json}");
        assert!(json.contains("\"cycle\": 2"), "{json}");
    }
}
