//! The daemon's persistent, corruption-safe disk cache.
//!
//! Two layers live under one cache directory:
//!
//! * `jobs/<key>.json` — the **content-addressed response cache**: one file
//!   per distinct job (key = [`JobSpec::cache_key`]), holding the exact
//!   `result_json` string (and Verilog when requested) the job produced.
//!   A repeat submission of the same job is answered from here without
//!   synthesizing at all.
//! * `area.json` — the **fingerprint-keyed area store**: every
//!   `(structural fingerprint → AreaBreakdown)` pair any job priced, per
//!   library. New jobs are seeded from it, so shared submodules (biquads,
//!   dot-products) hit warm across jobs *and* across daemon restarts.
//!
//! Both layers are write-through with atomic rename (write `*.tmp`, then
//! rename), versioned, and checksummed: a truncated, bit-flipped, or
//! version-skewed file is detected on load, discarded (and deleted, for
//! job files), and counted — the daemon then recomputes cold and rewrites.
//! Floats persist as `f64::to_bits` hex, so a round trip is bit-exact.
//!
//! [`JobSpec::cache_key`]: crate::JobSpec::cache_key

use std::collections::HashMap;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

use hsyn_rtl::AreaBreakdown;
use hsyn_util::{content_key, Json};

/// On-disk format version for both layers. Bump on any layout change;
/// mismatched files are discarded as corrupt.
pub const STORE_VERSION: f64 = 1.0;

/// Outcome of a job-cache lookup.
#[derive(Debug)]
pub enum JobLookup {
    /// A valid entry: the stored response payload.
    Hit(Json),
    /// No entry on disk.
    Miss,
    /// An entry existed but failed validation; it has been deleted.
    Corrupt,
}

/// Handle to the daemon's cache directory.
#[derive(Debug)]
pub struct DiskStore {
    root: PathBuf,
}

impl DiskStore {
    /// Open (creating if needed) the cache directory and its `jobs/`
    /// subdirectory.
    ///
    /// # Errors
    ///
    /// Any directory-creation failure.
    pub fn open(root: &Path) -> io::Result<Self> {
        fs::create_dir_all(root.join("jobs"))?;
        Ok(DiskStore {
            root: root.to_path_buf(),
        })
    }

    /// The cache directory this store lives in.
    pub fn root(&self) -> &Path {
        &self.root
    }

    fn job_path(&self, key: &str) -> PathBuf {
        self.root.join("jobs").join(format!("{key}.json"))
    }

    /// Path of the persisted area store.
    pub fn area_path(&self) -> PathBuf {
        self.root.join("area.json")
    }

    /// Atomic write: `path.tmp` then rename over `path`. A crash mid-write
    /// leaves either the old file or a stray `.tmp`, never a torn target.
    fn write_atomic(&self, path: &Path, bytes: &[u8]) -> io::Result<()> {
        let tmp = path.with_extension("json.tmp");
        fs::write(&tmp, bytes)?;
        fs::rename(&tmp, path)
    }

    /// Look up a job by content key, validating version, key echo, and
    /// payload checksum. Any validation failure deletes the file and
    /// reports [`JobLookup::Corrupt`].
    pub fn load_job(&self, key: &str) -> JobLookup {
        let path = self.job_path(key);
        let text = match fs::read_to_string(&path) {
            Ok(t) => t,
            Err(e) if e.kind() == io::ErrorKind::NotFound => return JobLookup::Miss,
            // Unreadable counts as corrupt (best effort delete below).
            Err(_) => {
                let _ = fs::remove_file(&path);
                return JobLookup::Corrupt;
            }
        };
        match validate_job_file(&text, key) {
            Some(payload) => JobLookup::Hit(payload),
            None => {
                let _ = fs::remove_file(&path);
                JobLookup::Corrupt
            }
        }
    }

    /// Write-through a computed job response.
    ///
    /// # Errors
    ///
    /// Any filesystem write/rename failure.
    pub fn store_job(&self, key: &str, payload: &Json) -> io::Result<()> {
        let payload_text = payload.to_string_pretty();
        let file = Json::Obj(vec![
            ("version".to_owned(), Json::Num(STORE_VERSION)),
            ("key".to_owned(), Json::Str(key.to_owned())),
            (
                "check".to_owned(),
                Json::Str(content_key(payload_text.as_bytes())),
            ),
            ("payload".to_owned(), payload.clone()),
        ]);
        self.write_atomic(&self.job_path(key), file.to_string_pretty().as_bytes())
    }

    /// Load the persisted per-library area entries. Returns the entries
    /// and how many whole-file discards happened (0 or 1: the area store
    /// is one file; any corruption discards it entirely — area entries
    /// are pure optimization, so starting cold is always safe).
    pub fn load_areas(&self) -> (HashMap<String, Vec<(u64, AreaBreakdown)>>, u64) {
        let path = self.area_path();
        let text = match fs::read_to_string(&path) {
            Ok(t) => t,
            Err(e) if e.kind() == io::ErrorKind::NotFound => return (HashMap::new(), 0),
            Err(_) => return (HashMap::new(), 1),
        };
        match validate_area_file(&text) {
            Some(libs) => (libs, 0),
            None => {
                let _ = fs::remove_file(&path);
                (HashMap::new(), 1)
            }
        }
    }

    /// Persist the area store: libraries sorted by name, entries sorted by
    /// fingerprint — equal stores serialize to equal bytes.
    ///
    /// # Errors
    ///
    /// Any filesystem write/rename failure.
    pub fn store_areas(&self, libs: &[(String, Vec<(u64, AreaBreakdown)>)]) -> io::Result<()> {
        let mut lib_fields: Vec<(String, Json)> = Vec::new();
        for (name, entries) in libs {
            let arr: Vec<Json> = entries
                .iter()
                .map(|&(fp, a)| Json::Arr(vec![Json::Str(format!("{fp:016x}")), area_to_json(&a)]))
                .collect();
            lib_fields.push((name.clone(), Json::Arr(arr)));
        }
        let body = Json::Obj(lib_fields).to_string_pretty();
        let file = Json::Obj(vec![
            ("version".to_owned(), Json::Num(STORE_VERSION)),
            ("check".to_owned(), Json::Str(content_key(body.as_bytes()))),
            ("libs_text".to_owned(), Json::Str(body)),
        ]);
        self.write_atomic(&self.area_path(), file.to_string_pretty().as_bytes())
    }
}

/// Validate a job-cache file: parse, version match, key echo, checksum.
fn validate_job_file(text: &str, key: &str) -> Option<Json> {
    let v = Json::parse(text).ok()?;
    if v.get("version")?.as_f64()? != STORE_VERSION {
        return None;
    }
    if v.get("key")?.as_str()? != key {
        return None;
    }
    let payload = v.get("payload")?;
    let check = v.get("check")?.as_str()?;
    if content_key(payload.to_string_pretty().as_bytes()) != check {
        return None;
    }
    Some(payload.clone())
}

/// Validate the area-store file and decode its per-library entries.
fn validate_area_file(text: &str) -> Option<HashMap<String, Vec<(u64, AreaBreakdown)>>> {
    let v = Json::parse(text).ok()?;
    if v.get("version")?.as_f64()? != STORE_VERSION {
        return None;
    }
    let body = v.get("libs_text")?.as_str()?;
    if content_key(body.as_bytes()) != v.get("check")?.as_str()? {
        return None;
    }
    let libs = Json::parse(body).ok()?;
    let Json::Obj(fields) = &libs else {
        return None;
    };
    let mut out = HashMap::new();
    for (name, arr) in fields {
        let mut entries = Vec::new();
        for entry in arr.as_arr()? {
            let pair = entry.as_arr()?;
            if pair.len() != 2 {
                return None;
            }
            let fp = u64::from_str_radix(pair[0].as_str()?, 16).ok()?;
            entries.push((fp, area_from_json(&pair[1])?));
        }
        out.insert(name.clone(), entries);
    }
    Some(out)
}

/// Hex-bits field order for [`AreaBreakdown`] persistence.
const AREA_FIELDS: [&str; 7] = ["fu", "reg", "mux", "wire", "controller", "mem", "subs"];

fn area_to_json(a: &AreaBreakdown) -> Json {
    let vals = [a.fu, a.reg, a.mux, a.wire, a.controller, a.mem, a.subs];
    Json::Obj(
        AREA_FIELDS
            .iter()
            .zip(vals)
            .map(|(k, v)| ((*k).to_owned(), Json::Str(format!("{:016x}", v.to_bits()))))
            .collect(),
    )
}

fn area_from_json(v: &Json) -> Option<AreaBreakdown> {
    let mut vals = [0f64; 7];
    for (slot, key) in vals.iter_mut().zip(AREA_FIELDS) {
        *slot = f64::from_bits(u64::from_str_radix(v.get(key)?.as_str()?, 16).ok()?);
    }
    let [fu, reg, mux, wire, controller, mem, subs] = vals;
    Some(AreaBreakdown {
        fu,
        reg,
        mux,
        wire,
        controller,
        mem,
        subs,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp_dir(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("hsyn-store-test-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&d);
        d
    }

    #[test]
    fn job_cache_round_trips_and_rejects_corruption() {
        let dir = tmp_dir("job");
        let store = DiskStore::open(&dir).unwrap();
        let key = "00112233445566778899aabbccddeeff";
        assert!(matches!(store.load_job(key), JobLookup::Miss));
        let payload = Json::Obj(vec![(
            "result_json".to_owned(),
            Json::Str("{\n  \"x\": 1\n}".to_owned()),
        )]);
        store.store_job(key, &payload).unwrap();
        match store.load_job(key) {
            JobLookup::Hit(p) => assert_eq!(p.to_string_pretty(), payload.to_string_pretty()),
            other => panic!("expected hit, got {other:?}"),
        }
        // Truncate the file: detected, deleted, then a clean miss.
        let path = dir.join("jobs").join(format!("{key}.json"));
        let bytes = fs::read(&path).unwrap();
        fs::write(&path, &bytes[..bytes.len() / 2]).unwrap();
        assert!(matches!(store.load_job(key), JobLookup::Corrupt));
        assert!(matches!(store.load_job(key), JobLookup::Miss));
        // Bit-flip inside the payload: the checksum catches it.
        store.store_job(key, &payload).unwrap();
        let flipped = fs::read_to_string(&path)
            .unwrap()
            .replace("result_json", "result_jsox");
        fs::write(&path, flipped).unwrap();
        assert!(matches!(store.load_job(key), JobLookup::Corrupt));
        // A version skew is rejected even with a consistent checksum.
        store.store_job(key, &payload).unwrap();
        let skewed = fs::read_to_string(&path)
            .unwrap()
            .replace("\"version\": 1", "\"version\": 2");
        fs::write(&path, skewed).unwrap();
        assert!(matches!(store.load_job(key), JobLookup::Corrupt));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn area_store_round_trips_bit_exactly_and_survives_poisoning() {
        let dir = tmp_dir("area");
        let store = DiskStore::open(&dir).unwrap();
        let entries = vec![
            (
                7u64,
                AreaBreakdown {
                    fu: 1.5,
                    reg: 0.1 + 0.2, // deliberately non-representable
                    mux: -0.0,
                    wire: f64::MIN_POSITIVE,
                    controller: 1e300,
                    mem: 0.0,
                    subs: 3.25,
                },
            ),
            (u64::MAX, AreaBreakdown::default()),
        ];
        store
            .store_areas(&[("realistic".to_owned(), entries.clone())])
            .unwrap();
        let (loaded, discards) = store.load_areas();
        assert_eq!(discards, 0);
        let got = &loaded["realistic"];
        assert_eq!(got.len(), entries.len());
        for ((fp_w, a_w), (fp_r, a_r)) in entries.iter().zip(got) {
            assert_eq!(fp_w, fp_r);
            // Bit-exact floats, including -0.0 and subnormal-adjacent values.
            assert_eq!(a_w.fu.to_bits(), a_r.fu.to_bits());
            assert_eq!(a_w.reg.to_bits(), a_r.reg.to_bits());
            assert_eq!(a_w.mux.to_bits(), a_r.mux.to_bits());
            assert_eq!(a_w.wire.to_bits(), a_r.wire.to_bits());
            assert_eq!(a_w.controller.to_bits(), a_r.controller.to_bits());
            assert_eq!(a_w.mem.to_bits(), a_r.mem.to_bits());
            assert_eq!(a_w.subs.to_bits(), a_r.subs.to_bits());
        }
        // Poison the file: load discards it (counted) and starts cold.
        fs::write(store.area_path(), b"{\"version\": 1, garbage").unwrap();
        let (loaded, discards) = store.load_areas();
        assert!(loaded.is_empty());
        assert_eq!(discards, 1);
        // The poisoned file was deleted: the next load is a clean cold start.
        assert_eq!(store.load_areas().1, 0);
        let _ = fs::remove_dir_all(&dir);
    }
}
