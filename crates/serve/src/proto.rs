//! The `hsyn serve` wire protocol: JSON payloads inside length-prefixed
//! frames (see [`hsyn_util::frame`]).
//!
//! Every request carries a client-chosen `seq`; every response echoes the
//! `seq` of the request it answers, so one connection can hold multiple
//! requests in flight. Request types: `ping`, `submit`, `stats`, `cancel`,
//! `shutdown`. Response types: `pong`, `result`, `stats`, `cancel_ack`,
//! `shutdown_ack`, `error`.
//!
//! A [`JobSpec`] mirrors the synthesis CLI flag for flag — same defaults,
//! same [`SynthesisConfig`] construction — which is what makes the
//! serve-vs-CLI differential suite meaningful: a default job submitted to
//! the daemon and a default CLI run *must* produce byte-identical
//! `result_json`.

use hsyn_core::{Objective, SynthesisConfig};
use hsyn_util::Json;

/// Protocol version, embedded in the content-addressed job key so a
/// protocol change can never resurrect a stale cached response.
pub const PROTO_VERSION: u64 = 1;

/// What behavior a job synthesizes.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum JobSource {
    /// A built-in benchmark, by registry name.
    Bench(String),
    /// A textual hierarchical DFG (the `.dfg` format).
    Text(String),
}

/// Optional search-budget overrides, mirroring the reduced-budget configs
/// the test suites use. Absent fields keep [`SynthesisConfig`] defaults.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Budget {
    /// Improvement passes per configuration.
    pub max_passes: Option<usize>,
    /// Candidate moves scored per family per step.
    pub candidate_limit: Option<usize>,
    /// Evaluation trace length, iterations.
    pub eval_trace_len: Option<usize>,
    /// Report trace length, iterations.
    pub report_trace_len: Option<usize>,
    /// Clock candidates probed.
    pub max_clock_candidates: Option<usize>,
    /// Move-B recursion depth.
    pub resynth_depth: Option<usize>,
}

/// One synthesis job, as submitted over the wire. Defaults mirror the
/// `hsyn` CLI (`--objective power`, `--laxity 2.2`, `--library realistic`).
#[derive(Clone, Debug, PartialEq)]
pub struct JobSpec {
    /// The behavior to synthesize.
    pub source: JobSource,
    /// Optimization objective.
    pub objective: Objective,
    /// Sampling-period laxity factor.
    pub laxity: f64,
    /// Explicit sampling period (overrides `laxity`), ns.
    pub period_ns: Option<f64>,
    /// Component library name (`table1` or `realistic`).
    pub library: String,
    /// Trace RNG seed override.
    pub seed: Option<u64>,
    /// Flattened-baseline synthesis.
    pub flat: bool,
    /// Large-neighborhood refinement iterations.
    pub lns_iters: usize,
    /// Intra-configuration candidate-scan workers (1 = serial).
    pub intra_jobs: usize,
    /// Search-budget overrides.
    pub budget: Option<Budget>,
    /// Per-job deadline, milliseconds from dequeue; expiry aborts the job
    /// with a structured `deadline` error.
    pub deadline_ms: Option<u64>,
    /// Client-chosen label for targeted `cancel` requests.
    pub tag: Option<String>,
    /// Also return structural Verilog for the winning design.
    pub want_verilog: bool,
    /// Bypass the daemon's content-addressed response cache for this job
    /// (the fingerprint-keyed area store still applies).
    pub no_cache: bool,
}

impl JobSpec {
    /// A default job for `source`: the CLI's defaults, flag for flag.
    pub fn new(source: JobSource) -> Self {
        JobSpec {
            source,
            objective: Objective::Power,
            laxity: 2.2,
            period_ns: None,
            library: "realistic".to_owned(),
            seed: None,
            flat: false,
            lns_iters: 0,
            intra_jobs: 1,
            budget: None,
            deadline_ms: None,
            tag: None,
            want_verilog: false,
            no_cache: false,
        }
    }

    /// The [`SynthesisConfig`] this job runs under — the same construction
    /// path as the CLI's `synth_main`, so serve and CLI can never drift.
    /// `cancel` and `shared_area` are the daemon's runtime hooks; both are
    /// inert with respect to result bytes.
    pub fn to_config(
        &self,
        cancel: Option<hsyn_core::CancelToken>,
        shared_area: Option<std::sync::Arc<hsyn_core::SharedAreaCache>>,
    ) -> SynthesisConfig {
        let mut config = SynthesisConfig::new(self.objective);
        config.laxity_factor = self.laxity;
        config.sampling_period_ns = self.period_ns;
        config.hierarchical = !self.flat;
        if let Some(s) = self.seed {
            config.seed = s;
        }
        config.intra_parallelism = self.intra_jobs;
        config.lns_iters = self.lns_iters;
        if let Some(b) = &self.budget {
            if let Some(v) = b.max_passes {
                config.max_passes = v;
            }
            if let Some(v) = b.candidate_limit {
                config.candidate_limit = v;
            }
            if let Some(v) = b.eval_trace_len {
                config.eval_trace_len = v;
            }
            if let Some(v) = b.report_trace_len {
                config.report_trace_len = v;
            }
            if let Some(v) = b.max_clock_candidates {
                config.max_clock_candidates = v;
            }
            if let Some(v) = b.resynth_depth {
                config.resynth_depth = v as u32;
            }
        }
        config.cancel = cancel;
        config.shared_area = shared_area;
        config
    }

    /// The canonical JSON rendering of everything that affects this job's
    /// *result bytes*: protocol version, source, library, and every
    /// result-affecting knob, in fixed field order. Excluded on purpose:
    /// `deadline_ms`, `tag`, and `no_cache` (they affect whether/how a
    /// result is produced, never its bytes). `want_verilog` is included
    /// because it changes the cached payload shape.
    pub fn canonical_json(&self) -> Json {
        fn num(v: usize) -> Json {
            Json::Num(v as f64)
        }
        let (src_kind, src_body) = match &self.source {
            JobSource::Bench(name) => ("bench", name.clone()),
            JobSource::Text(text) => ("text", text.clone()),
        };
        let budget = self.budget.unwrap_or_default();
        fn opt_num(v: Option<usize>) -> Json {
            v.map_or(Json::Null, |v| Json::Num(v as f64))
        }
        Json::Obj(vec![
            ("proto".to_owned(), Json::Num(PROTO_VERSION as f64)),
            ("source_kind".to_owned(), Json::Str(src_kind.to_owned())),
            ("source".to_owned(), Json::Str(src_body)),
            (
                "objective".to_owned(),
                Json::Str(
                    match self.objective {
                        Objective::Area => "area",
                        Objective::Power => "power",
                    }
                    .to_owned(),
                ),
            ),
            (
                "laxity_bits".to_owned(),
                Json::Str(format!("{:016x}", self.laxity.to_bits())),
            ),
            (
                "period_bits".to_owned(),
                self.period_ns
                    .map_or(Json::Null, |p| Json::Str(format!("{:016x}", p.to_bits()))),
            ),
            ("library".to_owned(), Json::Str(self.library.clone())),
            (
                "seed".to_owned(),
                self.seed
                    .map_or(Json::Null, |s| Json::Str(format!("{s:016x}"))),
            ),
            ("flat".to_owned(), Json::Bool(self.flat)),
            ("lns_iters".to_owned(), num(self.lns_iters)),
            ("max_passes".to_owned(), opt_num(budget.max_passes)),
            (
                "candidate_limit".to_owned(),
                opt_num(budget.candidate_limit),
            ),
            ("eval_trace_len".to_owned(), opt_num(budget.eval_trace_len)),
            (
                "report_trace_len".to_owned(),
                opt_num(budget.report_trace_len),
            ),
            (
                "max_clock_candidates".to_owned(),
                opt_num(budget.max_clock_candidates),
            ),
            ("resynth_depth".to_owned(), opt_num(budget.resynth_depth)),
            ("want_verilog".to_owned(), Json::Bool(self.want_verilog)),
        ])
    }

    /// The content-addressed cache key for this job: a stable 128-bit hash
    /// of [`canonical_json`](Self::canonical_json), as 32 hex characters.
    ///
    /// Note `intra_jobs` is *absent* from the canonical form: the intra
    /// scan is byte-identical at every worker count (enforced in CI), so
    /// jobs differing only in `intra_jobs` share one cache entry.
    pub fn cache_key(&self) -> String {
        hsyn_util::content_key(self.canonical_json().to_string_pretty().as_bytes())
    }

    /// The wire form of this job (round-trips through [`parse_job`]).
    pub fn to_json(&self) -> Json {
        let mut fields: Vec<(String, Json)> = Vec::new();
        match &self.source {
            JobSource::Bench(name) => fields.push(("bench".to_owned(), Json::Str(name.clone()))),
            JobSource::Text(text) => fields.push(("text".to_owned(), Json::Str(text.clone()))),
        }
        fields.push((
            "objective".to_owned(),
            Json::Str(
                match self.objective {
                    Objective::Area => "area",
                    Objective::Power => "power",
                }
                .to_owned(),
            ),
        ));
        fields.push(("laxity".to_owned(), Json::Num(self.laxity)));
        if let Some(p) = self.period_ns {
            fields.push(("period_ns".to_owned(), Json::Num(p)));
        }
        fields.push(("library".to_owned(), Json::Str(self.library.clone())));
        if let Some(s) = self.seed {
            fields.push(("seed".to_owned(), Json::Num(s as f64)));
        }
        if self.flat {
            fields.push(("flat".to_owned(), Json::Bool(true)));
        }
        if self.lns_iters > 0 {
            fields.push(("lns_iters".to_owned(), Json::Num(self.lns_iters as f64)));
        }
        if self.intra_jobs != 1 {
            fields.push(("intra_jobs".to_owned(), Json::Num(self.intra_jobs as f64)));
        }
        if let Some(b) = &self.budget {
            let mut bf: Vec<(String, Json)> = Vec::new();
            let pairs = [
                ("max_passes", b.max_passes),
                ("candidate_limit", b.candidate_limit),
                ("eval_trace_len", b.eval_trace_len),
                ("report_trace_len", b.report_trace_len),
                ("max_clock_candidates", b.max_clock_candidates),
                ("resynth_depth", b.resynth_depth),
            ];
            for (k, v) in pairs {
                if let Some(v) = v {
                    bf.push((k.to_owned(), Json::Num(v as f64)));
                }
            }
            fields.push(("budget".to_owned(), Json::Obj(bf)));
        }
        if let Some(d) = self.deadline_ms {
            fields.push(("deadline_ms".to_owned(), Json::Num(d as f64)));
        }
        if let Some(t) = &self.tag {
            fields.push(("tag".to_owned(), Json::Str(t.clone())));
        }
        if self.want_verilog {
            fields.push(("want_verilog".to_owned(), Json::Bool(true)));
        }
        if self.no_cache {
            fields.push(("no_cache".to_owned(), Json::Bool(true)));
        }
        Json::Obj(fields)
    }
}

/// Read a `bool` field, defaulting to `false`.
fn bool_field(obj: &Json, key: &str) -> Result<bool, String> {
    match obj.get(key) {
        None => Ok(false),
        Some(Json::Bool(b)) => Ok(*b),
        Some(_) => Err(format!("job field `{key}` must be a boolean")),
    }
}

/// Read a non-negative integer field.
fn usize_field(obj: &Json, key: &str) -> Result<Option<usize>, String> {
    match obj.get(key) {
        None => Ok(None),
        Some(v) => match v.as_f64() {
            Some(n) if n >= 0.0 && n.fract() == 0.0 && n <= u32::MAX as f64 => Ok(Some(n as usize)),
            _ => Err(format!("job field `{key}` must be a non-negative integer")),
        },
    }
}

/// Parse a wire-form job object into a [`JobSpec`]. Strict: unknown
/// fields, wrong types, and missing/ambiguous sources are structured
/// errors, never panics — this is the surface adversarial clients hit.
pub fn parse_job(v: &Json) -> Result<JobSpec, String> {
    let Json::Obj(fields) = v else {
        return Err("job must be a JSON object".to_owned());
    };
    const KNOWN: &[&str] = &[
        "bench",
        "text",
        "objective",
        "laxity",
        "period_ns",
        "library",
        "seed",
        "flat",
        "lns_iters",
        "intra_jobs",
        "budget",
        "deadline_ms",
        "tag",
        "want_verilog",
        "no_cache",
    ];
    for (k, _) in fields {
        if !KNOWN.contains(&k.as_str()) {
            return Err(format!("unknown job field `{k}`"));
        }
    }
    let source = match (v.get("bench"), v.get("text")) {
        (Some(Json::Str(name)), None) => JobSource::Bench(name.clone()),
        (None, Some(Json::Str(text))) => JobSource::Text(text.clone()),
        (Some(_), Some(_)) => return Err("job must have exactly one of `bench`/`text`".to_owned()),
        _ => return Err("job needs a `bench` name or `text` DFG source (string)".to_owned()),
    };
    let mut job = JobSpec::new(source);
    match v.get("objective").and_then(Json::as_str) {
        None if v.get("objective").is_none() => {}
        Some("area") => job.objective = Objective::Area,
        Some("power") => job.objective = Objective::Power,
        _ => return Err("job field `objective` must be \"area\" or \"power\"".to_owned()),
    }
    if let Some(l) = v.get("laxity") {
        match l.as_f64() {
            Some(f) if f > 0.0 && f.is_finite() => job.laxity = f,
            _ => return Err("job field `laxity` must be a positive number".to_owned()),
        }
    }
    if let Some(p) = v.get("period_ns") {
        match p.as_f64() {
            Some(f) if f > 0.0 && f.is_finite() => job.period_ns = Some(f),
            _ => return Err("job field `period_ns` must be a positive number".to_owned()),
        }
    }
    if let Some(lib) = v.get("library") {
        match lib.as_str() {
            Some(s) => job.library = s.to_owned(),
            None => return Err("job field `library` must be a string".to_owned()),
        }
    }
    if let Some(s) = v.get("seed") {
        match s.as_f64() {
            Some(n) if n >= 0.0 && n.fract() == 0.0 => job.seed = Some(n as u64),
            _ => return Err("job field `seed` must be a non-negative integer".to_owned()),
        }
    }
    job.flat = bool_field(v, "flat")?;
    if let Some(n) = usize_field(v, "lns_iters")? {
        job.lns_iters = n;
    }
    if let Some(n) = usize_field(v, "intra_jobs")? {
        job.intra_jobs = n;
    }
    if let Some(b) = v.get("budget") {
        let Json::Obj(bfields) = b else {
            return Err("job field `budget` must be an object".to_owned());
        };
        const BKNOWN: &[&str] = &[
            "max_passes",
            "candidate_limit",
            "eval_trace_len",
            "report_trace_len",
            "max_clock_candidates",
            "resynth_depth",
        ];
        for (k, _) in bfields {
            if !BKNOWN.contains(&k.as_str()) {
                return Err(format!("unknown budget field `{k}`"));
            }
        }
        job.budget = Some(Budget {
            max_passes: usize_field(b, "max_passes")?,
            candidate_limit: usize_field(b, "candidate_limit")?,
            eval_trace_len: usize_field(b, "eval_trace_len")?,
            report_trace_len: usize_field(b, "report_trace_len")?,
            max_clock_candidates: usize_field(b, "max_clock_candidates")?,
            resynth_depth: usize_field(b, "resynth_depth")?,
        });
    }
    if let Some(n) = usize_field(v, "deadline_ms")? {
        job.deadline_ms = Some(n as u64);
    }
    if let Some(t) = v.get("tag") {
        match t.as_str() {
            Some(s) => job.tag = Some(s.to_owned()),
            None => return Err("job field `tag` must be a string".to_owned()),
        }
    }
    job.want_verilog = bool_field(v, "want_verilog")?;
    job.no_cache = bool_field(v, "no_cache")?;
    Ok(job)
}

/// Build an `error` response frame body.
pub fn error_response(seq: Option<f64>, kind: &str, message: &str) -> Json {
    Json::Obj(vec![
        ("type".to_owned(), Json::Str("error".to_owned())),
        ("seq".to_owned(), seq.map_or(Json::Null, Json::Num)),
        ("kind".to_owned(), Json::Str(kind.to_owned())),
        ("message".to_owned(), Json::Str(message.to_owned())),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip(job: &JobSpec) -> JobSpec {
        let wire = job.to_json().to_string_pretty();
        parse_job(&Json::parse(&wire).unwrap()).unwrap()
    }

    #[test]
    fn wire_round_trip_preserves_every_field() {
        let mut job = JobSpec::new(JobSource::Bench("paulin".into()));
        assert_eq!(round_trip(&job), job);
        job.objective = Objective::Area;
        job.laxity = 3.25;
        job.period_ns = Some(140.5);
        job.library = "table1".into();
        job.seed = Some(42);
        job.flat = true;
        job.lns_iters = 3;
        job.intra_jobs = 4;
        job.budget = Some(Budget {
            max_passes: Some(2),
            candidate_limit: Some(2),
            eval_trace_len: Some(8),
            report_trace_len: Some(16),
            max_clock_candidates: Some(2),
            resynth_depth: Some(1),
        });
        job.deadline_ms = Some(5000);
        job.tag = Some("batch-7".into());
        job.want_verilog = true;
        job.no_cache = true;
        assert_eq!(round_trip(&job), job);
        let text = JobSpec::new(JobSource::Text("dfg top\nin a\nout z = a\n".into()));
        assert_eq!(round_trip(&text), text);
    }

    #[test]
    fn cache_key_ignores_non_semantic_fields_only() {
        let base = JobSpec::new(JobSource::Bench("paulin".into()));
        let key = base.cache_key();
        // Non-semantic knobs share the key...
        let mut same = base.clone();
        same.deadline_ms = Some(10);
        same.tag = Some("x".into());
        same.no_cache = true;
        same.intra_jobs = 4;
        assert_eq!(same.cache_key(), key);
        // ...every result-affecting knob forks it.
        for tweak in [
            |j: &mut JobSpec| j.objective = Objective::Area,
            |j: &mut JobSpec| j.laxity = 1.7,
            |j: &mut JobSpec| j.period_ns = Some(99.0),
            |j: &mut JobSpec| j.library = "table1".into(),
            |j: &mut JobSpec| j.seed = Some(7),
            |j: &mut JobSpec| j.flat = true,
            |j: &mut JobSpec| j.lns_iters = 2,
            |j: &mut JobSpec| {
                j.budget = Some(Budget {
                    max_passes: Some(2),
                    ..Budget::default()
                })
            },
            |j: &mut JobSpec| j.want_verilog = true,
            |j: &mut JobSpec| j.source = JobSource::Bench("fir8".into()),
            |j: &mut JobSpec| j.source = JobSource::Text("paulin".into()),
        ] {
            let mut forked = base.clone();
            tweak(&mut forked);
            assert_ne!(forked.cache_key(), key, "{forked:?} must fork the key");
        }
    }

    #[test]
    fn hostile_jobs_fail_with_structured_messages() {
        for (src, want) in [
            ("[1,2]", "must be a JSON object"),
            ("{}", "`bench` name or `text` DFG"),
            (r#"{"bench":"a","text":"b"}"#, "exactly one"),
            (r#"{"bench":"a","zzz":1}"#, "unknown job field `zzz`"),
            (r#"{"bench":"a","objective":"speed"}"#, "`objective`"),
            (r#"{"bench":"a","laxity":-1}"#, "`laxity`"),
            (r#"{"bench":"a","seed":1.5}"#, "`seed`"),
            (
                r#"{"bench":"a","budget":{"nope":1}}"#,
                "unknown budget field",
            ),
            (r#"{"bench":"a","deadline_ms":-3}"#, "`deadline_ms`"),
            (r#"{"bench":"a","flat":"yes"}"#, "`flat`"),
        ] {
            let v = Json::parse(src).unwrap();
            let err = parse_job(&v).unwrap_err();
            assert!(err.contains(want), "{src}: {err}");
        }
    }
}
