//! The `hsyn serve` daemon: accept loop, bounded job queue, worker pool,
//! cancellation registry, telemetry, and shutdown drain.
//!
//! One thread per connection reads frames and dispatches requests; `submit`
//! requests enqueue onto a bounded queue drained by a fixed worker pool
//! (`--jobs`), each worker running one synthesis at a time (layered on the
//! engine's own `intra_parallelism`). Responses are written back over the
//! submitting connection, matched by `seq`.
//!
//! Determinism contract: a job's `result_json` depends only on the job
//! spec — not on queue order, worker count, concurrent load, cache
//! temperature, or daemon restarts. The serve differential suite enforces
//! this against single-shot CLI runs byte for byte.

use std::collections::{HashMap, VecDeque};
use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

use hsyn_core::{synthesize, CancelToken, SharedAreaCache, SynthesisError};
use hsyn_dfg::{benchmarks, text, EquivClasses, Hierarchy};
use hsyn_lib::{papers::table1_library, Library};
use hsyn_rtl::{verilog_text, ModuleLibrary};
use hsyn_util::{read_frame, write_frame, FrameError, Json, MAX_FRAME};

use crate::proto::{error_response, parse_job, JobSource, JobSpec};
use crate::store::{DiskStore, JobLookup};

/// Server construction options.
#[derive(Clone, Debug)]
pub struct ServeOptions {
    /// Bind address; port 0 picks a free port (tests use this).
    pub addr: String,
    /// Concurrent synthesis workers.
    pub workers: usize,
    /// Bounded queue capacity; submits beyond it get `queue_full`.
    pub queue_cap: usize,
    /// Cache directory for the persistent stores; `None` keeps both cache
    /// layers in memory only (still warm across jobs, cold on restart).
    pub cache_dir: Option<PathBuf>,
    /// Maximum accepted frame payload, bytes.
    pub max_frame: usize,
    /// Print a listening banner and a shutdown summary to stdout.
    pub banner: bool,
}

impl Default for ServeOptions {
    fn default() -> Self {
        ServeOptions {
            addr: "127.0.0.1:0".to_owned(),
            workers: 2,
            queue_cap: 64,
            cache_dir: None,
            max_frame: MAX_FRAME,
            banner: false,
        }
    }
}

/// Daemon-lifetime counters, all monotone except the gauges. Exposed via
/// the `stats` request and printed in the shutdown summary.
#[derive(Debug, Default)]
pub struct ServerStats {
    /// Connections accepted.
    pub connections: AtomicU64,
    /// Jobs accepted onto the queue.
    pub jobs_submitted: AtomicU64,
    /// Jobs answered with a `result` (cached or computed).
    pub jobs_served: AtomicU64,
    /// Jobs that failed (bad request or synthesis error).
    pub jobs_failed: AtomicU64,
    /// Jobs aborted by explicit cancellation.
    pub jobs_cancelled: AtomicU64,
    /// Jobs aborted by deadline expiry.
    pub jobs_deadline: AtomicU64,
    /// Submits rejected because the queue was full.
    pub queue_rejected: AtomicU64,
    /// Job-cache lookups answered from disk/memory.
    pub job_cache_hits: AtomicU64,
    /// Job-cache lookups that fell through to synthesis.
    pub job_cache_misses: AtomicU64,
    /// Corrupt cache files detected and discarded (both layers).
    pub cache_discards: AtomicU64,
    /// Warm area-cache hits across all jobs (entries seeded from the
    /// shared store — work some previous job already paid for).
    pub warm_area_hits: AtomicU64,
    /// Malformed frames / JSON / requests seen.
    pub protocol_errors: AtomicU64,
    /// Current queue depth (gauge).
    pub queue_depth: AtomicU64,
    /// Jobs currently executing (gauge).
    pub active_jobs: AtomicU64,
}

/// One queued job.
struct Queued {
    seq: f64,
    job: JobSpec,
    token: CancelToken,
    writer: Arc<Mutex<TcpStream>>,
    queued_at: Instant,
}

/// The bounded job queue: `Mutex<VecDeque>` + `Condvar`, rejecting (not
/// blocking) when full so a flooded daemon degrades with structured
/// `queue_full` errors instead of backpressure deadlocks.
struct JobQueue {
    q: Mutex<VecDeque<Queued>>,
    cv: Condvar,
    cap: usize,
}

impl JobQueue {
    fn new(cap: usize) -> Self {
        JobQueue {
            q: Mutex::new(VecDeque::new()),
            cv: Condvar::new(),
            cap: cap.max(1),
        }
    }

    /// Enqueue, or return the job back (boxed: a `Queued` is wide, and the
    /// rejection path is cold) if the queue is at capacity.
    fn push(&self, item: Queued) -> Result<(), Box<Queued>> {
        let mut q = self.q.lock().expect("queue poisoned");
        if q.len() >= self.cap {
            return Err(Box::new(item));
        }
        q.push_back(item);
        drop(q);
        self.cv.notify_one();
        Ok(())
    }

    /// Blocking pop; `None` once `stop` is set and the queue is empty.
    fn pop(&self, stop: &AtomicBool) -> Option<Queued> {
        let mut q = self.q.lock().expect("queue poisoned");
        loop {
            if let Some(item) = q.pop_front() {
                return Some(item);
            }
            if stop.load(Ordering::Acquire) {
                return None;
            }
            let (guard, _) = self
                .cv
                .wait_timeout(q, Duration::from_millis(100))
                .expect("queue poisoned");
            q = guard;
        }
    }
}

/// Shared daemon state.
struct Ctx {
    opts: ServeOptions,
    stats: ServerStats,
    queue: JobQueue,
    /// Set when shutdown begins: no new submits are accepted.
    draining: AtomicBool,
    /// Set when workers and the accept loop should exit.
    stop: AtomicBool,
    /// Signalled whenever a job finishes (for the drain wait).
    idle_cv: Condvar,
    idle_mx: Mutex<()>,
    /// Live cancel tokens by job tag.
    tags: Mutex<HashMap<String, Vec<CancelToken>>>,
    /// One cross-job area store per library name.
    areas: Mutex<HashMap<String, Arc<SharedAreaCache>>>,
    store: Option<DiskStore>,
    started: Instant,
}

impl Ctx {
    fn pending_jobs(&self) -> u64 {
        self.stats.queue_depth.load(Ordering::Acquire)
            + self.stats.active_jobs.load(Ordering::Acquire)
    }

    /// The shared area store for a library, created on first use.
    fn area_store(&self, library: &str) -> Arc<SharedAreaCache> {
        let mut areas = self.areas.lock().expect("areas poisoned");
        areas
            .entry(library.to_owned())
            .or_insert_with(|| Arc::new(SharedAreaCache::new()))
            .clone()
    }

    /// Persist the area stores (no-op without a cache directory).
    fn persist_areas(&self) {
        let Some(store) = &self.store else { return };
        let areas = self.areas.lock().expect("areas poisoned");
        let mut libs: Vec<(String, Vec<_>)> = areas
            .iter()
            .map(|(name, s)| (name.clone(), s.snapshot()))
            .collect();
        drop(areas);
        libs.sort_by(|a, b| a.0.cmp(&b.0));
        // Persistence is best-effort: a failed write costs warmth, not
        // correctness, and the next job retries it.
        let _ = store.store_areas(&libs);
    }

    fn area_entries(&self) -> u64 {
        let areas = self.areas.lock().expect("areas poisoned");
        areas.values().map(|s| s.len() as u64).sum()
    }

    fn area_dropped(&self) -> u64 {
        let areas = self.areas.lock().expect("areas poisoned");
        areas.values().map(|s| s.dropped()).sum()
    }
}

/// A bound, not-yet-running daemon. `bind` then `run`; tests read
/// [`local_addr`](Self::local_addr) between the two.
pub struct Server {
    listener: TcpListener,
    ctx: Arc<Ctx>,
}

impl Server {
    /// Bind the listener and load the persistent caches.
    ///
    /// # Errors
    ///
    /// Bind failures and cache-directory creation failures.
    pub fn bind(opts: ServeOptions) -> io::Result<Server> {
        let listener = TcpListener::bind(&opts.addr)?;
        listener.set_nonblocking(true)?;
        let store = match &opts.cache_dir {
            Some(dir) => Some(DiskStore::open(dir)?),
            None => None,
        };
        let ctx = Arc::new(Ctx {
            queue: JobQueue::new(opts.queue_cap),
            stats: ServerStats::default(),
            draining: AtomicBool::new(false),
            stop: AtomicBool::new(false),
            idle_cv: Condvar::new(),
            idle_mx: Mutex::new(()),
            tags: Mutex::new(HashMap::new()),
            areas: Mutex::new(HashMap::new()),
            store,
            started: Instant::now(),
            opts,
        });
        // Warm the per-library area stores from disk. A corrupt file is
        // discarded (and counted): the daemon starts cold but correct.
        if let Some(store) = &ctx.store {
            let (libs, discards) = store.load_areas();
            ctx.stats
                .cache_discards
                .fetch_add(discards, Ordering::AcqRel);
            let mut areas = ctx.areas.lock().expect("areas poisoned");
            for (name, entries) in libs {
                let shared = Arc::new(SharedAreaCache::new());
                for (fp, a) in entries {
                    shared.insert(fp, a);
                }
                areas.insert(name, shared);
            }
        }
        Ok(Server { listener, ctx })
    }

    /// The bound address (with the real port when `addr` asked for port 0).
    ///
    /// # Errors
    ///
    /// Propagates `TcpListener::local_addr` failures.
    pub fn local_addr(&self) -> io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// Run until a `shutdown` request drains the queue. Blocks the calling
    /// thread; tests run it on a spawned thread.
    ///
    /// # Errors
    ///
    /// Fatal accept-loop I/O errors only — per-connection and per-job
    /// failures are structured protocol errors, not daemon failures.
    pub fn run(self) -> io::Result<()> {
        let ctx = self.ctx;
        if ctx.opts.banner {
            // The test harness and scripts parse this line for the port.
            println!("hsyn serve listening on {}", self.listener.local_addr()?);
            use io::Write as _;
            let _ = io::stdout().flush();
        }
        let mut workers = Vec::new();
        for _ in 0..ctx.opts.workers.max(1) {
            let ctx = ctx.clone();
            workers.push(std::thread::spawn(move || worker_loop(&ctx)));
        }
        let mut conns = Vec::new();
        while !ctx.stop.load(Ordering::Acquire) {
            match self.listener.accept() {
                Ok((stream, _)) => {
                    ctx.stats.connections.fetch_add(1, Ordering::AcqRel);
                    let ctx = ctx.clone();
                    conns.push(std::thread::spawn(move || connection_loop(&ctx, stream)));
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                    std::thread::sleep(Duration::from_millis(20));
                }
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(e) => return Err(e),
            }
        }
        ctx.queue.cv.notify_all();
        for w in workers {
            let _ = w.join();
        }
        // Connection threads exit when their peers close or on the next
        // read timeout; don't block daemon exit on lingering idle peers.
        for c in conns {
            if c.is_finished() {
                let _ = c.join();
            }
        }
        ctx.persist_areas();
        if ctx.opts.banner {
            let s = &ctx.stats;
            println!(
                "hsyn serve: {} jobs served ({} cache hits, {} warm area hits), \
                 {} failed, {} cancelled, {} deadline-expired, {} protocol errors, \
                 {} area entries persisted, up {:.1}s",
                s.jobs_served.load(Ordering::Acquire),
                s.job_cache_hits.load(Ordering::Acquire),
                s.warm_area_hits.load(Ordering::Acquire),
                s.jobs_failed.load(Ordering::Acquire),
                s.jobs_cancelled.load(Ordering::Acquire),
                s.jobs_deadline.load(Ordering::Acquire),
                s.protocol_errors.load(Ordering::Acquire),
                ctx.area_entries(),
                ctx.started.elapsed().as_secs_f64(),
            );
        }
        Ok(())
    }
}

/// Send one JSON frame, serializing writers on the connection's mutex.
fn send(writer: &Arc<Mutex<TcpStream>>, body: &Json) {
    let mut stream = writer.lock().expect("writer poisoned");
    // A dead peer is not a daemon error; the write result is dropped and
    // the reader side will observe the close.
    let _ = write_frame(&mut *stream, body.to_string_pretty().as_bytes());
}

/// Per-connection reader: frames in, dispatch, until close or a
/// connection-fatal frame error.
fn connection_loop(ctx: &Arc<Ctx>, stream: TcpStream) {
    // A peer that stalls mid-frame for minutes is dropped rather than
    // pinning the reader thread forever.
    let _ = stream.set_read_timeout(Some(Duration::from_secs(300)));
    let writer = match stream.try_clone() {
        Ok(w) => Arc::new(Mutex::new(w)),
        Err(_) => return,
    };
    let mut reader = stream;
    loop {
        match read_frame(&mut reader, ctx.opts.max_frame) {
            Ok(payload) => {
                if !dispatch(ctx, &payload, &writer) {
                    break;
                }
            }
            Err(FrameError::Closed) => break,
            Err(e) => {
                // Truncated / oversized / garbage-length frames: count,
                // answer with a structured error (best effort — the peer
                // may already be gone), and drop the connection. The
                // accept loop and all other connections are unaffected.
                ctx.stats.protocol_errors.fetch_add(1, Ordering::AcqRel);
                send(&writer, &error_response(None, "bad_frame", &e.to_string()));
                break;
            }
        }
    }
}

/// Handle one request frame. Returns `false` when the connection should
/// close (after a `shutdown` ack).
fn dispatch(ctx: &Arc<Ctx>, payload: &[u8], writer: &Arc<Mutex<TcpStream>>) -> bool {
    let Ok(text) = std::str::from_utf8(payload) else {
        ctx.stats.protocol_errors.fetch_add(1, Ordering::AcqRel);
        send(
            writer,
            &error_response(None, "bad_json", "frame payload is not UTF-8"),
        );
        return true;
    };
    let v = match Json::parse(text) {
        Ok(v) => v,
        Err(e) => {
            ctx.stats.protocol_errors.fetch_add(1, Ordering::AcqRel);
            send(
                writer,
                &error_response(None, "bad_json", &format!("frame is not JSON: {e}")),
            );
            return true;
        }
    };
    let seq = v.get("seq").and_then(Json::as_f64);
    let Some(kind) = v.get("type").and_then(Json::as_str) else {
        ctx.stats.protocol_errors.fetch_add(1, Ordering::AcqRel);
        send(
            writer,
            &error_response(seq, "bad_request", "request needs a string `type`"),
        );
        return true;
    };
    match kind {
        "ping" => {
            send(
                writer,
                &Json::Obj(vec![
                    ("type".to_owned(), Json::Str("pong".to_owned())),
                    ("seq".to_owned(), seq.map_or(Json::Null, Json::Num)),
                ]),
            );
            true
        }
        "stats" => {
            send(writer, &stats_response(ctx, seq));
            true
        }
        "cancel" => {
            let Some(tag) = v.get("tag").and_then(Json::as_str) else {
                ctx.stats.protocol_errors.fetch_add(1, Ordering::AcqRel);
                send(
                    writer,
                    &error_response(seq, "bad_request", "cancel needs a string `tag`"),
                );
                return true;
            };
            let cancelled = {
                let tags = ctx.tags.lock().expect("tags poisoned");
                match tags.get(tag) {
                    Some(tokens) => {
                        for t in tokens {
                            t.cancel();
                        }
                        tokens.len() as u64
                    }
                    None => 0,
                }
            };
            send(
                writer,
                &Json::Obj(vec![
                    ("type".to_owned(), Json::Str("cancel_ack".to_owned())),
                    ("seq".to_owned(), seq.map_or(Json::Null, Json::Num)),
                    ("cancelled".to_owned(), Json::Num(cancelled as f64)),
                ]),
            );
            true
        }
        "shutdown" => {
            ctx.draining.store(true, Ordering::Release);
            // Drain: finish every queued and running job before acking.
            let mut guard = ctx.idle_mx.lock().expect("idle poisoned");
            while ctx.pending_jobs() > 0 {
                let (g, _) = ctx
                    .idle_cv
                    .wait_timeout(guard, Duration::from_millis(100))
                    .expect("idle poisoned");
                guard = g;
            }
            drop(guard);
            ctx.persist_areas();
            send(
                writer,
                &Json::Obj(vec![
                    ("type".to_owned(), Json::Str("shutdown_ack".to_owned())),
                    ("seq".to_owned(), seq.map_or(Json::Null, Json::Num)),
                    (
                        "jobs_served".to_owned(),
                        Json::Num(ctx.stats.jobs_served.load(Ordering::Acquire) as f64),
                    ),
                ]),
            );
            ctx.stop.store(true, Ordering::Release);
            ctx.queue.cv.notify_all();
            false
        }
        "submit" => {
            let Some(job_v) = v.get("job") else {
                ctx.stats.protocol_errors.fetch_add(1, Ordering::AcqRel);
                send(
                    writer,
                    &error_response(seq, "bad_request", "submit needs a `job` object"),
                );
                return true;
            };
            let job = match parse_job(job_v) {
                Ok(j) => j,
                Err(e) => {
                    ctx.stats.protocol_errors.fetch_add(1, Ordering::AcqRel);
                    send(writer, &error_response(seq, "bad_request", &e));
                    return true;
                }
            };
            let Some(seq) = seq else {
                ctx.stats.protocol_errors.fetch_add(1, Ordering::AcqRel);
                send(
                    writer,
                    &error_response(None, "bad_request", "submit needs a numeric `seq`"),
                );
                return true;
            };
            if ctx.draining.load(Ordering::Acquire) {
                send(
                    writer,
                    &error_response(Some(seq), "draining", "daemon is shutting down"),
                );
                return true;
            }
            let token = match job.deadline_ms {
                Some(ms) => CancelToken::with_deadline(Duration::from_millis(ms)),
                None => CancelToken::new(),
            };
            if let Some(tag) = &job.tag {
                ctx.tags
                    .lock()
                    .expect("tags poisoned")
                    .entry(tag.clone())
                    .or_default()
                    .push(token.clone());
            }
            let item = Queued {
                seq,
                job,
                token,
                writer: writer.clone(),
                queued_at: Instant::now(),
            };
            match ctx.queue.push(item) {
                Ok(()) => {
                    ctx.stats.jobs_submitted.fetch_add(1, Ordering::AcqRel);
                    ctx.stats.queue_depth.fetch_add(1, Ordering::AcqRel);
                }
                Err(item) => {
                    ctx.stats.queue_rejected.fetch_add(1, Ordering::AcqRel);
                    send(
                        &item.writer,
                        &error_response(
                            Some(item.seq),
                            "queue_full",
                            &format!("job queue is at capacity ({})", ctx.opts.queue_cap),
                        ),
                    );
                }
            }
            true
        }
        other => {
            ctx.stats.protocol_errors.fetch_add(1, Ordering::AcqRel);
            send(
                writer,
                &error_response(
                    seq,
                    "bad_request",
                    &format!("unknown request type `{other}`"),
                ),
            );
            true
        }
    }
}

/// Worker: pop jobs until stopped, run each, signal the drain waiters.
fn worker_loop(ctx: &Arc<Ctx>) {
    while let Some(item) = ctx.queue.pop(&ctx.stop) {
        ctx.stats.queue_depth.fetch_sub(1, Ordering::AcqRel);
        ctx.stats.active_jobs.fetch_add(1, Ordering::AcqRel);
        run_job(ctx, &item);
        if let Some(tag) = &item.job.tag {
            let mut tags = ctx.tags.lock().expect("tags poisoned");
            if let Some(tokens) = tags.get_mut(tag) {
                tokens.retain(|t| !t.same(&item.token));
                if tokens.is_empty() {
                    tags.remove(tag);
                }
            }
        }
        ctx.stats.active_jobs.fetch_sub(1, Ordering::AcqRel);
        ctx.idle_cv.notify_all();
    }
}

/// Resolve a job's behavior source.
fn resolve_source(source: &JobSource) -> Result<(String, Hierarchy, EquivClasses), String> {
    match source {
        JobSource::Bench(name) => match benchmarks::by_name(name) {
            Some(b) => Ok((b.name.to_owned(), b.hierarchy, b.equiv)),
            None => Err(format!(
                "unknown benchmark `{name}`; available benchmarks: {}",
                benchmarks::all()
                    .iter()
                    .map(|b| b.name)
                    .collect::<Vec<_>>()
                    .join(", ")
            )),
        },
        JobSource::Text(src) => {
            let parsed = text::parse(src).map_err(|e| e.to_string())?;
            parsed.hierarchy.validate().map_err(|e| e.to_string())?;
            Ok(("<text>".to_owned(), parsed.hierarchy, parsed.equiv))
        }
    }
}

/// Resolve a job's component library (same names as the CLI).
fn resolve_library(name: &str) -> Result<Library, String> {
    match name {
        "table1" => Ok(table1_library()),
        "realistic" => Ok(Library::realistic()),
        _ => Err(format!(
            "unknown library `{name}`; available libraries: table1, realistic"
        )),
    }
}

/// Execute one job end to end: job-cache lookup, synthesis with the shared
/// area store, response, write-through persistence.
fn run_job(ctx: &Arc<Ctx>, item: &Queued) {
    let seq = item.seq;
    let job = &item.job;
    let t0 = Instant::now();

    if item.token.is_cancelled() {
        finish_cancelled(ctx, item, seq);
        return;
    }

    // Layer 1: the content-addressed response cache.
    let key = job.cache_key();
    if !job.no_cache {
        if let Some(store) = &ctx.store {
            match store.load_job(&key) {
                JobLookup::Hit(payload) => {
                    ctx.stats.job_cache_hits.fetch_add(1, Ordering::AcqRel);
                    ctx.stats.jobs_served.fetch_add(1, Ordering::AcqRel);
                    let mut fields = vec![
                        ("type".to_owned(), Json::Str("result".to_owned())),
                        ("seq".to_owned(), Json::Num(seq)),
                        ("cached".to_owned(), Json::Bool(true)),
                        ("warm_area_hits".to_owned(), Json::Num(0.0)),
                        (
                            "wall_ms".to_owned(),
                            Json::Num(t0.elapsed().as_secs_f64() * 1e3),
                        ),
                        (
                            "queue_ms".to_owned(),
                            Json::Num((t0 - item.queued_at).as_secs_f64() * 1e3),
                        ),
                    ];
                    if let Json::Obj(payload_fields) = payload {
                        fields.extend(payload_fields);
                    }
                    send(&item.writer, &Json::Obj(fields));
                    return;
                }
                JobLookup::Corrupt => {
                    ctx.stats.cache_discards.fetch_add(1, Ordering::AcqRel);
                    ctx.stats.job_cache_misses.fetch_add(1, Ordering::AcqRel);
                }
                JobLookup::Miss => {
                    ctx.stats.job_cache_misses.fetch_add(1, Ordering::AcqRel);
                }
            }
        }
    }

    // Layer 2: synthesize, seeded from the shared per-library area store.
    let (_name, hierarchy, equiv) = match resolve_source(&job.source) {
        Ok(t) => t,
        Err(e) => {
            ctx.stats.jobs_failed.fetch_add(1, Ordering::AcqRel);
            send(&item.writer, &error_response(Some(seq), "bad_request", &e));
            return;
        }
    };
    let simple = match resolve_library(&job.library) {
        Ok(l) => l,
        Err(e) => {
            ctx.stats.jobs_failed.fetch_add(1, Ordering::AcqRel);
            send(&item.writer, &error_response(Some(seq), "bad_request", &e));
            return;
        }
    };
    let mut mlib = ModuleLibrary::from_simple(simple);
    mlib.equiv = equiv;
    let shared = ctx.area_store(&job.library);
    let config = job.to_config(Some(item.token.clone()), Some(shared));

    match synthesize(&hierarchy, &mlib, &config) {
        Ok(report) => {
            let warm: u64 = report.per_config.iter().map(|c| c.warm_area_hits).sum();
            ctx.stats.warm_area_hits.fetch_add(warm, Ordering::AcqRel);
            ctx.stats.jobs_served.fetch_add(1, Ordering::AcqRel);
            let mut payload_fields =
                vec![("result_json".to_owned(), Json::Str(report.result_json()))];
            if job.want_verilog {
                payload_fields.push((
                    "verilog".to_owned(),
                    Json::Str(verilog_text(
                        &report.design.hierarchy,
                        &report.design.top.built,
                        &mlib.simple,
                        16,
                    )),
                ));
            }
            let payload = Json::Obj(payload_fields.clone());
            let mut fields = vec![
                ("type".to_owned(), Json::Str("result".to_owned())),
                ("seq".to_owned(), Json::Num(seq)),
                ("cached".to_owned(), Json::Bool(false)),
                ("warm_area_hits".to_owned(), Json::Num(warm as f64)),
                (
                    "wall_ms".to_owned(),
                    Json::Num(t0.elapsed().as_secs_f64() * 1e3),
                ),
                (
                    "queue_ms".to_owned(),
                    Json::Num((t0 - item.queued_at).as_secs_f64() * 1e3),
                ),
            ];
            fields.extend(payload_fields);
            send(&item.writer, &Json::Obj(fields));
            // Write-through both persistent layers after answering.
            if let Some(store) = &ctx.store {
                if !job.no_cache {
                    let _ = store.store_job(&key, &payload);
                }
            }
            ctx.persist_areas();
        }
        Err(SynthesisError::Cancelled) => finish_cancelled(ctx, item, seq),
        Err(e) => {
            ctx.stats.jobs_failed.fetch_add(1, Ordering::AcqRel);
            send(
                &item.writer,
                &error_response(Some(seq), "synthesis", &e.to_string()),
            );
        }
    }
}

/// Answer a cancelled job, distinguishing deadline expiry from an explicit
/// client cancel.
fn finish_cancelled(ctx: &Arc<Ctx>, item: &Queued, seq: f64) {
    if item.token.deadline_expired() {
        ctx.stats.jobs_deadline.fetch_add(1, Ordering::AcqRel);
        send(
            &item.writer,
            &error_response(
                Some(seq),
                "deadline",
                &format!(
                    "job exceeded its {} ms deadline",
                    item.job.deadline_ms.unwrap_or(0)
                ),
            ),
        );
    } else {
        ctx.stats.jobs_cancelled.fetch_add(1, Ordering::AcqRel);
        send(
            &item.writer,
            &error_response(Some(seq), "cancelled", "job was cancelled"),
        );
    }
}

/// Build the `stats` response body.
fn stats_response(ctx: &Arc<Ctx>, seq: Option<f64>) -> Json {
    fn n(v: u64) -> Json {
        Json::Num(v as f64)
    }
    let s = &ctx.stats;
    Json::Obj(vec![
        ("type".to_owned(), Json::Str("stats".to_owned())),
        ("seq".to_owned(), seq.map_or(Json::Null, Json::Num)),
        ("workers".to_owned(), n(ctx.opts.workers as u64)),
        ("queue_cap".to_owned(), n(ctx.opts.queue_cap as u64)),
        (
            "draining".to_owned(),
            Json::Bool(ctx.draining.load(Ordering::Acquire)),
        ),
        (
            "uptime_ms".to_owned(),
            Json::Num(ctx.started.elapsed().as_secs_f64() * 1e3),
        ),
        (
            "connections".to_owned(),
            n(s.connections.load(Ordering::Acquire)),
        ),
        (
            "jobs_submitted".to_owned(),
            n(s.jobs_submitted.load(Ordering::Acquire)),
        ),
        (
            "jobs_served".to_owned(),
            n(s.jobs_served.load(Ordering::Acquire)),
        ),
        (
            "jobs_failed".to_owned(),
            n(s.jobs_failed.load(Ordering::Acquire)),
        ),
        (
            "jobs_cancelled".to_owned(),
            n(s.jobs_cancelled.load(Ordering::Acquire)),
        ),
        (
            "jobs_deadline".to_owned(),
            n(s.jobs_deadline.load(Ordering::Acquire)),
        ),
        (
            "queue_depth".to_owned(),
            n(s.queue_depth.load(Ordering::Acquire)),
        ),
        (
            "active_jobs".to_owned(),
            n(s.active_jobs.load(Ordering::Acquire)),
        ),
        (
            "queue_rejected".to_owned(),
            n(s.queue_rejected.load(Ordering::Acquire)),
        ),
        (
            "job_cache_hits".to_owned(),
            n(s.job_cache_hits.load(Ordering::Acquire)),
        ),
        (
            "job_cache_misses".to_owned(),
            n(s.job_cache_misses.load(Ordering::Acquire)),
        ),
        (
            "cache_discards".to_owned(),
            n(s.cache_discards.load(Ordering::Acquire)),
        ),
        (
            "warm_area_hits".to_owned(),
            n(s.warm_area_hits.load(Ordering::Acquire)),
        ),
        (
            "protocol_errors".to_owned(),
            n(s.protocol_errors.load(Ordering::Acquire)),
        ),
        ("area_entries".to_owned(), n(ctx.area_entries())),
        ("area_dropped".to_owned(), n(ctx.area_dropped())),
        ("persistent".to_owned(), Json::Bool(ctx.store.is_some())),
    ])
}
