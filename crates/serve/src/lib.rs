//! Synthesis-as-a-service for the H-SYN reproduction.
//!
//! This crate turns the one-shot synthesis engine into a long-running
//! daemon (`hsyn serve`) with a matching synchronous client (`hsyn
//! submit`). The pieces:
//!
//! - [`proto`] — the wire protocol: JSON bodies in length-prefixed frames
//!   ([`hsyn_util::frame`]), a strict [`JobSpec`] parser, and the
//!   content-addressed [`JobSpec::cache_key`] that names a job by its
//!   semantic content (deadline, tag, and worker count excluded).
//! - [`store`] — the persistent disk cache: a content-addressed job-result
//!   cache plus a per-library area-cache snapshot, both written atomically
//!   (temp file + rename), versioned and checksummed, with corrupt files
//!   detected, discarded, and counted rather than trusted.
//! - [`server`] — the daemon: accept loop, bounded job queue, worker pool
//!   layered on the engine's `intra_parallelism`, per-job deadlines and
//!   tag-based cancellation, telemetry, and a shutdown-drain path.
//! - [`client`] — the synchronous client used by `hsyn submit` and the
//!   differential test harness.
//!
//! # Determinism contract
//!
//! A job's `result_json` depends only on the job spec. Queue order,
//! worker count, concurrent load, cache temperature (cold, warm from a
//! previous job, or warm from a previous daemon run), and cache corruption
//! recovery must all be byte-invisible in the report. The serve
//! differential suite (`tests/serve_differential.rs`) enforces this
//! against single-shot CLI runs byte for byte; the shared area store can
//! only ever be byte-inert because entries are keyed by the structural
//! fingerprints that cover everything the cost models read.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod client;
pub mod proto;
pub mod server;
pub mod store;

pub use client::{Client, ClientError, JobResult};
pub use proto::{parse_job, Budget, JobSource, JobSpec, PROTO_VERSION};
pub use server::{ServeOptions, Server, ServerStats};
pub use store::{DiskStore, JobLookup, STORE_VERSION};
