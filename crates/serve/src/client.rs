//! A synchronous client for the `hsyn serve` protocol.
//!
//! One [`Client`] owns one TCP connection and issues requests serially,
//! matching responses by `seq`. The daemon may interleave results from
//! *other* connections' jobs onto *their* sockets, never onto this one, so
//! a serial client can simply read the next frame — but [`Client::submit`]
//! still checks the echoed `seq` defensively.

use std::io;
use std::net::TcpStream;
use std::time::Duration;

use hsyn_util::{read_frame, write_frame, FrameError, Json, MAX_FRAME};

use crate::proto::JobSpec;

/// Errors a client call can produce.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ClientError {
    /// The transport failed (connect, framing, truncation, disconnect).
    Frame(FrameError),
    /// The daemon answered, but with something the client cannot use.
    Protocol(String),
    /// The daemon answered with a structured error response.
    Server {
        /// Machine-readable error kind (`bad_request`, `deadline`,
        /// `cancelled`, `queue_full`, `draining`, `synthesis`, ...).
        kind: String,
        /// Human-readable detail.
        message: String,
    },
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Frame(e) => write!(f, "transport error: {e}"),
            ClientError::Protocol(m) => write!(f, "protocol error: {m}"),
            ClientError::Server { kind, message } => write!(f, "server error [{kind}]: {message}"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<FrameError> for ClientError {
    fn from(e: FrameError) -> Self {
        ClientError::Frame(e)
    }
}

impl From<io::Error> for ClientError {
    fn from(e: io::Error) -> Self {
        ClientError::Frame(FrameError::Io(e.to_string()))
    }
}

/// A completed job as seen by the client.
#[derive(Clone, Debug)]
pub struct JobResult {
    /// The canonical deterministic report — the bytes the differential
    /// suite compares against single-shot CLI runs.
    pub result_json: String,
    /// Generated Verilog, when the job asked for it.
    pub verilog: Option<String>,
    /// Whether the daemon answered from its content-addressed job cache.
    pub cached: bool,
    /// Warm area-cache hits this job got from the cross-job store.
    pub warm_area_hits: u64,
    /// Daemon-side execution wall-clock, milliseconds.
    pub wall_ms: f64,
    /// Time the job spent queued before a worker picked it up, ms.
    pub queue_ms: f64,
}

/// A synchronous `hsyn serve` client.
#[derive(Debug)]
pub struct Client {
    stream: TcpStream,
    seq: f64,
    max_frame: usize,
}

impl Client {
    /// Connect to a daemon at `addr` (e.g. `127.0.0.1:7317`).
    ///
    /// # Errors
    ///
    /// Connection failures, as [`ClientError::Frame`].
    pub fn connect(addr: &str) -> Result<Client, ClientError> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        Ok(Client {
            stream,
            seq: 0.0,
            max_frame: MAX_FRAME,
        })
    }

    /// Set a read timeout for responses; `None` blocks indefinitely.
    ///
    /// # Errors
    ///
    /// Propagates the socket-option failure.
    pub fn set_timeout(&mut self, timeout: Option<Duration>) -> Result<(), ClientError> {
        self.stream.set_read_timeout(timeout)?;
        Ok(())
    }

    fn next_seq(&mut self) -> f64 {
        self.seq += 1.0;
        self.seq
    }

    fn roundtrip(&mut self, body: &Json) -> Result<Json, ClientError> {
        write_frame(&mut self.stream, body.to_string_pretty().as_bytes())?;
        let payload = read_frame(&mut self.stream, self.max_frame)?;
        let text = std::str::from_utf8(&payload)
            .map_err(|_| ClientError::Protocol("response is not UTF-8".to_owned()))?;
        let v = Json::parse(text)
            .map_err(|e| ClientError::Protocol(format!("response is not JSON: {e}")))?;
        if v.get("type").and_then(Json::as_str) == Some("error") {
            return Err(ClientError::Server {
                kind: v
                    .get("kind")
                    .and_then(Json::as_str)
                    .unwrap_or("unknown")
                    .to_owned(),
                message: v
                    .get("message")
                    .and_then(Json::as_str)
                    .unwrap_or("")
                    .to_owned(),
            });
        }
        Ok(v)
    }

    /// Liveness check.
    ///
    /// # Errors
    ///
    /// Transport or protocol failures.
    pub fn ping(&mut self) -> Result<(), ClientError> {
        let seq = self.next_seq();
        let v = self.roundtrip(&Json::Obj(vec![
            ("type".to_owned(), Json::Str("ping".to_owned())),
            ("seq".to_owned(), Json::Num(seq)),
        ]))?;
        if v.get("type").and_then(Json::as_str) == Some("pong") {
            Ok(())
        } else {
            Err(ClientError::Protocol("expected pong".to_owned()))
        }
    }

    /// Submit one job and block until its result (or error) arrives.
    ///
    /// # Errors
    ///
    /// [`ClientError::Server`] with kinds like `deadline`, `cancelled`,
    /// `queue_full`, or `synthesis`; transport failures as
    /// [`ClientError::Frame`].
    pub fn submit(&mut self, job: &JobSpec) -> Result<JobResult, ClientError> {
        let seq = self.next_seq();
        let v = self.roundtrip(&Json::Obj(vec![
            ("type".to_owned(), Json::Str("submit".to_owned())),
            ("seq".to_owned(), Json::Num(seq)),
            ("job".to_owned(), job.to_json()),
        ]))?;
        if v.get("type").and_then(Json::as_str) != Some("result") {
            return Err(ClientError::Protocol(format!(
                "expected a result, got type {:?}",
                v.get("type").and_then(Json::as_str)
            )));
        }
        if v.get("seq").and_then(Json::as_f64) != Some(seq) {
            return Err(ClientError::Protocol("result seq mismatch".to_owned()));
        }
        let result_json = v
            .get("result_json")
            .and_then(Json::as_str)
            .ok_or_else(|| ClientError::Protocol("result lacks result_json".to_owned()))?
            .to_owned();
        Ok(JobResult {
            result_json,
            verilog: v.get("verilog").and_then(Json::as_str).map(str::to_owned),
            cached: matches!(v.get("cached"), Some(Json::Bool(true))),
            warm_area_hits: v
                .get("warm_area_hits")
                .and_then(Json::as_f64)
                .unwrap_or(0.0) as u64,
            wall_ms: v.get("wall_ms").and_then(Json::as_f64).unwrap_or(0.0),
            queue_ms: v.get("queue_ms").and_then(Json::as_f64).unwrap_or(0.0),
        })
    }

    /// Fetch daemon telemetry as raw JSON.
    ///
    /// # Errors
    ///
    /// Transport or protocol failures.
    pub fn stats(&mut self) -> Result<Json, ClientError> {
        let seq = self.next_seq();
        let v = self.roundtrip(&Json::Obj(vec![
            ("type".to_owned(), Json::Str("stats".to_owned())),
            ("seq".to_owned(), Json::Num(seq)),
        ]))?;
        if v.get("type").and_then(Json::as_str) == Some("stats") {
            Ok(v)
        } else {
            Err(ClientError::Protocol("expected stats".to_owned()))
        }
    }

    /// Cancel every queued or running job carrying `tag`. Returns how many
    /// live tokens were tripped.
    ///
    /// # Errors
    ///
    /// Transport or protocol failures.
    pub fn cancel(&mut self, tag: &str) -> Result<u64, ClientError> {
        let seq = self.next_seq();
        let v = self.roundtrip(&Json::Obj(vec![
            ("type".to_owned(), Json::Str("cancel".to_owned())),
            ("seq".to_owned(), Json::Num(seq)),
            ("tag".to_owned(), Json::Str(tag.to_owned())),
        ]))?;
        if v.get("type").and_then(Json::as_str) != Some("cancel_ack") {
            return Err(ClientError::Protocol("expected cancel_ack".to_owned()));
        }
        Ok(v.get("cancelled").and_then(Json::as_f64).unwrap_or(0.0) as u64)
    }

    /// Ask the daemon to drain and exit. Blocks until every pending job
    /// has finished and the ack arrives. Returns the daemon's lifetime
    /// jobs-served count.
    ///
    /// # Errors
    ///
    /// Transport or protocol failures.
    pub fn shutdown(&mut self) -> Result<u64, ClientError> {
        let seq = self.next_seq();
        let v = self.roundtrip(&Json::Obj(vec![
            ("type".to_owned(), Json::Str("shutdown".to_owned())),
            ("seq".to_owned(), Json::Num(seq)),
        ]))?;
        if v.get("type").and_then(Json::as_str) != Some("shutdown_ack") {
            return Err(ClientError::Protocol("expected shutdown_ack".to_owned()));
        }
        Ok(v.get("jobs_served").and_then(Json::as_f64).unwrap_or(0.0) as u64)
    }
}
