use crate::profile::Environment;
use crate::schedule::{SchedContext, Schedule};
use hsyn_dfg::{Dfg, EdgeId, NodeId, NodeKind};

/// The relaxed timing window a module (or functional unit) must satisfy for
/// the surrounding schedule to remain feasible — the paper's *constraint
/// derivation* step (Figure 5): "each operation … is assigned a new
/// constraint for synthesis. … The new constraints must preserve
/// schedulability of the implementation."
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct ConstraintWindow {
    /// Earliest cycle each input can be guaranteed present (actual arrival
    /// in the current schedule).
    pub input_arrivals: Vec<u32>,
    /// Latest cycle each output may be produced without breaking any
    /// consumer's latest start.
    pub output_deadlines: Vec<u32>,
}

impl ConstraintWindow {
    /// View the window as an [`Environment`] for profile-admissibility
    /// checks.
    pub fn as_environment(&self) -> Environment {
        Environment {
            input_arrivals: self.input_arrivals.clone(),
            output_consumptions: self.output_deadlines.clone(),
        }
    }
}

/// Cycle-level latest-start times under the sampling period (and per-output
/// deadlines) of `ctx`, computed by a reverse longest-path pass over data
/// and serialization edges.
///
/// Durations are taken from the achieved schedule (chained operations count
/// a full cycle — conservative, so derived windows never over-promise).
/// Results are clamped from below by the achieved start times, so the
/// returned window always contains the current schedule.
pub fn alap_starts(
    g: &Dfg,
    sched: &Schedule,
    serial: &[(NodeId, NodeId)],
    ctx: &SchedContext,
) -> Vec<u32> {
    let n = g.node_count();
    let horizon = ctx.sampling_period.unwrap_or_else(|| sched.makespan());
    // Duration in cycles, conservative.
    let dur = |i: usize| -> u32 {
        let t = sched.time(NodeId::from_index(i));
        let occ = t.occupied.1.saturating_sub(t.occupied.0);
        if occ == 0 {
            return 0; // free node (input/const/output): takes no time
        }
        let res = t.result.ceil_cycle().saturating_sub(t.start.cycle);
        occ.max(res)
    };

    let mut latest_finish = vec![horizon; n];
    // Per-output deadlines tighten the producing edge.
    for (i, &outp) in g.outputs().iter().enumerate() {
        let d = ctx
            .output_deadlines
            .as_ref()
            .and_then(|v| v.get(i).copied())
            .unwrap_or(horizon);
        latest_finish[outp.index()] = latest_finish[outp.index()].min(d);
    }

    // Serialization predecessors per node, precomputed once (the reverse
    // pass was O(V·S) when it re-scanned `serial` per node).
    let mut serial_pred: Vec<Vec<u32>> = vec![Vec::new(); n];
    for &(a, b) in serial {
        serial_pred[b.index()].push(a.index() as u32);
    }

    // Reverse pass in reverse topological order: process nodes in reverse of
    // a forward order. Forward order exists because the schedule was built.
    let order = forward_order(g, serial);
    for &nid in order.iter().rev() {
        let i = nid.index();
        let ls = latest_finish[i].saturating_sub(dur(i));
        for (_, e) in g.in_edges(nid) {
            if e.delay == 0 {
                let p = e.from.node.index();
                latest_finish[p] = latest_finish[p].min(ls);
            }
        }
        for &a in &serial_pred[i] {
            let p = a as usize;
            latest_finish[p] = latest_finish[p].min(ls);
        }
    }

    (0..n)
        .map(|i| {
            let ls = latest_finish[i].saturating_sub(dur(i));
            // Never report a window tighter than the achieved schedule.
            ls.max(sched.time(NodeId::from_index(i)).start.cycle)
        })
        .collect()
}

/// The constraint window for resynthesizing the module executing
/// hierarchical node `node` (or, degenerately, a functional unit executing
/// one operation): actual input arrivals, and the latest production cycle
/// each output may have.
///
/// `alap` must come from [`alap_starts`] on the same schedule.
pub fn module_window(
    g: &Dfg,
    sched: &Schedule,
    alap: &[u32],
    ctx: &SchedContext,
    node: NodeId,
) -> ConstraintWindow {
    let horizon = ctx.sampling_period.unwrap_or_else(|| sched.makespan());
    let in_arity = g.adj().in_degree(node);
    let mut input_arrivals = vec![0u32; in_arity];
    for (_, e) in g.in_edges(node) {
        let arr = if e.delay > 0 {
            0
        } else {
            sched.result_cycle_of_port(e.from.node, e.from.port)
        };
        if let Some(slot) = input_arrivals.get_mut(e.to_port as usize) {
            *slot = arr;
        }
    }
    let out_arity = g
        .out_edges(node)
        .map(|(_, e)| e.from.port as usize + 1)
        .max()
        .unwrap_or(0);
    let mut output_deadlines = vec![horizon; out_arity];
    for (_, e) in g.out_edges(node) {
        if e.delay > 0 {
            continue; // consumed next iteration: due only by the period
        }
        let consumer = e.to;
        let due = match g.node(consumer).kind() {
            NodeKind::Output { index } => ctx
                .output_deadlines
                .as_ref()
                .and_then(|v| v.get(*index).copied())
                .unwrap_or(horizon),
            _ => alap[consumer.index()],
        };
        let slot = &mut output_deadlines[e.from.port as usize];
        *slot = (*slot).min(due);
    }
    ConstraintWindow {
        input_arrivals,
        output_deadlines,
    }
}

/// The *environment* of `node` in the current schedule: actual input
/// arrivals and actual (earliest) consumption cycle of each output.
pub fn environment_of(g: &Dfg, sched: &Schedule, node: NodeId) -> Environment {
    let in_arity = g.adj().in_degree(node);
    let mut input_arrivals = vec![0u32; in_arity];
    for (_, e) in g.in_edges(node) {
        let arr = if e.delay > 0 {
            0
        } else {
            sched.result_cycle_of_port(e.from.node, e.from.port)
        };
        if let Some(slot) = input_arrivals.get_mut(e.to_port as usize) {
            *slot = arr;
        }
    }
    let out_arity = g
        .out_edges(node)
        .map(|(_, e)| e.from.port as usize + 1)
        .max()
        .unwrap_or(0);
    let mut output_consumptions = vec![u32::MAX; out_arity];
    for (_, e) in g.out_edges(node) {
        if e.delay > 0 {
            continue;
        }
        let t = sched.time(e.to).start.cycle;
        let slot = &mut output_consumptions[e.from.port as usize];
        *slot = (*slot).min(t);
    }
    for slot in &mut output_consumptions {
        if *slot == u32::MAX {
            *slot = sched.makespan();
        }
    }
    Environment {
        input_arrivals,
        output_consumptions,
    }
}

fn forward_order(g: &Dfg, serial: &[(NodeId, NodeId)]) -> Vec<NodeId> {
    // Kahn over data (delay 0) + serial edges; the caller guarantees
    // acyclicity (a schedule was already built). Data successors come from
    // the graph's CSR adjacency, visited in the same ascending edge-id
    // order the old per-node push lists produced, so the order — and the
    // windows derived from it — is unchanged.
    let n = g.node_count();
    let adj = g.adj();
    let mut serial_succ: Vec<Vec<u32>> = vec![Vec::new(); n];
    let mut indeg = vec![0usize; n];
    for (_, e) in g.edges() {
        if e.delay == 0 {
            indeg[e.to.index()] += 1;
        }
    }
    for &(a, b) in serial {
        serial_succ[a.index()].push(b.index() as u32);
        indeg[b.index()] += 1;
    }
    let mut queue: std::collections::VecDeque<usize> = (0..n).filter(|&i| indeg[i] == 0).collect();
    let mut order = Vec::with_capacity(n);
    while let Some(i) = queue.pop_front() {
        let nid = NodeId::from_index(i);
        order.push(nid);
        for &ei in adj.out_edge_indices(nid) {
            let e = g.edge(EdgeId::from_index(ei as usize));
            if e.delay == 0 {
                let t = e.to.index();
                indeg[t] -= 1;
                if indeg[t] == 0 {
                    queue.push_back(t);
                }
            }
        }
        for &t in &serial_succ[i] {
            let t = t as usize;
            indeg[t] -= 1;
            if indeg[t] == 0 {
                queue.push_back(t);
            }
        }
    }
    debug_assert_eq!(order.len(), n, "caller guarantees acyclicity");
    order
}
