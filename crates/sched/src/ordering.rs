use hsyn_dfg::{Dfg, NodeId};
use std::collections::HashMap;
use std::hash::Hash;

/// Derive serialization edges for nodes sharing a resource (paper, Section
/// 4: "Before scheduling, we derive an ordering for the operations that
/// need to execute on the same functional unit or RTL module").
///
/// Nodes mapped to the same key by `assignment` are ordered by ascending
/// `priority` (typically unconstrained-ASAP start cycles), ties broken by
/// node index for determinism; consecutive pairs become ordering edges.
///
/// The resulting edges may conflict with data dependencies (making the
/// combined graph cyclic); the scheduler reports that as
/// [`SchedError::Cycle`](crate::SchedError::Cycle) and the candidate
/// assignment is rejected.
pub fn derive_orderings<K: Eq + Hash>(
    g: &Dfg,
    mut assignment: impl FnMut(NodeId) -> Option<K>,
    priority: &[u64],
) -> Vec<(NodeId, NodeId)> {
    let mut groups: HashMap<K, Vec<NodeId>> = HashMap::new();
    for nid in g.node_ids() {
        if let Some(k) = assignment(nid) {
            groups.entry(k).or_default().push(nid);
        }
    }
    let mut edges = Vec::new();
    // Deterministic edge order regardless of hash iteration: sort groups by
    // their smallest member.
    let mut ordered_groups: Vec<Vec<NodeId>> = groups.into_values().collect();
    ordered_groups.sort_by_key(|g| g.iter().map(|n| n.index()).min().unwrap_or(0));
    for group in &mut ordered_groups {
        group.sort_by_key(|n| (priority.get(n.index()).copied().unwrap_or(0), n.index()));
        for pair in group.windows(2) {
            edges.push((pair[0], pair[1]));
        }
    }
    edges
}

/// Unconstrained ASAP start cycles usable as ordering priorities: the
/// longest path in *cycles* assuming each schedulable node takes
/// `dur_cycles` cycles and free nodes take zero.
pub fn asap_priority(g: &Dfg, dur_cycles: impl FnMut(NodeId) -> u64) -> Vec<u64> {
    let (start, _) = hsyn_dfg::analysis::asap(g, dur_cycles)
        .expect("ordering requires an acyclic zero-delay subgraph");
    start
}
