use std::cmp::Ordering;
use std::fmt;

/// A point in schedule time: a clock cycle plus a nanosecond offset into
/// that cycle (used for operator chaining).
///
/// `Tick { cycle: c, ns: 0.0 }` is the start of cycle `c`; a combinational
/// result produced at `Tick { cycle: c, ns: t }` with `t > 0` can be chained
/// into by another operation in the same cycle, or consumed from a register
/// in cycle `c + 1` onwards.
#[derive(Copy, Clone, Debug)]
pub struct Tick {
    /// Clock cycle index from the start of the iteration.
    pub cycle: u32,
    /// Offset into the cycle, in nanoseconds (0 ≤ ns < usable period).
    pub ns: f64,
}

impl Tick {
    /// The start of cycle `cycle`.
    pub fn at_cycle(cycle: u32) -> Self {
        Tick { cycle, ns: 0.0 }
    }

    /// The origin (cycle 0, offset 0).
    pub fn zero() -> Self {
        Tick::at_cycle(0)
    }

    /// The first cycle boundary at or after this tick: `cycle` if the
    /// offset is zero, `cycle + 1` otherwise.
    pub fn ceil_cycle(self) -> u32 {
        if self.ns > 1e-9 {
            self.cycle + 1
        } else {
            self.cycle
        }
    }

    /// Whether this tick lies exactly on a cycle boundary.
    pub fn is_boundary(self) -> bool {
        self.ns <= 1e-9
    }
}

impl PartialEq for Tick {
    fn eq(&self, other: &Self) -> bool {
        self.cycle == other.cycle && (self.ns - other.ns).abs() <= 1e-9
    }
}

impl PartialOrd for Tick {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        match self.cycle.cmp(&other.cycle) {
            Ordering::Equal => {
                if (self.ns - other.ns).abs() <= 1e-9 {
                    Some(Ordering::Equal)
                } else {
                    self.ns.partial_cmp(&other.ns)
                }
            }
            o => Some(o),
        }
    }
}

impl fmt::Display for Tick {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_boundary() {
            write!(f, "c{}", self.cycle)
        } else {
            write!(f, "c{}+{:.1}ns", self.cycle, self.ns)
        }
    }
}

/// The later of two ticks.
pub fn max_tick(a: Tick, b: Tick) -> Tick {
    if a.partial_cmp(&b) == Some(Ordering::Less) {
        b
    } else {
        a
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ordering_is_lexicographic() {
        let a = Tick { cycle: 2, ns: 5.0 };
        let b = Tick { cycle: 3, ns: 0.0 };
        let c = Tick { cycle: 2, ns: 7.0 };
        assert!(a < b);
        assert!(a < c);
        assert!(c < b);
        assert_eq!(max_tick(a, c), c);
    }

    #[test]
    fn ceil_cycle_rounds_offsets_up() {
        assert_eq!(Tick::at_cycle(4).ceil_cycle(), 4);
        assert_eq!(Tick { cycle: 4, ns: 0.5 }.ceil_cycle(), 5);
        assert!(Tick::at_cycle(4).is_boundary());
        assert!(!Tick { cycle: 4, ns: 0.5 }.is_boundary());
    }

    #[test]
    fn equality_tolerates_float_noise() {
        let a = Tick { cycle: 1, ns: 3.0 };
        let b = Tick {
            cycle: 1,
            ns: 3.0 + 1e-12,
        };
        assert_eq!(a, b);
    }

    #[test]
    fn display_forms() {
        assert_eq!(Tick::at_cycle(7).to_string(), "c7");
        assert_eq!(Tick { cycle: 7, ns: 2.5 }.to_string(), "c7+2.5ns");
    }
}
