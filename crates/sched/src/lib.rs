//! Scheduling for the H-SYN reproduction.
//!
//! The paper's scheduler (Section 4): orderings for operations sharing a
//! resource are imposed as extra dependency edges, after which "scheduling
//! of a node reduces to the problem of finding the longest path from a
//! primary input to the node". This crate implements that longest-path
//! scheduler with:
//!
//! * **chaining** — combinational operations pack into one clock cycle when
//!   their summed delays fit the usable period;
//! * **multicycling** — slow units spread over several cycles;
//! * **pipelined units** — one issue per cycle, results `stages` later;
//! * **hierarchical nodes** — scheduled through module [`Profile`]s
//!   (Section 2), with the paper's `start = max(arrivalᵢ − profileᵢ)` rule;
//! * **loops** — inter-iteration (delayed) edges impose no intra-iteration
//!   precedence;
//! * **slack analysis** — [`alap_starts`], [`module_window`] and
//!   [`environment_of`] implement the constraint-derivation step feeding
//!   moves *A*/*B* of the synthesis engine.
//!
//! Scheduling `y = (a + b) + c` with 3 ns adders at a 10 ns clock
//! (1 ns register overhead) chains both adds into cycle 0:
//!
//! ```
//! use hsyn_dfg::{Dfg, Operation};
//! use hsyn_sched::{schedule, NodeDelay, SchedContext};
//!
//! let mut g = Dfg::new("chain");
//! let a = g.add_input("a");
//! let b = g.add_input("b");
//! let c = g.add_input("c");
//! let s1 = g.add_op(Operation::Add, "s1", &[a, b]);
//! let s2 = g.add_op(Operation::Add, "s2", &[s1, c]);
//! g.add_output("y", s2);
//!
//! let ctx = SchedContext::new(10.0, 1.0, Some(4)); // clk, overhead, deadline
//! let delay = |n| if g.node(n).kind().is_schedulable() {
//!     NodeDelay::Combinational { ns: 3.0 }
//! } else {
//!     NodeDelay::Free
//! };
//! let sched = schedule(&g, delay, &[], &ctx).expect("feasible");
//! assert_eq!(sched.time(s1.node).start.cycle, 0);
//! assert_eq!(sched.time(s2.node).start.cycle, 0); // chained: 3 + 3 ≤ 9 usable
//! assert_eq!(sched.makespan(), 1);
//! ```
//!
//! All per-node state is indexed by dense [`hsyn_dfg::NodeId`]s into flat
//! arrays, and dependence walks use the graph's CSR adjacency — see
//! DESIGN.md, "Data layout & arena invariants".

#![forbid(unsafe_code)]
#![deny(missing_docs)]

mod list;
mod mem;
mod ordering;
mod profile;
mod schedule;
mod slack;
mod time;

pub use list::{list_schedule, ListSchedError, ListSchedule};
pub use mem::{bank_assignment, mem_serial_edges};
pub use ordering::{asap_priority, derive_orderings};
pub use profile::{Environment, Profile};
pub use schedule::{
    result_tick_of_port, schedule, NodeDelay, NodeTime, SchedContext, SchedError, Schedule,
};
pub use slack::{alap_starts, environment_of, module_window, ConstraintWindow};
pub use time::{max_tick, Tick};

#[cfg(test)]
mod tests {
    use super::*;
    use hsyn_dfg::{Dfg, NodeId, Operation, VarRef};

    const CLK: f64 = 10.0;
    const OVH: f64 = 1.0;

    fn ctx(period: Option<u32>) -> SchedContext {
        SchedContext::new(CLK, OVH, period)
    }

    /// y = (a + b) + c with configurable adder delay.
    fn chain3() -> (Dfg, NodeId, NodeId) {
        let mut g = Dfg::new("chain3");
        let a = g.add_input("a");
        let b = g.add_input("b");
        let c = g.add_input("c");
        let s1 = g.add_op(Operation::Add, "s1", &[a, b]);
        let s2 = g.add_op(Operation::Add, "s2", &[s1, c]);
        g.add_output("y", s2);
        (g, s1.node, s2.node)
    }

    fn comb(ns: f64) -> impl FnMut(NodeId) -> NodeDelay {
        move |_| NodeDelay::Combinational { ns }
    }

    fn delay_for(g: &Dfg, ns: f64) -> impl FnMut(NodeId) -> NodeDelay + '_ {
        move |n| {
            if g.node(n).kind().is_schedulable() {
                NodeDelay::Combinational { ns }
            } else {
                NodeDelay::Free
            }
        }
    }

    #[test]
    fn two_adders_chain_in_one_cycle() {
        let (g, s1, s2) = chain3();
        let sched = schedule(&g, delay_for(&g, 3.0), &[], &ctx(Some(12))).unwrap();
        assert_eq!(sched.time(s1).start.cycle, 0);
        assert_eq!(sched.time(s2).start.cycle, 0);
        assert!((sched.time(s2).result.ns - 6.0).abs() < 1e-9);
        assert_eq!(sched.makespan(), 1);
    }

    #[test]
    fn chain_breaks_when_cycle_is_full() {
        // 5 ns adders: 5 + 5 > 9 usable ⇒ second adder starts next cycle.
        let (g, s1, s2) = chain3();
        let sched = schedule(&g, delay_for(&g, 5.0), &[], &ctx(Some(12))).unwrap();
        assert_eq!(sched.time(s1).start.cycle, 0);
        assert_eq!(sched.time(s2).start.cycle, 1);
        assert_eq!(sched.makespan(), 2);
    }

    #[test]
    fn multicycle_operation_spans_cycles() {
        let mut g = Dfg::new("m");
        let a = g.add_input("a");
        let b = g.add_input("b");
        let m = g.add_op(Operation::Mult, "m", &[a, b]);
        g.add_output("y", m);
        // 25 ns over 9 ns usable ⇒ ceil(25/9) = 3 cycles.
        let sched = schedule(&g, delay_for(&g, 25.0), &[], &ctx(Some(12))).unwrap();
        assert_eq!(sched.time(m.node).occupied, (0, 3));
        assert_eq!(sched.result_cycle(m.node), 3);
    }

    #[test]
    fn no_chaining_into_multicycle_result() {
        // mult (25 ns) then add (3 ns): the add starts at the boundary after
        // the mult completes (cycle 3), then chains within cycle 3.
        let mut g = Dfg::new("mc");
        let a = g.add_input("a");
        let b = g.add_input("b");
        let m = g.add_op(Operation::Mult, "m", &[a, b]);
        let s = g.add_op(Operation::Add, "s", &[m, a]);
        g.add_output("y", s);
        let sched = schedule(
            &g,
            |n| match g.node(n).kind() {
                hsyn_dfg::NodeKind::Op(Operation::Mult) => NodeDelay::Combinational { ns: 25.0 },
                hsyn_dfg::NodeKind::Op(_) => NodeDelay::Combinational { ns: 3.0 },
                _ => NodeDelay::Free,
            },
            &[],
            &ctx(Some(12)),
        )
        .unwrap();
        assert_eq!(sched.time(s.node).start.cycle, 3);
        assert!(sched.time(s.node).start.is_boundary());
    }

    #[test]
    fn pipelined_unit_has_full_latency_but_short_occupancy() {
        let mut g = Dfg::new("p");
        let a = g.add_input("a");
        let b = g.add_input("b");
        let m = g.add_op(Operation::Mult, "m", &[a, b]);
        g.add_output("y", m);
        let sched = schedule(
            &g,
            |n| {
                if g.node(n).kind().is_schedulable() {
                    NodeDelay::Pipelined { stages: 2 }
                } else {
                    NodeDelay::Free
                }
            },
            &[],
            &ctx(Some(12)),
        )
        .unwrap();
        assert_eq!(sched.time(m.node).occupied, (0, 1));
        assert_eq!(sched.result_cycle(m.node), 2);
    }

    #[test]
    fn pipelined_units_issue_back_to_back() {
        // Two independent mults on one pipelined unit: second issues one
        // cycle later, not `stages` later.
        let mut g = Dfg::new("pp");
        let a = g.add_input("a");
        let b = g.add_input("b");
        let m1 = g.add_op(Operation::Mult, "m1", &[a, b]);
        let m2 = g.add_op(Operation::Mult, "m2", &[a, b]);
        g.add_output("y1", m1);
        g.add_output("y2", m2);
        let serial = [(m1.node, m2.node)];
        let sched = schedule(
            &g,
            |n| {
                if g.node(n).kind().is_schedulable() {
                    NodeDelay::Pipelined { stages: 3 }
                } else {
                    NodeDelay::Free
                }
            },
            &serial,
            &ctx(Some(12)),
        )
        .unwrap();
        assert_eq!(sched.time(m1.node).start.cycle, 0);
        assert_eq!(sched.time(m2.node).start.cycle, 1);
        assert_eq!(sched.result_cycle(m2.node), 4);
    }

    #[test]
    fn serialization_delays_second_op() {
        let mut g = Dfg::new("s");
        let a = g.add_input("a");
        let b = g.add_input("b");
        let m1 = g.add_op(Operation::Mult, "m1", &[a, b]);
        let m2 = g.add_op(Operation::Mult, "m2", &[a, b]);
        g.add_output("y1", m1);
        g.add_output("y2", m2);
        let serial = [(m1.node, m2.node)];
        let sched = schedule(&g, delay_for(&g, 25.0), &serial, &ctx(Some(12))).unwrap();
        assert_eq!(sched.time(m1.node).occupied, (0, 3));
        assert_eq!(sched.time(m2.node).start.cycle, 3);
        let free = schedule(&g, delay_for(&g, 25.0), &[], &ctx(Some(12))).unwrap();
        assert_eq!(free.time(m2.node).start.cycle, 0);
    }

    #[test]
    fn conflicting_ordering_is_a_cycle_error() {
        let (g, s1, s2) = chain3();
        let serial = [(s2, s1)];
        assert_eq!(
            schedule(&g, delay_for(&g, 3.0), &serial, &ctx(Some(12))).unwrap_err(),
            SchedError::Cycle
        );
    }

    #[test]
    fn deadline_violation_reported() {
        let (g, _, _) = chain3();
        let err = schedule(&g, delay_for(&g, 5.0), &[], &ctx(Some(1))).unwrap_err();
        assert!(matches!(
            err,
            SchedError::DeadlineMissed {
                produced: 2,
                deadline: 1
            }
        ));
    }

    #[test]
    fn per_output_deadlines() {
        let (g, _, _) = chain3();
        let mut c = ctx(Some(10));
        c.output_deadlines = Some(vec![1]);
        assert!(schedule(&g, delay_for(&g, 5.0), &[], &c).is_err());
        c.output_deadlines = Some(vec![2]);
        assert!(schedule(&g, delay_for(&g, 5.0), &[], &c).is_ok());
    }

    #[test]
    fn input_arrival_times_respected() {
        let (g, s1, _) = chain3();
        let mut c = ctx(Some(12));
        c.input_arrivals = Some(vec![0, 4, 0]);
        let sched = schedule(&g, delay_for(&g, 3.0), &[], &c).unwrap();
        assert_eq!(sched.time(s1).start.cycle, 4);
    }

    #[test]
    fn profiled_node_follows_paper_rule() {
        // Example 1 numbers: profile {0,0,2,4,7}, inputs at 2,5,3,7 ⇒ start
        // 5, output at 12.
        let mut sub = Dfg::new("sub");
        let a = sub.add_input("a");
        let b = sub.add_input("b");
        let c0 = sub.add_input("c");
        let d = sub.add_input("d");
        let s = sub.add_op(Operation::Add, "s", &[a, b]);
        let s2 = sub.add_op(Operation::Add, "s2", &[s, c0]);
        let m = sub.add_op(Operation::Mult, "m", &[s2, d]);
        sub.add_output("o", m);
        let mut h = hsyn_dfg::Hierarchy::new();
        let sub_id = h.add_dfg(sub);
        let mut g = Dfg::new("h");
        let ins: Vec<VarRef> = (0..4).map(|i| g.add_input(format!("i{i}"))).collect();
        let node = g.add_hier(sub_id, "H", &[ins[0], ins[1], ins[2], ins[3]]);
        g.add_output("y", g.hier_out(node, 0));
        let mut c = ctx(Some(20));
        c.input_arrivals = Some(vec![2, 5, 3, 7]);
        let profile = Profile::new(vec![0, 0, 2, 4], vec![7]);
        let sched = schedule(
            &g,
            |n| {
                if n == node {
                    NodeDelay::Profiled(profile.clone())
                } else {
                    NodeDelay::Free
                }
            },
            &[],
            &c,
        )
        .unwrap();
        assert_eq!(sched.time(node).start.cycle, 5);
        let out = result_tick_of_port(&sched, node, 0, Some(&profile));
        assert_eq!(out.cycle, 12);
    }

    #[test]
    fn feedback_does_not_constrain_schedule() {
        let mut g = Dfg::new("acc");
        let x = g.add_input("x");
        let n = g.add_op_detached(Operation::Add, "acc");
        g.connect(x, n, 0, 0);
        g.connect(VarRef::new(n, 0), n, 1, 1);
        g.add_output("y", VarRef::new(n, 0));
        let sched = schedule(&g, delay_for(&g, 3.0), &[], &ctx(Some(4))).unwrap();
        assert_eq!(sched.time(n).start.cycle, 0);
    }

    #[test]
    fn unusable_clock_is_an_error() {
        let (g, _, _) = chain3();
        let c = SchedContext::new(0.5, 1.0, Some(10));
        assert!(matches!(
            schedule(&g, comb(3.0), &[], &c).unwrap_err(),
            SchedError::UnusableClock { .. }
        ));
    }

    // --- slack analysis ---

    #[test]
    fn alap_of_last_node_touches_deadline() {
        let (g, s1, s2) = chain3();
        let sched = schedule(&g, delay_for(&g, 5.0), &[], &ctx(Some(10))).unwrap();
        let alap = alap_starts(&g, &sched, &[], &ctx(Some(10)));
        assert_eq!(alap[s2.index()], 9);
        assert_eq!(alap[s1.index()], 8);
        assert!(alap[s1.index()] >= sched.time(s1).start.cycle);
    }

    #[test]
    fn module_window_matches_example_2_style_relaxation() {
        let mut sub = Dfg::new("sub");
        let i0 = sub.add_input("i");
        let neg = sub.add_op(Operation::Neg, "n", &[i0]);
        sub.add_output("o", neg);
        let mut h = hsyn_dfg::Hierarchy::new();
        let sub_id = h.add_dfg(sub);
        let mut g = Dfg::new("top");
        let a = g.add_input("a");
        let node = g.add_hier(sub_id, "H", &[a]);
        g.add_output("y", g.hier_out(node, 0));
        let profile = Profile::new(vec![0], vec![3]);
        let c = ctx(Some(12));
        let sched = schedule(
            &g,
            |n| {
                if n == node {
                    NodeDelay::Profiled(profile.clone())
                } else {
                    NodeDelay::Free
                }
            },
            &[],
            &c,
        )
        .unwrap();
        let alap = alap_starts(&g, &sched, &[], &c);
        let win = module_window(&g, &sched, &alap, &c, node);
        assert_eq!(win.input_arrivals, vec![0]);
        assert_eq!(win.output_deadlines, vec![12]);
        assert!(win
            .as_environment()
            .admits(&Profile::new(vec![0], vec![12])));
        assert!(!win
            .as_environment()
            .admits(&Profile::new(vec![0], vec![13])));
    }

    #[test]
    fn environment_reports_actual_consumption() {
        let mut sub = Dfg::new("sub");
        let i0 = sub.add_input("i");
        let neg = sub.add_op(Operation::Neg, "n", &[i0]);
        sub.add_output("o", neg);
        let mut h = hsyn_dfg::Hierarchy::new();
        let sub_id = h.add_dfg(sub);
        let mut g = Dfg::new("top");
        let a = g.add_input("a");
        let node = g.add_hier(sub_id, "H", &[a]);
        let s = g.add_op(Operation::Add, "s", &[g.hier_out(node, 0), a]);
        g.add_output("y", s);
        let profile = Profile::new(vec![0], vec![3]);
        let c = ctx(Some(12));
        let sched = schedule(
            &g,
            |n| {
                if n == node {
                    NodeDelay::Profiled(profile.clone())
                } else if g.node(n).kind().is_schedulable() {
                    NodeDelay::Combinational { ns: 3.0 }
                } else {
                    NodeDelay::Free
                }
            },
            &[],
            &c,
        )
        .unwrap();
        let env = environment_of(&g, &sched, node);
        assert_eq!(env.input_arrivals, vec![0]);
        // H starts at 0, its output appears at cycle 3 per the profile, and
        // the adder consumes it at cycle 3.
        assert_eq!(env.output_consumptions, vec![3]);
        assert_eq!(sched.time(s.node).start.cycle, 3);
    }

    // --- ordering derivation ---

    #[test]
    fn orderings_group_by_assignment_and_priority() {
        let mut g = Dfg::new("o");
        let a = g.add_input("a");
        let b = g.add_input("b");
        let m1 = g.add_op(Operation::Mult, "m1", &[a, b]);
        let m2 = g.add_op(Operation::Mult, "m2", &[m1, b]);
        let m3 = g.add_op(Operation::Mult, "m3", &[a, b]);
        g.add_output("y", m2);
        g.add_output("z", m3);
        let prio = asap_priority(&g, |n| {
            if g.node(n).kind().is_schedulable() {
                1
            } else {
                0
            }
        });
        let edges = derive_orderings(
            &g,
            |n| {
                if g.node(n).kind().is_schedulable() {
                    Some(0u32)
                } else {
                    None
                }
            },
            &prio,
        );
        assert_eq!(edges.len(), 2);
        let last = edges.last().unwrap();
        assert_eq!(last.1, m2.node, "data-dependent op ordered last");
        let sched = schedule(&g, delay_for(&g, 8.0), &edges, &ctx(Some(10))).unwrap();
        assert!(sched.makespan() <= 10);
    }

    #[test]
    fn schedule_is_deterministic() {
        let (g, _, _) = chain3();
        let s1 = schedule(&g, delay_for(&g, 3.0), &[], &ctx(Some(12))).unwrap();
        let s2 = schedule(&g, delay_for(&g, 3.0), &[], &ctx(Some(12))).unwrap();
        for (a, b) in s1.times().zip(s2.times()) {
            assert_eq!(a.start, b.start);
            assert_eq!(a.result, b.result);
        }
    }
}
