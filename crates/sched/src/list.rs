//! Resource-constrained list scheduling — the classic HLS scheduler the
//! paper cites as well-studied (ref. 12, Gajski et al.). The iterative
//! engine itself schedules by longest path over ordering edges; this module
//! provides the complementary formulation (fixed resource *counts*, derive
//! the schedule and an implied binding), used to cross-check the engine's
//! scheduler and to bootstrap resource-shared designs.

use hsyn_dfg::{Dfg, EdgeId, NodeId};
use std::collections::HashMap;
use std::hash::Hash;

/// Result of list scheduling.
#[derive(Clone, Debug)]
pub struct ListSchedule<K> {
    /// Start cycle per node (free nodes start with their producers).
    pub start: Vec<u32>,
    /// For resource-bound nodes: the `(class, instance index)` executing it.
    pub instance: Vec<Option<(K, usize)>>,
    /// Completion cycle.
    pub makespan: u32,
}

impl<K: Eq + Hash + Clone> ListSchedule<K> {
    /// Group nodes by assigned instance — the binding the schedule implies
    /// (feed these as `FuGroup`s to the RTL builder).
    pub fn groups(&self) -> HashMap<(K, usize), Vec<NodeId>> {
        let mut out: HashMap<(K, usize), Vec<NodeId>> = HashMap::new();
        for (i, inst) in self.instance.iter().enumerate() {
            if let Some(key) = inst {
                out.entry(key.clone())
                    .or_default()
                    .push(NodeId::from_index(i));
            }
        }
        out
    }
}

/// Why list scheduling failed.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ListSchedError {
    /// The zero-delay subgraph is cyclic.
    Cycle,
    /// A schedulable node's class has zero available instances.
    NoResource {
        /// The starved node.
        node: NodeId,
    },
    /// The deadline was exceeded.
    DeadlineMissed {
        /// Cycle the schedule would need.
        needed: u32,
        /// The deadline.
        deadline: u32,
    },
}

impl std::fmt::Display for ListSchedError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ListSchedError::Cycle => write!(f, "combinational cycle"),
            ListSchedError::NoResource { node } => {
                write!(f, "no resource instance available for {node}")
            }
            ListSchedError::DeadlineMissed { needed, deadline } => {
                write!(f, "list schedule needs cycle {needed}, deadline {deadline}")
            }
        }
    }
}

impl std::error::Error for ListSchedError {}

/// List-schedule `g` under resource constraints.
///
/// * `dur` — duration of each node in whole cycles (0 for free nodes);
/// * `class` — the resource class a node competes in (`None` = unlimited);
/// * `count` — how many instances of a class exist;
/// * `deadline` — optional completion bound.
///
/// Ready operations are prioritized by the longest remaining path to a sink
/// (critical-path list scheduling); ties break on node index, so the result
/// is deterministic.
///
/// # Errors
///
/// See [`ListSchedError`].
pub fn list_schedule<K: Eq + Hash + Clone>(
    g: &Dfg,
    mut dur: impl FnMut(NodeId) -> u32,
    mut class: impl FnMut(NodeId) -> Option<K>,
    mut count: impl FnMut(&K) -> usize,
    deadline: Option<u32>,
) -> Result<ListSchedule<K>, ListSchedError> {
    let n = g.node_count();
    let order = hsyn_dfg::analysis::topo_order(g).map_err(|_| ListSchedError::Cycle)?;
    let adj = g.adj();

    let durations: Vec<u32> = (0..n).map(|i| dur(NodeId::from_index(i))).collect();
    // Priority: longest path (in cycles) from the node to any sink,
    // computed over the CSR successor slices — O(V + E), where the seed
    // accessor scanned the whole edge arena per node.
    let mut remaining = vec![0u32; n];
    for &nid in order.iter().rev() {
        let mut best = 0;
        for &ei in adj.out_edge_indices(nid) {
            let e = g.edge(EdgeId::from_index(ei as usize));
            if e.delay == 0 {
                best = best.max(remaining[e.to.index()]);
            }
        }
        remaining[nid.index()] = best + durations[nid.index()];
    }

    // Dependency counters over zero-delay edges.
    let mut pending = vec![0usize; n];
    for (_, e) in g.edges() {
        if e.delay == 0 {
            pending[e.to.index()] += 1;
        }
    }

    // Per-class instance pools: busy-until cycle per instance.
    let mut pools: HashMap<K, Vec<u32>> = HashMap::new();
    let mut start = vec![0u32; n];
    let mut finish = vec![0u32; n];
    let mut instance: Vec<Option<(K, usize)>> = vec![None; n];
    let mut scheduled = vec![false; n];

    // Earliest data-ready cycle per node, updated as producers finish.
    let mut ready_at = vec![0u32; n];
    let mut ready: Vec<NodeId> = (0..n)
        .filter(|&i| pending[i] == 0)
        .map(NodeId::from_index)
        .collect();

    let mut cycle = 0u32;
    let mut done = 0usize;
    let hard_stop = deadline.map(|d| d + 1).unwrap_or(u32::MAX);
    while done < n {
        // Within one cycle, keep scheduling until nothing else can start
        // (newly-readied zero-duration chains start the same cycle).
        loop {
            ready.sort_by_key(|&nid| (std::cmp::Reverse(remaining[nid.index()]), nid.index()));
            let mut leftover = Vec::new();
            let mut progress = false;
            for &nid in &ready {
                let i = nid.index();
                if scheduled[i] {
                    continue;
                }
                if ready_at[i] > cycle {
                    leftover.push(nid);
                    continue;
                }
                match class(nid) {
                    None => {} // unlimited resources (free nodes)
                    Some(k) => {
                        let cap = count(&k);
                        if cap == 0 {
                            return Err(ListSchedError::NoResource { node: nid });
                        }
                        let pool = pools.entry(k.clone()).or_insert_with(|| vec![0; cap]);
                        // The instance free soonest.
                        let (slot, &busy_until) = pool
                            .iter()
                            .enumerate()
                            .min_by_key(|(_, &b)| b)
                            .expect("cap >= 1");
                        if busy_until > cycle {
                            leftover.push(nid);
                            continue;
                        }
                        instance[i] = Some((k, slot));
                        pool[slot] = cycle + durations[i].max(1);
                    }
                }
                scheduled[i] = true;
                progress = true;
                done += 1;
                start[i] = cycle;
                finish[i] = cycle + durations[i];
                for &ei in adj.out_edge_indices(nid) {
                    let e = g.edge(EdgeId::from_index(ei as usize));
                    if e.delay == 0 {
                        let t = e.to.index();
                        pending[t] -= 1;
                        ready_at[t] = ready_at[t].max(finish[i]);
                        if pending[t] == 0 {
                            leftover.push(e.to);
                        }
                    }
                }
            }
            ready = leftover;
            if !progress {
                break;
            }
        }
        if done < n {
            cycle += 1;
            if cycle >= hard_stop {
                return Err(ListSchedError::DeadlineMissed {
                    needed: cycle,
                    deadline: deadline.unwrap_or(0),
                });
            }
        }
    }

    let makespan = finish.iter().copied().max().unwrap_or(0);
    if let Some(d) = deadline {
        if makespan > d {
            return Err(ListSchedError::DeadlineMissed {
                needed: makespan,
                deadline: d,
            });
        }
    }
    Ok(ListSchedule {
        start,
        instance,
        makespan,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use hsyn_dfg::{Dfg, NodeKind, Operation, VarRef};

    /// Four independent multiplications feeding an adder tree.
    fn sop4() -> Dfg {
        let mut g = Dfg::new("sop4");
        let xs: Vec<VarRef> = (0..8).map(|i| g.add_input(format!("x{i}"))).collect();
        let mut prods = Vec::new();
        for i in 0..4 {
            prods.push(g.add_op(
                Operation::Mult,
                format!("m{i}"),
                &[xs[2 * i], xs[2 * i + 1]],
            ));
        }
        let s0 = g.add_op(Operation::Add, "s0", &[prods[0], prods[1]]);
        let s1 = g.add_op(Operation::Add, "s1", &[prods[2], prods[3]]);
        let s2 = g.add_op(Operation::Add, "s2", &[s0, s1]);
        g.add_output("y", s2);
        g
    }

    fn op_class(g: &Dfg) -> impl FnMut(NodeId) -> Option<Operation> + '_ {
        |n| match g.node(n).kind() {
            NodeKind::Op(op) => Some(*op),
            _ => None,
        }
    }

    fn dur(g: &Dfg) -> impl FnMut(NodeId) -> u32 + '_ {
        |n| match g.node(n).kind() {
            NodeKind::Op(Operation::Mult) => 3,
            NodeKind::Op(_) => 1,
            _ => 0,
        }
    }

    #[test]
    fn unlimited_resources_reproduce_asap() {
        let g = sop4();
        let s = list_schedule(&g, dur(&g), op_class(&g), |_| 8, None).unwrap();
        // All mults at 0, adds at 3, final add at 4.
        for (nid, node) in g.nodes() {
            if let NodeKind::Op(Operation::Mult) = node.kind() {
                assert_eq!(s.start[nid.index()], 0)
            }
        }
        assert_eq!(s.makespan, 5);
    }

    #[test]
    fn single_multiplier_serializes() {
        let g = sop4();
        let s = list_schedule(
            &g,
            dur(&g),
            op_class(&g),
            |k| if *k == Operation::Mult { 1 } else { 4 },
            None,
        )
        .unwrap();
        // Four 3-cycle mults on one unit: starts 0, 3, 6, 9.
        let mut starts: Vec<u32> = g
            .nodes()
            .filter(|(_, n)| matches!(n.kind(), NodeKind::Op(Operation::Mult)))
            .map(|(id, _)| s.start[id.index()])
            .collect();
        starts.sort_unstable();
        assert_eq!(starts, vec![0, 3, 6, 9]);
        assert_eq!(s.makespan, 14);
        // All four landed on the same instance.
        let groups = s.groups();
        assert_eq!(groups[&(Operation::Mult, 0)].len(), 4);
    }

    #[test]
    fn two_multipliers_halve_the_serialization() {
        let g = sop4();
        let s = list_schedule(
            &g,
            dur(&g),
            op_class(&g),
            |k| if *k == Operation::Mult { 2 } else { 4 },
            None,
        )
        .unwrap();
        assert_eq!(s.makespan, 8); // two waves of mults (0-3, 3-6) + adds
        let groups = s.groups();
        assert_eq!(
            groups
                .iter()
                .filter(|((k, _), _)| *k == Operation::Mult)
                .count(),
            2
        );
    }

    #[test]
    fn capacity_is_never_exceeded_per_cycle() {
        let g = sop4();
        let cap = 2usize;
        let s = list_schedule(
            &g,
            dur(&g),
            op_class(&g),
            |k| if *k == Operation::Mult { cap } else { 4 },
            None,
        )
        .unwrap();
        for cycle in 0..=s.makespan {
            let busy = g
                .nodes()
                .filter(|(id, n)| {
                    matches!(n.kind(), NodeKind::Op(Operation::Mult))
                        && s.start[id.index()] <= cycle
                        && cycle < s.start[id.index()] + 3
                })
                .count();
            assert!(busy <= cap, "cycle {cycle}: {busy} multipliers busy");
        }
    }

    #[test]
    fn deadline_violation_detected() {
        let g = sop4();
        let err = list_schedule(
            &g,
            dur(&g),
            op_class(&g),
            |k| if *k == Operation::Mult { 1 } else { 4 },
            Some(8),
        )
        .unwrap_err();
        assert!(matches!(err, ListSchedError::DeadlineMissed { .. }));
    }

    #[test]
    fn zero_capacity_is_an_error() {
        let g = sop4();
        let err = list_schedule(&g, dur(&g), op_class(&g), |_| 0, None).unwrap_err();
        assert!(matches!(err, ListSchedError::NoResource { .. }));
    }

    #[test]
    fn dependencies_always_respected() {
        let g = sop4();
        let s = list_schedule(
            &g,
            dur(&g),
            op_class(&g),
            |k| if *k == Operation::Mult { 3 } else { 1 },
            None,
        )
        .unwrap();
        let mut d = dur(&g);
        for (_, e) in g.edges() {
            if e.delay == 0 {
                let p = e.from.node.index();
                assert!(
                    s.start[e.to.index()] >= s.start[p] + d(e.from.node),
                    "consumer before producer"
                );
            }
        }
    }
}
