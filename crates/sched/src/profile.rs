use std::fmt;

/// The *profile* of an RTL module (paper, Section 2): the expected input
/// arrival times and the resulting output times, in clock cycles, relative
/// to the module's own start.
///
/// "Given the profile of a module and the input arrival times, the output
/// arrival times can be computed": the module starts at
/// `max_i(arrival_i - input_i)` and output `j` appears `outputs[j]` cycles
/// after the start.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Profile {
    /// Expected arrival cycle of each input, relative to module start.
    pub inputs: Vec<u32>,
    /// Production cycle of each output, relative to module start.
    pub outputs: Vec<u32>,
}

impl Profile {
    /// Build a profile; input expectations and output productions in cycles.
    pub fn new(inputs: Vec<u32>, outputs: Vec<u32>) -> Self {
        Profile { inputs, outputs }
    }

    /// Number of inputs.
    pub fn input_count(&self) -> usize {
        self.inputs.len()
    }

    /// Number of outputs.
    pub fn output_count(&self) -> usize {
        self.outputs.len()
    }

    /// The earliest start cycle at which the module can begin, given actual
    /// input `arrivals` (absolute cycles): `max(0, max_i(arrival_i -
    /// inputs_i))`.
    ///
    /// # Panics
    ///
    /// Panics if `arrivals.len() != self.input_count()`.
    pub fn start_for(&self, arrivals: &[u32]) -> u32 {
        assert_eq!(
            arrivals.len(),
            self.inputs.len(),
            "arrival count must match profile input count"
        );
        arrivals
            .iter()
            .zip(&self.inputs)
            .map(|(&a, &e)| a.saturating_sub(e))
            .max()
            .unwrap_or(0)
    }

    /// Absolute production cycles of the outputs when the module starts at
    /// `start`.
    pub fn output_times(&self, start: u32) -> Vec<u32> {
        self.outputs.iter().map(|&o| start + o).collect()
    }

    /// Total latency: the latest output time relative to start.
    pub fn latency(&self) -> u32 {
        self.outputs.iter().copied().max().unwrap_or(0)
    }

    /// Whether a module with this profile can serve a request whose inputs
    /// arrive at `arrivals` and whose outputs are due by `deadlines`
    /// (absolute cycles).
    pub fn fits(&self, arrivals: &[u32], deadlines: &[u32]) -> bool {
        if arrivals.len() != self.inputs.len() || deadlines.len() != self.outputs.len() {
            return false;
        }
        let start = self.start_for(arrivals);
        self.output_times(start)
            .iter()
            .zip(deadlines)
            .all(|(&t, &d)| t <= d)
    }
}

impl fmt::Display for Profile {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (i, t) in self.inputs.iter().chain(self.outputs.iter()).enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{t}")?;
        }
        write!(f, "}}")
    }
}

/// The *environment* of an RTL module instance for a hierarchical node
/// mapped to it (paper, Section 2): the actual arrival times of its inputs
/// and the times its outputs are consumed, in the scheduled circuit.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Environment {
    /// Absolute arrival cycle of each input.
    pub input_arrivals: Vec<u32>,
    /// Absolute cycle at which each output is (last) consumed.
    pub output_consumptions: Vec<u32>,
}

impl Environment {
    /// Whether a module with `profile`, started as early as its inputs
    /// allow, meets this environment.
    pub fn admits(&self, profile: &Profile) -> bool {
        profile.fits(&self.input_arrivals, &self.output_consumptions)
    }
}

impl fmt::Display for Environment {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (i, t) in self
            .input_arrivals
            .iter()
            .chain(self.output_consumptions.iter())
            .enumerate()
        {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{t}")?;
        }
        write!(f, "}}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The paper's Example 1, verbatim: Profile(RTL3, DFG3) = {0, 0, 2, 4,
    /// 7}; inputs at 2, 5, 3, 7 ⇒ start at 5, output at 12.
    #[test]
    fn paper_example_1_arithmetic() {
        let p = Profile::new(vec![0, 0, 2, 4], vec![7]);
        let start = p.start_for(&[2, 5, 3, 7]);
        assert_eq!(start, 5);
        assert_eq!(p.output_times(start), vec![12]);
    }

    /// Example 1 continued: all four inputs at 0 ⇒ output at 7; RTL4
    /// consumes it at 9, so Env = {0,0,0,0,9} admits the profile.
    #[test]
    fn paper_example_1_environment() {
        let p = Profile::new(vec![0, 0, 2, 4], vec![7]);
        let env = Environment {
            input_arrivals: vec![0, 0, 0, 0],
            output_consumptions: vec![9],
        };
        assert!(env.admits(&p));
        let tight = Environment {
            input_arrivals: vec![0, 0, 0, 0],
            output_consumptions: vec![6],
        };
        assert!(!tight.admits(&p));
    }

    /// Example 2: RTL2's initial profile {0,0,0,0,6,3} fits the relaxed
    /// window {0,0,0,0,9,9}; a slower profile {0,0,0,0,8,7} also fits the
    /// window but not the original consumption times.
    #[test]
    fn paper_example_2_relaxation() {
        let relaxed = Environment {
            input_arrivals: vec![0, 0, 0, 0],
            output_consumptions: vec![9, 9],
        };
        let original = Profile::new(vec![0, 0, 0, 0], vec![6, 3]);
        let slower = Profile::new(vec![0, 0, 0, 0], vec![8, 7]);
        assert!(relaxed.admits(&original));
        assert!(relaxed.admits(&slower));
        let tight = Environment {
            input_arrivals: vec![0, 0, 0, 0],
            output_consumptions: vec![6, 3],
        };
        assert!(tight.admits(&original));
        assert!(!tight.admits(&slower));
    }

    #[test]
    fn start_clamps_at_zero() {
        let p = Profile::new(vec![3, 5], vec![6]);
        assert_eq!(p.start_for(&[0, 0]), 0);
        assert_eq!(p.start_for(&[4, 0]), 1);
    }

    #[test]
    fn latency_is_max_output() {
        let p = Profile::new(vec![0], vec![3, 9, 5]);
        assert_eq!(p.latency(), 9);
    }

    #[test]
    fn fits_rejects_arity_mismatch() {
        let p = Profile::new(vec![0, 0], vec![1]);
        assert!(!p.fits(&[0], &[5]));
        assert!(!p.fits(&[0, 0], &[5, 5]));
    }

    #[test]
    #[should_panic(expected = "arrival count")]
    fn start_for_rejects_arity_mismatch() {
        Profile::new(vec![0, 0], vec![1]).start_for(&[0]);
    }

    #[test]
    fn display_matches_paper_notation() {
        let p = Profile::new(vec![0, 0, 2, 4], vec![7]);
        assert_eq!(p.to_string(), "{0, 0, 2, 4, 7}");
    }
}
