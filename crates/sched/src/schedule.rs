use crate::profile::Profile;
use crate::time::{max_tick, Tick};
use hsyn_dfg::{Dfg, EdgeId, NodeId, NodeKind};
use std::fmt;

/// Timing behavior of one node, supplied by the binding layer.
#[derive(Clone, PartialEq, Debug)]
pub enum NodeDelay {
    /// Zero-time node (input, constant, output).
    Free,
    /// Single-stage combinational unit with the given propagation delay
    /// (already scaled to the operating voltage); eligible for chaining.
    Combinational {
        /// Propagation delay in nanoseconds.
        ns: f64,
    },
    /// Pipelined unit: starts on a cycle boundary, result `stages` cycles
    /// later, can accept a new operation every cycle.
    Pipelined {
        /// Pipeline depth in cycles.
        stages: u32,
    },
    /// A hierarchical node executed by an RTL module with the given profile;
    /// starts on a cycle boundary, outputs appear per the profile.
    Profiled(Profile),
}

/// Scheduling context: clock, register overhead, and the constraint set
/// (input arrival cycles, output deadlines, sampling period).
#[derive(Clone, Debug)]
pub struct SchedContext {
    /// Clock period in nanoseconds (at the operating voltage).
    pub clk_ns: f64,
    /// Register setup + clock-to-Q overhead per cycle, in nanoseconds.
    pub overhead_ns: f64,
    /// Arrival cycle of each primary input (`None` ⇒ all at cycle 0). Part
    /// of the paper's constraint set *C*; move *B* resynthesizes modules
    /// under relaxed versions of these.
    pub input_arrivals: Option<Vec<u32>>,
    /// Deadline cycle for each primary output (`None` ⇒ only the global
    /// sampling period applies).
    pub output_deadlines: Option<Vec<u32>>,
    /// Sampling period in cycles: every output must be produced by this
    /// cycle. `None` disables the check (used when probing minimal periods).
    pub sampling_period: Option<u32>,
}

impl SchedContext {
    /// A context with all inputs at cycle 0 and a sampling period.
    pub fn new(clk_ns: f64, overhead_ns: f64, sampling_period: Option<u32>) -> Self {
        SchedContext {
            clk_ns,
            overhead_ns,
            input_arrivals: None,
            output_deadlines: None,
            sampling_period,
        }
    }

    /// Usable combinational time per cycle.
    pub fn usable_ns(&self) -> f64 {
        self.clk_ns - self.overhead_ns
    }
}

/// Scheduled timing of one node.
#[derive(Clone, Debug)]
pub struct NodeTime {
    /// When execution begins.
    pub start: Tick,
    /// When the (last) result is available; chainable if mid-cycle.
    pub result: Tick,
    /// Cycles `[occupied.0, occupied.1)` during which the node holds its
    /// resource (issue slot only, for pipelined units).
    pub occupied: (u32, u32),
}

/// A complete schedule of one DFG.
#[derive(Clone, Debug)]
pub struct Schedule {
    times: Vec<NodeTime>,
    /// For profiled (hierarchical) nodes: the absolute production cycle of
    /// each output port.
    port_times: Vec<Option<Vec<u32>>>,
    makespan: u32,
}

impl Schedule {
    /// Timing of `node`.
    ///
    /// # Panics
    ///
    /// Panics if `node` is not from the scheduled DFG.
    pub fn time(&self, node: NodeId) -> &NodeTime {
        &self.times[node.index()]
    }

    /// The cycle from which `node`'s (last) result can be consumed at a
    /// register boundary (mid-cycle results round up).
    pub fn result_cycle(&self, node: NodeId) -> u32 {
        self.times[node.index()].result.ceil_cycle()
    }

    /// The cycle from which output `port` of `node` can be consumed. Equals
    /// [`Schedule::result_cycle`] for ordinary nodes; uses the module
    /// profile for hierarchical nodes.
    pub fn result_cycle_of_port(&self, node: NodeId, port: u16) -> u32 {
        match &self.port_times[node.index()] {
            Some(v) => v
                .get(port as usize)
                .copied()
                .unwrap_or_else(|| self.result_cycle(node)),
            None => self.result_cycle(node),
        }
    }

    /// The tick at which output `port` of `node` becomes available.
    pub fn result_tick_of_port(&self, node: NodeId, port: u16) -> Tick {
        match &self.port_times[node.index()] {
            Some(v) => Tick::at_cycle(
                v.get(port as usize)
                    .copied()
                    .unwrap_or_else(|| self.result_cycle(node)),
            ),
            None => self.times[node.index()].result,
        }
    }

    /// Completion cycle of the whole iteration.
    pub fn makespan(&self) -> u32 {
        self.makespan
    }

    /// Iterate over node timings in node-id order.
    pub fn times(&self) -> impl ExactSizeIterator<Item = &NodeTime> + '_ {
        self.times.iter()
    }

    /// Per-node output-port production cycles, in node-id order: `Some` for
    /// profiled (hierarchical) nodes, `None` for ordinary ones. Exposed so
    /// structural fingerprints can cover the full schedule.
    pub fn port_times(&self) -> &[Option<Vec<u32>>] {
        &self.port_times
    }
}

/// Why scheduling failed.
#[derive(Clone, Debug, PartialEq)]
pub enum SchedError {
    /// The data-flow + serialization edge union is cyclic (an ordering
    /// conflicts with data dependencies).
    Cycle,
    /// An output missed its deadline, or activity ran past the sampling
    /// period.
    DeadlineMissed {
        /// Cycle the output is produced / activity ends.
        produced: u32,
        /// Cycle it was due.
        deadline: u32,
    },
    /// The clock period leaves no usable compute time.
    UnusableClock {
        /// The offending clock period.
        clk_ns: f64,
    },
    /// A [`NodeDelay::Profiled`] node's profile arity does not match the
    /// node's ports.
    ProfileArity {
        /// The offending node.
        node: NodeId,
    },
}

impl fmt::Display for SchedError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SchedError::Cycle => write!(f, "serialization conflicts with data dependencies"),
            SchedError::DeadlineMissed { produced, deadline } => {
                write!(f, "output produced in cycle {produced}, due {deadline}")
            }
            SchedError::UnusableClock { clk_ns } => {
                write!(f, "clock period {clk_ns} ns leaves no usable compute time")
            }
            SchedError::ProfileArity { node } => {
                write!(f, "profile arity mismatch at node {node}")
            }
        }
    }
}

impl std::error::Error for SchedError {}

/// Schedule `g` by longest path over the union of data-flow edges (delay 0)
/// and the supplied `serial` ordering edges (paper Section 4: "this ordering
/// imposes extra dependencies in the DFG, … scheduling of a node reduces to
/// the problem of finding the longest path from a primary input to the
/// node").
///
/// Chaining: a combinational node whose operands become available mid-cycle
/// starts immediately if its delay fits the remaining usable time;
/// otherwise it waits for the next boundary and multicycles if needed.
/// A `serial` edge `(a, b)` makes `b` start no earlier than the cycle in
/// which `a` releases the shared resource.
///
/// # Errors
///
/// See [`SchedError`].
pub fn schedule(
    g: &Dfg,
    mut delay: impl FnMut(NodeId) -> NodeDelay,
    serial: &[(NodeId, NodeId)],
    ctx: &SchedContext,
) -> Result<Schedule, SchedError> {
    let usable = ctx.usable_ns();
    if usable <= 0.0 {
        return Err(SchedError::UnusableClock { clk_ns: ctx.clk_ns });
    }
    let n = g.node_count();
    let order = combined_topo(g, serial)?;

    // Serialization successors per node, precomputed once: the floor-update
    // loop below was O(V·S) when it re-scanned the whole `serial` slice for
    // every scheduled node.
    let mut serial_succ: Vec<Vec<u32>> = vec![Vec::new(); n];
    for &(a, b) in serial {
        serial_succ[a.index()].push(b.index() as u32);
    }

    let mut serial_floor = vec![0u32; n];
    let mut times: Vec<Option<NodeTime>> = vec![None; n];
    let mut port_times: Vec<Option<Vec<u32>>> = vec![None; n];

    // Availability tick of the value on (producer, port).
    let avail = |times: &[Option<NodeTime>],
                 port_times: &[Option<Vec<u32>>],
                 v: hsyn_dfg::VarRef|
     -> Tick {
        let p = times[v.node.index()].as_ref().expect("topological order");
        match &port_times[v.node.index()] {
            Some(pt) => Tick::at_cycle(
                pt.get(v.port as usize)
                    .copied()
                    .unwrap_or_else(|| p.result.ceil_cycle()),
            ),
            None => p.result,
        }
    };

    for nid in order {
        let mut ready = Tick::zero();
        for (_, e) in g.in_edges(nid) {
            if e.delay == 0 {
                ready = max_tick(ready, avail(&times, &port_times, e.from));
            }
        }
        let floor = serial_floor[nid.index()];

        let time = match delay(nid) {
            NodeDelay::Free => {
                let t = match g.node(nid).kind() {
                    NodeKind::Input { index } => {
                        let arr = ctx
                            .input_arrivals
                            .as_ref()
                            .and_then(|v| v.get(*index).copied())
                            .unwrap_or(0);
                        Tick::at_cycle(arr)
                    }
                    NodeKind::Const { .. } => Tick::zero(),
                    _ => ready,
                };
                NodeTime {
                    start: t,
                    result: t,
                    occupied: (t.ceil_cycle(), t.ceil_cycle()),
                }
            }
            NodeDelay::Combinational { ns } => schedule_combinational(ready, floor, ns, usable),
            NodeDelay::Pipelined { stages } => {
                let sc = ready.ceil_cycle().max(floor);
                NodeTime {
                    start: Tick::at_cycle(sc),
                    result: Tick::at_cycle(sc + stages.max(1)),
                    occupied: (sc, sc + 1),
                }
            }
            NodeDelay::Profiled(profile) => {
                let in_arity = profile.input_count();
                let mut arrivals = Vec::with_capacity(in_arity);
                for port in 0..in_arity as u16 {
                    let e = match g.driver(nid, port) {
                        Some(e) => e,
                        None => return Err(SchedError::ProfileArity { node: nid }),
                    };
                    let arr = if e.delay > 0 {
                        0 // inter-iteration value: registered, ready at 0
                    } else {
                        avail(&times, &port_times, e.from).ceil_cycle()
                    };
                    arrivals.push(arr);
                }
                if g.adj().in_degree(nid) != in_arity {
                    return Err(SchedError::ProfileArity { node: nid });
                }
                let start = profile.start_for(&arrivals).max(floor);
                let latency = profile.latency();
                port_times[nid.index()] = Some(profile.output_times(start));
                NodeTime {
                    start: Tick::at_cycle(start),
                    result: Tick::at_cycle(start + latency),
                    occupied: (start, start + latency.max(1)),
                }
            }
        };

        let release = time.occupied.1;
        for &b in &serial_succ[nid.index()] {
            let f = &mut serial_floor[b as usize];
            *f = (*f).max(release);
        }
        times[nid.index()] = Some(time);
    }

    let times: Vec<NodeTime> = times.into_iter().map(Option::unwrap).collect();

    // Deadline checks on primary outputs.
    let avail_final = |v: hsyn_dfg::VarRef| -> u32 {
        match &port_times[v.node.index()] {
            Some(pt) => pt
                .get(v.port as usize)
                .copied()
                .unwrap_or_else(|| times[v.node.index()].result.ceil_cycle()),
            None => times[v.node.index()].result.ceil_cycle(),
        }
    };
    let mut makespan = 0u32;
    for (i, &outp) in g.outputs().iter().enumerate() {
        let e = g.driver(outp, 0).expect("validated dfg");
        let produced = if e.delay > 0 { 0 } else { avail_final(e.from) };
        makespan = makespan.max(produced);
        let deadline = ctx
            .output_deadlines
            .as_ref()
            .and_then(|v| v.get(i).copied())
            .or(ctx.sampling_period);
        if let Some(d) = deadline {
            if produced > d {
                return Err(SchedError::DeadlineMissed {
                    produced,
                    deadline: d,
                });
            }
        }
    }
    // The sampling period also bounds all internal activity.
    let busiest = times.iter().map(|t| t.occupied.1).max().unwrap_or(0);
    makespan = makespan.max(busiest);
    if let Some(p) = ctx.sampling_period {
        if busiest > p {
            return Err(SchedError::DeadlineMissed {
                produced: busiest,
                deadline: p,
            });
        }
    }

    Ok(Schedule {
        times,
        port_times,
        makespan,
    })
}

/// Free-function convenience mirroring
/// [`Schedule::result_tick_of_port`], with an explicit profile override.
pub fn result_tick_of_port(
    sched: &Schedule,
    node: NodeId,
    port: u16,
    profile: Option<&Profile>,
) -> Tick {
    match profile {
        Some(p) => {
            let start = sched.time(node).start.cycle;
            Tick::at_cycle(start + p.outputs.get(port as usize).copied().unwrap_or(0))
        }
        None => sched.result_tick_of_port(node, port),
    }
}

fn schedule_combinational(ready: Tick, floor: u32, ns: f64, usable: f64) -> NodeTime {
    // Try to chain into the partial cycle the operands arrive in.
    if ready.cycle >= floor && !ready.is_boundary() && ready.ns + ns <= usable + 1e-9 {
        return NodeTime {
            start: ready,
            result: Tick {
                cycle: ready.cycle,
                ns: ready.ns + ns,
            },
            occupied: (ready.cycle, ready.cycle + 1),
        };
    }
    // Start at a boundary.
    let sc = ready.ceil_cycle().max(floor);
    if ns <= usable + 1e-9 {
        NodeTime {
            start: Tick::at_cycle(sc),
            result: Tick { cycle: sc, ns },
            occupied: (sc, sc + 1),
        }
    } else {
        let k = (ns / usable).ceil() as u32;
        NodeTime {
            start: Tick::at_cycle(sc),
            result: Tick::at_cycle(sc + k),
            occupied: (sc, sc + k),
        }
    }
}

/// Topological order over data edges (delay 0) plus serialization edges.
///
/// Data-edge successors come straight from the graph's CSR
/// [`Adjacency`](hsyn_dfg::Adjacency) — no per-node `Vec` adjacency is
/// allocated anymore; only the (typically small) serialization overlay is
/// materialized. Successors are visited in the exact order the old
/// per-node push lists produced (data edges in ascending edge-id order,
/// then serial edges in input order), so the resulting order — and every
/// schedule built from it — is byte-identical.
fn combined_topo(g: &Dfg, serial: &[(NodeId, NodeId)]) -> Result<Vec<NodeId>, SchedError> {
    let n = g.node_count();
    let adj = g.adj();
    let mut serial_succ: Vec<Vec<u32>> = vec![Vec::new(); n];
    let mut indeg = vec![0usize; n];
    for (_, e) in g.edges() {
        if e.delay == 0 {
            indeg[e.to.index()] += 1;
        }
    }
    for &(a, b) in serial {
        serial_succ[a.index()].push(b.index() as u32);
        indeg[b.index()] += 1;
    }
    let mut queue: std::collections::VecDeque<usize> = (0..n).filter(|&i| indeg[i] == 0).collect();
    let mut order = Vec::with_capacity(n);
    while let Some(i) = queue.pop_front() {
        let nid = NodeId::from_index(i);
        order.push(nid);
        for &ei in adj.out_edge_indices(nid) {
            let e = g.edge(EdgeId::from_index(ei as usize));
            if e.delay == 0 {
                let t = e.to.index();
                indeg[t] -= 1;
                if indeg[t] == 0 {
                    queue.push_back(t);
                }
            }
        }
        for &t in &serial_succ[i] {
            let t = t as usize;
            indeg[t] -= 1;
            if indeg[t] == 0 {
                queue.push_back(t);
            }
        }
    }
    if order.len() != n {
        return Err(SchedError::Cycle);
    }
    Ok(order)
}
