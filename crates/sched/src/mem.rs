//! Memory serialization: program-order dependence edges plus per-bank port
//! conflicts.
//!
//! Loads and stores of one memory carry no data edges between each other;
//! correctness requires the scheduler to respect *program order* (each
//! access after the last write, each write after the reads since the
//! previous write — [`hsyn_dfg::mem_order_pairs`]). On top of that, a
//! memory bank is a limited per-cycle resource: a bank accepts at most
//! `ports` accesses per cycle, so within each `(memory, bank)` group the
//! accesses are chained `access[i] → access[i + ports]` — the same
//! serialization mechanism functional units use (paper, Section 4), and by
//! pigeonhole no valid schedule can then issue more than `ports` same-bank
//! accesses in one cycle.
//!
//! Bank assignment is deterministic: an access whose address port is driven
//! by a constant maps to bank `address mod banks` ([`hsyn_dfg::bank_of`]);
//! accesses with data-dependent addresses — and hierarchical calls bound to
//! the memory, whose internal access pattern is opaque here — conservatively
//! conflict with *every* bank.

use hsyn_dfg::{bank_of, const_address, mem_order_pairs, Dfg, NodeId, NodeKind};

/// Deterministic bank assignment for every node of `g`: `Some(bank)` for a
/// load or store whose address is a compile-time constant, `None` for
/// accesses with unknown addresses and for all non-access nodes.
pub fn bank_assignment(g: &Dfg) -> Vec<Option<u32>> {
    g.node_ids()
        .map(|nid| {
            let mem = g.node(nid).kind().mem_access()?;
            let addr = const_address(g, nid)?;
            Some(bank_of(g.mem(mem), addr))
        })
        .collect()
}

/// ASAP start levels over zero-delay data edges *plus* the memory
/// dependence pairs, with every schedulable node lasting one level. These
/// are the priorities the port-conflict chains sort by: because every
/// access has nonzero duration, the levels strictly increase along any
/// dependence path, so chains built in level order can never conflict with
/// data or program-order dependencies.
fn mem_asap_levels(g: &Dfg) -> Vec<u64> {
    let order = hsyn_dfg::mem_topo_order(g)
        .expect("memory serialization requires a validated (acyclic) DFG");
    let pairs = mem_order_pairs(g);
    let n = g.node_count();
    let mut extra_out: Vec<Vec<NodeId>> = vec![Vec::new(); n];
    for &(a, b) in &pairs {
        extra_out[a.index()].push(b);
    }
    let adj = g.adj();
    let mut finish = vec![0u64; n];
    let mut level = vec![0u64; n];
    for nid in order {
        // Start from the eagerly-propagated program-order level (below):
        // overwriting it with the data-edge level alone would let a
        // shallow-address load sort *before* the store it must follow,
        // and the port chain would then close a cycle with the
        // program-order pair.
        let mut s = level[nid.index()];
        for &ei in adj.in_edge_indices(nid) {
            let e = g.edge(hsyn_dfg::EdgeId::from_index(ei as usize));
            if e.delay == 0 {
                s = s.max(finish[e.from.node.index()]);
            }
        }
        level[nid.index()] = s;
        let dur = u64::from(g.node(nid).kind().is_schedulable());
        finish[nid.index()] = finish[nid.index()].max(s + dur);
        for &b in &extra_out[nid.index()] {
            // Program-order successor: starts after this access finishes.
            // Propagated eagerly (predecessors precede in the topo order).
            level[b.index()] = level[b.index()].max(finish[nid.index()]);
            finish[b.index()] = finish[b.index()].max(finish[nid.index()]);
        }
    }
    level
}

/// All memory serialization edges of `g`, ready to pass to
/// [`schedule`](crate::schedule): the program-order dependence pairs
/// (correctness) followed by the per-`(memory, bank)` port-conflict chains
/// (resource limits). Deterministic — memories in declaration order, banks
/// ascending, chain members ordered by (memory-aware ASAP level, node id) —
/// and duplicate pairs are emitted once.
///
/// # Panics
///
/// Panics if the combined dependence relation is cyclic; validate the
/// hierarchy first ([`hsyn_dfg::Hierarchy::validate`] rejects such graphs).
pub fn mem_serial_edges(g: &Dfg) -> Vec<(NodeId, NodeId)> {
    if g.mem_count() == 0 {
        return Vec::new();
    }
    let mut edges = mem_order_pairs(g);
    let levels = mem_asap_levels(g);
    let banks_of = bank_assignment(g);
    for (mid, mem) in g.mems() {
        // Accesses of this memory, in node-id order.
        let accesses: Vec<NodeId> = g
            .node_ids()
            .filter(|&nid| {
                let node = g.node(nid);
                node.kind().mem_access() == Some(mid)
                    || (matches!(node.kind(), NodeKind::Hier { .. })
                        && node.mem_binds().contains(&mid))
            })
            .collect();
        let ports = mem.ports.max(1) as usize;
        for bank in 0..mem.banks.max(1) {
            // Known same-bank accesses plus every unknown-address access.
            let mut members: Vec<NodeId> = accesses
                .iter()
                .copied()
                .filter(|&nid| banks_of[nid.index()].is_none_or(|b| b == bank))
                .collect();
            members.sort_by_key(|n| (levels[n.index()], n.index()));
            for i in 0..members.len().saturating_sub(ports) {
                edges.push((members[i], members[i + ports]));
            }
        }
    }
    // Bank chains can duplicate program-order pairs (and each other, for
    // unknown-address accesses present in several bank groups).
    let mut seen = std::collections::HashSet::new();
    edges.retain(|&e| seen.insert(e));
    edges
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{schedule, NodeDelay, SchedContext};
    use hsyn_dfg::{MemObject, Operation};

    fn ctx(period: Option<u32>) -> SchedContext {
        SchedContext::new(10.0, 1.0, period)
    }

    fn access_delay(g: &Dfg) -> impl FnMut(hsyn_dfg::NodeId) -> NodeDelay + '_ {
        move |n| match g.node(n).kind() {
            NodeKind::Load { .. } | NodeKind::Store { .. } => NodeDelay::Pipelined { stages: 1 },
            k if k.is_schedulable() => NodeDelay::Combinational { ns: 3.0 },
            _ => NodeDelay::Free,
        }
    }

    /// Four independent constant-address loads of one memory.
    fn four_loads(ports: u32, banks: u32) -> (Dfg, Vec<NodeId>) {
        let mut g = Dfg::new("ld4");
        let m = g.add_mem(
            MemObject::owned("a", 8, 16)
                .with_ports(ports)
                .with_banks(banks),
        );
        let mut loads = Vec::new();
        let mut prev: Option<hsyn_dfg::VarRef> = None;
        for i in 0..4 {
            let k = g.add_const(format!("k{i}"), i);
            let l = g.add_load(m, format!("l{i}"), k);
            loads.push(l.node);
            prev = Some(match prev {
                None => l,
                Some(p) => g.add_op(Operation::Add, format!("s{i}"), &[p, l]),
            });
        }
        g.add_output("y", prev.unwrap());
        (g, loads)
    }

    #[test]
    fn single_port_serializes_same_bank_accesses() {
        let (g, loads) = four_loads(1, 1);
        let serial = mem_serial_edges(&g);
        let sched = schedule(&g, access_delay(&g), &serial, &ctx(None)).unwrap();
        let mut starts: Vec<u32> = loads.iter().map(|&n| sched.time(n).start.cycle).collect();
        starts.sort_unstable();
        assert_eq!(starts, vec![0, 1, 2, 3], "one access per cycle");
    }

    #[test]
    fn banking_recovers_parallelism() {
        // Addresses 0..4 over 2 banks: words {0,2} in bank 0, {1,3} in bank
        // 1 — two accesses per cycle even with single-ported banks.
        let (g, loads) = four_loads(1, 2);
        let serial = mem_serial_edges(&g);
        let sched = schedule(&g, access_delay(&g), &serial, &ctx(None)).unwrap();
        let mut starts: Vec<u32> = loads.iter().map(|&n| sched.time(n).start.cycle).collect();
        starts.sort_unstable();
        assert_eq!(starts, vec![0, 0, 1, 1]);
    }

    #[test]
    fn dual_port_doubles_throughput() {
        let (g, loads) = four_loads(2, 1);
        let serial = mem_serial_edges(&g);
        let sched = schedule(&g, access_delay(&g), &serial, &ctx(None)).unwrap();
        let mut starts: Vec<u32> = loads.iter().map(|&n| sched.time(n).start.cycle).collect();
        starts.sort_unstable();
        assert_eq!(starts, vec![0, 0, 1, 1]);
    }

    #[test]
    fn unknown_address_conflicts_with_every_bank() {
        let mut g = Dfg::new("unk");
        let m = g.add_mem(MemObject::owned("a", 8, 16).with_banks(2));
        let x = g.add_input("x");
        let k0 = g.add_const("k0", 0);
        let k1 = g.add_const("k1", 1);
        let l0 = g.add_load(m, "l0", k0);
        let l1 = g.add_load(m, "l1", k1);
        let lx = g.add_load(m, "lx", x);
        let s = g.add_op(Operation::Add, "s", &[l0, l1]);
        let s2 = g.add_op(Operation::Add, "s2", &[s, lx]);
        g.add_output("y", s2);
        assert_eq!(bank_assignment(&g)[lx.node.index()], None);
        let serial = mem_serial_edges(&g);
        let sched = schedule(&g, access_delay(&g), &serial, &ctx(None)).unwrap();
        // l0 and l1 land in distinct banks (cycle 0); lx must wait for both.
        assert_eq!(sched.time(l0.node).start.cycle, 0);
        assert_eq!(sched.time(l1.node).start.cycle, 0);
        assert_eq!(sched.time(lx.node).start.cycle, 1);
    }

    #[test]
    fn program_order_pairs_serialize_store_then_load() {
        let mut g = Dfg::new("wr");
        let m = g.add_mem(MemObject::owned("a", 4, 16).with_ports(2));
        let x = g.add_input("x");
        let k = g.add_const("k", 0);
        let st = g.add_store(m, "st", k, x);
        let l = g.add_load(m, "l", k);
        g.add_output("y", l);
        let serial = mem_serial_edges(&g);
        assert!(serial.contains(&(st, l.node)), "write-before-read edge");
        let sched = schedule(&g, access_delay(&g), &serial, &ctx(None)).unwrap();
        // Dual-ported, but program order still forces the load after the
        // store releases its issue slot.
        assert!(sched.time(l.node).start.cycle > sched.time(st).start.cycle);
    }

    #[test]
    fn serial_edges_are_deterministic_and_deduped() {
        let (g, _) = four_loads(1, 2);
        let e1 = mem_serial_edges(&g);
        let e2 = mem_serial_edges(&g);
        assert_eq!(e1, e2);
        let mut d = e1.clone();
        d.sort_unstable();
        d.dedup();
        assert_eq!(d.len(), e1.len(), "no duplicate edges");
    }
}

#[cfg(test)]
mod review_probe {
    use super::*;
    use crate::{schedule, NodeDelay, SchedContext};
    use hsyn_dfg::{MemObject, Operation};

    #[test]
    fn deep_store_then_shallow_load() {
        let mut g = Dfg::new("probe");
        let m = g.add_mem(MemObject::owned("a", 4, 16));
        let x = g.add_input("x");
        let c1 = g.add_op(Operation::Add, "c1", &[x, x]);
        let c2 = g.add_op(Operation::Add, "c2", &[c1, c1]);
        let k = g.add_const("k", 0);
        let st = g.add_store(m, "st", k, c2);
        let l = g.add_load(m, "l", k);
        g.add_output("y", l);
        let serial = mem_serial_edges(&g);
        eprintln!("serial edges: {:?}", serial);
        assert!(serial.contains(&(st, l.node)), "program order st->l");
        assert!(
            !serial.contains(&(l.node, st)),
            "cyclic reverse edge present!"
        );
        let delay = |n: hsyn_dfg::NodeId| match g.node(n).kind() {
            NodeKind::Load { .. } | NodeKind::Store { .. } => NodeDelay::Pipelined { stages: 1 },
            k2 if k2.is_schedulable() => NodeDelay::Combinational { ns: 3.0 },
            _ => NodeDelay::Free,
        };
        let sched = schedule(&g, delay, &serial, &SchedContext::new(10.0, 1.0, None)).unwrap();
        assert!(sched.time(l.node).start.cycle > sched.time(st).start.cycle);
    }
}
