//! Randomized property tests on the scheduler: on random DAGs with random
//! delays and random resource serializations, schedules must respect data
//! dependencies, serialization, chaining capacity, and slack bounds.
//! Cases are generated from a fixed seed, so failures reproduce exactly;
//! set `HSYN_PROP_CASES` to widen the sweep locally.

use hsyn_dfg::{Dfg, NodeId, Operation, VarRef};
use hsyn_sched::{alap_starts, derive_orderings, schedule, NodeDelay, SchedContext};
use hsyn_util::Rng;

const CLK: f64 = 10.0;
const OVH: f64 = 1.0;

fn cases() -> u64 {
    std::env::var("HSYN_PROP_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(64)
}

fn arb_case(rng: &mut Rng) -> (Dfg, Vec<f64>, Vec<u8>) {
    let n_in = rng.range_usize(2, 5);
    let n_ops = rng.range_usize(2, 18);
    let seed = rng.next_u64();
    let mut g = Dfg::new("rand");
    let mut vars: Vec<VarRef> = (0..n_in).map(|i| g.add_input(format!("i{i}"))).collect();
    let mut state = seed | 1;
    let mut next = move || {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        (state >> 33) as usize
    };
    let mut delays = vec![0.0f64; n_in];
    let mut groups = vec![0u8; n_in];
    for k in 0..n_ops {
        let a = vars[next() % vars.len()];
        let b = vars[next() % vars.len()];
        vars.push(g.add_op(Operation::Add, format!("n{k}"), &[a, b]));
        // Delays between 2 and 26 ns: chaining, single, multicycle.
        delays.push(2.0 + (next() % 25) as f64);
        groups.push((next() % 4) as u8);
    }
    g.add_output("y", *vars.last().unwrap());
    delays.push(0.0);
    groups.push(0);
    (g, delays, groups)
}

#[test]
fn schedules_respect_dependencies_and_serialization() {
    let mut rng = Rng::seed_from_u64(0x5C_01);
    for _ in 0..cases() {
        let (g, delays, groups) = arb_case(&mut rng);
        let delay_of = |n: NodeId| {
            if g.node(n).kind().is_schedulable() {
                NodeDelay::Combinational {
                    ns: delays[n.index()],
                }
            } else {
                NodeDelay::Free
            }
        };
        // Serialize ops sharing a pseudo-random group id.
        let prio = hsyn_sched::asap_priority(&g, |n| {
            if g.node(n).kind().is_schedulable() {
                1
            } else {
                0
            }
        });
        let serial = derive_orderings(
            &g,
            |n| {
                if g.node(n).kind().is_schedulable() {
                    Some(groups[n.index()])
                } else {
                    None
                }
            },
            &prio,
        );
        let ctx = SchedContext::new(CLK, OVH, None);
        let sched = schedule(&g, delay_of, &serial, &ctx).expect("unconstrained schedules");

        // (1) Data dependencies: a consumer never starts before the
        //     producer's result is available.
        for (_, e) in g.edges() {
            if e.delay != 0 {
                continue;
            }
            if !g.node(e.to).kind().is_schedulable() {
                continue;
            }
            let p = sched.result_tick_of_port(e.from.node, e.from.port);
            let c = sched.time(e.to).start;
            assert!(
                c >= p,
                "consumer {} at {c} before producer result {p}",
                e.to
            );
        }
        // (2) Serialization: occupancy windows of serialized pairs are
        //     disjoint and ordered.
        for &(a, b) in &serial {
            let ta = sched.time(a);
            let tb = sched.time(b);
            assert!(
                tb.occupied.0 >= ta.occupied.1,
                "{a}->{b}: {:?} then {:?}",
                ta.occupied,
                tb.occupied
            );
        }
        // (3) Chaining capacity: results never exceed the usable window.
        for nid in g.node_ids() {
            let t = sched.time(nid);
            if !t.result.is_boundary() {
                assert!(t.result.ns <= ctx.usable_ns() + 1e-6);
            }
        }
        // (4) Makespan covers all activity.
        for nid in g.node_ids() {
            assert!(sched.time(nid).occupied.1 <= sched.makespan());
        }
    }
}

#[test]
fn alap_windows_contain_the_schedule() {
    let mut rng = Rng::seed_from_u64(0x5C_02);
    for _ in 0..cases() {
        let (g, delays, _groups) = arb_case(&mut rng);
        let delay_of = |n: NodeId| {
            if g.node(n).kind().is_schedulable() {
                NodeDelay::Combinational {
                    ns: delays[n.index()],
                }
            } else {
                NodeDelay::Free
            }
        };
        let ctx0 = SchedContext::new(CLK, OVH, None);
        let sched0 = schedule(&g, delay_of, &[], &ctx0).expect("schedules");
        // Re-schedule under a deadline with slack.
        let deadline = sched0.makespan() + 4;
        let ctx = SchedContext::new(CLK, OVH, Some(deadline));
        let sched = schedule(&g, delay_of, &[], &ctx).expect("fits with slack");
        let alap = alap_starts(&g, &sched, &[], &ctx);
        for nid in g.node_ids() {
            assert!(
                alap[nid.index()] >= sched.time(nid).start.cycle,
                "ALAP window excludes the achieved schedule at {nid}"
            );
            assert!(alap[nid.index()] <= deadline);
        }
    }
}

#[test]
fn tighter_deadlines_never_extend_makespan() {
    let mut rng = Rng::seed_from_u64(0x5C_03);
    for _ in 0..cases() {
        let (g, delays, _groups) = arb_case(&mut rng);
        let delay_of = |n: NodeId| {
            if g.node(n).kind().is_schedulable() {
                NodeDelay::Combinational {
                    ns: delays[n.index()],
                }
            } else {
                NodeDelay::Free
            }
        };
        let free = schedule(&g, delay_of, &[], &SchedContext::new(CLK, OVH, None)).unwrap();
        let tight = schedule(
            &g,
            delay_of,
            &[],
            &SchedContext::new(CLK, OVH, Some(free.makespan())),
        );
        // ASAP scheduling is deadline-independent: exactly feasible.
        assert!(tight.is_ok());
        assert_eq!(tight.unwrap().makespan(), free.makespan());
    }
}
