//! Experiment harness shared by the table/figure binaries: benchmark
//! libraries, the four-way (flat/hier × area/power) cell runner, and the
//! normalization arithmetic of the paper's Tables 3 and 4.

use hsyn_core::{synthesize, Objective, SynthesisConfig, SynthesisError, SynthesisReport};
use hsyn_dfg::benchmarks::Benchmark;
use hsyn_dfg::{DfgId, NodeKind, Operation};
use hsyn_lib::papers::table1_library;
use hsyn_rtl::{build, BuildCtx, ModuleLibrary, ModuleSpec};
use hsyn_util::Json;

/// Build the module library for a benchmark: the paper's Table 1 simple
/// modules, plus two pre-designed complex modules (a fast `mult1`-based and
/// a low-power `mult2`-based variant) for every instantiated building-block
/// DFG — mirroring Figure 2's `C1`/`C2` pattern — and the benchmark's
/// declared equivalence classes.
pub fn benchmark_library(bench: &Benchmark) -> ModuleLibrary {
    let mut mlib = ModuleLibrary::from_simple(table1_library());
    mlib.equiv = bench.equiv.clone();
    let lib = mlib.simple.clone();
    let h = &bench.hierarchy;

    // DFGs reachable as callees (directly or transitively), leaf-only:
    // complex library modules are flat implementations of building blocks.
    let mut callees: Vec<DfgId> = Vec::new();
    for (_, g) in h.dfgs() {
        for (_, node) in g.nodes() {
            if let NodeKind::Hier { callee } = node.kind() {
                if !callees.contains(callee) {
                    callees.push(*callee);
                }
            }
        }
    }
    // Also their equivalents (move A targets).
    for c in callees.clone() {
        for eq in bench.equiv.class_of(c) {
            if !callees.contains(&eq) {
                callees.push(eq);
            }
        }
    }

    // Hard macros are clock-specific: provide variants at every clock the
    // engine may choose.
    let clocks = lib.clock_candidates(4);
    for dfg in callees {
        let g = h.dfg(dfg);
        let is_leaf = !g
            .nodes()
            .any(|(_, n)| matches!(n.kind(), NodeKind::Hier { .. }));
        if !is_leaf {
            continue;
        }
        for &clk in &clocks {
            for (suffix, mult) in [("fast", "mult1"), ("lowpower", "mult2")] {
                let spec = ModuleSpec::dedicated(
                    h,
                    dfg,
                    format!("{}_{suffix}_{clk:.0}ns", g.name()),
                    |_, op| match op {
                        Operation::Mult => lib.fu_by_name(mult).expect("table1 multiplier"),
                        _ => lib.fu_by_name("add1").expect("table1 adder"),
                    },
                    |_, _| unreachable!("leaf dfg"),
                );
                let ctx = BuildCtx::new(&lib, clk, 5.0, None);
                if let Ok(module) = build(h, &spec, &ctx) {
                    mlib.add_complex(module, clk);
                }
            }
        }
    }
    mlib
}

/// Results of one synthesis run relevant to the tables.
#[derive(Clone, Debug)]
pub struct CellResult {
    /// Total area.
    pub area: f64,
    /// Power at the synthesis voltage.
    pub power: f64,
    /// Supply voltage of the reported design.
    pub vdd: f64,
    /// Power after voltage scaling (area-optimized runs only).
    pub scaled_power: Option<f64>,
    /// Voltage after scaling.
    pub scaled_vdd: Option<f64>,
    /// Synthesis wall-clock seconds.
    pub elapsed_s: f64,
}

impl CellResult {
    fn from_report(r: &SynthesisReport) -> Self {
        CellResult {
            area: r.evaluation.area.total(),
            power: r.evaluation.power.power,
            vdd: r.design.op.vdd,
            scaled_power: r.vdd_scaled.as_ref().map(|s| s.evaluation.power.power),
            scaled_vdd: r.vdd_scaled.as_ref().map(|s| s.design.op.vdd),
            elapsed_s: r.elapsed_s,
        }
    }
}

/// The four synthesis runs of one `(benchmark, laxity)` table cell.
#[derive(Clone, Debug)]
pub struct CellSet {
    /// Benchmark name.
    pub benchmark: String,
    /// Laxity factor.
    pub laxity: f64,
    /// Flattened, area-optimized (the normalization reference).
    pub flat_area: CellResult,
    /// Flattened, power-optimized.
    pub flat_power: CellResult,
    /// Hierarchical, area-optimized.
    pub hier_area: CellResult,
    /// Hierarchical, power-optimized.
    pub hier_power: CellResult,
}

/// Knobs for the sweep (reduced budgets keep the full table under a few
/// minutes; `--quick` in the binaries reduces further).
#[derive(Clone, Copy, Debug)]
pub struct SweepConfig {
    /// Improvement passes bound.
    pub max_passes: usize,
    /// Candidates fully evaluated per selection.
    pub candidate_limit: usize,
    /// Gain-evaluation trace length.
    pub eval_trace_len: usize,
    /// Report trace length.
    pub report_trace_len: usize,
    /// Clock candidates.
    pub max_clock_candidates: usize,
    /// Move-B recursion depth.
    pub resynth_depth: u32,
}

impl Default for SweepConfig {
    fn default() -> Self {
        SweepConfig {
            max_passes: 10,
            candidate_limit: 6,
            eval_trace_len: 32,
            report_trace_len: 192,
            max_clock_candidates: 3,
            resynth_depth: 1,
        }
    }
}

impl SweepConfig {
    /// A faster variant for smoke runs.
    pub fn quick() -> Self {
        SweepConfig {
            max_passes: 4,
            candidate_limit: 4,
            eval_trace_len: 16,
            report_trace_len: 64,
            max_clock_candidates: 2,
            resynth_depth: 1,
        }
    }

    /// The [`SynthesisConfig`] for one run.
    pub fn to_config(
        self,
        objective: Objective,
        hierarchical: bool,
        laxity: f64,
    ) -> SynthesisConfig {
        let mut c = SynthesisConfig::new(objective);
        c.laxity_factor = laxity;
        c.hierarchical = hierarchical;
        c.max_passes = self.max_passes;
        c.candidate_limit = self.candidate_limit;
        c.eval_trace_len = self.eval_trace_len;
        c.report_trace_len = self.report_trace_len;
        c.max_clock_candidates = self.max_clock_candidates;
        c.resynth_depth = self.resynth_depth;
        c
    }
}

/// Run the four synthesis modes for one `(benchmark, laxity)` cell.
///
/// # Errors
///
/// Propagates [`SynthesisError`] from any of the four runs.
pub fn run_cell(
    bench: &Benchmark,
    mlib: &ModuleLibrary,
    laxity: f64,
    sweep: SweepConfig,
) -> Result<CellSet, SynthesisError> {
    let run = |objective, hierarchical| -> Result<CellResult, SynthesisError> {
        let cfg = sweep.to_config(objective, hierarchical, laxity);
        synthesize(&bench.hierarchy, mlib, &cfg).map(|r| CellResult::from_report(&r))
    };
    Ok(CellSet {
        benchmark: bench.name.to_owned(),
        laxity,
        flat_area: run(Objective::Area, false)?,
        flat_power: run(Objective::Power, false)?,
        hier_area: run(Objective::Area, true)?,
        hier_power: run(Objective::Power, true)?,
    })
}

/// One normalized row pair of Table 3.
#[derive(Clone, Copy, Debug)]
pub struct Table3Row {
    /// Normalized areas `[flat_A, flat_P, hier_A, hier_P]`
    /// (flat area-optimized ≡ 1).
    pub area: [f64; 4],
    /// Normalized powers at 5 V reference `[flat_A, flat_P, hier_A,
    /// hier_P]` (flat area-optimized at 5 V ≡ 1).
    pub power: [f64; 4],
}

impl CellSet {
    /// Normalize per the paper's Table 3: both rows are relative to the
    /// flattened, area-optimized design at 5 V.
    pub fn table3_row(&self) -> Table3Row {
        let ref_area = self.flat_area.area;
        let ref_power = self.flat_area.power; // at 5 V (area mode synthesizes at Vref)
        Table3Row {
            area: [
                1.0,
                self.flat_power.area / ref_area,
                self.hier_area.area / ref_area,
                self.hier_power.area / ref_area,
            ],
            power: [
                1.0,
                self.flat_power.power / ref_power,
                self.hier_area.power / ref_power,
                self.hier_power.power / ref_power,
            ],
        }
    }
}

/// One row of Table 4: per-laxity averages.
#[derive(Clone, Copy, Debug)]
pub struct Table4Row {
    /// Laxity factor.
    pub laxity: f64,
    /// Average P-opt area ratio `[flat, hier]`.
    pub area_ratio: [f64; 2],
    /// Average P-opt power vs area-opt at 5 V `[flat, hier]`.
    pub power_ratio_5v: [f64; 2],
    /// Average P-opt power vs voltage-scaled area-opt `[flat, hier]`.
    pub power_ratio_scaled: [f64; 2],
    /// Average synthesis seconds (area + power runs) `[flat, hier]`.
    pub synth_time_s: [f64; 2],
}

/// Aggregate cells of one laxity factor into a Table 4 row.
pub fn table4_row(laxity: f64, cells: &[&CellSet]) -> Table4Row {
    let n = cells.len().max(1) as f64;
    let mut row = Table4Row {
        laxity,
        area_ratio: [0.0; 2],
        power_ratio_5v: [0.0; 2],
        power_ratio_scaled: [0.0; 2],
        synth_time_s: [0.0; 2],
    };
    for c in cells {
        let ref_area = c.flat_area.area;
        let ref_power = c.flat_area.power;
        row.area_ratio[0] += c.flat_power.area / ref_area;
        row.area_ratio[1] += c.hier_power.area / ref_area;
        row.power_ratio_5v[0] += c.flat_power.power / ref_power;
        row.power_ratio_5v[1] += c.hier_power.power / ref_power;
        let flat_scaled = c.flat_area.scaled_power.unwrap_or(c.flat_area.power);
        let hier_scaled = c.hier_area.scaled_power.unwrap_or(c.hier_area.power);
        row.power_ratio_scaled[0] += c.flat_power.power / flat_scaled;
        row.power_ratio_scaled[1] += c.hier_power.power / hier_scaled;
        row.synth_time_s[0] += c.flat_area.elapsed_s + c.flat_power.elapsed_s;
        row.synth_time_s[1] += c.hier_area.elapsed_s + c.hier_power.elapsed_s;
    }
    for v in [
        &mut row.area_ratio,
        &mut row.power_ratio_5v,
        &mut row.power_ratio_scaled,
        &mut row.synth_time_s,
    ] {
        v[0] /= n;
        v[1] /= n;
    }
    row
}

/// The laxity factors of the paper's tables.
pub const LAXITIES: [f64; 3] = [1.2, 2.2, 3.2];

/// Where sweep results are cached for reuse between `table3` and `table4`.
pub const RESULTS_PATH: &str = "results/table3.json";

impl CellResult {
    fn to_json(&self) -> Json {
        let opt = |v: Option<f64>| v.map_or(Json::Null, Json::Num);
        Json::Obj(vec![
            ("area".into(), Json::Num(self.area)),
            ("power".into(), Json::Num(self.power)),
            ("vdd".into(), Json::Num(self.vdd)),
            ("scaled_power".into(), opt(self.scaled_power)),
            ("scaled_vdd".into(), opt(self.scaled_vdd)),
            ("elapsed_s".into(), Json::Num(self.elapsed_s)),
        ])
    }

    fn from_json(v: &Json) -> Option<CellResult> {
        Some(CellResult {
            area: v.get("area")?.as_f64()?,
            power: v.get("power")?.as_f64()?,
            vdd: v.get("vdd")?.as_f64()?,
            scaled_power: v.get("scaled_power")?.as_f64(),
            scaled_vdd: v.get("scaled_vdd")?.as_f64(),
            elapsed_s: v.get("elapsed_s")?.as_f64()?,
        })
    }
}

impl CellSet {
    fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("benchmark".into(), Json::Str(self.benchmark.clone())),
            ("laxity".into(), Json::Num(self.laxity)),
            ("flat_area".into(), self.flat_area.to_json()),
            ("flat_power".into(), self.flat_power.to_json()),
            ("hier_area".into(), self.hier_area.to_json()),
            ("hier_power".into(), self.hier_power.to_json()),
        ])
    }

    fn from_json(v: &Json) -> Option<CellSet> {
        Some(CellSet {
            benchmark: v.get("benchmark")?.as_str()?.to_owned(),
            laxity: v.get("laxity")?.as_f64()?,
            flat_area: CellResult::from_json(v.get("flat_area")?)?,
            flat_power: CellResult::from_json(v.get("flat_power")?)?,
            hier_area: CellResult::from_json(v.get("hier_area")?)?,
            hier_power: CellResult::from_json(v.get("hier_power")?)?,
        })
    }
}

/// Serialize cells to the cache's JSON text format.
pub fn cells_to_json(cells: &[CellSet]) -> String {
    Json::Arr(cells.iter().map(CellSet::to_json).collect()).to_string_pretty()
}

/// Parse cells back from [`cells_to_json`] output; `None` on any mismatch.
pub fn cells_from_json(text: &str) -> Option<Vec<CellSet>> {
    Json::parse(text)
        .ok()?
        .as_arr()?
        .iter()
        .map(CellSet::from_json)
        .collect()
}

/// Load cached cells if present.
pub fn load_cells() -> Option<Vec<CellSet>> {
    let text = std::fs::read_to_string(RESULTS_PATH).ok()?;
    cells_from_json(&text)
}

/// Persist cells for later aggregation.
pub fn save_cells(cells: &[CellSet]) {
    let _ = std::fs::create_dir_all("results");
    let _ = std::fs::write(RESULTS_PATH, cells_to_json(cells));
}

/// A criterion-free micro-benchmark runner for the `[[bench]]` targets:
/// warms up, runs timed batches until a wall-clock budget is spent, and
/// prints min/mean per-iteration times. Deliberately simple — the targets
/// compare orders of magnitude, not nanoseconds.
pub mod timing {
    use std::time::{Duration, Instant};

    /// Time `f` for roughly `budget` of wall clock (after one warm-up
    /// call), print `name  min .. mean per iter`, and return the mean
    /// seconds per iteration.
    pub fn bench(name: &str, budget: Duration, mut f: impl FnMut()) -> f64 {
        f(); // warm-up (page in code, fill allocator pools)
        let start = Instant::now();
        let mut iters = 0u64;
        let mut min = f64::INFINITY;
        while start.elapsed() < budget {
            let t = Instant::now();
            f();
            let dt = t.elapsed().as_secs_f64();
            min = min.min(dt);
            iters += 1;
        }
        let mean = start.elapsed().as_secs_f64() / iters as f64;
        println!(
            "{name:<44} {} iters   min {:>10}   mean {:>10}",
            iters,
            fmt_s(min),
            fmt_s(mean)
        );
        mean
    }

    fn fmt_s(s: f64) -> String {
        if s >= 1.0 {
            format!("{s:.3} s")
        } else if s >= 1e-3 {
            format!("{:.3} ms", s * 1e3)
        } else {
            format!("{:.1} µs", s * 1e6)
        }
    }
}

/// Run the full Table 3 sweep (all paper benchmarks × laxities), printing
/// progress to stderr. `names` filters benchmarks when non-empty.
pub fn run_sweep(names: &[String], sweep: SweepConfig) -> Vec<CellSet> {
    let mut cells = Vec::new();
    for bench in hsyn_dfg::benchmarks::paper_suite() {
        if !names.is_empty() && !names.iter().any(|n| n == bench.name) {
            continue;
        }
        let mlib = benchmark_library(&bench);
        for &lf in &LAXITIES {
            eprint!("  {} @ L.F. {lf} ... ", bench.name);
            let t = std::time::Instant::now();
            match run_cell(&bench, &mlib, lf, sweep) {
                Ok(cell) => {
                    eprintln!("done in {:.1}s", t.elapsed().as_secs_f64());
                    cells.push(cell);
                }
                Err(e) => eprintln!("FAILED: {e}"),
            }
        }
    }
    cells
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn benchmark_library_offers_complex_variants() {
        let bench = hsyn_dfg::benchmarks::iir();
        let mlib = benchmark_library(&bench);
        // biquad_df2 and biquad_df1, fast + lowpower each.
        assert!(mlib.complex.len() >= 4);
        let df2 = bench.hierarchy.dfg_by_name("biquad_df2").unwrap();
        assert!(
            mlib.candidates_for(df2, hsyn_lib::papers::TABLE1_CLOCK_NS)
                .len()
                >= 2
        );
    }

    #[test]
    fn quick_cell_reproduces_table_shapes() {
        // A fast regression net for the whole harness: one cell of Table 3
        // on test1 must exhibit the paper's qualitative orderings.
        let bench = hsyn_dfg::benchmarks::test1();
        let mlib = benchmark_library(&bench);
        let cell = run_cell(&bench, &mlib, 2.2, SweepConfig::quick()).expect("cell runs");
        let row = cell.table3_row();
        // P-optimized designs consume less power than the 5 V area-opt
        // reference, in both modes.
        assert!(row.power[1] < 1.0, "flat-P {}", row.power[1]);
        assert!(row.power[3] < 1.0, "hier-P {}", row.power[3]);
        // P-optimized designs are at least as large as the area-opt
        // reference.
        assert!(row.area[1] >= 0.95, "flat-P area {}", row.area[1]);
        assert!(row.area[3] >= 0.95, "hier-P area {}", row.area[3]);
        // Aggregation works on a single cell.
        let t4 = table4_row(2.2, &[&cell]);
        assert!(t4.power_ratio_5v[0] < 1.0 && t4.power_ratio_5v[1] < 1.0);
        assert!(t4.synth_time_s[0] > 0.0 && t4.synth_time_s[1] > 0.0);
    }

    #[test]
    fn cells_round_trip_through_json() {
        let bench = hsyn_dfg::benchmarks::test1();
        let mlib = benchmark_library(&bench);
        let cell = run_cell(&bench, &mlib, 1.2, SweepConfig::quick()).expect("cell runs");
        let json = cells_to_json(std::slice::from_ref(&cell));
        let back = cells_from_json(&json).expect("deserializes");
        assert_eq!(back.len(), 1);
        assert_eq!(back[0].benchmark, cell.benchmark);
        assert_eq!(back[0].flat_area.area, cell.flat_area.area);
        assert_eq!(back[0].hier_power.power, cell.hier_power.power);
        assert_eq!(back[0].flat_area.scaled_vdd, cell.flat_area.scaled_vdd);
    }

    #[test]
    fn table_normalization_is_consistent() {
        let mk = |area: f64, power: f64| CellResult {
            area,
            power,
            vdd: 5.0,
            scaled_power: Some(power * 0.5),
            scaled_vdd: Some(3.3),
            elapsed_s: 1.0,
        };
        let cell = CellSet {
            benchmark: "x".into(),
            laxity: 1.2,
            flat_area: mk(100.0, 10.0),
            flat_power: mk(130.0, 6.0),
            hier_area: mk(105.0, 9.0),
            hier_power: mk(140.0, 5.0),
        };
        let row = cell.table3_row();
        assert_eq!(row.area, [1.0, 1.3, 1.05, 1.4]);
        assert_eq!(row.power, [1.0, 0.6, 0.9, 0.5]);
        let t4 = table4_row(1.2, &[&cell]);
        assert!((t4.area_ratio[0] - 1.3).abs() < 1e-12);
        assert!((t4.power_ratio_scaled[0] - 6.0 / 5.0).abs() < 1e-12);
    }
}
