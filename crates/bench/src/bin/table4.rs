//! Regenerate the paper's **Table 4**: per-laxity averages of the
//! power-optimized area ratio, power ratios (vs 5 V and vs voltage-scaled
//! area-optimized baselines), and synthesis time, flattened vs
//! hierarchical.
//!
//! Reuses `results/table3.json` when present (run `table3` first);
//! otherwise runs the sweep itself.
//!
//! ```text
//! cargo run --release -p hsyn-bench --bin table4 [--quick] [--fresh]
//! ```

use hsyn_bench::{load_cells, run_sweep, save_cells, table4_row, SweepConfig, LAXITIES};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let fresh = args.iter().any(|a| a == "--fresh");

    let cells = match (fresh, load_cells()) {
        (false, Some(cells)) if !cells.is_empty() => {
            eprintln!("(reusing {} cells from results/table3.json)", cells.len());
            cells
        }
        _ => {
            let sweep = if quick {
                SweepConfig::quick()
            } else {
                SweepConfig::default()
            };
            eprintln!("Table 4 sweep:");
            let cells = run_sweep(&[], sweep);
            save_cells(&cells);
            cells
        }
    };

    println!("\nTable 4: summary of area (ratio), power (ratio), and synthesis time (seconds)\n");
    println!(
        "{:<6}{:>14}{:>22}{:>22}{:>18}",
        "L.F.", "Area ratio", "Power ratio (5V)", "Power ratio (Vdd-sc)", "Synth. time (s)"
    );
    println!(
        "{:<6}{:>7}{:>7}{:>11}{:>11}{:>11}{:>11}{:>9}{:>9}",
        "", "Fl", "Hi", "Fl", "Hi", "Fl", "Hi", "Fl", "Hi"
    );
    for &lf in &LAXITIES {
        let group: Vec<_> = cells.iter().filter(|c| c.laxity == lf).collect();
        if group.is_empty() {
            continue;
        }
        let row = table4_row(lf, &group);
        println!(
            "{:<6.1}{:>7.2}{:>7.2}{:>11.2}{:>11.2}{:>11.2}{:>11.2}{:>9.1}{:>9.1}",
            row.laxity,
            row.area_ratio[0],
            row.area_ratio[1],
            row.power_ratio_5v[0],
            row.power_ratio_5v[1],
            row.power_ratio_scaled[0],
            row.power_ratio_scaled[1],
            row.synth_time_s[0],
            row.synth_time_s[1],
        );
    }
    println!("\n(paper, SGI Challenge 1998: L.F. 1.2 ⇒ Fl 1.28/Hi 1.36 area, .51/.47 power@5V,");
    println!(" .60/.55 power@Vdd-sc, 844/261 s — shapes, not absolute values, are the target)");
}
