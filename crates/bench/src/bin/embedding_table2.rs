//! Regenerate the paper's **Figure 3 / Table 2 / Example 3**: RTL
//! embedding. Two modules (`RTL1`, `RTL2`) implementing different DFGs are
//! merged into `NewRTL`; the component labeling and the area relation
//! (`max(a₁,a₂) ≤ a_new ≪ a₁+a₂`) are printed.
//!
//! ```text
//! cargo run --release -p hsyn-bench --bin embedding_table2
//! ```

use hsyn_rtl::{embed, module_area, netlist_text, papers::figure3_modules};

fn main() {
    let (h, rtl1, rtl2, lib) = figure3_modules();
    let merged = embed(&h, &rtl1, &rtl2, &lib, "NewRTL").expect("embeddable");

    let a1 = module_area(&h, &rtl1, &lib).total();
    let a2 = module_area(&h, &rtl2, &lib).total();
    let an = module_area(&h, &merged.module, &lib).total();

    println!("Example 3: mapping two distinct DFGs onto the same RTL module\n");
    println!("  area(RTL1)   = {a1:>8.2}");
    println!("  area(RTL2)   = {a2:>8.2}");
    println!("  area(NewRTL) = {an:>8.2}");
    println!(
        "  (paper: 57.94 / 53.89 / 61.67 — merged barely exceeds the larger input,\n   saving {:.1}% versus side-by-side implementation)\n",
        100.0 * (1.0 - an / (a1 + a2))
    );

    println!("Table 2: component labeling of NewRTL\n");
    println!("{:<10}{:<10}{:<10}", "NewRTL", "RTL1", "RTL2");
    for (i, _) in merged.module.fus().iter().enumerate() {
        let merged_name = format!("F{i}");
        let in_a = merged
            .maps
            .fu_a
            .iter()
            .position(|f| f.index() == i)
            .map(|j| rtl1.fus()[j].name.clone())
            .unwrap_or_else(|| "-".into());
        let in_b = merged
            .maps
            .fu_b
            .iter()
            .position(|f| f.index() == i)
            .map(|j| rtl2.fus()[j].name.clone())
            .unwrap_or_else(|| "-".into());
        println!("{merged_name:<10}{in_a:<10}{in_b:<10}");
    }
    for (i, _) in merged.module.regs().iter().enumerate() {
        let merged_name = format!("q{i}");
        let in_a = merged
            .maps
            .reg_a
            .iter()
            .position(|r| r.index() == i)
            .map(|j| format!("r{j}"))
            .unwrap_or_else(|| "-".into());
        let in_b = merged
            .maps
            .reg_b
            .iter()
            .position(|r| r.index() == i)
            .map(|j| format!("s{j}"))
            .unwrap_or_else(|| "-".into());
        println!("{merged_name:<10}{in_a:<10}{in_b:<10}");
    }

    println!("\nMerged module netlist:\n");
    println!("{}", netlist_text(&h, &merged.module, &lib));
}
