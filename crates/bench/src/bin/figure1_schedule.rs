//! Regenerate the paper's **Figure 1** (the `test1` hierarchical DFG with a
//! schedule and assignment), **Figure 2** (the complex-module library
//! `C1`..`C6`), and the worked **Example 1** profile/environment numbers.
//!
//! ```text
//! cargo run --release -p hsyn-bench --bin figure1_schedule
//! ```

use hsyn_core::{initial_solution, OperatingPoint};
use hsyn_dfg::NodeKind;
use hsyn_lib::papers::TABLE1_CLOCK_NS;
use hsyn_rtl::papers::test1_complex_library;
use hsyn_sched::{environment_of, Profile};

fn main() {
    let (bench, mlib) = test1_complex_library();
    let h = &bench.hierarchy;

    println!("Figure 1(a): the test1 hierarchical DFG\n");
    println!("{}", hsyn_dfg::text::print(h, Some(&bench.equiv)));

    println!("Figure 2: library of complex modules\n");
    for cm in &mlib.complex {
        let m = &cm.module;
        let fus: Vec<String> = m
            .fus()
            .iter()
            .map(|f| mlib.simple.fu(f.fu_type).name().to_owned())
            .collect();
        let behaviors: Vec<String> = m
            .behaviors()
            .iter()
            .map(|b| format!("{} (profile {})", h.dfg(b.dfg).name(), b.profile))
            .collect();
        println!(
            "  {:<4} units [{}], {} registers — implements {}",
            m.name(),
            fus.join(", "),
            m.regs().len(),
            behaviors.join(", ")
        );
    }

    // Figure 1(b): schedule & assignment of test1 at sampling period 12.
    let period_cycles = 12u32;
    let op = OperatingPoint::derive(
        &mlib.simple,
        5.0,
        TABLE1_CLOCK_NS,
        f64::from(period_cycles) * TABLE1_CLOCK_NS,
    );
    let state = initial_solution(h, &mlib, &op).expect("test1 schedules in 12 cycles");
    let b = &state.built.behaviors()[0];
    let g = h.dfg(b.dfg);
    println!(
        "\nFigure 1(b): scheduled and assigned test1 (sampling period {period_cycles} cycles)\n"
    );
    for (nid, node) in g.nodes() {
        if let NodeKind::Hier { callee } = node.kind() {
            let sub = b.binding.hier_to_sub[&nid];
            let module = &state.built.subs()[sub.index()];
            let t = b.schedule.time(nid);
            let env = environment_of(g, &b.schedule, nid);
            println!(
                "  {:<6} -> RTL{} ({:<3}) start c{} profile {}  Env {}",
                node.name(),
                sub.index() + 1,
                module.name(),
                t.start.cycle,
                module.profile_for(*callee).expect("behavior exists"),
                env,
            );
        }
    }

    // Example 1 arithmetic, verbatim from the paper.
    println!("\nExample 1 (worked numbers):");
    let p = Profile::new(vec![0, 0, 2, 4], vec![7]);
    println!("  Profile(RTL3, DFG3) = {p}");
    let arrivals = [2u32, 5, 3, 7];
    let start = p.start_for(&arrivals);
    println!(
        "  inputs at {:?} => module starts at max(2-0, 5-0, 3-2, 7-4) = {start}, output at {}",
        arrivals,
        p.output_times(start)[0]
    );
}
