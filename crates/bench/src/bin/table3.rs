//! Regenerate the paper's **Table 3**: normalized area and power of
//! flattened vs hierarchical, area- vs power-optimized syntheses of the six
//! benchmarks at laxity factors 1.2 / 2.2 / 3.2.
//!
//! ```text
//! cargo run --release -p hsyn-bench --bin table3 [--quick] [bench ...]
//! ```
//!
//! Results are also written to `results/table3.json` for `table4` to reuse.

use hsyn_bench::{run_sweep, save_cells, CellSet, SweepConfig, LAXITIES};

fn main() {
    let mut names = Vec::new();
    let mut sweep = SweepConfig::default();
    for arg in std::env::args().skip(1) {
        if arg == "--quick" {
            sweep = SweepConfig::quick();
        } else {
            names.push(arg);
        }
    }

    eprintln!("Table 3 sweep (4 syntheses per cell):");
    let cells = run_sweep(&names, sweep);
    save_cells(&cells);
    print_table3(&cells);

    // The headline claim of the abstract.
    let best = cells
        .iter()
        .map(|c| {
            let r = c.table3_row();
            (c.benchmark.clone(), c.laxity, r.power[3])
        })
        .min_by(|a, b| a.2.total_cmp(&b.2));
    if let Some((name, lf, ratio)) = best {
        println!(
            "\nBest hierarchical power reduction vs 5 V area-optimized: {:.1}x ({name} @ L.F. {lf})",
            1.0 / ratio
        );
        println!("(paper: up to 6.7x at area overheads not exceeding 50%)");
    }
}

fn print_table3(cells: &[CellSet]) {
    println!("\nTable 3: area (normalized) and power (normalized)\n");
    println!(
        "{:<18}{:<4}{:>26}{:>26}{:>26}",
        "Circuit", "", "L.F. = 1.2", "L.F. = 2.2", "L.F. = 3.2"
    );
    println!(
        "{:<18}{:<4}{}",
        "",
        "",
        format!("{:>26}", "Flat-A Flat-P Hier-A Hier-P").repeat(3)
    );
    let benches: Vec<String> = {
        let mut v = Vec::new();
        for c in cells {
            if !v.contains(&c.benchmark) {
                v.push(c.benchmark.clone());
            }
        }
        v
    };
    for bench in &benches {
        for (label, pick) in [("A", 0usize), ("P", 1usize)] {
            print!(
                "{:<18}{:<4}",
                if label == "A" { bench.as_str() } else { "" },
                label
            );
            for &lf in &LAXITIES {
                match cells
                    .iter()
                    .find(|c| &c.benchmark == bench && c.laxity == lf)
                {
                    Some(c) => {
                        let row = c.table3_row();
                        let vals = if pick == 0 { row.area } else { row.power };
                        print!(
                            "{:>7.2}{:>7.2}{:>6.2}{:>6.2}",
                            vals[0], vals[1], vals[2], vals[3]
                        );
                    }
                    None => print!("{:>26}", "-"),
                }
            }
            println!();
        }
    }
}
