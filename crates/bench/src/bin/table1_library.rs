//! Regenerate the paper's **Table 1**: the simple-module library
//! characterization (area, delay in cycles at the 10 ns clock).
//!
//! ```text
//! cargo run --release -p hsyn-bench --bin table1_library
//! ```

use hsyn_lib::papers::{table1_rows, TABLE1_CLOCK_NS};

fn main() {
    println!("Table 1: functional unit and register properties");
    println!("(delays in cycles at a {TABLE1_CLOCK_NS} ns clock, 5 V)\n");
    let rows = table1_rows();
    print!("{:<8}", "");
    for r in &rows {
        print!("{:>14}", r.name);
    }
    println!();
    print!("{:<8}", "Area");
    for r in &rows {
        print!("{:>14.0}", r.area);
    }
    println!();
    print!("{:<8}", "Delay");
    for r in &rows {
        match r.delay_cycles {
            Some(c) => print!("{c:>14}"),
            None => print!("{:>14}", "-"),
        }
    }
    println!();
}
