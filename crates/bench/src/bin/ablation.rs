//! Ablation study (extension beyond the paper's tables): how much each
//! engine ingredient contributes. Four variants per benchmark, power
//! objective, L.F. 3.2:
//!
//! * `full`    — the complete engine;
//! * `no-B`    — resynthesis (move *B*) disabled;
//! * `no-CD`   — merging and splitting disabled (selection only);
//! * `no-eqv`  — functional-equivalence classes stripped (move *A* cannot
//!   substitute alternative building-block DFGs);
//! * `greedy`  — one move per pass: no negative-gain sequences, i.e. plain
//!   greedy improvement instead of the variable-depth search.
//!
//! ```text
//! cargo run --release -p hsyn-bench --bin ablation
//! ```

use hsyn_bench::{benchmark_library, SweepConfig};
use hsyn_core::{synthesize, Objective, SynthesisConfig};
use hsyn_dfg::EquivClasses;

fn main() {
    println!("Ablation: power-optimized hierarchical synthesis @ L.F. 3.2\n");
    println!(
        "{:<14}{:<10}{:>10}{:>12}{:>8}{:>8}{:>12}",
        "benchmark", "variant", "area", "power", "Vdd", "moves", "time (s)"
    );
    for name in ["test1", "iir", "hier_paulin", "lat"] {
        let bench = hsyn_dfg::benchmarks::by_name(name).expect("known");
        let mlib = benchmark_library(&bench);
        let base: SynthesisConfig = SweepConfig::default().to_config(Objective::Power, true, 3.2);

        let off = |a: bool, b: bool, c: bool, d: bool| hsyn_core::MoveFamilies { a, b, c, d };
        let variants: Vec<(&str, SynthesisConfig, bool)> = vec![
            ("full", base.clone(), false),
            (
                "no-B",
                SynthesisConfig {
                    moves: off(true, false, true, true),
                    ..base.clone()
                },
                false,
            ),
            (
                "no-CD",
                SynthesisConfig {
                    moves: off(true, true, false, false),
                    ..base.clone()
                },
                false,
            ),
            ("no-eqv", base.clone(), true),
            (
                "greedy",
                SynthesisConfig {
                    max_moves_per_pass: Some(1),
                    ..base.clone()
                },
                false,
            ),
        ];
        for (label, cfg, strip_equiv) in variants {
            let mut lib = mlib.clone();
            if strip_equiv {
                lib.equiv = EquivClasses::new();
            }
            match synthesize(&bench.hierarchy, &lib, &cfg) {
                Ok(r) => {
                    let moves = r.stats.applied_a
                        + r.stats.applied_b
                        + r.stats.applied_c
                        + r.stats.applied_d;
                    println!(
                        "{:<14}{:<10}{:>10.0}{:>12.4}{:>8.1}{:>8}{:>12.2}",
                        name,
                        label,
                        r.evaluation.area.total(),
                        r.evaluation.power.power,
                        r.design.op.vdd,
                        moves,
                        r.elapsed_s
                    );
                }
                Err(e) => println!("{name:<14}{label:<10} failed: {e}"),
            }
        }
        println!();
    }
    println!("Expected shape: `full` ≤ every ablation on power; `greedy` loses where");
    println!("escaping a local minimum needs a temporarily-degrading move sequence.");
}
