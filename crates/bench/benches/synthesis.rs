//! Criterion benches for end-to-end synthesis: hierarchical vs flattened
//! runtime on representative benchmarks (the paper's Table 4 synthesis-time
//! comparison, as a repeatable microbenchmark).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hsyn_bench::{benchmark_library, SweepConfig};
use hsyn_core::{synthesize, Objective};

fn bench_synthesis(c: &mut Criterion) {
    let mut group = c.benchmark_group("synthesis");
    group.sample_size(10);
    for name in ["test1", "iir", "hier_paulin"] {
        let bench = hsyn_dfg::benchmarks::by_name(name).expect("known benchmark");
        let mlib = benchmark_library(&bench);
        for (mode, hierarchical) in [("hier", true), ("flat", false)] {
            group.bench_with_input(
                BenchmarkId::new(mode, name),
                &hierarchical,
                |b, &hierarchical| {
                    let cfg = SweepConfig::quick().to_config(Objective::Area, hierarchical, 2.2);
                    b.iter(|| synthesize(&bench.hierarchy, &mlib, &cfg).expect("synthesizes"));
                },
            );
        }
    }
    group.finish();
}

fn bench_objectives(c: &mut Criterion) {
    let mut group = c.benchmark_group("objective");
    group.sample_size(10);
    let bench = hsyn_dfg::benchmarks::test1();
    let mlib = benchmark_library(&bench);
    for (label, objective) in [("area", Objective::Area), ("power", Objective::Power)] {
        group.bench_function(label, |b| {
            let cfg = SweepConfig::quick().to_config(objective, true, 2.2);
            b.iter(|| synthesize(&bench.hierarchy, &mlib, &cfg).expect("synthesizes"));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_synthesis, bench_objectives);
criterion_main!(benches);
