//! End-to-end synthesis micro-benchmarks: hierarchical vs flattened
//! runtime on representative benchmarks (the paper's Table 4
//! synthesis-time comparison, as a repeatable measurement).
//!
//! ```text
//! cargo bench -p hsyn-bench --bench synthesis
//! ```

use hsyn_bench::{benchmark_library, timing::bench, SweepConfig};
use hsyn_core::{synthesize, Objective};
use std::time::Duration;

fn main() {
    let budget = Duration::from_secs(2);
    println!("synthesis: hierarchical vs flattened");
    for name in ["test1", "iir", "hier_paulin"] {
        let b = hsyn_dfg::benchmarks::by_name(name).expect("known benchmark");
        let mlib = benchmark_library(&b);
        for (mode, hierarchical) in [("hier", true), ("flat", false)] {
            let cfg = SweepConfig::quick().to_config(Objective::Area, hierarchical, 2.2);
            bench(&format!("synthesis/{mode}/{name}"), budget, || {
                synthesize(&b.hierarchy, &mlib, &cfg).expect("synthesizes");
            });
        }
    }

    println!("\nsynthesis: memory tier (banked loads/stores)");
    for name in ["matmul", "fir_block", "conv2d"] {
        let b = hsyn_dfg::benchmarks::by_name(name).expect("known benchmark");
        let mlib = benchmark_library(&b);
        let cfg = SweepConfig::quick().to_config(Objective::Area, true, 2.2);
        bench(&format!("synthesis/memory/{name}"), budget, || {
            synthesize(&b.hierarchy, &mlib, &cfg).expect("synthesizes");
        });
    }

    println!("\nsynthesis: objective comparison (test1, hierarchical)");
    let b = hsyn_dfg::benchmarks::test1();
    let mlib = benchmark_library(&b);
    for (label, objective) in [("area", Objective::Area), ("power", Objective::Power)] {
        let cfg = SweepConfig::quick().to_config(objective, true, 2.2);
        bench(&format!("objective/{label}"), budget, || {
            synthesize(&b.hierarchy, &mlib, &cfg).expect("synthesizes");
        });
    }
}
