//! Serial vs parallel wall-clock on the laxity×objective exploration grid.
//!
//! Runs the same `explore()` sweep with `parallelism = Some(1)` and
//! `parallelism = None` (one worker per available core), prints the
//! wall-clock of each and the resulting speedup, and asserts that the two
//! runs produce identical results — the deterministic-merge guarantee the
//! parallel path is built around. On a single-core host the speedup is
//! necessarily ~1.0×; the determinism check still runs.
//!
//! ```text
//! cargo bench -p hsyn-bench --bench parallel_speedup
//! ```

use hsyn_bench::{benchmark_library, SweepConfig};
use hsyn_core::{explore, Exploration, Objective};

fn run(parallelism: Option<usize>) -> Exploration {
    let b = hsyn_dfg::benchmarks::iir();
    let mlib = benchmark_library(&b);
    let mut base = SweepConfig::quick().to_config(Objective::Area, true, 1.2);
    base.parallelism = parallelism;
    // 4 laxities x 2 objectives = 8 grid points.
    explore(&b.hierarchy, &mlib, &base, &[1.2, 1.7, 2.2, 3.2])
}

fn assert_identical(a: &Exploration, b: &Exploration) {
    assert_eq!(a.points.len(), b.points.len(), "point count differs");
    assert_eq!(a.skipped.len(), b.skipped.len(), "skip count differs");
    for (p, q) in a.points.iter().zip(&b.points) {
        assert_eq!(p.laxity, q.laxity);
        assert_eq!(p.objective, q.objective);
        assert_eq!(p.area(), q.area(), "area differs at laxity {}", p.laxity);
        assert_eq!(p.power(), q.power(), "power differs at laxity {}", p.laxity);
        assert_eq!(
            p.report.design.op, q.report.design.op,
            "operating point differs"
        );
    }
}

fn main() {
    let cores = hsyn_util::effective_threads(None);
    println!("parallel_speedup: 8-point laxity grid on the IIR benchmark");
    println!("available worker threads: {cores}");

    // Warm-up so neither timed run pays first-touch costs.
    let _ = run(Some(1));

    let serial = run(Some(1));
    let parallel = run(None);
    assert_identical(&serial, &parallel);

    let speedup = serial.elapsed_s / parallel.elapsed_s.max(1e-12);
    println!("serial   (parallelism=1): {:>8.3} s", serial.elapsed_s);
    println!(
        "parallel (parallelism={cores}): {:>8.3} s",
        parallel.elapsed_s
    );
    println!("speedup: {speedup:.2}x");
    println!("results identical across thread counts: yes");
    if cores == 1 {
        println!("(single-core host: speedup is expected to be ~1.0x)");
    }
}
