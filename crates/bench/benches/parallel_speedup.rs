//! Wall-clock benchmarks for the two "same result, less time" layers:
//! serial vs parallel exploration, and full vs incremental cost evaluation.
//!
//! Part 1 runs the same `explore()` sweep with `parallelism = Some(1)` and
//! `parallelism = None` (one worker per available core), prints the
//! wall-clock of each and the resulting speedup, and asserts that the two
//! runs produce identical results — the deterministic-merge guarantee the
//! parallel path is built around. On a single-core host the speedup is
//! necessarily ~1.0×; the determinism check still runs.
//!
//! Part 2 synthesizes the largest benchmark (dct, eight `dot8` children) in
//! power mode with [`SynthesisConfig::incremental`] off and on, asserts the
//! reports are byte-identical through `result_json()`, and reports the
//! cache traffic and the speedup.
//!
//! Part 3 synthesizes dct in both objectives with
//! [`SynthesisConfig::transactional`] off (clone the design per candidate)
//! and on (speculate in place, roll back through the undo journal), asserts
//! byte-identity the same way, and reports the apply-layer and end-to-end
//! speedups plus the journal traffic.
//!
//! Part 4 covers the data-oriented layers: an adjacency micro-benchmark
//! (the `*_scan` linear-scan reference accessors vs the CSR index, same
//! checksum required), and intra-config candidate parallelism
//! ([`SynthesisConfig::intra_parallelism`]) at 1, 2, and 4 workers on dct
//! and iir in power mode — `result_json()` must be byte-identical across
//! worker counts, and on a host with ≥ 4 cores the dct run must clear a
//! 1.3× speedup at 4 workers. On a single-core host the determinism
//! asserts still run; only the speedup gate is disarmed.
//!
//! Part 5 measures what the large-neighborhood-search layer
//! ([`SynthesisConfig::lns_iters`]) buys at equal wall-clock on dct and
//! iir at both objectives: the baseline pass loop is handed a pass budget
//! far past its convergence point and must flatline (same final cost,
//! bit-exact — extra passes buy nothing once no pass gains), while the
//! same seconds spent on LNS ruin-and-recreate must end at a **strictly
//! lower** final cost.
//!
//! All results land in `BENCH_parallel_speedup.json` at the workspace
//! root (the CI bench job uploads it as an artifact).
//!
//! ```text
//! cargo bench -p hsyn-bench --bench parallel_speedup
//! ```

use hsyn_bench::{benchmark_library, timing, SweepConfig};
use hsyn_core::{explore, synthesize, Exploration, Objective, SynthesisConfig, SynthesisReport};
use hsyn_dfg::Dfg;
use hsyn_lib::papers::table1_library;
use hsyn_rtl::ModuleLibrary;
use hsyn_util::Json;
use std::time::{Duration, Instant};

fn run(parallelism: Option<usize>) -> Exploration {
    let b = hsyn_dfg::benchmarks::iir();
    let mlib = benchmark_library(&b);
    let mut base = SweepConfig::quick().to_config(Objective::Area, true, 1.2);
    base.parallelism = parallelism;
    // 4 laxities x 2 objectives = 8 grid points.
    explore(&b.hierarchy, &mlib, &base, &[1.2, 1.7, 2.2, 3.2])
}

fn assert_identical(a: &Exploration, b: &Exploration) {
    assert_eq!(a.points.len(), b.points.len(), "point count differs");
    assert_eq!(a.skipped.len(), b.skipped.len(), "skip count differs");
    for (p, q) in a.points.iter().zip(&b.points) {
        assert_eq!(p.laxity, q.laxity);
        assert_eq!(p.objective, q.objective);
        assert_eq!(p.area(), q.area(), "area differs at laxity {}", p.laxity);
        assert_eq!(p.power(), q.power(), "power differs at laxity {}", p.laxity);
        assert_eq!(
            p.report.design.op, q.report.design.op,
            "operating point differs"
        );
    }
}

/// Synthesize dct in power mode with the incremental cache on or off,
/// returning the report and the wall-clock. Move-*B* resynthesis is
/// disabled so the measurement isolates the evaluation layer: each
/// resynthesis candidate runs a bounded inner synthesis of a *flat* child
/// module — a search cost center of its own that no per-module cache can
/// shortcut (every inner candidate is a structurally fresh design) — which
/// would otherwise swamp the evaluation wall-clock on both sides.
fn run_incremental(incremental: bool) -> (SynthesisReport, f64) {
    let b = hsyn_dfg::benchmarks::dct();
    let mlib = benchmark_library(&b);
    let sweep = SweepConfig {
        resynth_depth: 0,
        ..SweepConfig::default() // full search depth, default traces
    };
    let mut cfg = sweep.to_config(Objective::Power, true, 2.2);
    cfg.parallelism = Some(1); // isolate evaluation time from the sweep
    cfg.incremental = incremental;
    let t = Instant::now();
    let report = synthesize(&b.hierarchy, &mlib, &cfg).expect("dct synthesizes");
    (report, t.elapsed().as_secs_f64())
}

/// Synthesize dct with the transactional move engine on or off, returning
/// the report and the wall-clock. Same isolation choices as
/// [`run_incremental`]: no move-*B* recursion, serial sweep.
fn run_transactional(objective: Objective, transactional: bool) -> (SynthesisReport, f64) {
    let b = hsyn_dfg::benchmarks::dct();
    let mlib = benchmark_library(&b);
    let sweep = SweepConfig {
        resynth_depth: 0,
        ..SweepConfig::default()
    };
    let mut cfg = sweep.to_config(objective, true, 2.2);
    cfg.parallelism = Some(1);
    cfg.transactional = transactional;
    let t = Instant::now();
    let report = synthesize(&b.hierarchy, &mlib, &cfg).expect("dct synthesizes");
    (report, t.elapsed().as_secs_f64())
}

/// One objective's transactional-vs-clone measurement, printed and rendered
/// as a JSON object.
fn transactional_cell(objective: Objective) -> Json {
    let name = match objective {
        Objective::Area => "area",
        Objective::Power => "power",
    };
    let _ = run_transactional(objective, false); // warm-up
    let (clone_report, clone_s) = run_transactional(objective, false);
    let (tx_report, tx_s) = run_transactional(objective, true);
    assert_eq!(
        clone_report.result_json(),
        tx_report.result_json(),
        "transactional move engine changed the {name} synthesis result"
    );
    let clone_apply: f64 = clone_report.per_config.iter().map(|c| c.apply_s).sum();
    let tx_apply: f64 = tx_report.per_config.iter().map(|c| c.apply_s).sum();
    // Two speedups again: the apply layer itself (clone+rebuild per
    // candidate vs in-place edit + journal replay), and end-to-end
    // synthesis (diluted by evaluation, which both modes pay identically).
    let apply_speedup = clone_apply / tx_apply.max(1e-12);
    let synth_speedup = clone_s / tx_s.max(1e-12);
    let rolled_back = tx_report.stats.moves_rolled_back;
    let undo_peak = tx_report.stats.undo_bytes_peak;
    println!("dct {name}:");
    println!("  clone-per-candidate: {clone_s:>8.3} s synthesis, {clone_apply:>8.3} s applying");
    println!("  transactional:       {tx_s:>8.3} s synthesis, {tx_apply:>8.3} s applying");
    println!("  apply speedup: {apply_speedup:.2}x   synthesis speedup: {synth_speedup:.2}x");
    println!("  rolled back {rolled_back} moves, undo journal peak {undo_peak} bytes");
    println!("  reports byte-identical: yes");
    Json::Obj(vec![
        ("objective".into(), Json::Str(name.into())),
        ("apply_clone_s".into(), Json::Num(clone_apply)),
        ("apply_transactional_s".into(), Json::Num(tx_apply)),
        ("apply_speedup".into(), Json::Num(apply_speedup)),
        ("synth_clone_s".into(), Json::Num(clone_s)),
        ("synth_transactional_s".into(), Json::Num(tx_s)),
        ("synth_speedup".into(), Json::Num(synth_speedup)),
        ("moves_rolled_back".into(), Json::Num(rolled_back as f64)),
        ("undo_bytes_peak".into(), Json::Num(undo_peak as f64)),
        ("identical".into(), Json::Bool(true)),
    ])
}

/// Walk every node's fan-in, fan-out, and port-0 driver, folding edge ids
/// and fields into a checksum. `scan` selects the O(edges) linear-scan
/// reference accessors; otherwise the CSR index answers each query from
/// its packed slices. Both must produce the same checksum — the CSR layer
/// is a layout change, not a semantic one.
fn adjacency_walk(g: &Dfg, scan: bool) -> u64 {
    let mut acc = 0u64;
    for n in g.node_ids() {
        if scan {
            for (id, e) in g.in_edges_scan(n) {
                acc = acc.wrapping_add(id.index() as u64 + u64::from(e.delay));
            }
            for (id, e) in g.out_edges_scan(n) {
                acc = acc.wrapping_add(id.index() as u64 ^ u64::from(e.to_port));
            }
            if let Some(e) = g.driver_scan(n, 0) {
                acc = acc.wrapping_add(u64::from(e.from.port) + 1);
            }
        } else {
            for (id, e) in g.in_edges(n) {
                acc = acc.wrapping_add(id.index() as u64 + u64::from(e.delay));
            }
            for (id, e) in g.out_edges(n) {
                acc = acc.wrapping_add(id.index() as u64 ^ u64::from(e.to_port));
            }
            if let Some(e) = g.driver(n, 0) {
                acc = acc.wrapping_add(u64::from(e.from.port) + 1);
            }
        }
    }
    acc
}

/// Adjacency micro-benchmark on the flattened dct graph: full-graph walk
/// through the linear-scan reference accessors vs the CSR index.
fn adjacency_micro() -> Json {
    let g = hsyn_dfg::benchmarks::dct().hierarchy.flatten();
    let expect = adjacency_walk(&g, true);
    assert_eq!(
        expect,
        adjacency_walk(&g, false),
        "CSR adjacency disagrees with the linear-scan reference"
    );
    let budget = Duration::from_millis(300);
    let scan_s = timing::bench("adjacency walk, linear scan", budget, || {
        assert_eq!(std::hint::black_box(adjacency_walk(&g, true)), expect);
    });
    let csr_s = timing::bench("adjacency walk, CSR index", budget, || {
        assert_eq!(std::hint::black_box(adjacency_walk(&g, false)), expect);
    });
    let speedup = scan_s / csr_s.max(1e-12);
    println!("  CSR speedup over linear scan: {speedup:.2}x");
    Json::Obj(vec![
        ("benchmark".into(), Json::Str("dct (flattened)".into())),
        ("nodes".into(), Json::Num(g.node_count() as f64)),
        ("scan_s".into(), Json::Num(scan_s)),
        ("csr_s".into(), Json::Num(csr_s)),
        ("speedup".into(), Json::Num(speedup)),
        ("identical".into(), Json::Bool(true)),
    ])
}

/// Synthesize one benchmark in power mode with `intra` candidate-scan
/// workers, returning the report and the wall-clock. The outer sweep is
/// held serial so the only concurrency in play is the intra-config
/// candidate scan; move-*B* recursion stays on (depth 1) because expensive
/// candidates are exactly where speculating them concurrently pays.
fn run_intra(name: &str, intra: usize) -> (SynthesisReport, f64) {
    let b = match name {
        "dct" => hsyn_dfg::benchmarks::dct(),
        "iir" => hsyn_dfg::benchmarks::iir(),
        other => unreachable!("unknown intra benchmark {other}"),
    };
    let mlib = benchmark_library(&b);
    let mut cfg = SweepConfig::quick().to_config(Objective::Power, true, 2.2);
    cfg.parallelism = Some(1);
    cfg.intra_parallelism = intra;
    let t = Instant::now();
    let report = synthesize(&b.hierarchy, &mlib, &cfg).expect("benchmark synthesizes");
    (report, t.elapsed().as_secs_f64())
}

/// One benchmark's intra-config parallelism measurement: wall-clock at
/// 1/2/4 workers, byte-identity across all three, and (on dct, when the
/// host actually has ≥ 4 cores) the 1.3× speedup gate.
fn intra_cell(name: &str, cores: usize) -> Json {
    let _ = run_intra(name, 1); // warm-up
    let (base_report, s1) = run_intra(name, 1);
    let base_json = base_report.result_json();
    let mut secs = [s1, 0.0, 0.0];
    for (slot, workers) in [2usize, 4].into_iter().enumerate() {
        let (report, s) = run_intra(name, workers);
        assert_eq!(
            base_json,
            report.result_json(),
            "{name}: intra-config scan changed the result at {workers} workers"
        );
        secs[slot + 1] = s;
    }
    let speedup_2 = s1 / secs[1].max(1e-12);
    let speedup_4 = s1 / secs[2].max(1e-12);
    println!("{name} power, intra-config candidate scan:");
    println!(
        "  1 worker {:>8.3} s   2 workers {:>8.3} s   4 workers {:>8.3} s",
        s1, secs[1], secs[2]
    );
    println!("  speedup: {speedup_2:.2}x at 2, {speedup_4:.2}x at 4");
    println!("  reports byte-identical across worker counts: yes");
    if name == "dct" {
        if cores >= 4 {
            assert!(
                speedup_4 > 1.3,
                "dct intra-config speedup at 4 workers is {speedup_4:.2}x, expected > 1.3x"
            );
        } else {
            println!("  ({cores}-core host: the 4-worker 1.3x gate is disarmed)");
        }
    }
    Json::Obj(vec![
        ("benchmark".into(), Json::Str(name.into())),
        ("objective".into(), Json::Str("power".into())),
        ("synth_1_worker_s".into(), Json::Num(s1)),
        ("synth_2_workers_s".into(), Json::Num(secs[1])),
        ("synth_4_workers_s".into(), Json::Num(secs[2])),
        ("speedup_2".into(), Json::Num(speedup_2)),
        ("speedup_4".into(), Json::Num(speedup_4)),
        ("identical".into(), Json::Bool(true)),
    ])
}

/// LNS refinement budget for the part-5 cells.
const LNS_ITERS: usize = 64;

/// Synthesize one benchmark under a tight pass budget with an LNS
/// refinement budget and `extra_passes` more improvement passes, returning
/// the report and the wall-clock. The budget matches the golden-snapshot
/// configuration (the flat Table-1 module library, two passes, two
/// candidates per family): tight enough that the pass loop converges fast
/// and LNS, not candidate breadth, is what buys further cost. Serial outer
/// sweep, as everywhere else.
fn run_lns(
    name: &str,
    objective: Objective,
    lns_iters: usize,
    extra_passes: usize,
) -> (SynthesisReport, f64) {
    let b = match name {
        "dct" => hsyn_dfg::benchmarks::dct(),
        "iir" => hsyn_dfg::benchmarks::iir(),
        other => unreachable!("unknown lns benchmark {other}"),
    };
    let mut mlib = ModuleLibrary::from_simple(table1_library());
    mlib.equiv = b.equiv.clone();
    let mut cfg = SynthesisConfig::new(objective);
    cfg.laxity_factor = 2.2;
    cfg.max_passes = 2 + extra_passes;
    cfg.candidate_limit = 2;
    cfg.eval_trace_len = 8;
    cfg.report_trace_len = 16;
    cfg.max_clock_candidates = 2;
    cfg.resynth_depth = 1;
    cfg.parallelism = Some(1);
    cfg.lns_iters = lns_iters;
    let t = Instant::now();
    let report = synthesize(&b.hierarchy, &mlib, &cfg).expect("benchmark synthesizes");
    (report, t.elapsed().as_secs_f64())
}

/// One benchmark × objective cell of the part-5 measurement: the
/// equal-wall-clock comparison of final cost with and without LNS.
fn lns_cell(name: &str, objective: Objective) -> Json {
    let obj_name = match objective {
        Objective::Area => "area",
        Objective::Power => "power",
    };
    let _ = run_lns(name, objective, 0, 0); // warm-up
    let (base, base_s) = run_lns(name, objective, 0, 0);
    // Equal-wall-clock control: a pass budget far past convergence. The
    // pass loop exits the moment no pass gains, so the baseline cannot
    // convert extra wall-clock into cost — it must flatline bit-exactly.
    let (flat, flat_s) = run_lns(name, objective, 0, 64);
    assert_eq!(
        base.evaluation.cost.to_bits(),
        flat.evaluation.cost.to_bits(),
        "{name} {obj_name}: the converged baseline moved when handed more passes"
    );
    let (lns, lns_s) = run_lns(name, objective, LNS_ITERS, 0);
    assert!(
        lns.evaluation.cost < base.evaluation.cost,
        "{name} {obj_name}: LNS must end strictly better than the baseline \
         ({} vs {})",
        lns.evaluation.cost,
        base.evaluation.cost
    );
    let gain_pct = 100.0 * (base.evaluation.cost - lns.evaluation.cost) / base.evaluation.cost;
    let lns_refine_s: f64 = lns.per_config.iter().map(|c| c.lns_s).sum();
    println!("{name} {obj_name}:");
    println!(
        "  baseline:          cost {:>10.4} in {base_s:>7.3} s",
        base.evaluation.cost
    );
    println!(
        "  baseline +64 passes: cost {:>8.4} in {flat_s:>7.3} s (flatline, bit-exact)",
        flat.evaluation.cost
    );
    println!(
        "  +{LNS_ITERS} LNS iters:      cost {:>10.4} in {lns_s:>7.3} s ({gain_pct:.2}% better; \
         {} ruins, {} accepted, {lns_refine_s:.3} s refining)",
        lns.evaluation.cost, lns.stats.lns_ruins, lns.stats.lns_accepts
    );
    Json::Obj(vec![
        ("benchmark".into(), Json::Str(name.into())),
        ("objective".into(), Json::Str(obj_name.into())),
        ("baseline_cost".into(), Json::Num(base.evaluation.cost)),
        ("baseline_s".into(), Json::Num(base_s)),
        ("flatline_cost".into(), Json::Num(flat.evaluation.cost)),
        ("flatline_s".into(), Json::Num(flat_s)),
        ("lns_iters".into(), Json::Num(LNS_ITERS as f64)),
        ("lns_cost".into(), Json::Num(lns.evaluation.cost)),
        ("lns_s".into(), Json::Num(lns_s)),
        ("lns_refine_s".into(), Json::Num(lns_refine_s)),
        ("lns_gain_pct".into(), Json::Num(gain_pct)),
        ("lns_ruins".into(), Json::Num(lns.stats.lns_ruins as f64)),
        (
            "lns_accepts".into(),
            Json::Num(lns.stats.lns_accepts as f64),
        ),
        ("strictly_better".into(), Json::Bool(true)),
    ])
}

fn main() {
    let cores = hsyn_util::effective_threads(None);
    println!("parallel_speedup: 8-point laxity grid on the IIR benchmark");
    println!("available worker threads: {cores}");

    // Warm-up so neither timed run pays first-touch costs.
    let _ = run(Some(1));

    let serial = run(Some(1));
    let parallel = run(None);
    assert_identical(&serial, &parallel);
    // Report the workers that ran, not the machine size: an 8-point grid
    // on a 16-core host runs 8 workers, and a serial run exactly 1.
    assert_eq!(serial.threads_used, 1, "serial sweep spawned workers");
    assert_eq!(
        parallel.threads_used,
        hsyn_util::workers_for(cores, 8),
        "sweep misreported its worker count"
    );

    let par_speedup = serial.elapsed_s / parallel.elapsed_s.max(1e-12);
    println!("serial   (parallelism=1): {:>8.3} s", serial.elapsed_s);
    println!(
        "parallel ({} workers):    {:>8.3} s",
        parallel.threads_used, parallel.elapsed_s
    );
    println!("speedup: {par_speedup:.2}x");
    println!("results identical across thread counts: yes");
    if cores == 1 {
        println!("(single-core host: speedup is expected to be ~1.0x)");
    }

    println!();
    println!("incremental_speedup: dct (largest benchmark), power mode");
    let _ = run_incremental(false); // warm-up
    let (full_report, full_s) = run_incremental(false);
    let (incr_report, incr_s) = run_incremental(true);
    assert_eq!(
        full_report.result_json(),
        incr_report.result_json(),
        "incremental evaluation changed the synthesis result"
    );
    let hits = incr_report.stats.eval_cache_hits;
    let misses = incr_report.stats.eval_cache_misses;
    let full_eval: f64 = full_report.per_config.iter().map(|c| c.eval_full_s).sum();
    let incr_eval: f64 = incr_report.per_config.iter().map(|c| c.eval_incr_s).sum();
    // Two speedups: the evaluation layer itself (what the cache
    // accelerates), and end-to-end synthesis (diluted by apply/rebuild and
    // the rejected-candidate scan, which both modes pay identically).
    let eval_speedup = full_eval / incr_eval.max(1e-12);
    let synth_speedup = full_s / incr_s.max(1e-12);
    println!("full evaluation:        {full_s:>8.3} s synthesis, {full_eval:>8.3} s in eval");
    println!("incremental evaluation: {incr_s:>8.3} s synthesis, {incr_eval:>8.3} s in eval");
    println!("evaluation speedup: {eval_speedup:.2}x   cache hits {hits}, misses {misses}");
    println!("synthesis speedup:  {synth_speedup:.2}x");
    println!("reports byte-identical: yes");

    println!();
    println!("transactional_speedup: dct, clone-per-candidate vs in-place apply+rollback");
    let tx_cells = vec![
        transactional_cell(Objective::Area),
        transactional_cell(Objective::Power),
    ];

    println!();
    println!("data_oriented: CSR adjacency and the intra-config candidate scan");
    let adjacency = adjacency_micro();
    let intra_cells = vec![intra_cell("dct", cores), intra_cell("iir", cores)];

    println!();
    println!("lns: final cost at equal wall-clock, ruin-and-recreate vs extended baseline");
    let mut lns_cells = Vec::new();
    for name in ["dct", "iir"] {
        for objective in [Objective::Area, Objective::Power] {
            lns_cells.push(lns_cell(name, objective));
        }
    }

    let out = Json::Obj(vec![
        (
            "parallel".into(),
            Json::Obj(vec![
                ("benchmark".into(), Json::Str("iir".into())),
                ("grid_points".into(), Json::Num(8.0)),
                ("threads".into(), Json::Num(parallel.threads_used as f64)),
                ("serial_s".into(), Json::Num(serial.elapsed_s)),
                ("parallel_s".into(), Json::Num(parallel.elapsed_s)),
                ("speedup".into(), Json::Num(par_speedup)),
                ("identical".into(), Json::Bool(true)),
            ]),
        ),
        (
            "incremental".into(),
            Json::Obj(vec![
                ("benchmark".into(), Json::Str("dct".into())),
                ("objective".into(), Json::Str("power".into())),
                ("eval_full_s".into(), Json::Num(full_eval)),
                ("eval_incremental_s".into(), Json::Num(incr_eval)),
                ("eval_speedup".into(), Json::Num(eval_speedup)),
                ("synth_full_s".into(), Json::Num(full_s)),
                ("synth_incremental_s".into(), Json::Num(incr_s)),
                ("synth_speedup".into(), Json::Num(synth_speedup)),
                ("eval_cache_hits".into(), Json::Num(hits as f64)),
                ("eval_cache_misses".into(), Json::Num(misses as f64)),
                ("identical".into(), Json::Bool(true)),
            ]),
        ),
        (
            "transactional".into(),
            Json::Obj(vec![
                ("benchmark".into(), Json::Str("dct".into())),
                ("cells".into(), Json::Arr(tx_cells)),
            ]),
        ),
        (
            "intra".into(),
            Json::Obj(vec![
                ("host_threads".into(), Json::Num(cores as f64)),
                ("adjacency".into(), adjacency),
                ("cells".into(), Json::Arr(intra_cells)),
            ]),
        ),
        (
            "lns".into(),
            Json::Obj(vec![
                ("lns_iters".into(), Json::Num(LNS_ITERS as f64)),
                ("cells".into(), Json::Arr(lns_cells)),
            ]),
        ),
    ]);
    let path = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../../BENCH_parallel_speedup.json"
    );
    let mut text = out.to_string_pretty();
    text.push('\n');
    std::fs::write(path, text).expect("write BENCH_parallel_speedup.json");
    println!("\nwrote {path}");
}
