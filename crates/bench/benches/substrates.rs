//! Substrate micro-benchmarks: the longest-path scheduler, RTL embedding
//! (Hungarian matching), the power simulator, and hierarchy flattening.
//!
//! ```text
//! cargo bench -p hsyn-bench --bench substrates
//! ```

use hsyn_bench::timing::bench;
use hsyn_dfg::benchmarks;
use hsyn_lib::papers::{table1_library, TABLE1_CLOCK_NS};
use hsyn_power::dsp_default;
use hsyn_rtl::{build, embed, max_weight_assignment, BuildCtx, ModuleSpec};
use std::time::Duration;

fn main() {
    let budget = Duration::from_secs(2);

    // Schedule the flattened DCT (120 operations) end to end through the
    // builder (orderings + longest path + register binding).
    {
        let dct = benchmarks::dct();
        let mut h = hsyn_dfg::Hierarchy::new();
        let top = h.add_dfg(dct.hierarchy.flatten());
        h.set_top(top);
        let lib = table1_library();
        let spec = ModuleSpec::dedicated(
            &h,
            top,
            "dct_flat",
            |_, op| lib.fastest_for(op).unwrap(),
            |_, _| unreachable!(),
        );
        let ctx = BuildCtx::new(&lib, TABLE1_CLOCK_NS, 5.0, Some(64));
        bench("build_and_schedule_dct_flat_120ops", budget, || {
            build(&h, &spec, &ctx).expect("schedulable");
        });
    }

    {
        let (h, rtl1, rtl2, lib) = hsyn_rtl::papers::figure3_modules();
        bench("rtl_embedding_figure3", budget, || {
            embed(&h, &rtl1, &rtl2, &lib, "NewRTL").expect("embeddable");
        });
    }

    {
        // Deterministic pseudo-random 24x24 gain matrix.
        let mut state = 0x12345u64;
        let mut next = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((state >> 33) % 100) as f64 - 30.0
        };
        let w: Vec<Vec<f64>> = (0..24).map(|_| (0..24).map(|_| next()).collect()).collect();
        bench("hungarian_24x24", budget, || {
            max_weight_assignment(&w);
        });
    }

    {
        let lat = benchmarks::lat();
        let lib = table1_library();
        let mlib = hsyn_rtl::ModuleLibrary::from_simple(lib);
        let op = hsyn_core::OperatingPoint::derive(&mlib.simple, 5.0, TABLE1_CLOCK_NS, 800.0);
        let state = hsyn_core::initial_solution(&lat.hierarchy, &mlib, &op).expect("builds");
        let traces = dsp_default(
            lat.hierarchy.dfg(lat.hierarchy.top()).input_count(),
            128,
            16,
            7,
        );
        bench("power_estimate_lat_128_samples", budget, || {
            hsyn_power::estimate(
                &lat.hierarchy,
                &state.built,
                &mlib.simple,
                &traces,
                5.0,
                TABLE1_CLOCK_NS,
                80,
            );
        });
    }

    {
        let dct = benchmarks::dct();
        bench("flatten_dct", budget, || {
            dct.hierarchy.flatten();
        });
    }
}
