//! Criterion benches for the substrates: the longest-path scheduler,
//! RTL embedding (Hungarian matching), the power simulator, and hierarchy
//! flattening.

use criterion::{criterion_group, criterion_main, Criterion};
use hsyn_dfg::benchmarks;
use hsyn_lib::papers::{table1_library, TABLE1_CLOCK_NS};
use hsyn_power::dsp_default;
use hsyn_rtl::{build, embed, max_weight_assignment, BuildCtx, ModuleSpec};

fn bench_scheduler(c: &mut Criterion) {
    // Schedule the flattened DCT (120 operations) end to end through the
    // builder (orderings + longest path + register binding).
    let bench = benchmarks::dct();
    let mut h = hsyn_dfg::Hierarchy::new();
    let top = h.add_dfg(bench.hierarchy.flatten());
    h.set_top(top);
    let lib = table1_library();
    let spec = ModuleSpec::dedicated(
        &h,
        top,
        "dct_flat",
        |_, op| lib.fastest_for(op).unwrap(),
        |_, _| unreachable!(),
    );
    let ctx = BuildCtx::new(&lib, TABLE1_CLOCK_NS, 5.0, Some(64));
    c.bench_function("build_and_schedule_dct_flat_120ops", |b| {
        b.iter(|| build(&h, &spec, &ctx).expect("schedulable"))
    });
}

fn bench_embedding(c: &mut Criterion) {
    let (h, rtl1, rtl2, lib) = hsyn_rtl::papers::figure3_modules();
    c.bench_function("rtl_embedding_figure3", |b| {
        b.iter(|| embed(&h, &rtl1, &rtl2, &lib, "NewRTL").expect("embeddable"))
    });
}

fn bench_hungarian(c: &mut Criterion) {
    // Deterministic pseudo-random 24x24 gain matrix.
    let mut state = 0x12345u64;
    let mut next = move || {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        ((state >> 33) % 100) as f64 - 30.0
    };
    let w: Vec<Vec<f64>> = (0..24).map(|_| (0..24).map(|_| next()).collect()).collect();
    c.bench_function("hungarian_24x24", |b| b.iter(|| max_weight_assignment(&w)));
}

fn bench_power_sim(c: &mut Criterion) {
    let bench = benchmarks::lat();
    let lib = table1_library();
    let mlib = hsyn_rtl::ModuleLibrary::from_simple(lib);
    let op = hsyn_core::OperatingPoint::derive(&mlib.simple, 5.0, TABLE1_CLOCK_NS, 800.0);
    let state = hsyn_core::initial_solution(&bench.hierarchy, &mlib, &op).expect("builds");
    let traces = dsp_default(
        bench.hierarchy.dfg(bench.hierarchy.top()).input_count(),
        128,
        16,
        7,
    );
    c.bench_function("power_estimate_lat_128_samples", |b| {
        b.iter(|| {
            hsyn_power::estimate(
                &bench.hierarchy,
                &state.built,
                &mlib.simple,
                &traces,
                5.0,
                TABLE1_CLOCK_NS,
                80,
            )
        })
    });
}

fn bench_flatten(c: &mut Criterion) {
    let bench = benchmarks::dct();
    c.bench_function("flatten_dct", |b| b.iter(|| bench.hierarchy.flatten()));
}

criterion_group!(
    benches,
    bench_scheduler,
    bench_embedding,
    bench_hungarian,
    bench_power_sim,
    bench_flatten
);
criterion_main!(benches);
