//! Intra-config parallel candidate evaluation must be invisible in the
//! result: the same seed at 1, 2, and 4 workers produces byte-identical
//! `result_json` — same winner, same stats, same per-config counters —
//! because the parallel scan's sequential replay re-imposes the serial
//! budgets and tiebreaks (see `Engine::best_from_parallel`).
//!
//! The quick default covers two benchmarks × both objectives; set
//! `HSYN_INTRA_ALL=1` (CI does) to sweep the full benchmark set.

use hsyn_core::{synthesize, Objective, SynthesisConfig};
use hsyn_dfg::benchmarks::{self, Benchmark};
use hsyn_lib::papers::table1_library;
use hsyn_rtl::ModuleLibrary;

fn config(objective: Objective, intra: usize) -> SynthesisConfig {
    let mut c = SynthesisConfig::new(objective);
    c.max_passes = 3;
    c.candidate_limit = 3;
    c.eval_trace_len = 16;
    c.report_trace_len = 32;
    c.max_clock_candidates = 2;
    c.laxity_factor = 2.2;
    c.resynth_depth = 1;
    // Hold the outer sweep serial so only the intra-config knob varies.
    c.parallelism = Some(1);
    c.intra_parallelism = intra;
    c
}

fn assert_identical_across_workers(bench: &Benchmark, objective: Objective) {
    let mut mlib = ModuleLibrary::from_simple(table1_library());
    mlib.equiv = bench.equiv.clone();
    let baseline = synthesize(&bench.hierarchy, &mlib, &config(objective, 1))
        .unwrap_or_else(|e| panic!("{}: serial synthesis failed: {e}", bench.name))
        .result_json();
    for workers in [2usize, 4] {
        let parallel = synthesize(&bench.hierarchy, &mlib, &config(objective, workers))
            .unwrap_or_else(|e| panic!("{}: {workers}-worker synthesis failed: {e}", bench.name))
            .result_json();
        assert_eq!(
            baseline, parallel,
            "{} ({objective:?}): result_json diverged at {workers} intra workers",
            bench.name
        );
    }
}

/// Benchmarks under test: a small always-on set, widened to the full
/// reconstructed suite when `HSYN_INTRA_ALL` is set.
fn suite() -> Vec<Benchmark> {
    if std::env::var_os("HSYN_INTRA_ALL").is_some() {
        vec![
            benchmarks::paulin(),
            benchmarks::hier_paulin(),
            benchmarks::dct(),
            benchmarks::iir(),
            benchmarks::lat(),
            benchmarks::avenhaus_cascade(),
            benchmarks::test1(),
            benchmarks::fft4(),
        ]
    } else {
        vec![benchmarks::paulin(), benchmarks::iir()]
    }
}

#[test]
fn result_json_is_identical_at_1_2_4_workers() {
    for bench in suite() {
        for objective in [Objective::Area, Objective::Power] {
            assert_identical_across_workers(&bench, objective);
        }
    }
}

/// The knob is inert outside transactional mode: the clone-path scan stays
/// serial, so a 4-worker request still matches the serial report byte for
/// byte (rather than silently changing the search).
#[test]
fn clone_mode_ignores_the_intra_knob() {
    let bench = benchmarks::paulin();
    let mut mlib = ModuleLibrary::from_simple(table1_library());
    mlib.equiv = bench.equiv.clone();
    let mut serial = config(Objective::Area, 1);
    serial.transactional = false;
    let mut wide = config(Objective::Area, 4);
    wide.transactional = false;
    let a = synthesize(&bench.hierarchy, &mlib, &serial)
        .unwrap()
        .result_json();
    let b = synthesize(&bench.hierarchy, &mlib, &wide)
        .unwrap()
        .result_json();
    assert_eq!(a, b);
}
