//! Parallel and serial runs must be indistinguishable: results are merged
//! in input order with a total-order tiebreak, so thread count may change
//! wall-clock but never the report. `parallelism = Some(4)` spawns real
//! worker threads even on a single-core host, so this exercises the
//! threaded path regardless of the machine it runs on.

use hsyn_core::{explore, pareto_front, synthesize, MoveStats, Objective, SynthesisConfig};
use hsyn_dfg::benchmarks;
use hsyn_lib::papers::table1_library;
use hsyn_rtl::ModuleLibrary;

fn base_config(objective: Objective) -> SynthesisConfig {
    let mut c = SynthesisConfig::new(objective);
    c.max_passes = 3;
    c.candidate_limit = 3;
    c.eval_trace_len = 16;
    c.report_trace_len = 32;
    c.max_clock_candidates = 3;
    c.laxity_factor = 2.2;
    c
}

#[test]
fn synthesize_is_identical_across_thread_counts() {
    let b = benchmarks::paulin();
    let mut mlib = ModuleLibrary::from_simple(table1_library());
    mlib.equiv = b.equiv.clone();

    for objective in [Objective::Area, Objective::Power] {
        let mut serial_cfg = base_config(objective);
        serial_cfg.parallelism = Some(1);
        let mut parallel_cfg = base_config(objective);
        parallel_cfg.parallelism = Some(4);

        let s = synthesize(&b.hierarchy, &mlib, &serial_cfg).unwrap();
        let p = synthesize(&b.hierarchy, &mlib, &parallel_cfg).unwrap();

        // Same chosen operating point.
        assert_eq!(s.design.op, p.design.op, "{objective:?}: operating point");
        // Same evaluation.
        assert_eq!(
            s.evaluation.area.total(),
            p.evaluation.area.total(),
            "{objective:?}: area"
        );
        assert_eq!(
            s.evaluation.power.power, p.evaluation.power.power,
            "{objective:?}: power"
        );
        // Same absorbed move statistics (order of absorption is fixed to
        // sweep order in both paths).
        assert_eq!(s.stats, p.stats, "{objective:?}: move stats");
        // Same per-configuration telemetry shape and winner.
        assert_eq!(s.per_config.len(), p.per_config.len());
        for (a, b) in s.per_config.iter().zip(&p.per_config) {
            assert_eq!(a.vdd, b.vdd);
            assert_eq!(a.clk_ns, b.clk_ns);
            assert_eq!(a.cost, b.cost);
            assert_eq!(a.evaluated, b.evaluated);
            assert_eq!(a.rejected, b.rejected);
            assert_eq!(a.selected, b.selected);
        }
        assert_eq!(s.skipped_configs.len(), p.skipped_configs.len());
    }
}

#[test]
fn explore_is_identical_across_thread_counts() {
    let b = benchmarks::paulin();
    let mut mlib = ModuleLibrary::from_simple(table1_library());
    mlib.equiv = b.equiv.clone();
    let laxities = [1.5, 2.2, 3.0];

    let mut serial_cfg = base_config(Objective::Area);
    serial_cfg.parallelism = Some(1);
    let mut parallel_cfg = base_config(Objective::Area);
    parallel_cfg.parallelism = Some(4);

    let s = explore(&b.hierarchy, &mlib, &serial_cfg, &laxities);
    let p = explore(&b.hierarchy, &mlib, &parallel_cfg, &laxities);

    assert_eq!(s.points.len(), p.points.len());
    assert_eq!(s.skipped.len(), p.skipped.len());

    let mut s_stats = MoveStats::default();
    let mut p_stats = MoveStats::default();
    for (a, b) in s.points.iter().zip(&p.points) {
        assert_eq!(a.laxity, b.laxity);
        assert_eq!(a.objective, b.objective);
        assert_eq!(a.area(), b.area());
        assert_eq!(a.power(), b.power());
        assert_eq!(a.report.design.op, b.report.design.op);
        s_stats.absorb(&a.report.stats);
        p_stats.absorb(&b.report.stats);
    }
    // Totals absorbed across the whole grid agree too.
    assert_eq!(s_stats, p_stats);

    // The Pareto fronts are byte-identical.
    let sf = pareto_front(&s.points);
    let pf = pareto_front(&p.points);
    assert_eq!(sf.len(), pf.len());
    for (a, b) in sf.iter().zip(&pf) {
        assert_eq!(a.laxity, b.laxity);
        assert_eq!(a.objective, b.objective);
        assert_eq!(a.area(), b.area());
        assert_eq!(a.power(), b.power());
    }
}
