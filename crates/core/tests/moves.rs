//! Unit tests for the move set: each move family applies, validates, and
//! rejects correctly on concrete design points.

use hsyn_core::{
    apply, initial_solution, selection_candidates, sharing_candidates, splitting_candidates,
    DesignPoint, Move, Objective, OperatingPoint,
};
use hsyn_dfg::benchmarks;
use hsyn_lib::papers::{table1_library, TABLE1_CLOCK_NS};
use hsyn_rtl::ModuleLibrary;

fn paulin_dp(period_ns: f64) -> (DesignPoint, ModuleLibrary) {
    let b = benchmarks::paulin();
    let mut mlib = ModuleLibrary::from_simple(table1_library());
    mlib.equiv = b.equiv.clone();
    let op = OperatingPoint::derive(&mlib.simple, 5.0, TABLE1_CLOCK_NS, period_ns);
    let top = initial_solution(&b.hierarchy, &mlib, &op).expect("builds");
    (
        DesignPoint {
            hierarchy: b.hierarchy.clone(),
            op,
            top,
        },
        mlib,
    )
}

fn no_resynth() -> impl FnMut(&DesignPoint, &[usize], usize) -> Option<hsyn_core::ChildKind> {
    |_, _, _| None
}

#[test]
fn set_fu_type_swaps_multiplier_variant() {
    let (dp, mlib) = paulin_dp(400.0);
    let mult2 = mlib.simple.fu_by_name("mult2").unwrap();
    // Find a group currently on mult1.
    let mult1 = mlib.simple.fu_by_name("mult1").unwrap();
    let group = dp
        .top
        .core
        .fu_groups
        .iter()
        .position(|g| g.fu_type == mult1)
        .expect("initial solution uses the fastest multiplier");
    let mv = Move::SetFuType {
        path: vec![],
        group,
        fu_type: mult2,
    };
    let new = apply(&dp, &mv, &mlib, &mut no_resynth()).expect("slack admits mult2");
    assert_eq!(new.top.core.fu_groups[group].fu_type, mult2);
    // Same move again is rejected (no-op).
    assert!(apply(&new, &mv, &mlib, &mut no_resynth()).is_err());
}

#[test]
fn merge_then_split_round_trips_group_count() {
    let (dp, mlib) = paulin_dp(600.0);
    let n0 = dp.top.core.fu_groups.len();
    let cands = sharing_candidates(&dp, &mlib, Objective::Area);
    let merge = cands
        .iter()
        .find_map(|(_, mv)| match mv {
            Move::MergeFu { .. } => Some(mv.clone()),
            _ => None,
        })
        .expect("merge candidates exist");
    let merged = apply(&dp, &merge, &mlib, &mut no_resynth()).expect("merge applies");
    assert_eq!(merged.top.core.fu_groups.len(), n0 - 1);
    // Now split the merged group back apart.
    let cands = splitting_candidates(&merged, &mlib, Objective::Power);
    let split = cands
        .iter()
        .find_map(|(_, mv)| match mv {
            Move::SplitFu { .. } => Some(mv.clone()),
            _ => None,
        })
        .expect("split candidates exist after a merge");
    let split_dp = apply(&merged, &split, &mlib, &mut no_resynth()).expect("split applies");
    assert_eq!(split_dp.top.core.fu_groups.len(), n0);
}

#[test]
fn register_packing_shrinks_and_dedication_restores() {
    let (dp, mlib) = paulin_dp(400.0);
    let dedicated_regs = dp.top.built.regs().len();
    let packed = apply(
        &dp,
        &Move::RepackRegs { path: vec![] },
        &mlib,
        &mut no_resynth(),
    )
    .expect("packing applies");
    assert!(packed.top.built.regs().len() < dedicated_regs);
    // Packing twice is a no-op ⇒ rejected.
    assert!(apply(
        &packed,
        &Move::RepackRegs { path: vec![] },
        &mlib,
        &mut no_resynth()
    )
    .is_err());
    let restored = apply(
        &packed,
        &Move::DedicateRegs { path: vec![] },
        &mlib,
        &mut no_resynth(),
    )
    .expect("dedication applies");
    assert_eq!(restored.top.built.regs().len(), dedicated_regs);
}

#[test]
fn stale_moves_are_rejected_not_panicking() {
    let (dp, mlib) = paulin_dp(400.0);
    let n = dp.top.core.fu_groups.len();
    // Out-of-range group.
    assert!(apply(
        &dp,
        &Move::SetFuType {
            path: vec![],
            group: n + 5,
            fu_type: mlib.simple.fu_by_name("add1").unwrap(),
        },
        &mlib,
        &mut no_resynth(),
    )
    .is_err());
    // Merge with b out of range.
    assert!(apply(
        &dp,
        &Move::MergeFu {
            path: vec![],
            a: 0,
            b: n + 1,
            fu_type: mlib.simple.fu_by_name("add1").unwrap(),
        },
        &mlib,
        &mut no_resynth(),
    )
    .is_err());
    // Split of a singleton group.
    let op = dp.top.core.fu_groups[0].ops[0];
    assert!(apply(
        &dp,
        &Move::SplitFu {
            path: vec![],
            group: 0,
            op,
        },
        &mlib,
        &mut no_resynth(),
    )
    .is_err());
}

#[test]
fn merge_children_shares_stateless_instances() {
    // dct: 8 hierarchical nodes of the stateless dot8 — merging two onto
    // one instance must succeed and serialize them.
    let b = benchmarks::dct();
    let mut mlib = ModuleLibrary::from_simple(table1_library());
    mlib.equiv = b.equiv.clone();
    let op = OperatingPoint::derive(&mlib.simple, 5.0, TABLE1_CLOCK_NS, 1500.0);
    let top = initial_solution(&b.hierarchy, &mlib, &op).expect("builds");
    let dp = DesignPoint {
        hierarchy: b.hierarchy.clone(),
        op,
        top,
    };
    assert_eq!(dp.top.children.len(), 8);
    let mv = Move::MergeChildren {
        path: vec![],
        a: 0,
        b: 1,
    };
    let merged = apply(&dp, &mv, &mlib, &mut no_resynth()).expect("stateless merge");
    assert_eq!(merged.top.children.len(), 7);
    assert_eq!(merged.top.children[0].nodes.len(), 2);
    // Split it back out.
    let node = merged.top.children[0].nodes[1];
    let split = Move::SplitChild {
        path: vec![],
        child: 0,
        node,
    };
    let restored = apply(&merged, &split, &mlib, &mut no_resynth()).expect("split back");
    assert_eq!(restored.top.children.len(), 8);
}

#[test]
fn merge_children_rejects_stateful_sharing() {
    // iir: two biquad sections with internal state must not share.
    let b = benchmarks::iir();
    let mut mlib = ModuleLibrary::from_simple(table1_library());
    mlib.equiv = b.equiv.clone();
    let op = OperatingPoint::derive(&mlib.simple, 5.0, TABLE1_CLOCK_NS, 2000.0);
    let top = initial_solution(&b.hierarchy, &mlib, &op).expect("builds");
    let dp = DesignPoint {
        hierarchy: b.hierarchy.clone(),
        op,
        top,
    };
    assert_eq!(dp.top.children.len(), 2);
    let mv = Move::MergeChildren {
        path: vec![],
        a: 0,
        b: 1,
    };
    assert!(
        apply(&dp, &mv, &mlib, &mut no_resynth()).is_err(),
        "stateful biquads must not share one instance"
    );
    // And the candidate generator does not even propose it.
    let cands = sharing_candidates(&dp, &mlib, Objective::Area);
    assert!(!cands
        .iter()
        .any(|(_, mv)| matches!(mv, Move::MergeChildren { .. })));
}

#[test]
fn selection_candidates_cover_children_and_groups() {
    let (bench, mlib) = hsyn_rtl::papers::test1_complex_library();
    let op = OperatingPoint::derive(&mlib.simple, 5.0, TABLE1_CLOCK_NS, 240.0);
    let top = initial_solution(&bench.hierarchy, &mlib, &op).expect("builds");
    let dp = DesignPoint {
        hierarchy: bench.hierarchy.clone(),
        op,
        top,
    };
    let cands = selection_candidates(&dp, &mlib, Objective::Power, true);
    let has_swap = cands
        .iter()
        .any(|(_, m)| matches!(m, Move::SwapChild { .. }));
    let has_resynth = cands
        .iter()
        .any(|(_, m)| matches!(m, Move::ResynthChild { .. }));
    assert!(has_swap, "library equivalents must produce swap candidates");
    assert!(has_resynth, "children must produce resynthesis candidates");
    // Without resynthesis allowed, no B candidates appear.
    let cands = selection_candidates(&dp, &mlib, Objective::Power, false);
    assert!(!cands
        .iter()
        .any(|(_, m)| matches!(m, Move::ResynthChild { .. })));
}
