//! The transactional move engine's undo journal.
//!
//! Candidate evaluation used to clone the whole [`DesignPoint`] per
//! candidate (O(design size) per move). The transactional path instead
//! mutates the one live design in place and records the *inverse* of every
//! edit here; a rejected candidate is restored by replaying the journal
//! backwards (O(edit size)). See DESIGN.md, "Transaction invariants", for
//! what each move variant must journal and why replay order matters.
//!
//! Two layers of records coexist in one log:
//!
//! * **spec inverses** — the exact edit a move made to the spec tree
//!   (`fu_groups`, `reg_policy`, child lists, child kinds, hierarchy
//!   callees), constructed per variant by
//!   [`apply_in_place`](crate::moves::apply_in_place);
//! * **build restores** ([`UndoOp::RestoreBuilt`]) — the previous
//!   `built` RTL of every module the post-edit rebuild relinked, journaled
//!   by [`DesignPoint::rebuild_at_journaled`]. These are *moved* out of the
//!   tree (`mem::replace`), never cloned.
//!
//! Replay is strictly LIFO, so a log can host nested speculation: take a
//! [`mark`](UndoLog::mark), apply, and either keep the suffix (commit) or
//! [`rollback_to`](UndoLog::rollback_to) the mark (abort). The engine
//! leans on this to speculate every candidate of a pass inside one log and
//! still unwind the pass's rejected tail afterwards.

use crate::design::{Child, ChildKind, DesignPoint, ModuleState};
use crate::moves::ModulePath;
use hsyn_dfg::{DfgId, MemId, NodeId};
use hsyn_lib::FuTypeId;
use hsyn_rtl::{RegPolicy, RtlModule};

/// One inverse edit. Replaying it on the design that resulted from the
/// forward edit restores the pre-edit state bit-exactly.
#[derive(Clone, Debug)]
pub enum UndoOp {
    /// Restore the `built` RTL of the module at `path` (journaled by the
    /// rebuild that followed a spec edit).
    RestoreBuilt {
        /// Module path from the top.
        path: ModulePath,
        /// The build to put back.
        built: RtlModule,
    },
    /// Restore a functional-unit group's library type
    /// (inverse of [`Move::SetFuType`](crate::Move::SetFuType)).
    RestoreFuType {
        /// Module path from the top.
        path: ModulePath,
        /// Group index.
        group: usize,
        /// The previous library type.
        fu_type: FuTypeId,
    },
    /// Split a merged functional-unit group back apart
    /// (inverse of [`Move::MergeFu`](crate::Move::MergeFu)): truncate
    /// group `a`'s ops to their pre-merge length, restore both types, and
    /// re-insert group `b` with the split-off tail.
    UnmergeFu {
        /// Module path from the top.
        path: ModulePath,
        /// Surviving group (keeps the ops prefix).
        a: usize,
        /// Index the removed group is re-inserted at.
        b: usize,
        /// `a`'s op count before the merge.
        a_ops_len: usize,
        /// `a`'s type before the merge.
        a_fu_type: FuTypeId,
        /// `b`'s type before the merge.
        b_fu_type: FuTypeId,
    },
    /// Re-absorb a split-out operation
    /// (inverse of [`Move::SplitFu`](crate::Move::SplitFu)): pop the
    /// appended singleton group and put `op` back at its original position.
    UnsplitFu {
        /// Module path from the top.
        path: ModulePath,
        /// Group the op came from.
        group: usize,
        /// The op's original position within the group.
        pos: usize,
        /// The operation node.
        op: NodeId,
    },
    /// Restore the register-sharing policy (inverse of
    /// [`Move::RepackRegs`](crate::Move::RepackRegs) /
    /// [`Move::DedicateRegs`](crate::Move::DedicateRegs)).
    RestoreRegPolicy {
        /// Module path from the top.
        path: ModulePath,
        /// The previous policy.
        policy: RegPolicy,
    },
    /// Restore a child's implementation (inverse of
    /// [`Move::SwapChild`](crate::Move::SwapChild) /
    /// [`Move::ResynthChild`](crate::Move::ResynthChild), and of the
    /// embedding half of a child merge).
    RestoreChildKind {
        /// Parent module path from the top.
        path: ModulePath,
        /// Child index.
        child: usize,
        /// The previous implementation.
        kind: Box<ChildKind>,
    },
    /// Retarget a hierarchical node back to its previous callee DFG
    /// (inverse of the move-*A* rewrite half of
    /// [`Move::SwapChild`](crate::Move::SwapChild)).
    RestoreCallee {
        /// The DFG containing the node.
        dfg: DfgId,
        /// The hierarchical node.
        node: NodeId,
        /// The previous callee.
        callee: DfgId,
    },
    /// Split two merged children back apart (inverse of
    /// [`Move::MergeChildren`](crate::Move::MergeChildren)): truncate
    /// `a`'s node list, optionally restore `a`'s pre-embed implementation,
    /// and re-insert the removed child at `b`.
    UnmergeChildren {
        /// Parent module path from the top.
        path: ModulePath,
        /// Surviving child.
        a: usize,
        /// Index the removed child is re-inserted at.
        b: usize,
        /// `a`'s node count before the merge.
        a_nodes_len: usize,
        /// `a`'s implementation before RTL embedding (`None` when the merge
        /// only extended the node list).
        a_kind: Option<Box<ChildKind>>,
        /// The child the merge removed, intact.
        removed: Box<Child>,
    },
    /// Restore a memory's bank count (inverse of
    /// [`Move::RebankMem`](crate::Move::RebankMem)).
    RestoreMemBanks {
        /// The DFG owning the memory.
        dfg: DfgId,
        /// The memory.
        mem: MemId,
        /// The previous bank count.
        banks: u32,
    },
    /// Re-absorb a split-out hierarchical node (inverse of
    /// [`Move::SplitChild`](crate::Move::SplitChild)): pop the appended
    /// clone child and put `node` back at its original position.
    UnsplitChild {
        /// Parent module path from the top.
        path: ModulePath,
        /// Child the node came from.
        child: usize,
        /// The node's original position within the child's node list.
        pos: usize,
        /// The hierarchical node.
        node: NodeId,
    },
}

impl UndoOp {
    /// Apply this inverse edit to `dp`.
    fn replay(self, dp: &mut DesignPoint) {
        match self {
            UndoOp::RestoreBuilt { path, built } => {
                dp.top.at_mut(&path).built = built;
            }
            UndoOp::RestoreFuType {
                path,
                group,
                fu_type,
            } => {
                dp.top.at_mut(&path).core.fu_groups[group].fu_type = fu_type;
            }
            UndoOp::UnmergeFu {
                path,
                a,
                b,
                a_ops_len,
                a_fu_type,
                b_fu_type,
            } => {
                let m = dp.top.at_mut(&path);
                let tail = m.core.fu_groups[a].ops.split_off(a_ops_len);
                m.core.fu_groups[a].fu_type = a_fu_type;
                m.core.fu_groups.insert(
                    b,
                    hsyn_rtl::FuGroup {
                        fu_type: b_fu_type,
                        ops: tail,
                    },
                );
            }
            UndoOp::UnsplitFu {
                path,
                group,
                pos,
                op,
            } => {
                let m = dp.top.at_mut(&path);
                m.core.fu_groups.pop();
                m.core.fu_groups[group].ops.insert(pos, op);
            }
            UndoOp::RestoreRegPolicy { path, policy } => {
                dp.top.at_mut(&path).core.reg_policy = policy;
            }
            UndoOp::RestoreChildKind { path, child, kind } => {
                dp.top.at_mut(&path).children[child].kind = *kind;
            }
            UndoOp::RestoreCallee { dfg, node, callee } => {
                dp.hierarchy.replace_callee(dfg, node, callee);
            }
            UndoOp::UnmergeChildren {
                path,
                a,
                b,
                a_nodes_len,
                a_kind,
                removed,
            } => {
                let m = dp.top.at_mut(&path);
                m.children[a].nodes.truncate(a_nodes_len);
                if let Some(kind) = a_kind {
                    m.children[a].kind = *kind;
                }
                m.children.insert(b, *removed);
            }
            UndoOp::RestoreMemBanks { dfg, mem, banks } => {
                dp.hierarchy.dfg_mut(dfg).set_mem_banks(mem, banks);
            }
            UndoOp::UnsplitChild {
                path,
                child,
                pos,
                node,
            } => {
                let m = dp.top.at_mut(&path);
                m.children.pop();
                m.children[child].nodes.insert(pos, node);
            }
        }
    }

    /// Deterministic approximate heap footprint of this record, bytes —
    /// telemetry only ([`MoveStats::undo_bytes_peak`]), never steering.
    ///
    /// [`MoveStats::undo_bytes_peak`]: crate::MoveStats::undo_bytes_peak
    fn bytes(&self) -> usize {
        let base = std::mem::size_of::<UndoOp>();
        base + match self {
            UndoOp::RestoreBuilt { path, built } => path_bytes(path) + module_bytes(built),
            UndoOp::RestoreFuType { path, .. } | UndoOp::UnsplitFu { path, .. } => path_bytes(path),
            UndoOp::UnmergeFu { path, .. } => path_bytes(path),
            UndoOp::RestoreRegPolicy { path, policy } => {
                let groups = match policy {
                    RegPolicy::Groups(g) => {
                        g.iter().map(|v| v.len() * 8).sum::<usize>() + g.len() * 24
                    }
                    _ => 0,
                };
                path_bytes(path) + groups
            }
            UndoOp::RestoreChildKind { path, kind, .. } => path_bytes(path) + kind_bytes(kind),
            UndoOp::RestoreCallee { .. } | UndoOp::RestoreMemBanks { .. } => 0,
            UndoOp::UnmergeChildren {
                path,
                a_kind,
                removed,
                ..
            } => path_bytes(path) + a_kind.as_deref().map_or(0, kind_bytes) + child_bytes(removed),
            UndoOp::UnsplitChild { path, .. } => path_bytes(path),
        }
    }
}

fn path_bytes(path: &ModulePath) -> usize {
    path.len() * std::mem::size_of::<usize>()
}

fn module_bytes(m: &RtlModule) -> usize {
    std::mem::size_of::<RtlModule>()
        + m.name().len()
        + m.fus().len() * 64
        + m.regs().len() * 48
        + m.behaviors().len() * 256
        + m.subs().iter().map(module_bytes).sum::<usize>()
}

fn state_bytes(s: &ModuleState) -> usize {
    std::mem::size_of::<ModuleState>()
        + s.core.name.len()
        + s.core.fu_groups.len() * 48
        + module_bytes(&s.built)
        + s.children.iter().map(child_bytes).sum::<usize>()
}

fn child_bytes(c: &Child) -> usize {
    std::mem::size_of::<Child>()
        + c.nodes.len() * std::mem::size_of::<NodeId>()
        + kind_bytes(&c.kind)
}

fn kind_bytes(k: &ChildKind) -> usize {
    match k {
        ChildKind::Single(s) => state_bytes(s),
        ChildKind::Opaque { module, origin } => module_bytes(module) + origin.len(),
    }
}

/// A LIFO journal of inverse edits, with marks for nested speculation.
#[derive(Debug, Default)]
pub struct UndoLog {
    ops: Vec<UndoOp>,
    /// Approximate live bytes held by `ops`.
    bytes: usize,
    /// Peak of `bytes` over this log's lifetime.
    bytes_peak: usize,
}

/// A position in an [`UndoLog`], returned by [`UndoLog::mark`]: rolling
/// back to it undoes exactly the edits journaled after it was taken.
pub type UndoMark = usize;

impl UndoLog {
    /// An empty journal.
    pub fn new() -> Self {
        Self::default()
    }

    /// Journal one inverse edit.
    pub fn push(&mut self, op: UndoOp) {
        self.bytes += op.bytes();
        self.bytes_peak = self.bytes_peak.max(self.bytes);
        self.ops.push(op);
    }

    /// The current position; pass to [`rollback_to`](Self::rollback_to) to
    /// undo everything journaled after this point.
    pub fn mark(&self) -> UndoMark {
        self.ops.len()
    }

    /// Records currently held.
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// Whether the journal holds no records.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// Peak approximate byte footprint this journal reached.
    pub fn bytes_peak(&self) -> usize {
        self.bytes_peak
    }

    /// Replay (and discard) every record after `mark`, newest first,
    /// restoring `dp` to its state when the mark was taken.
    pub fn rollback_to(&mut self, dp: &mut DesignPoint, mark: UndoMark) {
        while self.ops.len() > mark {
            let op = self.ops.pop().expect("len > mark >= 0");
            self.bytes = self.bytes.saturating_sub(op.bytes());
            op.replay(dp);
        }
    }

    /// Replay the whole journal, restoring `dp` to its state when the
    /// journal was created (or last fully rolled back / committed).
    pub fn rollback_all(&mut self, dp: &mut DesignPoint) {
        self.rollback_to(dp, 0);
    }

    /// Discard every record up to the current position without replaying:
    /// the edits they would undo become permanent.
    pub fn commit(&mut self) {
        self.ops.clear();
        self.bytes = 0;
    }
}

/// One speculative edit session on a borrowed design: apply moves through
/// [`Transaction::apply`], then either [`commit`](Transaction::commit)
/// (keep the edits) or [`rollback`](Transaction::rollback) (restore the
/// design bit-exactly). Dropping an open transaction rolls it back — the
/// borrow can never leak a half-applied design.
///
/// ```
/// use hsyn_core::{Transaction, Move};
/// # use hsyn_core::{initial_solution, DesignPoint, OperatingPoint};
/// # use hsyn_rtl::ModuleLibrary;
/// # let b = hsyn_dfg::benchmarks::paulin();
/// # let mlib = ModuleLibrary::from_simple(hsyn_lib::papers::table1_library());
/// # let op = OperatingPoint::derive(&mlib.simple, 5.0, 10.0, 10_000.0);
/// # let top = initial_solution(&b.hierarchy, &mlib, &op).unwrap();
/// # let mut dp = DesignPoint { hierarchy: b.hierarchy.clone(), op, top };
/// let before = hsyn_rtl::module_fingerprint(&dp.hierarchy, &dp.top.built);
/// let mut tx = Transaction::begin(&mut dp);
/// tx.apply(&Move::RepackRegs { path: vec![] }, &mlib, &mut |_, _, _| None)
///     .expect("repack applies");
/// tx.rollback();
/// let after = hsyn_rtl::module_fingerprint(&dp.hierarchy, &dp.top.built);
/// assert_eq!(before, after);
/// ```
#[derive(Debug)]
pub struct Transaction<'a> {
    dp: &'a mut DesignPoint,
    log: UndoLog,
}

impl<'a> Transaction<'a> {
    /// Open a transaction on `dp`.
    pub fn begin(dp: &'a mut DesignPoint) -> Self {
        Transaction {
            dp,
            log: UndoLog::new(),
        }
    }

    /// Apply `mv` in place, journaling its inverse. On error the design is
    /// already restored to the pre-`apply` state (earlier applies of this
    /// transaction are kept).
    ///
    /// # Errors
    ///
    /// Exactly [`apply`](crate::apply)'s errors.
    #[allow(clippy::type_complexity)]
    pub fn apply(
        &mut self,
        mv: &crate::Move,
        mlib: &hsyn_rtl::ModuleLibrary,
        resynth: &mut dyn FnMut(&DesignPoint, &[usize], usize) -> Option<ChildKind>,
    ) -> Result<ModulePath, crate::ApplyError> {
        crate::moves::apply_in_place(self.dp, mv, mlib, resynth, &mut self.log)
    }

    /// The design as currently edited.
    pub fn design(&self) -> &DesignPoint {
        self.dp
    }

    /// Split-borrow the transaction into the design and its journal, for
    /// callers (the LNS reconstruction loop) that drive engine primitives
    /// needing both halves mutably at once. Edits made through the
    /// returned journal participate in this transaction's
    /// commit/rollback exactly like [`apply`](Transaction::apply)ed ones.
    pub fn parts(&mut self) -> (&mut DesignPoint, &mut UndoLog) {
        (self.dp, &mut self.log)
    }

    /// Keep every applied edit; the journal is discarded without replay.
    pub fn commit(mut self) {
        self.log.commit();
    }

    /// Undo every applied edit, restoring the design bit-exactly.
    /// (Equivalent to dropping the transaction; spelled out for call sites
    /// that want the intent visible.)
    pub fn rollback(self) {}
}

impl Drop for Transaction<'_> {
    fn drop(&mut self) {
        self.log.rollback_all(self.dp);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::Objective;
    use crate::design::{initial_solution, OperatingPoint};
    use crate::moves::{selection_candidates, sharing_candidates, splitting_candidates, Move};
    use hsyn_dfg::benchmarks;
    use hsyn_lib::papers::table1_library;
    use hsyn_rtl::{module_fingerprint, ModuleLibrary};

    fn fixture() -> (DesignPoint, ModuleLibrary) {
        let b = benchmarks::hier_paulin();
        let mut mlib = ModuleLibrary::from_simple(table1_library());
        mlib.equiv = b.equiv.clone();
        let op =
            OperatingPoint::derive(&mlib.simple, mlib.simple.technology.vref(), 10.0, 10_000.0);
        let top = initial_solution(&b.hierarchy, &mlib, &op).expect("hier_paulin builds");
        (
            DesignPoint {
                hierarchy: b.hierarchy.clone(),
                op,
                top,
            },
            mlib,
        )
    }

    /// Every applicable candidate move, applied in place and rolled back,
    /// restores the design fingerprint bit-exactly.
    #[test]
    fn rollback_restores_fingerprint_for_every_candidate_family() {
        let (mut dp, mlib) = fixture();
        let baseline = module_fingerprint(&dp.hierarchy, &dp.top.built);
        let mut cands = Vec::new();
        cands.extend(selection_candidates(&dp, &mlib, Objective::Area, false));
        cands.extend(sharing_candidates(&dp, &mlib, Objective::Area));
        cands.extend(splitting_candidates(&dp, &mlib, Objective::Area));
        let mut applied = 0;
        let mut log = UndoLog::new();
        for (_, mv) in cands {
            let mark = log.mark();
            match crate::moves::apply_in_place(&mut dp, &mv, &mlib, &mut |_, _, _| None, &mut log) {
                Ok(_) => {
                    applied += 1;
                    assert_ne!(
                        module_fingerprint(&dp.hierarchy, &dp.top.built),
                        baseline,
                        "move {mv} should change the design"
                    );
                    log.rollback_to(&mut dp, mark);
                }
                Err(_) => assert_eq!(log.mark(), mark, "failed apply must self-rollback"),
            }
            assert_eq!(
                module_fingerprint(&dp.hierarchy, &dp.top.built),
                baseline,
                "rollback of {mv} must restore the design"
            );
        }
        assert!(applied > 5, "fixture should admit many moves: {applied}");
        assert!(log.bytes_peak() > 0);
        assert!(log.is_empty());
    }

    /// A chain of applies rolls back across marks, LIFO.
    #[test]
    fn nested_marks_unwind_in_order() {
        let (mut dp, mlib) = fixture();
        let fp0 = module_fingerprint(&dp.hierarchy, &dp.top.built);
        let mut log = UndoLog::new();
        let m0 = log.mark();
        crate::moves::apply_in_place(
            &mut dp,
            &Move::RepackRegs { path: vec![] },
            &mlib,
            &mut |_, _, _| None,
            &mut log,
        )
        .expect("repack applies");
        let fp1 = module_fingerprint(&dp.hierarchy, &dp.top.built);
        let m1 = log.mark();
        crate::moves::apply_in_place(
            &mut dp,
            &Move::DedicateRegs { path: vec![] },
            &mlib,
            &mut |_, _, _| None,
            &mut log,
        )
        .expect("dedicate applies");
        log.rollback_to(&mut dp, m1);
        assert_eq!(module_fingerprint(&dp.hierarchy, &dp.top.built), fp1);
        log.rollback_to(&mut dp, m0);
        assert_eq!(module_fingerprint(&dp.hierarchy, &dp.top.built), fp0);
    }

    /// Rebanking a memory in place and rolling back restores the design —
    /// spec tree, hierarchy (bank counts live in the DFG), and built RTL —
    /// bit-exactly; committing keeps the new bank count.
    #[test]
    fn rebank_rolls_back_byte_exact() {
        let b = benchmarks::matmul();
        let mlib = ModuleLibrary::from_simple(table1_library());
        let op =
            OperatingPoint::derive(&mlib.simple, mlib.simple.technology.vref(), 10.0, 100_000.0);
        let top = initial_solution(&b.hierarchy, &mlib, &op).expect("matmul builds");
        let mut dp = DesignPoint {
            hierarchy: b.hierarchy.clone(),
            op,
            top,
        };
        let dfg = dp.top.core.dfg;
        let (mid, mem) = dp
            .hierarchy
            .dfg(dfg)
            .mems()
            .map(|(i, m)| (i, m.clone()))
            .next()
            .expect("matmul owns a memory");
        assert!(mem.words >= 2, "fixture memory must admit two banks");
        let fp0 = module_fingerprint(&dp.hierarchy, &dp.top.built);
        let banks0 = mem.banks.max(1);
        let mv = Move::RebankMem {
            path: vec![],
            mem: mid,
            banks: banks0 * 2,
        };
        {
            let mut tx = Transaction::begin(&mut dp);
            tx.apply(&mv, &mlib, &mut |_, _, _| None)
                .expect("rebank applies");
            let d = tx.design();
            assert_eq!(d.hierarchy.dfg(dfg).mem(mid).banks, banks0 * 2);
            assert_ne!(module_fingerprint(&d.hierarchy, &d.top.built), fp0);
        }
        assert_eq!(dp.hierarchy.dfg(dfg).mem(mid).banks, banks0);
        assert_eq!(module_fingerprint(&dp.hierarchy, &dp.top.built), fp0);
        let mut tx = Transaction::begin(&mut dp);
        tx.apply(&mv, &mlib, &mut |_, _, _| None)
            .expect("rebank applies");
        tx.commit();
        assert_eq!(dp.hierarchy.dfg(dfg).mem(mid).banks, banks0 * 2);
        // A no-op rebank (same count) is rejected without journaling.
        let mut tx = Transaction::begin(&mut dp);
        assert!(tx.apply(&mv, &mlib, &mut |_, _, _| None).is_err());
    }

    /// Dropping an open transaction rolls back; committing keeps the edit.
    #[test]
    fn transaction_drop_rolls_back_commit_keeps() {
        let (mut dp, mlib) = fixture();
        let fp0 = module_fingerprint(&dp.hierarchy, &dp.top.built);
        {
            let mut tx = Transaction::begin(&mut dp);
            tx.apply(&Move::RepackRegs { path: vec![] }, &mlib, &mut |_, _, _| {
                None
            })
            .expect("repack applies");
        }
        assert_eq!(module_fingerprint(&dp.hierarchy, &dp.top.built), fp0);
        let mut tx = Transaction::begin(&mut dp);
        tx.apply(&Move::RepackRegs { path: vec![] }, &mlib, &mut |_, _, _| {
            None
        })
        .expect("repack applies");
        let d = tx.design();
        let fp1 = module_fingerprint(&d.hierarchy, &d.top.built);
        tx.commit();
        assert_eq!(module_fingerprint(&dp.hierarchy, &dp.top.built), fp1);
        assert_ne!(fp0, fp1);
    }
}
