//! The engine's move set (paper Section 1):
//!
//! * **A** — replace a simple or complex module by a better-suited library
//!   element ([`Move::SetFuType`], [`Move::SwapChild`]);
//! * **B** — resynthesize a complex module under slack-relaxed constraints
//!   ([`Move::ResynthChild`]);
//! * **C** — merge two modules into one ([`Move::MergeFu`],
//!   [`Move::MergeChildren`] via RTL embedding, plus register packing);
//! * **D** — split a module to create new optimization opportunities
//!   ([`Move::SplitFu`], [`Move::SplitChild`], register dedication).
//!
//! Candidates are generated with cheap heuristic scores; the engine fully
//! evaluates (rebuild + reschedule + power simulation) only the top few.

use crate::cost::Objective;
use crate::design::{Child, ChildKind, DesignPoint, ModuleState};
use crate::transact::{UndoLog, UndoOp};
use hsyn_dfg::{DfgId, MemId, MemScope, NodeId, NodeKind, Operation};
use hsyn_lib::{FuTypeId, Library};
use hsyn_rtl::{embed, BuildError, EmbedError, ModuleLibrary, RegPolicy};
use std::collections::BTreeSet;
use std::fmt;

/// Path from the top module to a descendant [`ModuleState`] (child indices;
/// empty = top).
pub type ModulePath = Vec<usize>;

/// One candidate transformation of a design point.
#[derive(Clone, Debug, PartialEq)]
pub enum Move {
    /// Move *A* (simple): change the library type of a functional-unit
    /// group.
    SetFuType {
        /// Module containing the group.
        path: ModulePath,
        /// Group index.
        group: usize,
        /// New library type.
        fu_type: FuTypeId,
    },
    /// Move *C* (simple): merge functional-unit group `b` into `a` with the
    /// given shared type.
    MergeFu {
        /// Module containing both groups.
        path: ModulePath,
        /// Surviving group.
        a: usize,
        /// Group merged away (`b > a`).
        b: usize,
        /// Shared library type.
        fu_type: FuTypeId,
    },
    /// Move *D* (simple): split one operation out of a group into its own
    /// instance.
    SplitFu {
        /// Module containing the group.
        path: ModulePath,
        /// Group index.
        group: usize,
        /// Operation to split out.
        op: NodeId,
    },
    /// Move *C* (storage): left-edge register packing for the module.
    RepackRegs {
        /// Target module.
        path: ModulePath,
    },
    /// Move *D* (storage): dedicated registers for the module.
    DedicateRegs {
        /// Target module.
        path: ModulePath,
    },
    /// Move *A* (complex): replace a child's implementation with a library
    /// complex module, possibly rewriting the hierarchical nodes to an
    /// equivalent DFG.
    SwapChild {
        /// Parent module.
        path: ModulePath,
        /// Child index.
        child: usize,
        /// Library complex-module index.
        lib_idx: usize,
        /// The DFG the library module will execute for these nodes.
        dfg: DfgId,
    },
    /// Move *B*: resynthesize a child under its slack-relaxed constraint
    /// window.
    ResynthChild {
        /// Parent module.
        path: ModulePath,
        /// Child index.
        child: usize,
    },
    /// Move *C* (complex): merge two children — same behavior ⇒ share the
    /// instance; different behaviors ⇒ RTL embedding.
    MergeChildren {
        /// Parent module.
        path: ModulePath,
        /// Surviving child.
        a: usize,
        /// Child merged away (`b > a`).
        b: usize,
    },
    /// Move *D* (complex): split one hierarchical node out of a child into
    /// its own instance.
    SplitChild {
        /// Parent module.
        path: ModulePath,
        /// Child index.
        child: usize,
        /// Node to split out.
        node: NodeId,
    },
    /// Moves *C*/*D* (memory): change the bank count of an owned memory.
    /// Halving is a sharing move — accesses serialize onto fewer ports,
    /// saving port periphery area and bank leakage; doubling is a splitting
    /// move — parallel banks relax the scheduler's port-conflict edges.
    RebankMem {
        /// Module whose behavior DFG owns the memory.
        path: ModulePath,
        /// The memory within that DFG.
        mem: MemId,
        /// New bank count (≥ 1, ≤ word count).
        banks: u32,
    },
}

impl fmt::Display for Move {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Move::SetFuType {
                path,
                group,
                fu_type,
            } => {
                write!(f, "A:set-fu path={path:?} group={group} type={fu_type}")
            }
            Move::MergeFu { path, a, b, .. } => write!(f, "C:merge-fu path={path:?} {a}+{b}"),
            Move::SplitFu { path, group, op } => {
                write!(f, "D:split-fu path={path:?} group={group} op={op}")
            }
            Move::RepackRegs { path } => write!(f, "C:pack-regs path={path:?}"),
            Move::DedicateRegs { path } => write!(f, "D:dedicate-regs path={path:?}"),
            Move::SwapChild {
                path,
                child,
                lib_idx,
                ..
            } => {
                write!(f, "A:swap-child path={path:?} child={child} lib={lib_idx}")
            }
            Move::ResynthChild { path, child } => {
                write!(f, "B:resynth path={path:?} child={child}")
            }
            Move::MergeChildren { path, a, b } => {
                write!(f, "C:merge-children path={path:?} {a}+{b}")
            }
            Move::SplitChild { path, child, node } => {
                write!(f, "D:split-child path={path:?} child={child} node={node}")
            }
            Move::RebankMem { path, mem, banks } => {
                write!(f, "CD:rebank path={path:?} mem={mem} banks={banks}")
            }
        }
    }
}

/// Why applying a move failed (the candidate is simply discarded).
#[derive(Clone, Debug)]
pub enum ApplyError {
    /// Rebuild/reschedule failed.
    Build(BuildError),
    /// RTL embedding failed.
    Embed(EmbedError),
    /// The move no longer applies to the current design (stale candidate)
    /// or resynthesis produced nothing better.
    Rejected,
}

impl fmt::Display for ApplyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ApplyError::Build(e) => write!(f, "rebuild failed: {e}"),
            ApplyError::Embed(e) => write!(f, "embedding failed: {e}"),
            ApplyError::Rejected => write!(f, "move rejected"),
        }
    }
}

impl std::error::Error for ApplyError {}

impl From<BuildError> for ApplyError {
    fn from(e: BuildError) -> Self {
        ApplyError::Build(e)
    }
}

impl From<EmbedError> for ApplyError {
    fn from(e: EmbedError) -> Self {
        ApplyError::Embed(e)
    }
}

/// Apply `mv` to a copy of `dp`, rebuilding and validity-checking the whole
/// design. `resynth` supplies move-*B* implementations (the engine recurses
/// into a bounded synthesis there).
///
/// # Errors
///
/// [`ApplyError`] when the resulting design fails to schedule or the move
/// is not applicable.
#[allow(clippy::type_complexity)]
pub fn apply(
    dp: &DesignPoint,
    mv: &Move,
    mlib: &ModuleLibrary,
    resynth: &mut dyn FnMut(&DesignPoint, &[usize], usize) -> Option<ChildKind>,
) -> Result<DesignPoint, ApplyError> {
    let lib = &mlib.simple;
    let mut new = dp.clone();
    match mv {
        Move::SetFuType {
            path,
            group,
            fu_type,
        } => {
            let m = new.top.at_mut(path);
            let g = m
                .core
                .fu_groups
                .get_mut(*group)
                .ok_or(ApplyError::Rejected)?;
            if g.fu_type == *fu_type {
                return Err(ApplyError::Rejected);
            }
            g.fu_type = *fu_type;
        }
        Move::MergeFu {
            path,
            a,
            b,
            fu_type,
        } => {
            let m = new.top.at_mut(path);
            if *a >= *b || *b >= m.core.fu_groups.len() {
                return Err(ApplyError::Rejected);
            }
            let moved = m.core.fu_groups.remove(*b);
            let ga = &mut m.core.fu_groups[*a];
            ga.ops.extend(moved.ops);
            ga.fu_type = *fu_type;
        }
        Move::SplitFu { path, group, op } => {
            let m = new.top.at_mut(path);
            let g = m
                .core
                .fu_groups
                .get_mut(*group)
                .ok_or(ApplyError::Rejected)?;
            if g.ops.len() < 2 || !g.ops.contains(op) {
                return Err(ApplyError::Rejected);
            }
            g.ops.retain(|o| o != op);
            let fu_type = g.fu_type;
            m.core.fu_groups.push(hsyn_rtl::FuGroup {
                fu_type,
                ops: vec![*op],
            });
        }
        Move::RepackRegs { path } => {
            let m = new.top.at_mut(path);
            if matches!(m.core.reg_policy, RegPolicy::Packed) {
                return Err(ApplyError::Rejected);
            }
            m.core.reg_policy = RegPolicy::Packed;
        }
        Move::DedicateRegs { path } => {
            let m = new.top.at_mut(path);
            if matches!(m.core.reg_policy, RegPolicy::Dedicated) {
                return Err(ApplyError::Rejected);
            }
            m.core.reg_policy = RegPolicy::Dedicated;
        }
        Move::SwapChild {
            path,
            child,
            lib_idx,
            dfg,
        } => {
            let cm = mlib.complex.get(*lib_idx).ok_or(ApplyError::Rejected)?;
            let parent_dfg = new.top.at(path).core.dfg;
            let m = new.top.at_mut(path);
            let c = m.children.get_mut(*child).ok_or(ApplyError::Rejected)?;
            if c.nodes.len() != 1 {
                return Err(ApplyError::Rejected);
            }
            let node = c.nodes[0];
            c.kind = ChildKind::Opaque {
                module: cm.module.clone(),
                origin: format!("library:{}", cm.module.name()),
            };
            // Move A may rewrite the node to an equivalent DFG.
            new.hierarchy
                .dfg_mut(parent_dfg)
                .set_hier_callee(node, *dfg);
        }
        Move::ResynthChild { path, child } => {
            let kind = resynth(dp, path, *child).ok_or(ApplyError::Rejected)?;
            let m = new.top.at_mut(path);
            let c = m.children.get_mut(*child).ok_or(ApplyError::Rejected)?;
            c.kind = kind;
        }
        Move::MergeChildren { path, a, b } => {
            let parent_dfg = new.top.at(path).core.dfg;
            let m = new.top.at_mut(path);
            if *a >= *b || *b >= m.children.len() {
                return Err(ApplyError::Rejected);
            }
            let removed = m.children.remove(*b);
            // Which DFGs must the surviving module execute for `removed`?
            let g = new.hierarchy.dfg(parent_dfg);
            // Children are supposed to map hierarchical nodes only; if the
            // child/DFG association has drifted, reject the move instead of
            // panicking (paranoid mode will also flag the corruption).
            let callee_of = |n: hsyn_dfg::NodeId| match g.node(n).kind() {
                NodeKind::Hier { callee } => Some(*callee),
                _ => None,
            };
            let callees: BTreeSet<DfgId> = removed
                .nodes
                .iter()
                .map(|&n| callee_of(n))
                .collect::<Option<_>>()
                .ok_or(ApplyError::Rejected)?;
            // A stateful behavior (internal z⁻ᵏ registers) cannot serve two
            // hierarchical nodes from one instance — each context needs its
            // own state.
            {
                let target = &m.children[*a];
                let mut counts: std::collections::HashMap<DfgId, usize> =
                    std::collections::HashMap::new();
                for &n in target.nodes.iter().chain(removed.nodes.iter()) {
                    let callee = callee_of(n).ok_or(ApplyError::Rejected)?;
                    *counts.entry(callee).or_insert(0) += 1;
                }
                for (d, count) in counts {
                    if count >= 2 && new.hierarchy.has_state(d) {
                        return Err(ApplyError::Rejected);
                    }
                }
            }
            let target = &mut m.children[*a];
            let covered = callees
                .iter()
                .all(|&d| target.module().behavior_for(d).is_some());
            if covered {
                target.nodes.extend(removed.nodes);
            } else {
                let merged = embed(
                    &new.hierarchy,
                    target.module(),
                    removed.module(),
                    lib,
                    format!("{}+{}", target.module().name(), removed.module().name()),
                )?;
                target.nodes.extend(removed.nodes);
                target.kind = ChildKind::Opaque {
                    module: merged.module,
                    origin: "embedded".to_owned(),
                };
            }
        }
        Move::SplitChild { path, child, node } => {
            let m = new.top.at_mut(path);
            let c = m.children.get_mut(*child).ok_or(ApplyError::Rejected)?;
            if c.nodes.len() < 2 || !c.nodes.contains(node) {
                return Err(ApplyError::Rejected);
            }
            c.nodes.retain(|n| n != node);
            let clone = Child {
                nodes: vec![*node],
                kind: c.kind.clone(),
            };
            m.children.push(clone);
        }
        Move::RebankMem { path, mem, banks } => {
            let dfg = new.top.at(path).core.dfg;
            check_rebank(&new, dfg, *mem, *banks)?;
            new.hierarchy.dfg_mut(dfg).set_mem_banks(*mem, *banks);
        }
    }
    // Rebuild only the edited module and its ancestors: every other
    // module's spec is untouched and would rebuild to the identical RTL.
    new.rebuild_at(lib, &dirty_path(mv))?;
    Ok(new)
}

impl Move {
    /// [`apply_in_place`] as a method — the transactional counterpart of
    /// [`apply`]: edit `dp` directly, journaling the inverse of every edit
    /// in `undo` so a rejected candidate is restored by replay instead of
    /// a clone.
    ///
    /// # Errors
    ///
    /// Exactly [`apply`]'s errors; on error `dp` has already been rolled
    /// back to its pre-call state.
    #[allow(clippy::type_complexity)]
    pub fn apply_in_place(
        &self,
        dp: &mut DesignPoint,
        mlib: &ModuleLibrary,
        resynth: &mut dyn FnMut(&DesignPoint, &[usize], usize) -> Option<ChildKind>,
        undo: &mut UndoLog,
    ) -> Result<ModulePath, ApplyError> {
        apply_in_place(dp, self, mlib, resynth, undo)
    }
}

/// Apply `mv` to `dp` **in place**, journaling the inverse of every edit in
/// `undo` — the transactional counterpart of [`apply`]. Validation,
/// rejection and rebuild behavior are bit-identical to [`apply`]; only the
/// mechanics differ (speculate on the live design, undo by journal replay,
/// instead of edit-a-clone, undo by dropping it). Returns the move's dirty
/// path (as [`apply_tracked`]).
///
/// Every pre-condition is checked *before* the first mutation, so a
/// rejected candidate usually journals nothing; if the post-edit rebuild
/// fails, the journal suffix written by this call is replayed before
/// returning, so `dp` is restored either way. Records pushed by earlier
/// calls on the same log are never touched.
///
/// # Errors
///
/// Exactly [`apply`]'s errors.
#[allow(clippy::type_complexity)]
pub fn apply_in_place(
    dp: &mut DesignPoint,
    mv: &Move,
    mlib: &ModuleLibrary,
    resynth: &mut dyn FnMut(&DesignPoint, &[usize], usize) -> Option<ChildKind>,
    undo: &mut UndoLog,
) -> Result<ModulePath, ApplyError> {
    let mark = undo.mark();
    if let Err(e) = edit_in_place(dp, mv, mlib, resynth, undo) {
        undo.rollback_to(dp, mark);
        return Err(e);
    }
    let dirty = dirty_path(mv);
    let rebuilt = dp.rebuild_at_journaled(&mlib.simple, &dirty, &mut |path, built| {
        undo.push(UndoOp::RestoreBuilt {
            path: path.to_vec(),
            built,
        });
    });
    if let Err(e) = rebuilt {
        undo.rollback_to(dp, mark);
        return Err(e.into());
    }
    Ok(dirty)
}

/// The spec-tree half of [`apply_in_place`]: the per-variant edit plus its
/// inverse record. Mutates only after every precondition has passed, so an
/// `Err` return needs no cleanup for most variants; `MergeChildren` is the
/// one variant whose clone-based form mutated before validating, and is
/// reordered here (validate → embed → mutate) with identical outcomes.
#[allow(clippy::type_complexity)]
fn edit_in_place(
    dp: &mut DesignPoint,
    mv: &Move,
    mlib: &ModuleLibrary,
    resynth: &mut dyn FnMut(&DesignPoint, &[usize], usize) -> Option<ChildKind>,
    undo: &mut UndoLog,
) -> Result<(), ApplyError> {
    let lib = &mlib.simple;
    match mv {
        Move::SetFuType {
            path,
            group,
            fu_type,
        } => {
            let m = dp.top.at_mut(path);
            let g = m
                .core
                .fu_groups
                .get_mut(*group)
                .ok_or(ApplyError::Rejected)?;
            if g.fu_type == *fu_type {
                return Err(ApplyError::Rejected);
            }
            undo.push(UndoOp::RestoreFuType {
                path: path.clone(),
                group: *group,
                fu_type: g.fu_type,
            });
            g.fu_type = *fu_type;
        }
        Move::MergeFu {
            path,
            a,
            b,
            fu_type,
        } => {
            let m = dp.top.at_mut(path);
            if *a >= *b || *b >= m.core.fu_groups.len() {
                return Err(ApplyError::Rejected);
            }
            let moved = m.core.fu_groups.remove(*b);
            let ga = &mut m.core.fu_groups[*a];
            undo.push(UndoOp::UnmergeFu {
                path: path.clone(),
                a: *a,
                b: *b,
                a_ops_len: ga.ops.len(),
                a_fu_type: ga.fu_type,
                b_fu_type: moved.fu_type,
            });
            ga.ops.extend(moved.ops);
            ga.fu_type = *fu_type;
        }
        Move::SplitFu { path, group, op } => {
            let m = dp.top.at_mut(path);
            let g = m
                .core
                .fu_groups
                .get_mut(*group)
                .ok_or(ApplyError::Rejected)?;
            if g.ops.len() < 2 || !g.ops.contains(op) {
                return Err(ApplyError::Rejected);
            }
            let pos = g.ops.iter().position(|o| o == op).expect("just checked");
            undo.push(UndoOp::UnsplitFu {
                path: path.clone(),
                group: *group,
                pos,
                op: *op,
            });
            g.ops.retain(|o| o != op);
            let fu_type = g.fu_type;
            m.core.fu_groups.push(hsyn_rtl::FuGroup {
                fu_type,
                ops: vec![*op],
            });
        }
        Move::RepackRegs { path } => {
            let m = dp.top.at_mut(path);
            if matches!(m.core.reg_policy, RegPolicy::Packed) {
                return Err(ApplyError::Rejected);
            }
            let old = std::mem::replace(&mut m.core.reg_policy, RegPolicy::Packed);
            undo.push(UndoOp::RestoreRegPolicy {
                path: path.clone(),
                policy: old,
            });
        }
        Move::DedicateRegs { path } => {
            let m = dp.top.at_mut(path);
            if matches!(m.core.reg_policy, RegPolicy::Dedicated) {
                return Err(ApplyError::Rejected);
            }
            let old = std::mem::replace(&mut m.core.reg_policy, RegPolicy::Dedicated);
            undo.push(UndoOp::RestoreRegPolicy {
                path: path.clone(),
                policy: old,
            });
        }
        Move::SwapChild {
            path,
            child,
            lib_idx,
            dfg,
        } => {
            let cm = mlib.complex.get(*lib_idx).ok_or(ApplyError::Rejected)?;
            let parent_dfg = dp.top.at(path).core.dfg;
            let m = dp.top.at_mut(path);
            let c = m.children.get_mut(*child).ok_or(ApplyError::Rejected)?;
            if c.nodes.len() != 1 {
                return Err(ApplyError::Rejected);
            }
            let node = c.nodes[0];
            let old = std::mem::replace(
                &mut c.kind,
                ChildKind::Opaque {
                    module: cm.module.clone(),
                    origin: format!("library:{}", cm.module.name()),
                },
            );
            undo.push(UndoOp::RestoreChildKind {
                path: path.clone(),
                child: *child,
                kind: Box::new(old),
            });
            // Move A may rewrite the node to an equivalent DFG.
            let old_callee = dp.hierarchy.replace_callee(parent_dfg, node, *dfg);
            undo.push(UndoOp::RestoreCallee {
                dfg: parent_dfg,
                node,
                callee: old_callee,
            });
        }
        Move::ResynthChild { path, child } => {
            let kind = resynth(dp, path, *child).ok_or(ApplyError::Rejected)?;
            let m = dp.top.at_mut(path);
            let c = m.children.get_mut(*child).ok_or(ApplyError::Rejected)?;
            let old = std::mem::replace(&mut c.kind, kind);
            undo.push(UndoOp::RestoreChildKind {
                path: path.clone(),
                child: *child,
                kind: Box::new(old),
            });
        }
        Move::MergeChildren { path, a, b } => {
            let parent_dfg = dp.top.at(path).core.dfg;
            // Validate and (when needed) embed before touching anything:
            // unlike the clone-based form, a half-done merge here would be
            // visible, so every early return must precede the first edit.
            let merged_kind = {
                let m = dp.top.at(path);
                if *a >= *b || *b >= m.children.len() {
                    return Err(ApplyError::Rejected);
                }
                let g = dp.hierarchy.dfg(parent_dfg);
                let callee_of = |n: hsyn_dfg::NodeId| match g.node(n).kind() {
                    NodeKind::Hier { callee } => Some(*callee),
                    _ => None,
                };
                let removed = &m.children[*b];
                let callees: BTreeSet<DfgId> = removed
                    .nodes
                    .iter()
                    .map(|&n| callee_of(n))
                    .collect::<Option<_>>()
                    .ok_or(ApplyError::Rejected)?;
                let target = &m.children[*a];
                // A stateful behavior (internal z⁻ᵏ registers) cannot serve
                // two hierarchical nodes from one instance.
                let mut counts: std::collections::HashMap<DfgId, usize> =
                    std::collections::HashMap::new();
                for &n in target.nodes.iter().chain(removed.nodes.iter()) {
                    let callee = callee_of(n).ok_or(ApplyError::Rejected)?;
                    *counts.entry(callee).or_insert(0) += 1;
                }
                for (d, count) in counts {
                    if count >= 2 && dp.hierarchy.has_state(d) {
                        return Err(ApplyError::Rejected);
                    }
                }
                let covered = callees
                    .iter()
                    .all(|&d| target.module().behavior_for(d).is_some());
                if covered {
                    None
                } else {
                    let merged = embed(
                        &dp.hierarchy,
                        target.module(),
                        removed.module(),
                        lib,
                        format!("{}+{}", target.module().name(), removed.module().name()),
                    )?;
                    Some(ChildKind::Opaque {
                        module: merged.module,
                        origin: "embedded".to_owned(),
                    })
                }
            };
            let m = dp.top.at_mut(path);
            let removed = m.children.remove(*b);
            let target = &mut m.children[*a];
            let a_nodes_len = target.nodes.len();
            target.nodes.extend(removed.nodes.iter().copied());
            let a_kind = merged_kind.map(|k| Box::new(std::mem::replace(&mut target.kind, k)));
            undo.push(UndoOp::UnmergeChildren {
                path: path.clone(),
                a: *a,
                b: *b,
                a_nodes_len,
                a_kind,
                removed: Box::new(removed),
            });
        }
        Move::SplitChild { path, child, node } => {
            let m = dp.top.at_mut(path);
            let c = m.children.get_mut(*child).ok_or(ApplyError::Rejected)?;
            if c.nodes.len() < 2 || !c.nodes.contains(node) {
                return Err(ApplyError::Rejected);
            }
            let pos = c
                .nodes
                .iter()
                .position(|n| n == node)
                .expect("just checked");
            undo.push(UndoOp::UnsplitChild {
                path: path.clone(),
                child: *child,
                pos,
                node: *node,
            });
            c.nodes.retain(|n| n != node);
            let clone = Child {
                nodes: vec![*node],
                kind: c.kind.clone(),
            };
            m.children.push(clone);
        }
        Move::RebankMem { path, mem, banks } => {
            let dfg = dp.top.at(path).core.dfg;
            check_rebank(dp, dfg, *mem, *banks)?;
            let old = dp.hierarchy.dfg_mut(dfg).set_mem_banks(*mem, *banks);
            undo.push(UndoOp::RestoreMemBanks {
                dfg,
                mem: *mem,
                banks: old,
            });
        }
    }
    Ok(())
}

/// [`apply`] plus dirty tracking for incremental evaluation: also returns
/// the path of the module whose subtree the move structurally changed.
/// Everything rooted there must be re-fingerprinted; ancestors along the
/// path only recombine (their own specs are untouched, but their
/// fingerprints fold in the changed child), and subtrees off the path
/// rebuild deterministically to identical structures and can be reused.
///
/// # Errors
///
/// Exactly [`apply`]'s errors.
#[allow(clippy::type_complexity)]
pub fn apply_tracked(
    dp: &DesignPoint,
    mv: &Move,
    mlib: &ModuleLibrary,
    resynth: &mut dyn FnMut(&DesignPoint, &[usize], usize) -> Option<ChildKind>,
) -> Result<(DesignPoint, ModulePath), ApplyError> {
    let new = apply(dp, mv, mlib, resynth)?;
    Ok((new, dirty_path(mv)))
}

/// The root of the subtree a move edits: every variant carries the path of
/// the module whose core or child list it rewrites.
pub fn dirty_path(mv: &Move) -> ModulePath {
    match mv {
        Move::SetFuType { path, .. }
        | Move::MergeFu { path, .. }
        | Move::SplitFu { path, .. }
        | Move::RepackRegs { path }
        | Move::DedicateRegs { path }
        | Move::SwapChild { path, .. }
        | Move::ResynthChild { path, .. }
        | Move::MergeChildren { path, .. }
        | Move::SplitChild { path, .. }
        | Move::RebankMem { path, .. } => path.clone(),
    }
}

/// Preconditions of [`Move::RebankMem`]: the memory exists, is owned, the
/// new count differs and fits the word count, and exactly one module in the
/// built tree executes the DFG — any other executor's schedule, built under
/// the old bank constraint, would silently go stale (the rebuild only
/// revisits the dirty path).
fn check_rebank(dp: &DesignPoint, dfg: DfgId, mem: MemId, banks: u32) -> Result<(), ApplyError> {
    let g = dp.hierarchy.dfg(dfg);
    if mem.index() >= g.mem_count() {
        return Err(ApplyError::Rejected);
    }
    let m = g.mem(mem);
    if !matches!(m.scope, MemScope::Owned)
        || banks == 0
        || banks == m.banks
        || banks > m.words.max(1)
        || executor_count(&dp.top.built, dfg) != 1
    {
        return Err(ApplyError::Rejected);
    }
    Ok(())
}

/// Behaviors in the built RTL tree executing `dfg` (opaque library and
/// embedded modules count — they cannot be rebuilt, so a rebank touching
/// their DFG must be rejected).
fn executor_count(m: &hsyn_rtl::RtlModule, dfg: DfgId) -> usize {
    m.behaviors().iter().filter(|b| b.dfg == dfg).count()
        + m.subs()
            .iter()
            .map(|s| executor_count(s, dfg))
            .sum::<usize>()
}

/// A scored candidate: higher heuristic first; the engine evaluates the top
/// few exactly.
pub type Candidate = (f64, Move);

/// The operations executed by a functional-unit group.
fn group_ops(dp: &DesignPoint, m: &ModuleState, group: usize) -> BTreeSet<Operation> {
    let g = dp.hierarchy.dfg(m.core.dfg);
    m.core.fu_groups[group]
        .ops
        .iter()
        .filter_map(|&n| match g.node(n).kind() {
            NodeKind::Op(op) => Some(*op),
            _ => None,
        })
        .collect()
}

/// The cheapest library type (by objective) able to execute all `ops`.
fn best_type_for(
    lib: &Library,
    ops: &BTreeSet<Operation>,
    objective: Objective,
) -> Option<FuTypeId> {
    let ops: Vec<Operation> = ops.iter().copied().collect();
    lib.fus()
        .filter(|(_, f)| f.supports_all(&ops))
        .min_by(|(_, x), (_, y)| match objective {
            Objective::Area => x.area().total_cmp(&y.area()),
            Objective::Power => x.energy().total_cmp(&y.energy()),
        })
        .map(|(id, _)| id)
}

/// Rough per-module energy proxy of an RTL module: Σ FU energies.
fn module_energy_proxy(m: &hsyn_rtl::RtlModule, lib: &Library) -> f64 {
    let own: f64 = m.fus().iter().map(|f| lib.fu(f.fu_type).energy()).sum();
    own + m
        .subs()
        .iter()
        .map(|s| module_energy_proxy(s, lib))
        .sum::<f64>()
}

/// Rough per-module area proxy: Σ FU + register areas.
fn module_area_proxy(m: &hsyn_rtl::RtlModule, lib: &Library) -> f64 {
    let own: f64 = m
        .fus()
        .iter()
        .map(|f| lib.fu(f.fu_type).area())
        .sum::<f64>()
        + m.regs().len() as f64 * lib.register.area;
    own + m
        .subs()
        .iter()
        .map(|s| module_area_proxy(s, lib))
        .sum::<f64>()
}

/// Move *A*/*B* candidates: module selection for functional units, library
/// swaps and resynthesis for complex children.
pub fn selection_candidates(
    dp: &DesignPoint,
    mlib: &ModuleLibrary,
    objective: Objective,
    allow_resynth: bool,
) -> Vec<Candidate> {
    let lib = &mlib.simple;
    let mut out = Vec::new();
    dp.top.for_each(|path, m| {
        // Simple module selection.
        for (gi, grp) in m.core.fu_groups.iter().enumerate() {
            let ops = group_ops(dp, m, gi);
            let cur = lib.fu(grp.fu_type);
            for (tid, t) in lib.fus() {
                if tid == grp.fu_type || !t.supports_all(&ops.iter().copied().collect::<Vec<_>>()) {
                    continue;
                }
                let score = match objective {
                    Objective::Area => cur.area() - t.area(),
                    Objective::Power => (cur.energy() - t.energy()) * grp.ops.len() as f64,
                };
                out.push((
                    score,
                    Move::SetFuType {
                        path: path.to_vec(),
                        group: gi,
                        fu_type: tid,
                    },
                ));
            }
        }
        // Complex: swaps and resynthesis.
        let g = dp.hierarchy.dfg(m.core.dfg);
        for (ci, child) in m.children.iter().enumerate() {
            let callees: BTreeSet<DfgId> = child
                .nodes
                .iter()
                .filter_map(|&n| match g.node(n).kind() {
                    NodeKind::Hier { callee } => Some(*callee),
                    _ => None,
                })
                .collect();
            if callees.len() == 1 && child.nodes.len() == 1 {
                let callee = *callees.iter().next().unwrap();
                let cur_proxy = match objective {
                    Objective::Area => module_area_proxy(child.module(), lib),
                    Objective::Power => module_energy_proxy(child.module(), lib),
                };
                for (lib_idx, dfg) in mlib.candidates_for(callee, dp.op.clk_ref_ns) {
                    let cand = &mlib.complex[lib_idx].module;
                    if cand.name() == child.module().name() {
                        continue;
                    }
                    let cand_proxy = match objective {
                        Objective::Area => module_area_proxy(cand, lib),
                        Objective::Power => module_energy_proxy(cand, lib),
                    };
                    out.push((
                        cur_proxy - cand_proxy,
                        Move::SwapChild {
                            path: path.to_vec(),
                            child: ci,
                            lib_idx,
                            dfg,
                        },
                    ));
                }
            }
            if allow_resynth && callees.len() == 1 {
                // Bigger children first: more to gain from retailoring.
                let score = 1.0 + 0.01 * module_area_proxy(child.module(), lib);
                out.push((
                    score,
                    Move::ResynthChild {
                        path: path.to_vec(),
                        child: ci,
                    },
                ));
            }
        }
    });
    out
}

/// The zero-delay operand sources of a group's operations — used to score
/// merge candidates: operations reading the same producers interleave
/// *correlated* operand streams on a shared unit (cheap in power, and the
/// shared source avoids a mux leg in area).
fn group_sources(dp: &DesignPoint, m: &ModuleState, group: usize) -> BTreeSet<hsyn_dfg::VarRef> {
    let g = dp.hierarchy.dfg(m.core.dfg);
    let mut out = BTreeSet::new();
    for &op in &m.core.fu_groups[group].ops {
        for (_, e) in g.in_edges(op) {
            if e.delay == 0 {
                out.insert(e.from);
            }
        }
    }
    out
}

/// Busy cycles and earliest start of a functional-unit group in the current
/// schedule (cheap feasibility signals for merge candidates).
fn group_busy(m: &ModuleState, group: usize) -> (u32, u32) {
    let Some(b) = m.built.behaviors().first() else {
        return (0, 0);
    };
    let mut busy = 0u32;
    let mut earliest = u32::MAX;
    for &op in &m.core.fu_groups[group].ops {
        let t = b.schedule.time(op);
        busy += t.occupied.1 - t.occupied.0;
        earliest = earliest.min(t.occupied.0);
    }
    (busy, if earliest == u32::MAX { 0 } else { earliest })
}

/// Move *C* candidates: FU merging, register packing, child merging.
pub fn sharing_candidates(
    dp: &DesignPoint,
    mlib: &ModuleLibrary,
    objective: Objective,
) -> Vec<Candidate> {
    let lib = &mlib.simple;
    let mut out = Vec::new();
    dp.top.for_each(|path, m| {
        let budget = m.core.deadline.unwrap_or(u32::MAX);
        let n = m.core.fu_groups.len();
        for a in 0..n {
            let ops_a = group_ops(dp, m, a);
            let src_a = group_sources(dp, m, a);
            let (busy_a, start_a) = group_busy(m, a);
            for b in (a + 1)..n {
                let mut ops = ops_a.clone();
                ops.extend(group_ops(dp, m, b));
                let ta = m.core.fu_groups[a].fu_type;
                let tb = m.core.fu_groups[b].fu_type;
                let src_b = group_sources(dp, m, b);
                let common_sources = src_a.intersection(&src_b).count();
                // Cheap feasibility prune: the serialized busy time must fit
                // between the earliest start and the deadline.
                let (_busy_b, start_b) = group_busy(m, b);
                let earliest = start_a.min(start_b);
                let _ = busy_a;
                // Two shared-type choices: cheapest by objective, and the
                // faster of the two current types (when the cheap one would
                // lengthen the schedule too much).
                let mut types: Vec<FuTypeId> = Vec::new();
                if let Some(t) = best_type_for(lib, &ops, Objective::Area) {
                    types.push(t);
                }
                let ops_list: Vec<Operation> = ops.iter().copied().collect();
                let faster = if lib.fu(ta).delay_ns() <= lib.fu(tb).delay_ns() {
                    ta
                } else {
                    tb
                };
                if lib.fu(faster).supports_all(&ops_list) && !types.contains(&faster) {
                    types.push(faster);
                }
                let n_ops = (m.core.fu_groups[a].ops.len() + m.core.fu_groups[b].ops.len()) as u32;
                for shared in types {
                    // Feasibility prune under the *candidate* type: the
                    // serialized occupancy must fit before the deadline.
                    let est_busy =
                        n_ops * lib.latency_cycles(shared, dp.op.clk_ref_ns, lib.technology.vref());
                    let slack_bonus = if budget == u32::MAX {
                        0.0
                    } else {
                        if earliest + est_busy > budget {
                            continue;
                        }
                        (budget - earliest - est_busy) as f64 * 0.01
                    };
                    let saved = lib.fu(ta).area() + lib.fu(tb).area()
                        - lib.fu(shared).area()
                        - 2.0 * lib.mux.area_per_input;
                    // Correlated-operand bonus: shared sources keep the
                    // merged unit's switching low (power) and avoid mux
                    // legs (area).
                    let affinity = common_sources as f64
                        * match objective {
                            Objective::Power => 0.5 * lib.fu(shared).energy(),
                            Objective::Area => lib.mux.area_per_input,
                        };
                    out.push((
                        saved + slack_bonus + affinity,
                        Move::MergeFu {
                            path: path.to_vec(),
                            a,
                            b,
                            fu_type: shared,
                        },
                    ));
                }
            }
        }
        if !matches!(m.core.reg_policy, RegPolicy::Packed) && !m.regs_trivial() {
            out.push((
                lib.register.area * m.built.regs().len() as f64 * 0.25,
                Move::RepackRegs {
                    path: path.to_vec(),
                },
            ));
        }
        // Children: merging identical behaviors is the big hierarchical
        // area win; anisomorphic pairs go through RTL embedding. Stateful
        // behaviors cannot be shared across contexts (cheap pre-filter;
        // `apply` re-validates).
        let g = dp.hierarchy.dfg(m.core.dfg);
        let child_callees = |c: &Child| -> Vec<DfgId> {
            c.nodes
                .iter()
                .filter_map(|&n| match g.node(n).kind() {
                    NodeKind::Hier { callee } => Some(*callee),
                    _ => None,
                })
                .collect()
        };
        for a in 0..m.children.len() {
            let callees_a = child_callees(&m.children[a]);
            for b in (a + 1)..m.children.len() {
                let callees_b = child_callees(&m.children[b]);
                let state_clash = callees_b
                    .iter()
                    .any(|d| callees_a.contains(d) && dp.hierarchy.has_state(*d));
                if state_clash {
                    continue;
                }
                let smaller = module_area_proxy(m.children[a].module(), lib)
                    .min(module_area_proxy(m.children[b].module(), lib));
                out.push((
                    smaller,
                    Move::MergeChildren {
                        path: path.to_vec(),
                        a,
                        b,
                    },
                ));
            }
        }
        // Memory: halve an owned memory's banks — fewer bank instances
        // mean less port periphery (area) and less standing leakage
        // (power); the scheduler re-serializes accesses and rejects the
        // move if the tightened port constraint misses the deadline.
        rebank_candidates(dp, path, m, lib, objective, false, &mut out);
    });
    out
}

/// [`Move::RebankMem`] candidates for one module: halving (`double =
/// false`, a sharing move) or doubling (`double = true`, a splitting move)
/// each owned memory's bank count. Scores are cheap model deltas; the
/// engine's exact evaluation decides.
fn rebank_candidates(
    dp: &DesignPoint,
    path: &[usize],
    m: &ModuleState,
    lib: &Library,
    objective: Objective,
    double: bool,
    out: &mut Vec<Candidate>,
) {
    let dfg = m.core.dfg;
    let g = dp.hierarchy.dfg(dfg);
    if g.mem_count() == 0 {
        return;
    }
    let mut accesses = vec![0u32; g.mem_count()];
    for (_, n) in g.nodes() {
        match n.kind() {
            NodeKind::Load { mem } | NodeKind::Store { mem } => accesses[mem.index()] += 1,
            _ => {}
        }
    }
    for (mid, mem) in g.mems() {
        if !matches!(mem.scope, MemScope::Owned) {
            continue;
        }
        let banks = mem.banks.max(1);
        let acc = f64::from(accesses[mid.index()]);
        if double {
            let to = banks * 2;
            if to > mem.words.max(1) {
                continue;
            }
            // More banks relax the per-cycle port constraint; worth more
            // the more accesses currently contend per bank.
            let score = match objective {
                Objective::Power => 0.5 * acc / f64::from(banks),
                Objective::Area => 0.1 * acc / f64::from(banks),
            };
            out.push((
                score,
                Move::RebankMem {
                    path: path.to_vec(),
                    mem: mid,
                    banks: to,
                },
            ));
        } else if banks >= 2 {
            let to = banks / 2;
            let score = match objective {
                Objective::Area => {
                    lib.memory.area(mem.words, mem.elem_width, mem.ports, banks)
                        - lib.memory.area(mem.words, mem.elem_width, mem.ports, to)
                }
                // Leakage is per bank per busy cycle; approximate busy
                // cycles by the module's first-behavior makespan.
                Objective::Power => {
                    let cycles = m
                        .built
                        .behaviors()
                        .first()
                        .map_or(1.0, |b| f64::from(b.schedule.makespan().max(1)));
                    f64::from(banks - to) * cycles * lib.memory.leakage_per_bank_cycle
                }
            };
            out.push((
                score,
                Move::RebankMem {
                    path: path.to_vec(),
                    mem: mid,
                    banks: to,
                },
            ));
        }
    }
}

/// Move *D* candidates: FU splitting, register dedication, child splitting.
pub fn splitting_candidates(
    dp: &DesignPoint,
    mlib: &ModuleLibrary,
    objective: Objective,
) -> Vec<Candidate> {
    let lib = &mlib.simple;
    let mut out = Vec::new();
    dp.top.for_each(|path, m| {
        for (gi, grp) in m.core.fu_groups.iter().enumerate() {
            if grp.ops.len() < 2 {
                continue;
            }
            let energy = lib.fu(grp.fu_type).energy();
            // Splitting helps power (less interleaving) and schedule slack;
            // try peeling the first and last op of the group.
            for &op in [grp.ops.first(), grp.ops.last()].into_iter().flatten() {
                let score = match objective {
                    Objective::Power => energy * 0.5 * (grp.ops.len() as f64 - 1.0),
                    Objective::Area => 0.1,
                };
                out.push((
                    score,
                    Move::SplitFu {
                        path: path.to_vec(),
                        group: gi,
                        op,
                    },
                ));
            }
        }
        if matches!(m.core.reg_policy, RegPolicy::Packed) {
            out.push((
                match objective {
                    Objective::Power => lib.register.energy_write * m.built.regs().len() as f64,
                    Objective::Area => 0.05,
                },
                Move::DedicateRegs {
                    path: path.to_vec(),
                },
            ));
        }
        for (ci, child) in m.children.iter().enumerate() {
            if child.nodes.len() < 2 {
                continue;
            }
            for &node in [child.nodes.first(), child.nodes.last()]
                .into_iter()
                .flatten()
            {
                let score = match objective {
                    Objective::Power => module_energy_proxy(child.module(), lib) * 0.3,
                    Objective::Area => 0.1,
                };
                out.push((
                    score,
                    Move::SplitChild {
                        path: path.to_vec(),
                        child: ci,
                        node,
                    },
                ));
            }
        }
        // Memory: double an owned memory's banks — parallel banks relax
        // the scheduler's same-bank port-conflict edges, shortening the
        // schedule at the cost of port periphery area and bank leakage.
        rebank_candidates(dp, path, m, lib, objective, true, &mut out);
    });
    out
}

impl ModuleState {
    /// Whether there is nothing to gain from register packing (0/1
    /// registers).
    fn regs_trivial(&self) -> bool {
        self.built.regs().len() <= 1
    }
}
