//! Cooperative cancellation for long-running synthesis jobs.
//!
//! A [`CancelToken`] is a cheap, cloneable handle the daemon (or any
//! embedder) hands to [`SynthesisConfig::cancel`]; the engine polls it at
//! pass, move-step, and LNS-iteration boundaries. Cancellation is
//! all-or-nothing by design: a cancelled run returns
//! [`SynthesisError::Cancelled`](crate::SynthesisError::Cancelled) and
//! never a partial report, so the determinism contract ("same job →
//! byte-identical `result_json`") is unaffected — a token can change
//! *whether* a report exists, never its bytes.
//!
//! [`SynthesisConfig::cancel`]: crate::SynthesisConfig::cancel

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// A cloneable cancellation handle: an explicit flag plus an optional
/// deadline fixed at construction. All clones share the flag.
#[derive(Clone, Debug, Default)]
pub struct CancelToken {
    inner: Arc<Inner>,
}

#[derive(Debug, Default)]
struct Inner {
    flag: AtomicBool,
    deadline: Option<Instant>,
}

impl CancelToken {
    /// A token that only cancels when [`CancelToken::cancel`] is called.
    pub fn new() -> Self {
        Self::default()
    }

    /// A token that additionally auto-cancels once `budget` has elapsed
    /// from now.
    pub fn with_deadline(budget: Duration) -> Self {
        Self {
            inner: Arc::new(Inner {
                flag: AtomicBool::new(false),
                deadline: Some(Instant::now() + budget),
            }),
        }
    }

    /// Request cancellation. Idempotent; visible to all clones.
    pub fn cancel(&self) {
        self.inner.flag.store(true, Ordering::Release);
    }

    /// Whether the run should stop: explicitly cancelled, or past the
    /// deadline.
    pub fn is_cancelled(&self) -> bool {
        self.inner.flag.load(Ordering::Acquire) || self.deadline_expired()
    }

    /// Whether the deadline (if any) has passed, regardless of the
    /// explicit flag. Lets callers distinguish "client hit cancel" from
    /// "ran out of time" when reporting.
    pub fn deadline_expired(&self) -> bool {
        self.inner.deadline.is_some_and(|d| Instant::now() >= d)
    }

    /// Whether two handles share the same underlying token (i.e. one is a
    /// clone of the other). Used by registries that index live tokens.
    pub fn same(&self, other: &CancelToken) -> bool {
        Arc::ptr_eq(&self.inner, &other.inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn explicit_cancel_is_shared_across_clones() {
        let t = CancelToken::new();
        let u = t.clone();
        assert!(!t.is_cancelled() && !u.is_cancelled());
        u.cancel();
        assert!(t.is_cancelled() && u.is_cancelled());
        assert!(!t.deadline_expired(), "no deadline was set");
    }

    #[test]
    fn elapsed_deadline_cancels() {
        let t = CancelToken::with_deadline(Duration::ZERO);
        assert!(t.is_cancelled());
        assert!(t.deadline_expired());
        let far = CancelToken::with_deadline(Duration::from_secs(3600));
        assert!(!far.is_cancelled());
    }
}
