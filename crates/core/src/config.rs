//! Synthesis configuration.

use crate::cost::Objective;

/// Which move families the engine may use — all on by default; ablation
/// studies switch families off individually.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct MoveFamilies {
    /// Module replacement / selection (simple and complex).
    pub a: bool,
    /// Resynthesis of complex modules under relaxed constraints.
    pub b: bool,
    /// Merging: resource sharing, register packing, RTL embedding.
    pub c: bool,
    /// Splitting: resource splitting, register dedication.
    pub d: bool,
}

impl Default for MoveFamilies {
    fn default() -> Self {
        MoveFamilies {
            a: true,
            b: true,
            c: true,
            d: true,
        }
    }
}

/// Tunable knobs of the synthesis run (paper defaults in brackets).
#[derive(Clone, Debug)]
pub struct SynthesisConfig {
    /// Optimize for area or for power.
    pub objective: Objective,
    /// Sampling period = `laxity_factor` × minimum achievable period
    /// (Table 3 uses 1.2, 2.2, 3.2). Ignored if `sampling_period_ns` set.
    pub laxity_factor: f64,
    /// Explicit sampling period in ns, overriding the laxity factor.
    pub sampling_period_ns: Option<f64>,
    /// Synthesize hierarchically (the paper's method) or flatten first (the
    /// baseline of ref.&nbsp;10).
    pub hierarchical: bool,
    /// Moves per improvement pass; `None` ⇒ adaptive (≈ op count / 2,
    /// clamped to 8..=40).
    pub max_moves_per_pass: Option<usize>,
    /// Maximum improvement passes per `(Vdd, clk)` configuration.
    pub max_passes: usize,
    /// Candidates fully evaluated per move selection.
    pub candidate_limit: usize,
    /// Trace length for gain evaluation during search.
    pub eval_trace_len: usize,
    /// Trace length for the final report.
    pub report_trace_len: usize,
    /// Move-*B* recursion depth (0 disables resynthesis).
    pub resynth_depth: u32,
    /// Candidate clock periods considered.
    pub max_clock_candidates: usize,
    /// Datapath bit width for simulation.
    pub width: u32,
    /// RNG seed (traces).
    pub seed: u64,
    /// Move families available to the engine (ablation switch).
    pub moves: MoveFamilies,
    /// Worker threads for the outer loops (the `(Vdd, clk)` sweep inside
    /// [`synthesize`](crate::synthesize) and the laxity×objective grid of
    /// [`explore`](crate::explore)). `None` ⇒ one thread per available
    /// core; `Some(1)` ⇒ fully serial. Results are **identical** for every
    /// setting: work is merged in input order with a total-order tiebreak,
    /// so parallelism changes wall-clock only, never the report.
    pub parallelism: Option<usize>,
    /// Worker threads for candidate evaluation *inside* one `(Vdd, clk)`
    /// configuration: each improvement step speculates its candidate moves
    /// concurrently, every worker on its own transactional replica of the
    /// shared base design, and the winner is selected by a sequential
    /// replay in candidate order. `1` (the default) keeps the scan fully
    /// serial; `0` means one worker per available core. Requires
    /// [`transactional`](Self::transactional) mode — the scan stays serial
    /// without it. Results are **identical** for every setting: the replay
    /// re-imposes the serial scan's budgets, winner tiebreak, and stats,
    /// so intra-config parallelism changes wall-clock only, never the
    /// report (enforced by `tests/intra_determinism.rs`).
    pub intra_parallelism: usize,
    /// Run the cross-layer IR verifier (`hsyn-lint`) on the design after
    /// every accepted move and at each `(Vdd, clk)` configuration boundary,
    /// failing the configuration fast on the first error-severity
    /// diagnostic (it surfaces as a
    /// [`SkippedConfig`](crate::SkippedConfig) carrying the rule code).
    /// Observation-only on legal runs — the report is byte-identical with
    /// the flag off; verifier wall-clock is recorded in
    /// [`ConfigTelemetry::verify_s`](crate::ConfigTelemetry::verify_s).
    pub paranoid: bool,
    /// Incremental evaluation (on by default): per-module cost results are
    /// cached across candidate evaluations, keyed by structural fingerprint
    /// (see [`EvalCache`](crate::EvalCache)). **Bit-exact** with full
    /// recomputation — the report is byte-identical with the flag off; only
    /// wall-clock changes. Cache traffic is surfaced in
    /// [`MoveStats::eval_cache_hits`](crate::MoveStats::eval_cache_hits) /
    /// [`eval_cache_misses`](crate::MoveStats::eval_cache_misses).
    pub incremental: bool,
    /// Shadow evaluation (off by default): run every cached evaluation
    /// alongside a full recomputation and panic on the first bit-level
    /// divergence, naming the offending move and module path. A
    /// debugging/CI mode — slower than either pure mode — that turns the
    /// cache-exactness contract into a runtime assertion.
    pub shadow_eval: bool,
    /// Transactional move application (on by default): candidates are
    /// speculated **in place** on the one live design and undone by
    /// replaying an undo journal (see [`UndoLog`](crate::UndoLog)), instead
    /// of cloning the whole design per candidate. **Bit-exact** with the
    /// clone-per-candidate path — the report is byte-identical with the
    /// flag off; only wall-clock and memory change. Rollback traffic is
    /// surfaced in
    /// [`MoveStats::moves_rolled_back`](crate::MoveStats::moves_rolled_back)
    /// and
    /// [`MoveStats::undo_bytes_peak`](crate::MoveStats::undo_bytes_peak).
    pub transactional: bool,
    /// Large-neighborhood search iterations appended after the KL-style
    /// pass loop of each `(Vdd, clk)` configuration (0, the default,
    /// disables the layer). Each iteration ruins a seeded-random region of
    /// the converged design — a module subtree or every instance of one FU
    /// class, split back to a canonical maximally-parallel state inside one
    /// [`Transaction`](crate::Transaction) — then greedily reconstructs it
    /// under the current objective with an adaptive move-family portfolio
    /// and affinity-pruned merge candidates, committing only on strict
    /// cost improvement (rollback is O(edit size) otherwise). Fully
    /// deterministic given [`seed`](Self::seed): the report is
    /// byte-identical across repeated runs and every
    /// [`intra_parallelism`](Self::intra_parallelism) setting. Telemetry:
    /// [`MoveStats::lns_ruins`](crate::MoveStats::lns_ruins) /
    /// [`lns_accepts`](crate::MoveStats::lns_accepts) and
    /// [`ConfigTelemetry::lns_s`](crate::ConfigTelemetry::lns_s).
    pub lns_iters: usize,
    /// Co-simulation check (off by default): after each `(Vdd, clk)`
    /// configuration is optimized, step the winning design's FSM against
    /// its bound datapath cycle by cycle
    /// ([`hsyn_rtl::cosimulate`](hsyn_rtl::cosimulate)) on the evaluation
    /// traces and require the outputs to be byte-identical to the flattened
    /// behavioral reference. A divergence surfaces as a
    /// [`SkippedConfig`](crate::SkippedConfig) with rule code `COSIM`.
    /// Observation-only on legal runs — the report is byte-identical with
    /// the flag off.
    pub cosim_check: bool,
    /// Cooperative cancellation handle (none by default). The engine polls
    /// it at pass, move-step, and LNS-iteration boundaries; a tripped
    /// token aborts the whole run with
    /// [`SynthesisError::Cancelled`](crate::SynthesisError::Cancelled).
    /// All-or-nothing: cancellation never yields a partial report, so it
    /// can change *whether* a result exists but never its bytes.
    /// Propagates into recursive move-*B* child synthesis via the child
    /// budget.
    pub cancel: Option<crate::CancelToken>,
    /// Cross-run area-result store (none by default). When set, every
    /// engine run is seeded with the store's fingerprint-keyed area
    /// entries before optimizing and contributes its own entries back
    /// after — the persistence hook the `hsyn serve` daemon uses to keep
    /// submodules warm across jobs and restarts. Entries are bit-exact by
    /// the fingerprint contract, so sharing changes cache telemetry and
    /// wall-clock only, never `result_json` bytes. The store must match
    /// the run's [`Library`](hsyn_lib::Library): keep one per library.
    pub shared_area: Option<std::sync::Arc<crate::SharedAreaCache>>,
}

impl SynthesisConfig {
    /// Defaults for the given objective.
    pub fn new(objective: Objective) -> Self {
        SynthesisConfig {
            objective,
            laxity_factor: 1.2,
            sampling_period_ns: None,
            hierarchical: true,
            max_moves_per_pass: None,
            max_passes: 10,
            candidate_limit: 6,
            eval_trace_len: 32,
            report_trace_len: 256,
            resynth_depth: 2,
            max_clock_candidates: 4,
            width: 16,
            seed: 0xDAC_1998,
            moves: MoveFamilies::default(),
            parallelism: None,
            intra_parallelism: 1,
            paranoid: false,
            incremental: true,
            shadow_eval: false,
            transactional: true,
            lns_iters: 0,
            cosim_check: false,
            cancel: None,
            shared_area: None,
        }
    }

    /// The reduced budget used for recursive move-*B* resynthesis. Inner
    /// engines always scan serially (`intra_parallelism: 1`): candidate
    /// workers would otherwise spawn nested worker pools, and the outer
    /// scan already saturates the configured thread budget. LNS refinement
    /// is likewise outer-level only (`lns_iters: 0`): a ruin inside a
    /// speculative move-*B* child synthesis would multiply the budget out
    /// for marginal gain.
    pub(crate) fn child_budget(&self) -> SynthesisConfig {
        SynthesisConfig {
            max_moves_per_pass: Some(6),
            max_passes: 2,
            candidate_limit: 4,
            intra_parallelism: 1,
            lns_iters: 0,
            ..self.clone()
        }
    }
}

impl Default for SynthesisConfig {
    fn default() -> Self {
        SynthesisConfig::new(Objective::Area)
    }
}
