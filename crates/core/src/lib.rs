//! The H-SYN synthesis engine (Lakshminarayana & Jha, DAC 1998): iterative
//! improvement over hierarchical RTL design points with four move families —
//! module replacement (*A*), slack-driven resynthesis of complex modules
//! (*B*), merging via resource sharing and RTL embedding (*C*), and
//! splitting (*D*) — wrapped in loops over pruned supply-voltage and
//! clock-period candidate sets.
//!
//! Entry point: [`synthesize`]. The flattened baseline the paper compares
//! against (ref.&nbsp;10) is the same engine with
//! [`SynthesisConfig::hierarchical`] set to `false`.
//!
//! ```
//! use hsyn_core::{synthesize, Objective, SynthesisConfig};
//! use hsyn_dfg::benchmarks;
//! use hsyn_rtl::ModuleLibrary;
//!
//! let bench = benchmarks::paulin();
//! let mut mlib = ModuleLibrary::from_simple(hsyn_lib::Library::realistic());
//! mlib.equiv = bench.equiv.clone();
//! let mut config = SynthesisConfig::new(Objective::Power);
//! config.laxity_factor = 2.2;
//! // Small budgets keep this example fast; drop these lines for real runs.
//! config.max_passes = 2;
//! config.candidate_limit = 2;
//! config.eval_trace_len = 8;
//! config.report_trace_len = 16;
//! config.max_clock_candidates = 2;
//! let report = synthesize(&bench.hierarchy, &mlib, &config).expect("synthesizable");
//! println!(
//!     "area {:.0}, power {:.3} at {} V",
//!     report.evaluation.area.total(),
//!     report.evaluation.power.power,
//!     report.design.op.vdd
//! );
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod analyze;
mod cache;
mod cancel;
mod config;
mod cost;
mod design;
mod explore;
mod fuzz;
mod improve;
mod lns;
mod moves;
mod synth;
mod transact;

pub use analyze::{analyze, AnalyzeError, AnalyzeReport, ObjectiveAnalysis};
pub use cache::{EvalCache, SharedAreaCache, SHARED_AREA_CAP};
pub use cancel::CancelToken;
pub use config::{MoveFamilies, SynthesisConfig};
pub use cost::{
    evaluate, evaluate_cached, evaluate_search, evaluate_search_cached, Evaluation, Objective,
};
pub use design::{
    initial_solution, probe_min_latency, Child, ChildKind, DesignPoint, ModuleState,
    OperatingPoint, SpecCore,
};
pub use explore::{explore, pareto_front, Exploration, ExplorePoint, SkippedPoint};
pub use fuzz::{fuzz_cosim, FuzzCoverage, FuzzDivergence, FuzzParams, FuzzReport};
pub use improve::{MoveStats, ParanoidViolation};
pub use lns::{plan_ruin, ruin_region, Portfolio, RuinKind};
pub use moves::{
    apply, apply_in_place, apply_tracked, dirty_path, selection_candidates, sharing_candidates,
    splitting_candidates, ApplyError, ModulePath, Move,
};
pub use synth::{
    synthesize, ConfigTelemetry, ScaledDesign, SkippedConfig, SynthesisError, SynthesisReport,
};
pub use transact::{Transaction, UndoLog, UndoMark, UndoOp};

#[cfg(test)]
mod tests {
    use super::*;
    use hsyn_dfg::benchmarks;
    use hsyn_lib::papers::table1_library;
    use hsyn_lib::Library;
    use hsyn_rtl::papers::test1_complex_library;
    use hsyn_rtl::ModuleLibrary;

    fn fast_config(objective: Objective) -> SynthesisConfig {
        let mut c = SynthesisConfig::new(objective);
        c.max_passes = 4;
        c.candidate_limit = 4;
        c.eval_trace_len = 16;
        c.report_trace_len = 48;
        c.max_clock_candidates = 2;
        c.resynth_depth = 1;
        c
    }

    #[test]
    fn paulin_area_synthesis_beats_initial_solution() {
        let b = benchmarks::paulin();
        let mut mlib = ModuleLibrary::from_simple(table1_library());
        mlib.equiv = b.equiv.clone();
        let mut config = fast_config(Objective::Area);
        config.laxity_factor = 2.2;
        let report = synthesize(&b.hierarchy, &mlib, &config).unwrap();
        // The initial solution has one FU per op (11); sharing must shrink it.
        assert!(
            report.design.top.built.fus().len() < 11,
            "sharing did not reduce the 11-op parallel initial solution: {} FUs",
            report.design.top.built.fus().len()
        );
        assert!(report.evaluation.area.total() > 0.0);
        assert!(report.vdd_scaled.is_some(), "area mode voltage-scales");
        let scaled = report.vdd_scaled.unwrap();
        assert!(scaled.design.op.vdd <= 5.0);
        assert!(scaled.evaluation.power.power <= report.evaluation.power.power + 1e-9);
    }

    #[test]
    fn power_synthesis_beats_area_synthesis_on_power() {
        let b = benchmarks::paulin();
        let mut mlib = ModuleLibrary::from_simple(table1_library());
        mlib.equiv = b.equiv.clone();
        let mut ca = fast_config(Objective::Area);
        ca.laxity_factor = 2.2;
        let mut cp = fast_config(Objective::Power);
        cp.laxity_factor = 2.2;
        let ra = synthesize(&b.hierarchy, &mlib, &ca).unwrap();
        let rp = synthesize(&b.hierarchy, &mlib, &cp).unwrap();
        // Power-optimized consumes less than area-optimized at 5 V.
        assert!(
            rp.evaluation.power.power < ra.evaluation.power.power,
            "P-opt {} vs A-opt-at-5V {}",
            rp.evaluation.power.power,
            ra.evaluation.power.power
        );
        // And typically runs at reduced voltage.
        assert!(rp.design.op.vdd <= 5.0);
    }

    #[test]
    fn hierarchical_test1_uses_library_and_improves() {
        let (bench, mlib) = test1_complex_library();
        let mut config = fast_config(Objective::Power);
        config.laxity_factor = 2.0;
        let report = synthesize(&bench.hierarchy, &mlib, &config).unwrap();
        assert!(report.evaluation.power.power > 0.0);
        // Hierarchical design retains submodules.
        assert!(!report.design.top.built.subs().is_empty());
    }

    #[test]
    fn flattened_baseline_runs_on_hierarchical_input() {
        let (bench, mlib) = test1_complex_library();
        let mut config = fast_config(Objective::Area);
        config.hierarchical = false;
        config.laxity_factor = 2.0;
        let report = synthesize(&bench.hierarchy, &mlib, &config).unwrap();
        // Flattened: no submodules at all.
        assert!(report.design.top.built.subs().is_empty());
        assert!(!report.design.top.built.fus().is_empty());
    }

    #[test]
    fn laxity_one_tightest_period_still_synthesizes() {
        let b = benchmarks::paulin();
        let mlib = ModuleLibrary::from_simple(table1_library());
        let mut config = fast_config(Objective::Area);
        config.laxity_factor = 1.0;
        let report = synthesize(&b.hierarchy, &mlib, &config).unwrap();
        assert!(report.period_ns >= report.min_period_ns * 0.999);
    }

    #[test]
    fn infeasible_period_reports_error() {
        let b = benchmarks::paulin();
        let mlib = ModuleLibrary::from_simple(table1_library());
        let mut config = fast_config(Objective::Area);
        config.sampling_period_ns = Some(1.0);
        assert!(matches!(
            synthesize(&b.hierarchy, &mlib, &config),
            Err(SynthesisError::Infeasible { .. })
        ));
    }

    #[test]
    fn empty_library_reports_error() {
        let b = benchmarks::paulin();
        let mlib = ModuleLibrary::from_simple(Library::empty());
        let config = fast_config(Objective::Area);
        assert_eq!(
            synthesize(&b.hierarchy, &mlib, &config).unwrap_err(),
            SynthesisError::NoClockCandidates
        );
    }

    #[test]
    fn synthesis_is_deterministic() {
        let b = benchmarks::paulin();
        let mlib = ModuleLibrary::from_simple(table1_library());
        let mut config = fast_config(Objective::Area);
        config.laxity_factor = 2.2;
        let r1 = synthesize(&b.hierarchy, &mlib, &config).unwrap();
        let r2 = synthesize(&b.hierarchy, &mlib, &config).unwrap();
        assert_eq!(r1.evaluation.area.total(), r2.evaluation.area.total());
        assert_eq!(r1.evaluation.power.power, r2.evaluation.power.power);
        assert_eq!(r1.stats, r2.stats);
    }

    #[test]
    fn stats_account_for_moves() {
        let b = benchmarks::paulin();
        let mlib = ModuleLibrary::from_simple(table1_library());
        let mut config = fast_config(Objective::Area);
        config.laxity_factor = 3.2;
        let report = synthesize(&b.hierarchy, &mlib, &config).unwrap();
        assert!(report.stats.evaluated > 0);
        assert!(report.stats.passes >= 1);
        let applied = report.stats.applied_a
            + report.stats.applied_b
            + report.stats.applied_c
            + report.stats.applied_d;
        assert!(applied > 0, "some moves should commit at laxity 3.2");
    }

    #[test]
    fn paranoid_mode_is_observation_only() {
        let b = benchmarks::paulin();
        let mut mlib = ModuleLibrary::from_simple(table1_library());
        mlib.equiv = b.equiv.clone();
        let mut config = fast_config(Objective::Area);
        config.laxity_factor = 2.2;
        let plain = synthesize(&b.hierarchy, &mlib, &config).unwrap();
        config.paranoid = true;
        let checked = synthesize(&b.hierarchy, &mlib, &config).unwrap();
        // Same search, same result: the verifier observes, never steers.
        assert_eq!(plain.stats, checked.stats);
        assert_eq!(
            plain.evaluation.area.total(),
            checked.evaluation.area.total()
        );
        assert_eq!(plain.evaluation.power.power, checked.evaluation.power.power);
        assert_eq!(plain.per_config.len(), checked.per_config.len());
        for (p, c) in plain.per_config.iter().zip(&checked.per_config) {
            assert_eq!(
                (
                    p.vdd,
                    p.clk_ns,
                    p.evaluated,
                    p.rejected,
                    p.passes,
                    p.selected
                ),
                (
                    c.vdd,
                    c.clk_ns,
                    c.evaluated,
                    c.rejected,
                    c.passes,
                    c.selected
                )
            );
            assert_eq!(p.cost, c.cost);
            // Verifier wall-clock is recorded only when paranoid is on.
            assert_eq!(p.verify_s, 0.0);
            assert!(c.verify_s > 0.0, "paranoid run must record verify time");
        }
        assert!(checked.skipped_configs.iter().all(|s| s.rule.is_none()));
    }

    #[test]
    fn cancelled_token_aborts_with_structured_error() {
        let b = benchmarks::paulin();
        let mlib = ModuleLibrary::from_simple(table1_library());
        let mut config = fast_config(Objective::Area);
        config.laxity_factor = 2.2;
        let token = CancelToken::new();
        token.cancel();
        config.cancel = Some(token);
        assert_eq!(
            synthesize(&b.hierarchy, &mlib, &config).unwrap_err(),
            SynthesisError::Cancelled
        );
        // An expired deadline cancels the same way.
        config.cancel = Some(CancelToken::with_deadline(std::time::Duration::ZERO));
        assert_eq!(
            synthesize(&b.hierarchy, &mlib, &config).unwrap_err(),
            SynthesisError::Cancelled
        );
        // An untripped token is a no-op: same bytes as no token at all.
        config.cancel = Some(CancelToken::new());
        let with_token = synthesize(&b.hierarchy, &mlib, &config).unwrap();
        config.cancel = None;
        let without = synthesize(&b.hierarchy, &mlib, &config).unwrap();
        assert_eq!(with_token.result_json(), without.result_json());
    }

    #[test]
    fn shared_area_store_warms_without_changing_bytes() {
        let b = benchmarks::paulin();
        let mut mlib = ModuleLibrary::from_simple(table1_library());
        mlib.equiv = b.equiv.clone();
        let mut config = fast_config(Objective::Area);
        config.laxity_factor = 2.2;
        let plain = synthesize(&b.hierarchy, &mlib, &config).unwrap();
        assert!(plain.per_config.iter().all(|c| c.warm_area_hits == 0));

        let store = std::sync::Arc::new(SharedAreaCache::new());
        config.shared_area = Some(store.clone());
        let cold = synthesize(&b.hierarchy, &mlib, &config).unwrap();
        assert!(!store.is_empty(), "the cold run populates the store");
        let warm = synthesize(&b.hierarchy, &mlib, &config).unwrap();
        // Warm hits prove the seed was consumed; bytes prove it was inert.
        assert!(
            warm.per_config.iter().any(|c| c.warm_area_hits > 0),
            "the warm run must hit seeded entries"
        );
        assert_eq!(plain.result_json(), cold.result_json());
        assert_eq!(plain.result_json(), warm.result_json());
    }

    #[test]
    fn higher_laxity_lowers_power() {
        let b = benchmarks::paulin();
        let mlib = ModuleLibrary::from_simple(table1_library());
        let mut c1 = fast_config(Objective::Power);
        c1.laxity_factor = 1.2;
        let mut c3 = fast_config(Objective::Power);
        c3.laxity_factor = 3.2;
        let r1 = synthesize(&b.hierarchy, &mlib, &c1).unwrap();
        let r3 = synthesize(&b.hierarchy, &mlib, &c3).unwrap();
        assert!(
            r3.evaluation.power.power < r1.evaluation.power.power,
            "laxity 3.2 power {} should undercut laxity 1.2 power {}",
            r3.evaluation.power.power,
            r1.evaluation.power.power
        );
    }
}
