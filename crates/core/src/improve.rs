//! Variable-depth iterative improvement (Figure 4, lines 3–16): each pass
//! applies a sequence of best-available moves — individual moves may have
//! *negative* gain — then commits the prefix with the best cumulative gain,
//! "thus enabling escape from local minima".

use crate::cache::EvalCache;
use crate::config::SynthesisConfig;
use crate::cost::{evaluate_search, evaluate_search_cached, Evaluation, Objective};
use crate::design::{initial_module_with_window, ChildKind, DesignPoint, OperatingPoint};
use crate::moves::{
    apply_in_place, apply_tracked, selection_candidates, sharing_candidates, splitting_candidates,
    Candidate, Move,
};
use crate::transact::{UndoLog, UndoMark};
use hsyn_dfg::NodeKind;
use hsyn_lint::{error_count, verify_design, DesignView, Diagnostic, Severity};
use hsyn_power::{dsp_default, TraceSet};
use hsyn_rtl::{
    fingerprint_at, fingerprint_tree, refresh_fingerprint_tree, window_of, FpTree, ModuleLibrary,
};
use std::fmt;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::Instant;

/// A paranoid-mode verifier failure: the design under optimization stopped
/// satisfying a cross-layer invariant. Carries the move that introduced the
/// corruption (when one did) and the first error-severity diagnostic.
#[derive(Clone, Debug)]
pub struct ParanoidViolation {
    /// Display form of the accepted move after which the verifier fired;
    /// `None` when a configuration-boundary check (initial or final design)
    /// failed.
    pub after_move: Option<String>,
    /// The first error-severity diagnostic the verifier reported.
    pub diagnostic: Diagnostic,
}

impl fmt::Display for ParanoidViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.after_move {
            Some(mv) => write!(f, "verifier failed after move {mv}: {}", self.diagnostic),
            None => write!(
                f,
                "verifier failed at configuration boundary: {}",
                self.diagnostic
            ),
        }
    }
}

impl std::error::Error for ParanoidViolation {}

/// Why an engine run stopped before producing an optimized design:
/// a paranoid-mode verifier failure (the configuration is skipped and the
/// sweep continues) or a tripped [`CancelToken`](crate::CancelToken) (the
/// whole job aborts). `From<Box<ParanoidViolation>>` keeps every
/// `paranoid_check(..)?` call site unchanged.
#[derive(Debug)]
pub(crate) enum Abort {
    /// The cross-layer verifier reported an error-severity diagnostic.
    Paranoid(Box<ParanoidViolation>),
    /// The run's cancel token tripped (explicit cancel or deadline).
    Cancelled,
}

impl From<Box<ParanoidViolation>> for Abort {
    fn from(v: Box<ParanoidViolation>) -> Self {
        Abort::Paranoid(v)
    }
}

/// Counters describing what the engine did (reported for every synthesis
/// run; the experiment harness prints them alongside the results).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct MoveStats {
    /// Candidate moves fully evaluated (rebuild + reschedule + simulate).
    pub evaluated: u64,
    /// Candidates rejected by validity checks.
    pub rejected: u64,
    /// Moves committed, per family.
    pub applied_a: u64,
    /// Move B commits.
    pub applied_b: u64,
    /// Move C commits.
    pub applied_c: u64,
    /// Move D commits.
    pub applied_d: u64,
    /// Improvement passes executed.
    pub passes: u64,
    /// `(Vdd, clk)` configurations explored.
    pub configs: u64,
    /// `(Vdd, clk)` configurations skipped because no initial solution
    /// could be built (see
    /// [`SynthesisReport::skipped_configs`](crate::SynthesisReport::skipped_configs)
    /// for the reasons).
    pub configs_skipped: u64,
    /// Incremental-evaluation cache lookups answered from the cache
    /// (area + simulation); 0 with [`SynthesisConfig::incremental`] off.
    pub eval_cache_hits: u64,
    /// Incremental-evaluation cache lookups that fell through to a fresh
    /// computation; 0 with [`SynthesisConfig::incremental`] off.
    pub eval_cache_misses: u64,
    /// Move applications undone by replaying the undo journal — every
    /// speculated candidate plus every pass step beyond the committed
    /// prefix; 0 with [`SynthesisConfig::transactional`] off (clone mode
    /// discards copies instead of rolling back).
    pub moves_rolled_back: u64,
    /// Peak approximate byte footprint of the undo journal (see
    /// [`UndoLog::bytes_peak`](crate::UndoLog::bytes_peak)); 0 with
    /// [`SynthesisConfig::transactional`] off. Aggregated by `max`, not
    /// sum, in [`absorb`](Self::absorb) — it is a high-water mark.
    pub undo_bytes_peak: u64,
    /// Large-neighborhood ruin→recreate iterations that actually destroyed
    /// a region (see [`SynthesisConfig::lns_iters`]); 0 with the LNS layer
    /// off.
    pub lns_ruins: u64,
    /// LNS iterations whose reconstruction strictly improved cost and was
    /// committed; the rest rolled back in O(edit size).
    pub lns_accepts: u64,
}

impl MoveStats {
    pub(crate) fn record(&mut self, mv: &Move) {
        match mv {
            Move::SetFuType { .. } | Move::SwapChild { .. } => self.applied_a += 1,
            Move::ResynthChild { .. } => self.applied_b += 1,
            // Rebanking serves both families (halve = share, double =
            // split); the stats bucket it with the sharing moves.
            Move::MergeFu { .. }
            | Move::RepackRegs { .. }
            | Move::MergeChildren { .. }
            | Move::RebankMem { .. } => self.applied_c += 1,
            Move::SplitFu { .. } | Move::DedicateRegs { .. } | Move::SplitChild { .. } => {
                self.applied_d += 1
            }
        }
    }

    /// Merge another stats record into this one.
    pub fn absorb(&mut self, other: &MoveStats) {
        self.evaluated += other.evaluated;
        self.rejected += other.rejected;
        self.applied_a += other.applied_a;
        self.applied_b += other.applied_b;
        self.applied_c += other.applied_c;
        self.applied_d += other.applied_d;
        self.passes += other.passes;
        self.configs += other.configs;
        self.configs_skipped += other.configs_skipped;
        self.eval_cache_hits += other.eval_cache_hits;
        self.eval_cache_misses += other.eval_cache_misses;
        self.moves_rolled_back += other.moves_rolled_back;
        self.undo_bytes_peak = self.undo_bytes_peak.max(other.undo_bytes_peak);
        self.lns_ruins += other.lns_ruins;
        self.lns_accepts += other.lns_accepts;
    }
}

/// A worker's speculation outcome for one candidate in the parallel scan,
/// before the sequential replay attaches the move and decides whether the
/// serial budgets even reach the candidate.
struct Speculated {
    /// `Some((gain, resynth, fp, eval))` for a valid candidate; `None` for
    /// one rejected by validity checks.
    applied: Option<(f64, Option<ChildKind>, Option<FpTree>, Evaluation)>,
    /// The candidate's isolated stats delta (fresh counters per
    /// speculation), merged only if the replay reaches it.
    stats: MoveStats,
    verify_s: f64,
    eval_full_s: f64,
    eval_incr_s: f64,
    apply_s: f64,
}

/// Early-stop bookkeeping for the parallel scan: candidate outcomes
/// (valid/invalid) as they complete, and the serial budget walk run
/// incrementally over the contiguous completed prefix. A candidate's
/// outcome does not depend on scan order, so the walk reproduces exactly
/// what the sequential replay will conclude — just as soon as the data
/// exists rather than after every speculation finishes.
struct Frontier {
    /// `Some(valid)` once candidate `i` has been speculated.
    outcome: Vec<Option<bool>>,
    /// First in-order index the budget walk has not absorbed yet.
    next: usize,
    /// Valid candidates absorbed so far (serial `evaluated` counter).
    evaluated: usize,
    /// Invalid candidates absorbed so far (serial `rejected` counter).
    rejected: usize,
}

impl Frontier {
    /// Record candidate `i`'s outcome, then advance the in-order budget
    /// walk as far as completed outcomes allow. The budget check runs
    /// *before* each absorption — the same order as the serial scan and
    /// the replay — so when it trips, `stop` is lowered to the exact index
    /// the replay will break at, and every candidate below it already has
    /// a result.
    fn absorb(&mut self, i: usize, valid: bool, config: &SynthesisConfig, stop: &AtomicUsize) {
        self.outcome[i] = Some(valid);
        while self.next < self.outcome.len() {
            if self.evaluated >= config.candidate_limit
                || self.rejected >= 5 * config.candidate_limit
            {
                stop.store(self.next, Ordering::Relaxed);
                break;
            }
            let Some(v) = self.outcome[self.next] else {
                break;
            };
            if v {
                self.evaluated += 1;
            } else {
                self.rejected += 1;
            }
            self.next += 1;
        }
    }
}

/// A fully evaluated candidate application.
pub(crate) struct Applied {
    pub(crate) gain: f64,
    pub(crate) mv: Move,
    /// Clone mode: the fully rebuilt candidate design. `None` on the
    /// transactional path, where the winner is re-applied in place.
    pub(crate) dp: Option<DesignPoint>,
    /// Transactional path, move *B* only: the resynthesized implementation,
    /// kept so re-applying the winner does not re-run (and re-account)
    /// the recursive resynthesis.
    pub(crate) resynth: Option<ChildKind>,
    /// Fingerprint tree of the candidate's build (present iff caching is
    /// active).
    pub(crate) fp: Option<FpTree>,
    pub(crate) eval: Evaluation,
}

/// The per-configuration optimizer.
pub(crate) struct Engine<'a> {
    pub mlib: &'a ModuleLibrary,
    pub config: &'a SynthesisConfig,
    pub traces: TraceSet,
    /// Remaining move-*B* recursion budget.
    pub depth: u32,
    pub stats: MoveStats,
    /// Wall-clock spent in the paranoid verifier, seconds (0 when off).
    /// Kept off `MoveStats` so the stats stay `Eq`-comparable across runs.
    pub verify_s: f64,
    /// Incremental evaluation cache (unused with `config.incremental` and
    /// `config.shadow_eval` both off).
    pub cache: EvalCache,
    /// Wall-clock spent in full (uncached) search evaluations, seconds.
    /// Like `verify_s`, kept off `MoveStats` so the stats stay `Eq`.
    pub eval_full_s: f64,
    /// Wall-clock spent in cache-aware search evaluations, seconds.
    pub eval_incr_s: f64,
    /// Wall-clock spent applying moves, seconds: clone + rebuild in clone
    /// mode; in-place apply + rollback + winner re-apply in transactional
    /// mode. Like `verify_s`, kept off `MoveStats` so the stats stay `Eq`.
    pub apply_s: f64,
    /// Wall-clock spent in large-neighborhood ruin→recreate refinement,
    /// seconds (0 with [`SynthesisConfig::lns_iters`] at 0). Like
    /// `verify_s`, kept off `MoveStats` so the stats stay `Eq`.
    pub lns_s: f64,
    /// Per-worker evaluation caches for the intra-config parallel candidate
    /// scan, persisted across scans (like `cache` persists across the
    /// serial scan's candidates). Empty until the first parallel scan runs;
    /// cache contents affect wall-clock only, never results.
    intra_caches: Vec<EvalCache>,
}

impl<'a> Engine<'a> {
    pub fn new(
        mlib: &'a ModuleLibrary,
        config: &'a SynthesisConfig,
        traces: TraceSet,
        depth: u32,
    ) -> Self {
        Engine {
            mlib,
            config,
            traces,
            depth,
            stats: MoveStats::default(),
            verify_s: 0.0,
            cache: EvalCache::new(),
            eval_full_s: 0.0,
            eval_incr_s: 0.0,
            apply_s: 0.0,
            lns_s: 0.0,
            intra_caches: Vec::new(),
        }
    }

    /// Worker threads for the intra-config candidate scan: the
    /// [`SynthesisConfig::intra_parallelism`] knob resolved to a count
    /// (`0` ⇒ available cores).
    fn intra_workers(&self) -> usize {
        hsyn_util::effective_threads(match self.config.intra_parallelism {
            0 => None,
            n => Some(n),
        })
    }

    /// Whether evaluations go through the incremental cache (shadow mode
    /// exercises the cached path too, so it can be diffed).
    pub(crate) fn caching(&self) -> bool {
        self.config.incremental || self.config.shadow_eval
    }

    /// Paranoid mode: verify every cross-layer invariant of `dp`, failing
    /// on the first error-severity diagnostic. A no-op unless
    /// [`SynthesisConfig::paranoid`] is set; observation-only on legal
    /// designs (it never mutates anything, only accumulates `verify_s`).
    /// Cooperative cancellation checkpoint: error out if the run's token
    /// (when one is configured) has tripped. Polled at pass, move-step,
    /// and LNS-iteration boundaries — coarse enough to be free, fine
    /// enough that a cancelled job stops within one candidate scan.
    pub(crate) fn check_cancel(&self) -> Result<(), Abort> {
        match &self.config.cancel {
            Some(t) if t.is_cancelled() => Err(Abort::Cancelled),
            _ => Ok(()),
        }
    }

    pub(crate) fn paranoid_check(
        &mut self,
        dp: &DesignPoint,
        after: Option<&Move>,
    ) -> Result<(), Box<ParanoidViolation>> {
        if !self.config.paranoid {
            return Ok(());
        }
        let t0 = Instant::now();
        let diags = verify_design(&DesignView {
            hierarchy: &dp.hierarchy,
            module: &dp.top.built,
            lib: &self.mlib.simple,
            vdd: dp.op.vdd,
            clk_ns: dp.op.clk_ref_ns,
            sampling_period: dp.top.core.deadline,
        });
        self.verify_s += t0.elapsed().as_secs_f64();
        if error_count(&diags) == 0 {
            return Ok(());
        }
        let diagnostic = diags
            .into_iter()
            .find(|d| d.severity == Severity::Error)
            .expect("error_count counted at least one error");
        Err(Box::new(ParanoidViolation {
            after_move: after.map(|m| m.to_string()),
            diagnostic,
        }))
    }

    fn objective(&self) -> Objective {
        self.config.objective
    }

    /// Evaluate `dp` for the search loop — through the incremental cache
    /// when caching is active (`fp` is then `dp`'s fingerprint tree), with
    /// a full recomputation otherwise. In shadow mode both paths run and
    /// any bit-level divergence panics, naming the offending move.
    pub(crate) fn eval(
        &mut self,
        dp: &DesignPoint,
        fp: Option<&FpTree>,
        mv: Option<&Move>,
    ) -> Evaluation {
        let lib = &self.mlib.simple;
        let objective = self.objective();
        let Some(fp) = fp else {
            let t0 = Instant::now();
            let eval = evaluate_search(dp, lib, &self.traces, objective);
            self.eval_full_s += t0.elapsed().as_secs_f64();
            return eval;
        };
        let (hits0, misses0) = (self.cache.hits(), self.cache.misses());
        let t0 = Instant::now();
        let incr = evaluate_search_cached(dp, lib, &self.traces, objective, fp, &mut self.cache);
        self.eval_incr_s += t0.elapsed().as_secs_f64();
        self.stats.eval_cache_hits += self.cache.hits() - hits0;
        self.stats.eval_cache_misses += self.cache.misses() - misses0;
        if self.config.shadow_eval {
            let t0 = Instant::now();
            let full = evaluate_search(dp, lib, &self.traces, objective);
            self.eval_full_s += t0.elapsed().as_secs_f64();
            assert_shadow_identical(&incr, &full, mv);
        }
        incr
    }

    /// Apply + evaluate one candidate on a *clone*; `None` if invalid.
    /// `cur_fp` is the fingerprint tree of `dp` (present iff caching is
    /// active); the candidate's tree is derived from it by
    /// re-fingerprinting only the move's dirty subtree and recombining its
    /// ancestors.
    fn try_move(
        &mut self,
        dp: &DesignPoint,
        cur_fp: Option<&FpTree>,
        mv: &Move,
    ) -> Option<(DesignPoint, Option<FpTree>, Evaluation)> {
        let depth = self.depth;
        // Move B recursion is routed through a closure so `apply` stays a
        // pure structural edit everywhere else.
        let mut resynth_result: Option<ChildKind> = None;
        if let Move::ResynthChild { path, child } = mv {
            if depth == 0 {
                return None;
            }
            resynth_result = self.resynthesize_child(dp, path, *child);
            resynth_result.as_ref()?;
        }
        let t0 = Instant::now();
        let outcome = apply_tracked(dp, mv, self.mlib, &mut |_, _, _| resynth_result.take());
        self.apply_s += t0.elapsed().as_secs_f64();
        match outcome {
            Ok((new, dirty)) => {
                self.stats.evaluated += 1;
                let fp = cur_fp.map(|old| {
                    refresh_fingerprint_tree(&new.hierarchy, &new.top.built, old, &dirty)
                });
                let eval = self.eval(&new, fp.as_ref(), Some(mv));
                Some((new, fp, eval))
            }
            Err(_) => {
                self.stats.rejected += 1;
                None
            }
        }
    }

    /// [`try_move`](Self::try_move) on the transactional path: speculate
    /// the move **in place** on the live design, evaluate, then roll the
    /// journal back — `dp` is bit-identical to its pre-call state on
    /// return, success or failure. Returns the resynthesized child
    /// implementation (move *B* only; re-applying the winner must not
    /// re-run resynthesis), the candidate's fingerprint tree, and its
    /// evaluation.
    ///
    /// Validation, evaluation order, stats accounting and cache traffic are
    /// bit-identical to the clone path — the two differ in wall-clock and
    /// allocation only.
    fn try_move_tx(
        &mut self,
        dp: &mut DesignPoint,
        cur_fp: Option<&FpTree>,
        mv: &Move,
        log: &mut UndoLog,
    ) -> Option<(Option<ChildKind>, Option<FpTree>, Evaluation)> {
        let depth = self.depth;
        let mut resynth_kind: Option<ChildKind> = None;
        if let Move::ResynthChild { path, child } = mv {
            if depth == 0 {
                return None;
            }
            resynth_kind = self.resynthesize_child(dp, path, *child);
            resynth_kind.as_ref()?;
        }
        let mark = log.mark();
        let t0 = Instant::now();
        let outcome = apply_in_place(dp, mv, self.mlib, &mut |_, _, _| resynth_kind.clone(), log);
        self.apply_s += t0.elapsed().as_secs_f64();
        match outcome {
            Ok(dirty) => {
                self.stats.evaluated += 1;
                let fp = cur_fp
                    .map(|old| refresh_fingerprint_tree(&dp.hierarchy, &dp.top.built, old, &dirty));
                let eval = self.eval(dp, fp.as_ref(), Some(mv));
                let t1 = Instant::now();
                log.rollback_to(dp, mark);
                self.apply_s += t1.elapsed().as_secs_f64();
                self.stats.moves_rolled_back += 1;
                // Rollback-validity hook (paranoid mode): the retained
                // fingerprint tree must still describe the rolled-back
                // design, or every later `EvalCache` hit keyed through it
                // would silently return results for a different structure.
                if self.config.paranoid {
                    if let Some(old) = cur_fp {
                        let t2 = Instant::now();
                        let retained = old.at(&dirty).map(|t| t.fp);
                        let recomputed = fingerprint_at(&dp.hierarchy, &dp.top.built, &dirty);
                        self.verify_s += t2.elapsed().as_secs_f64();
                        assert_eq!(
                            retained, recomputed,
                            "rollback of move {mv} failed to restore the dirty subtree: \
                             the undo journal missed an edit"
                        );
                    }
                }
                Some((resynth_kind, fp, eval))
            }
            Err(_) => {
                self.stats.rejected += 1;
                None
            }
        }
    }

    /// Evaluate the top candidates by heuristic score and return the best
    /// by true gain (possibly negative). With `undo` present, candidates
    /// are speculated in place through the journal (transactional mode);
    /// with `undo` absent each candidate is applied to a clone. Either way
    /// `dp` is unchanged on return.
    ///
    /// Rejections and evaluations are budgeted separately: up to
    /// `candidate_limit` candidates are fully evaluated, and the scan stops
    /// early only after `5 × candidate_limit` *rejections*. (A single
    /// shared attempt counter could previously exhaust the scan on
    /// rejected candidates before evaluating any valid one.)
    pub(crate) fn best_from(
        &mut self,
        dp: &mut DesignPoint,
        cur_fp: Option<&FpTree>,
        base_cost: f64,
        mut cands: Vec<Candidate>,
        mut undo: Option<&mut UndoLog>,
    ) -> Option<Applied> {
        cands.sort_by(|a, b| b.0.total_cmp(&a.0));
        // Transactional scans can fan the speculation out across worker
        // threads; the clone path and single-threaded scans stay serial.
        if undo.is_some() && cands.len() > 1 {
            let workers = self.intra_workers();
            if workers > 1 {
                return self.best_from_parallel(dp, cur_fp, base_cost, cands, workers);
            }
        }
        let mut best: Option<Applied> = None;
        let mut evaluated = 0usize;
        let mut rejected = 0usize;
        for (_, mv) in cands {
            if evaluated >= self.config.candidate_limit
                || rejected >= 5 * self.config.candidate_limit
            {
                break;
            }
            let applied = match undo.as_deref_mut() {
                Some(log) => self
                    .try_move_tx(dp, cur_fp, &mv, log)
                    .map(|(resynth, fp, eval)| Applied {
                        gain: base_cost - eval.cost,
                        mv,
                        dp: None,
                        resynth,
                        fp,
                        eval,
                    }),
                None => self
                    .try_move(dp, cur_fp, &mv)
                    .map(|(new, fp, eval)| Applied {
                        gain: base_cost - eval.cost,
                        mv,
                        dp: Some(new),
                        resynth: None,
                        fp,
                        eval,
                    }),
            };
            match applied {
                Some(a) => {
                    evaluated += 1;
                    if best.as_ref().is_none_or(|b| a.gain > b.gain) {
                        best = Some(a);
                    }
                }
                None => rejected += 1,
            }
        }
        best
    }

    /// The intra-config parallel candidate scan (transactional mode only).
    ///
    /// Up to `workers` threads claim candidates from the sorted list
    /// through an atomic counter; each worker speculates on its **own**
    /// replica of the base design through its own undo journal (cloned
    /// once per worker, restored by rollback after every speculation), so
    /// the shared base is never touched. A sequential replay in candidate
    /// order then re-imposes the serial scan's evaluated/rejected budgets,
    /// per-candidate stats accounting, and first-best winner tiebreak.
    ///
    /// Byte-identical to the serial scan: every speculation fully rolls
    /// back, and evaluations are bit-exact regardless of cache state
    /// (see [`EvalCache`]), so a candidate's outcome is independent of the
    /// order — and the replica — it was speculated on. Candidates past the
    /// serial stop point are discarded wholesale, stats included, exactly
    /// as if they were never scanned. Only wall-clock changes (enforced at
    /// 1/2/4 workers by `tests/intra_determinism.rs`).
    ///
    /// Wasted speculation is bounded by early stop: outcomes are
    /// valid/invalid regardless of scan order, so as completed candidates
    /// form a contiguous in-order frontier, the serial budget walk can run
    /// over them incrementally — the moment it trips, `stop` drops to the
    /// frontier and no worker claims past it. Overshoot is limited to the
    /// candidates already in flight (< one per worker), so total work
    /// tracks the serial scan instead of the worst-case prefix.
    fn best_from_parallel(
        &mut self,
        dp: &DesignPoint,
        cur_fp: Option<&FpTree>,
        base_cost: f64,
        cands: Vec<Candidate>,
        workers: usize,
    ) -> Option<Applied> {
        // The serial scan examines at most `6 × candidate_limit − 1`
        // candidates before a budget trips (each examined candidate counts
        // toward one of the two budgets); speculating past that bound is
        // pure waste.
        let prefix_len = cands.len().min(6 * self.config.candidate_limit);
        let workers = workers.min(prefix_len);
        let next = AtomicUsize::new(0);
        // First index no worker should claim. Starts at the prefix bound
        // and only ever shrinks, to the frontier position where the serial
        // budgets trip (see `Frontier::absorb`).
        let stop = AtomicUsize::new(prefix_len);
        let frontier = Mutex::new(Frontier {
            outcome: vec![None; prefix_len],
            next: 0,
            evaluated: 0,
            rejected: 0,
        });
        let slots: Vec<Mutex<Option<Speculated>>> =
            (0..prefix_len).map(|_| Mutex::new(None)).collect();
        // Per-worker evaluation caches persist across scans, like the
        // serial engine's single cache persists across candidates.
        let mut caches = std::mem::take(&mut self.intra_caches);
        caches.resize_with(workers, EvalCache::new);
        let cache_slots: Vec<Mutex<EvalCache>> = caches.into_iter().map(Mutex::new).collect();
        let (mlib, config, depth) = (self.mlib, self.config, self.depth);
        let traces = &self.traces;
        let cand_prefix = &cands[..prefix_len];
        std::thread::scope(|scope| {
            for w in 0..workers {
                let (next, stop, frontier) = (&next, &stop, &frontier);
                let (slots, cache_slots) = (&slots, &cache_slots);
                scope.spawn(move || {
                    let mut engine = Engine::new(mlib, config, traces.clone(), depth);
                    engine.cache = std::mem::take(&mut *cache_slots[w].lock().expect("cache slot"));
                    let mut work = dp.clone();
                    let mut log = UndoLog::new();
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= stop.load(Ordering::Relaxed) {
                            break;
                        }
                        let applied = engine
                            .try_move_tx(&mut work, cur_fp, &cand_prefix[i].1, &mut log)
                            .map(|(resynth, fp, eval)| (base_cost - eval.cost, resynth, fp, eval));
                        let valid = applied.is_some();
                        *slots[i].lock().expect("result slot") = Some(Speculated {
                            applied,
                            stats: std::mem::take(&mut engine.stats),
                            verify_s: std::mem::take(&mut engine.verify_s),
                            eval_full_s: std::mem::take(&mut engine.eval_full_s),
                            eval_incr_s: std::mem::take(&mut engine.eval_incr_s),
                            apply_s: std::mem::take(&mut engine.apply_s),
                        });
                        frontier
                            .lock()
                            .expect("frontier")
                            .absorb(i, valid, config, stop);
                    }
                    *cache_slots[w].lock().expect("cache slot") = std::mem::take(&mut engine.cache);
                });
            }
        });
        self.intra_caches = cache_slots
            .into_iter()
            .map(|m| m.into_inner().expect("cache slot"))
            .collect();
        // Sequential replay in candidate order: identical budgets, stats
        // merge, and winner selection (strict improvement ⇒ first best
        // wins) as the serial scan.
        let mut best: Option<Applied> = None;
        let mut evaluated = 0usize;
        let mut rejected = 0usize;
        for ((_, mv), slot) in cands.into_iter().zip(slots) {
            if evaluated >= self.config.candidate_limit
                || rejected >= 5 * self.config.candidate_limit
            {
                break;
            }
            let outcome = slot
                .into_inner()
                .expect("result slot")
                .expect("workers fill every claimed slot");
            self.stats.absorb(&outcome.stats);
            self.verify_s += outcome.verify_s;
            self.eval_full_s += outcome.eval_full_s;
            self.eval_incr_s += outcome.eval_incr_s;
            self.apply_s += outcome.apply_s;
            match outcome.applied {
                Some((gain, resynth, fp, eval)) => {
                    evaluated += 1;
                    let a = Applied {
                        gain,
                        mv,
                        dp: None,
                        resynth,
                        fp,
                        eval,
                    };
                    if best.as_ref().is_none_or(|b| a.gain > b.gain) {
                        best = Some(a);
                    }
                }
                None => rejected += 1,
            }
        }
        best
    }

    /// `GET_BEST_TYPE_A_AND_B_MOVE` (Figure 5 wrapped into one selector).
    fn best_ab(
        &mut self,
        dp: &mut DesignPoint,
        cur_fp: Option<&FpTree>,
        base_cost: f64,
        undo: Option<&mut UndoLog>,
    ) -> Option<Applied> {
        let families = self.config.moves;
        if !families.a && !families.b {
            return None;
        }
        let mut cands = selection_candidates(
            dp,
            self.mlib,
            self.objective(),
            self.depth > 0 && families.b,
        );
        if !families.a {
            cands.retain(|(_, mv)| matches!(mv, Move::ResynthChild { .. }));
        }
        self.best_from(dp, cur_fp, base_cost, cands, undo)
    }

    /// `GET_BEST_RESOURCE_SHARING_MOVE`, falling back to
    /// `GET_BEST_RESOURCE_SPLITTING_MOVE` when sharing only degrades
    /// (Figure 4, lines 8–10).
    fn best_cd(
        &mut self,
        dp: &mut DesignPoint,
        cur_fp: Option<&FpTree>,
        base_cost: f64,
        mut undo: Option<&mut UndoLog>,
    ) -> Option<Applied> {
        let families = self.config.moves;
        let sharing = if families.c {
            let cands = sharing_candidates(dp, self.mlib, self.objective());
            self.best_from(dp, cur_fp, base_cost, cands, undo.as_deref_mut())
        } else {
            None
        };
        match sharing {
            Some(s) if s.gain > 0.0 => Some(s),
            other => {
                let splitting = if families.d {
                    let cands = splitting_candidates(dp, self.mlib, self.objective());
                    self.best_from(dp, cur_fp, base_cost, cands, undo)
                } else {
                    None
                };
                match (other, splitting) {
                    (Some(a), Some(b)) => Some(if a.gain >= b.gain { a } else { b }),
                    (a, b) => a.or(b),
                }
            }
        }
    }

    /// One full variable-depth optimization of `initial` at its operating
    /// point (Figure 4 lines 3–16). Returns the best design seen.
    ///
    /// Dispatches on [`SynthesisConfig::transactional`]: the transactional
    /// path speculates moves in place through an undo journal; the clone
    /// path copies the design per candidate. The two searches are
    /// bit-identical — same candidates, same evaluations in the same order,
    /// same stats, same result — differing only in wall-clock and
    /// allocation (see `tests/undo_rollback.rs`).
    ///
    /// # Errors
    ///
    /// In paranoid mode, the first cross-layer invariant violation aborts
    /// the configuration, naming the offending move. Never errors with
    /// paranoid mode off.
    pub(crate) fn optimize(
        &mut self,
        initial: DesignPoint,
    ) -> Result<(DesignPoint, Evaluation), Abort> {
        let (dp, eval) = if self.config.transactional {
            self.optimize_transactional(initial)
        } else {
            self.optimize_cloning(initial)
        }?;
        if self.config.lns_iters == 0 {
            return Ok((dp, eval));
        }
        let t0 = Instant::now();
        let out = self.lns_refine(dp, eval);
        self.lns_s += t0.elapsed().as_secs_f64();
        out
    }

    /// The clone-per-candidate search loop (kept as the
    /// `--no-transactional` escape hatch and the differential baseline).
    fn optimize_cloning(
        &mut self,
        initial: DesignPoint,
    ) -> Result<(DesignPoint, Evaluation), Abort> {
        self.paranoid_check(&initial, None)?;
        let mut cur = initial;
        let mut cur_fp = self
            .caching()
            .then(|| fingerprint_tree(&cur.hierarchy, &cur.top.built));
        let mut cur_eval = self.eval(&cur, cur_fp.as_ref(), None);
        let mut best = cur.clone();
        let mut best_eval = cur_eval;

        let op_count = cur.hierarchy.dfg(cur.top.core.dfg).schedulable_count();
        let max_moves = self
            .config
            .max_moves_per_pass
            .unwrap_or_else(|| (op_count / 2).clamp(8, 40));

        for _pass in 0..self.config.max_passes {
            self.check_cancel()?;
            self.stats.passes += 1;
            let mut states: Vec<(DesignPoint, Evaluation, Option<FpTree>)> =
                vec![(cur.clone(), cur_eval, cur_fp.clone())];
            let mut seq_moves: Vec<Move> = Vec::new();
            for _ in 0..max_moves {
                self.check_cancel()?;
                let (work, work_eval, work_fp) = states.last_mut().expect("non-empty");
                let base = work_eval.cost;
                let work_fp = work_fp.as_ref();
                let m1 = self.best_ab(work, work_fp, base, None);
                let m3 = self.best_cd(work, work_fp, base, None);
                let chosen = match (m1, m3) {
                    (Some(a), Some(b)) => Some(if a.gain >= b.gain { a } else { b }),
                    (a, b) => a.or(b),
                };
                let Some(chosen) = chosen else { break };
                let chosen_dp = chosen.dp.expect("clone path carries the candidate design");
                self.paranoid_check(&chosen_dp, Some(&chosen.mv))?;
                seq_moves.push(chosen.mv);
                states.push((chosen_dp, chosen.eval, chosen.fp));
            }
            // Commit the best-cumulative-gain prefix.
            let (best_idx, _) = states
                .iter()
                .enumerate()
                .min_by(|(_, a), (_, b)| a.1.cost.total_cmp(&b.1.cost))
                .expect("non-empty");
            let pass_gain = states[0].1.cost - states[best_idx].1.cost;
            if best_idx == 0 || pass_gain <= 1e-9 {
                break;
            }
            for mv in &seq_moves[..best_idx] {
                self.stats.record(mv);
            }
            let (committed, committed_eval, committed_fp) = states.swap_remove(best_idx);
            cur = committed;
            cur_eval = committed_eval;
            cur_fp = committed_fp;
            if cur_eval.cost < best_eval.cost {
                best = cur.clone();
                best_eval = cur_eval;
            }
        }
        Ok((best, best_eval))
    }

    /// The transactional search loop: one live design, mutated in place.
    ///
    /// Per step, every candidate is speculated and rolled back inside the
    /// pass journal ([`Engine::try_move_tx`]); the winner is then
    /// re-applied (reusing its saved move-*B* implementation, so recursive
    /// resynthesis runs exactly once per evaluation, as in clone mode).
    /// The per-step clone history of the clone path collapses to
    /// `(Evaluation, FpTree)` pairs plus journal marks: committing the
    /// best-cumulative-gain prefix = rolling the journal back to the mark
    /// taken before the first rejected step.
    fn optimize_transactional(
        &mut self,
        initial: DesignPoint,
    ) -> Result<(DesignPoint, Evaluation), Abort> {
        self.paranoid_check(&initial, None)?;
        let mut cur = initial;
        let mut cur_fp = self
            .caching()
            .then(|| fingerprint_tree(&cur.hierarchy, &cur.top.built));
        let mut cur_eval = self.eval(&cur, cur_fp.as_ref(), None);
        let mut best = cur.clone();
        let mut best_eval = cur_eval;

        let op_count = cur.hierarchy.dfg(cur.top.core.dfg).schedulable_count();
        let max_moves = self
            .config
            .max_moves_per_pass
            .unwrap_or_else(|| (op_count / 2).clamp(8, 40));

        for _pass in 0..self.config.max_passes {
            self.check_cancel()?;
            self.stats.passes += 1;
            let mut log = UndoLog::new();
            // history[k]: evaluation + fingerprint tree after k committed
            // steps; step_marks[k]: journal position before step k+1.
            let mut history: Vec<(Evaluation, Option<FpTree>)> = vec![(cur_eval, cur_fp.clone())];
            let mut step_marks: Vec<UndoMark> = Vec::new();
            let mut seq_moves: Vec<Move> = Vec::new();
            for _ in 0..max_moves {
                self.check_cancel()?;
                let (work_eval, work_fp) = history.last().expect("non-empty");
                let base = work_eval.cost;
                let m1 = self.best_ab(&mut cur, work_fp.as_ref(), base, Some(&mut log));
                let m3 = self.best_cd(&mut cur, work_fp.as_ref(), base, Some(&mut log));
                let chosen = match (m1, m3) {
                    (Some(a), Some(b)) => Some(if a.gain >= b.gain { a } else { b }),
                    (a, b) => a.or(b),
                };
                let Some(chosen) = chosen else { break };
                // Re-apply the winner (the scan rolled it back).
                let mark = log.mark();
                let mut saved = chosen.resynth;
                let t0 = Instant::now();
                apply_in_place(
                    &mut cur,
                    &chosen.mv,
                    self.mlib,
                    &mut |_, _, _| saved.take(),
                    &mut log,
                )
                .expect("re-apply of a just-validated move on the identical design");
                self.apply_s += t0.elapsed().as_secs_f64();
                self.paranoid_check(&cur, Some(&chosen.mv))?;
                seq_moves.push(chosen.mv);
                step_marks.push(mark);
                history.push((chosen.eval, chosen.fp));
            }
            // Commit the best-cumulative-gain prefix; unwind the rest.
            let (best_idx, _) = history
                .iter()
                .enumerate()
                .min_by(|(_, a), (_, b)| a.0.cost.total_cmp(&b.0.cost))
                .expect("non-empty");
            let pass_gain = history[0].0.cost - history[best_idx].0.cost;
            self.stats.undo_bytes_peak = self.stats.undo_bytes_peak.max(log.bytes_peak() as u64);
            if best_idx == 0 || pass_gain <= 1e-9 {
                // Reject the whole pass: unwind every applied step.
                let t0 = Instant::now();
                log.rollback_all(&mut cur);
                self.apply_s += t0.elapsed().as_secs_f64();
                self.stats.moves_rolled_back += seq_moves.len() as u64;
                break;
            }
            for mv in &seq_moves[..best_idx] {
                self.stats.record(mv);
            }
            if best_idx < seq_moves.len() {
                let t0 = Instant::now();
                log.rollback_to(&mut cur, step_marks[best_idx]);
                self.apply_s += t0.elapsed().as_secs_f64();
                self.stats.moves_rolled_back += (seq_moves.len() - best_idx) as u64;
            }
            let (committed_eval, committed_fp) = history.swap_remove(best_idx);
            cur_eval = committed_eval;
            cur_fp = committed_fp;
            if cur_eval.cost < best_eval.cost {
                best = cur.clone();
                best_eval = cur_eval;
            }
        }
        Ok((best, best_eval))
    }

    /// Move *B*: derive the child's slack window from the parent schedule
    /// ("constraint derivation"), then run a bounded recursive synthesis of
    /// the callee DFG under that window ("resynthesis").
    fn resynthesize_child(
        &mut self,
        dp: &DesignPoint,
        path: &[usize],
        child_idx: usize,
    ) -> Option<ChildKind> {
        let parent = dp.top.at(path);
        let child = parent.children.get(child_idx)?;
        let g = dp.hierarchy.dfg(parent.core.dfg);
        // Single-callee children only (merged modules are not resynthesized).
        let mut callee = None;
        for &n in &child.nodes {
            match g.node(n).kind() {
                NodeKind::Hier { callee: c } => {
                    if *callee.get_or_insert(*c) != *c {
                        return None;
                    }
                }
                _ => return None,
            }
        }
        let callee = callee?;

        // Constraint derivation: intersect the windows of all nodes served.
        // The parent schedules its children under exactly the context it
        // relinks with — one shared helper, so the two can never drift.
        let lib = &self.mlib.simple;
        let ctx = parent.core.build_ctx(lib, &dp.op);
        let mut arrivals: Option<Vec<u32>> = None;
        let mut deadlines: Option<Vec<u32>> = None;
        for &n in &child.nodes {
            let w = window_of(&dp.hierarchy, &parent.built, 0, &ctx, n);
            // The module start is when its first inputs arrive; express the
            // window relative to the node's own start (profiles are
            // start-relative).
            let base = w.input_arrivals.iter().copied().min().unwrap_or(0);
            let rel_in: Vec<u32> = w.input_arrivals.iter().map(|&a| a - base).collect();
            let rel_out: Vec<u32> = w
                .output_deadlines
                .iter()
                .map(|&d| d.saturating_sub(base))
                .collect();
            arrivals = Some(match arrivals {
                None => rel_in,
                Some(prev) => prev.iter().zip(&rel_in).map(|(&a, &b)| a.max(b)).collect(),
            });
            deadlines = Some(match deadlines {
                None => rel_out,
                Some(prev) => prev.iter().zip(&rel_out).map(|(&a, &b)| a.min(b)).collect(),
            });
        }

        // Resynthesis: bounded recursive synthesis under the window.
        let initial = initial_module_with_window(
            &dp.hierarchy,
            callee,
            self.mlib,
            &dp.op,
            arrivals,
            deadlines,
            &format!("{}_resyn", dp.hierarchy.dfg(callee).name()),
        )
        .ok()?;
        let in_count = dp.hierarchy.dfg(callee).input_count();
        let child_traces = dsp_default(
            in_count,
            self.config.eval_trace_len.min(24),
            self.config.width,
            self.config.seed ^ (callee.index() as u64).wrapping_mul(0x9e37_79b9),
        );
        let inner_cfg = self.config.child_budget();
        let mut inner = Engine::new(self.mlib, &inner_cfg, child_traces, self.depth - 1);
        let child_dp = DesignPoint {
            hierarchy: dp.hierarchy.clone(),
            op: OperatingPoint {
                // The child's deadline lives in its core; the sampling-cycles
                // field only feeds power normalization during inner search.
                ..dp.op
            },
            top: initial,
        };
        let result = inner.optimize(child_dp);
        self.stats.evaluated += inner.stats.evaluated;
        self.stats.rejected += inner.stats.rejected;
        self.stats.eval_cache_hits += inner.stats.eval_cache_hits;
        self.stats.eval_cache_misses += inner.stats.eval_cache_misses;
        self.stats.moves_rolled_back += inner.stats.moves_rolled_back;
        self.stats.undo_bytes_peak = self.stats.undo_bytes_peak.max(inner.stats.undo_bytes_peak);
        self.verify_s += inner.verify_s;
        self.eval_full_s += inner.eval_full_s;
        self.eval_incr_s += inner.eval_incr_s;
        self.apply_s += inner.apply_s;
        self.lns_s += inner.lns_s;
        // A child verifier failure (or a cancellation that tripped inside
        // the child) simply rejects this move-B candidate; the parent loop
        // re-checks the cancel token at its next step boundary.
        let (optimized, _) = result.ok()?;
        Some(ChildKind::Single(Box::new(optimized.top)))
    }
}

/// Every float of an [`Evaluation`], labeled — the shadow-mode comparison
/// surface.
fn eval_fields(e: &Evaluation) -> [(&'static str, f64); 17] {
    let a = &e.area;
    let p = &e.power;
    let b = &p.energy_breakdown;
    [
        ("area.fu", a.fu),
        ("area.reg", a.reg),
        ("area.mux", a.mux),
        ("area.wire", a.wire),
        ("area.controller", a.controller),
        ("area.subs", a.subs),
        ("energy.fu", b.fu),
        ("energy.reg", b.reg),
        ("energy.mux", b.mux),
        ("energy.wire", b.wire),
        ("energy.controller", b.controller),
        ("energy.clock", b.clock),
        ("energy.subs", b.subs),
        ("power.energy_per_iteration", p.energy_per_iteration),
        ("power.power", p.power),
        ("power.vdd", p.vdd),
        ("cost", e.cost),
    ]
}

/// Shadow-mode diff: the cached evaluation must equal the full
/// recomputation bit-for-bit (`f64::to_bits`, not an epsilon). `mv` is the
/// move that produced the evaluated design — `None` at a configuration's
/// initial design.
///
/// # Panics
///
/// Panics on the first diverging field, naming the move, the module path it
/// edited, and both bit patterns.
fn assert_shadow_identical(incr: &Evaluation, full: &Evaluation, mv: Option<&Move>) {
    for ((name, i), (_, f)) in eval_fields(incr).iter().zip(eval_fields(full).iter()) {
        if i.to_bits() != f.to_bits() {
            let origin = match mv {
                Some(mv) => format!(
                    "after move {mv} (dirty module path {:?})",
                    crate::moves::dirty_path(mv)
                ),
                None => "at the initial design".to_owned(),
            };
            panic!(
                "shadow evaluation diverged {origin}: {name} cached {i:?} ({:#018x}) != full {f:?} ({:#018x})",
                i.to_bits(),
                f.to_bits()
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::design::initial_solution;
    use crate::moves::Candidate;
    use hsyn_dfg::benchmarks;
    use hsyn_lib::papers::table1_library;
    use hsyn_rtl::ModuleLibrary;

    fn paulin_fixture() -> (DesignPoint, ModuleLibrary, TraceSet) {
        let b = benchmarks::paulin();
        let mlib = ModuleLibrary::from_simple(table1_library());
        let op =
            OperatingPoint::derive(&mlib.simple, mlib.simple.technology.vref(), 10.0, 10_000.0);
        let top = initial_solution(&b.hierarchy, &mlib, &op).expect("paulin builds");
        let traces = dsp_default(b.hierarchy.dfg(b.hierarchy.top()).input_count(), 4, 16, 1);
        let dp = DesignPoint {
            hierarchy: b.hierarchy.clone(),
            op,
            top,
        };
        (dp, mlib, traces)
    }

    /// Regression for the `best_from` bailout: before the evaluated/rejected
    /// budgets were split, a single shared attempt counter
    /// (`attempts >= 5 × candidate_limit`, counting *both* kinds) could
    /// exhaust the scan on rejected candidates and stop before evaluating a
    /// valid lower-scored one. With `candidate_limit = 2`, one valid
    /// candidate followed by nine rejecting ones used to spend the whole
    /// budget (1 + 9 = 10 ≥ 10); the trailing valid candidate was never
    /// evaluated.
    #[test]
    fn rejections_do_not_starve_valid_candidates() {
        let (mut dp, mlib, traces) = paulin_fixture();
        let mut config = SynthesisConfig::new(Objective::Area);
        config.candidate_limit = 2;
        config.incremental = false;
        let mut engine = Engine::new(&mlib, &config, traces.clone(), 0);
        let base = engine.eval(&dp, None, None);
        // Group 999 does not exist, so these nine are rejected by `apply`;
        // RepackRegs is valid (the initial register policy is dedicated).
        let stale_type = dp.top.core.fu_groups[0].fu_type;
        let mut cands: Vec<Candidate> = vec![(100.0, Move::RepackRegs { path: vec![] })];
        for i in 0..9 {
            cands.push((
                90.0 - i as f64,
                Move::SetFuType {
                    path: vec![],
                    group: 999,
                    fu_type: stale_type,
                },
            ));
        }
        cands.push((1.0, Move::RepackRegs { path: vec![] }));
        let best = engine.best_from(&mut dp, None, base.cost, cands.clone(), None);
        assert!(best.is_some(), "a valid candidate must be found");
        assert_eq!(
            (engine.stats.evaluated, engine.stats.rejected),
            (2, 9),
            "both valid candidates must be evaluated despite nine rejections"
        );
        // The transactional scan obeys the identical budgets — and leaves
        // both the journal and the design untouched behind it.
        let mut tx_engine = Engine::new(&mlib, &config, traces, 0);
        let mut log = UndoLog::new();
        let tx_best = tx_engine.best_from(&mut dp, None, base.cost, cands, Some(&mut log));
        assert!(tx_best.is_some());
        assert_eq!(
            (tx_engine.stats.evaluated, tx_engine.stats.rejected),
            (2, 9),
            "transactional scan must replicate the clone-path budgets"
        );
        assert_eq!(tx_engine.stats.moves_rolled_back, 2);
        assert!(log.is_empty(), "scan must roll every speculation back");
    }

    /// Shadow mode turns a cache/full divergence into a panic naming the
    /// offending move and field.
    #[test]
    #[should_panic(expected = "shadow evaluation diverged after move")]
    fn shadow_divergence_panics() {
        let (dp, mlib, traces) = paulin_fixture();
        let incr = evaluate_search(&dp, &mlib.simple, &traces, Objective::Area);
        let mut full = incr;
        full.area.fu += 1.0;
        assert_shadow_identical(&incr, &full, Some(&Move::RepackRegs { path: vec![] }));
    }
}
