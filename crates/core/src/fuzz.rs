//! Coverage-guided random-DFG fuzzing of the co-simulation oracle.
//!
//! Each case draws structural parameters ([`FuzzParams`]), generates a
//! random hierarchical behavior, synthesizes it under **both** objectives
//! with small search budgets, co-simulates the winning design cycle by
//! cycle ([`hsyn_rtl::cosimulate`]), and requires the outputs to be
//! byte-identical to the flattened behavioral reference
//! ([`hsyn_dfg::reference_outputs`]).
//!
//! The generator is *coverage-guided*: a [`FuzzCoverage`] map counts
//! structural features actually exercised (hierarchy depth, op-count
//! bucket, feedback, multi-level delays, sharing degree, chaining,
//! multi-function ALUs, submodule state outputs), and each case picks,
//! among a handful of random parameter candidates, the one whose predicted
//! features are least covered — so long runs keep probing rare corners
//! instead of resampling the common case.
//!
//! A divergence is **shrunk** before it is reported: the parameters are
//! repeatedly reduced (fewer ops, fewer inputs, no submodules, no
//! feedback, …) while the failure reproduces, and the minimal case is
//! rendered as a JSON reproducer carrying the textual DFG
//! ([`hsyn_dfg::text::print`]), the seeds, and the failing configuration.
//! Everything is deterministic from the initial seed.

use crate::config::SynthesisConfig;
use crate::cost::Objective;
use crate::synth::synthesize;
use hsyn_dfg::{reference_outputs, text, Dfg, DfgId, Hierarchy, NodeKind, Operation, VarRef};
use hsyn_power::dsp_default;
use hsyn_rtl::{ModuleLibrary, RtlModule};
use hsyn_util::{Json, Rng};
use std::collections::BTreeMap;

/// Structural parameters of one generated case.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FuzzParams {
    /// Primary inputs of the top DFG (1..=4).
    pub inputs: usize,
    /// Operation nodes in the top DFG (1..=12).
    pub ops: usize,
    /// Submodule DFGs called from the top (0..=2).
    pub subs: usize,
    /// Operation nodes per submodule DFG.
    pub sub_ops: usize,
    /// Nest the second submodule inside the first (hierarchy depth 3).
    pub nested: bool,
    /// Add a delay-1 feedback edge in the top DFG.
    pub feedback: bool,
    /// Consume one top variable through a delay-2 edge (multi-level
    /// history).
    pub deep_delay: bool,
    /// Give one submodule a delayed (state) output.
    pub sub_state: bool,
    /// Synthesize the flattened baseline instead of hierarchically.
    pub flatten: bool,
    /// Owned memories in the top DFG (0..=2), each receiving random
    /// stores and loads with a mix of constant and variable addresses.
    pub mems: usize,
    /// Bind the first memory into the first submodule as a shared bank
    /// (the callee declares it `external` and loads from it).
    pub mem_share: bool,
    /// Laxity factor in percent (120..=319).
    pub laxity_pct: u32,
}

impl FuzzParams {
    /// Draw a random parameter set.
    fn draw(rng: &mut Rng) -> Self {
        let subs = rng.range_usize(0, 3);
        let sub_state = subs > 0 && rng.next_bool(0.4);
        let mems = rng.range_usize(0, 3);
        FuzzParams {
            inputs: rng.range_usize(1, 5),
            ops: rng.range_usize(1, 13),
            subs,
            sub_ops: rng.range_usize(1, 6),
            nested: subs == 2 && rng.next_bool(0.5),
            feedback: rng.next_bool(0.4),
            deep_delay: rng.next_bool(0.25),
            sub_state,
            flatten: rng.next_bool(0.25),
            mems,
            // Shared banks and state outputs both special-case sub 0; keep
            // the generator simple by never combining them.
            mem_share: mems > 0 && subs > 0 && !sub_state && rng.next_bool(0.5),
            laxity_pct: rng.range_i64(120, 319) as u32,
        }
    }

    /// Features predictable from the parameters alone (used to score
    /// candidates against the coverage map before running them).
    fn predicted_features(&self) -> Vec<String> {
        let mut f = vec![
            format!("depth:{}", self.depth()),
            format!("ops:{}", (self.ops + self.subs * self.sub_ops) / 4),
            format!("feedback:{}", self.feedback),
            format!("deepdelay:{}", self.deep_delay),
            format!("flatten:{}", self.flatten),
        ];
        if self.subs > 0 {
            f.push(format!("substate:{}", self.sub_state));
        }
        f.push(format!("mems:{}", self.mems));
        if self.mems > 0 && self.subs > 0 {
            f.push(format!("memshare:{}", self.mem_share));
        }
        f
    }

    fn depth(&self) -> usize {
        match (self.subs, self.nested) {
            (0, _) => 1,
            (_, false) => 2,
            (_, true) => 3,
        }
    }

    /// Strictly smaller parameter sets to try while shrinking a failure, in
    /// preference order (biggest reductions first).
    fn reductions(&self) -> Vec<FuzzParams> {
        let mut out = Vec::new();
        if self.subs > 0 {
            out.push(FuzzParams {
                subs: 0,
                nested: false,
                sub_state: false,
                ..*self
            });
        }
        if self.nested {
            out.push(FuzzParams {
                nested: false,
                ..*self
            });
        }
        if self.ops > 1 {
            out.push(FuzzParams {
                ops: self.ops / 2,
                ..*self
            });
            out.push(FuzzParams {
                ops: self.ops - 1,
                ..*self
            });
        }
        if self.sub_ops > 1 && self.subs > 0 {
            out.push(FuzzParams {
                sub_ops: self.sub_ops / 2,
                ..*self
            });
        }
        if self.feedback {
            out.push(FuzzParams {
                feedback: false,
                ..*self
            });
        }
        if self.deep_delay {
            out.push(FuzzParams {
                deep_delay: false,
                ..*self
            });
        }
        if self.sub_state {
            out.push(FuzzParams {
                sub_state: false,
                ..*self
            });
        }
        if self.mems > 0 {
            out.push(FuzzParams {
                mems: 0,
                mem_share: false,
                ..*self
            });
            out.push(FuzzParams {
                mems: self.mems - 1,
                mem_share: self.mem_share && self.mems > 1,
                ..*self
            });
        }
        if self.mem_share {
            out.push(FuzzParams {
                mem_share: false,
                ..*self
            });
        }
        if self.inputs > 1 {
            out.push(FuzzParams {
                inputs: self.inputs - 1,
                ..*self
            });
        }
        out
    }

    fn to_json(self) -> Json {
        Json::Obj(vec![
            ("inputs".into(), Json::Num(self.inputs as f64)),
            ("ops".into(), Json::Num(self.ops as f64)),
            ("subs".into(), Json::Num(self.subs as f64)),
            ("sub_ops".into(), Json::Num(self.sub_ops as f64)),
            ("nested".into(), Json::Bool(self.nested)),
            ("feedback".into(), Json::Bool(self.feedback)),
            ("deep_delay".into(), Json::Bool(self.deep_delay)),
            ("sub_state".into(), Json::Bool(self.sub_state)),
            ("flatten".into(), Json::Bool(self.flatten)),
            ("mems".into(), Json::Num(self.mems as f64)),
            ("mem_share".into(), Json::Bool(self.mem_share)),
            ("laxity_pct".into(), Json::Num(f64::from(self.laxity_pct))),
        ])
    }
}

/// Counts of structural features exercised so far. Keys are short
/// `name:value` strings (e.g. `"depth:2"`, `"chained:true"`).
#[derive(Clone, Debug, Default)]
pub struct FuzzCoverage {
    counts: BTreeMap<String, u64>,
}

impl FuzzCoverage {
    /// Number of distinct features seen.
    pub fn distinct(&self) -> usize {
        self.counts.len()
    }

    /// Iterate over `(feature, hits)` pairs in sorted order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, u64)> + '_ {
        self.counts.iter().map(|(k, &v)| (k.as_str(), v))
    }

    /// How often this exact feature combination has been seen (sum of
    /// per-feature counts — lower means less explored).
    fn score(&self, features: &[String]) -> u64 {
        features
            .iter()
            .map(|f| self.counts.get(f).copied().unwrap_or(0))
            .sum()
    }

    fn record(&mut self, features: &[String]) {
        for f in features {
            *self.counts.entry(f.clone()).or_insert(0) += 1;
        }
    }
}

/// A shrunk co-simulation failure, renderable as a JSON reproducer.
#[derive(Clone, Debug)]
pub struct FuzzDivergence {
    /// Case number within the run.
    pub case: u64,
    /// Seed the case (and its shrunk variants) was generated from.
    pub case_seed: u64,
    /// The (shrunk) parameters that still reproduce the failure.
    pub params: FuzzParams,
    /// Objective under which the failure occurred.
    pub objective: Objective,
    /// What diverged.
    pub detail: String,
    /// The failing hierarchy in the textual DFG format
    /// ([`hsyn_dfg::text::parse`] reads it back).
    pub dfg_text: String,
}

impl FuzzDivergence {
    /// Render the reproducer as a JSON document.
    pub fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("case".into(), Json::Num(self.case as f64)),
            // Seeds are 64-bit; a JSON number (f64) cannot hold them
            // exactly, so the reproducer stores the decimal digits.
            ("case_seed".into(), Json::Str(self.case_seed.to_string())),
            ("params".into(), self.params.to_json()),
            (
                "objective".into(),
                Json::Str(
                    match self.objective {
                        Objective::Area => "area",
                        Objective::Power => "power",
                    }
                    .into(),
                ),
            ),
            ("detail".into(), Json::Str(self.detail.clone())),
            ("dfg".into(), Json::Str(self.dfg_text.clone())),
        ])
    }
}

/// The outcome of a fuzzing run.
#[derive(Clone, Debug)]
pub struct FuzzReport {
    /// Cases attempted.
    pub cases: u64,
    /// Cases where at least one objective synthesized and co-simulated.
    pub executed: u64,
    /// Cases skipped because synthesis failed (infeasible random designs).
    pub synth_failures: u64,
    /// Features exercised.
    pub coverage: FuzzCoverage,
    /// The first divergence found, shrunk — `None` on a clean run.
    pub divergence: Option<FuzzDivergence>,
}

const WIDTH: u32 = 16;
const TRACE_LEN: usize = 12;

/// Generate a random leaf DFG: `inputs` inputs feeding a chain of random
/// operations, a final output, and optionally a delay-1 feedback edge or a
/// delayed (state) output.
fn gen_leaf(
    rng: &mut Rng,
    name: &str,
    inputs: usize,
    ops: usize,
    feedback: bool,
    state_output: bool,
) -> Dfg {
    let mut g = Dfg::new(name);
    let mut vars: Vec<VarRef> = (0..inputs).map(|i| g.add_input(format!("x{i}"))).collect();
    let op_pool = [Operation::Add, Operation::Sub, Operation::Mult];
    for i in 0..ops {
        let a = vars[rng.range_usize(0, vars.len())];
        let b = vars[rng.range_usize(0, vars.len())];
        let op = op_pool[rng.range_usize(0, op_pool.len())];
        vars.push(g.add_op(op, format!("n{i}"), &[a, b]));
    }
    let last = *vars.last().expect("at least the inputs");
    if feedback {
        // acc = last + acc[z^-1]: genuine cross-iteration state.
        let acc = g.add_op_detached(Operation::Add, "acc");
        g.connect(last, acc, 0, 0);
        g.connect(VarRef::new(acc, 0), acc, 1, 1);
        g.add_output("y", VarRef::new(acc, 0));
    } else {
        g.add_output("y", last);
    }
    if state_output {
        // A second output reading an op result one iteration late — at the
        // RTL level this is a submodule *state* output, readable before the
        // call runs.
        let src = vars[rng.range_usize(inputs.saturating_sub(1), vars.len())];
        g.add_output_delayed("y_state", src, 1);
    }
    g
}

/// Word count of the shared bank when [`FuzzParams::mem_share`] is on: the
/// callee's `external` declaration must match the caller's memory shape.
const SHARED_WORDS: u32 = 8;

/// Generate a leaf DFG that loads from an externally supplied memory:
/// `inputs` inputs, a load addressed by input 0, and a random op chain over
/// the loaded word and the inputs.
fn gen_mem_leaf(rng: &mut Rng, name: &str, inputs: usize, ops: usize) -> Dfg {
    let mut g = Dfg::new(name);
    let m = g.add_mem(hsyn_dfg::MemObject::external("xm", SHARED_WORDS, WIDTH));
    let ins: Vec<VarRef> = (0..inputs).map(|i| g.add_input(format!("x{i}"))).collect();
    let mut vars = ins;
    vars.push(g.add_load(m, "ld", vars[0]));
    let op_pool = [Operation::Add, Operation::Sub, Operation::Mult];
    for i in 0..ops {
        let a = vars[rng.range_usize(0, vars.len())];
        let b = vars[rng.range_usize(0, vars.len())];
        let op = op_pool[rng.range_usize(0, op_pool.len())];
        vars.push(g.add_op(op, format!("n{i}"), &[a, b]));
    }
    g.add_output("y", *vars.last().expect("load at minimum"));
    g
}

/// Generate a random hierarchical behavior from `p`, deterministically from
/// `rng`.
fn gen_hierarchy(rng: &mut Rng, p: &FuzzParams) -> Hierarchy {
    let mut h = Hierarchy::new();

    // Submodule DFGs first (a nested one calls its sibling: depth 3).
    let mut sub_ids: Vec<(DfgId, usize)> = Vec::new(); // (dfg, input count)
    for s in 0..p.subs {
        let n_in = rng.range_usize(1, 4);
        let g = if p.mem_share && s == 0 {
            gen_mem_leaf(rng, "sub0", n_in, p.sub_ops)
        } else if p.nested && s == 1 {
            let mut g = Dfg::new(format!("sub{s}"));
            let ins: Vec<VarRef> = (0..n_in).map(|i| g.add_input(format!("x{i}"))).collect();
            let (callee, callee_in) = sub_ids[0];
            let args: Vec<VarRef> = (0..callee_in).map(|i| ins[i % n_in]).collect();
            let call = g.add_hier(callee, "inner", &args);
            let mut acc = g.hier_out(call, 0);
            let op_pool = [Operation::Add, Operation::Sub, Operation::Mult];
            for i in 0..p.sub_ops {
                let other = ins[rng.range_usize(0, ins.len())];
                let op = op_pool[rng.range_usize(0, op_pool.len())];
                acc = g.add_op(op, format!("n{i}"), &[acc, other]);
            }
            g.add_output("y", acc);
            g
        } else {
            gen_leaf(
                rng,
                &format!("sub{s}"),
                n_in,
                p.sub_ops,
                false,
                p.sub_state && s == 0,
            )
        };
        let id = h.add_dfg(g);
        sub_ids.push((id, n_in));
    }

    // Top DFG: ops mixed with calls to every submodule.
    let mut g = Dfg::new("top");
    // Owned memories, written and read below. The first one takes the
    // shared-bank shape when a callee imports it.
    let mem_ids: Vec<(hsyn_dfg::MemId, u32)> = (0..p.mems)
        .map(|mi| {
            let words = if p.mem_share && mi == 0 {
                SHARED_WORDS
            } else {
                [2u32, 4, 8][rng.range_usize(0, 3)]
            };
            let ports = 1 + rng.range_i64(0, 2) as u32;
            let banks = 1 + rng.range_i64(0, 2) as u32;
            let id = g.add_mem(
                hsyn_dfg::MemObject::owned(format!("m{mi}"), words, WIDTH)
                    .with_ports(ports)
                    .with_banks(banks),
            );
            (id, words)
        })
        .collect();
    let mut vars: Vec<VarRef> = (0..p.inputs)
        .map(|i| g.add_input(format!("in{i}")))
        .collect();
    let op_pool = [Operation::Add, Operation::Sub, Operation::Mult];
    for i in 0..p.ops {
        let a = vars[rng.range_usize(0, vars.len())];
        let b = vars[rng.range_usize(0, vars.len())];
        let op = op_pool[rng.range_usize(0, op_pool.len())];
        vars.push(g.add_op(op, format!("t{i}"), &[a, b]));
    }
    // Memory traffic: one store per memory (so every bank holds live
    // state), then one or two loads, mixing constant and variable
    // addresses — constants exercise the bank assignment and the MEM001
    // range check, variables the conflicts-everywhere pessimism.
    for (mi, &(id, words)) in mem_ids.iter().enumerate() {
        let addr = |g: &mut Dfg, tag: &str, vars: &[VarRef], rng: &mut Rng| -> VarRef {
            if rng.next_bool(0.5) {
                g.add_const(format!("{tag}{mi}"), rng.range_i64(0, i64::from(words)))
            } else {
                vars[rng.range_usize(0, vars.len())]
            }
        };
        let sa = addr(&mut g, "sa", &vars, rng);
        let data = vars[rng.range_usize(0, vars.len())];
        g.add_store(id, format!("st{mi}"), sa, data);
        for li in 0..rng.range_usize(1, 3) {
            let la = addr(&mut g, &format!("la{li}_"), &vars, rng);
            vars.push(g.add_load(id, format!("ld{mi}_{li}"), la));
        }
    }
    for (s, &(id, n_in)) in sub_ids.iter().enumerate() {
        let args: Vec<VarRef> = (0..n_in)
            .map(|_| vars[rng.range_usize(0, vars.len())])
            .collect();
        let call = if p.mem_share && s == 0 {
            g.add_hier_with_mems(id, format!("call{s}"), &args, &[mem_ids[0].0])
        } else {
            g.add_hier(id, format!("call{s}"), &args)
        };
        vars.push(g.hier_out(call, 0));
        if p.sub_state && s == 0 {
            // Consume the state output too, so the early-read path is live.
            vars.push(g.hier_out(call, 1));
        }
    }
    // Merge the produced values down to one result.
    while vars.len() > p.inputs + 1 {
        let a = vars.pop().expect("non-empty");
        let b = vars.pop().expect("non-empty");
        let op = op_pool[rng.range_usize(0, op_pool.len())];
        vars.push(g.add_op(op, format!("m{}", vars.len()), &[a, b]));
    }
    let mut result = *vars.last().expect("at least one value");
    if p.feedback {
        let acc = g.add_op_detached(Operation::Add, "acc");
        g.connect(result, acc, 0, 0);
        g.connect(VarRef::new(acc, 0), acc, 1, 1);
        result = VarRef::new(acc, 0);
    }
    if p.deep_delay {
        let old = g.add_op_detached(Operation::Sub, "old");
        g.connect(result, old, 0, 0);
        g.connect(result, old, 1, 2);
        result = VarRef::new(old, 0);
    }
    g.add_output("out", result);
    let top = h.add_dfg(g);
    h.set_top(top);
    h
}

/// Features observed from a built design (beyond what the parameters
/// predict): sharing degree, chaining, multi-function ALUs.
fn observed_features(h: &Hierarchy, module: &RtlModule) -> Vec<String> {
    let mut share = 0usize;
    let mut multi_fn = false;
    let mut chained = false;
    for b in module.behaviors() {
        let g = h.dfg(b.dfg);
        let mut per_fu: BTreeMap<usize, Vec<Operation>> = BTreeMap::new();
        for (&node, &fu) in &b.binding.op_to_fu {
            if let NodeKind::Op(op) = g.node(node).kind() {
                per_fu.entry(fu.index()).or_default().push(*op);
            }
        }
        for ops in per_fu.values() {
            share = share.max(ops.len());
            let mut distinct = ops.clone();
            distinct.sort_unstable();
            distinct.dedup();
            multi_fn |= distinct.len() > 1;
        }
        let st = hsyn_rtl::storage_analysis(g, &b.schedule);
        chained |= st.chained_edges.iter().any(|&c| c);
    }
    vec![
        format!("share:{}", share.min(4)),
        format!("multifn:{multi_fn}"),
        format!("chained:{chained}"),
    ]
}

/// Run one case: generate, synthesize under both objectives, co-simulate,
/// compare. Returns observed features on success, the failing objective and
/// detail on divergence, or `None` when nothing synthesized.
#[allow(clippy::type_complexity)]
fn run_case(
    case_seed: u64,
    p: &FuzzParams,
) -> Result<Option<Vec<String>>, (Objective, String, String)> {
    let mut rng = Rng::seed_from_u64(case_seed);
    let h = gen_hierarchy(&mut rng, p);
    if h.validate().is_err() {
        return Ok(None);
    }
    let flat = h.flatten();
    let traces = dsp_default(
        flat.input_count(),
        TRACE_LEN,
        WIDTH,
        case_seed ^ 0xC051_3ED5,
    );
    let expected = reference_outputs(&flat, &traces.samples, WIDTH);
    let mlib = ModuleLibrary::from_simple(hsyn_lib::papers::table1_library());

    let mut features: Option<Vec<String>> = None;
    for objective in [Objective::Area, Objective::Power] {
        let mut config = SynthesisConfig::new(objective);
        config.laxity_factor = f64::from(p.laxity_pct) / 100.0;
        config.hierarchical = !p.flatten;
        config.max_passes = 1;
        config.candidate_limit = 2;
        config.eval_trace_len = 8;
        config.report_trace_len = 8;
        config.max_clock_candidates = 2;
        config.resynth_depth = 0;
        let Ok(report) = synthesize(&h, &mlib, &config) else {
            continue;
        };
        let design = &report.design;
        let got = match hsyn_rtl::cosimulate(
            &design.hierarchy,
            &design.top.built,
            &traces.samples,
            WIDTH,
        ) {
            Ok(run) => run.outputs,
            Err(d) => {
                return Err((objective, d.to_string(), text::print(&h, None)));
            }
        };
        if got != expected {
            return Err((
                objective,
                format!(
                    "co-simulated outputs differ from the flattened reference \
                     (got {got:?}, expected {expected:?})"
                ),
                text::print(&h, None),
            ));
        }
        let mut f = observed_features(&design.hierarchy, &design.top.built);
        f.extend(p.predicted_features());
        features = Some(f);
    }
    Ok(features)
}

/// Fuzz the co-simulation oracle for `cases` cases from `seed`. Stops at
/// the first divergence, after shrinking it.
pub fn fuzz_cosim(cases: u64, seed: u64) -> FuzzReport {
    let mut rng = Rng::seed_from_u64(seed);
    let mut report = FuzzReport {
        cases: 0,
        executed: 0,
        synth_failures: 0,
        coverage: FuzzCoverage::default(),
        divergence: None,
    };
    for case in 0..cases {
        // Coverage guidance: draw a few candidates, run the least covered.
        let candidates: [FuzzParams; 4] = std::array::from_fn(|_| FuzzParams::draw(&mut rng));
        let params = *candidates
            .iter()
            .min_by_key(|p| report.coverage.score(&p.predicted_features()))
            .expect("non-empty");
        let case_seed = rng.next_u64();
        report.cases += 1;
        match run_case(case_seed, &params) {
            Ok(Some(features)) => {
                report.executed += 1;
                report.coverage.record(&features);
            }
            Ok(None) => report.synth_failures += 1,
            Err((objective, detail, dfg_text)) => {
                report.divergence =
                    Some(shrink(case, case_seed, params, objective, detail, dfg_text));
                break;
            }
        }
    }
    report
}

/// Shrink a failing case: repeatedly try strictly smaller parameter sets
/// with the same seed, keeping any that still fail, until none do.
fn shrink(
    case: u64,
    case_seed: u64,
    mut params: FuzzParams,
    mut objective: Objective,
    mut detail: String,
    mut dfg_text: String,
) -> FuzzDivergence {
    let mut budget = 32u32;
    'outer: while budget > 0 {
        for cand in params.reductions() {
            budget -= 1;
            if let Err((obj, det, text)) = run_case(case_seed, &cand) {
                params = cand;
                objective = obj;
                detail = det;
                dfg_text = text;
                continue 'outer;
            }
            if budget == 0 {
                break;
            }
        }
        break;
    }
    FuzzDivergence {
        case,
        case_seed,
        params,
        objective,
        detail,
        dfg_text,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn short_run_is_clean_and_exercises_cases() {
        let report = fuzz_cosim(6, 0xF072);
        assert!(
            report.divergence.is_none(),
            "divergence: {}",
            report.divergence.unwrap().to_json().to_string_pretty()
        );
        assert!(report.executed > 0, "no case executed");
        assert!(report.coverage.distinct() > 3, "coverage map barely filled");
    }

    #[test]
    fn runs_are_deterministic() {
        let a = fuzz_cosim(4, 99);
        let b = fuzz_cosim(4, 99);
        let ka: Vec<_> = a.coverage.iter().collect();
        let kb: Vec<_> = b.coverage.iter().collect();
        assert_eq!(ka, kb);
        assert_eq!(a.executed, b.executed);
    }

    #[test]
    fn divergence_json_round_trips() {
        let d = FuzzDivergence {
            case: 3,
            case_seed: 42,
            params: FuzzParams {
                inputs: 2,
                ops: 4,
                subs: 1,
                sub_ops: 2,
                nested: false,
                feedback: true,
                deep_delay: false,
                sub_state: true,
                flatten: false,
                mems: 1,
                mem_share: false,
                laxity_pct: 220,
            },
            objective: Objective::Power,
            detail: "R3 loads 7, behavior says 9".into(),
            dfg_text: "dfg top { }".into(),
        };
        let text = d.to_json().to_string_pretty();
        let back = Json::parse(&text).expect("reproducer JSON parses");
        assert_eq!(back.get("case").and_then(Json::as_f64), Some(3.0));
        assert_eq!(back.get("objective").and_then(Json::as_str), Some("power"));
        assert!(back.get("params").is_some());
    }
}
