//! The incremental evaluation cache: per-module cost results keyed by
//! structural fingerprint, shared across candidate evaluations of one
//! engine run.
//!
//! A fingerprint ([`hsyn_rtl::fingerprint_tree`]) covers everything the
//! cost models read from a module, so a hit returns the bit-identical
//! breakdown a full recomputation would have produced — incremental
//! evaluation changes wall-clock only, never a single float (see DESIGN.md,
//! "Fingerprint stability", and [`SynthesisConfig::shadow_eval`] which
//! enforces this at runtime).
//!
//! [`SynthesisConfig::shadow_eval`]: crate::SynthesisConfig::shadow_eval

use std::collections::HashMap;
use std::sync::Mutex;

use hsyn_power::SimCache;
use hsyn_rtl::{AreaBreakdown, AreaCache};

/// Per-engine evaluation cache: area breakdowns and power-simulation
/// recordings, both keyed by structural fingerprint.
///
/// One cache serves one `Engine` run — the trace set is
/// fixed there, which is what makes reusing simulation recordings sound.
/// (Area entries would be valid across trace sets too, but an engine never
/// changes traces mid-run, so no distinction is needed.)
#[derive(Debug, Default)]
pub struct EvalCache {
    /// Area results (per-module breakdowns).
    pub area: AreaCache,
    /// Power-simulation submodule recordings and energy memos.
    pub sim: SimCache,
}

impl EvalCache {
    /// An empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// Total lookups answered from the cache (area + simulation).
    pub fn hits(&self) -> u64 {
        self.area.hits + self.sim.hits
    }

    /// Total lookups that fell through to a fresh computation.
    pub fn misses(&self) -> u64 {
        self.area.misses + self.sim.misses
    }
}

/// Upper bound on entries a [`SharedAreaCache`] retains. Far above any
/// realistic workload (entries are one `AreaBreakdown` per distinct module
/// structure); the cap only exists so a hostile job stream cannot grow the
/// daemon's memory without bound. Overflow is counted, never silent.
pub const SHARED_AREA_CAP: usize = 1 << 16;

/// A cross-run area-result store, shared between concurrent engine runs
/// and (via the serve daemon) persisted across process lifetimes.
///
/// Only **area** entries live here. Power-simulation recordings
/// ([`SimCache`]) are deliberately excluded: they are sound only within
/// one fixed trace set, while area depends on nothing but module structure
/// — exactly what the fingerprint covers — so an area entry computed by
/// any run answers bit-identically for every other run. Area is also
/// independent of the `(Vdd, clk)` operating point, so one store serves
/// the whole configuration sweep. Entries *do* depend on the component
/// library, so embedders must keep one store per library (the daemon keys
/// stores by library name).
///
/// Seeding an engine from this store changes cache-hit telemetry and
/// wall-clock, never a float of the result — the same contract as the
/// intra-run cache, enforced at runtime by `shadow_eval` and by the serve
/// differential suite.
#[derive(Debug, Default)]
pub struct SharedAreaCache {
    map: Mutex<HashMap<u64, AreaBreakdown>>,
    /// Entries rejected because the store was at [`SHARED_AREA_CAP`].
    dropped: Mutex<u64>,
}

impl SharedAreaCache {
    /// An empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of entries currently held.
    pub fn len(&self) -> usize {
        self.map.lock().expect("shared area cache poisoned").len()
    }

    /// Whether the store holds no entries.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Entries rejected so far because the store was full.
    pub fn dropped(&self) -> u64 {
        *self.dropped.lock().expect("shared area cache poisoned")
    }

    /// Insert one entry (used when loading a persisted store from disk).
    /// Ignored with a drop count if the store is at capacity.
    pub fn insert(&self, fp: u64, area: AreaBreakdown) {
        let mut map = self.map.lock().expect("shared area cache poisoned");
        if map.len() >= SHARED_AREA_CAP && !map.contains_key(&fp) {
            *self.dropped.lock().expect("shared area cache poisoned") += 1;
        } else {
            map.insert(fp, area);
        }
    }

    /// Seed every stored entry into an engine's per-run cache, marking
    /// them warm for telemetry.
    pub fn seed_into(&self, cache: &mut AreaCache) {
        let map = self.map.lock().expect("shared area cache poisoned");
        for (&fp, &area) in map.iter() {
            cache.seed(fp, area);
        }
    }

    /// Copy every entry a finished run computed back into the store, so
    /// later runs (and persisted snapshots) see them. Returns how many
    /// entries were new.
    pub fn absorb(&self, cache: &AreaCache) -> usize {
        let mut map = self.map.lock().expect("shared area cache poisoned");
        let mut added = 0usize;
        let mut dropped = 0u64;
        for (fp, area) in cache.entries() {
            if map.contains_key(&fp) {
                continue;
            }
            if map.len() >= SHARED_AREA_CAP {
                dropped += 1;
                continue;
            }
            map.insert(fp, area);
            added += 1;
        }
        if dropped > 0 {
            *self.dropped.lock().expect("shared area cache poisoned") += dropped;
        }
        added
    }

    /// All entries, sorted by fingerprint — a deterministic order for
    /// persistence, so equal stores serialize to equal bytes.
    pub fn snapshot(&self) -> Vec<(u64, AreaBreakdown)> {
        let map = self.map.lock().expect("shared area cache poisoned");
        let mut out: Vec<_> = map.iter().map(|(&fp, &a)| (fp, a)).collect();
        out.sort_unstable_by_key(|&(fp, _)| fp);
        out
    }
}
