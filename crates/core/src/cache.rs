//! The incremental evaluation cache: per-module cost results keyed by
//! structural fingerprint, shared across candidate evaluations of one
//! engine run.
//!
//! A fingerprint ([`hsyn_rtl::fingerprint_tree`]) covers everything the
//! cost models read from a module, so a hit returns the bit-identical
//! breakdown a full recomputation would have produced — incremental
//! evaluation changes wall-clock only, never a single float (see DESIGN.md,
//! "Fingerprint stability", and [`SynthesisConfig::shadow_eval`] which
//! enforces this at runtime).
//!
//! [`SynthesisConfig::shadow_eval`]: crate::SynthesisConfig::shadow_eval

use hsyn_power::SimCache;
use hsyn_rtl::AreaCache;

/// Per-engine evaluation cache: area breakdowns and power-simulation
/// recordings, both keyed by structural fingerprint.
///
/// One cache serves one `Engine` run — the trace set is
/// fixed there, which is what makes reusing simulation recordings sound.
/// (Area entries would be valid across trace sets too, but an engine never
/// changes traces mid-run, so no distinction is needed.)
#[derive(Debug, Default)]
pub struct EvalCache {
    /// Area results (per-module breakdowns).
    pub area: AreaCache,
    /// Power-simulation submodule recordings and energy memos.
    pub sim: SimCache,
}

impl EvalCache {
    /// An empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// Total lookups answered from the cache (area + simulation).
    pub fn hits(&self) -> u64 {
        self.area.hits + self.sim.hits
    }

    /// Total lookups that fell through to a fresh computation.
    pub fn misses(&self) -> u64 {
        self.area.misses + self.sim.misses
    }
}
