//! Design points: the engine's mutable representation of a (scheduled,
//! assigned, costed) RTL implementation, plus `INITIAL_SOLUTION`.
//!
//! Moves never touch RTL directly — they edit the spec tree
//! ([`ModuleState`]) and call [`DesignPoint::rebuild`], which re-derives
//! orderings, schedules, register bindings, and profiles bottom-up and
//! rejects anything that misses the throughput constraint ("when a move is
//! performed, its validity is checked by scheduling").

use hsyn_dfg::{DfgId, Hierarchy, NodeId, NodeKind};
use hsyn_lib::Library;
use hsyn_rtl::{
    build, BuildCtx, BuildError, FuGroup, ModuleLibrary, ModuleSpec, RegPolicy, RtlModule, SubSpec,
};

/// The operating point of a design: supply voltage, reference clock, and
/// the throughput constraint.
///
/// Scheduling always happens in reference-voltage time: lowering `vdd`
/// stretches the physical clock by the technology's delay factor, which
/// shrinks the cycle *budget* within the fixed sampling period instead of
/// changing any unit's cycle latency.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct OperatingPoint {
    /// Supply voltage.
    pub vdd: f64,
    /// Clock period at the reference voltage, ns.
    pub clk_ref_ns: f64,
    /// Sampling period in real time, ns (the throughput constraint).
    pub period_ns: f64,
    /// Cycle budget: `floor(period_ns / (clk_ref_ns × delay_factor(vdd)))`.
    pub sampling_cycles: u32,
}

impl OperatingPoint {
    /// Derive the operating point for a `(vdd, clk)` pair under `period_ns`.
    pub fn derive(lib: &Library, vdd: f64, clk_ref_ns: f64, period_ns: f64) -> Self {
        let phys_clk = clk_ref_ns * lib.technology.delay_factor(vdd);
        let sampling_cycles = (period_ns / phys_clk).floor() as u32;
        OperatingPoint {
            vdd,
            clk_ref_ns,
            period_ns,
            sampling_cycles,
        }
    }

    /// Physical clock period at the operating voltage, ns.
    pub fn physical_clk_ns(&self, lib: &Library) -> f64 {
        self.clk_ref_ns * lib.technology.delay_factor(self.vdd)
    }
}

/// The spec of one module, minus its children (held separately so they can
/// be rebuilt and replaced independently).
#[derive(Clone, Debug)]
pub struct SpecCore {
    /// Module name.
    pub name: String,
    /// The DFG implemented.
    pub dfg: DfgId,
    /// Functional-unit instances and their operation groups.
    pub fu_groups: Vec<FuGroup>,
    /// Register sharing policy.
    pub reg_policy: RegPolicy,
    /// Expected input arrival cycles (profile basis; `None` ⇒ zeros).
    pub input_arrivals: Option<Vec<u32>>,
    /// Per-output deadlines (from a resynthesis window).
    pub output_deadlines: Option<Vec<u32>>,
    /// Completion deadline in cycles.
    pub deadline: Option<u32>,
}

impl SpecCore {
    /// The build context this spec schedules under: the completion deadline
    /// plus the input-arrival / output-deadline window. The single source
    /// of truth for the window cloning that module relinking and move-*B*
    /// constraint derivation both perform — previously duplicated in both
    /// places, a latent drift bug if one side changed.
    pub fn build_ctx<'a>(&self, lib: &'a Library, op: &OperatingPoint) -> BuildCtx<'a> {
        let mut ctx = BuildCtx::new(lib, op.clk_ref_ns, lib.technology.vref(), self.deadline);
        ctx.input_arrivals = self.input_arrivals.clone();
        ctx.output_deadlines = self.output_deadlines.clone();
        ctx
    }
}

/// How a submodule instance is implemented.
#[derive(Clone, Debug)]
pub enum ChildKind {
    /// A spec tree of our own making — resynthesizable by move *B*.
    Single(Box<ModuleState>),
    /// An opaque prebuilt module: a library complex module instance, or the
    /// result of RTL embedding. Not resynthesized ("modules, whose internal
    /// descriptions are not available or cannot be altered, are not
    /// resynthesized"), but swappable/mergeable/splittable.
    Opaque {
        /// The implementation.
        module: RtlModule,
        /// Where it came from (library name, `"embedded"`, ...).
        origin: String,
    },
}

/// One submodule instance of a module: the hierarchical nodes mapped to it
/// and its implementation.
#[derive(Clone, Debug)]
pub struct Child {
    /// Hierarchical nodes (of the parent DFG) executed on this instance.
    pub nodes: Vec<NodeId>,
    /// The implementation.
    pub kind: ChildKind,
}

impl Child {
    /// The child's current RTL module.
    pub fn module(&self) -> &RtlModule {
        match &self.kind {
            ChildKind::Single(s) => &s.built,
            ChildKind::Opaque { module, .. } => module,
        }
    }
}

/// A module's spec tree together with its latest build.
#[derive(Clone, Debug)]
pub struct ModuleState {
    /// The module's own spec.
    pub core: SpecCore,
    /// Submodule instances.
    pub children: Vec<Child>,
    /// The latest successful build (kept in sync by
    /// [`ModuleState::rebuild`]).
    pub built: RtlModule,
}

impl ModuleState {
    /// Rebuild this module (children first), refreshing `built`.
    ///
    /// # Errors
    ///
    /// Propagates the first [`BuildError`] — the candidate edit that caused
    /// the rebuild is then invalid.
    pub fn rebuild(
        &mut self,
        h: &Hierarchy,
        lib: &Library,
        op: &OperatingPoint,
    ) -> Result<(), BuildError> {
        for child in &mut self.children {
            if let ChildKind::Single(s) = &mut child.kind {
                s.rebuild(h, lib, op)?;
            }
        }
        self.relink(h, lib, op)
    }

    /// Rebuild only what a localized edit at `path` can have changed: the
    /// module there (its own spec was rewritten) and the modules along the
    /// path to it (their specs embed the rebuilt child). Everything else —
    /// descendants of the edited module and off-path subtrees — keeps its
    /// current `built`, which a rebuild would reproduce bit-identically:
    /// builds are deterministic functions of the specs, and those specs are
    /// untouched. Bit-exact with [`ModuleState::rebuild`].
    ///
    /// # Errors
    ///
    /// Propagates the first [`BuildError`], exactly as [`rebuild`](Self::rebuild).
    pub fn rebuild_at(
        &mut self,
        h: &Hierarchy,
        lib: &Library,
        op: &OperatingPoint,
        path: &[usize],
    ) -> Result<(), BuildError> {
        if let Some((&i, rest)) = path.split_first() {
            if let Some(child) = self.children.get_mut(i) {
                if let ChildKind::Single(s) = &mut child.kind {
                    s.rebuild_at(h, lib, op, rest)?;
                }
            }
        }
        self.relink(h, lib, op)
    }

    /// Build this module's own level from its current spec and its
    /// children's current builds.
    fn relink(
        &mut self,
        h: &Hierarchy,
        lib: &Library,
        op: &OperatingPoint,
    ) -> Result<(), BuildError> {
        self.relink_swap(h, lib, op).map(drop)
    }

    /// [`relink`](Self::relink), returning the *previous* build — the undo
    /// record for transactional move application. `built` is replaced only
    /// on success: a failed build leaves the module exactly as it was.
    fn relink_swap(
        &mut self,
        h: &Hierarchy,
        lib: &Library,
        op: &OperatingPoint,
    ) -> Result<RtlModule, BuildError> {
        let spec = ModuleSpec {
            name: self.core.name.clone(),
            dfg: self.core.dfg,
            fu_groups: self.core.fu_groups.clone(),
            subs: self
                .children
                .iter()
                .map(|c| SubSpec {
                    module: c.module().clone(),
                    nodes: c.nodes.clone(),
                })
                .collect(),
            reg_policy: self.core.reg_policy.clone(),
        };
        let ctx = self.core.build_ctx(lib, op);
        let new = build(h, &spec, &ctx)?;
        Ok(std::mem::replace(&mut self.built, new))
    }

    /// [`rebuild_at`](Self::rebuild_at) that journals every replaced build:
    /// each relinked module along `path` hands its *previous* `built` to
    /// `journal` together with its absolute path (child indices from the
    /// module this was first called on; `prefix` carries the indices walked
    /// so far). Replaying the journaled modules in reverse order restores
    /// the tree's builds bit-exactly — the RTL half of a transactional
    /// rollback (the spec half is the move's own inverse record).
    ///
    /// Deepest module first, exactly like `rebuild_at`: on failure, modules
    /// already relinked stay relinked and stay journaled, so the caller can
    /// always roll back to the pre-apply state.
    ///
    /// # Errors
    ///
    /// Propagates the first [`BuildError`], exactly as [`rebuild_at`](Self::rebuild_at).
    pub fn rebuild_at_journaled(
        &mut self,
        h: &Hierarchy,
        lib: &Library,
        op: &OperatingPoint,
        path: &[usize],
        prefix: &mut Vec<usize>,
        journal: &mut dyn FnMut(&[usize], RtlModule),
    ) -> Result<(), BuildError> {
        if let Some((&i, rest)) = path.split_first() {
            if let Some(child) = self.children.get_mut(i) {
                if let ChildKind::Single(s) = &mut child.kind {
                    prefix.push(i);
                    s.rebuild_at_journaled(h, lib, op, rest, prefix, journal)?;
                    prefix.pop();
                }
            }
        }
        let old = self.relink_swap(h, lib, op)?;
        journal(prefix, old);
        Ok(())
    }

    /// Visit this module state and every [`ChildKind::Single`] descendant,
    /// depth-first, with the child-index path from `self`.
    pub fn for_each(&self, mut f: impl FnMut(&[usize], &ModuleState)) {
        fn walk(
            s: &ModuleState,
            path: &mut Vec<usize>,
            f: &mut impl FnMut(&[usize], &ModuleState),
        ) {
            f(path, s);
            for (i, c) in s.children.iter().enumerate() {
                if let ChildKind::Single(sub) = &c.kind {
                    path.push(i);
                    walk(sub, path, f);
                    path.pop();
                }
            }
        }
        walk(self, &mut Vec::new(), &mut f);
    }

    /// The module state addressed by `path` (child indices from `self`).
    ///
    /// # Panics
    ///
    /// Panics if the path crosses an opaque child or is out of range.
    pub fn at(&self, path: &[usize]) -> &ModuleState {
        let mut cur = self;
        for &i in path {
            match &cur.children[i].kind {
                ChildKind::Single(s) => cur = s,
                ChildKind::Opaque { .. } => panic!("path crosses an opaque child"),
            }
        }
        cur
    }

    /// Mutable access along `path` (see [`ModuleState::at`]).
    ///
    /// # Panics
    ///
    /// Panics if the path crosses an opaque child or is out of range.
    pub fn at_mut(&mut self, path: &[usize]) -> &mut ModuleState {
        let mut cur = self;
        for &i in path {
            match &mut cur.children[i].kind {
                ChildKind::Single(s) => cur = s,
                ChildKind::Opaque { .. } => panic!("path crosses an opaque child"),
            }
        }
        cur
    }
}

/// A complete design point: the (possibly move-*A*-rewritten) behavioral
/// hierarchy, the spec/RTL tree, and the operating point.
#[derive(Clone, Debug)]
pub struct DesignPoint {
    /// The behavioral description this design implements. A private copy:
    /// move *A* may substitute equivalent DFGs at hierarchical nodes.
    pub hierarchy: Hierarchy,
    /// Operating point.
    pub op: OperatingPoint,
    /// The top-level module state.
    pub top: ModuleState,
}

impl DesignPoint {
    /// Rebuild the whole design (bottom-up) and check the throughput
    /// constraint.
    ///
    /// # Errors
    ///
    /// Propagates [`BuildError`] from any level.
    pub fn rebuild(&mut self, lib: &Library) -> Result<(), BuildError> {
        let DesignPoint { hierarchy, op, top } = self;
        top.rebuild(hierarchy, lib, op)
    }

    /// [`rebuild`](Self::rebuild) restricted to the modules reachable from
    /// a localized edit at `path` (see [`ModuleState::rebuild_at`]).
    ///
    /// # Errors
    ///
    /// Propagates [`BuildError`] from any rebuilt level.
    pub fn rebuild_at(&mut self, lib: &Library, path: &[usize]) -> Result<(), BuildError> {
        let DesignPoint { hierarchy, op, top } = self;
        top.rebuild_at(hierarchy, lib, op, path)
    }

    /// [`rebuild_at`](Self::rebuild_at) journaling every replaced build —
    /// see [`ModuleState::rebuild_at_journaled`].
    ///
    /// # Errors
    ///
    /// Propagates [`BuildError`] from any rebuilt level.
    pub fn rebuild_at_journaled(
        &mut self,
        lib: &Library,
        path: &[usize],
        journal: &mut dyn FnMut(&[usize], RtlModule),
    ) -> Result<(), BuildError> {
        let DesignPoint { hierarchy, op, top } = self;
        top.rebuild_at_journaled(hierarchy, lib, op, path, &mut Vec::new(), journal)
    }
}

/// `INITIAL_SOLUTION` (Figure 4): map every operation to its own instance
/// of the fastest library type, every variable to its own register, and
/// every hierarchical node to its own submodule — the fastest library
/// complex module that implements its callee, or a recursively constructed
/// initial module when the library offers none.
///
/// # Errors
///
/// Returns the build error if even this fastest completely-parallel design
/// misses the deadline (the `(vdd, clk)` configuration is then infeasible
/// and is pruned).
pub fn initial_solution(
    h: &Hierarchy,
    mlib: &ModuleLibrary,
    op: &OperatingPoint,
) -> Result<ModuleState, BuildError> {
    initial_module(h, h.top(), mlib, op, Some(op.sampling_cycles), "top")
}

/// The makespan (cycles) of the unconstrained fastest design at the given
/// clock — used to compute the minimum achievable sampling period (the
/// laxity-factor denominator) and to prune infeasible `(Vdd, clk)` pairs.
///
/// # Errors
///
/// Propagates build errors (e.g. an operation no library unit implements).
pub fn probe_min_latency(
    h: &Hierarchy,
    mlib: &ModuleLibrary,
    clk_ref_ns: f64,
) -> Result<u32, BuildError> {
    let op = OperatingPoint {
        vdd: mlib.simple.technology.vref(),
        clk_ref_ns,
        period_ns: f64::INFINITY,
        sampling_cycles: u32::MAX,
    };
    let state = initial_module(h, h.top(), mlib, &op, None, "probe")?;
    Ok(state
        .built
        .behaviors()
        .first()
        .map_or(0, |b| b.schedule.makespan()))
}

/// Build an initial (fully parallel) module for `dfg` under an explicit
/// constraint window — the entry point of move-*B* resynthesis.
///
/// # Errors
///
/// Propagates the build error if even the fastest design misses the window.
pub fn initial_module_with_window(
    h: &Hierarchy,
    dfg: DfgId,
    mlib: &ModuleLibrary,
    op: &OperatingPoint,
    input_arrivals: Option<Vec<u32>>,
    output_deadlines: Option<Vec<u32>>,
    name: &str,
) -> Result<ModuleState, BuildError> {
    let deadline = output_deadlines
        .as_ref()
        .and_then(|v| v.iter().copied().max());
    let mut state = initial_module(h, dfg, mlib, op, deadline, name)?;
    state.core.input_arrivals = input_arrivals;
    state.core.output_deadlines = output_deadlines;
    state.rebuild(h, &mlib.simple, op)?;
    Ok(state)
}

fn initial_module(
    h: &Hierarchy,
    dfg: DfgId,
    mlib: &ModuleLibrary,
    op: &OperatingPoint,
    deadline: Option<u32>,
    name: &str,
) -> Result<ModuleState, BuildError> {
    let g = h.dfg(dfg);
    let lib = &mlib.simple;
    let mut fu_groups = Vec::new();
    let mut children = Vec::new();
    for (nid, node) in g.nodes() {
        match node.kind() {
            NodeKind::Op(op_kind) => {
                let fu_type = lib
                    .fastest_for(*op_kind)
                    .ok_or(BuildError::UnsupportedOp { node: nid })?;
                fu_groups.push(FuGroup {
                    fu_type,
                    ops: vec![nid],
                });
            }
            NodeKind::Hier { callee } => {
                // Fastest library module implementing the callee directly
                // (initial solution does not rewrite DFGs) and usable at
                // this clock — complex-module profiles count cycles of
                // their design clock.
                let best = mlib
                    .complex
                    .iter()
                    .filter(|cm| cm.implements(*callee) && cm.usable_at(op.clk_ref_ns))
                    .min_by(|a, b| {
                        let la = a
                            .module
                            .profile_for(*callee)
                            .map_or(u32::MAX, |p| p.latency());
                        let lb = b
                            .module
                            .profile_for(*callee)
                            .map_or(u32::MAX, |p| p.latency());
                        la.cmp(&lb)
                    });
                let kind = match best {
                    Some(cm) => ChildKind::Opaque {
                        module: cm.module.clone(),
                        origin: format!("library:{}", cm.module.name()),
                    },
                    None => {
                        let sub = initial_module(
                            h,
                            *callee,
                            mlib,
                            op,
                            None,
                            &format!("{name}/{}", node.name()),
                        )?;
                        ChildKind::Single(Box::new(sub))
                    }
                };
                children.push(Child {
                    nodes: vec![nid],
                    kind,
                });
            }
            _ => {}
        }
    }
    let mut state = ModuleState {
        core: SpecCore {
            name: name.to_owned(),
            dfg,
            fu_groups,
            reg_policy: RegPolicy::Dedicated,
            input_arrivals: None,
            output_deadlines: None,
            deadline,
        },
        children,
        built: RtlModule::new(name, vec![], vec![], vec![], vec![]),
    };
    state.rebuild(h, lib, op)?;
    Ok(state)
}

#[cfg(test)]
mod tests {
    use super::*;
    use hsyn_dfg::benchmarks;
    use hsyn_lib::papers::table1_library;
    use hsyn_rtl::papers::test1_complex_library;

    #[test]
    fn operating_point_budget_shrinks_with_vdd() {
        let lib = table1_library();
        let p5 = OperatingPoint::derive(&lib, 5.0, 10.0, 240.0);
        let p33 = OperatingPoint::derive(&lib, 3.3, 10.0, 240.0);
        assert_eq!(p5.sampling_cycles, 24);
        assert!(p33.sampling_cycles < p5.sampling_cycles);
        assert!(p33.physical_clk_ns(&lib) > p5.physical_clk_ns(&lib));
    }

    #[test]
    fn initial_solution_is_fully_parallel() {
        let b = benchmarks::paulin();
        let lib = table1_library();
        let mlib = hsyn_rtl::ModuleLibrary::from_simple(lib);
        let op = OperatingPoint::derive(&mlib.simple, 5.0, 10.0, 300.0);
        let state = initial_solution(&b.hierarchy, &mlib, &op).unwrap();
        let g = b.hierarchy.dfg(b.hierarchy.top());
        // One FU per op.
        assert_eq!(state.built.fus().len(), g.schedulable_count());
        // Every FU is the fastest for its op class (mult1, add1, alu for lt).
        assert!(state.core.fu_groups.iter().all(|grp| grp.ops.len() == 1));
    }

    #[test]
    fn initial_solution_uses_library_complex_modules() {
        let (bench, mlib) = test1_complex_library();
        let op = OperatingPoint::derive(&mlib.simple, 5.0, 10.0, 240.0);
        let state = initial_solution(&bench.hierarchy, &mlib, &op).unwrap();
        assert_eq!(state.children.len(), 4);
        // All four hierarchical nodes found library implementations.
        for child in &state.children {
            assert!(
                matches!(&child.kind, ChildKind::Opaque { origin, .. } if origin.starts_with("library:"))
            );
        }
    }

    #[test]
    fn initial_solution_synthesizes_missing_children() {
        // hier_paulin has no library complex modules: children are Single.
        let b = benchmarks::hier_paulin();
        let mlib = hsyn_rtl::ModuleLibrary::from_simple(table1_library());
        let op = OperatingPoint::derive(&mlib.simple, 5.0, 10.0, 1200.0);
        let state = initial_solution(&b.hierarchy, &mlib, &op).unwrap();
        assert_eq!(state.children.len(), 4);
        assert!(state
            .children
            .iter()
            .all(|c| matches!(c.kind, ChildKind::Single(_))));
        // Paths resolve.
        let mut count = 0;
        state.for_each(|_, _| count += 1);
        assert_eq!(count, 5, "top + 4 single children");
    }

    #[test]
    fn infeasible_deadline_is_an_error() {
        let b = benchmarks::paulin();
        let mlib = hsyn_rtl::ModuleLibrary::from_simple(table1_library());
        // Period of 2 cycles cannot fit the 6-mult critical path.
        let op = OperatingPoint::derive(&mlib.simple, 5.0, 10.0, 20.0);
        assert!(initial_solution(&b.hierarchy, &mlib, &op).is_err());
    }
}
