//! The `hsyn analyze` entry point: synthesize, prove per-port width
//! certificates with the abstract interpreter, verify them against the
//! behavioral reference, and reprice the winning design with width-aware
//! cost models.
//!
//! For each requested objective the pipeline is:
//!
//! 1. [`synthesize`] as usual and keep the winning [`DesignPoint`].
//! 2. [`analyze_hierarchy`] over the design's (possibly move-*A*-rewritten)
//!    hierarchy at the datapath width — interval × known-bits facts,
//!    interprocedural summaries, a [`WidthCertificate`] per port.
//! 3. **Gate**: re-execute the design on the report traces with every value
//!    truncated to its certified width ([`certified_outputs`]) and require
//!    byte-identical outputs against the flattened behavioral reference.
//!    A certificate that changes even one output bit is an analysis bug and
//!    fails the whole run — sized costs are only reported for designs whose
//!    certified execution is proven equivalent.
//! 4. Reprice with [`derive_widths`] + [`module_area_sized`] +
//!    [`estimate_sized`]. Soundness of the scaling rules guarantees the
//!    sized figures never exceed the baseline.
//!
//! Everything deterministic is exported by [`AnalyzeReport::result_json`]
//! in the same bit-exact style as
//! [`SynthesisReport::result_json`](crate::SynthesisReport::result_json);
//! wall-clock (synthesis telemetry, fixpoint time) is surfaced on the
//! report struct but deliberately excluded from the JSON.

use crate::config::SynthesisConfig;
use crate::cost::{evaluate, Evaluation, Objective};
use crate::design::DesignPoint;
use crate::synth::{synthesize, ConfigTelemetry, SynthesisError};
use hsyn_dataflow::{analyze_hierarchy, certified_outputs, AnalysisStats, WidthCertificate};
use hsyn_dfg::{reference_outputs, Hierarchy, HierarchyError};
use hsyn_power::{dsp_default, estimate_sized, PowerReport};
use hsyn_rtl::{derive_widths, module_area_sized, AreaBreakdown, ModuleLibrary, ModuleWidths};
use hsyn_util::Json;
use std::fmt;

/// Why an analysis run failed.
#[derive(Clone, Debug)]
pub enum AnalyzeError {
    /// Synthesis itself failed; nothing to analyze.
    Synthesis(SynthesisError),
    /// The design's hierarchy failed structural validation.
    Hierarchy(HierarchyError),
    /// Certified execution overflowed a certified width — the certificate
    /// is unsound and must not be used for sizing.
    CertificateViolation {
        /// The objective whose design was being verified.
        objective: Objective,
        /// The violation, rendered.
        detail: String,
    },
    /// Certified execution stayed within every width but produced outputs
    /// that differ from the behavioral reference.
    OutputMismatch {
        /// The objective whose design was being verified.
        objective: Objective,
    },
}

impl fmt::Display for AnalyzeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AnalyzeError::Synthesis(e) => write!(f, "synthesis failed: {e}"),
            AnalyzeError::Hierarchy(e) => write!(f, "hierarchy invalid: {e}"),
            AnalyzeError::CertificateViolation { objective, detail } => {
                write!(f, "width certificate violated ({objective:?}): {detail}")
            }
            AnalyzeError::OutputMismatch { objective } => write!(
                f,
                "certified execution diverges from the behavioral reference ({objective:?})"
            ),
        }
    }
}

impl std::error::Error for AnalyzeError {}

/// Width-certified analysis of one objective's winning design.
#[derive(Clone, Debug)]
pub struct ObjectiveAnalysis {
    /// The objective this design was synthesized for.
    pub objective: Objective,
    /// Operating voltage of the winning design, V.
    pub vdd: f64,
    /// Reference clock period of the winning design, ns.
    pub clk_ref_ns: f64,
    /// Baseline evaluation (report traces, nominal widths everywhere).
    pub baseline: Evaluation,
    /// Area with every resource priced at its certified width.
    pub sized_area: AreaBreakdown,
    /// Power with every resource priced at its certified width.
    pub sized_power: PowerReport,
    /// Ports the certificate covers.
    pub total_ports: usize,
    /// Ports certified strictly below the nominal width.
    pub narrowed_ports: usize,
    /// FUs + registers sized strictly below the nominal width.
    pub narrowed_resources: usize,
    /// Iterations of the certified-execution gate that matched the
    /// behavioral reference (the full report-trace length).
    pub verified_iterations: usize,
    /// Abstract-interpreter counters, including the fixpoint wall-clock
    /// (`fixpoint_s` — telemetry only, excluded from the JSON).
    pub stats: AnalysisStats,
    /// Synthesis telemetry for the sweep that produced this design.
    pub per_config: Vec<ConfigTelemetry>,
}

/// The result of [`analyze`]: one [`ObjectiveAnalysis`] per requested
/// objective at a common datapath width.
#[derive(Clone, Debug)]
pub struct AnalyzeReport {
    /// The nominal datapath width the certificates are proven against.
    pub width: u32,
    /// Per-objective analyses, in request order.
    pub objectives: Vec<ObjectiveAnalysis>,
}

impl AnalyzeReport {
    /// Canonical JSON rendering of everything **deterministic** in the
    /// report: every `f64` appears as the hex form of its `to_bits`.
    /// Wall-clock fields (`fixpoint_s`, per-config `elapsed_s` and friends)
    /// are excluded, so two runs of the same analysis produce byte-identical
    /// strings — the contract the determinism suite pins.
    pub fn result_json(&self) -> String {
        self.result_json_value().to_string_pretty()
    }

    /// The [`result_json`](Self::result_json) payload as a [`Json`] value,
    /// for callers composing it into larger documents (the CLI's per-target
    /// array).
    pub fn result_json_value(&self) -> Json {
        fn bits(v: f64) -> Json {
            Json::Str(format!("{:016x}", v.to_bits()))
        }
        fn count(v: usize) -> Json {
            Json::Num(v as f64)
        }
        fn area_json(a: &AreaBreakdown) -> Json {
            Json::Obj(vec![
                ("fu".into(), bits(a.fu)),
                ("reg".into(), bits(a.reg)),
                ("mux".into(), bits(a.mux)),
                ("wire".into(), bits(a.wire)),
                ("controller".into(), bits(a.controller)),
                ("subs".into(), bits(a.subs)),
                ("total".into(), bits(a.total())),
            ])
        }
        fn power_json(p: &PowerReport) -> Json {
            Json::Obj(vec![
                ("energy_per_iteration".into(), bits(p.energy_per_iteration)),
                ("power".into(), bits(p.power)),
                ("vdd".into(), bits(p.vdd)),
            ])
        }
        let objectives = Json::Arr(
            self.objectives
                .iter()
                .map(|o| {
                    Json::Obj(vec![
                        (
                            "objective".into(),
                            Json::Str(
                                match o.objective {
                                    Objective::Area => "area",
                                    Objective::Power => "power",
                                }
                                .into(),
                            ),
                        ),
                        ("vdd".into(), bits(o.vdd)),
                        ("clk_ref_ns".into(), bits(o.clk_ref_ns)),
                        ("baseline_area".into(), area_json(&o.baseline.area)),
                        ("baseline_power".into(), power_json(&o.baseline.power)),
                        ("sized_area".into(), area_json(&o.sized_area)),
                        ("sized_power".into(), power_json(&o.sized_power)),
                        ("total_ports".into(), count(o.total_ports)),
                        ("narrowed_ports".into(), count(o.narrowed_ports)),
                        ("narrowed_resources".into(), count(o.narrowed_resources)),
                        ("verified_iterations".into(), count(o.verified_iterations)),
                        (
                            "dfgs_analyzed".into(),
                            Json::Num(o.stats.dfgs_analyzed as f64),
                        ),
                        (
                            "summary_runs".into(),
                            Json::Num(o.stats.summary_runs as f64),
                        ),
                        ("memo_hits".into(), Json::Num(o.stats.memo_hits as f64)),
                    ])
                })
                .collect(),
        );
        Json::Obj(vec![
            ("width".into(), Json::Num(f64::from(self.width))),
            ("objectives".into(), objectives),
        ])
    }
}

/// Verify `cert` by certified re-execution against the flattened
/// behavioral reference on the design's report traces.
fn verify_certificate(
    dp: &DesignPoint,
    cert: &WidthCertificate,
    config: &SynthesisConfig,
    objective: Objective,
) -> Result<usize, AnalyzeError> {
    let h = &dp.hierarchy;
    let top_inputs = h.dfg(h.top()).input_count();
    let traces = dsp_default(
        top_inputs,
        config.report_trace_len,
        config.width,
        config.seed ^ 0x5eed,
    );
    let got = certified_outputs(h, cert, &traces.samples, config.width).map_err(|v| {
        AnalyzeError::CertificateViolation {
            objective,
            detail: v.to_string(),
        }
    })?;
    let want = reference_outputs(&h.flatten(), &traces.samples, config.width);
    if got != want {
        return Err(AnalyzeError::OutputMismatch { objective });
    }
    Ok(config.report_trace_len)
}

/// Synthesize, certify, verify, and reprice `hierarchy` for each objective
/// in `objectives` (see the module docs for the pipeline).
///
/// # Errors
///
/// [`AnalyzeError::Synthesis`] when synthesis fails;
/// [`AnalyzeError::CertificateViolation`] / [`AnalyzeError::OutputMismatch`]
/// when the certificate fails its oracle gate (an analysis bug, never a
/// property of the input design).
pub fn analyze(
    hierarchy: &Hierarchy,
    mlib: &ModuleLibrary,
    config: &SynthesisConfig,
    objectives: &[Objective],
) -> Result<AnalyzeReport, AnalyzeError> {
    let mut report = AnalyzeReport {
        width: config.width,
        objectives: Vec::new(),
    };
    for &objective in objectives {
        let mut cfg = config.clone();
        cfg.objective = objective;
        let synth = synthesize(hierarchy, mlib, &cfg).map_err(AnalyzeError::Synthesis)?;
        let dp = &synth.design;
        let analysis =
            analyze_hierarchy(&dp.hierarchy, cfg.width).map_err(AnalyzeError::Hierarchy)?;
        let verified_iterations = verify_certificate(dp, analysis.certificate(), &cfg, objective)?;

        let lib = &mlib.simple;
        let widths: ModuleWidths =
            derive_widths(&dp.hierarchy, &dp.top.built, analysis.certificate());
        let sized_area = module_area_sized(&dp.hierarchy, &dp.top.built, lib, &widths);
        let top_inputs = dp.hierarchy.dfg(dp.hierarchy.top()).input_count();
        let report_traces = dsp_default(
            top_inputs,
            cfg.report_trace_len,
            cfg.width,
            cfg.seed ^ 0x5eed,
        );
        let sized_power = estimate_sized(
            &dp.hierarchy,
            &dp.top.built,
            lib,
            &report_traces,
            dp.op.vdd,
            dp.op.physical_clk_ns(lib),
            dp.op.sampling_cycles.max(1),
            &widths,
        );
        let baseline = evaluate(dp, lib, &report_traces, objective);
        report.objectives.push(ObjectiveAnalysis {
            objective,
            vdd: dp.op.vdd,
            clk_ref_ns: dp.op.clk_ref_ns,
            baseline,
            sized_area,
            sized_power,
            total_ports: analysis.certificate().total_ports(),
            narrowed_ports: analysis.certificate().narrowed_ports(),
            narrowed_resources: widths.narrowed_resources(),
            verified_iterations,
            stats: analysis.stats.clone(),
            per_config: synth.per_config.clone(),
        });
    }
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use hsyn_dfg::benchmarks;
    use hsyn_lib::papers::table1_library;

    fn quick_config() -> SynthesisConfig {
        let mut config = SynthesisConfig::new(Objective::Area);
        config.laxity_factor = 2.2;
        config.max_passes = 1;
        config.candidate_limit = 2;
        config.eval_trace_len = 8;
        config.report_trace_len = 16;
        config.max_clock_candidates = 2;
        config
    }

    #[test]
    fn analyze_gates_and_never_inflates_cost() {
        let bench = benchmarks::iir();
        let mut mlib = ModuleLibrary::from_simple(table1_library());
        mlib.equiv = bench.equiv.clone();
        let config = quick_config();
        let report = analyze(
            &bench.hierarchy,
            &mlib,
            &config,
            &[Objective::Area, Objective::Power],
        )
        .unwrap();
        assert_eq!(report.objectives.len(), 2);
        for o in &report.objectives {
            assert_eq!(o.verified_iterations, config.report_trace_len);
            assert!(o.sized_area.total() <= o.baseline.area.total() + 1e-9);
            assert!(o.sized_power.power <= o.baseline.power.power + 1e-12);
            assert!(o.total_ports > 0);
        }
    }

    #[test]
    fn analyze_json_is_deterministic() {
        let bench = benchmarks::hier_paulin();
        let mut mlib = ModuleLibrary::from_simple(table1_library());
        mlib.equiv = bench.equiv.clone();
        let config = quick_config();
        let a = analyze(&bench.hierarchy, &mlib, &config, &[Objective::Area]).unwrap();
        let b = analyze(&bench.hierarchy, &mlib, &config, &[Objective::Area]).unwrap();
        assert_eq!(a.result_json(), b.result_json());
    }
}
