//! Large-neighborhood search: ruin-and-recreate refinement layered over the
//! per-configuration optimizer.
//!
//! The KL-style pass loop of [`Engine::optimize`] moves one best candidate
//! at a time and stalls once no single move (or short move prefix) pays. The
//! LNS layer escapes deeper local minima by periodically *destroying* a
//! seeded-random region of the converged design — a module subtree or every
//! instance of one functional-unit class, split back to its canonical
//! maximally-parallel state ([`ruin_region`]) — and greedily *recreating* it
//! under the current objective with the existing move families. The whole
//! cycle runs inside one [`Transaction`]: an iteration commits only when the
//! recreated design strictly beats the pre-ruin cost, and rolls back in
//! O(edit size) otherwise.
//!
//! Two pruning devices keep recreation cheap and focused:
//!
//! * an adaptive **move portfolio** ([`Portfolio`]) — per-family weights
//!   updated by recent payoff decide which family to try first each step,
//!   deterministically given the seed;
//! * precomputed **affinity matrices**
//!   ([`AffinityMatrix`](hsyn_rtl::AffinityMatrix)) — top-K profitable merge
//!   partners keyed by structural fingerprint, computed once per refinement
//!   from the converged design, restrict the quadratic merge-candidate wave
//!   to pairs that looked promising there. Keys the matrices never saw
//!   (structures created mid-recreate) are deliberately never pruned.
//!
//! Everything is a pure function of the design and
//! [`SynthesisConfig::seed`]: results are byte-identical across repeated
//! runs and across every `intra_parallelism` setting (enforced by
//! `tests/lns_determinism.rs`; structural invariants by
//! `tests/lns_invariants.rs`).

use crate::cost::Evaluation;
use crate::design::DesignPoint;
use crate::improve::{Abort, Applied, Engine};
use crate::moves::{
    apply_in_place, selection_candidates, sharing_candidates, splitting_candidates, Candidate,
    ModulePath, Move,
};
use crate::transact::{Transaction, UndoLog, UndoMark};
use hsyn_dfg::{Dfg, NodeId, NodeKind, Operation};
use hsyn_lib::{FuTypeId, Library};
use hsyn_rtl::{
    fingerprint_tree, module_affinity, module_fingerprint, AffinityMatrix, FpTree, ModuleLibrary,
    RegPolicy,
};
use hsyn_util::Rng;
use std::collections::BTreeSet;

/// Per-key partner-list cap of the precomputed affinity matrices.
const AFFINITY_K: usize = 8;
/// Edit cap one [`Engine::lns_refine`] ruin may spend: keeps a root-subtree
/// ruin of a large benchmark from canonicalizing the whole design (and the
/// recreate budget, which scales with the ruin size, from exploding).
const RUIN_CAP: usize = 24;
/// Recreate steps tolerated without a new trajectory-best cost before the
/// walk is cut short (the prefix commit would discard the tail anyway).
const STALE_LIMIT: usize = 5;
/// Per-candidate keep probability of the seeded dropout each recreate step
/// applies to its candidate wave — the randomized-greedy core of
/// ruin-and-recreate. Deterministic given the seed.
const DROPOUT_KEEP: f64 = 0.7;
/// Exponential-moving-average smoothing of [`Portfolio::reward`].
const ALPHA: f64 = 0.3;
/// Sampling mass [`Portfolio::sample`] reserves for uniform exploration
/// across enabled families, so a family that has not paid recently is still
/// tried occasionally.
const EXPLORE: f64 = 0.1;

/// SplitMix64 finalizer: a cheap bijective bit mixer.
fn mix64(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Adaptive move-family portfolio: one weight per family (A=0, B=1, C=2,
/// D=3), updated by recent payoff ([`reward`](Self::reward)) and sampled
/// with a uniform exploration floor ([`sample`](Self::sample)). Fully
/// deterministic: the same reward stream and generator state always produce
/// the same samples.
#[derive(Clone, Debug)]
pub struct Portfolio {
    weights: [f64; 4],
    enabled: [bool; 4],
}

impl Portfolio {
    /// A portfolio over the four move families; `enabled[i]` switches
    /// family `i` on. Weights start equal (1.0), so the first samples are
    /// uniform over the enabled families.
    pub fn new(enabled: [bool; 4]) -> Self {
        Portfolio {
            weights: [1.0; 4],
            enabled,
        }
    }

    /// Fold a payoff observation for `family` into its weight
    /// (exponential moving average; payoffs are clamped to `[0, 1]`).
    pub fn reward(&mut self, family: usize, payoff: f64) {
        let p = payoff.clamp(0.0, 1.0);
        self.weights[family] = (1.0 - ALPHA) * self.weights[family] + ALPHA * p;
    }

    /// The current weight of `family`.
    pub fn weight(&self, family: usize) -> f64 {
        self.weights[family]
    }

    /// Current sampling probabilities: a uniform exploration floor of
    /// `EXPLORE / n` over the `n` enabled families plus
    /// weight-proportional exploitation mass. Disabled families get
    /// exactly 0; enabled families always get strictly positive mass, even
    /// at weight 0.
    pub fn probabilities(&self) -> [f64; 4] {
        let n = self.enabled.iter().filter(|&&e| e).count();
        let mut out = [0.0; 4];
        if n == 0 {
            return out;
        }
        let total: f64 = (0..4)
            .filter(|&i| self.enabled[i])
            .map(|i| self.weights[i])
            .sum();
        for (i, slot) in out.iter_mut().enumerate() {
            if !self.enabled[i] {
                continue;
            }
            let exploit = if total > 0.0 {
                (1.0 - EXPLORE) * self.weights[i] / total
            } else {
                (1.0 - EXPLORE) / n as f64
            };
            *slot = EXPLORE / n as f64 + exploit;
        }
        out
    }

    /// Sample a family index from [`probabilities`](Self::probabilities).
    ///
    /// # Panics
    ///
    /// Panics if no family is enabled.
    pub fn sample(&self, rng: &mut Rng) -> usize {
        let probs = self.probabilities();
        let total: f64 = probs.iter().sum();
        assert!(
            total > 0.0,
            "sample() on a portfolio with no enabled family"
        );
        let mut x = rng.next_f64() * total;
        for (i, &p) in probs.iter().enumerate() {
            x -= p;
            if p > 0.0 && x <= 0.0 {
                return i;
            }
        }
        // Float round-off: fall back to the last enabled family.
        (0..4)
            .rev()
            .find(|&i| self.enabled[i])
            .expect("total > 0 implies an enabled family")
    }

    /// Enabled families, best weight first (family index as the
    /// deterministic tiebreak) — the fallback order the recreate loop
    /// walks after the sampled family comes up empty.
    pub fn order(&self) -> Vec<usize> {
        let mut fams: Vec<usize> = (0..4).filter(|&i| self.enabled[i]).collect();
        fams.sort_by(|&a, &b| self.weights[b].total_cmp(&self.weights[a]).then(a.cmp(&b)));
        fams
    }
}

/// The region one LNS iteration destroys.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum RuinKind {
    /// Canonicalize every module in the subtree rooted at this path
    /// (inclusive): dedicated registers, singleton functional-unit groups,
    /// one hierarchical node per child instance. Perturbs toward the
    /// maximally-parallel pole — effective on sharing-heavy (area-mode)
    /// designs.
    Subtree(ModulePath),
    /// Split apart every multi-op functional-unit group bound to this
    /// library type, design-wide.
    FuClass(FuTypeId),
    /// The opposite pole: greedily pack registers and merge mergeable
    /// functional-unit-group pairs in the subtree rooted at this path,
    /// regardless of cost. Power-optimized designs converge near the
    /// maximally-parallel pole (parallelism buys voltage headroom), so
    /// canonicalizing barely perturbs them — collapsing does.
    Collapse(ModulePath),
}

/// Pick the region the next iteration ruins: with probability ½ (when the
/// design binds any functional units) all instances of a uniformly random
/// library type in use; otherwise a uniformly random module subtree,
/// destroyed toward either pole with equal probability — canonicalized
/// ([`RuinKind::Subtree`]) or collapsed ([`RuinKind::Collapse`]).
/// Deterministic given the generator state.
pub fn plan_ruin(dp: &DesignPoint, rng: &mut Rng) -> RuinKind {
    let mut paths: Vec<ModulePath> = Vec::new();
    let mut seen = BTreeSet::new();
    let mut types: Vec<FuTypeId> = Vec::new();
    dp.top.for_each(|path, m| {
        paths.push(path.to_vec());
        for grp in &m.core.fu_groups {
            if seen.insert(grp.fu_type.index()) {
                types.push(grp.fu_type);
            }
        }
    });
    types.sort_by_key(|t| t.index());
    if !types.is_empty() && rng.next_bool(0.5) {
        RuinKind::FuClass(types[rng.range_usize(0, types.len())])
    } else {
        let path = paths[rng.range_usize(0, paths.len())].clone();
        if rng.next_bool(0.5) {
            RuinKind::Collapse(path)
        } else {
            RuinKind::Subtree(path)
        }
    }
}

/// The next destroying move inside the region, or `None` at the region's
/// fixpoint. Priority per module — canonicalizing kinds: dedicate
/// registers, then split a multi-op group, then split a multi-node child;
/// collapsing kind: pack registers, then merge the first group pair whose
/// operation-kind union some library type implements (lowest-index such
/// type; recreation's selection family retunes it afterwards).
fn next_ruin_move(dp: &DesignPoint, lib: &Library, kind: &RuinKind) -> Option<Move> {
    let mut found: Option<Move> = None;
    dp.top.for_each(|path, m| {
        if found.is_some() {
            return;
        }
        match kind {
            RuinKind::Subtree(prefix) => {
                if path.len() < prefix.len() || path[..prefix.len()] != prefix[..] {
                    return;
                }
                if !matches!(m.core.reg_policy, RegPolicy::Dedicated) {
                    found = Some(Move::DedicateRegs {
                        path: path.to_vec(),
                    });
                    return;
                }
                for (gi, grp) in m.core.fu_groups.iter().enumerate() {
                    if grp.ops.len() >= 2 {
                        found = Some(Move::SplitFu {
                            path: path.to_vec(),
                            group: gi,
                            op: *grp.ops.last().expect("len >= 2"),
                        });
                        return;
                    }
                }
                for (ci, c) in m.children.iter().enumerate() {
                    if c.nodes.len() >= 2 {
                        found = Some(Move::SplitChild {
                            path: path.to_vec(),
                            child: ci,
                            node: *c.nodes.last().expect("len >= 2"),
                        });
                        return;
                    }
                }
            }
            RuinKind::FuClass(t) => {
                for (gi, grp) in m.core.fu_groups.iter().enumerate() {
                    if grp.fu_type.index() == t.index() && grp.ops.len() >= 2 {
                        found = Some(Move::SplitFu {
                            path: path.to_vec(),
                            group: gi,
                            op: *grp.ops.last().expect("len >= 2"),
                        });
                        return;
                    }
                }
            }
            RuinKind::Collapse(prefix) => {
                if path.len() < prefix.len() || path[..prefix.len()] != prefix[..] {
                    return;
                }
                if !matches!(m.core.reg_policy, RegPolicy::Packed) {
                    found = Some(Move::RepackRegs {
                        path: path.to_vec(),
                    });
                    return;
                }
                let g = dp.hierarchy.dfg(m.core.dfg);
                let classes: Vec<BTreeSet<Operation>> = m
                    .core
                    .fu_groups
                    .iter()
                    .map(|grp| group_kinds(g, &grp.ops))
                    .collect();
                for i in 0..classes.len() {
                    for j in (i + 1)..classes.len() {
                        if classes[i].is_empty() || classes[j].is_empty() {
                            continue;
                        }
                        let union: Vec<Operation> =
                            classes[i].union(&classes[j]).copied().collect();
                        let Some((t, _)) = lib.fus().find(|(_, f)| f.supports_all(&union)) else {
                            continue;
                        };
                        found = Some(Move::MergeFu {
                            path: path.to_vec(),
                            a: i,
                            b: j,
                            fu_type: t,
                        });
                        return;
                    }
                }
            }
        }
    });
    found
}

/// Destroy `kind`'s region of `dp` — toward the canonical
/// maximally-parallel pole (dedicated registers, one operation per
/// functional unit, one hierarchical node per child) or, for
/// [`RuinKind::Collapse`], toward the shared pole — one journaled move at a
/// time, to fixpoint or until `limit` edits have been spent. Every edit
/// lands in `undo`, so the whole ruin replays back in O(edit size). Returns
/// the number of edits applied; an edit the scheduler rejects (it
/// self-rolls-back inside [`apply_in_place`]) stops the ruin early. Either
/// early stop leaves a smaller but still consistent region destroyed.
pub fn ruin_region(
    dp: &mut DesignPoint,
    mlib: &ModuleLibrary,
    kind: &RuinKind,
    undo: &mut UndoLog,
    limit: usize,
) -> usize {
    let mut edits = 0usize;
    while edits < limit {
        let Some(mv) = next_ruin_move(dp, &mlib.simple, kind) else {
            break;
        };
        if apply_in_place(dp, &mv, mlib, &mut |_, _, _| None, undo).is_err() {
            break;
        }
        edits += 1;
    }
    edits
}

/// The distinct operation kinds a functional-unit group executes.
fn group_kinds(g: &Dfg, ops: &[NodeId]) -> BTreeSet<Operation> {
    ops.iter()
        .filter_map(|&n| match g.node(n).kind() {
            NodeKind::Op(op) => Some(*op),
            _ => None,
        })
        .collect()
}

/// Fingerprint of a group's operation-kind class: the sorted distinct
/// [`Operation`] kinds, and nothing else. Deliberately independent of the
/// group's size, its current library type, and how operations are
/// distributed across groups — so the singleton groups a ruin leaves behind
/// and the chain-merged groups recreation builds key into the same matrix
/// entries as the converged groups the matrix was computed from.
fn kind_class_fp(kinds: &BTreeSet<Operation>) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &k in kinds {
        h = mix64(h ^ (k as u64 + 1));
    }
    h
}

/// Precompute the functional-unit merge-partner matrix of `dp`: keys are
/// [kind-class fingerprints](kind_class_fp); a pair of classes within the
/// same module registers iff some library type implements their union
/// (otherwise no `MergeFu` between them can ever validate), scored by the
/// kind overlap plus a bonus for identical classes.
pub(crate) fn group_affinity(dp: &DesignPoint, lib: &Library, k: usize) -> AffinityMatrix {
    let mut pairs: Vec<(u64, u64, f64)> = Vec::new();
    dp.top.for_each(|_, m| {
        let g = dp.hierarchy.dfg(m.core.dfg);
        let classes: Vec<BTreeSet<Operation>> = m
            .core
            .fu_groups
            .iter()
            .map(|grp| group_kinds(g, &grp.ops))
            .collect();
        for i in 0..classes.len() {
            for j in (i + 1)..classes.len() {
                if classes[i].is_empty() || classes[j].is_empty() {
                    continue;
                }
                let union: Vec<Operation> = classes[i].union(&classes[j]).copied().collect();
                if !lib.fus().any(|(_, f)| f.supports_all(&union)) {
                    continue;
                }
                let overlap = classes[i].intersection(&classes[j]).count();
                let mut score = 1.0 + overlap as f64;
                if classes[i] == classes[j] {
                    score += 2.0;
                }
                pairs.push((
                    kind_class_fp(&classes[i]),
                    kind_class_fp(&classes[j]),
                    score,
                ));
            }
        }
    });
    AffinityMatrix::from_pairs(pairs, k)
}

impl<'a> Engine<'a> {
    /// Candidate moves of one family for the recreate loop, with merge
    /// candidates pruned through the precomputed affinity matrices.
    fn lns_candidates(
        &self,
        dp: &DesignPoint,
        family: usize,
        group_aff: &AffinityMatrix,
        child_aff: &AffinityMatrix,
    ) -> Vec<Candidate> {
        let objective = self.config.objective;
        match family {
            0 => selection_candidates(dp, self.mlib, objective, false),
            1 => {
                let mut c = selection_candidates(dp, self.mlib, objective, true);
                c.retain(|(_, mv)| matches!(mv, Move::ResynthChild { .. }));
                c
            }
            2 => {
                let mut c = sharing_candidates(dp, self.mlib, objective);
                c.retain(|(_, mv)| match mv {
                    Move::MergeFu { path, a, b, .. } => {
                        let m = dp.top.at(path);
                        let g = dp.hierarchy.dfg(m.core.dfg);
                        let fa = kind_class_fp(&group_kinds(g, &m.core.fu_groups[*a].ops));
                        let fb = kind_class_fp(&group_kinds(g, &m.core.fu_groups[*b].ops));
                        group_aff.allows_pair(fa, fb)
                    }
                    Move::MergeChildren { path, a, b } => {
                        let m = dp.top.at(path);
                        let fa = module_fingerprint(&dp.hierarchy, m.children[*a].module());
                        let fb = module_fingerprint(&dp.hierarchy, m.children[*b].module());
                        child_aff.allows_pair(fa, fb)
                    }
                    _ => true,
                });
                c
            }
            _ => splitting_candidates(dp, self.mlib, objective),
        }
    }

    /// The ruin-and-recreate refinement appended after the pass loop when
    /// [`SynthesisConfig::lns_iters`](crate::SynthesisConfig::lns_iters) is
    /// positive (see this module's docs — this is the tentpole loop).
    /// Always drives the transactional journal, regardless
    /// of [`SynthesisConfig::transactional`](crate::SynthesisConfig::transactional):
    /// ruin and recreate are exactly the nested-speculation shape the
    /// journal exists for.
    ///
    /// # Errors
    ///
    /// Paranoid-mode violations abort the configuration exactly as in
    /// [`Engine::optimize`], and a tripped cancel token aborts the run at
    /// the next iteration boundary; the in-flight transaction rolls back
    /// on the way out, so the design is never left mid-ruin.
    pub(crate) fn lns_refine(
        &mut self,
        mut cur: DesignPoint,
        mut cur_eval: Evaluation,
    ) -> Result<(DesignPoint, Evaluation), Abort> {
        let seed = self.config.seed
            ^ mix64(cur.op.vdd.to_bits())
            ^ mix64(cur.op.clk_ref_ns.to_bits().rotate_left(17));
        let mut rng = Rng::seed_from_u64(seed);
        // Computed once per refinement, from the converged design: the
        // merge pairs that looked profitable there are where recreation
        // should spend its candidate budget.
        let group_aff = group_affinity(&cur, &self.mlib.simple, AFFINITY_K);
        let child_aff = module_affinity(&cur.hierarchy, &cur.top.built, AFFINITY_K);
        let fams = self.config.moves;
        let mut portfolio = Portfolio::new([fams.a, fams.b && self.depth > 0, fams.c, fams.d]);
        if portfolio.order().is_empty() {
            return Ok((cur, cur_eval));
        }
        let mut best = cur.clone();
        let mut best_eval = cur_eval;
        for _ in 0..self.config.lns_iters {
            self.check_cancel()?;
            let kind = plan_ruin(&cur, &mut rng);
            let entry_cost = cur_eval.cost;
            // The transaction borrows `cur` for the whole ruin→recreate
            // cycle; the block scopes that borrow so the accept path can
            // clone `cur` afterwards.
            let accepted = 'cycle: {
                let mut tx = Transaction::begin(&mut cur);
                let (dp, log) = tx.parts();
                let ruined = ruin_region(dp, self.mlib, &kind, log, RUIN_CAP);
                if ruined == 0 {
                    // Region already canonical (e.g. a leaf kept
                    // parallel): nothing journaled, nothing to recreate.
                    break 'cycle None;
                }
                self.stats.lns_ruins += 1;
                let fp = self
                    .caching()
                    .then(|| fingerprint_tree(&dp.hierarchy, &dp.top.built));
                let work_eval = self.eval(dp, fp.as_ref(), None);
                // KL-style reconstruction: one move per step, possibly
                // uphill, with a journal mark before each step. The sampled
                // family's best move wins outright when it improves —
                // that's the stochastic diversification — otherwise the
                // remaining families are scanned in portfolio order and
                // the least-bad move overall is taken, so recreation can
                // walk through the plateaus and ridges the converged pass
                // loop stalled on. Bounded by the ruin size: recreation
                // re-fuses what the ruin scattered plus a little slack.
                let mut history: Vec<(Evaluation, Option<FpTree>)> = vec![(work_eval, fp)];
                let mut marks: Vec<UndoMark> = Vec::new();
                let mut applied: Vec<Move> = Vec::new();
                // Steps since the trajectory last set a new best cost;
                // once a streak of uphill steps this long accrues, the
                // walk has wandered off and the tail would be discarded
                // by the prefix commit anyway.
                let mut stale = 0usize;
                let mut traj_best = work_eval.cost;
                for _ in 0..2 * ruined + 8 {
                    if stale >= STALE_LIMIT {
                        break;
                    }
                    let (work_eval, work_fp) = history.last().expect("non-empty");
                    let base = work_eval.cost;
                    let sampled = portfolio.sample(&mut rng);
                    let mut try_order = vec![sampled];
                    try_order.extend(portfolio.order().into_iter().filter(|&f| f != sampled));
                    let mut chosen: Option<(usize, Applied)> = None;
                    for f in try_order {
                        let mut cands = self.lns_candidates(dp, f, &group_aff, &child_aff);
                        // Randomized greedy: seeded dropout forbids a
                        // slice of the candidates each step, so successive
                        // recreations of the same region walk different
                        // reconstruction orders instead of deterministic
                        // greedy retracing the converged design.
                        if cands.len() > 1 {
                            let kept: Vec<Candidate> = cands
                                .iter()
                                .filter(|_| rng.next_bool(DROPOUT_KEEP))
                                .cloned()
                                .collect();
                            if !kept.is_empty() {
                                cands = kept;
                            }
                        }
                        if cands.is_empty() {
                            portfolio.reward(f, 0.0);
                            continue;
                        }
                        let Some(won) =
                            self.best_from(dp, work_fp.as_ref(), base, cands, Some(log))
                        else {
                            portfolio.reward(f, 0.0);
                            continue;
                        };
                        let improving = won.gain > 1e-9;
                        if chosen.as_ref().is_none_or(|(_, c)| won.gain > c.gain) {
                            chosen = Some((f, won));
                        }
                        if improving {
                            break;
                        }
                        portfolio.reward(f, 0.0);
                    }
                    // No family produced even one valid candidate.
                    let Some((f, won)) = chosen else { break };
                    // Re-apply the winner (the scan rolled it back),
                    // reusing its saved move-B implementation.
                    let mark = log.mark();
                    let Applied {
                        gain,
                        mv,
                        resynth,
                        fp: won_fp,
                        eval,
                        ..
                    } = won;
                    let mut saved = resynth;
                    apply_in_place(dp, &mv, self.mlib, &mut |_, _, _| saved.take(), log)
                        .expect("re-apply of a just-validated move on the identical design");
                    self.paranoid_check(dp, Some(&mv))?;
                    portfolio.reward(f, gain / entry_cost.abs().max(f64::MIN_POSITIVE));
                    if eval.cost < traj_best - 1e-9 {
                        traj_best = eval.cost;
                        stale = 0;
                    } else {
                        stale += 1;
                    }
                    marks.push(mark);
                    history.push((eval, won_fp));
                    applied.push(mv);
                }
                self.stats.undo_bytes_peak =
                    self.stats.undo_bytes_peak.max(log.bytes_peak() as u64);
                // Commit the best point along the trajectory iff it
                // strictly beats the pre-ruin cost.
                let (bi, _) = history
                    .iter()
                    .enumerate()
                    .min_by(|(_, a), (_, b)| a.0.cost.total_cmp(&b.0.cost))
                    .expect("non-empty");
                if history[bi].0.cost < entry_cost - 1e-9 {
                    // Strict improvement: unwind the steps past the best
                    // point, then discard the journal in place so the
                    // transaction's drop has nothing left to undo.
                    if bi < applied.len() {
                        log.rollback_to(dp, marks[bi]);
                        self.stats.moves_rolled_back += (applied.len() - bi) as u64;
                    }
                    log.commit();
                    for mv in &applied[..bi] {
                        self.stats.record(mv);
                    }
                    self.stats.lns_accepts += 1;
                    Some(history.swap_remove(bi).0)
                } else {
                    // Not better: the transaction's drop unwinds ruin +
                    // recreate in O(edit size).
                    self.stats.moves_rolled_back += (ruined + applied.len()) as u64;
                    None
                }
            };
            if let Some(new_eval) = accepted {
                cur_eval = new_eval;
                if cur_eval.cost < best_eval.cost {
                    best = cur.clone();
                    best_eval = cur_eval;
                }
            }
        }
        Ok((best, best_eval))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Feeding one family all the payoff must concentrate sampling mass on
    /// it — while every other enabled family keeps the exploration floor.
    #[test]
    fn portfolio_converges_to_the_paying_family() {
        let mut p = Portfolio::new([true, true, true, true]);
        for _ in 0..64 {
            p.reward(2, 1.0);
            p.reward(0, 0.0);
            p.reward(1, 0.0);
            p.reward(3, 0.0);
        }
        let probs = p.probabilities();
        assert!(
            probs[2] > 0.8,
            "family C should dominate after a rigged payoff stream: {probs:?}"
        );
        // Zero-payoff families keep strictly positive exploration mass.
        for i in [0usize, 1, 3] {
            assert!(
                probs[i] >= EXPLORE / 4.0 - 1e-12,
                "family {i} lost its exploration floor: {probs:?}"
            );
        }
        assert!((probs.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        // Deterministic fallback order: best weight first, C on top.
        assert_eq!(p.order()[0], 2);
        // Sampling follows the distribution deterministically.
        let mut rng = Rng::seed_from_u64(7);
        let hits = (0..1000).filter(|_| p.sample(&mut rng) == 2).count();
        assert!(
            hits > 700,
            "sample() must favor the dominant family: {hits}"
        );
    }

    /// Disabled families never sample; weight ties break by family index.
    #[test]
    fn portfolio_respects_enable_mask_and_tiebreak() {
        let p = Portfolio::new([true, false, true, false]);
        let probs = p.probabilities();
        assert_eq!(probs[1], 0.0);
        assert_eq!(probs[3], 0.0);
        assert!(
            (probs[0] - probs[2]).abs() < 1e-12,
            "equal weights split evenly"
        );
        assert_eq!(p.order(), vec![0, 2]);
        let mut rng = Rng::seed_from_u64(3);
        for _ in 0..100 {
            let f = p.sample(&mut rng);
            assert!(f == 0 || f == 2);
        }
    }

    /// The kind-class fingerprint ignores grouping and multiplicity: any
    /// set of nodes with the same distinct operation kinds collides.
    #[test]
    fn kind_class_fp_is_grouping_independent() {
        let one: BTreeSet<Operation> = [Operation::Add].into_iter().collect();
        let many: BTreeSet<Operation> = [Operation::Add, Operation::Add].into_iter().collect();
        assert_eq!(kind_class_fp(&one), kind_class_fp(&many));
        let mixed: BTreeSet<Operation> = [Operation::Add, Operation::Mult].into_iter().collect();
        assert_ne!(kind_class_fp(&one), kind_class_fp(&mixed));
    }
}
